// Result cache + incremental re-sweep: the interactive-workload benchmark.
//
// Two phases, both for the L-infinity square sweep and the L2 arc sweep:
//   * cache    — a batch of B distinct requests served by a cache-enabled
//                HeatmapEngine, cold (every request sweeps) then warm (the
//                same batch again: every request hits);
//   * replay   — a HeatmapSession applying E random edits, refreshing the
//                map after each tick via a full rebuild vs. the
//                incremental re-sweep (dirty-slab splice).
//
// Besides the text tables, the run writes a machine-readable summary to
// BENCH_cache.json (override the path with RNNHM_BENCH_JSON_CACHE): one
// record per (phase, metric) with cold/warm/incremental milliseconds, so
// CI can archive the interactive-latency trajectory next to
// BENCH_engine.json. Set RNNHM_BENCH_FULL=1 for larger workloads.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "heatmap/influence.h"
#include "query/heatmap_engine.h"
#include "query/heatmap_session.h"

namespace rnnhm::bench {
namespace {

struct JsonRecord {
  std::string phase;
  std::string metric;
  int work;            // batch size (cache) or edit count (replay)
  double cold_ms;      // uncached batch / full rebuild per tick sum
  double warm_ms;      // cached batch / incremental per tick sum
  double extra = 0.0;  // cache: hit count; replay: avg dirty-column %
};

void RunCachePhase(const Dataset& dataset, Metric metric, int batch,
                   size_t clients, size_t facilities, int resolution,
                   std::vector<JsonRecord>* records) {
  std::vector<HeatmapRequest> requests;
  requests.reserve(batch);
  for (int b = 0; b < batch; ++b) {
    const PreparedWorkload w =
        Prepare(dataset, clients, facilities, metric, 7000 + b);
    requests.push_back(HeatmapRequest{w.circles, Rect{{0, 0}, {1, 1}},
                                      resolution, resolution, metric});
  }
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 512ull << 20;  // hold the whole batch
  options.cache_entries = static_cast<size_t>(batch) * 2;
  HeatmapEngine engine(measure, options);

  std::vector<HeatmapRequest> cold = requests;
  const double cold_ms = TimeMs([&] { engine.RunBatch(std::move(cold)); });
  std::vector<HeatmapRequest> warm = requests;
  const double warm_ms = TimeMs([&] { engine.RunBatch(std::move(warm)); });
  const SweepCacheStats stats = engine.cache_stats();

  std::printf("[cache/%s] batch %d at %dx%d: cold %.1f ms, warm %.1f ms "
              "(%.0fx), %llu hits / %llu misses\n",
              MetricName(metric).c_str(), batch, resolution, resolution,
              cold_ms, warm_ms, warm_ms > 0.0 ? cold_ms / warm_ms : 0.0,
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  records->push_back(JsonRecord{"cache", MetricName(metric), batch, cold_ms,
                                warm_ms, static_cast<double>(stats.hits)});
}

// `local` switches the edit script from uniform teleports to short hops
// (the taxi-sharing motion model: a client drifts, it does not respawn).
// Local moves produce small dirty rects in BOTH axes, which is where the
// 2D dirty-rect splice pulls ahead of full-height column recomputes —
// the phase is recorded separately ("replay_local") so the baseline
// tracks that advantage.
void RunReplayPhase(const Dataset& dataset, Metric metric, int edits,
                    size_t clients, size_t facilities, int resolution,
                    bool local, std::vector<JsonRecord>* records) {
  const Workload w = SampleWorkload(dataset, clients, facilities, 7777);
  SizeInfluence measure;
  const Rect domain{{0, 0}, {1, 1}};
  const char* phase = local ? "replay_local" : "replay";

  const auto next_target = [&](Rng& rng, const HeatmapSession& session,
                               int32_t id) {
    if (!local) return Point{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const Point& at = session.clients()[id];
    return Point{at.x + rng.Uniform(-0.02, 0.02),
                 at.y + rng.Uniform(-0.02, 0.02)};
  };

  // Full-rebuild ticks: one session rebuilt from scratch per edit.
  HeatmapSession full(w.clients, w.facilities, metric);
  Rng full_rng(31);
  full.RasterIncremental(measure, domain, resolution, resolution);
  double full_ms = 0.0;
  for (int t = 0; t < edits; ++t) {
    const auto id = static_cast<int32_t>(full_rng.NextBounded(clients));
    full.MoveClient(id, next_target(full_rng, full, id));
    full.InvalidateRaster();  // forces the from-scratch path
    full_ms += TimeMs([&] {
      full.RasterIncremental(measure, domain, resolution, resolution);
    });
  }

  // Incremental ticks: identical edit script, dirty-rect splice.
  HeatmapSession inc(w.clients, w.facilities, metric);
  Rng inc_rng(31);
  inc.RasterIncremental(measure, domain, resolution, resolution);
  double inc_ms = 0.0;
  long dirty_columns = 0;
  long long dirty_pixels = 0;
  for (int t = 0; t < edits; ++t) {
    const auto id = static_cast<int32_t>(inc_rng.NextBounded(clients));
    inc.MoveClient(id, next_target(inc_rng, inc, id));
    IncrementalRebuildStats stats;
    inc_ms += TimeMs([&] {
      inc.RasterIncremental(measure, domain, resolution, resolution, &stats);
    });
    dirty_columns += stats.raster.dirty_columns;
    dirty_pixels += stats.raster.dirty_pixels;
  }
  const double dirty_pct =
      edits > 0 ? 100.0 * dirty_columns / (resolution * edits) : 0.0;
  const double pixel_pct =
      edits > 0 ? 100.0 * static_cast<double>(dirty_pixels) /
                      (static_cast<double>(resolution) * resolution * edits)
                : 0.0;

  std::printf("[%s/%s] %d edits at %dx%d: full %.2f ms/tick, "
              "incremental %.2f ms/tick (%.1fx), %.1f%% columns/tick, "
              "%.1f%% pixels/tick\n",
              phase, MetricName(metric).c_str(), edits, resolution,
              resolution, edits > 0 ? full_ms / edits : 0.0,
              edits > 0 ? inc_ms / edits : 0.0,
              inc_ms > 0.0 ? full_ms / inc_ms : 0.0, dirty_pct, pixel_pct);
  records->push_back(JsonRecord{phase, MetricName(metric), edits, full_ms,
                                inc_ms, dirty_pct});
}

void WriteJson(const std::vector<JsonRecord>& records) {
  const char* path = std::getenv("RNNHM_BENCH_JSON_CACHE");
  if (path == nullptr) path = "BENCH_cache.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"cache\",\n  \"cells\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"phase\": \"%s\", \"metric\": \"%s\", \"work\": %d, "
        "\"cold_ms\": %.3f, \"warm_ms\": %.3f, \"extra\": %.3f}%s\n",
        r.phase.c_str(), r.metric.c_str(), r.work, r.cold_ms, r.warm_ms,
        r.extra, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, records.size());
}

void Run() {
  const bool full = FullMode();
  const int batch = full ? 32 : 8;
  const int edits = full ? 200 : 40;
  const int resolution = full ? 512 : 192;
  const size_t linf_clients = full ? 20000 : 2000;
  const size_t l2_clients = full ? 5000 : 800;
  const Dataset dataset =
      MakeDataset(DatasetKind::kUniform, 42, (full ? 20000u : 2000u) * 4);

  std::vector<JsonRecord> records;
  RunCachePhase(dataset, Metric::kLInf, batch, linf_clients,
                linf_clients / 100, resolution, &records);
  RunCachePhase(dataset, Metric::kL2, batch, l2_clients, l2_clients / 25,
                resolution, &records);
  RunReplayPhase(dataset, Metric::kLInf, edits, linf_clients,
                 linf_clients / 100, resolution, /*local=*/false, &records);
  RunReplayPhase(dataset, Metric::kL2, edits, l2_clients, l2_clients / 25,
                 resolution, /*local=*/false, &records);
  RunReplayPhase(dataset, Metric::kLInf, edits, linf_clients,
                 linf_clients / 100, resolution, /*local=*/true, &records);
  RunReplayPhase(dataset, Metric::kL2, edits, l2_clients, l2_clients / 25,
                 resolution, /*local=*/true, &records);
  WriteJson(records);
}

}  // namespace
}  // namespace rnnhm::bench

int main() {
  rnnhm::bench::Run();
  return 0;
}
