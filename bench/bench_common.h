// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one figure of the paper's evaluation (Section
// VIII) as a text table: same series (algorithms), same x-axis (ratio or
// cardinality), CPU time in milliseconds. Absolute numbers differ from the
// paper's 2011-era testbed; the reproduction target is the curve shape.
//
// Default sizes are trimmed so the whole suite finishes in minutes. Set
// RNNHM_BENCH_FULL=1 for the paper's full parameter ranges.
#ifndef RNNHM_BENCH_BENCH_COMMON_H_
#define RNNHM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "data/dataset.h"
#include "geom/geometry.h"
#include "index/kdtree.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm::bench {

inline bool FullMode() {
  const char* env = std::getenv("RNNHM_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

inline const std::vector<DatasetKind> kAllDatasets{
    DatasetKind::kLa, DatasetKind::kNyc, DatasetKind::kUniform,
    DatasetKind::kZipfian};

/// Builds the workload for one experiment configuration: samples O and F
/// from the data set pool and computes NN-circles under `metric`.
struct PreparedWorkload {
  Workload workload;
  std::vector<NnCircle> circles;
};

inline PreparedWorkload Prepare(const Dataset& dataset, size_t num_clients,
                                size_t num_facilities, Metric metric,
                                uint64_t seed) {
  PreparedWorkload out;
  out.workload = SampleWorkload(dataset, num_clients, num_facilities, seed);
  out.circles =
      BuildNnCircles(out.workload.clients, out.workload.facilities, metric);
  return out;
}

/// Client -> NN-facility assignment (for the capacity measure).
inline std::vector<int32_t> AssignClients(const Workload& w, Metric metric) {
  KdTree tree(w.facilities);
  std::vector<int32_t> out;
  out.reserve(w.clients.size());
  for (const Point& c : w.clients) {
    out.push_back(tree.Nearest(c, metric).index);
  }
  return out;
}

/// Prints a table header: first column name then one column per series.
inline void PrintHeader(const std::string& x_name,
                        const std::vector<std::string>& series) {
  std::printf("%-12s", x_name.c_str());
  for (const std::string& s : series) std::printf(" %14s", s.c_str());
  std::printf("\n");
}

/// Prints one row; negative cells print as "-" (not run), and cells marked
/// capped print with a ">" prefix (budget exhausted).
struct Cell {
  double ms = -1.0;
  bool capped = false;
};

inline void PrintRow(const std::string& x, const std::vector<Cell>& cells) {
  std::printf("%-12s", x.c_str());
  for (const Cell& c : cells) {
    if (c.ms < 0) {
      std::printf(" %14s", "-");
    } else if (c.capped) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ">%.1f", c.ms);
      std::printf(" %14s", buf);
    } else {
      std::printf(" %14.1f", c.ms);
    }
  }
  std::printf("\n");
}

/// Times a callable once (the workloads are deterministic; CREST runs are
/// long enough that single-shot timing is stable at bench sizes).
template <typename F>
double TimeMs(F&& f) {
  Stopwatch sw;
  f();
  return sw.ElapsedMs();
}

}  // namespace rnnhm::bench

#endif  // RNNHM_BENCH_BENCH_COMMON_H_
