// Fig. 19: effect of data set size with the L2 distance.
//
// Ratio fixed at 2^5, |O| swept; CREST-L2 vs Pruning on the max-influence
// task with the capacity measure, as in Fig. 18.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/crest_l2.h"
#include "core/pruning.h"
#include "heatmap/influence.h"

using namespace rnnhm;
using namespace rnnhm::bench;

int main() {
  const bool full = FullMode();
  const size_t ratio = 32;  // paper: 2^5
  const std::vector<size_t> sizes =
      full ? std::vector<size_t>{128, 512, 2048, 8192, 32768, 65536}
           : std::vector<size_t>{128, 512, 2048, 4096};
  const double pruning_budget_ms = full ? 60000.0 : 5000.0;

  std::printf("=== Fig. 19: effect of |O|, L2 distance, max-influence task "
              "(|O|/|F| = %zu, CPU ms; Pruning budget %.0fs) ===\n",
              ratio, pruning_budget_ms / 1000.0);
  for (const DatasetKind kind : kAllDatasets) {
    const Dataset dataset = MakeDataset(kind, /*seed=*/20160219);
    std::printf("\n-- %s --\n", dataset.name.c_str());
    PrintHeader("|O|", {"Pruning", "CREST-L2", "agree"});
    for (const size_t n : sizes) {
      const size_t num_facilities = std::max<size_t>(1, n / ratio);
      const PreparedWorkload p =
          Prepare(dataset, n, num_facilities, Metric::kL2, /*seed=*/n);
      const std::vector<int32_t> client_nn =
          AssignClients(p.workload, Metric::kL2);
      std::vector<int32_t> caps(p.workload.facilities.size(), 5);
      CapacityInfluence measure(client_nn, caps, 5);

      Cell pruning_cell, crest_cell, agree;
      PruningResult pruning;
      {
        PruningOptions options;
        options.time_budget_ms = pruning_budget_ms;
        pruning_cell.ms =
            TimeMs([&] { pruning = RunPruning(p.circles, measure, options); });
        pruning_cell.capped = pruning.timed_out;
      }
      MaxInfluenceSink sink;
      crest_cell.ms = TimeMs([&] { RunCrestL2(p.circles, measure, &sink); });
      agree.ms =
          (sink.HasResult() && pruning.max_influence == sink.max_influence())
              ? 1.0
              : 0.0;
      PrintRow(std::to_string(n), {pruning_cell, crest_cell, agree});
    }
  }
  return 0;
}
