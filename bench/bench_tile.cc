// Domain tiling: the tile-partitioned sweep benchmark (ROADMAP item 1).
//
// Two phases, each across the three metrics:
//   * sweep — one full raster built untiled (BuildHeatmap*Parallel) vs.
//             through a TilePlan at several grid sizes. The tiled build
//             sweeps every tile over just the circles that can influence
//             it, so the comparison shows what the per-tile circle
//             narrowing buys (and what the per-tile fixed costs eat).
//             Every tiled raster is checked bit-identical to the untiled
//             one — the run aborts on any mismatch.
//   * edit  — a cache-enabled HeatmapEngine serving the same request
//             tiled, then again after one circle moved: the tile-granular
//             cache keys resweep only the tiles the edit overlaps, while
//             an untiled engine would resweep the whole raster.
//
// Besides the text tables, the run writes a machine-readable summary to
// BENCH_tile.json (override the path with RNNHM_BENCH_JSON_TILE): one
// record per (phase, metric, grid) with untiled/tiled milliseconds, so CI
// can gate the tiling trajectory next to the other BENCH_*.json files.
// Set RNNHM_BENCH_FULL=1 for larger workloads.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "heatmap/influence.h"
#include "query/heatmap_engine.h"
#include "tile/tile_plan.h"

namespace rnnhm::bench {
namespace {

struct JsonRecord {
  std::string phase;
  std::string metric;
  int grid;            // tiles per side
  double cold_ms;      // untiled sweep / cold tiled serve
  double warm_ms;      // tiled sweep / post-edit tiled serve
  double extra = 0.0;  // sweep: 0; edit: tiles reswept after the edit
};

const Rect kDomain{{0, 0}, {1, 1}};

void RunSweepPhase(const Dataset& dataset, Metric metric, size_t clients,
                   size_t facilities, int resolution,
                   std::vector<JsonRecord>* records) {
  const PreparedWorkload w = Prepare(dataset, clients, facilities, metric, 91);
  SizeInfluence measure;
  const HeatmapGrid untiled = BuildHeatmapForMetric(
      metric, w.circles, measure, kDomain, resolution, resolution);
  const double untiled_ms = TimeMs([&] {
    BuildHeatmapForMetric(metric, w.circles, measure, kDomain, resolution,
                          resolution);
  });
  for (const int grid : {1, 2, 4}) {
    TilePlanOptions options;
    options.rows = grid;
    options.cols = grid;
    const TilePlan plan(metric, w.circles, kDomain, resolution, resolution,
                        options);
    const HeatmapGrid tiled = plan.Run(measure);
    if (tiled.values() != untiled.values()) {
      std::fprintf(stderr, "[sweep/%s] %dx%d tiling is NOT bit-identical\n",
                   MetricName(metric).c_str(), grid, grid);
      std::exit(1);
    }
    const double tiled_ms = TimeMs([&] { plan.Run(measure); });
    std::printf("[sweep/%s] %dx%d at %dx%d px: untiled %.1f ms, tiled "
                "%.1f ms (%.2fx), bit-identical\n",
                MetricName(metric).c_str(), grid, grid, resolution,
                resolution, untiled_ms, tiled_ms,
                tiled_ms > 0.0 ? untiled_ms / tiled_ms : 0.0);
    records->push_back(JsonRecord{"sweep", MetricName(metric), grid,
                                  untiled_ms, tiled_ms, 0.0});
  }
}

void RunEditPhase(const Dataset& dataset, Metric metric, size_t clients,
                  size_t facilities, int resolution, int grid,
                  std::vector<JsonRecord>* records) {
  const PreparedWorkload w = Prepare(dataset, clients, facilities, metric, 92);
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 512ull << 20;
  HeatmapEngine engine(measure, options);

  const CircleSetHandle cold_handle =
      engine.registry().Register(w.circles, metric);
  TiledServeStats cold_stats;
  const double cold_ms = TimeMs([&] {
    engine.ExecuteTiled(
        HeatmapRequestV2{cold_handle, kDomain, resolution, resolution}, grid,
        grid, &cold_stats);
  });

  // One local move: nudge the first circle. Only the tiles its old and
  // new bounding boxes overlap lose their cached fragments.
  std::vector<NnCircle> edited = w.circles;
  edited[0].center.x += 0.01;
  const CircleSetHandle warm_handle =
      engine.registry().Register(std::move(edited), metric);
  TiledServeStats warm_stats;
  const double warm_ms = TimeMs([&] {
    engine.ExecuteTiled(
        HeatmapRequestV2{warm_handle, kDomain, resolution, resolution}, grid,
        grid, &warm_stats);
  });

  std::printf("[edit/%s] %dx%d tiles at %dx%d px: cold %.1f ms (%d swept), "
              "after edit %.1f ms (%d swept, %d cached) — %.2fx\n",
              MetricName(metric).c_str(), grid, grid, resolution, resolution,
              cold_ms, cold_stats.swept_tiles, warm_ms,
              warm_stats.swept_tiles, warm_stats.cached_tiles,
              warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);
  records->push_back(JsonRecord{"edit", MetricName(metric), grid, cold_ms,
                                warm_ms,
                                static_cast<double>(warm_stats.swept_tiles)});
}

void WriteJson(const std::vector<JsonRecord>& records) {
  const char* path = std::getenv("RNNHM_BENCH_JSON_TILE");
  if (path == nullptr) path = "BENCH_tile.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"tile\",\n  \"cells\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"phase\": \"%s\", \"metric\": \"%s\", \"grid\": %d, "
        "\"cold_ms\": %.3f, \"warm_ms\": %.3f, \"extra\": %.3f}%s\n",
        r.phase.c_str(), r.metric.c_str(), r.grid, r.cold_ms, r.warm_ms,
        r.extra, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, records.size());
}

void Run() {
  const bool full = FullMode();
  const int resolution = full ? 512 : 192;
  const size_t linf_clients = full ? 20000 : 2000;
  const size_t l1_clients = full ? 12000 : 1500;
  const size_t l2_clients = full ? 5000 : 800;
  const Dataset dataset =
      MakeDataset(DatasetKind::kUniform, 42, (full ? 20000u : 2000u) * 4);

  std::vector<JsonRecord> records;
  RunSweepPhase(dataset, Metric::kLInf, linf_clients, linf_clients / 100,
                resolution, &records);
  RunSweepPhase(dataset, Metric::kL1, l1_clients, l1_clients / 100,
                resolution, &records);
  RunSweepPhase(dataset, Metric::kL2, l2_clients, l2_clients / 25, resolution,
                &records);
  RunEditPhase(dataset, Metric::kLInf, linf_clients, linf_clients / 100,
               resolution, /*grid=*/4, &records);
  RunEditPhase(dataset, Metric::kL2, l2_clients, l2_clients / 25, resolution,
               /*grid=*/4, &records);
  WriteJson(records);
}

}  // namespace
}  // namespace rnnhm::bench

int main() {
  rnnhm::bench::Run();
  return 0;
}
