// HeatmapEngine throughput: a batch of B independent heat-map requests
// served across worker counts and slab counts. Columns are wall-clock
// milliseconds for the whole batch; the 1-thread/1-slab cell is the
// sequential reference the others should beat.
//
// Set RNNHM_BENCH_FULL=1 for larger batches and request sizes.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "heatmap/influence.h"
#include "query/heatmap_engine.h"

namespace rnnhm::bench {
namespace {

std::vector<HeatmapRequest> MakeBatch(const Dataset& dataset, int batch,
                                      size_t clients, size_t facilities,
                                      int resolution) {
  std::vector<HeatmapRequest> out;
  out.reserve(batch);
  for (int b = 0; b < batch; ++b) {
    const PreparedWorkload w = Prepare(dataset, clients, facilities,
                                       Metric::kLInf, 9000 + b);
    HeatmapRequest req;
    req.circles = w.circles;
    req.domain = Rect{{0, 0}, {1, 1}};
    req.width = resolution;
    req.height = resolution;
    out.push_back(std::move(req));
  }
  return out;
}

void Run() {
  const bool full = FullMode();
  const int batch = full ? 64 : 16;
  const size_t clients = full ? 20000 : 4000;
  const size_t facilities = clients / 100;
  const int resolution = full ? 512 : 256;
  const Dataset dataset = MakeDataset(DatasetKind::kUniform, 42,
                                      clients * 4);
  const auto requests =
      MakeBatch(dataset, batch, clients, facilities, resolution);
  SizeInfluence measure;

  std::printf("batch of %d heat maps, %zu clients, %zu facilities, "
              "%dx%d raster\n\n",
              batch, clients, facilities, resolution, resolution);
  PrintHeader("threads", {"slabs=1", "slabs=2", "slabs=4"});
  for (const int threads : {1, 2, 4, 8}) {
    std::vector<Cell> row;
    for (const int slabs : {1, 2, 4}) {
      HeatmapEngineOptions options;
      options.num_threads = threads;
      options.slabs_per_request = slabs;
      HeatmapEngine engine(measure, options);
      std::vector<HeatmapRequest> copy = requests;
      Cell cell;
      cell.ms = TimeMs([&] { engine.RunBatch(std::move(copy)); });
      row.push_back(cell);
    }
    PrintRow(std::to_string(threads), row);
  }
}

}  // namespace
}  // namespace rnnhm::bench

int main() {
  rnnhm::bench::Run();
  return 0;
}
