// HeatmapEngine throughput: a batch of B independent heat-map requests
// served across worker counts and slab counts, for both the L-infinity
// square sweep and the L2 arc sweep. Columns are wall-clock milliseconds
// for the whole batch; the 1-thread/1-slab cell is the sequential
// reference the others should beat.
//
// Besides the text tables, the run writes a machine-readable summary to
// BENCH_engine.json (override the path with RNNHM_BENCH_JSON) so CI can
// archive the perf trajectory: one record per (metric, threads, slabs)
// cell with batch wall-clock ms and maps/second.
//
// Set RNNHM_BENCH_FULL=1 for larger batches and request sizes.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "heatmap/influence.h"
#include "query/heatmap_engine.h"

namespace rnnhm::bench {
namespace {

struct JsonRecord {
  std::string metric;
  int threads;
  int slabs;
  int batch;
  double ms;
};

std::vector<HeatmapRequest> MakeBatch(const Dataset& dataset, int batch,
                                      size_t clients, size_t facilities,
                                      int resolution, Metric metric) {
  std::vector<HeatmapRequest> out;
  out.reserve(batch);
  for (int b = 0; b < batch; ++b) {
    const PreparedWorkload w =
        Prepare(dataset, clients, facilities, metric, 9000 + b);
    HeatmapRequest req;
    req.circles = w.circles;
    req.domain = Rect{{0, 0}, {1, 1}};
    req.width = resolution;
    req.height = resolution;
    req.metric = metric;
    out.push_back(std::move(req));
  }
  return out;
}

void RunMetric(const Dataset& dataset, Metric metric, int batch,
               size_t clients, size_t facilities, int resolution,
               std::vector<JsonRecord>* records) {
  const auto requests =
      MakeBatch(dataset, batch, clients, facilities, resolution, metric);
  SizeInfluence measure;

  std::printf("[%s] batch of %d heat maps, %zu clients, %zu facilities, "
              "%dx%d raster\n\n",
              MetricName(metric).c_str(), batch, clients, facilities,
              resolution, resolution);
  PrintHeader("threads", {"slabs=1", "slabs=2", "slabs=4"});
  for (const int threads : {1, 2, 4, 8}) {
    std::vector<Cell> row;
    for (const int slabs : {1, 2, 4}) {
      HeatmapEngineOptions options;
      options.num_threads = threads;
      options.slabs_per_request = slabs;
      HeatmapEngine engine(measure, options);
      std::vector<HeatmapRequest> copy = requests;
      Cell cell;
      cell.ms = TimeMs([&] { engine.RunBatch(std::move(copy)); });
      row.push_back(cell);
      records->push_back(JsonRecord{MetricName(metric), threads, slabs,
                                    batch, cell.ms});
    }
    PrintRow(std::to_string(threads), row);
  }
  std::printf("\n");
}

void WriteJson(const std::vector<JsonRecord>& records) {
  const char* path = std::getenv("RNNHM_BENCH_JSON");
  if (path == nullptr) path = "BENCH_engine.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"engine\",\n  \"cells\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    std::fprintf(f,
                 "    {\"metric\": \"%s\", \"threads\": %d, \"slabs\": %d, "
                 "\"batch\": %d, \"ms\": %.3f, \"maps_per_sec\": %.3f}%s\n",
                 r.metric.c_str(), r.threads, r.slabs, r.batch, r.ms,
                 r.ms > 0.0 ? 1000.0 * r.batch / r.ms : 0.0,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, records.size());
}

void Run() {
  const bool full = FullMode();
  const int batch = full ? 64 : 8;
  const size_t clients = full ? 20000 : 2000;
  const size_t facilities = clients / 100;
  const int resolution = full ? 512 : 192;
  const Dataset dataset = MakeDataset(DatasetKind::kUniform, 42,
                                      clients * 4);
  std::vector<JsonRecord> records;
  RunMetric(dataset, Metric::kLInf, batch, clients, facilities, resolution,
            &records);
  // The arc sweep is costlier per request (crossing events are quadratic
  // in the local overlap), so the L2 batch uses a smaller workload with a
  // denser facility set (smaller disks, fewer crossings).
  const size_t l2_clients = full ? 5000 : 800;
  RunMetric(dataset, Metric::kL2, batch, l2_clients,
            std::max<size_t>(1, l2_clients / 25), resolution, &records);
  WriteJson(records);
}

}  // namespace
}  // namespace rnnhm::bench

int main() {
  rnnhm::bench::Run();
  return 0;
}
