// Fig. 8 / Lemma 3: the adversarial diagonal arrangement.
//
// n squares of side n centered on the diagonal produce r = n^2 - n + 2
// regions. Verifies the paper's structural claims at scale: CREST's
// labeling count k stays within [r - 1, 14 r] (Lemma 3) while CREST-A's
// grows far faster, and reports the measured k / r ratio.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/crest.h"
#include "data/generators.h"
#include "heatmap/influence.h"

using namespace rnnhm;
using namespace rnnhm::bench;

int main() {
  const bool full = FullMode();
  const std::vector<int> sizes = full
                                     ? std::vector<int>{16, 64, 256, 1024}
                                     : std::vector<int>{16, 64, 256};

  std::printf("=== Fig. 8 worst case: r = n^2 - n + 2 regions ===\n");
  std::printf("%-8s %12s %12s %12s %8s %12s %12s\n", "n", "r", "k(CREST)",
              "k(CREST-A)", "k/r", "CREST ms", "CREST-A ms");
  SizeInfluence measure;
  for (const int n : sizes) {
    const auto squares = MakeWorstCaseSquares(n);
    const size_t r = static_cast<size_t>(n) * n - n + 2;

    CountingSink crest_sink;
    const double crest_ms =
        TimeMs([&] { RunCrest(squares, measure, &crest_sink); });

    CountingSink a_sink;
    CrestOptions options;
    options.use_changed_intervals = false;
    const double a_ms =
        TimeMs([&] { RunCrest(squares, measure, &a_sink, options); });

    std::printf("%-8d %12zu %12zu %12zu %8.2f %12.1f %12.1f\n", n, r,
                crest_sink.count(), a_sink.count(),
                static_cast<double>(crest_sink.count()) / r, crest_ms, a_ms);
    // Lemma 3 bounds, enforced (abort loudly if violated).
    if (crest_sink.count() + 1 < r || crest_sink.count() > 14 * r) {
      std::printf("!! Lemma 3 bound violated\n");
      return 1;
    }
  }
  std::printf("\n(Lemma 3 holds: r <= k + 1 and k <= 14 r on every row)\n");
  return 0;
}
