// Slab-decomposition scaling of the L2 arc sweep: one big workload swept
// with 1/2/4/8 shards, for the raster path (arc strip sink into a shared
// grid) and the label path (counting sinks). The 1-shard column is the
// sequential reference; the speedup column reports its ratio to the cell.
//
// Set RNNHM_BENCH_FULL=1 for the larger workload.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/crest_l2.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"
#include "heatmap/raster_sink.h"

namespace rnnhm::bench {
namespace {

void Run() {
  const bool full = FullMode();
  const size_t clients = full ? 20000 : 2000;
  const size_t facilities = clients / 25;
  const int resolution = full ? 1024 : 256;
  const Dataset dataset =
      MakeDataset(DatasetKind::kUniform, 7, clients * 4);
  const PreparedWorkload w =
      Prepare(dataset, clients, facilities, Metric::kL2, 1234);
  SizeInfluence measure;
  const Rect domain{{0, 0}, {1, 1}};

  std::printf("L2 arc sweep, %zu clients, %zu facilities, %dx%d raster\n\n",
              clients, facilities, resolution, resolution);
  PrintHeader("shards", {"labels", "raster"});
  double label_base = 0.0;
  double raster_base = 0.0;
  for (const int shards : {1, 2, 4, 8}) {
    std::vector<Cell> row;
    Cell labels;
    labels.ms = TimeMs([&] {
      std::vector<CountingSink> sinks(shards);
      std::vector<RegionLabelSink*> ptrs;
      for (auto& s : sinks) ptrs.push_back(&s);
      RunCrestL2Parallel(w.circles, measure, ptrs);
    });
    row.push_back(labels);
    Cell raster;
    raster.ms = TimeMs([&] {
      BuildHeatmapL2Parallel(w.circles, measure, domain, resolution,
                             resolution, shards);
    });
    row.push_back(raster);
    if (shards == 1) {
      label_base = labels.ms;
      raster_base = raster.ms;
    }
    PrintRow(std::to_string(shards), row);
    std::printf("%-12s %13.2fx %13.2fx\n", "  speedup",
                labels.ms > 0 ? label_base / labels.ms : 0.0,
                raster.ms > 0 ? raster_base / raster.ms : 0.0);
  }
}

}  // namespace
}  // namespace rnnhm::bench

int main() {
  rnnhm::bench::Run();
  return 0;
}
