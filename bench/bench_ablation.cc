// Ablations of the design choices DESIGN.md calls out:
//   1. changed intervals + cached base sets (CREST vs CREST-A): labelings
//      and influence evaluations saved;
//   2. influence-bound pruning inside the Pruning comparator;
//   3. enclosure-index backend for the baseline (segment tree vs R-tree);
//   4. the element-distinctness reduction (Section VI-C) as a scaling probe
//      of the n log n term.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/baseline.h"
#include "core/crest.h"
#include "core/crest_parallel.h"
#include "core/pruning.h"
#include "core/regular_grid.h"
#include "data/generators.h"
#include "heatmap/influence.h"

using namespace rnnhm;
using namespace rnnhm::bench;

int main() {
  const bool full = FullMode();
  SizeInfluence measure;

  std::printf("=== Ablation 1: changed-interval optimization ===\n");
  std::printf("%-10s %12s %12s %10s %12s %12s\n", "|O|", "k(CREST)",
              "k(CREST-A)", "saved", "CREST ms", "CREST-A ms");
  {
    const Dataset ds = MakeDataset(DatasetKind::kNyc, 1);
    for (const size_t n : full ? std::vector<size_t>{1024, 4096, 16384, 65536}
                               : std::vector<size_t>{1024, 4096, 16384}) {
      const PreparedWorkload p =
          Prepare(ds, n, std::max<size_t>(1, n / 64), Metric::kL1, n);
      CountingSink crest_sink, a_sink;
      const double crest_ms =
          TimeMs([&] { RunCrestL1(p.circles, measure, &crest_sink); });
      CrestOptions options;
      options.use_changed_intervals = false;
      const double a_ms =
          TimeMs([&] { RunCrestL1(p.circles, measure, &a_sink, options); });
      std::printf("%-10zu %12zu %12zu %9.1fx %12.1f %12.1f\n", n,
                  crest_sink.count(), a_sink.count(),
                  static_cast<double>(a_sink.count()) /
                      std::max<size_t>(1, crest_sink.count()),
                  crest_ms, a_ms);
    }
  }

  std::printf("\n=== Ablation 2: influence-bound pruning in Pruning ===\n");
  std::printf("%-10s %14s %14s %14s %14s\n", "|O|", "nodes(on)",
              "nodes(off)", "ms(on)", "ms(off)");
  {
    const Dataset ds = MakeDataset(DatasetKind::kUniform, 2);
    for (const size_t n : full ? std::vector<size_t>{128, 256, 512}
                               : std::vector<size_t>{64, 128, 256}) {
      // Keep overlap degrees tractable (|F| = |O|/4) so both variants
      // finish and the node-count effect of the bound is visible.
      const PreparedWorkload p =
          Prepare(ds, n, std::max<size_t>(1, n / 4), Metric::kL2, n);
      PruningResult on, off;
      PruningOptions opt_on, opt_off;
      opt_on.time_budget_ms = opt_off.time_budget_ms = 10000.0;
      opt_off.use_bound_pruning = false;
      const double ms_on =
          TimeMs([&] { on = RunPruning(p.circles, measure, opt_on); });
      const double ms_off =
          TimeMs([&] { off = RunPruning(p.circles, measure, opt_off); });
      std::printf("%-10zu %14zu %14zu %14.1f %14.1f%s\n", n, on.num_nodes,
                  off.num_nodes, ms_on, ms_off,
                  (on.timed_out || off.timed_out) ? "  (budget hit)" : "");
    }
  }

  std::printf("\n=== Ablation 3: baseline enclosure-index backend ===\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "|O|", "segtree", "rtree",
              "quadtree", "intervaltree");
  {
    const Dataset ds = MakeDataset(DatasetKind::kLa, 3);
    for (const size_t n : full ? std::vector<size_t>{256, 512, 1024, 2048}
                               : std::vector<size_t>{256, 512, 1024}) {
      const PreparedWorkload p =
          Prepare(ds, n, std::max<size_t>(1, n / 32), Metric::kL1, n);
      std::printf("%-10zu", n);
      for (const EnclosureBackend backend :
           {EnclosureBackend::kSegmentTree, EnclosureBackend::kRTree,
            EnclosureBackend::kQuadTree, EnclosureBackend::kIntervalTree}) {
        CountingSink sink;
        const double ms = TimeMs(
            [&] { RunBaselineL1(p.circles, measure, &sink, backend); });
        std::printf(" %12.1f", ms);
      }
      std::printf("\n");
    }
  }

  std::printf("\n=== Ablation 4: line-status container "
              "(skip list vs std::multimap) ===\n");
  std::printf("%-10s %14s %14s\n", "|O|", "skiplist ms", "multimap ms");
  {
    const Dataset ds = MakeDataset(DatasetKind::kUniform, 5);
    for (const size_t n : full ? std::vector<size_t>{4096, 16384, 65536}
                               : std::vector<size_t>{4096, 16384}) {
      const PreparedWorkload p =
          Prepare(ds, n, std::max<size_t>(1, n / 64), Metric::kL1, n);
      CountingSink s1, s2;
      const double skip_ms =
          TimeMs([&] { RunCrestL1(p.circles, measure, &s1); });
      CrestOptions options;
      options.status_backend = StatusBackend::kStdMultimap;
      const double map_ms =
          TimeMs([&] { RunCrestL1(p.circles, measure, &s2, options); });
      std::printf("%-10zu %14.1f %14.1f\n", n, skip_ms, map_ms);
    }
  }

  std::printf("\n=== Ablation 5: regular grid granularity dilemma "
              "(Section I) ===\n");
  std::printf("%-10s %12s %14s %14s %12s\n", "grid", "cells",
              "distinct sets", "exact regions", "ms");
  {
    const Dataset ds = MakeDataset(DatasetKind::kNyc, 6);
    const PreparedWorkload p = Prepare(ds, 2048, 32, Metric::kL1, 7);
    // Exact count via CREST (distinct non-empty sets as the yardstick).
    DistinctSetSink exact;
    RunCrestL1(p.circles, measure, &exact);
    std::vector<NnCircle> rotated;  // the grid runs in the rotated frame too
    for (const int g : full ? std::vector<int>{32, 128, 512, 2048}
                            : std::vector<int>{32, 128, 512}) {
      CountingSink sink;
      RegularGridStats stats;
      const double ms = TimeMs([&] {
        stats = RunRegularGrid(RotateCirclesToLInf(p.circles), measure,
                               &sink, g);
      });
      std::printf("%-10d %12zu %14zu %14zu %12.1f\n", g, stats.num_cells,
                  stats.num_distinct_sets, exact.sets().size(), ms);
    }
  }

  std::printf("\n=== Ablation 6: element-distinctness reduction "
              "(Section VI-C) ===\n");
  std::printf("%-10s %14s %14s\n", "n", "distinct sets", "ms");
  {
    Rng rng(4);
    for (const size_t n : full ? std::vector<size_t>{1024, 8192, 65536}
                               : std::vector<size_t>{1024, 8192}) {
      std::vector<double> values;
      for (size_t i = 0; i < n; ++i) values.push_back(rng.Uniform(0, 1));
      const auto squares = MakeElementDistinctnessSquares(values);
      DistinctSetSink sink;
      const double ms = TimeMs([&] { RunCrest(squares, measure, &sink); });
      std::printf("%-10zu %14zu %14.1f\n", n, sink.sets().size(), ms);
    }
    std::printf("(with exactly representable inputs the reduction gives n "
                "distinct sets;\n random doubles splinter the shared corner "
                "by 1 ulp, adding sliver regions)\n");
  }

  std::printf("\n=== Ablation 7: parallel slab decomposition ===\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "|O|", "1 thread", "2 threads",
              "4 threads", "8 threads");
  {
    const Dataset ds = MakeDataset(DatasetKind::kNyc, 8);
    for (const size_t n : full ? std::vector<size_t>{16384, 65536}
                               : std::vector<size_t>{8192, 16384}) {
      const PreparedWorkload p =
          Prepare(ds, n, std::max<size_t>(1, n / 64), Metric::kL1, n);
      const auto rotated = RotateCirclesToLInf(p.circles);
      std::printf("%-10zu", n);
      for (const size_t threads : {1u, 2u, 4u, 8u}) {
        std::vector<CountingSink> sinks(threads);
        std::vector<RegionLabelSink*> ptrs;
        for (auto& s : sinks) ptrs.push_back(&s);
        const double ms =
            TimeMs([&] { RunCrestParallel(rotated, measure, ptrs); });
        std::printf(" %12.1f", ms);
      }
      std::printf("\n");
    }
  }
  return 0;
}
