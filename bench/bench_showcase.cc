// Fig. 1 / Fig. 15 + Table II: real-world heat-map showcase.
//
// Builds the NYC and LA heat maps exactly as Section VIII-A: 20,000
// sampled clients, 6,000 sampled facilities, influence = RNN set size,
// and writes heatmap_nyc.ppm / heatmap_la.ppm. Also prints Table II
// (data set inventory) and summary statistics of each map.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/crest.h"
#include "heatmap/heatmap.h"
#include "heatmap/image.h"
#include "heatmap/influence.h"
#include "heatmap/postprocess.h"

using namespace rnnhm;
using namespace rnnhm::bench;

int main() {
  const bool full = FullMode();
  const size_t num_clients = full ? 20000 : 8000;   // paper: 20,000
  const size_t num_facilities = full ? 6000 : 2400; // paper: 6,000
  const int resolution = full ? 1024 : 512;

  std::printf("=== Table II: data sets ===\n");
  std::printf("%-8s %10s  %s\n", "Name", "Size", "Description");
  for (const DatasetKind kind :
       {DatasetKind::kNyc, DatasetKind::kLa}) {
    const Dataset ds = MakeDataset(kind, /*seed=*/1);
    std::printf("%-8s %10zu  %s\n", ds.name.c_str(), ds.points.size(),
                ds.description.c_str());
  }

  std::printf("\n=== Fig. 1 / Fig. 15: RNN heat maps "
              "(|O| = %zu, |F| = %zu, L1) ===\n",
              num_clients, num_facilities);
  SizeInfluence measure;
  for (const DatasetKind kind : {DatasetKind::kNyc, DatasetKind::kLa}) {
    const Dataset ds = MakeDataset(kind, /*seed=*/1);
    const Workload w =
        SampleWorkload(ds, num_clients, num_facilities, /*seed=*/1);
    Stopwatch sw;
    const Rect domain = BoundingBox(ds.points, 0.005);
    const HeatmapGrid grid = BuildHeatmapL1(w.clients, w.facilities, measure,
                                            domain, resolution, resolution);
    const double build_ms = sw.ElapsedMs();

    // Region statistics via the sweep's label stream.
    const auto circles = BuildNnCircles(w.clients, w.facilities, Metric::kL1);
    RegionQuerySink regions;
    MaxInfluenceSink max_sink;
    TeeSink tee({&regions, &max_sink});
    const CrestStats stats = RunCrestL1(circles, measure, &tee);

    const std::string path =
        std::string("heatmap_") + (kind == DatasetKind::kNyc ? "nyc" : "la") +
        ".ppm";
    const bool ok = WritePpm(grid, path);
    std::printf(
        "%-4s heat map: %dx%d px in %.0f ms | %zu labelings, %zu distinct "
        "RNN sets, max influence %.0f | %s %s\n",
        ds.name.c_str(), resolution, resolution, build_ms,
        stats.num_labelings, regions.NumDistinctSets(),
        max_sink.max_influence(), ok ? "wrote" : "FAILED to write",
        path.c_str());
  }
  return 0;
}
