// Fig. 16: effect of |O|/|F| with the L1 distance.
//
// Fixed |O|, ratio |O|/|F| swept over powers of two; series are the
// baseline (BA), CREST-A (RNN-derivation optimization only) and full CREST,
// on the LA / NYC / Uniform / Zipfian data sets. The paper reports CREST
// beating BA by >= 3 orders of magnitude and CREST-A by several times.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/baseline.h"
#include "core/crest.h"
#include "heatmap/influence.h"

using namespace rnnhm;
using namespace rnnhm::bench;

int main() {
  const bool full = FullMode();
  const size_t num_clients = full ? 1024 : 256;  // paper: |O| = 2^10
  const std::vector<size_t> ratios =
      full ? std::vector<size_t>{2, 4, 16, 64, 128, 256, 1024}
           : std::vector<size_t>{2, 16, 64, 256};

  std::printf("=== Fig. 16: effect of |O|/|F|, L1 distance "
              "(|O| = %zu, CPU ms) ===\n", num_clients);
  SizeInfluence measure;
  for (const DatasetKind kind : kAllDatasets) {
    const Dataset dataset = MakeDataset(kind, /*seed=*/20160216);
    std::printf("\n-- %s --\n", dataset.name.c_str());
    PrintHeader("ratio", {"BA", "CREST-A", "CREST"});
    for (const size_t ratio : ratios) {
      const size_t num_facilities = std::max<size_t>(1, num_clients / ratio);
      const PreparedWorkload p = Prepare(dataset, num_clients, num_facilities,
                                         Metric::kL1, /*seed=*/ratio);
      Cell ba, crest_a, crest;
      {
        CountingSink sink;
        ba.ms = TimeMs([&] { RunBaselineL1(p.circles, measure, &sink); });
      }
      {
        CountingSink sink;
        CrestOptions options;
        options.use_changed_intervals = false;
        crest_a.ms =
            TimeMs([&] { RunCrestL1(p.circles, measure, &sink, options); });
      }
      {
        CountingSink sink;
        crest.ms = TimeMs([&] { RunCrestL1(p.circles, measure, &sink); });
      }
      PrintRow(std::to_string(ratio), {ba, crest_a, crest});
    }
  }
  return 0;
}
