// Fig. 18: effect of |O|/|F| with the L2 distance.
//
// CREST-L2 vs the Pruning algorithm of [22] on the maximum-influence task
// under the capacity-constrained measure (the setting where Pruning
// performs best, per Section VIII-C). The paper reports Pruning degrading
// rapidly as the ratio grows (overlap degree explodes); Pruning runs here
// carry a wall-clock budget, mirroring the paper's 24 h early termination.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/crest_l2.h"
#include "core/pruning.h"
#include "heatmap/influence.h"

using namespace rnnhm;
using namespace rnnhm::bench;

int main() {
  const bool full = FullMode();
  const size_t num_clients = full ? 1024 : 256;  // paper: |O| = 2^10
  const std::vector<size_t> ratios =
      full ? std::vector<size_t>{2, 4, 16, 64, 128, 256, 1024}
           : std::vector<size_t>{2, 16, 64, 256};
  const double pruning_budget_ms = full ? 60000.0 : 5000.0;

  std::printf("=== Fig. 18: effect of |O|/|F|, L2 distance, max-influence "
              "task (|O| = %zu, CPU ms; Pruning budget %.0fs) ===\n",
              num_clients, pruning_budget_ms / 1000.0);
  for (const DatasetKind kind : kAllDatasets) {
    const Dataset dataset = MakeDataset(kind, /*seed=*/20160218);
    std::printf("\n-- %s --\n", dataset.name.c_str());
    PrintHeader("ratio", {"Pruning", "CREST-L2", "agree"});
    for (const size_t ratio : ratios) {
      const size_t num_facilities = std::max<size_t>(1, num_clients / ratio);
      const PreparedWorkload p = Prepare(dataset, num_clients, num_facilities,
                                         Metric::kL2, /*seed=*/ratio);
      // Capacity-constrained measure of [22] (Section VIII-C).
      const std::vector<int32_t> client_nn =
          AssignClients(p.workload, Metric::kL2);
      std::vector<int32_t> caps(p.workload.facilities.size(), 5);
      CapacityInfluence measure(client_nn, caps, 5);

      Cell pruning_cell, crest_cell, agree;
      PruningResult pruning;
      {
        PruningOptions options;
        options.time_budget_ms = pruning_budget_ms;
        pruning_cell.ms =
            TimeMs([&] { pruning = RunPruning(p.circles, measure, options); });
        pruning_cell.capped = pruning.timed_out;
      }
      MaxInfluenceSink sink;
      crest_cell.ms = TimeMs([&] { RunCrestL2(p.circles, measure, &sink); });
      // "agree": 1 if both found the same max (0 expected only when the
      // Pruning run was cut off by its budget).
      agree.ms =
          (sink.HasResult() && pruning.max_influence == sink.max_influence())
              ? 1.0
              : 0.0;
      PrintRow(std::to_string(ratio), {pruning_cell, crest_cell, agree});
    }
  }
  return 0;
}
