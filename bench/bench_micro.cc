// Micro-benchmarks of the substrates (google-benchmark).
//
// These are not paper figures; they quantify the building blocks CREST's
// complexity analysis relies on: O(log n) line-status operations, O(1)
// base-set edits with O(lambda) copies, and the enclosure-query costs the
// baseline pays per grid cell.
//
// After the google-benchmark tables, the run times the raster hot-path
// kernels deterministically (fixed work, Stopwatch) and writes the
// results to BENCH_micro.json (override with RNNHM_BENCH_JSON_MICRO):
// one cell per (kernel, simd) with milliseconds, so CI can gate the SIMD
// arc-evaluation and sink-paint paths against a committed baseline the
// same way the end-to-end benches gate sweeps.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/base_set.h"
#include "data/generators.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"
#include "heatmap/raster_kernels.h"
#include "index/enclosure_index.h"
#include "index/kdtree.h"
#include "index/rtree.h"
#include "index/skiplist.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {
namespace {

void BM_SkipListInsertErase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> keys;
  for (int i = 0; i < n; ++i) keys.push_back(rng.Uniform(0, 1));
  for (auto _ : state) {
    SkipList<double, int> list;
    std::vector<SkipList<double, int>::Node*> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i) handles.push_back(list.Insert(keys[i], i));
    for (int i = 0; i < n; ++i) list.Erase(handles[i]);
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_SkipListInsertErase)->Range(1 << 10, 1 << 16);

void BM_MultimapInsertErase(benchmark::State& state) {
  // Comparison point for the line-status container choice.
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> keys;
  for (int i = 0; i < n; ++i) keys.push_back(rng.Uniform(0, 1));
  for (auto _ : state) {
    std::multimap<double, int> map;
    std::vector<std::multimap<double, int>::iterator> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i) handles.push_back(map.emplace(keys[i], i));
    for (int i = 0; i < n; ++i) map.erase(handles[i]);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_MultimapInsertErase)->Range(1 << 10, 1 << 16);

void BM_KdTreeNearest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const auto pts = GenerateUniform(n, Rect{{0, 0}, {1, 1}}, rng);
  KdTree tree(pts);
  Rng qrng(3);
  for (auto _ : state) {
    const Point q{qrng.Uniform(0, 1), qrng.Uniform(0, 1)};
    benchmark::DoNotOptimize(tree.Nearest(q, Metric::kL1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeNearest)->Range(1 << 10, 1 << 18);

void BM_EnclosureStab(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<Rect> rects;
  for (int i = 0; i < n; ++i) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const double r = rng.Uniform(0.001, 0.05);
    rects.push_back(Rect{{p.x - r, p.y - r}, {p.x + r, p.y + r}});
  }
  EnclosureIndex index(rects);
  Rng qrng(5);
  size_t hits = 0;
  for (auto _ : state) {
    const Point q{qrng.Uniform(0, 1), qrng.Uniform(0, 1)};
    index.Stab(q, [&](int32_t) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnclosureStab)->Range(1 << 10, 1 << 16);

void BM_RTreeStab(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<Rect> rects;
  for (int i = 0; i < n; ++i) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const double r = rng.Uniform(0.001, 0.05);
    rects.push_back(Rect{{p.x - r, p.y - r}, {p.x + r, p.y + r}});
  }
  RTree tree;
  tree.BulkLoad(rects);
  Rng qrng(5);
  size_t hits = 0;
  for (auto _ : state) {
    const Point q{qrng.Uniform(0, 1), qrng.Uniform(0, 1)};
    tree.Stab(q, [&](int32_t) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeStab)->Range(1 << 10, 1 << 16);

void BM_BaseSetEditCopy(benchmark::State& state) {
  const int lambda = static_cast<int>(state.range(0));
  BaseSet set(1 << 18);
  std::vector<int32_t> scratch;
  for (auto _ : state) {
    for (int i = 0; i < lambda; ++i) set.Add(i);
    set.CopyTo(scratch);
    for (int i = 0; i < lambda; ++i) set.Remove(i);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * lambda);
}
BENCHMARK(BM_BaseSetEditCopy)->Range(4, 1 << 12);

void BM_NnCircleConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  const auto clients = GenerateUniform(n, Rect{{0, 0}, {1, 1}}, rng);
  const auto facilities =
      GenerateUniform(std::max(1, n / 64), Rect{{0, 0}, {1, 1}}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildNnCircles(clients, facilities, Metric::kL1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NnCircleConstruction)->Range(1 << 10, 1 << 16);

void BM_ArcYAtColumns(benchmark::State& state) {
  // The per-column arc evaluation RasterArcSink batches on the L2 hot
  // path; range(0) == 0 forces the scalar backend for comparison.
  const bool simd = state.range(0) != 0;
  SetRasterBackendForTesting(simd ? DetectedRasterBackend()
                                  : RasterBackend::kScalar);
  constexpr int kCols = 4096;
  std::vector<double> xs(kCols), out(kCols);
  for (int k = 0; k < kCols; ++k) xs[k] = -0.6 + 1.2 * k / kCols;
  const Point center{0.1, -0.2};
  for (auto _ : state) {
    ArcYAtColumns(center, 0.45, false, xs.data(), out.data(), kCols);
    ArcYAtColumns(center, 0.45, true, xs.data(), out.data(), kCols);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  ResetRasterBackendForTesting();
  state.SetItemsProcessed(state.iterations() * kCols * 2);
}
BENCHMARK(BM_ArcYAtColumns)->Arg(0)->Arg(1);

}  // namespace

namespace bench {
namespace {

struct MicroCell {
  std::string kernel;
  std::string simd;  // "on" / "off"
  int n;
  double ms;
};

// Fixed-work kernel timings (no adaptive iteration count): the same
// deterministic workload every run, so the committed BENCH_micro.json
// baseline gates regressions meaningfully.
void TimeArcEval(bool simd, std::vector<MicroCell>* cells) {
  SetRasterBackendForTesting(simd ? DetectedRasterBackend()
                                  : RasterBackend::kScalar);
  constexpr int kCols = 4096;
  constexpr int kReps = 4000;
  std::vector<double> xs(kCols), out(kCols);
  for (int k = 0; k < kCols; ++k) xs[k] = -0.6 + 1.2 * k / kCols;
  const Point center{0.1, -0.2};
  const double ms = TimeMs([&] {
    for (int r = 0; r < kReps; ++r) {
      ArcYAtColumns(center, 0.45, false, xs.data(), out.data(), kCols);
      ArcYAtColumns(center, 0.45, true, xs.data(), out.data(), kCols);
    }
  });
  ResetRasterBackendForTesting();
  cells->push_back(MicroCell{"arc_eval", simd ? "on" : "off", kCols, ms});
}

void TimeL2Raster(bool simd, const std::vector<NnCircle>& circles,
                  std::vector<MicroCell>* cells) {
  SetRasterBackendForTesting(simd ? DetectedRasterBackend()
                                  : RasterBackend::kScalar);
  SizeInfluence measure;
  constexpr int kRes = 192;
  const Rect domain{{0, 0}, {1, 1}};
  const double ms = TimeMs([&] {
    const HeatmapGrid grid =
        BuildHeatmapL2(circles, measure, domain, kRes, kRes);
    benchmark::DoNotOptimize(grid.values().data());
  });
  ResetRasterBackendForTesting();
  cells->push_back(MicroCell{"l2_raster", simd ? "on" : "off",
                             static_cast<int>(circles.size()), ms});
}

void TimeStripFill(std::vector<MicroCell>* cells) {
  // The LInf square sweep's row-fill path (scalar by design: std::fill
  // saturates memory bandwidth; timed so sink regressions still gate).
  Rng rng(52);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 2000; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.01, 0.1), i});
  }
  SizeInfluence measure;
  constexpr int kRes = 192;
  const double ms = TimeMs([&] {
    const HeatmapGrid grid = BuildHeatmapLInf(circles, measure,
                                              Rect{{0, 0}, {1, 1}}, kRes,
                                              kRes);
    benchmark::DoNotOptimize(grid.values().data());
  });
  cells->push_back(
      MicroCell{"strip_fill", "off", static_cast<int>(circles.size()), ms});
}

void TimePixelAxisLowerBound(std::vector<MicroCell>* cells) {
  const PixelAxis axis(-0.05, 1.1 / 512, 512);
  Rng rng(53);
  constexpr int kProbes = 1 << 20;
  std::vector<double> bounds(kProbes);
  for (int i = 0; i < kProbes; ++i) bounds[i] = rng.Uniform(-0.2, 1.2);
  long long sum = 0;
  const double ms = TimeMs([&] {
    for (int i = 0; i < kProbes; ++i) sum += axis.LowerBound(bounds[i]);
  });
  benchmark::DoNotOptimize(sum);
  cells->push_back(MicroCell{"pixel_axis_lower_bound", "off", kProbes, ms});
}

void WriteMicroJson() {
  std::vector<MicroCell> cells;
  TimeArcEval(/*simd=*/false, &cells);
  TimeArcEval(/*simd=*/true, &cells);
  Rng rng(51);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 800; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.01, 0.12), i});
  }
  TimeL2Raster(/*simd=*/false, circles, &cells);
  TimeL2Raster(/*simd=*/true, circles, &cells);
  TimeStripFill(&cells);
  TimePixelAxisLowerBound(&cells);

  const char* path = std::getenv("RNNHM_BENCH_JSON_MICRO");
  if (path == nullptr) path = "BENCH_micro.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"micro\",\n  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const MicroCell& c = cells[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"simd\": \"%s\", \"n\": %d, "
                 "\"ms\": %.3f}%s\n",
                 c.kernel.c_str(), c.simd.c_str(), c.n, c.ms,
                 i + 1 < cells.size() ? "," : "");
    std::printf("[micro/%s simd=%s] n=%d: %.3f ms\n", c.kernel.c_str(),
                c.simd.c_str(), c.n, c.ms);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, cells.size());
}

}  // namespace
}  // namespace bench
}  // namespace rnnhm

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  rnnhm::bench::WriteMicroJson();
  return 0;
}
