// Micro-benchmarks of the substrates (google-benchmark).
//
// These are not paper figures; they quantify the building blocks CREST's
// complexity analysis relies on: O(log n) line-status operations, O(1)
// base-set edits with O(lambda) copies, and the enclosure-query costs the
// baseline pays per grid cell.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "core/base_set.h"
#include "data/generators.h"
#include "index/enclosure_index.h"
#include "index/kdtree.h"
#include "index/rtree.h"
#include "index/skiplist.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {
namespace {

void BM_SkipListInsertErase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> keys;
  for (int i = 0; i < n; ++i) keys.push_back(rng.Uniform(0, 1));
  for (auto _ : state) {
    SkipList<double, int> list;
    std::vector<SkipList<double, int>::Node*> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i) handles.push_back(list.Insert(keys[i], i));
    for (int i = 0; i < n; ++i) list.Erase(handles[i]);
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_SkipListInsertErase)->Range(1 << 10, 1 << 16);

void BM_MultimapInsertErase(benchmark::State& state) {
  // Comparison point for the line-status container choice.
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> keys;
  for (int i = 0; i < n; ++i) keys.push_back(rng.Uniform(0, 1));
  for (auto _ : state) {
    std::multimap<double, int> map;
    std::vector<std::multimap<double, int>::iterator> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i) handles.push_back(map.emplace(keys[i], i));
    for (int i = 0; i < n; ++i) map.erase(handles[i]);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_MultimapInsertErase)->Range(1 << 10, 1 << 16);

void BM_KdTreeNearest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const auto pts = GenerateUniform(n, Rect{{0, 0}, {1, 1}}, rng);
  KdTree tree(pts);
  Rng qrng(3);
  for (auto _ : state) {
    const Point q{qrng.Uniform(0, 1), qrng.Uniform(0, 1)};
    benchmark::DoNotOptimize(tree.Nearest(q, Metric::kL1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeNearest)->Range(1 << 10, 1 << 18);

void BM_EnclosureStab(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<Rect> rects;
  for (int i = 0; i < n; ++i) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const double r = rng.Uniform(0.001, 0.05);
    rects.push_back(Rect{{p.x - r, p.y - r}, {p.x + r, p.y + r}});
  }
  EnclosureIndex index(rects);
  Rng qrng(5);
  size_t hits = 0;
  for (auto _ : state) {
    const Point q{qrng.Uniform(0, 1), qrng.Uniform(0, 1)};
    index.Stab(q, [&](int32_t) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnclosureStab)->Range(1 << 10, 1 << 16);

void BM_RTreeStab(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<Rect> rects;
  for (int i = 0; i < n; ++i) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const double r = rng.Uniform(0.001, 0.05);
    rects.push_back(Rect{{p.x - r, p.y - r}, {p.x + r, p.y + r}});
  }
  RTree tree;
  tree.BulkLoad(rects);
  Rng qrng(5);
  size_t hits = 0;
  for (auto _ : state) {
    const Point q{qrng.Uniform(0, 1), qrng.Uniform(0, 1)};
    tree.Stab(q, [&](int32_t) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeStab)->Range(1 << 10, 1 << 16);

void BM_BaseSetEditCopy(benchmark::State& state) {
  const int lambda = static_cast<int>(state.range(0));
  BaseSet set(1 << 18);
  std::vector<int32_t> scratch;
  for (auto _ : state) {
    for (int i = 0; i < lambda; ++i) set.Add(i);
    set.CopyTo(scratch);
    for (int i = 0; i < lambda; ++i) set.Remove(i);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * lambda);
}
BENCHMARK(BM_BaseSetEditCopy)->Range(4, 1 << 12);

void BM_NnCircleConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  const auto clients = GenerateUniform(n, Rect{{0, 0}, {1, 1}}, rng);
  const auto facilities =
      GenerateUniform(std::max(1, n / 64), Rect{{0, 0}, {1, 1}}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildNnCircles(clients, facilities, Metric::kL1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NnCircleConstruction)->Range(1 << 10, 1 << 16);

}  // namespace
}  // namespace rnnhm

BENCHMARK_MAIN();
