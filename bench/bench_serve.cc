// Network serving benchmark: requests/sec and latency percentiles of the
// socket serving stack under concurrent clients, single server vs the
// multi-process shard router.
//
// Topologies (both over Unix-domain sockets — no port allocation, and the
// transport cost is the same framing/event-loop path TCP takes):
//   * single  — one forked server process, one engine;
//   * sharded — a forked ShardFleet (one engine per shard) behind a
//               forked ShardRouter front.
// Every server process is forked BEFORE the client threads exist, and
// every listener is bound before the fork (a connection raced in early
// just queues in the backlog), so the load phase starts clean.
//
// The load: N concurrent client threads, each on its own connection with
// its own circle set — one inline registration (warmup, untimed), then a
// timed loop of by-hash requests measuring each round-trip. Reported per
// topology: requests/sec across all clients, p50/p99 round-trip latency.
// The engines run with the result cache enabled, so after each client's
// warmup sweep the timed loop measures the serving stack itself —
// framing, event loop, routing, response encode — not CREST (bench_engine
// covers sweep throughput).
//
// Besides the text table, the run writes BENCH_serve.json (override with
// RNNHM_BENCH_JSON_SERVE). Set RNNHM_BENCH_FULL=1 for more clients and
// requests.
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/status.h"
#include "heatmap/influence.h"
#include "query/circle_set_registry.h"
#include "query/heatmap_engine.h"
#include "query/wire.h"
#include "serve/event_loop.h"
#include "serve/options.h"
#include "serve/shard_router.h"
#include "serve/transport.h"

namespace rnnhm::bench {
namespace {

std::vector<NnCircle> MakeCircles(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<NnCircle> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.02, 0.2),
                           static_cast<int32_t>(i)});
  }
  return out;
}

const Rect kServeDomain{{-0.1, -0.1}, {1.1, 1.1}};

struct TopologyResult {
  std::string topology;
  int shards = 0;
  int clients = 0;
  long requests = 0;
  double wall_ms = 0;
  double rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

// Forks a child that serves `listener` with a fresh single-thread engine.
// The parent closes only its fd copy and must keep the Listener object
// alive until the load is done — destroying it would unlink the socket
// path the child is serving on.
pid_t ForkSingleServer(Listener& listener, const ServeOptions& options) {
  const pid_t pid = ::fork();
  if (pid != 0) {
    listener.CloseFdOnly();  // the child owns the accepting
    return pid;
  }
  SizeInfluence measure;
  HeatmapEngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.cache_bytes = options.cache_bytes;
  HeatmapEngine engine(measure, engine_options);
  EventLoopServer server(std::move(listener), engine, options);
  InstallShutdownSignalHandlers(&server);
  const Status status = server.Run();
  std::_Exit(status.ok() ? 0 : 1);
}

// Forks the router front over an already-spawned fleet (same listener
// lifetime contract as ForkSingleServer).
pid_t ForkRouter(Listener& front, const std::vector<std::string>& shard_paths,
                 const ServeOptions& options) {
  const pid_t pid = ::fork();
  if (pid != 0) {
    front.CloseFdOnly();
    return pid;
  }
  ShardRouter router(std::move(front), shard_paths, options);
  InstallRouterSignalHandlers(&router);
  const Status status = router.Run();
  std::_Exit(status.ok() ? 0 : 1);
}

void StopProcess(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGTERM);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
}

// One client: connect, register its set inline (untimed warmup), then a
// timed by-hash loop appending each round-trip's latency to `latencies`.
void ClientLoad(const std::string& path, uint64_t seed, size_t circles,
                int raster, int requests, std::vector<double>* latencies) {
  int fd = -1;
  if (!ConnectUnix(path, &fd).ok()) {
    std::fprintf(stderr, "client %llu: connect failed\n",
                 static_cast<unsigned long long>(seed));
    return;
  }
  const auto set =
      CircleSetSnapshot::Make(MakeCircles(seed, circles), Metric::kLInf);
  std::vector<uint8_t> reply;
  const std::vector<uint8_t> warmup = EncodeRequest(
      MakeWireRequest(*set, kServeDomain, raster, raster, true));
  if (!SendFrame(fd, warmup).ok() || !RecvFrame(fd, &reply).ok()) {
    std::fprintf(stderr, "client %llu: warmup failed\n",
                 static_cast<unsigned long long>(seed));
    ::close(fd);
    return;
  }
  std::string error;
  const auto decoded = DecodeResponse(reply, &error);
  if (!decoded.has_value() || decoded->status != WireStatus::kOk) {
    std::fprintf(stderr, "client %llu: warmup rejected\n",
                 static_cast<unsigned long long>(seed));
    ::close(fd);
    return;
  }
  const std::vector<uint8_t> by_hash = EncodeRequest(
      MakeWireRequest(*set, kServeDomain, raster, raster, false));
  latencies->reserve(requests);
  for (int i = 0; i < requests; ++i) {
    Stopwatch sw;
    if (!SendFrame(fd, by_hash).ok() || !RecvFrame(fd, &reply).ok()) {
      std::fprintf(stderr, "client %llu: request %d failed\n",
                   static_cast<unsigned long long>(seed), i);
      break;
    }
    latencies->push_back(sw.ElapsedMs());
  }
  ::close(fd);
}

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1, static_cast<size_t>(q * (sorted.size() - 1)));
  return sorted[index];
}

TopologyResult RunLoad(const std::string& topology, const std::string& path,
                       int shards, int clients, size_t circles, int raster,
                       int per_client) {
  std::vector<std::vector<double>> lanes(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Stopwatch wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(ClientLoad, path, 500 + c, circles, raster,
                         per_client, &lanes[c]);
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = wall.ElapsedMs();

  std::vector<double> all;
  for (const auto& lane : lanes) all.insert(all.end(), lane.begin(),
                                            lane.end());
  std::sort(all.begin(), all.end());
  TopologyResult result;
  result.topology = topology;
  result.shards = shards;
  result.clients = clients;
  result.requests = static_cast<long>(all.size());
  result.wall_ms = wall_ms;
  result.rps = wall_ms > 0 ? all.size() / (wall_ms / 1e3) : 0;
  result.p50_ms = Percentile(all, 0.50);
  result.p99_ms = Percentile(all, 0.99);
  std::printf("[%s] %d shard(s), %d clients, %ld requests: %.0f req/s, "
              "p50 %.2f ms, p99 %.2f ms\n",
              topology.c_str(), shards, clients, result.requests, result.rps,
              result.p50_ms, result.p99_ms);
  if (result.requests != static_cast<long>(clients) * per_client) {
    std::fprintf(stderr, "[%s] WARNING: expected %ld requests, measured %ld\n",
                 topology.c_str(), static_cast<long>(clients) * per_client,
                 result.requests);
  }
  return result;
}

void WriteJson(const std::vector<TopologyResult>& results) {
  const char* path = std::getenv("RNNHM_BENCH_JSON_SERVE");
  if (path == nullptr) path = "BENCH_serve.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"serve\",\n  \"cells\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const TopologyResult& r = results[i];
    std::fprintf(
        f,
        "    {\"topology\": \"%s\", \"shards\": %d, \"clients\": %d, "
        "\"requests\": %ld, \"wall_ms\": %.1f, \"rps\": %.1f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
        r.topology.c_str(), r.shards, r.clients, r.requests, r.wall_ms, r.rps,
        r.p50_ms, r.p99_ms, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, results.size());
}

void Run() {
  const bool full = FullMode();
  const int clients = full ? 16 : 8;
  const int per_client = full ? 300 : 80;
  const size_t circles = full ? 10000 : 2000;
  const int raster = 64;
  const int shards = full ? 4 : 2;

  const std::string dir =
      "/tmp/rnnhm-bench-serve-" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0700);
  const std::string single_path = dir + "/single.sock";
  const std::string front_path = dir + "/front.sock";

  ServeOptions options;
  options.transport = TransportKind::kUnix;
  options.threads = 1;
  options.cache_bytes = 64ull << 20;  // timed loop = serving stack, no sweep
  options.idle_timeout_ms = 0;
  options.num_shards = shards;
  options.socket_dir = dir;

  // All forks happen here, while this process is still single-threaded.
  Listener single_listener;
  if (!Listener::ListenUnix(single_path, &single_listener).ok()) {
    std::fprintf(stderr, "cannot bind %s\n", single_path.c_str());
    return;
  }
  const pid_t single_pid = ForkSingleServer(single_listener, options);

  ShardFleet fleet;
  if (!ShardFleet::Spawn(options, &fleet).ok()) {
    std::fprintf(stderr, "cannot spawn the shard fleet\n");
    StopProcess(single_pid);
    return;
  }
  Listener front;
  if (!Listener::ListenUnix(front_path, &front).ok()) {
    std::fprintf(stderr, "cannot bind %s\n", front_path.c_str());
    StopProcess(single_pid);
    return;
  }
  const pid_t router_pid = ForkRouter(front, fleet.socket_paths(), options);

  std::vector<TopologyResult> results;
  results.push_back(RunLoad("single", single_path, 1, clients, circles,
                            raster, per_client));
  results.push_back(RunLoad("sharded", front_path, shards, clients, circles,
                            raster, per_client));

  StopProcess(router_pid);
  fleet.Shutdown();
  StopProcess(single_pid);
  ::unlink(single_path.c_str());
  ::unlink(front_path.c_str());
  ::rmdir(dir.c_str());
  WriteJson(results);
}

}  // namespace
}  // namespace rnnhm::bench

int main() {
  rnnhm::bench::Run();
  return 0;
}
