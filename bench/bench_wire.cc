// Wire protocol + handle-vs-inline serving benchmark.
//
// Three phases:
//   * codec/request  — encode/decode throughput of framed v2 requests
//                      (inline circle payloads, content-hash verified);
//   * codec/response — encode/decode throughput of full responses (the
//                      grid payload dominates);
//   * submit         — per-call latency of a warm cache-enabled engine,
//                      legacy inline Execute (hashes the circle vector
//                      every call) vs v2 handle Execute (precomputed hash,
//                      O(1) probe) — the latency gap the handle API buys.
//
// Besides the text table, the run writes a machine-readable summary to
// BENCH_wire.json (override with RNNHM_BENCH_JSON_WIRE): one record per
// (phase, variant) with MB/s for the codec phases and microseconds per
// call for the submit phase. Set RNNHM_BENCH_FULL=1 for larger sizes.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "heatmap/influence.h"
#include "query/circle_set_registry.h"
#include "query/heatmap_engine.h"
#include "query/wire.h"

namespace rnnhm::bench {
namespace {

struct JsonRecord {
  std::string phase;
  std::string variant;
  long work;        // circles (codec/request), pixels (codec/response),
                    // calls (submit)
  double ms;        // total wall time of the timed loop
  double mb_per_s;  // codec phases; 0 for submit
  double us_per_call;  // submit phase; 0 for codec
};

std::vector<NnCircle> MakeCircles(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<NnCircle> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.02, 0.2),
                           static_cast<int32_t>(i)});
  }
  return out;
}

const Rect kDomain{{-0.1, -0.1}, {1.1, 1.1}};

void RunRequestCodec(size_t circles, int iters,
                     std::vector<JsonRecord>* records) {
  const auto set =
      CircleSetSnapshot::Make(MakeCircles(11, circles), Metric::kL2);
  const WireRequest request =
      MakeWireRequest(*set, kDomain, 512, 512, /*include_circles=*/true);
  std::vector<uint8_t> bytes;
  const double encode_ms = TimeMs([&] {
    for (int i = 0; i < iters; ++i) bytes = EncodeRequest(request);
  });
  std::string error;
  const double decode_ms = TimeMs([&] {
    for (int i = 0; i < iters; ++i) {
      if (!DecodeRequest(bytes, &error).has_value()) std::abort();
    }
  });
  const double mb = static_cast<double>(bytes.size()) * iters / 1e6;
  const double encode_mbs = encode_ms > 0 ? mb / (encode_ms / 1e3) : 0.0;
  const double decode_mbs = decode_ms > 0 ? mb / (decode_ms / 1e3) : 0.0;
  std::printf("[codec/request] %zu circles (%zu bytes): encode %.0f MB/s, "
              "decode %.0f MB/s (hash-verified)\n",
              circles, bytes.size(), encode_mbs, decode_mbs);
  records->push_back(JsonRecord{"codec_request", "encode",
                                static_cast<long>(circles), encode_ms,
                                encode_mbs, 0.0});
  records->push_back(JsonRecord{"codec_request", "decode",
                                static_cast<long>(circles), decode_ms,
                                decode_mbs, 0.0});
}

void RunResponseCodec(int resolution, int iters,
                      std::vector<JsonRecord>* records) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  HeatmapEngine engine(measure, options);
  const HeatmapResponse response = engine.Execute(HeatmapRequest{
      MakeCircles(12, 500), kDomain, resolution, resolution, Metric::kLInf});
  std::vector<uint8_t> bytes;
  const double encode_ms = TimeMs([&] {
    for (int i = 0; i < iters; ++i) bytes = EncodeResponse(response);
  });
  std::string error;
  const double decode_ms = TimeMs([&] {
    for (int i = 0; i < iters; ++i) {
      if (!DecodeResponse(bytes, &error).has_value()) std::abort();
    }
  });
  const double mb = static_cast<double>(bytes.size()) * iters / 1e6;
  const double encode_mbs = encode_ms > 0 ? mb / (encode_ms / 1e3) : 0.0;
  const double decode_mbs = decode_ms > 0 ? mb / (decode_ms / 1e3) : 0.0;
  const long pixels = static_cast<long>(resolution) * resolution;
  std::printf("[codec/response] %dx%d grid (%zu bytes): encode %.0f MB/s, "
              "decode %.0f MB/s\n",
              resolution, resolution, bytes.size(), encode_mbs, decode_mbs);
  records->push_back(
      JsonRecord{"codec_response", "encode", pixels, encode_ms, encode_mbs,
                 0.0});
  records->push_back(
      JsonRecord{"codec_response", "decode", pixels, decode_ms, decode_mbs,
                 0.0});
}

void RunSubmitLatency(size_t circles, int resolution, int iters,
                      std::vector<JsonRecord>* records) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 256ull << 20;
  HeatmapEngine engine(measure, options);
  const HeatmapRequest inline_request{MakeCircles(13, circles), kDomain,
                                      resolution, resolution, Metric::kLInf};
  const CircleSetHandle handle = engine.registry().Register(
      inline_request.circles, inline_request.metric);
  const HeatmapRequestV2 handle_request{handle, kDomain, resolution,
                                        resolution};
  (void)engine.Execute(handle_request);  // warm the cache

  // Warm hits only: both variants return the memoized response; the cost
  // difference is the per-call circle-vector hash the inline path pays.
  const double inline_ms = TimeMs([&] {
    for (int i = 0; i < iters; ++i) (void)engine.Execute(inline_request);
  });
  const double handle_ms = TimeMs([&] {
    for (int i = 0; i < iters; ++i) (void)engine.Execute(handle_request);
  });
  const double inline_us = inline_ms * 1e3 / iters;
  const double handle_us = handle_ms * 1e3 / iters;
  std::printf("[submit] %zu circles at %dx%d, warm cache: inline %.1f "
              "us/call, handle %.1f us/call (%.1fx)\n",
              circles, resolution, resolution, inline_us, handle_us,
              handle_us > 0 ? inline_us / handle_us : 0.0);
  records->push_back(JsonRecord{"submit", "inline", iters, inline_ms, 0.0,
                                inline_us});
  records->push_back(JsonRecord{"submit", "handle", iters, handle_ms, 0.0,
                                handle_us});
}

void WriteJson(const std::vector<JsonRecord>& records) {
  const char* path = std::getenv("RNNHM_BENCH_JSON_WIRE");
  if (path == nullptr) path = "BENCH_wire.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"wire\",\n  \"cells\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"phase\": \"%s\", \"variant\": \"%s\", \"work\": %ld, "
        "\"ms\": %.3f, \"mb_per_s\": %.1f, \"us_per_call\": %.3f}%s\n",
        r.phase.c_str(), r.variant.c_str(), r.work, r.ms, r.mb_per_s,
        r.us_per_call, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, records.size());
}

void Run() {
  const bool full = FullMode();
  const size_t circles = full ? 100000 : 10000;
  const int codec_iters = full ? 200 : 50;
  const int resolution = full ? 512 : 256;
  const int submit_iters = full ? 2000 : 500;

  std::vector<JsonRecord> records;
  RunRequestCodec(circles, codec_iters, &records);
  RunResponseCodec(resolution, codec_iters, &records);
  RunSubmitLatency(circles, 128, submit_iters, &records);
  WriteJson(records);
}

}  // namespace
}  // namespace rnnhm::bench

int main() {
  rnnhm::bench::Run();
  return 0;
}
