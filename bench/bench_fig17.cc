// Fig. 17: effect of data set size with the L1 distance.
//
// Ratio |O|/|F| fixed, |O| swept over powers of two. The paper fixes the
// ratio at 2^7 and sweeps |O| from 2^7 to 2^16; BA is early-terminated
// beyond 2^13 (24 h). Here BA is capped at a smaller size by default.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/baseline.h"
#include "core/crest.h"
#include "heatmap/influence.h"

using namespace rnnhm;
using namespace rnnhm::bench;

int main() {
  const bool full = FullMode();
  const size_t ratio = full ? 128 : 32;  // paper: 2^7
  const std::vector<size_t> sizes =
      full ? std::vector<size_t>{128, 512, 2048, 8192, 32768, 65536}
           : std::vector<size_t>{128, 512, 2048, 8192};
  const size_t ba_cap = full ? 8192 : 1024;  // paper stopped BA at 2^13

  std::printf("=== Fig. 17: effect of |O|, L1 distance "
              "(|O|/|F| = %zu, CPU ms; BA capped at %zu) ===\n",
              ratio, ba_cap);
  SizeInfluence measure;
  for (const DatasetKind kind : kAllDatasets) {
    const Dataset dataset = MakeDataset(kind, /*seed=*/20160217);
    std::printf("\n-- %s --\n", dataset.name.c_str());
    PrintHeader("|O|", {"BA", "CREST-A", "CREST"});
    for (const size_t n : sizes) {
      const size_t num_facilities = std::max<size_t>(1, n / ratio);
      const PreparedWorkload p =
          Prepare(dataset, n, num_facilities, Metric::kL1, /*seed=*/n);
      Cell ba, crest_a, crest;
      if (n <= ba_cap) {
        CountingSink sink;
        ba.ms = TimeMs([&] { RunBaselineL1(p.circles, measure, &sink); });
      }
      {
        CountingSink sink;
        CrestOptions options;
        options.use_changed_intervals = false;
        crest_a.ms =
            TimeMs([&] { RunCrestL1(p.circles, measure, &sink, options); });
      }
      {
        CountingSink sink;
        crest.ms = TimeMs([&] { RunCrestL1(p.circles, measure, &sink); });
      }
      PrintRow(std::to_string(n), {ba, crest_a, crest});
    }
  }
  return 0;
}
