#include "query/sweep_cache.h"

#include <cstring>

#include "heatmap/serialization.h"

namespace rnnhm {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashDouble(uint64_t* h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  HashBytes(h, &bits, sizeof(bits));
}

bool SameRequest(const HeatmapRequest& a, const HeatmapRequest& b) {
  if (a.metric != b.metric || a.width != b.width || a.height != b.height ||
      !(a.domain == b.domain) || a.circles.size() != b.circles.size()) {
    return false;
  }
  for (size_t i = 0; i < a.circles.size(); ++i) {
    if (!(a.circles[i].center == b.circles[i].center) ||
        a.circles[i].radius != b.circles[i].radius ||
        a.circles[i].client != b.circles[i].client) {
      return false;
    }
  }
  return true;
}

// Resident footprint of one entry: the memoized grid at its serialized
// size plus the key's circle payload (what dominates in practice).
size_t EntryBytes(const HeatmapRequest& request,
                  const HeatmapResponse& response) {
  return SerializedSizeBytes(response.grid) +
         request.circles.size() * sizeof(NnCircle) + sizeof(HeatmapRequest);
}

}  // namespace

SweepCache::SweepCache(SweepCacheOptions options) : options_(options) {}

uint64_t SweepCache::Fingerprint(const HeatmapRequest& request) {
  uint64_t h = kFnvOffset;
  const int32_t metric = static_cast<int32_t>(request.metric);
  HashBytes(&h, &metric, sizeof(metric));
  HashBytes(&h, &request.width, sizeof(request.width));
  HashBytes(&h, &request.height, sizeof(request.height));
  HashDouble(&h, request.domain.lo.x);
  HashDouble(&h, request.domain.lo.y);
  HashDouble(&h, request.domain.hi.x);
  HashDouble(&h, request.domain.hi.y);
  for (const NnCircle& c : request.circles) {
    HashDouble(&h, c.center.x);
    HashDouble(&h, c.center.y);
    HashDouble(&h, c.radius);
    HashBytes(&h, &c.client, sizeof(c.client));
  }
  return h;
}

std::optional<HeatmapResponse> SweepCache::Lookup(
    const HeatmapRequest& request) {
  const uint64_t key = Fingerprint(request);
  std::shared_ptr<const HeatmapResponse> found;
  SweepCacheStats snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end() || !SameRequest(it->second->request, request)) {
      ++stats_.misses;
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // mark most-recently used
    ++stats_.hits;
    found = it->second->response;
    snapshot = stats_;
  }
  // Materialize the caller's copy outside the critical section: the entry
  // is immutable, so concurrent hits copy the grid in parallel (eviction
  // in another thread only drops the shared reference, never the bytes).
  HeatmapResponse out = *found;
  out.from_cache = true;
  out.cache = snapshot;
  return out;
}

void SweepCache::Insert(HeatmapRequest request,
                        const HeatmapResponse& response) {
  const uint64_t key = Fingerprint(request);
  const size_t bytes = EntryBytes(request, response);
  if (bytes > options_.max_bytes) return;  // would evict everything for one
  // Copy the response before taking the lock (it is the expensive part);
  // stored copies are pristine: no hit flag, no stale stats snapshot.
  auto stored = std::make_shared<HeatmapResponse>(response);
  stored->from_cache = false;
  stored->cache = SweepCacheStats{};
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {  // replace (also heals a fingerprint collision)
    stats_.bytes -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    --stats_.entries;
  }
  lru_.push_front(Entry{key, std::move(request), std::move(stored), bytes});
  index_[key] = lru_.begin();
  stats_.bytes += bytes;
  ++stats_.entries;
  ++stats_.insertions;
  EvictToFitLocked();
}

void SweepCache::EvictToFitLocked() {
  while (!lru_.empty() && (stats_.bytes > options_.max_bytes ||
                           stats_.entries > options_.max_entries)) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    --stats_.entries;
    ++stats_.evictions;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

SweepCacheStats SweepCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SweepCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
}

}  // namespace rnnhm
