#include "query/sweep_cache.h"

#include <cstring>
#include <utility>

#include "common/mutex.h"

#include "heatmap/serialization.h"

namespace rnnhm {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashDouble(uint64_t* h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  HashBytes(h, &bits, sizeof(bits));
}

// Resident footprint of one entry: the memoized grid at its serialized
// size plus the key's circle payload (what dominates in practice).
// Deliberately conservative for v2 entries: several entries sharing one
// snapshot each charge the full circle payload, so the budget over- (never
// under-) estimates residency and hit/miss behavior matches the legacy
// per-request accounting exactly.
size_t EntryBytes(size_t num_circles, const HeatmapResponse& response) {
  return SerializedSizeBytes(response.grid) + num_circles * sizeof(NnCircle) +
         sizeof(HeatmapRequest);
}

}  // namespace

SweepCache::SweepCache(SweepCacheOptions options) : options_(options) {}

SweepCacheKey SweepCache::KeyOf(const HeatmapRequest& request) {
  return SweepCacheKey{HashCircleSet(request.circles, request.metric),
                       request.domain, request.width, request.height};
}

uint64_t SweepCache::Fingerprint(const SweepCacheKey& key) {
  uint64_t h = kFnvOffset;
  HashBytes(&h, &key.set_hash, sizeof(key.set_hash));
  HashDouble(&h, key.domain.lo.x);
  HashDouble(&h, key.domain.lo.y);
  HashDouble(&h, key.domain.hi.x);
  HashDouble(&h, key.domain.hi.y);
  HashBytes(&h, &key.width, sizeof(key.width));
  HashBytes(&h, &key.height, sizeof(key.height));
  HashBytes(&h, &key.tile_col_lo, sizeof(key.tile_col_lo));
  HashBytes(&h, &key.tile_col_hi, sizeof(key.tile_col_hi));
  HashBytes(&h, &key.tile_row_lo, sizeof(key.tile_row_lo));
  HashBytes(&h, &key.tile_row_hi, sizeof(key.tile_row_hi));
  return h;
}

uint64_t SweepCache::Fingerprint(const HeatmapRequest& request) {
  return Fingerprint(KeyOf(request));
}

template <typename SameSet>
std::optional<HeatmapResponse> SweepCache::LookupImpl(
    const SweepCacheKey& key, const SameSet& same_set) {
  const uint64_t fingerprint = Fingerprint(key);
  std::shared_ptr<const HeatmapResponse> found;
  SweepCacheStats snapshot;
  {
    MutexLock lock(&mu_);
    const auto it = index_.find(fingerprint);
    if (it == index_.end() || !(it->second->key == key) ||
        !same_set(*it->second->set)) {
      ++stats_.misses;
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // mark most-recently used
    ++stats_.hits;
    found = it->second->response;
    snapshot = stats_;
  }
  // Materialize the caller's copy outside the critical section: the entry
  // is immutable, so concurrent hits copy the grid in parallel (eviction
  // in another thread only drops the shared reference, never the bytes).
  HeatmapResponse out = *found;
  out.from_cache = true;
  out.cache = snapshot;
  return out;
}

std::optional<HeatmapResponse> SweepCache::Lookup(
    const SweepCacheKey& key,
    const std::shared_ptr<const CircleSetSnapshot>& set) {
  return LookupImpl(key, [&](const CircleSetSnapshot& entry_set) {
    return &entry_set == set.get() ||
           entry_set.SameContent(set->circles(), set->metric());
  });
}

std::optional<HeatmapResponse> SweepCache::Lookup(
    const SweepCacheKey& key, std::span<const NnCircle> circles,
    Metric metric) {
  return LookupImpl(key, [&](const CircleSetSnapshot& entry_set) {
    return entry_set.SameContent(circles, metric);
  });
}

std::optional<HeatmapResponse> SweepCache::Lookup(
    const HeatmapRequest& request) {
  return Lookup(KeyOf(request), request.circles, request.metric);
}

void SweepCache::Insert(const SweepCacheKey& key,
                        std::shared_ptr<const CircleSetSnapshot> set,
                        const HeatmapResponse& response) {
  const uint64_t fingerprint = Fingerprint(key);
  const size_t bytes = EntryBytes(set->circles().size(), response);
  if (bytes > options_.max_bytes) return;  // would evict everything for one
  // Copy the response before taking the lock (it is the expensive part);
  // stored copies are pristine: no hit flag, no stale stats snapshot.
  auto stored = std::make_shared<HeatmapResponse>(response);
  stored->from_cache = false;
  stored->cache = SweepCacheStats{};
  MutexLock lock(&mu_);
  const auto it = index_.find(fingerprint);
  if (it != index_.end()) {  // replace (also heals a fingerprint collision)
    stats_.bytes -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    --stats_.entries;
  }
  lru_.push_front(
      Entry{fingerprint, key, std::move(set), std::move(stored), bytes});
  index_[fingerprint] = lru_.begin();
  stats_.bytes += bytes;
  ++stats_.entries;
  ++stats_.insertions;
  EvictToFitLocked();
}

void SweepCache::Insert(HeatmapRequest request,
                        const HeatmapResponse& response) {
  const Metric metric = request.metric;
  const SweepCacheKey key{HashCircleSet(request.circles, metric),
                          request.domain, request.width, request.height};
  Insert(key, CircleSetSnapshot::Make(std::move(request.circles), metric),
         response);
}

void SweepCache::EvictToFitLocked() {
  while (!lru_.empty() && (stats_.bytes > options_.max_bytes ||
                           stats_.entries > options_.max_entries)) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    --stats_.entries;
    ++stats_.evictions;
    index_.erase(victim.fingerprint);
    lru_.pop_back();
  }
}

SweepCacheStats SweepCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void SweepCache::Clear() {
  MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
}

}  // namespace rnnhm
