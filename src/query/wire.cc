#include "query/wire.h"

#include <cstring>
#include <exception>
#include <iterator>
#include <utility>

#include "heatmap/serialization.h"
#include "query/wire_layout.h"

namespace rnnhm {

namespace {

constexpr char kRequestMagic[4] = {'R', 'N', 'W', 'Q'};
constexpr char kResponseMagic[4] = {'R', 'N', 'W', 'S'};
constexpr char kStatsRequestMagic[4] = {'R', 'N', 'W', 'T'};
constexpr char kStatsResponseMagic[4] = {'R', 'N', 'W', 'U'};
constexpr char kDeltaRequestMagic[4] = {'R', 'N', 'W', 'D'};
constexpr char kTileRequestMagic[4] = {'R', 'N', 'W', 'L'};
constexpr uint8_t kFlagInlineCircles = 0x1;
// Sizes and peek offsets come from the declarative layout tables; the
// static_assert battery below keeps this codec and those tables in
// lockstep (tools/check_wire_layout.py independently re-checks both
// against the Put* sequences in this file).
constexpr size_t kCircleBytes = wire_layout::kCircleBytes;
constexpr size_t kRequestHeaderBytes = wire_layout::kRequestHeaderBytes;
constexpr size_t kResponseHeaderBytes = wire_layout::kResponseHeaderBytes;
// The set_hash field's fixed offset in a request header. A delta request
// shares this prefix layout with base_hash in the set_hash slot (so the
// routing peek reads one offset for both) followed by new_hash; a tile
// request shares the whole plain header (through the circle count) and
// appends the tile grid + id before the circle payload.
constexpr size_t kRequestSetHashOffset = wire_layout::kRequestSetHashOffset;
constexpr size_t kDeltaNewHashOffset = wire_layout::kDeltaNewHashOffset;
constexpr size_t kDeltaHeaderBytes = wire_layout::kDeltaHeaderBytes;
constexpr size_t kTileIdOffset = wire_layout::kTileIdOffset;
constexpr size_t kTileHeaderBytes = wire_layout::kTileHeaderBytes;
constexpr size_t kStatsRequestBytes = wire_layout::kStatsRequestBytes;
constexpr size_t kStatsResponseBytes = wire_layout::kStatsResponseBytes;

// --- Wire-layout lint (compile time) --------------------------------------
// Every layout table must be gap-free from offset 0 and sum to its
// declared frame size; the offsets this codec hard-wires (routing peeks,
// shared prefixes) must match the tables field-for-field. A perturbed
// offset in either place is a build break, not a protocol corruption.

namespace wl = wire_layout;

static_assert(wl::Contiguous(wl::kRequestLayout) &&
              wl::TotalBytes(wl::kRequestLayout) == kRequestHeaderBytes);
static_assert(wl::Contiguous(wl::kResponseLayout) &&
              wl::TotalBytes(wl::kResponseLayout) == kResponseHeaderBytes);
static_assert(wl::Contiguous(wl::kDeltaLayout) &&
              wl::TotalBytes(wl::kDeltaLayout) == kDeltaHeaderBytes);
static_assert(wl::Contiguous(wl::kTileLayout) &&
              wl::TotalBytes(wl::kTileLayout) == kTileHeaderBytes);
static_assert(wl::Contiguous(wl::kStatsRequestLayout) &&
              wl::TotalBytes(wl::kStatsRequestLayout) == kStatsRequestBytes);
static_assert(wl::Contiguous(wl::kStatsResponseLayout) &&
              wl::TotalBytes(wl::kStatsResponseLayout) == kStatsResponseBytes);
static_assert(wl::Contiguous(wl::kCircleLayout) &&
              wl::TotalBytes(wl::kCircleLayout) == kCircleBytes);

// Routing peeks: PeekRequestSetHash / PeekRouteInfo read these raw
// offsets without decoding, so they must match the tables exactly.
static_assert(wl::OffsetOf(wl::kRequestLayout, "set_hash") ==
              kRequestSetHashOffset);
static_assert(wl::OffsetOf(wl::kDeltaLayout, "base_hash") ==
              kRequestSetHashOffset);
static_assert(wl::OffsetOf(wl::kDeltaLayout, "new_hash") ==
              kDeltaNewHashOffset);
static_assert(wl::OffsetOf(wl::kTileLayout, "set_hash") ==
              kRequestSetHashOffset);
static_assert(wl::OffsetOf(wl::kTileLayout, "tile_id") == kTileIdOffset);

// Shared-prefix contracts: a delta is a request with base_hash in the
// set_hash slot; a tile request is a whole request plus the tile grid.
static_assert(wl::OffsetOf(wl::kRequestLayout, "circle_count") ==
              wl::OffsetOf(wl::kTileLayout, "circle_count"));
static_assert(wl::OffsetOf(wl::kRequestLayout, "set_hash") ==
              wl::OffsetOf(wl::kDeltaLayout, "base_hash"));
static_assert(wl::OffsetOf(wl::kTileLayout, "tile_rows") ==
              kRequestHeaderBytes);

// The current protocol version must be the last history row, and its
// published sizes must be the live ones.
static_assert(wl::kWireVersionHistory[std::size(wl::kWireVersionHistory) -
                                      1]
                      .version == kWireVersion &&
              wl::kWireVersionHistory[std::size(wl::kWireVersionHistory) -
                                      1]
                      .request_header_bytes == kRequestHeaderBytes);
static_assert(wl::kWireVersionHistory[std::size(wl::kWireVersionHistory) -
                                      1]
                  .stats_response_bytes == kStatsResponseBytes);

// --- Little-endian primitives (explicit, host-endianness independent) -----

void PutMagic(std::vector<uint8_t>* out, const char magic[4]) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(magic[i]));
  }
}

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

// Bounds-checked sequential reader; the first short read latches !ok and
// every later Get returns zero, so decoders can read a whole header and
// test ok() once.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return ok_ ? size_ - pos_ : 0; }

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, 1);
    return v;
  }
  uint16_t U16() {
    uint8_t b[2] = {};
    Raw(b, 2);
    return static_cast<uint16_t>(b[0] | (b[1] << 8));
  }
  uint32_t U32() {
    uint8_t b[4] = {};
    Raw(b, 4);
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  uint64_t U64() {
    uint8_t b[8] = {};
    Raw(b, 8);
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool Magic(const char expected[4]) {
    uint8_t b[4] = {};
    Raw(b, 4);
    return ok_ && std::memcmp(b, expected, 4) == 0;
  }
  void Raw(void* dst, size_t len) {
    if (!ok_ || size_ - pos_ < len) {
      ok_ = false;
      std::memset(dst, 0, len);
      return;
    }
    std::memcpy(dst, data_ + pos_, len);
    pos_ += len;
  }
  const uint8_t* cursor() const { return data_ + pos_; }
  void Skip(size_t len) {
    if (!ok_ || size_ - pos_ < len) {
      ok_ = false;
      return;
    }
    pos_ += len;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

std::nullopt_t Fail(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return std::nullopt;
}

}  // namespace

StatusCode FromWireStatus(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return StatusCode::kOk;
    case WireStatus::kMalformedRequest:
      return StatusCode::kInvalidArgument;
    case WireStatus::kUnknownCircleSet:
      return StatusCode::kNotFound;
    case WireStatus::kServerError:
      break;
  }
  return StatusCode::kInternal;
}

WireStatus ToWireStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kResourceExhausted:
      return WireStatus::kMalformedRequest;
    case StatusCode::kNotFound:
      return WireStatus::kUnknownCircleSet;
    case StatusCode::kInternal:
    case StatusCode::kUnavailable:
    case StatusCode::kDataLoss:
    case StatusCode::kDeadlineExceeded:
      break;
  }
  return WireStatus::kServerError;
}

WireRequest MakeWireRequest(const CircleSetSnapshot& set, const Rect& domain,
                            int width, int height, bool include_circles) {
  WireRequest request;
  request.metric = set.metric();
  request.set_hash = set.content_hash();
  request.inline_circles = include_circles;
  if (include_circles) request.circles = set.circles();
  request.domain = domain;
  request.width = width;
  request.height = height;
  return request;
}

std::vector<uint8_t> EncodeRequest(const WireRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(kRequestHeaderBytes + request.circles.size() * kCircleBytes);
  PutMagic(&out, kRequestMagic);
  PutU32(&out, kWireVersion);
  out.push_back(static_cast<uint8_t>(request.metric));
  out.push_back(request.inline_circles ? kFlagInlineCircles : 0);
  PutU16(&out, 0);  // reserved
  PutI32(&out, request.width);
  PutI32(&out, request.height);
  PutF64(&out, request.domain.lo.x);
  PutF64(&out, request.domain.lo.y);
  PutF64(&out, request.domain.hi.x);
  PutF64(&out, request.domain.hi.y);
  PutU64(&out, request.set_hash);
  PutU64(&out, request.inline_circles
                   ? static_cast<uint64_t>(request.circles.size())
                   : 0);
  if (request.inline_circles) {
    for (const NnCircle& c : request.circles) {
      PutF64(&out, c.center.x);
      PutF64(&out, c.center.y);
      PutF64(&out, c.radius);
      PutI32(&out, c.client);
    }
  }
  return out;
}

std::optional<WireRequest> DecodeRequest(std::span<const uint8_t> bytes,
                                         std::string* error) {
  Reader r(bytes.data(), bytes.size());
  if (!r.Magic(kRequestMagic)) return Fail(error, "bad request magic");
  if (r.U32() != kWireVersion) {
    return Fail(error, "unsupported wire version");
  }
  WireRequest request;
  const uint8_t metric = r.U8();
  const uint8_t flags = r.U8();
  const uint16_t reserved = r.U16();
  request.width = r.I32();
  request.height = r.I32();
  request.domain.lo.x = r.F64();
  request.domain.lo.y = r.F64();
  request.domain.hi.x = r.F64();
  request.domain.hi.y = r.F64();
  request.set_hash = r.U64();
  const uint64_t count = r.U64();
  if (!r.ok()) return Fail(error, "request header truncated");
  if (metric > static_cast<uint8_t>(Metric::kL2)) {
    return Fail(error, "unknown metric");
  }
  request.metric = static_cast<Metric>(metric);
  if ((flags & ~kFlagInlineCircles) != 0 || reserved != 0) {
    return Fail(error, "reserved request bits set");
  }
  request.inline_circles = (flags & kFlagInlineCircles) != 0;
  if (request.width <= 0 || request.height <= 0) {
    return Fail(error, "non-positive raster size");
  }
  if (!(request.domain.lo.x < request.domain.hi.x) ||
      !(request.domain.lo.y < request.domain.hi.y)) {
    return Fail(error, "degenerate request domain");
  }
  if (!request.inline_circles) {
    if (count != 0) return Fail(error, "by-reference request carries circles");
    if (r.remaining() != 0) return Fail(error, "trailing request bytes");
    return request;
  }
  if (r.remaining() / kCircleBytes < count ||
      r.remaining() != count * kCircleBytes) {
    return Fail(error, "circle payload size mismatch");
  }
  request.circles.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    NnCircle c;
    c.center.x = r.F64();
    c.center.y = r.F64();
    c.radius = r.F64();
    c.client = r.I32();
    request.circles.push_back(c);
  }
  if (!r.ok()) return Fail(error, "circle payload truncated");
  if (HashCircleSet(request.circles, request.metric) != request.set_hash) {
    return Fail(error, "circle payload does not match its content hash");
  }
  return request;
}

std::optional<WireRequest> DecodeRequest(std::span<const uint8_t> bytes,
                                         Status* status) {
  std::string error;
  std::optional<WireRequest> request = DecodeRequest(bytes, &error);
  if (status != nullptr) {
    *status = request.has_value() ? Status::Ok()
                                  : Status::InvalidArgument(std::move(error));
  }
  return request;
}

std::optional<uint64_t> PeekRequestSetHash(std::span<const uint8_t> bytes) {
  const std::optional<WireRouteInfo> info = PeekRouteInfo(bytes);
  if (!info.has_value()) return std::nullopt;
  return info->route_hash;
}

std::optional<WireRouteInfo> PeekRouteInfo(std::span<const uint8_t> bytes) {
  if (bytes.size() < kRequestSetHashOffset + sizeof(uint64_t)) {
    return std::nullopt;
  }
  const bool is_request = std::memcmp(bytes.data(), kRequestMagic, 4) == 0;
  const bool is_delta = std::memcmp(bytes.data(), kDeltaRequestMagic, 4) == 0;
  const bool is_tile = std::memcmp(bytes.data(), kTileRequestMagic, 4) == 0;
  if (!is_request && !is_delta && !is_tile) return std::nullopt;
  Reader version(bytes.data() + 4, 4);
  if (version.U32() != kWireVersion) return std::nullopt;
  WireRouteInfo info;
  info.is_delta = is_delta;
  info.is_tile = is_tile;
  Reader hash(bytes.data() + kRequestSetHashOffset, sizeof(uint64_t));
  info.route_hash = hash.U64();
  if (is_delta) {
    if (bytes.size() < kDeltaNewHashOffset + sizeof(uint64_t)) {
      return std::nullopt;
    }
    Reader derived(bytes.data() + kDeltaNewHashOffset, sizeof(uint64_t));
    info.derived_hash = derived.U64();
  }
  if (is_tile) {
    if (bytes.size() < kTileIdOffset + sizeof(uint32_t)) {
      return std::nullopt;
    }
    Reader tile(bytes.data() + kTileIdOffset, sizeof(uint32_t));
    info.tile_id = tile.U32();
  }
  return info;
}

std::vector<uint8_t> EncodeDeltaRequest(const WireDeltaRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(kDeltaHeaderBytes +
              request.edits.size() * (1 + sizeof(uint32_t) + kCircleBytes));
  PutMagic(&out, kDeltaRequestMagic);
  PutU32(&out, kWireVersion);
  out.push_back(static_cast<uint8_t>(request.metric));
  out.push_back(0);  // flags (none defined for deltas)
  PutU16(&out, 0);   // reserved
  PutI32(&out, request.width);
  PutI32(&out, request.height);
  PutF64(&out, request.domain.lo.x);
  PutF64(&out, request.domain.lo.y);
  PutF64(&out, request.domain.hi.x);
  PutF64(&out, request.domain.hi.y);
  PutU64(&out, request.base_hash);
  PutU64(&out, request.new_hash);
  PutU64(&out, static_cast<uint64_t>(request.edits.size()));
  for (const CircleSetEdit& edit : request.edits) {
    out.push_back(static_cast<uint8_t>(edit.kind));
    switch (edit.kind) {
      case CircleSetEdit::Kind::kReplace:
        PutU32(&out, edit.index);
        PutF64(&out, edit.circle.center.x);
        PutF64(&out, edit.circle.center.y);
        PutF64(&out, edit.circle.radius);
        PutI32(&out, edit.circle.client);
        break;
      case CircleSetEdit::Kind::kAppend:
        PutF64(&out, edit.circle.center.x);
        PutF64(&out, edit.circle.center.y);
        PutF64(&out, edit.circle.radius);
        PutI32(&out, edit.circle.client);
        break;
      case CircleSetEdit::Kind::kSwapRemove:
        PutU32(&out, edit.index);
        break;
    }
  }
  return out;
}

bool IsDeltaRequest(std::span<const uint8_t> bytes) {
  return bytes.size() >= 4 &&
         std::memcmp(bytes.data(), kDeltaRequestMagic, 4) == 0;
}

std::optional<WireDeltaRequest> DecodeDeltaRequest(
    std::span<const uint8_t> bytes, std::string* error) {
  Reader r(bytes.data(), bytes.size());
  if (!r.Magic(kDeltaRequestMagic)) {
    return Fail(error, "bad delta request magic");
  }
  if (r.U32() != kWireVersion) {
    return Fail(error, "unsupported wire version");
  }
  WireDeltaRequest request;
  const uint8_t metric = r.U8();
  const uint8_t flags = r.U8();
  const uint16_t reserved = r.U16();
  request.width = r.I32();
  request.height = r.I32();
  request.domain.lo.x = r.F64();
  request.domain.lo.y = r.F64();
  request.domain.hi.x = r.F64();
  request.domain.hi.y = r.F64();
  request.base_hash = r.U64();
  request.new_hash = r.U64();
  const uint64_t count = r.U64();
  if (!r.ok()) return Fail(error, "delta request header truncated");
  if (metric > static_cast<uint8_t>(Metric::kL2)) {
    return Fail(error, "unknown metric");
  }
  request.metric = static_cast<Metric>(metric);
  if (flags != 0 || reserved != 0) {
    return Fail(error, "reserved delta request bits set");
  }
  if (request.width <= 0 || request.height <= 0) {
    return Fail(error, "non-positive raster size");
  }
  if (!(request.domain.lo.x < request.domain.hi.x) ||
      !(request.domain.lo.y < request.domain.hi.y)) {
    return Fail(error, "degenerate request domain");
  }
  // Every edit is at least one op byte, so a count over the remaining
  // payload can never be satisfied — reject before reserving memory.
  if (count > r.remaining()) {
    return Fail(error, "delta edit count over the payload size");
  }
  request.edits.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CircleSetEdit edit;
    const uint8_t kind = r.U8();
    if (!r.ok()) return Fail(error, "delta edit list truncated");
    if (kind > static_cast<uint8_t>(CircleSetEdit::Kind::kSwapRemove)) {
      return Fail(error, "unknown delta edit kind");
    }
    edit.kind = static_cast<CircleSetEdit::Kind>(kind);
    switch (edit.kind) {
      case CircleSetEdit::Kind::kReplace:
        edit.index = r.U32();
        edit.circle.center.x = r.F64();
        edit.circle.center.y = r.F64();
        edit.circle.radius = r.F64();
        edit.circle.client = r.I32();
        break;
      case CircleSetEdit::Kind::kAppend:
        edit.circle.center.x = r.F64();
        edit.circle.center.y = r.F64();
        edit.circle.radius = r.F64();
        edit.circle.client = r.I32();
        break;
      case CircleSetEdit::Kind::kSwapRemove:
        edit.index = r.U32();
        break;
    }
    if (!r.ok()) return Fail(error, "delta edit list truncated");
    request.edits.push_back(edit);
  }
  if (r.remaining() != 0) {
    return Fail(error, "trailing delta request bytes");
  }
  return request;
}

std::optional<WireDeltaRequest> DecodeDeltaRequest(
    std::span<const uint8_t> bytes, Status* status) {
  std::string error;
  std::optional<WireDeltaRequest> request = DecodeDeltaRequest(bytes, &error);
  if (status != nullptr) {
    *status = request.has_value() ? Status::Ok()
                                  : Status::InvalidArgument(std::move(error));
  }
  return request;
}

WireTileRequest MakeWireTileRequest(const CircleSetSnapshot& set,
                                    const Rect& domain, int width, int height,
                                    bool include_circles, int tile_rows,
                                    int tile_cols, int tile_id) {
  WireTileRequest request;
  request.metric = set.metric();
  request.set_hash = set.content_hash();
  request.inline_circles = include_circles;
  if (include_circles) request.circles = set.circles();
  request.domain = domain;
  request.width = width;
  request.height = height;
  request.tile_rows = tile_rows;
  request.tile_cols = tile_cols;
  request.tile_id = tile_id;
  return request;
}

std::vector<uint8_t> EncodeTileRequest(const WireTileRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(kTileHeaderBytes + request.circles.size() * kCircleBytes);
  PutMagic(&out, kTileRequestMagic);
  PutU32(&out, kWireVersion);
  out.push_back(static_cast<uint8_t>(request.metric));
  out.push_back(request.inline_circles ? kFlagInlineCircles : 0);
  PutU16(&out, 0);  // reserved
  PutI32(&out, request.width);
  PutI32(&out, request.height);
  PutF64(&out, request.domain.lo.x);
  PutF64(&out, request.domain.lo.y);
  PutF64(&out, request.domain.hi.x);
  PutF64(&out, request.domain.hi.y);
  PutU64(&out, request.set_hash);
  PutU64(&out, request.inline_circles
                   ? static_cast<uint64_t>(request.circles.size())
                   : 0);
  PutI32(&out, request.tile_rows);
  PutI32(&out, request.tile_cols);
  PutI32(&out, request.tile_id);
  if (request.inline_circles) {
    for (const NnCircle& c : request.circles) {
      PutF64(&out, c.center.x);
      PutF64(&out, c.center.y);
      PutF64(&out, c.radius);
      PutI32(&out, c.client);
    }
  }
  return out;
}

bool IsTileRequest(std::span<const uint8_t> bytes) {
  return bytes.size() >= 4 &&
         std::memcmp(bytes.data(), kTileRequestMagic, 4) == 0;
}

std::optional<WireTileRequest> DecodeTileRequest(std::span<const uint8_t> bytes,
                                                 std::string* error) {
  Reader r(bytes.data(), bytes.size());
  if (!r.Magic(kTileRequestMagic)) return Fail(error, "bad tile request magic");
  if (r.U32() != kWireVersion) {
    return Fail(error, "unsupported wire version");
  }
  WireTileRequest request;
  const uint8_t metric = r.U8();
  const uint8_t flags = r.U8();
  const uint16_t reserved = r.U16();
  request.width = r.I32();
  request.height = r.I32();
  request.domain.lo.x = r.F64();
  request.domain.lo.y = r.F64();
  request.domain.hi.x = r.F64();
  request.domain.hi.y = r.F64();
  request.set_hash = r.U64();
  const uint64_t count = r.U64();
  request.tile_rows = r.I32();
  request.tile_cols = r.I32();
  request.tile_id = r.I32();
  if (!r.ok()) return Fail(error, "tile request header truncated");
  if (metric > static_cast<uint8_t>(Metric::kL2)) {
    return Fail(error, "unknown metric");
  }
  request.metric = static_cast<Metric>(metric);
  if ((flags & ~kFlagInlineCircles) != 0 || reserved != 0) {
    return Fail(error, "reserved tile request bits set");
  }
  request.inline_circles = (flags & kFlagInlineCircles) != 0;
  if (request.width <= 0 || request.height <= 0) {
    return Fail(error, "non-positive raster size");
  }
  if (!(request.domain.lo.x < request.domain.hi.x) ||
      !(request.domain.lo.y < request.domain.hi.y)) {
    return Fail(error, "degenerate request domain");
  }
  if (request.tile_rows < 1 || request.tile_cols < 1 ||
      request.tile_rows > kMaxWireTileGridSide ||
      request.tile_cols > kMaxWireTileGridSide) {
    return Fail(error, "tile grid outside the wire ceiling");
  }
  if (request.tile_id < 0 ||
      request.tile_id >= request.tile_rows * request.tile_cols) {
    return Fail(error, "tile id outside the tile grid");
  }
  if (!request.inline_circles) {
    if (count != 0) {
      return Fail(error, "by-reference tile request carries circles");
    }
    if (r.remaining() != 0) return Fail(error, "trailing tile request bytes");
    return request;
  }
  if (r.remaining() / kCircleBytes < count ||
      r.remaining() != count * kCircleBytes) {
    return Fail(error, "circle payload size mismatch");
  }
  request.circles.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    NnCircle c;
    c.center.x = r.F64();
    c.center.y = r.F64();
    c.radius = r.F64();
    c.client = r.I32();
    request.circles.push_back(c);
  }
  if (!r.ok()) return Fail(error, "circle payload truncated");
  if (HashCircleSet(request.circles, request.metric) != request.set_hash) {
    return Fail(error, "circle payload does not match its content hash");
  }
  return request;
}

std::optional<WireTileRequest> DecodeTileRequest(std::span<const uint8_t> bytes,
                                                 Status* status) {
  std::string error;
  std::optional<WireTileRequest> request = DecodeTileRequest(bytes, &error);
  if (status != nullptr) {
    *status = request.has_value() ? Status::Ok()
                                  : Status::InvalidArgument(std::move(error));
  }
  return request;
}

namespace {

void EncodeResponseHeader(std::vector<uint8_t>* out, WireStatus status,
                          bool from_cache, const std::string& message) {
  PutMagic(out, kResponseMagic);
  PutU32(out, kWireVersion);
  out->push_back(static_cast<uint8_t>(status));
  out->push_back(from_cache ? 1 : 0);
  PutU16(out, 0);  // reserved
  PutU32(out, static_cast<uint32_t>(message.size()));
  out->insert(out->end(), message.begin(), message.end());
}

}  // namespace

std::vector<uint8_t> EncodeResponse(const HeatmapResponse& response) {
  std::vector<uint8_t> out;
  out.reserve(kResponseHeaderBytes + 17 * sizeof(uint64_t) +
              SerializedSizeBytes(response.grid));
  EncodeResponseHeader(&out, WireStatus::kOk, response.from_cache, "");
  PutU64(&out, response.stats.num_circles);
  PutU64(&out, response.stats.num_skipped_circles);
  PutU64(&out, response.stats.num_events);
  PutU64(&out, response.stats.num_labelings);
  PutU64(&out, response.stats.num_merged_intervals);
  PutU64(&out, response.stats.num_elements_walked);
  PutU64(&out, response.l2_stats.num_circles);
  PutU64(&out, response.l2_stats.num_skipped_circles);
  PutU64(&out, response.l2_stats.num_events);
  PutU64(&out, response.l2_stats.num_cross_events);
  PutU64(&out, response.l2_stats.num_labelings);
  PutU64(&out, response.cache.hits);
  PutU64(&out, response.cache.misses);
  PutU64(&out, response.cache.insertions);
  PutU64(&out, response.cache.evictions);
  PutU64(&out, response.cache.entries);
  PutU64(&out, response.cache.bytes);
  EncodeHeatmap(response.grid, &out);
  return out;
}

std::vector<uint8_t> EncodeErrorResponse(WireStatus status,
                                         const std::string& message) {
  std::vector<uint8_t> out;
  EncodeResponseHeader(&out, status, /*from_cache=*/false, message);
  return out;
}

std::optional<WireResponse> DecodeResponse(std::span<const uint8_t> bytes,
                                           std::string* error) {
  Reader r(bytes.data(), bytes.size());
  if (!r.Magic(kResponseMagic)) return Fail(error, "bad response magic");
  if (r.U32() != kWireVersion) {
    return Fail(error, "unsupported wire version");
  }
  const uint8_t status = r.U8();
  const uint8_t from_cache = r.U8();
  const uint16_t reserved = r.U16();
  const uint32_t error_len = r.U32();
  if (!r.ok()) return Fail(error, "response header truncated");
  if (status > static_cast<uint8_t>(WireStatus::kServerError)) {
    return Fail(error, "unknown response status");
  }
  if (reserved != 0 || from_cache > 1) {
    return Fail(error, "reserved response bits set");
  }
  WireResponse response;
  response.status = static_cast<WireStatus>(status);
  if (error_len > 0) {
    if (r.remaining() < error_len) {
      return Fail(error, "response error message truncated");
    }
    response.error.assign(reinterpret_cast<const char*>(r.cursor()),
                          error_len);
    r.Skip(error_len);
  }
  if (response.status != WireStatus::kOk) {
    if (r.remaining() != 0) return Fail(error, "trailing response bytes");
    return response;
  }
  if (error_len != 0) {
    return Fail(error, "ok response carries an error message");
  }
  CrestStats stats;
  stats.num_circles = r.U64();
  stats.num_skipped_circles = r.U64();
  stats.num_events = r.U64();
  stats.num_labelings = r.U64();
  stats.num_merged_intervals = r.U64();
  stats.num_elements_walked = r.U64();
  CrestL2Stats l2_stats;
  l2_stats.num_circles = r.U64();
  l2_stats.num_skipped_circles = r.U64();
  l2_stats.num_events = r.U64();
  l2_stats.num_cross_events = r.U64();
  l2_stats.num_labelings = r.U64();
  SweepCacheStats cache;
  cache.hits = r.U64();
  cache.misses = r.U64();
  cache.insertions = r.U64();
  cache.evictions = r.U64();
  cache.entries = r.U64();
  cache.bytes = r.U64();
  if (!r.ok()) return Fail(error, "response counters truncated");
  size_t consumed = 0;
  std::string grid_error;
  std::optional<HeatmapGrid> grid =
      DecodeHeatmap(r.cursor(), r.remaining(), &consumed, &grid_error);
  if (!grid.has_value()) {
    if (error != nullptr) *error = "response grid: " + grid_error;
    return std::nullopt;
  }
  if (consumed != r.remaining()) {
    return Fail(error, "trailing response bytes");
  }
  response.response.emplace(HeatmapResponse{
      std::move(*grid), stats, l2_stats, from_cache != 0, cache});
  return response;
}

std::optional<WireResponse> DecodeResponse(std::span<const uint8_t> bytes,
                                           Status* status) {
  std::string error;
  std::optional<WireResponse> response = DecodeResponse(bytes, &error);
  if (status != nullptr) {
    *status = response.has_value()
                  ? Status::Ok()
                  : Status::InvalidArgument(std::move(error));
  }
  return response;
}

std::vector<uint8_t> EncodeStatsRequest() {
  std::vector<uint8_t> out;
  out.reserve(kStatsRequestBytes);
  PutMagic(&out, kStatsRequestMagic);
  PutU32(&out, kWireVersion);
  PutU32(&out, 0);  // reserved
  return out;
}

bool IsStatsRequest(std::span<const uint8_t> bytes) {
  return bytes.size() >= 4 &&
         std::memcmp(bytes.data(), kStatsRequestMagic, 4) == 0;
}

Status DecodeStatsRequest(std::span<const uint8_t> bytes) {
  Reader r(bytes.data(), bytes.size());
  if (!r.Magic(kStatsRequestMagic)) {
    return Status::InvalidArgument("bad stats request magic");
  }
  if (r.U32() != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  const uint32_t reserved = r.U32();
  if (!r.ok()) return Status::InvalidArgument("stats request truncated");
  if (reserved != 0) {
    return Status::InvalidArgument("reserved stats request bits set");
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing stats request bytes");
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeStatsResponse(const WireStatsReply& reply) {
  std::vector<uint8_t> out;
  out.reserve(kStatsResponseBytes);
  PutMagic(&out, kStatsResponseMagic);
  PutU32(&out, kWireVersion);
  PutU32(&out, reply.shards);
  PutU64(&out, reply.requests);
  PutU64(&out, reply.ok);
  PutU64(&out, reply.errors);
  PutU64(&out, reply.sets_registered);
  PutU64(&out, reply.deltas);
  PutU64(&out, reply.delta_splices);
  PutU64(&out, reply.sets_evicted);
  PutU64(&out, reply.delta_dirty_columns);
  PutU64(&out, reply.tile_requests);
  PutU64(&out, reply.tile_fragments);
  return out;
}

std::optional<WireStatsReply> DecodeStatsResponse(
    std::span<const uint8_t> bytes, std::string* error) {
  Reader r(bytes.data(), bytes.size());
  if (!r.Magic(kStatsResponseMagic)) {
    return Fail(error, "bad stats response magic");
  }
  if (r.U32() != kWireVersion) {
    return Fail(error, "unsupported wire version");
  }
  WireStatsReply reply;
  reply.shards = r.U32();
  reply.requests = r.U64();
  reply.ok = r.U64();
  reply.errors = r.U64();
  reply.sets_registered = r.U64();
  reply.deltas = r.U64();
  reply.delta_splices = r.U64();
  reply.sets_evicted = r.U64();
  reply.delta_dirty_columns = r.U64();
  reply.tile_requests = r.U64();
  reply.tile_fragments = r.U64();
  if (!r.ok()) return Fail(error, "stats response truncated");
  if (reply.shards == 0) return Fail(error, "stats response with no shards");
  if (r.remaining() != 0) {
    return Fail(error, "trailing stats response bytes");
  }
  return reply;
}

bool WriteFrame(std::FILE* out, std::span<const uint8_t> payload) {
  if (payload.size() > kMaxFramePayloadBytes) return false;
  std::vector<uint8_t> prefix;
  PutU32(&prefix, static_cast<uint32_t>(payload.size()));
  if (std::fwrite(prefix.data(), 1, prefix.size(), out) != prefix.size()) {
    return false;
  }
  return payload.empty() ||
         std::fwrite(payload.data(), 1, payload.size(), out) ==
             payload.size();
}

std::optional<std::vector<uint8_t>> ReadFrame(std::FILE* in,
                                              std::string* error) {
  if (error != nullptr) error->clear();
  uint8_t prefix[4];
  const size_t got = std::fread(prefix, 1, sizeof(prefix), in);
  if (got == 0) {
    if (std::ferror(in) != 0) {
      Fail(error, "read error on frame stream");
    }
    return std::nullopt;  // clean EOF when no stream error
  }
  if (got != sizeof(prefix)) {
    Fail(error, "truncated frame length prefix");
    return std::nullopt;
  }
  uint32_t length = 0;
  for (int i = 3; i >= 0; --i) length = (length << 8) | prefix[i];
  if (length > kMaxFramePayloadBytes) {
    Fail(error, "frame payload over the size ceiling");
    return std::nullopt;
  }
  std::vector<uint8_t> payload(length);
  if (length > 0 &&
      std::fread(payload.data(), 1, length, in) != length) {
    Fail(error, "truncated frame payload");
    return std::nullopt;
  }
  return payload;
}

// ServeWireStream is defined in serve/wire_server.cc: the serve layer owns
// the loop now, and the FILE* signature here stays as its compatibility
// shim.

}  // namespace rnnhm
