// Online single-point RNN queries (the classic operation of Korn &
// Muthukrishnan [12], cf. Section II).
//
// The heat map answers "what is the influence *everywhere*"; this engine
// answers the classic point query "what is R(q) for this q" in
// O(log n + |R(q)|) after O(n log n) preprocessing: NN-circles are
// precomputed once and indexed for point enclosure; a query stabs the
// bounding boxes and filters by the exact metric. Useful on its own and as
// the online companion to a precomputed heat map.
#ifndef RNNHM_QUERY_RNN_QUERY_H_
#define RNNHM_QUERY_RNN_QUERY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/geometry.h"
#include "index/enclosure_index.h"

namespace rnnhm {

/// Immutable bichromatic / monochromatic RNN query engine.
class RnnQueryEngine {
 public:
  /// Bichromatic: clients find their NN among `facilities`.
  RnnQueryEngine(const std::vector<Point>& clients,
                 const std::vector<Point>& facilities, Metric metric);

  /// Monochromatic: every point's NN is its nearest other point.
  RnnQueryEngine(const std::vector<Point>& points, Metric metric);

  /// R(q): ids of the clients that would adopt q as their nearest
  /// facility. Sorted ascending. O(log n + answer) plus metric filtering.
  std::vector<int32_t> Query(const Point& q) const;

  /// Influence |R(q)| without materializing the set.
  size_t QueryCount(const Point& q) const;

  /// The precomputed NN-circles (also usable as sweep input).
  const std::vector<NnCircle>& circles() const { return circles_; }

  /// The distance metric queries and circle radii are measured in.
  Metric metric() const { return metric_; }

 private:
  void BuildIndex();

  Metric metric_;
  std::vector<NnCircle> circles_;
  std::unique_ptr<EnclosureIndex> index_;
};

}  // namespace rnnhm

#endif  // RNNHM_QUERY_RNN_QUERY_H_
