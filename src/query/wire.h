// Versioned binary wire protocol for engine requests and responses — the
// process-sharding seam of the serving layer.
//
// The ROADMAP's next scaling step is sharding the engine across
// processes; this module defines the bytes that cross the boundary. The
// protocol is little-endian throughout and versioned (kWireVersion);
// decoders validate strictly and return errors instead of CHECK-failing,
// so a server can face untrusted bytes.
//
// Requests carry the circle set either *inline* (full payload; the server
// registers it in its CircleSetRegistry) or *by reference* (just the
// 64-bit content hash of a set some earlier request in the stream carried
// inline) — the wire analogue of CircleSetHandle sharing. A client
// fanning many requests over one population ships the circles once.
// Inline payloads embed their content hash and decoders recompute and
// compare it, so a corrupted circle payload is rejected rather than
// swept.
//
// Responses carry the full HeatmapResponse: status, sweep counters, cache
// counters and the grid (the grid payload reuses heatmap/serialization's
// "RNHM" byte format).
//
// Framing: a stream is a sequence of [u32 LE payload length][payload]
// frames (WriteFrame/ReadFrame); ServeWireStream drains request frames
// from a FILE* and answers each with one response frame, in order — the
// loop behind `rnnhm_cli serve`.
//
// Versioning rules: kWireVersion bumps on any layout change; decoders
// reject other versions (no negotiation — a shard fleet is deployed in
// lockstep). Reserved header bytes must be zero on encode and are
// rejected when nonzero, so they can be given meaning later without
// silently misreading old traffic.
#ifndef RNNHM_QUERY_WIRE_H_
#define RNNHM_QUERY_WIRE_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/circle_set_registry.h"
#include "query/heatmap_engine.h"

namespace rnnhm {

/// Protocol version stamped into every message. v4 adds the delta
/// registration op (base hash + edit list -> new registered set, served
/// with an incremental re-sweep) and extends the stats reply with delta
/// and eviction counters. v5 appends `delta_dirty_columns` to the stats
/// reply — the cumulative pixel columns spliced deltas actually
/// recomputed, the observable cost of the 2D dirty-rect splice. v6 adds
/// the tile fragment op (a request for one tile of the domain-tiled
/// decomposition, answered with a window-sized fragment grid — the
/// by-tile sharding seam) and appends the tile counters to the stats
/// reply; plain request/response layouts are unchanged from v5.
inline constexpr uint32_t kWireVersion = 6;

/// Ceiling on a frame's payload length (guards a garbage length prefix
/// from triggering a giant allocation).
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 30;

/// Ceiling on width*height a server accepts from the wire (an otherwise
/// well-formed request must not be able to demand an absurd raster).
inline constexpr uint64_t kMaxWirePixels = 1ull << 26;

/// Response status codes.
enum class WireStatus : uint8_t {
  kOk = 0,
  kMalformedRequest = 1,   ///< frame decoded but failed validation
  kUnknownCircleSet = 2,   ///< by-reference hash not registered
  kServerError = 3,        ///< the sweep threw
};

/// Maps an on-the-wire response status into the serving stack's unified
/// Status code (common/status.h): kMalformedRequest -> kInvalidArgument,
/// kUnknownCircleSet -> kNotFound, kServerError -> kInternal.
StatusCode FromWireStatus(WireStatus status);

/// The inverse: picks the wire status a server answers with for a local
/// Status code. Codes with no wire meaning (transport-level ones like
/// kUnavailable) collapse to kServerError.
WireStatus ToWireStatus(StatusCode code);

/// A decoded (or to-be-encoded) v2 request. `set_hash` is always the
/// circle set's content hash (HashCircleSet under `metric`); `circles` is
/// the inline payload and is empty for by-reference requests.
struct WireRequest {
  Metric metric = Metric::kLInf;
  uint64_t set_hash = 0;
  bool inline_circles = false;
  std::vector<NnCircle> circles;
  Rect domain;
  int width = 0;
  int height = 0;
};

/// Builds a request for `set`: with `include_circles` the full payload
/// travels (first use of a set on a stream), without it only the hash
/// (subsequent uses).
WireRequest MakeWireRequest(const CircleSetSnapshot& set, const Rect& domain,
                            int width, int height, bool include_circles);

/// Serializes a request message.
std::vector<uint8_t> EncodeRequest(const WireRequest& request);

/// Parses and validates a request message. Returns nullopt on any
/// malformed input (short buffer, bad magic/version/metric, nonzero
/// reserved bytes, non-positive raster, degenerate domain, payload size
/// mismatch, inline content-hash mismatch) with `*error` describing it.
std::optional<WireRequest> DecodeRequest(std::span<const uint8_t> bytes,
                                         std::string* error);

/// Status-returning form: `*status` is kInvalidArgument (with the same
/// message) whenever the string form would fail, kOk otherwise.
std::optional<WireRequest> DecodeRequest(std::span<const uint8_t> bytes,
                                         Status* status);

/// A decoded response: `response` is engaged iff `status == kOk`,
/// `error` is the server's message otherwise.
struct WireResponse {
  WireStatus status = WireStatus::kOk;
  std::string error;
  std::optional<HeatmapResponse> response;
};

/// Serializes a success response (status kOk + counters + grid).
std::vector<uint8_t> EncodeResponse(const HeatmapResponse& response);

/// Serializes an error response (no grid).
std::vector<uint8_t> EncodeErrorResponse(WireStatus status,
                                         const std::string& message);

/// Parses and validates a response message; nullopt + `*error` on any
/// malformed input (same strictness as DecodeRequest; the grid payload is
/// validated by heatmap/serialization's DecodeHeatmap).
std::optional<WireResponse> DecodeResponse(std::span<const uint8_t> bytes,
                                           std::string* error);

/// Status-returning form, mirroring the DecodeRequest overload.
std::optional<WireResponse> DecodeResponse(std::span<const uint8_t> bytes,
                                           Status* status);

// --- Delta registration op (v4) -------------------------------------------
//
// Ticking workloads (a fleet of moving taxis, a what-if exploration)
// perturb a few circles per update. A delta request names the previous
// tick's set by content hash, carries the edit list that produced the new
// set, and embeds the expected *derived* content hash so the server can
// prove client and server applied identical edit semantics. The server
// answers with a normal response frame for the derived set's heat map —
// computed by splicing only the dirty columns when it still holds the
// base raster — and the derived set becomes registered (addressable by
// its hash in later requests, including further deltas chained off it).

/// A decoded (or to-be-encoded) delta request. `base_hash` names the
/// registered set the edits apply to; `new_hash` is the content hash of
/// the derived set (HashCircleSet after applying `edits` in order), which
/// the server verifies before registering.
struct WireDeltaRequest {
  Metric metric = Metric::kLInf;
  uint64_t base_hash = 0;
  uint64_t new_hash = 0;
  std::vector<CircleSetEdit> edits;
  Rect domain;
  int width = 0;
  int height = 0;
};

/// Serializes a delta request message.
std::vector<uint8_t> EncodeDeltaRequest(const WireDeltaRequest& request);

/// True iff the payload *starts like* a delta request (magic check only —
/// cheap routing peek; full validation is DecodeDeltaRequest).
bool IsDeltaRequest(std::span<const uint8_t> bytes);

/// Parses and validates a delta request with the same strictness as
/// DecodeRequest (edit index range checks happen later, against the
/// resolved base set).
std::optional<WireDeltaRequest> DecodeDeltaRequest(
    std::span<const uint8_t> bytes, std::string* error);

/// Status-returning form, mirroring the DecodeRequest overload.
std::optional<WireDeltaRequest> DecodeDeltaRequest(
    std::span<const uint8_t> bytes, Status* status);

// --- Tile fragment op (v6) ------------------------------------------------
//
// The by-tile sharding seam (tile/tile_plan.h): a tile request names one
// tile of the tile_rows x tile_cols decomposition of an ordinary heat-map
// request, and the server answers with a normal response frame whose grid
// is the tile's window-sized *fragment* — cell (i, j) of the fragment is
// global pixel (window.col_lo + i, window.row_lo + j), where the window is
// TileWindows(domain, width, height, tile_rows, tile_cols)[tile_id]. Any
// peer computes the same windows from the same request fields (they are a
// pure function of the geometry), so a router can stitch fragments from
// different shards into the full raster, bit-identical to an untiled
// Execute. The header shares the plain request's prefix through set_hash,
// so hash-routing peeks work unchanged on tile frames.

/// Ceiling on the tile grid a server accepts from the wire, per side
/// (mirrors the engine's ExecuteTileFragmentChecked bound).
inline constexpr int kMaxWireTileGridSide = 1024;

/// A decoded (or to-be-encoded) tile fragment request: a plain request
/// plus the tile grid shape and the row-major tile id to compute.
struct WireTileRequest {
  Metric metric = Metric::kLInf;
  uint64_t set_hash = 0;
  bool inline_circles = false;
  std::vector<NnCircle> circles;
  Rect domain;
  int width = 0;
  int height = 0;
  int tile_rows = 1;
  int tile_cols = 1;
  int tile_id = 0;
};

/// Builds a tile request for `set`, mirroring MakeWireRequest.
WireTileRequest MakeWireTileRequest(const CircleSetSnapshot& set,
                                    const Rect& domain, int width, int height,
                                    bool include_circles, int tile_rows,
                                    int tile_cols, int tile_id);

/// Serializes a tile request message.
std::vector<uint8_t> EncodeTileRequest(const WireTileRequest& request);

/// True iff the payload *starts like* a tile request (magic check only —
/// cheap routing peek; full validation is DecodeTileRequest).
bool IsTileRequest(std::span<const uint8_t> bytes);

/// Parses and validates a tile request with the same strictness as
/// DecodeRequest, plus: the tile grid must fit [1, kMaxWireTileGridSide]
/// per side and `tile_id` must lie inside it.
std::optional<WireTileRequest> DecodeTileRequest(std::span<const uint8_t> bytes,
                                                 std::string* error);

/// Status-returning form, mirroring the DecodeRequest overload.
std::optional<WireTileRequest> DecodeTileRequest(std::span<const uint8_t> bytes,
                                                 Status* status);

// --- Stats op (v3) --------------------------------------------------------
//
// A stats request asks a server for its serve counters; a router answers
// with the counters of every shard merged (summed) and `shards` set to
// the fleet size. The op lets a deployer watch a fleet through the same
// socket the traffic uses — no side channel.

/// Serve counters as they travel on the wire. `shards` is 1 from a single
/// server and the fleet size from a router.
struct WireStatsReply {
  uint32_t shards = 0;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t sets_registered = 0;
  uint64_t deltas = 0;         ///< delta requests answered kOk (v4)
  uint64_t delta_splices = 0;  ///< deltas served by incremental splice (v4)
  uint64_t sets_evicted = 0;   ///< registry entries evicted by budget (v4)
  /// Pixel columns recomputed by spliced deltas, cumulative (v5). With
  /// the splice's dirty-rect clipping this is the x-footprint of the
  /// recomputed area; columns_total * splices bounds it from above.
  uint64_t delta_dirty_columns = 0;
  uint64_t tile_requests = 0;   ///< tile fragment requests answered (v6)
  uint64_t tile_fragments = 0;  ///< ... of which kOk with a fragment (v6)
};

/// Serializes a stats request (magic + version only).
std::vector<uint8_t> EncodeStatsRequest();

/// True iff the payload *starts like* a stats request (magic check only —
/// cheap routing peek; full validation is DecodeStatsRequest).
bool IsStatsRequest(std::span<const uint8_t> bytes);

/// Validates a stats request strictly (magic, version, reserved bytes,
/// exact length).
Status DecodeStatsRequest(std::span<const uint8_t> bytes);

/// Serializes a stats response.
std::vector<uint8_t> EncodeStatsResponse(const WireStatsReply& reply);

/// Parses and validates a stats response.
std::optional<WireStatsReply> DecodeStatsResponse(
    std::span<const uint8_t> bytes, std::string* error);

/// Writes one [u32 LE length][payload] frame. False on I/O failure or a
/// payload over kMaxFramePayloadBytes.
bool WriteFrame(std::FILE* out, std::span<const uint8_t> payload);

/// Reads one frame. Returns the payload, or nullopt with `*error` empty
/// on clean EOF (no more frames) and non-empty on a truncated or
/// oversized frame.
std::optional<std::vector<uint8_t>> ReadFrame(std::FILE* in,
                                              std::string* error);

/// Counters of one ServeWireStream run.
struct WireServeStats {
  uint64_t requests = 0;        ///< frames answered (ok or error status)
  uint64_t ok = 0;              ///< responses with status kOk
  uint64_t errors = 0;          ///< responses with a non-kOk status
  uint64_t sets_registered = 0; ///< distinct inline sets registered
  uint64_t deltas = 0;          ///< delta requests answered kOk
  uint64_t delta_splices = 0;   ///< deltas served by incremental splice
  uint64_t delta_dirty_columns = 0;  ///< columns recomputed by splices
  uint64_t tile_requests = 0;   ///< tile fragment requests answered
  uint64_t tile_fragments = 0;  ///< ... of which kOk with a fragment
};

/// The hash a router partitions a request frame by, without a full
/// decode: checks the magic/version and reads the set_hash field at its
/// fixed header offset. nullopt when the payload is too short or is not a
/// request frame (stats requests and garbage alike) — the caller decides
/// whether to fan out or answer an error itself. Delta requests peek
/// their *base* hash (it sits at the same header offset), so a router
/// using this alone already sends a delta to the shard that saw the base;
/// PeekRouteInfo additionally exposes the derived hash for affinity
/// tracking.
std::optional<uint64_t> PeekRequestSetHash(std::span<const uint8_t> bytes);

/// What a router learns from a frame header without a full decode.
struct WireRouteInfo {
  /// The hash to partition by: set_hash of a plain or tile request,
  /// base_hash of a delta (the shard holding the base must apply the
  /// edits).
  uint64_t route_hash = 0;
  bool is_delta = false;
  /// The derived set's content hash (deltas only) — the hash future
  /// requests will arrive under, which the router must pin to the same
  /// shard the delta lands on.
  uint64_t derived_hash = 0;
  bool is_tile = false;
  /// The requested tile id (tile requests only) — what a by-tile router
  /// partitions by instead of the hash.
  uint32_t tile_id = 0;
};

/// Routing peek covering plain, delta, and tile request frames; nullopt
/// for anything else (stats requests, garbage, short payloads).
std::optional<WireRouteInfo> PeekRouteInfo(std::span<const uint8_t> bytes);

/// The serve loop: reads request frames from `in` until EOF, executes
/// each against `engine` (inline sets register into engine.registry();
/// by-reference hashes resolve there), and writes one response frame per
/// request to `out`, in order. Malformed payloads and unknown hashes
/// produce error-status responses and the stream continues; only a
/// truncated frame or an I/O failure stops the loop and returns false
/// (with `*error` set). Grids served for identical circle sets and
/// geometry are bit-identical to a direct Execute on the same engine.
/// Inline sets stay registered for the stream's lifetime (later
/// by-reference requests depend on them); a long-lived server accepting
/// unboundedly many *distinct* sets needs an eviction policy above this
/// loop — see the ROADMAP.
///
/// This FILE* entry point is a thin shim over serve/wire_server.h's
/// WireServer (where it is also defined): the transport-agnostic server
/// serves any ByteSource/ByteSink pair, and the socket event loop feeds
/// the same per-frame handler.
bool ServeWireStream(std::FILE* in, std::FILE* out, HeatmapEngine& engine,
                     WireServeStats* stats = nullptr,
                     std::string* error = nullptr);

}  // namespace rnnhm

#endif  // RNNHM_QUERY_WIRE_H_
