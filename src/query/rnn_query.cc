#include "query/rnn_query.h"

#include <algorithm>

#include "nn/nn_circle_builder.h"

namespace rnnhm {

RnnQueryEngine::RnnQueryEngine(const std::vector<Point>& clients,
                               const std::vector<Point>& facilities,
                               Metric metric)
    : metric_(metric),
      circles_(BuildNnCircles(clients, facilities, metric)) {
  BuildIndex();
}

RnnQueryEngine::RnnQueryEngine(const std::vector<Point>& points,
                               Metric metric)
    : metric_(metric),
      circles_(BuildMonochromaticNnCircles(points, metric)) {
  BuildIndex();
}

void RnnQueryEngine::BuildIndex() {
  std::vector<Rect> boxes;
  boxes.reserve(circles_.size());
  for (const NnCircle& c : circles_) boxes.push_back(c.Bounds());
  index_ = std::make_unique<EnclosureIndex>(boxes);
}

std::vector<int32_t> RnnQueryEngine::Query(const Point& q) const {
  std::vector<int32_t> out;
  index_->Stab(q, [&](int32_t id) {
    // The box stab is exact for L-infinity; L1/L2 need the metric filter.
    if (circles_[id].Contains(q, metric_)) {
      out.push_back(circles_[id].client);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

size_t RnnQueryEngine::QueryCount(const Point& q) const {
  size_t count = 0;
  index_->Stab(q, [&](int32_t id) {
    count += circles_[id].Contains(q, metric_);
  });
  return count;
}

}  // namespace rnnhm
