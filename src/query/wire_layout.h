// The wire protocol's layout, as data.
//
// Every frame the v2–v6 codecs exchange is a hand-packed little-endian
// byte layout whose encoder, decoder, and routing peeks (PeekRouteInfo
// reads `set_hash` at a fixed offset without decoding) must agree on the
// same offsets. This header is the single declarative source of truth:
// one WireField table per frame header, plus the per-version size
// history. Three independent checkers consume it:
//
//   1. static_asserts (in src/query/wire.cc): each table is contiguous,
//      starts at offset 0, sums to the declared header size, and its
//      named offsets match the constants the codec actually reads;
//   2. tests/wire_layout_test.cc: encoders produce frames whose bytes
//      land where the tables say, for every version in the history;
//   3. tools/check_wire_layout.py: parses these tables *textually* and
//      cross-checks them against the Put* call sequences in wire.cc —
//      catching the case where code and tables are edited together but
//      wrongly.
//
// The `// wire-layout:` marker lines are load-bearing: the Python linter
// keys on them. Keep each table row in the `{"name", offset, size},`
// one-row-per-line form.
#ifndef RNNHM_QUERY_WIRE_LAYOUT_H_
#define RNNHM_QUERY_WIRE_LAYOUT_H_

#include <cstddef>
#include <cstdint>

namespace rnnhm::wire_layout {

/// One fixed-offset field of a frame header.
struct WireField {
  const char* name;
  std::size_t offset;
  std::size_t size;
};

// --- Declared sizes (bytes) -----------------------------------------------

inline constexpr std::size_t kCircleBytes = 28;
inline constexpr std::size_t kRequestHeaderBytes = 68;
inline constexpr std::size_t kResponseHeaderBytes = 16;
inline constexpr std::size_t kRequestSetHashOffset = 52;
inline constexpr std::size_t kDeltaNewHashOffset = 60;
inline constexpr std::size_t kDeltaHeaderBytes = 76;
inline constexpr std::size_t kTileIdOffset = 76;
inline constexpr std::size_t kTileHeaderBytes = 80;
inline constexpr std::size_t kStatsRequestBytes = 12;
inline constexpr std::size_t kStatsResponseBytes = 92;
/// Trailing per-request stats in a success response: 6 CrestStats +
/// 5 CrestL2Stats + 6 SweepCacheStats counters, u64 each.
inline constexpr std::size_t kResponseStatsWords = 17;

// --- Frame header layouts -------------------------------------------------
// A request's circle payload (count * kCircleBytes) follows its header; a
// delta's edit records follow kDeltaHeaderBytes; a success response's
// stats words and serialized grid follow kResponseHeaderBytes (an error
// response instead carries error_len message bytes).

// wire-layout: request bytes=68 magic=RNWQ
inline constexpr WireField kRequestLayout[] = {
    {"magic", 0, 4},
    {"version", 4, 4},
    {"metric", 8, 1},
    {"flags", 9, 1},
    {"reserved", 10, 2},
    {"width", 12, 4},
    {"height", 16, 4},
    {"domain_lo_x", 20, 8},
    {"domain_lo_y", 28, 8},
    {"domain_hi_x", 36, 8},
    {"domain_hi_y", 44, 8},
    {"set_hash", 52, 8},
    {"circle_count", 60, 8},
};

// wire-layout: response bytes=16 magic=RNWS
inline constexpr WireField kResponseLayout[] = {
    {"magic", 0, 4},
    {"version", 4, 4},
    {"status", 8, 1},
    {"from_cache", 9, 1},
    {"reserved", 10, 2},
    {"error_len", 12, 4},
};

// A delta shares the request prefix byte-for-byte with base_hash in the
// set_hash slot — PeekRouteInfo reads one offset for both frame kinds.
// wire-layout: delta bytes=76 magic=RNWD
inline constexpr WireField kDeltaLayout[] = {
    {"magic", 0, 4},
    {"version", 4, 4},
    {"metric", 8, 1},
    {"flags", 9, 1},
    {"reserved", 10, 2},
    {"width", 12, 4},
    {"height", 16, 4},
    {"domain_lo_x", 20, 8},
    {"domain_lo_y", 28, 8},
    {"domain_hi_x", 36, 8},
    {"domain_hi_y", 44, 8},
    {"base_hash", 52, 8},
    {"new_hash", 60, 8},
    {"edit_count", 68, 8},
};

// A tile request is the plain request header plus the tile grid + id.
// wire-layout: tile bytes=80 magic=RNWL
inline constexpr WireField kTileLayout[] = {
    {"magic", 0, 4},
    {"version", 4, 4},
    {"metric", 8, 1},
    {"flags", 9, 1},
    {"reserved", 10, 2},
    {"width", 12, 4},
    {"height", 16, 4},
    {"domain_lo_x", 20, 8},
    {"domain_lo_y", 28, 8},
    {"domain_hi_x", 36, 8},
    {"domain_hi_y", 44, 8},
    {"set_hash", 52, 8},
    {"circle_count", 60, 8},
    {"tile_rows", 68, 4},
    {"tile_cols", 72, 4},
    {"tile_id", 76, 4},
};

// wire-layout: stats_request bytes=12 magic=RNWT
inline constexpr WireField kStatsRequestLayout[] = {
    {"magic", 0, 4},
    {"version", 4, 4},
    {"reserved", 8, 4},
};

// wire-layout: stats_response bytes=92 magic=RNWU
inline constexpr WireField kStatsResponseLayout[] = {
    {"magic", 0, 4},
    {"version", 4, 4},
    {"shards", 8, 4},
    {"requests", 12, 8},
    {"ok", 20, 8},
    {"errors", 28, 8},
    {"sets_registered", 36, 8},
    {"deltas", 44, 8},
    {"delta_splices", 52, 8},
    {"sets_evicted", 60, 8},
    {"delta_dirty_columns", 68, 8},
    {"tile_requests", 76, 8},
    {"tile_fragments", 84, 8},
};

// One encoded circle record (the payload unit of request/tile frames).
// wire-layout: circle bytes=28 magic=none
inline constexpr WireField kCircleLayout[] = {
    {"center_x", 0, 8},
    {"center_y", 8, 8},
    {"radius", 16, 8},
    {"client", 24, 4},
};

// --- Version history ------------------------------------------------------

/// Frame sizes as published by each wire version; 0 = the frame kind did
/// not exist yet. History is append-only: a released version's row never
/// changes (that would be a silent protocol break), a layout change adds
/// a row and bumps kWireVersion.
struct WireVersionInfo {
  std::uint32_t version;
  std::size_t request_header_bytes;
  std::size_t response_header_bytes;
  std::size_t stats_request_bytes;
  std::size_t stats_response_bytes;
  std::size_t delta_header_bytes;
  std::size_t tile_header_bytes;
};

// wire-layout-history: columns=request,response,stats_request,stats_response,delta,tile
inline constexpr WireVersionInfo kWireVersionHistory[] = {
    {2, 68, 16, 0, 0, 0, 0},      // first framed protocol
    {3, 68, 16, 12, 44, 0, 0},    // + stats round-trip (4 counters)
    {4, 68, 16, 12, 68, 76, 0},   // + delta frames, stats grows to 7
    {5, 68, 16, 12, 76, 76, 0},   // + eviction/dirty-column counters (8)
    {6, 68, 16, 12, 92, 76, 80},  // + tile fan-out, routing counters (10)
};

// --- Compile-time checkers ------------------------------------------------

/// True when the table starts at offset 0 and every field begins exactly
/// where the previous one ends — no gap, no overlap, no reordering.
template <std::size_t N>
constexpr bool Contiguous(const WireField (&fields)[N]) {
  std::size_t expected = 0;
  for (const WireField& f : fields) {
    if (f.offset != expected) return false;
    expected = f.offset + f.size;
  }
  return true;
}

/// One past the last byte the table describes.
template <std::size_t N>
constexpr std::size_t TotalBytes(const WireField (&fields)[N]) {
  return fields[N - 1].offset + fields[N - 1].size;
}

/// Offset of the named field; compile error (via out-of-range) when the
/// name is absent, so a renamed field breaks the asserts that peek it.
template <std::size_t N>
constexpr std::size_t OffsetOf(const WireField (&fields)[N],
                               const char* name) {
  for (const WireField& f : fields) {
    // constexpr strcmp: <cstring> is not constexpr-guaranteed.
    const char* a = f.name;
    const char* b = name;
    while (*a != '\0' && *a == *b) {
      ++a;
      ++b;
    }
    if (*a == *b) return f.offset;
  }
  return static_cast<std::size_t>(-1);  // poison: trips the caller's assert
}

}  // namespace rnnhm::wire_layout

#endif  // RNNHM_QUERY_WIRE_LAYOUT_H_
