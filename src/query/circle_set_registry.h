// Registered, immutable, content-addressed circle sets — the shared
// currency of the serving API v2.
//
// The paper's motivating workloads (taxi sharing, what-if facility
// planning) issue many heat-map requests over the *same* client/facility
// population: a session renders its circles at several resolutions, a
// what-if exploration toggles between a handful of placements, a tile
// server fans one city-wide set out across tiles. Inlining the circle
// vector into every request copies the dataset per submit and re-hashes
// it per cache probe. The registry replaces the inline vector with a
// CircleSetHandle: a small, trivially copyable, wire-transferable
// identity (registry id + 64-bit content hash) backed by a ref-counted
// immutable CircleSetSnapshot.
//
// Content addressing: two registrations of byte-identical (circles,
// metric) content deduplicate to the same handle — the registry compares
// full content on hash-bucket candidates, so a 64-bit collision yields
// two distinct handles rather than aliasing two different sets. The
// content hash doubles as the engine's SweepCache key component, which is
// what makes cache lookups O(1) in the circle count for handle requests.
//
// Lifetime: the registry holds one reference per net Register of a given
// content (Register of already-registered content bumps a registration
// count; Release decrements it and drops the registry's reference at
// zero). Snapshots are shared_ptr-backed, so resolved snapshots outlive a
// Release — in-flight requests keep the data alive. All methods are
// thread-safe.
#ifndef RNNHM_QUERY_CIRCLE_SET_REGISTRY_H_
#define RNNHM_QUERY_CIRCLE_SET_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// The identity of a registered circle set: `id` names the registry entry
/// (unique per distinct content within one registry, never reused),
/// `content_hash` fingerprints the (circles, metric) content. The hash is
/// what crosses process boundaries — a peer that registered the same
/// content computes the same hash — while the id is local to one
/// registry. A default-constructed handle is invalid.
struct CircleSetHandle {
  uint64_t id = 0;
  uint64_t content_hash = 0;

  bool valid() const { return id != 0; }

  friend bool operator==(const CircleSetHandle&,
                         const CircleSetHandle&) = default;
};

/// 64-bit FNV-1a fingerprint of a circle set's content: the metric, then
/// every circle's center/radius/client in order. This is the canonical
/// content hash shared by the registry, the engine's SweepCache and the
/// wire protocol — keep them in lockstep.
uint64_t HashCircleSet(std::span<const NnCircle> circles, Metric metric);

/// An immutable circle set plus the metric its radii were measured in and
/// its content hash, computed once at construction. Snapshots are always
/// held through shared_ptr<const CircleSetSnapshot>; the circle data is
/// safe to read concurrently and never changes.
class CircleSetSnapshot {
 public:
  /// Builds a snapshot, hashing the content once. Moving the vector in
  /// makes construction copy-free.
  static std::shared_ptr<const CircleSetSnapshot> Make(
      std::vector<NnCircle> circles, Metric metric);

  const std::vector<NnCircle>& circles() const { return circles_; }
  Metric metric() const { return metric_; }
  uint64_t content_hash() const { return content_hash_; }

  /// True iff the (circles, metric) content is byte-identical.
  bool SameContent(std::span<const NnCircle> circles, Metric metric) const;

 private:
  CircleSetSnapshot(std::vector<NnCircle> circles, Metric metric);

  std::vector<NnCircle> circles_;
  Metric metric_;
  uint64_t content_hash_;
};

/// Thread-safe, deduplicating store of circle-set snapshots.
class CircleSetRegistry {
 public:
  CircleSetRegistry() = default;
  CircleSetRegistry(const CircleSetRegistry&) = delete;
  CircleSetRegistry& operator=(const CircleSetRegistry&) = delete;

  /// Registers the content and returns its handle. Already-registered
  /// content (full equality, not just hash equality) returns the existing
  /// handle and bumps its registration count; the vector is moved into
  /// the new snapshot otherwise.
  CircleSetHandle Register(std::vector<NnCircle> circles, Metric metric);

  /// As above without taking ownership: the circles are copied only when
  /// the content is new. Use for callers that keep their own vector (a
  /// session publishing its working set every tick).
  CircleSetHandle Register(std::span<const NnCircle> circles, Metric metric);

  /// The snapshot behind a handle, or null when the handle was never
  /// issued by this registry, has been fully released, or carries a
  /// content hash that does not match its entry (a stale or forged
  /// handle).
  std::shared_ptr<const CircleSetSnapshot> Resolve(
      const CircleSetHandle& handle) const;

  /// The handle of the entry whose content hash is `content_hash`, or an
  /// invalid handle. This is the wire server's by-reference lookup; it
  /// trusts the 64-bit hash (the registry itself never aliases two
  /// contents, so the only ambiguity is between two *registered* sets
  /// colliding — in that case the first registered wins).
  CircleSetHandle FindByHash(uint64_t content_hash) const;

  /// Decrements the handle's registration count, dropping the registry's
  /// snapshot reference at zero. Returns false for an unknown or already
  /// fully released handle. Outstanding shared_ptrs keep the data alive.
  bool Release(const CircleSetHandle& handle);

  /// Number of resident (not fully released) entries.
  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const CircleSetSnapshot> set;
    size_t registrations = 0;
  };

  // Shared body of both Register overloads: `owned`, when non-null, is
  // moved into a new snapshot; otherwise `circles` is copied on demand.
  CircleSetHandle RegisterImpl(std::span<const NnCircle> circles,
                               Metric metric, std::vector<NnCircle>* owned);

  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, Entry> by_id_;
  // content_hash -> ids with that hash (more than one only on a true
  // 64-bit collision between distinct contents).
  std::unordered_multimap<uint64_t, uint64_t> by_hash_;
};

}  // namespace rnnhm

#endif  // RNNHM_QUERY_CIRCLE_SET_REGISTRY_H_
