// Registered, immutable, content-addressed circle sets — the shared
// currency of the serving API v2.
//
// The paper's motivating workloads (taxi sharing, what-if facility
// planning) issue many heat-map requests over the *same* client/facility
// population: a session renders its circles at several resolutions, a
// what-if exploration toggles between a handful of placements, a tile
// server fans one city-wide set out across tiles. Inlining the circle
// vector into every request copies the dataset per submit and re-hashes
// it per cache probe. The registry replaces the inline vector with a
// CircleSetHandle: a small, trivially copyable, wire-transferable
// identity (registry id + 64-bit content hash) backed by a ref-counted
// immutable CircleSetSnapshot.
//
// Content addressing: two registrations of byte-identical (circles,
// metric) content deduplicate to the same handle — the registry compares
// full content on hash-bucket candidates, so a 64-bit collision yields
// two distinct handles rather than aliasing two different sets. The
// content hash doubles as the engine's SweepCache key component, which is
// what makes cache lookups O(1) in the circle count for handle requests.
// Hashing and equality agree bit-for-bit: coordinates are compared by
// their IEEE-754 bit patterns with -0.0 canonicalized to +0.0 first, so
// sets differing only in the sign of a zero deduplicate (and hash alike),
// and a NaN coordinate equals itself instead of spawning a duplicate
// entry per registration.
//
// Lifetime: the registry holds one reference per net Register of a given
// content (Register of already-registered content bumps a registration
// count; Release decrements it). What happens at zero is governed by
// CircleSetRegistryOptions: by default the entry is erased immediately
// (the legacy behavior); with a retention budget the entry moves to an
// *unpinned* LRU list instead — still resolvable by handle or hash, but
// evictable when the budget overflows. Snapshots are shared_ptr-backed,
// so resolved snapshots outlive a Release or an eviction — in-flight
// requests keep the data alive. All CircleSetRegistry methods are
// thread-safe.
//
// Deltas: ticking workloads move a few circles per update. ApplyDelta
// derives a new registered snapshot from a base handle plus an edit list
// without the caller re-shipping the set, and reports the dirty
// x-intervals the edits perturb so the server can splice-recompute only
// the affected pixel columns (heatmap/incremental.h).
#ifndef RNNHM_QUERY_CIRCLE_SET_REGISTRY_H_
#define RNNHM_QUERY_CIRCLE_SET_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/dirty_interval.h"
#include "geom/geometry.h"

namespace rnnhm {

/// The identity of a registered circle set: `id` names the registry entry
/// (unique per distinct content within one registry, never reused),
/// `content_hash` fingerprints the (circles, metric) content. The hash is
/// what crosses process boundaries — a peer that registered the same
/// content computes the same hash — while the id is local to one
/// registry. A default-constructed handle is invalid.
struct CircleSetHandle {
  uint64_t id = 0;
  uint64_t content_hash = 0;

  bool valid() const { return id != 0; }

  friend bool operator==(const CircleSetHandle&,
                         const CircleSetHandle&) = default;
};

/// 64-bit FNV-1a fingerprint of a circle set's content: the metric, then
/// every circle's center/radius/client in order. Coordinates hash by
/// their bit patterns with -0.0 canonicalized to +0.0, matching
/// CircleSetSnapshot::SameContent exactly. This is the canonical content
/// hash shared by the registry, the engine's SweepCache and the wire
/// protocol — keep them in lockstep.
uint64_t HashCircleSet(std::span<const NnCircle> circles, Metric metric);

/// One edit in a delta registration: the unit of change a ticking session
/// emits and the wire protocol's delta frames carry. Edits apply in list
/// order to a copy of the base set's circle vector:
///   kReplace    — circles[index] = circle (a client moved / requeried);
///   kAppend     — circles.push_back(circle) (a client joined);
///   kSwapRemove — circles[index] = circles.back(); pop_back() (a circle
///                 left; deterministic O(1) removal — note the survivor's
///                 *position* changes, which affects the content hash but
///                 never the rasterized heat map).
/// Client and server must apply identical semantics or their content
/// hashes diverge; the wire path verifies the expected hash.
struct CircleSetEdit {
  enum class Kind : uint8_t { kReplace = 0, kAppend = 1, kSwapRemove = 2 };

  Kind kind = Kind::kReplace;
  uint32_t index = 0;  // target of kReplace/kSwapRemove; ignored by kAppend
  NnCircle circle;     // payload of kReplace/kAppend; ignored by kSwapRemove
};

/// Retention policy for entries whose registration count reaches zero.
/// With both budgets zero (the default) an entry is erased the moment its
/// last registration is released — the legacy behavior every short-lived
/// caller expects. With a nonzero budget, fully released entries are
/// retained *unpinned* in LRU order (still resolvable, so a reconnecting
/// client's by-hash requests keep hitting) until the budget overflows;
/// a zero on one axis leaves that axis unconstrained.
struct CircleSetRegistryOptions {
  /// Maximum number of unpinned entries retained (0 = unconstrained,
  /// unless both budgets are zero — then nothing is retained at all).
  size_t max_unpinned_entries = 0;
  /// Maximum total circle-payload bytes across unpinned entries.
  size_t max_unpinned_bytes = 0;

  bool retention_enabled() const {
    return max_unpinned_entries > 0 || max_unpinned_bytes > 0;
  }
};

/// An immutable circle set plus the metric its radii were measured in and
/// its content hash, computed once at construction. Snapshots are always
/// held through shared_ptr<const CircleSetSnapshot>; the circle data is
/// safe to read concurrently and never changes.
class CircleSetSnapshot {
 public:
  /// Builds a snapshot, hashing the content once. Moving the vector in
  /// makes construction copy-free.
  static std::shared_ptr<const CircleSetSnapshot> Make(
      std::vector<NnCircle> circles, Metric metric);

  const std::vector<NnCircle>& circles() const { return circles_; }
  Metric metric() const { return metric_; }
  uint64_t content_hash() const { return content_hash_; }

  /// True iff the (circles, metric) content is identical under the same
  /// bit-level comparison HashCircleSet uses: -0.0 equals +0.0, a NaN
  /// equals the same NaN bit pattern. SameContent(a) implies equal
  /// content hashes.
  bool SameContent(std::span<const NnCircle> circles, Metric metric) const;

 private:
  CircleSetSnapshot(std::vector<NnCircle> circles, Metric metric);

  std::vector<NnCircle> circles_;
  Metric metric_;
  uint64_t content_hash_;
};

/// Thread-safe, deduplicating store of circle-set snapshots with an
/// optional bounded retention of fully released entries.
///
/// Locking: lookups (Resolve, FindByHash, the size/byte counters) take a
/// shared lock and run concurrently with each other — a serving fleet's
/// hot path is resolve-dominated, and readers must not queue behind one
/// another. Mutations (Register, Release, ApplyDelta) take the lock
/// exclusively. The only thing a lookup writes is LRU recency, which is
/// guarded by a separate leaf mutex (`lru_mu_`): shared-lock holders
/// contend there only with each other, and writers (who already exclude
/// every reader through `mu_`) take it uncontended for their own LRU
/// mutations, so the whole LRU state has exactly one guarding mutex the
/// thread-safety analysis can verify. Lock order: mu_ before lru_mu_,
/// never the reverse — encoded on `lru_mu_` via RNNHM_ACQUIRED_AFTER, so
/// a reversed acquisition is a compile-time diagnostic under Clang's
/// -Wthread-safety-beta.
class CircleSetRegistry {
 public:
  CircleSetRegistry() = default;
  explicit CircleSetRegistry(const CircleSetRegistryOptions& options)
      : options_(options) {}
  CircleSetRegistry(const CircleSetRegistry&) = delete;
  CircleSetRegistry& operator=(const CircleSetRegistry&) = delete;

  /// Registers the content and returns its handle. Already-registered
  /// content (full equality, not just hash equality) returns the existing
  /// handle and bumps its registration count — re-pinning it if it was
  /// sitting unpinned in the retention list; the vector is moved into
  /// the new snapshot otherwise.
  CircleSetHandle Register(std::vector<NnCircle> circles, Metric metric)
      RNNHM_EXCLUDES(mu_);

  /// As above without taking ownership: the circles are copied only when
  /// the content is new. Use for callers that keep their own vector (a
  /// session publishing its working set every tick).
  CircleSetHandle Register(std::span<const NnCircle> circles, Metric metric)
      RNNHM_EXCLUDES(mu_);

  /// Derives and registers a new snapshot: base's circles with `edits`
  /// applied in order (the base's metric carries over). On success fills
  /// `*derived` (registration count bumped once, exactly like Register —
  /// dedup applies if the content already exists) and returns Ok.
  ///   kNotFound        — base unknown, fully released, or evicted;
  ///   kInvalidArgument — an edit indexes out of range, or the derived
  ///                      content hash differs from `*expected_hash`
  ///                      (client/server edit semantics diverged); nothing
  ///                      is registered in either case.
  /// When `dirty` is non-null, the bounding rects every edit perturbs (old
  /// and new footprints of replaced circles, footprints of
  /// appended/removed ones) are Add()ed to it — the exact input
  /// RecomputeDirtyColumns needs to splice instead of rebuild. When
  /// `base_out` is non-null it receives the base snapshot (pinned),
  /// saving the caller a second Resolve.
  Status ApplyDelta(const CircleSetHandle& base,
                    std::span<const CircleSetEdit> edits,
                    std::optional<uint64_t> expected_hash,
                    CircleSetHandle* derived, DirtyRegionSet* dirty = nullptr,
                    std::shared_ptr<const CircleSetSnapshot>* base_out =
                        nullptr) RNNHM_EXCLUDES(mu_);

  /// The snapshot behind a handle, or null when the handle was never
  /// issued by this registry, has been erased or evicted, or carries a
  /// content hash that does not match its entry (a stale or forged
  /// handle). Resolving an unpinned entry refreshes its LRU position.
  std::shared_ptr<const CircleSetSnapshot> Resolve(
      const CircleSetHandle& handle) const RNNHM_EXCLUDES(mu_);

  /// The handle of the unique entry registered under `content_hash`, or
  /// an invalid handle. This is the wire server's by-reference lookup.
  /// When two *distinct* contents are resident under one hash (a true
  /// 64-bit collision), the hash alone cannot name either set, so the
  /// lookup reports not-found rather than guessing — resolving the wrong
  /// circle set would silently serve a wrong heat map. Callers holding
  /// full content should additionally verify via Resolve + SameContent.
  CircleSetHandle FindByHash(uint64_t content_hash) const
      RNNHM_EXCLUDES(mu_);

  /// Decrements the handle's registration count. At zero the entry is
  /// erased immediately (default options) or moved to the unpinned
  /// retention list (nonzero budgets), possibly evicting older unpinned
  /// entries over budget. Returns false for an unknown, evicted, or
  /// already fully released handle — releasing an unpinned entry again is
  /// a safe no-op, never an underflow. Outstanding shared_ptrs keep the
  /// data alive either way.
  bool Release(const CircleSetHandle& handle) RNNHM_EXCLUDES(mu_);

  /// Number of resident entries (pinned + unpinned).
  size_t size() const RNNHM_EXCLUDES(mu_);

  /// Total circle-payload bytes across resident entries.
  size_t resident_bytes() const RNNHM_EXCLUDES(mu_);

  /// Number of resident entries with zero registrations (retained only
  /// by the retention budget).
  size_t unpinned_entries() const RNNHM_EXCLUDES(mu_);

  /// Entries evicted by the retention budget since construction.
  size_t total_evicted() const RNNHM_EXCLUDES(mu_);

  /// Test seam for hash-collision coverage: registers `circles` as a NEW
  /// entry filed under `forced_hash` instead of its true content hash,
  /// bypassing dedup. Real 64-bit FNV collisions are infeasible to
  /// construct, but the wire path must still survive one — this injects
  /// the collision the tests need. Never call outside tests.
  CircleSetHandle RegisterWithHashForTesting(std::vector<NnCircle> circles,
                                             Metric metric,
                                             uint64_t forced_hash)
      RNNHM_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<const CircleSetSnapshot> set;
    size_t registrations = 0;
    // The hash this entry is filed under in by_hash_. Equals
    // set->content_hash() except for RegisterWithHashForTesting entries.
    uint64_t hash = 0;
    // Position in unpinned_lru_; valid iff registrations == 0 and the
    // entry is retained.
    std::list<uint64_t>::iterator lru;
  };

  // Shared body of both Register overloads: `owned`, when non-null, is
  // moved into a new snapshot; otherwise `circles` is copied on demand.
  CircleSetHandle RegisterImpl(std::span<const NnCircle> circles,
                               Metric metric, std::vector<NnCircle>* owned)
      RNNHM_EXCLUDES(mu_);

  // Moves a zero-registration entry onto the unpinned LRU (front = most
  // recently used); takes lru_mu_ itself for the list mutation.
  void UnpinLocked(uint64_t id, Entry& entry) RNNHM_REQUIRES(mu_);
  // Removes an unpinned entry from the LRU on re-registration; takes
  // lru_mu_ itself.
  void RepinLocked(Entry& entry) RNNHM_REQUIRES(mu_);
  // Refreshes an unpinned entry's LRU position. Called with mu_ held at
  // least shared; takes lru_mu_ itself (splice keeps every entry's lru
  // iterator valid, so concurrent readers only contend on list pointers).
  void TouchLocked(const Entry& entry) const RNNHM_REQUIRES_SHARED(mu_);
  // Erases `id` from both maps and the byte accounting.
  void EraseLocked(uint64_t id) RNNHM_REQUIRES(mu_);
  // True iff the unpinned set exceeds either retention budget.
  bool OverBudgetLocked() const RNNHM_REQUIRES(lru_mu_);
  // Evicts LRU-tail unpinned entries until within budget; takes lru_mu_
  // itself across the eviction loop.
  void EvictOverBudgetLocked() RNNHM_REQUIRES(mu_);

  static size_t PayloadBytes(const CircleSetSnapshot& set) {
    return set.circles().size() * sizeof(NnCircle);
  }

  const CircleSetRegistryOptions options_;

  mutable SharedMutex mu_;
  // Leaf lock for the LRU recency state. Shared-lock holders take it to
  // splice recency; writers take it (uncontended — exclusive mu_ already
  // excludes every reader) for their own LRU mutations. Always acquired
  // while mu_ is held, never the other way around.
  mutable Mutex lru_mu_ RNNHM_ACQUIRED_AFTER(mu_);
  uint64_t next_id_ RNNHM_GUARDED_BY(mu_) = 1;
  // Mutable so the const lookups (Resolve, FindByHash) can refresh LRU
  // recency under mu_.
  mutable std::unordered_map<uint64_t, Entry> by_id_ RNNHM_GUARDED_BY(mu_);
  // content_hash -> ids with that hash (more than one only on a true
  // 64-bit collision between distinct contents).
  mutable std::unordered_multimap<uint64_t, uint64_t> by_hash_
      RNNHM_GUARDED_BY(mu_);
  // Unpinned entries, most recently used first.
  mutable std::list<uint64_t> unpinned_lru_ RNNHM_GUARDED_BY(lru_mu_);
  size_t resident_bytes_ RNNHM_GUARDED_BY(mu_) = 0;
  size_t unpinned_bytes_ RNNHM_GUARDED_BY(lru_mu_) = 0;
  size_t total_evicted_ RNNHM_GUARDED_BY(mu_) = 0;
};

/// Tracks the registrations a connection (or stream) owns and releases
/// them when the connection goes away — the per-connection half of the
/// memory bound for long-lived servers. Every Track() corresponds to
/// exactly one Register/ApplyDelta bump; with a nonzero cap the oldest
/// tracked registration is released as new ones push past it, bounding
/// what one chatty client can pin. Not thread-safe: one scope belongs to
/// one connection.
class RegistrationScope {
 public:
  RegistrationScope() = default;
  explicit RegistrationScope(CircleSetRegistry* registry,
                             size_t max_tracked = 0)
      : registry_(registry), max_tracked_(max_tracked) {}
  RegistrationScope(const RegistrationScope&) = delete;
  RegistrationScope& operator=(const RegistrationScope&) = delete;
  ~RegistrationScope() { ReleaseAll(); }

  /// Takes ownership of one registration bump. With a cap, releases the
  /// oldest tracked handle once the cap is exceeded.
  void Track(const CircleSetHandle& handle);

  /// Releases every tracked registration (idempotent).
  void ReleaseAll();

  size_t tracked() const { return handles_.size(); }

 private:
  CircleSetRegistry* registry_ = nullptr;
  size_t max_tracked_ = 0;
  std::deque<CircleSetHandle> handles_;
};

}  // namespace rnnhm

#endif  // RNNHM_QUERY_CIRCLE_SET_REGISTRY_H_
