#include "query/heatmap_session.h"

#include "common/check.h"
#include "core/crest_parallel.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {

HeatmapSession::HeatmapSession(std::vector<Point> clients,
                               std::vector<Point> facilities, Metric metric)
    : metric_(metric),
      clients_(std::move(clients)),
      facilities_(std::move(facilities)) {
  RNNHM_CHECK_MSG(!facilities_.empty(),
                  "a session needs at least one facility");
  circles_.reserve(clients_.size());
  client_nn_.assign(clients_.size(), -1);
  EnsureFacilityTree();
  for (size_t i = 0; i < clients_.size(); ++i) {
    circles_.push_back(NnCircle{clients_[i], 0.0, static_cast<int32_t>(i)});
    RequeryClient(static_cast<int32_t>(i));
  }
  dirty_.Clear();  // the first raster is a full build anyway
}

void HeatmapSession::MarkCircleDirty(const NnCircle& circle) {
  dirty_.AddRect(circle.Bounds());
}

void HeatmapSession::EnsureFacilityTree() {
  if (facility_tree_ == nullptr) {
    facility_tree_ = std::make_unique<KdTree>(facilities_);
  }
}

void HeatmapSession::RequeryClient(int32_t id, bool record) {
  EnsureFacilityTree();
  const NnResult nn = facility_tree_->Nearest(clients_[id], metric_);
  RNNHM_DCHECK(nn.index >= 0);
  circles_[id] = NnCircle{clients_[id], nn.distance, id};
  client_nn_[id] = nn.index;
  // The new footprint is dirty; callers whose edit also removed an old
  // footprint (MoveClient) mark that one themselves before updating.
  MarkCircleDirty(circles_[id]);
  if (record) {
    RecordEdit(CircleSetEdit{CircleSetEdit::Kind::kReplace,
                             static_cast<uint32_t>(id), circles_[id]});
  }
}

void HeatmapSession::RecordEdit(const CircleSetEdit& edit) {
  if (journal_enabled_) edits_.push_back(edit);
}

void HeatmapSession::MoveClient(int32_t id, const Point& to) {
  RNNHM_CHECK(id >= 0 && id < static_cast<int32_t>(clients_.size()));
  MarkCircleDirty(circles_[id]);  // influence changes inside the old circle
  clients_[id] = to;
  RequeryClient(id);
}

int32_t HeatmapSession::AddClient(const Point& at) {
  const int32_t id = static_cast<int32_t>(clients_.size());
  clients_.push_back(at);
  circles_.push_back(NnCircle{at, 0.0, id});
  client_nn_.push_back(-1);
  // The placeholder circle never existed in the previous tick, so the
  // journal entry is the append of the final circle, not a replace.
  RequeryClient(id, /*record=*/false);
  RecordEdit(CircleSetEdit{CircleSetEdit::Kind::kAppend, 0, circles_[id]});
  return id;
}

void HeatmapSession::AddFacility(const Point& at) {
  const int32_t id = static_cast<int32_t>(facilities_.size());
  facilities_.push_back(at);
  facility_tree_.reset();  // rebuilt on next NN query
  // The new facility shrinks exactly the circles that now reach it first
  // (ties keep the incumbent, matching the k-d tree's smallest-index rule).
  for (size_t i = 0; i < clients_.size(); ++i) {
    const double d = Distance(clients_[i], at, metric_);
    if (d < circles_[i].radius) {
      // A shrink keeps the center: the old footprint covers the new one,
      // so marking it dirty covers every point whose RNN set changed.
      MarkCircleDirty(circles_[i]);
      circles_[i].radius = d;
      client_nn_[i] = id;
      RecordEdit(CircleSetEdit{CircleSetEdit::Kind::kReplace,
                               static_cast<uint32_t>(i), circles_[i]});
    }
  }
}

void HeatmapSession::RemoveFacility(int32_t id) {
  RNNHM_CHECK(id >= 0 && id < static_cast<int32_t>(facilities_.size()));
  RNNHM_CHECK_MSG(facilities_.size() >= 2,
                  "cannot remove the last facility");
  const int32_t last = static_cast<int32_t>(facilities_.size()) - 1;
  facilities_[id] = facilities_[last];
  facilities_.pop_back();
  facility_tree_.reset();
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (client_nn_[i] == id) {
      RequeryClient(static_cast<int32_t>(i));
    } else if (client_nn_[i] == last) {
      client_nn_[i] = id;  // the swapped facility kept its location
    }
  }
}

void HeatmapSession::Rebuild(const InfluenceMeasure& measure,
                             RegionLabelSink* sink,
                             const CrestOptions& options) const {
  switch (metric_) {
    case Metric::kLInf:
      RunCrest(circles_, measure, sink, options);
      break;
    case Metric::kL1:
      RunCrestL1(circles_, measure, sink, options);
      break;
    case Metric::kL2:
      RunCrestL2(circles_, measure, sink);
      break;
  }
}

MetricSweepStats HeatmapSession::RebuildParallel(
    const InfluenceMeasure& measure,
    std::span<RegionLabelSink* const> shard_sinks,
    const CrestOptions& options) const {
  return RunCrestParallelMetric(metric_, circles_, measure, shard_sinks,
                                options);
}

const HeatmapGrid& HeatmapSession::RasterIncremental(
    const InfluenceMeasure& measure, const Rect& domain, int width,
    int height, IncrementalRebuildStats* stats) {
  IncrementalRebuildStats out;
  const bool spliceable =
      raster_ != nullptr && raster_measure_ == &measure &&
      raster_->width() == width && raster_->height() == height &&
      raster_->domain() == domain && metric_ != Metric::kL1;
  if (spliceable) {
    out.raster =
        RecomputeDirtyColumns(raster_.get(), metric_, circles_, measure,
                              dirty_);
  } else {
    out.full_rebuild = true;
    raster_ = std::make_unique<HeatmapGrid>(BuildHeatmapForMetric(
        metric_, circles_, measure, domain, width, height));
    raster_measure_ = &measure;
  }
  dirty_.Clear();
  if (stats != nullptr) *stats = out;
  return *raster_;
}

void HeatmapSession::InvalidateRaster() {
  raster_.reset();
  raster_measure_ = nullptr;
  dirty_.Clear();
}

CircleSetHandle HeatmapSession::PublishCircles(CircleSetRegistry& registry) {
  // The span overload copies the circles only when the content is new to
  // the registry; a tick that reverted (or a sibling session at the same
  // state) deduplicates to the existing snapshot.
  const CircleSetHandle handle =
      registry.Register(std::span<const NnCircle>(circles_), metric_);
  // Drop the previous tick's registration (after the new one, so shared
  // content never transits through zero). Re-publishing unchanged content
  // nets out: Register bumped the count, this restores it.
  if (published_registry_ == &registry && published_.valid()) {
    registry.Release(published_);
  }
  published_ = handle;
  published_registry_ = &registry;
  return handle;
}

bool HeatmapSession::ReleasePublication() {
  const bool released = published_registry_ != nullptr && published_.valid() &&
                        published_registry_->Release(published_);
  published_ = CircleSetHandle{};
  published_registry_ = nullptr;
  return released;
}

void HeatmapSession::EnableEditJournal(bool on) {
  journal_enabled_ = on;
  edits_.clear();
}

std::vector<CircleSetEdit> HeatmapSession::TakeCircleEdits() {
  std::vector<CircleSetEdit> out = std::move(edits_);
  edits_.clear();
  return out;
}

HeatmapResponse HeatmapSession::RenderThroughEngine(HeatmapEngine& engine,
                                                    const Rect& domain,
                                                    int width, int height) {
  const CircleSetHandle handle = PublishCircles(engine.registry());
  return engine.Execute(HeatmapRequestV2{handle, domain, width, height});
}

}  // namespace rnnhm
