#include "query/circle_set_registry.h"

#include <cstring>
#include <utility>

#include "common/mutex.h"

namespace rnnhm {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

// The bit pattern hashing and equality agree on: -0.0 collapses to +0.0
// (they compare == but differ bitwise), NaNs keep their payload bits (two
// copies of the same NaN are the same content; == would call them
// different and split what the hash unifies).
uint64_t CanonicalBits(double v) {
  if (v == 0.0) v = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void HashDouble(uint64_t* h, double v) {
  const uint64_t bits = CanonicalBits(v);
  HashBytes(h, &bits, sizeof(bits));
}

bool SameDouble(double a, double b) {
  return CanonicalBits(a) == CanonicalBits(b);
}

void AddDirtyExtent(DirtyRegionSet* dirty, const NnCircle& circle) {
  if (dirty == nullptr) return;
  dirty->AddRect(circle.Bounds());
}

}  // namespace

uint64_t HashCircleSet(std::span<const NnCircle> circles, Metric metric) {
  uint64_t h = kFnvOffset;
  const int32_t m = static_cast<int32_t>(metric);
  HashBytes(&h, &m, sizeof(m));
  for (const NnCircle& c : circles) {
    HashDouble(&h, c.center.x);
    HashDouble(&h, c.center.y);
    HashDouble(&h, c.radius);
    HashBytes(&h, &c.client, sizeof(c.client));
  }
  return h;
}

CircleSetSnapshot::CircleSetSnapshot(std::vector<NnCircle> circles,
                                     Metric metric)
    : circles_(std::move(circles)),
      metric_(metric),
      content_hash_(HashCircleSet(circles_, metric_)) {}

std::shared_ptr<const CircleSetSnapshot> CircleSetSnapshot::Make(
    std::vector<NnCircle> circles, Metric metric) {
  // make_shared needs a public constructor; new keeps it private.
  return std::shared_ptr<const CircleSetSnapshot>(
      new CircleSetSnapshot(std::move(circles), metric));
}

bool CircleSetSnapshot::SameContent(std::span<const NnCircle> circles,
                                    Metric metric) const {
  if (metric != metric_ || circles.size() != circles_.size()) return false;
  for (size_t i = 0; i < circles.size(); ++i) {
    if (!SameDouble(circles[i].center.x, circles_[i].center.x) ||
        !SameDouble(circles[i].center.y, circles_[i].center.y) ||
        !SameDouble(circles[i].radius, circles_[i].radius) ||
        circles[i].client != circles_[i].client) {
      return false;
    }
  }
  return true;
}

CircleSetHandle CircleSetRegistry::Register(std::vector<NnCircle> circles,
                                            Metric metric) {
  return RegisterImpl(circles, metric, &circles);
}

CircleSetHandle CircleSetRegistry::Register(std::span<const NnCircle> circles,
                                            Metric metric) {
  return RegisterImpl(circles, metric, nullptr);
}

CircleSetHandle CircleSetRegistry::RegisterImpl(
    std::span<const NnCircle> circles, Metric metric,
    std::vector<NnCircle>* owned) {
  const uint64_t hash = HashCircleSet(circles, metric);
  WriterMutexLock lock(&mu_);
  const auto [lo, hi] = by_hash_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    Entry& entry = by_id_.at(it->second);
    if (entry.set->SameContent(circles, metric)) {
      if (entry.registrations == 0) RepinLocked(entry);
      ++entry.registrations;
      return CircleSetHandle{it->second, hash};
    }
  }
  const uint64_t id = next_id_++;
  std::shared_ptr<const CircleSetSnapshot> set = CircleSetSnapshot::Make(
      owned != nullptr ? std::move(*owned)
                       : std::vector<NnCircle>(circles.begin(), circles.end()),
      metric);
  resident_bytes_ += PayloadBytes(*set);
  by_id_.emplace(id, Entry{std::move(set), 1, hash, unpinned_lru_.end()});
  by_hash_.emplace(hash, id);
  return CircleSetHandle{id, hash};
}

CircleSetHandle CircleSetRegistry::RegisterWithHashForTesting(
    std::vector<NnCircle> circles, Metric metric, uint64_t forced_hash) {
  std::shared_ptr<const CircleSetSnapshot> set =
      CircleSetSnapshot::Make(std::move(circles), metric);
  WriterMutexLock lock(&mu_);
  const uint64_t id = next_id_++;
  resident_bytes_ += PayloadBytes(*set);
  by_id_.emplace(id,
                 Entry{std::move(set), 1, forced_hash, unpinned_lru_.end()});
  by_hash_.emplace(forced_hash, id);
  return CircleSetHandle{id, forced_hash};
}

Status CircleSetRegistry::ApplyDelta(
    const CircleSetHandle& base, std::span<const CircleSetEdit> edits,
    std::optional<uint64_t> expected_hash, CircleSetHandle* derived,
    DirtyRegionSet* dirty,
    std::shared_ptr<const CircleSetSnapshot>* base_out) {
  std::shared_ptr<const CircleSetSnapshot> base_set = Resolve(base);
  if (base_set == nullptr) {
    return Status::NotFound(
        "delta base circle set is not registered (released or evicted)");
  }
  std::vector<NnCircle> circles = base_set->circles();
  // Dirty extents accumulate locally so a failed edit list leaves the
  // caller's set untouched.
  DirtyRegionSet touched;
  DirtyRegionSet* touched_out = dirty != nullptr ? &touched : nullptr;
  for (size_t e = 0; e < edits.size(); ++e) {
    const CircleSetEdit& edit = edits[e];
    switch (edit.kind) {
      case CircleSetEdit::Kind::kReplace:
        if (edit.index >= circles.size()) {
          return Status::InvalidArgument("delta edit " + std::to_string(e) +
                                         " replaces out-of-range index " +
                                         std::to_string(edit.index));
        }
        AddDirtyExtent(touched_out, circles[edit.index]);
        AddDirtyExtent(touched_out, edit.circle);
        circles[edit.index] = edit.circle;
        break;
      case CircleSetEdit::Kind::kAppend:
        AddDirtyExtent(touched_out, edit.circle);
        circles.push_back(edit.circle);
        break;
      case CircleSetEdit::Kind::kSwapRemove:
        if (edit.index >= circles.size()) {
          return Status::InvalidArgument("delta edit " + std::to_string(e) +
                                         " removes out-of-range index " +
                                         std::to_string(edit.index));
        }
        // The survivor moved from the back keeps its content, so only the
        // removed circle's footprint goes dirty.
        AddDirtyExtent(touched_out, circles[edit.index]);
        circles[edit.index] = circles.back();
        circles.pop_back();
        break;
      default:
        return Status::InvalidArgument("delta edit " + std::to_string(e) +
                                       " has an unknown kind");
    }
  }
  if (expected_hash.has_value()) {
    const uint64_t new_hash = HashCircleSet(circles, base_set->metric());
    if (new_hash != *expected_hash) {
      return Status::InvalidArgument(
          "derived content hash mismatch: client and server applied "
          "different edit semantics");
    }
  }
  *derived = Register(std::move(circles), base_set->metric());
  if (dirty != nullptr) {
    for (const DirtyRect& rect : touched.Merged()) {
      dirty->Add(rect.x.lo, rect.x.hi, rect.y.lo, rect.y.hi);
    }
  }
  if (base_out != nullptr) *base_out = std::move(base_set);
  return Status::Ok();
}

std::shared_ptr<const CircleSetSnapshot> CircleSetRegistry::Resolve(
    const CircleSetHandle& handle) const {
  if (!handle.valid()) return nullptr;
  ReaderMutexLock lock(&mu_);
  const auto it = by_id_.find(handle.id);
  if (it == by_id_.end() || it->second.hash != handle.content_hash) {
    return nullptr;
  }
  TouchLocked(it->second);
  return it->second.set;
}

CircleSetHandle CircleSetRegistry::FindByHash(uint64_t content_hash) const {
  ReaderMutexLock lock(&mu_);
  const auto [lo, hi] = by_hash_.equal_range(content_hash);
  if (lo == hi) return CircleSetHandle{};
  // Two resident entries under one hash is a true 64-bit collision: the
  // hash no longer names a unique set, and guessing would serve the wrong
  // heat map. Report not-found; the colliding sets stay reachable through
  // their full handles.
  if (std::next(lo) != hi) return CircleSetHandle{};
  TouchLocked(by_id_.at(lo->second));
  return CircleSetHandle{lo->second, content_hash};
}

bool CircleSetRegistry::Release(const CircleSetHandle& handle) {
  if (!handle.valid()) return false;
  WriterMutexLock lock(&mu_);
  const auto it = by_id_.find(handle.id);
  if (it == by_id_.end() || it->second.hash != handle.content_hash) {
    return false;
  }
  Entry& entry = it->second;
  // A resident entry with zero registrations is unpinned (retained only
  // by the retention budget): another Release is a double release and
  // must not wrap the count around.
  if (entry.registrations == 0) return false;
  if (--entry.registrations > 0) return true;
  if (options_.retention_enabled()) {
    UnpinLocked(it->first, entry);
    EvictOverBudgetLocked();
  } else {
    EraseLocked(it->first);
  }
  return true;
}

size_t CircleSetRegistry::size() const {
  ReaderMutexLock lock(&mu_);
  return by_id_.size();
}

size_t CircleSetRegistry::resident_bytes() const {
  ReaderMutexLock lock(&mu_);
  return resident_bytes_;
}

size_t CircleSetRegistry::unpinned_entries() const {
  ReaderMutexLock lock(&mu_);
  // Sibling readers may be splicing recency under lru_mu_.
  MutexLock lru_lock(&lru_mu_);
  return unpinned_lru_.size();
}

size_t CircleSetRegistry::total_evicted() const {
  ReaderMutexLock lock(&mu_);
  return total_evicted_;
}

void CircleSetRegistry::UnpinLocked(uint64_t id, Entry& entry) {
  // Exclusive mu_ already excludes every reader, so this acquisition is
  // uncontended; it exists so unpinned_lru_/unpinned_bytes_ have exactly
  // one guarding mutex the thread-safety analysis can verify.
  MutexLock lru_lock(&lru_mu_);
  unpinned_lru_.push_front(id);
  entry.lru = unpinned_lru_.begin();
  unpinned_bytes_ += PayloadBytes(*entry.set);
}

void CircleSetRegistry::RepinLocked(Entry& entry) {
  MutexLock lru_lock(&lru_mu_);
  unpinned_bytes_ -= PayloadBytes(*entry.set);
  unpinned_lru_.erase(entry.lru);
  entry.lru = unpinned_lru_.end();
}

void CircleSetRegistry::TouchLocked(const Entry& entry) const {
  if (entry.registrations != 0) return;
  // Shared-lock holders race only with each other here; a same-list
  // splice never invalidates iterators, so every entry's lru position
  // stays valid across concurrent touches.
  MutexLock lru_lock(&lru_mu_);
  unpinned_lru_.splice(unpinned_lru_.begin(), unpinned_lru_, entry.lru);
}

void CircleSetRegistry::EraseLocked(uint64_t id) {
  const auto it = by_id_.find(id);
  const auto [lo, hi] = by_hash_.equal_range(it->second.hash);
  for (auto h = lo; h != hi; ++h) {
    if (h->second == id) {
      by_hash_.erase(h);
      break;
    }
  }
  resident_bytes_ -= PayloadBytes(*it->second.set);
  by_id_.erase(it);
}

bool CircleSetRegistry::OverBudgetLocked() const {
  if (options_.max_unpinned_entries > 0 &&
      unpinned_lru_.size() > options_.max_unpinned_entries) {
    return true;
  }
  return options_.max_unpinned_bytes > 0 &&
         unpinned_bytes_ > options_.max_unpinned_bytes;
}

void CircleSetRegistry::EvictOverBudgetLocked() {
  // lru_mu_ is a leaf (EraseLocked takes no locks), so holding it across
  // the loop is order-safe and, under exclusive mu_, uncontended.
  MutexLock lru_lock(&lru_mu_);
  while (!unpinned_lru_.empty() && OverBudgetLocked()) {
    const uint64_t victim = unpinned_lru_.back();
    unpinned_lru_.pop_back();
    unpinned_bytes_ -= PayloadBytes(*by_id_.at(victim).set);
    EraseLocked(victim);
    ++total_evicted_;
  }
}

void RegistrationScope::Track(const CircleSetHandle& handle) {
  if (registry_ == nullptr || !handle.valid()) return;
  handles_.push_back(handle);
  while (max_tracked_ > 0 && handles_.size() > max_tracked_) {
    registry_->Release(handles_.front());
    handles_.pop_front();
  }
}

void RegistrationScope::ReleaseAll() {
  if (registry_ != nullptr) {
    for (const CircleSetHandle& handle : handles_) registry_->Release(handle);
  }
  handles_.clear();
}

}  // namespace rnnhm
