#include "query/circle_set_registry.h"

#include <cstring>
#include <utility>

namespace rnnhm {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashDouble(uint64_t* h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  HashBytes(h, &bits, sizeof(bits));
}

}  // namespace

uint64_t HashCircleSet(std::span<const NnCircle> circles, Metric metric) {
  uint64_t h = kFnvOffset;
  const int32_t m = static_cast<int32_t>(metric);
  HashBytes(&h, &m, sizeof(m));
  for (const NnCircle& c : circles) {
    HashDouble(&h, c.center.x);
    HashDouble(&h, c.center.y);
    HashDouble(&h, c.radius);
    HashBytes(&h, &c.client, sizeof(c.client));
  }
  return h;
}

CircleSetSnapshot::CircleSetSnapshot(std::vector<NnCircle> circles,
                                     Metric metric)
    : circles_(std::move(circles)),
      metric_(metric),
      content_hash_(HashCircleSet(circles_, metric_)) {}

std::shared_ptr<const CircleSetSnapshot> CircleSetSnapshot::Make(
    std::vector<NnCircle> circles, Metric metric) {
  // make_shared needs a public constructor; new keeps it private.
  return std::shared_ptr<const CircleSetSnapshot>(
      new CircleSetSnapshot(std::move(circles), metric));
}

bool CircleSetSnapshot::SameContent(std::span<const NnCircle> circles,
                                    Metric metric) const {
  if (metric != metric_ || circles.size() != circles_.size()) return false;
  for (size_t i = 0; i < circles.size(); ++i) {
    if (!(circles[i].center == circles_[i].center) ||
        circles[i].radius != circles_[i].radius ||
        circles[i].client != circles_[i].client) {
      return false;
    }
  }
  return true;
}

CircleSetHandle CircleSetRegistry::Register(std::vector<NnCircle> circles,
                                            Metric metric) {
  return RegisterImpl(circles, metric, &circles);
}

CircleSetHandle CircleSetRegistry::Register(std::span<const NnCircle> circles,
                                            Metric metric) {
  return RegisterImpl(circles, metric, nullptr);
}

CircleSetHandle CircleSetRegistry::RegisterImpl(
    std::span<const NnCircle> circles, Metric metric,
    std::vector<NnCircle>* owned) {
  const uint64_t hash = HashCircleSet(circles, metric);
  std::lock_guard<std::mutex> lock(mu_);
  const auto [lo, hi] = by_hash_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    Entry& entry = by_id_.at(it->second);
    if (entry.set->SameContent(circles, metric)) {
      ++entry.registrations;
      return CircleSetHandle{it->second, hash};
    }
  }
  const uint64_t id = next_id_++;
  std::shared_ptr<const CircleSetSnapshot> set = CircleSetSnapshot::Make(
      owned != nullptr ? std::move(*owned)
                       : std::vector<NnCircle>(circles.begin(), circles.end()),
      metric);
  by_id_.emplace(id, Entry{std::move(set), 1});
  by_hash_.emplace(hash, id);
  return CircleSetHandle{id, hash};
}

std::shared_ptr<const CircleSetSnapshot> CircleSetRegistry::Resolve(
    const CircleSetHandle& handle) const {
  if (!handle.valid()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_id_.find(handle.id);
  if (it == by_id_.end() ||
      it->second.set->content_hash() != handle.content_hash) {
    return nullptr;
  }
  return it->second.set;
}

CircleSetHandle CircleSetRegistry::FindByHash(uint64_t content_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_hash_.find(content_hash);
  if (it == by_hash_.end()) return CircleSetHandle{};
  return CircleSetHandle{it->second, content_hash};
}

bool CircleSetRegistry::Release(const CircleSetHandle& handle) {
  if (!handle.valid()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_id_.find(handle.id);
  if (it == by_id_.end() ||
      it->second.set->content_hash() != handle.content_hash) {
    return false;
  }
  if (--it->second.registrations > 0) return true;
  const auto [lo, hi] = by_hash_.equal_range(handle.content_hash);
  for (auto h = lo; h != hi; ++h) {
    if (h->second == handle.id) {
      by_hash_.erase(h);
      break;
    }
  }
  by_id_.erase(it);
  return true;
}

size_t CircleSetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.size();
}

}  // namespace rnnhm
