#include "query/heatmap_engine.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <utility>

#include "common/check.h"
#include "core/crest_parallel.h"
#include "core/label_sink.h"
#include "heatmap/raster_sink.h"
#include "query/sweep_cache.h"

namespace rnnhm {

namespace {

// Contract checks fire at the submitting call site, not on a worker thread.
void ValidateRequest(const HeatmapRequest& request) {
  RNNHM_CHECK_MSG(request.width > 0 && request.height > 0,
                  "HeatmapRequest needs a positive raster size");
  RNNHM_CHECK_MSG(request.domain.lo.x < request.domain.hi.x &&
                      request.domain.lo.y < request.domain.hi.y,
                  "HeatmapRequest needs a non-degenerate domain");
}

std::unique_ptr<SweepCache> MakeCache(const HeatmapEngineOptions& options) {
  if (options.cache_bytes == 0) return nullptr;
  SweepCacheOptions cache_options;
  cache_options.max_bytes = options.cache_bytes;
  cache_options.max_entries = options.cache_entries;
  return std::make_unique<SweepCache>(cache_options);
}

}  // namespace

HeatmapEngine::HeatmapEngine(const InfluenceMeasure& measure,
                             HeatmapEngineOptions options)
    : measure_(measure), options_(options), cache_(MakeCache(options_)) {
  RNNHM_CHECK_MSG(options_.crest.strip_sink == nullptr,
                  "HeatmapEngine owns the strip sink");
  RNNHM_CHECK(options_.num_threads >= 0);
  RNNHM_CHECK(options_.slabs_per_request >= 1);
  int n = options_.num_threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

HeatmapEngine::~HeatmapEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<HeatmapResponse> HeatmapEngine::Submit(HeatmapRequest request) {
  ValidateRequest(request);
  PendingRequest pending{std::move(request), {}};
  std::future<HeatmapResponse> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    RNNHM_CHECK_MSG(!stopping_, "Submit on a stopping HeatmapEngine");
    queue_.push_back(std::move(pending));
    ++in_flight_;
  }
  work_available_.notify_one();
  return future;
}

std::vector<HeatmapResponse> HeatmapEngine::RunBatch(
    std::vector<HeatmapRequest> requests) {
  std::vector<std::future<HeatmapResponse>> futures;
  futures.reserve(requests.size());
  for (HeatmapRequest& r : requests) futures.push_back(Submit(std::move(r)));
  std::vector<HeatmapResponse> out;
  out.reserve(futures.size());
  for (std::future<HeatmapResponse>& f : futures) out.push_back(f.get());
  return out;
}

HeatmapResponse HeatmapEngine::Execute(const HeatmapRequest& request) const {
  return Serve(request, /*owned=*/nullptr);
}

HeatmapResponse HeatmapEngine::Execute(HeatmapRequest&& request) const {
  return Serve(request, &request);
}

HeatmapResponse HeatmapEngine::Serve(const HeatmapRequest& request,
                                     HeatmapRequest* owned) const {
  ValidateRequest(request);
  if (cache_ != nullptr) {
    std::optional<HeatmapResponse> hit = cache_->Lookup(request);
    if (hit.has_value()) return std::move(*hit);
  }
  HeatmapResponse response = Sweep(request);
  if (cache_ != nullptr) {
    if (owned != nullptr) {
      cache_->Insert(std::move(*owned), response);
    } else {
      cache_->Insert(request, response);
    }
    response.cache = cache_->stats();
  }
  return response;
}

HeatmapResponse HeatmapEngine::Sweep(const HeatmapRequest& request) const {
  switch (request.metric) {
    case Metric::kL1: {
      CrestStats stats;
      HeatmapGrid grid = BuildHeatmapL1Parallel(
          request.circles, measure_, request.domain, request.width,
          request.height, options_.slabs_per_request, /*oversample=*/1.5,
          &stats, options_.crest);
      return HeatmapResponse{std::move(grid), stats, {}, false, {}};
    }
    case Metric::kL2: {
      HeatmapGrid grid(request.width, request.height, request.domain,
                       measure_.Evaluate({}));
      RasterArcSink raster(&grid);
      CrestL2Options l2;
      l2.arc_sink = &raster;
      const CrestL2Stats stats = RunCrestL2ParallelStrips(
          request.circles, measure_, options_.slabs_per_request, l2);
      return HeatmapResponse{std::move(grid), {}, stats, false, {}};
    }
    case Metric::kLInf:
      break;
  }
  HeatmapGrid grid(request.width, request.height, request.domain,
                   measure_.Evaluate({}));
  RasterStripSink raster(&grid);
  CrestOptions crest = options_.crest;
  crest.strip_sink = &raster;
  CrestStats stats;
  if (options_.slabs_per_request > 1) {
    // Slab-decomposed sweep: shards paint disjoint strips of the shared
    // grid; region labels themselves are not needed.
    stats = RunCrestParallelStrips(request.circles, measure_,
                                   options_.slabs_per_request, crest);
  } else {
    CountingSink counter;
    stats = RunCrest(request.circles, measure_, &counter, crest);
  }
  return HeatmapResponse{std::move(grid), stats, {}, false, {}};
}

size_t HeatmapEngine::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

SweepCacheStats HeatmapEngine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : SweepCacheStats{};
}

void HeatmapEngine::WorkerLoop() {
  for (;;) {
    std::optional<PendingRequest> work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      work.emplace(std::move(queue_.front()));
      queue_.pop_front();
    }
    std::optional<HeatmapResponse> response;
    std::exception_ptr error;
    try {
      response.emplace(Execute(std::move(work->request)));
    } catch (...) {
      error = std::current_exception();
    }
    // Leave the pending count before fulfilling the future, so a caller
    // that has observed every future resolve also observes pending() == 0.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    if (error) {
      work->promise.set_exception(error);
    } else {
      work->promise.set_value(std::move(*response));
    }
  }
}

}  // namespace rnnhm
