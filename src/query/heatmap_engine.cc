#include "query/heatmap_engine.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <utility>

#include "common/check.h"
#include "core/crest_parallel.h"
#include "core/label_sink.h"
#include "heatmap/incremental.h"
#include "heatmap/raster_sink.h"
#include "query/sweep_cache.h"
#include "tile/tile_plan.h"

namespace rnnhm {

namespace {

// Contract checks fire at the submitting call site, not on a worker thread.
void ValidateGeometry(const Rect& domain, int width, int height) {
  RNNHM_CHECK_MSG(width > 0 && height > 0,
                  "HeatmapRequest needs a positive raster size");
  RNNHM_CHECK_MSG(domain.lo.x < domain.hi.x && domain.lo.y < domain.hi.y,
                  "HeatmapRequest needs a non-degenerate domain");
}

std::unique_ptr<SweepCache> MakeCache(const HeatmapEngineOptions& options) {
  if (options.cache_bytes == 0) return nullptr;
  SweepCacheOptions cache_options;
  cache_options.max_bytes = options.cache_bytes;
  cache_options.max_entries = options.cache_entries;
  return std::make_unique<SweepCache>(cache_options);
}

std::shared_ptr<CircleSetRegistry> MakeRegistry(
    const HeatmapEngineOptions& options) {
  if (options.registry != nullptr) return options.registry;
  return std::make_shared<CircleSetRegistry>();
}

// Wire-facing ceiling on the tile grid a single request may ask for; keeps
// a hostile by-tile request from allocating millions of tile windows.
constexpr int kMaxTileGridSide = 1024;

// The per-tile cache key: the tile's circle-subset hash plus its pixel
// window inside the full raster (see SweepCacheKey).
SweepCacheKey TileKey(uint64_t subset_hash, const Rect& domain, int width,
                      int height, const TileWindow& w) {
  return SweepCacheKey{subset_hash, domain, width,    height,
                       w.col_lo,    w.col_hi, w.row_lo, w.row_hi};
}

void AccumulateCrest(CrestStats* into, const CrestStats& s) {
  into->num_circles += s.num_circles;
  into->num_skipped_circles += s.num_skipped_circles;
  into->num_events += s.num_events;
  into->num_labelings += s.num_labelings;
  into->num_merged_intervals += s.num_merged_intervals;
  into->num_elements_walked += s.num_elements_walked;
}

void AccumulateL2(CrestL2Stats* into, const CrestL2Stats& s) {
  into->num_circles += s.num_circles;
  into->num_skipped_circles += s.num_skipped_circles;
  into->num_events += s.num_events;
  into->num_cross_events += s.num_cross_events;
  into->num_labelings += s.num_labelings;
}

}  // namespace

HeatmapEngine::HeatmapEngine(const InfluenceMeasure& measure,
                             HeatmapEngineOptions options)
    : measure_(measure),
      options_(std::move(options)),
      registry_(MakeRegistry(options_)),
      cache_(MakeCache(options_)) {
  RNNHM_CHECK_MSG(options_.crest.strip_sink == nullptr,
                  "HeatmapEngine owns the strip sink");
  RNNHM_CHECK(options_.num_threads >= 0);
  RNNHM_CHECK(options_.slabs_per_request >= 1);
  int n = options_.num_threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

HeatmapEngine::~HeatmapEngine() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

HeatmapEngine::ResolvedRequest HeatmapEngine::Resolve(
    const HeatmapRequestV2& request) const {
  ValidateGeometry(request.domain, request.width, request.height);
  std::shared_ptr<const CircleSetSnapshot> set =
      registry_->Resolve(request.circles);
  RNNHM_CHECK_MSG(set != nullptr,
                  "HeatmapRequestV2 handle is not registered with this "
                  "engine's registry");
  return ResolvedRequest{std::move(set), request.domain, request.width,
                         request.height};
}

std::future<HeatmapResponse> HeatmapEngine::Enqueue(ResolvedRequest request) {
  PendingRequest pending{std::move(request), {}};
  std::future<HeatmapResponse> future = pending.promise.get_future();
  {
    MutexLock lock(&mu_);
    RNNHM_CHECK_MSG(!stopping_, "Submit on a stopping HeatmapEngine");
    queue_.push_back(std::move(pending));
    ++in_flight_;
  }
  work_available_.NotifyOne();
  return future;
}

std::future<HeatmapResponse> HeatmapEngine::Submit(HeatmapRequest request) {
  ValidateGeometry(request.domain, request.width, request.height);
  // The legacy shim: the inline vector moves into an immutable snapshot
  // (hashed once here, on the submitting thread), then flows through the
  // same handle path v2 requests take.
  return Enqueue(ResolvedRequest{
      CircleSetSnapshot::Make(std::move(request.circles), request.metric),
      request.domain, request.width, request.height});
}

std::future<HeatmapResponse> HeatmapEngine::Submit(
    const HeatmapRequestV2& request) {
  return Enqueue(Resolve(request));
}

std::vector<HeatmapResponse> HeatmapEngine::RunBatch(
    std::vector<HeatmapRequest> requests) {
  std::vector<std::future<HeatmapResponse>> futures;
  futures.reserve(requests.size());
  for (HeatmapRequest& r : requests) futures.push_back(Submit(std::move(r)));
  std::vector<HeatmapResponse> out;
  out.reserve(futures.size());
  for (std::future<HeatmapResponse>& f : futures) out.push_back(f.get());
  return out;
}

std::vector<HeatmapResponse> HeatmapEngine::RunBatch(
    const std::vector<HeatmapRequestV2>& requests) {
  std::vector<std::future<HeatmapResponse>> futures;
  futures.reserve(requests.size());
  for (const HeatmapRequestV2& r : requests) futures.push_back(Submit(r));
  std::vector<HeatmapResponse> out;
  out.reserve(futures.size());
  for (std::future<HeatmapResponse>& f : futures) out.push_back(f.get());
  return out;
}

HeatmapResponse HeatmapEngine::Execute(const HeatmapRequest& request) const {
  ValidateGeometry(request.domain, request.width, request.height);
  if (cache_ == nullptr) {
    return Sweep(request.circles, request.metric, request.domain,
                 request.width, request.height);
  }
  // Hash in place (no snapshot yet): a hit is served without touching the
  // caller's circle vector, a miss copies it once into the cache entry.
  const SweepCacheKey key = SweepCache::KeyOf(request);
  std::optional<HeatmapResponse> hit =
      cache_->Lookup(key, request.circles, request.metric);
  if (hit.has_value()) return std::move(*hit);
  HeatmapResponse response = Sweep(request.circles, request.metric,
                                   request.domain, request.width,
                                   request.height);
  cache_->Insert(key, CircleSetSnapshot::Make(request.circles, request.metric),
                 response);
  response.cache = cache_->stats();
  return response;
}

HeatmapResponse HeatmapEngine::Execute(HeatmapRequest&& request) const {
  ValidateGeometry(request.domain, request.width, request.height);
  return Serve(ResolvedRequest{
      CircleSetSnapshot::Make(std::move(request.circles), request.metric),
      request.domain, request.width, request.height});
}

HeatmapResponse HeatmapEngine::Execute(const HeatmapRequestV2& request) const {
  return Serve(Resolve(request));
}

Status HeatmapEngine::ExecuteChecked(
    const HeatmapRequestV2& request,
    std::optional<HeatmapResponse>* response) const {
  if (request.width <= 0 || request.height <= 0) {
    return Status::InvalidArgument("non-positive raster size");
  }
  if (!(request.domain.lo.x < request.domain.hi.x) ||
      !(request.domain.lo.y < request.domain.hi.y)) {
    return Status::InvalidArgument("degenerate request domain");
  }
  std::shared_ptr<const CircleSetSnapshot> set =
      registry_->Resolve(request.circles);
  if (set == nullptr) {
    return Status::NotFound("handle is not registered with this engine");
  }
  try {
    *response = Serve(ResolvedRequest{std::move(set), request.domain,
                                      request.width, request.height});
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  } catch (...) {
    return Status::Internal("sweep failed");
  }
  return Status::Ok();
}

HeatmapResponse HeatmapEngine::ExecuteTiled(const HeatmapRequestV2& request,
                                            int tile_rows, int tile_cols,
                                            TiledServeStats* tile_stats) const {
  RNNHM_CHECK_MSG(tile_rows >= 1 && tile_cols >= 1,
                  "ExecuteTiled needs a positive tile grid");
  const ResolvedRequest resolved = Resolve(request);
  const CircleSetSnapshot& set = *resolved.set;
  const TilePlan plan(set.metric(), set.circles(), resolved.domain,
                      resolved.width, resolved.height,
                      TilePlanOptions{tile_rows, tile_cols});
  HeatmapResponse out{HeatmapGrid(resolved.width, resolved.height,
                                  resolved.domain, measure_.Evaluate({})),
                      {},
                      {},
                      /*from_cache=*/cache_ != nullptr,
                      {}};
  TiledServeStats tstats;
  tstats.tiles = tile_rows * tile_cols;
  for (const Tile& t : plan.tiles()) {
    if (t.window.empty() || t.circles.empty()) {
      // Pure background: the untiled sweep paints these pixels (if any)
      // with measure(∅), which the output grid already holds.
      ++tstats.background_tiles;
      continue;
    }
    HeatmapResponse fragment =
        ServeTileFragment(plan, t, set.metric(), resolved.domain,
                          resolved.width, resolved.height);
    TilePlan::StitchFragment(t.window, fragment.grid, &out.grid);
    AccumulateCrest(&out.stats, fragment.stats);
    AccumulateL2(&out.l2_stats, fragment.l2_stats);
    if (fragment.from_cache) {
      ++tstats.cached_tiles;
    } else {
      ++tstats.swept_tiles;
      out.from_cache = false;
    }
  }
  if (cache_ == nullptr) out.from_cache = false;
  out.cache = cache_stats();
  if (tile_stats != nullptr) *tile_stats = tstats;
  return out;
}

Status HeatmapEngine::ExecuteTileFragmentChecked(
    const HeatmapRequestV2& request, int tile_rows, int tile_cols,
    int tile_id, std::optional<HeatmapResponse>* response) const {
  if (request.width <= 0 || request.height <= 0) {
    return Status::InvalidArgument("non-positive raster size");
  }
  if (!(request.domain.lo.x < request.domain.hi.x) ||
      !(request.domain.lo.y < request.domain.hi.y)) {
    return Status::InvalidArgument("degenerate request domain");
  }
  if (tile_rows < 1 || tile_cols < 1 || tile_rows > kMaxTileGridSide ||
      tile_cols > kMaxTileGridSide) {
    return Status::InvalidArgument("tile grid outside [1, 1024] x [1, 1024]");
  }
  if (tile_id < 0 || tile_id >= tile_rows * tile_cols) {
    return Status::InvalidArgument("tile id outside the tile grid");
  }
  std::shared_ptr<const CircleSetSnapshot> set =
      registry_->Resolve(request.circles);
  if (set == nullptr) {
    return Status::NotFound("handle is not registered with this engine");
  }
  try {
    const TilePlan plan(set->metric(), set->circles(), request.domain,
                        request.width, request.height,
                        TilePlanOptions{tile_rows, tile_cols});
    const Tile& t = plan.tiles()[tile_id];
    if (t.window.empty()) {
      return Status::InvalidArgument(
          "tile window is empty at this resolution");
    }
    *response = ServeTileFragment(plan, t, set->metric(), request.domain,
                                  request.width, request.height);
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  } catch (...) {
    return Status::Internal("tile sweep failed");
  }
  return Status::Ok();
}

Status HeatmapEngine::ExecuteDeltaChecked(
    const CircleSetHandle& base, std::span<const CircleSetEdit> edits,
    std::optional<uint64_t> expected_hash, const Rect& domain, int width,
    int height, CircleSetHandle* derived,
    std::optional<HeatmapResponse>* response, bool* spliced,
    IncrementalRasterStats* splice_stats) const {
  if (spliced != nullptr) *spliced = false;
  if (splice_stats != nullptr) *splice_stats = IncrementalRasterStats{};
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("non-positive raster size");
  }
  if (!(domain.lo.x < domain.hi.x) || !(domain.lo.y < domain.hi.y)) {
    return Status::InvalidArgument("degenerate request domain");
  }
  DirtyRegionSet dirty;
  std::shared_ptr<const CircleSetSnapshot> base_set;
  CircleSetHandle derived_handle;
  if (const Status status = registry_->ApplyDelta(
          base, edits, expected_hash, &derived_handle, &dirty, &base_set);
      !status.ok()) {
    return status;
  }
  *derived = derived_handle;
  // The derived registration we just made pins the entry, so this resolve
  // can only fail on a concurrent out-of-band Release.
  std::shared_ptr<const CircleSetSnapshot> set =
      registry_->Resolve(derived_handle);
  if (set == nullptr) {
    return Status::NotFound("derived set released before it could be served");
  }
  try {
    if (cache_ != nullptr) {
      const SweepCacheKey derived_key{set->content_hash(), domain, width,
                                      height};
      std::optional<HeatmapResponse> hit = cache_->Lookup(derived_key, set);
      if (hit.has_value()) {
        *response = std::move(*hit);
        return Status::Ok();
      }
      // Splice: reuse the base raster when the cache still holds it and
      // the metric sweeps column-separably (kL1 sweeps the rotated frame,
      // where the dirty x-intervals do not map to output columns).
      if (set->metric() != Metric::kL1) {
        const SweepCacheKey base_key{base_set->content_hash(), domain, width,
                                     height};
        std::optional<HeatmapResponse> base_hit =
            cache_->Lookup(base_key, base_set);
        if (base_hit.has_value()) {
          HeatmapGrid grid = std::move(base_hit->grid);
          const IncrementalRasterStats inc = RecomputeDirtyColumns(
              &grid, set->metric(), set->circles(), measure_, dirty);
          HeatmapResponse served{std::move(grid), inc.sweep.crest,
                                 inc.sweep.l2, false, {}};
          cache_->Insert(derived_key, set, served);
          served.cache = cache_->stats();
          if (spliced != nullptr) *spliced = true;
          if (splice_stats != nullptr) *splice_stats = inc;
          *response = std::move(served);
          return Status::Ok();
        }
      }
    }
    *response = Serve(ResolvedRequest{std::move(set), domain, width, height});
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  } catch (...) {
    return Status::Internal("sweep failed");
  }
  return Status::Ok();
}

HeatmapResponse HeatmapEngine::ServeTileFragment(const TilePlan& plan,
                                                 const Tile& t, Metric metric,
                                                 const Rect& domain, int width,
                                                 int height) const {
  if (t.circles.empty()) {
    // Background fragment: nothing to sweep, nothing worth caching.
    MetricSweepStats sweep;
    HeatmapGrid fragment =
        plan.SweepTileFragment(t, measure_, options_.slabs_per_request,
                               &sweep);
    return HeatmapResponse{std::move(fragment), sweep.crest, sweep.l2, false,
                           cache_stats()};
  }
  std::vector<NnCircle> subset = plan.GatherCircles(t);
  const SweepCacheKey key =
      TileKey(HashCircleSet(subset, metric), domain, width, height, t.window);
  if (cache_ != nullptr) {
    std::optional<HeatmapResponse> hit = cache_->Lookup(key, subset, metric);
    if (hit.has_value()) return std::move(*hit);
  }
  MetricSweepStats sweep;
  HeatmapGrid fragment = plan.SweepTileFragment(
      t, measure_, options_.slabs_per_request, &sweep);
  HeatmapResponse response{std::move(fragment), sweep.crest, sweep.l2, false,
                           {}};
  if (cache_ != nullptr) {
    cache_->Insert(key, CircleSetSnapshot::Make(std::move(subset), metric),
                   response);
    response.cache = cache_->stats();
  }
  return response;
}

HeatmapResponse HeatmapEngine::Serve(const ResolvedRequest& request) const {
  const CircleSetSnapshot& set = *request.set;
  if (cache_ != nullptr) {
    const SweepCacheKey key{set.content_hash(), request.domain, request.width,
                            request.height};
    std::optional<HeatmapResponse> hit = cache_->Lookup(key, request.set);
    if (hit.has_value()) return std::move(*hit);
    HeatmapResponse response = Sweep(set.circles(), set.metric(),
                                     request.domain, request.width,
                                     request.height);
    cache_->Insert(key, request.set, response);
    response.cache = cache_->stats();
    return response;
  }
  return Sweep(set.circles(), set.metric(), request.domain, request.width,
               request.height);
}

HeatmapResponse HeatmapEngine::Sweep(const std::vector<NnCircle>& circles,
                                     Metric metric, const Rect& domain,
                                     int width, int height) const {
  switch (metric) {
    case Metric::kL1: {
      CrestStats stats;
      HeatmapGrid grid = BuildHeatmapL1Parallel(
          circles, measure_, domain, width, height,
          options_.slabs_per_request, /*oversample=*/1.5, &stats,
          options_.crest);
      return HeatmapResponse{std::move(grid), stats, {}, false, {}};
    }
    case Metric::kL2: {
      HeatmapGrid grid(width, height, domain, measure_.Evaluate({}));
      RasterArcSink raster(&grid);
      CrestL2Options l2;
      l2.arc_sink = &raster;
      const CrestL2Stats stats = RunCrestL2ParallelStrips(
          circles, measure_, options_.slabs_per_request, l2);
      return HeatmapResponse{std::move(grid), {}, stats, false, {}};
    }
    case Metric::kLInf:
      break;
  }
  HeatmapGrid grid(width, height, domain, measure_.Evaluate({}));
  RasterStripSink raster(&grid);
  CrestOptions crest = options_.crest;
  crest.strip_sink = &raster;
  CrestStats stats;
  if (options_.slabs_per_request > 1) {
    // Slab-decomposed sweep: shards paint disjoint strips of the shared
    // grid; region labels themselves are not needed.
    stats = RunCrestParallelStrips(circles, measure_,
                                   options_.slabs_per_request, crest);
  } else {
    CountingSink counter;
    stats = RunCrest(circles, measure_, &counter, crest);
  }
  return HeatmapResponse{std::move(grid), stats, {}, false, {}};
}

size_t HeatmapEngine::pending() const {
  MutexLock lock(&mu_);
  return in_flight_;
}

SweepCacheStats HeatmapEngine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : SweepCacheStats{};
}

void HeatmapEngine::WorkerLoop() {
  for (;;) {
    std::optional<PendingRequest> work;
    {
      MutexLock lock(&mu_);
      // An explicit predicate loop (rather than the predicate overload of
      // wait) keeps the guarded reads inside this analyzed scope.
      while (!stopping_ && queue_.empty()) work_available_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ with a drained queue
      work.emplace(std::move(queue_.front()));
      queue_.pop_front();
    }
    std::optional<HeatmapResponse> response;
    std::exception_ptr error;
    try {
      response.emplace(Serve(work->request));
    } catch (...) {
      error = std::current_exception();
    }
    // Leave the pending count before fulfilling the future, so a caller
    // that has observed every future resolve also observes pending() == 0.
    {
      MutexLock lock(&mu_);
      --in_flight_;
    }
    if (error) {
      work->promise.set_exception(error);
    } else {
      work->promise.set_value(std::move(*response));
    }
  }
}

}  // namespace rnnhm
