// Content-addressed memoization of heat-map responses.
//
// The paper's interactive workloads re-request near-identical heat maps
// constantly: a session re-submits its circle set every tick, a what-if
// exploration toggles between a handful of facility placements, a tile
// server re-renders the same tile for every viewer. A SweepCache memoizes
// whole HeatmapResponses keyed by the *content* of the request — the exact
// circle multiset, metric, domain and resolution — so any byte-identical
// re-request is served without sweeping, and any perturbation (one circle
// nudged) safely misses.
//
// Keys are SweepCacheKeys: the circle set's precomputed content hash
// (HashCircleSet, which folds in the metric) plus domain and resolution.
// Handle-based (v2) lookups therefore cost O(1) in the circle count — the
// hash travels with the CircleSetHandle and is never recomputed — while
// legacy inline requests hash their vector once per lookup, as before.
// Every hit additionally verifies full content equality against the
// entry's snapshot (pointer equality short-circuits for snapshots shared
// through a CircleSetRegistry), so a fingerprint collision degrades to a
// miss instead of returning the wrong map.
// Eviction is LRU under two ceilings: resident bytes (grids are sized via
// SerializedSizeBytes, keys by their circle payload) and entry count.
// All methods are thread-safe; workers of one engine share one instance.
#ifndef RNNHM_QUERY_SWEEP_CACHE_H_
#define RNNHM_QUERY_SWEEP_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#include "query/circle_set_registry.h"
#include "query/heatmap_engine.h"

namespace rnnhm {

/// Budgets for a SweepCache; entries evict (LRU first) whenever either
/// ceiling is exceeded.
struct SweepCacheOptions {
  /// Resident-byte ceiling (response grids + request keys). An entry
  /// larger than the whole budget is never admitted.
  size_t max_bytes = 64ull << 20;
  /// Resident-entry ceiling.
  size_t max_entries = 256;
};

/// The full cache key of one memoized response: the circle set by content
/// hash (metric folded in by HashCircleSet) plus the raster geometry.
///
/// Tiled serving (query/heatmap_engine.h ExecuteTiled) additionally keys
/// each memoized *fragment* by its tile's pixel window inside the full
/// raster: `set_hash` is then the hash of just the circles assigned to the
/// tile, so an edit invalidates only the fragments whose tile the edited
/// circle's influence region overlaps — every other tile's subset hashes
/// unchanged and keeps hitting. Whole-raster entries leave the window
/// fields at their zero defaults, so untiled keys compare and fingerprint
/// exactly as before tiling existed.
struct SweepCacheKey {
  uint64_t set_hash = 0;
  Rect domain;
  int width = 0;
  int height = 0;
  /// Half-open pixel window of a tiled fragment; all-zero (the default)
  /// for whole-raster entries.
  int tile_col_lo = 0;
  int tile_col_hi = 0;
  int tile_row_lo = 0;
  int tile_row_hi = 0;

  friend bool operator==(const SweepCacheKey&,
                         const SweepCacheKey&) = default;
};

/// Thread-safe LRU response cache keyed by request content.
class SweepCache {
 public:
  explicit SweepCache(SweepCacheOptions options);

  /// Returns the memoized response for `key` (marking it most-recently
  /// used), or nullopt. `set` is the lookup's circle set, used only to
  /// verify a candidate entry's content on a hash collision — snapshots
  /// shared through a registry short-circuit on pointer equality. The
  /// returned copy has `from_cache` set and carries a fresh stats
  /// snapshot.
  std::optional<HeatmapResponse> Lookup(
      const SweepCacheKey& key,
      const std::shared_ptr<const CircleSetSnapshot>& set)
      RNNHM_EXCLUDES(mu_);

  /// As above for callers without a snapshot (the legacy inline path):
  /// collision verification compares against `circles`/`metric` directly,
  /// with no copy and no re-hash.
  std::optional<HeatmapResponse> Lookup(const SweepCacheKey& key,
                                        std::span<const NnCircle> circles,
                                        Metric metric) RNNHM_EXCLUDES(mu_);

  /// Legacy convenience: hashes the request's circles and looks up. Cost
  /// scales with the circle count; prefer the key overloads.
  std::optional<HeatmapResponse> Lookup(const HeatmapRequest& request)
      RNNHM_EXCLUDES(mu_);

  /// Admits `response` for `key`, evicting LRU entries to fit. `set` must
  /// be the snapshot the response was computed from (its hash must equal
  /// `key.set_hash`); the entry shares it, copy-free. A response too
  /// large for the byte budget is silently not admitted; a re-insert
  /// under an existing key replaces the entry.
  void Insert(const SweepCacheKey& key,
              std::shared_ptr<const CircleSetSnapshot> set,
              const HeatmapResponse& response) RNNHM_EXCLUDES(mu_);

  /// Legacy convenience: snapshots the request's circles (moving them out
  /// of the by-value request) and admits under its content key.
  void Insert(HeatmapRequest request, const HeatmapResponse& response)
      RNNHM_EXCLUDES(mu_);

  /// Current counters (cumulative hit/miss/insert/evict, resident sizes).
  SweepCacheStats stats() const RNNHM_EXCLUDES(mu_);

  /// Drops every entry (counters other than entries/bytes are kept).
  void Clear() RNNHM_EXCLUDES(mu_);

  /// The canonical cache key of a legacy inline request: hashes the
  /// circle vector (O(n)). Handle paths build the key directly from the
  /// handle's content hash instead.
  static SweepCacheKey KeyOf(const HeatmapRequest& request);

  /// The 64-bit index fingerprint of a key (FNV-1a over its fields).
  /// Exposed for tests and for callers that shard by key.
  static uint64_t Fingerprint(const SweepCacheKey& key);

  /// Legacy convenience: Fingerprint(KeyOf(request)).
  static uint64_t Fingerprint(const HeatmapRequest& request);

 private:
  struct Entry {
    uint64_t fingerprint;
    SweepCacheKey key;
    // The circle set the response was computed from; kept to verify
    // content equality on hit.
    std::shared_ptr<const CircleSetSnapshot> set;
    // Immutable once admitted; hits grab the pointer under the lock and
    // materialize the caller's copy outside it, so concurrent hits never
    // serialize on the multi-megabyte grid copy.
    std::shared_ptr<const HeatmapResponse> response;
    size_t bytes;
  };

  // Shared hit path: `same_set` decides whether a candidate entry's
  // snapshot matches the lookup's circle content.
  template <typename SameSet>
  std::optional<HeatmapResponse> LookupImpl(const SweepCacheKey& key,
                                            const SameSet& same_set)
      RNNHM_EXCLUDES(mu_);

  // Evicts LRU entries until both budgets hold.
  void EvictToFitLocked() RNNHM_REQUIRES(mu_);

  const SweepCacheOptions options_;
  mutable Mutex mu_;
  // Front = most recently used.
  std::list<Entry> lru_ RNNHM_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_
      RNNHM_GUARDED_BY(mu_);
  SweepCacheStats stats_ RNNHM_GUARDED_BY(mu_);
};

}  // namespace rnnhm

#endif  // RNNHM_QUERY_SWEEP_CACHE_H_
