// Content-addressed memoization of heat-map responses.
//
// The paper's interactive workloads re-request near-identical heat maps
// constantly: a session re-submits its circle set every tick, a what-if
// exploration toggles between a handful of facility placements, a tile
// server re-renders the same tile for every viewer. A SweepCache memoizes
// whole HeatmapResponses keyed by the *content* of the request — the exact
// circle multiset, metric, domain and resolution — so any byte-identical
// re-request is served without sweeping, and any perturbation (one circle
// nudged) safely misses.
//
// Keys are 64-bit FNV-1a fingerprints of the canonical request bytes;
// every hit additionally verifies full request equality, so a fingerprint
// collision degrades to a miss instead of returning the wrong map.
// Eviction is LRU under two ceilings: resident bytes (grids are sized via
// SerializedSizeBytes, keys by their circle payload) and entry count.
// All methods are thread-safe; workers of one engine share one instance.
#ifndef RNNHM_QUERY_SWEEP_CACHE_H_
#define RNNHM_QUERY_SWEEP_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "query/heatmap_engine.h"

namespace rnnhm {

/// Budgets for a SweepCache; entries evict (LRU first) whenever either
/// ceiling is exceeded.
struct SweepCacheOptions {
  /// Resident-byte ceiling (response grids + request keys). An entry
  /// larger than the whole budget is never admitted.
  size_t max_bytes = 64ull << 20;
  /// Resident-entry ceiling.
  size_t max_entries = 256;
};

/// Thread-safe LRU response cache keyed by request content.
class SweepCache {
 public:
  explicit SweepCache(SweepCacheOptions options);

  /// Returns the memoized response for a byte-identical earlier request
  /// (marking it most-recently used), or nullopt. The returned copy has
  /// `from_cache` set and carries a fresh stats snapshot.
  std::optional<HeatmapResponse> Lookup(const HeatmapRequest& request);

  /// Admits `response` for `request`, evicting LRU entries to fit. A
  /// response too large for the byte budget is silently not admitted; a
  /// re-insert under an existing key replaces the entry. The request is
  /// taken by value so owning callers can move it in (the engine's miss
  /// path moves the swept request's circles straight into the entry).
  void Insert(HeatmapRequest request, const HeatmapResponse& response);

  /// Current counters (cumulative hit/miss/insert/evict, resident sizes).
  SweepCacheStats stats() const;

  /// Drops every entry (counters other than entries/bytes are kept).
  void Clear();

  /// The 64-bit content fingerprint used as the index key: FNV-1a over
  /// (metric, domain, width, height, every circle's center/radius/client).
  /// Exposed for tests and for callers that shard by key.
  static uint64_t Fingerprint(const HeatmapRequest& request);

 private:
  struct Entry {
    uint64_t key;
    HeatmapRequest request;  // kept to verify equality on hit
    // Immutable once admitted; hits grab the pointer under the lock and
    // materialize the caller's copy outside it, so concurrent hits never
    // serialize on the multi-megabyte grid copy.
    std::shared_ptr<const HeatmapResponse> response;
    size_t bytes;
  };

  // Evicts LRU entries until both budgets hold. Caller holds mu_.
  void EvictToFitLocked();

  const SweepCacheOptions options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  SweepCacheStats stats_;
};

}  // namespace rnnhm

#endif  // RNNHM_QUERY_SWEEP_CACHE_H_
