// Batched, multi-threaded heat-map serving facade.
//
// The paper's motivating workloads (taxi sharing, location planning) issue
// many independent RNNHM computations: one per city tile, per time tick, or
// per what-if facility placement. HeatmapEngine turns those into a service:
// requests are submitted from any thread, queued, and dispatched across a
// worker pool; each request runs the CREST sweep of its metric and
// rasterizes its heat map exactly as the sequential builder for that metric
// does (BuildHeatmapLInf / BuildHeatmapL1Parallel / BuildHeatmapL2), so
// batched output is bit-identical to a sequential run over the same inputs.
//
// Two parallelism axes compose:
//   * across requests — `num_threads` workers drain the shared queue;
//   * within a request — `slabs_per_request > 1` sweeps each request with
//     the slab-decomposed RunCrestParallel / RunCrestL2Parallel, painting
//     one shared grid through the strip sink (slab strips never overlap,
//     so the raster is still exact and deterministic).
// A third axis avoids the sweep altogether: `cache_bytes > 0` enables the
// content-addressed SweepCache (query/sweep_cache.h), which memoizes whole
// responses across Submit/RunBatch/Execute — repeated workloads are served
// bit-identically without recomputation, and every response reports
// whether it was a hit (`from_cache`) plus the cache counters (`cache`).
//
// Determinism contract: a request's grid depends only on the request and
// the measure, never on scheduling. `HeatmapEngineOptions{.num_threads = 1}`
// additionally serializes execution in submission order — the mode tests
// use as the reference.
//
// The engine holds a reference to one shared InfluenceMeasure; it must be
// safe for concurrent Evaluate (SizeInfluence, WeightedInfluence and
// ConnectivityInfluence are — see the crest_parallel contract).
#ifndef RNNHM_QUERY_HEATMAP_ENGINE_H_
#define RNNHM_QUERY_HEATMAP_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/crest.h"
#include "core/crest_l2.h"
#include "core/influence_measure.h"
#include "geom/geometry.h"
#include "heatmap/heatmap.h"

namespace rnnhm {

class SweepCache;

/// One heat-map computation: sweep `circles` (NN-circles built under
/// `metric`) and rasterize the influence field over `domain` at
/// `width` x `height`. L2 requests run the arc sweep and are exact at
/// pixel centers; L1 requests sweep the rotated frame and resample.
struct HeatmapRequest {
  /// NN-circles to sweep; must have been built under `metric`.
  std::vector<NnCircle> circles;
  /// Rectangular raster window (need not cover every circle).
  Rect domain;
  /// Raster resolution in pixels; both must be positive.
  int width = 0;
  int height = 0;
  /// Metric the circles were built under; selects the sweep pipeline.
  Metric metric = Metric::kLInf;
};

/// Aggregate counters of a SweepCache (also snapshotted onto every
/// response served by a cache-enabled engine). Hits/misses/insertions/
/// evictions are cumulative; entries/bytes describe the current contents.
struct SweepCacheStats {
  uint64_t hits = 0;        ///< lookups answered from the cache
  uint64_t misses = 0;      ///< lookups that fell through to a sweep
  uint64_t insertions = 0;  ///< responses admitted
  uint64_t evictions = 0;   ///< entries dropped by the LRU/byte budget
  size_t entries = 0;       ///< resident entries
  size_t bytes = 0;         ///< resident bytes (grids + keys)
};

/// The finished raster plus the sweep's counters: `stats` for the
/// rectilinear sweeps (kLInf, kL1), `l2_stats` for the arc sweep (kL2);
/// the counters of the sweep that did not run stay zero.
struct HeatmapResponse {
  HeatmapGrid grid;
  CrestStats stats;
  CrestL2Stats l2_stats;
  /// True iff this response was served from the engine's SweepCache
  /// without running a sweep (always false on cache-disabled engines).
  bool from_cache = false;
  /// Snapshot of the engine's cache counters taken when this response was
  /// served (all zero on cache-disabled engines).
  SweepCacheStats cache;
};

struct HeatmapEngineOptions {
  /// Worker threads draining the request queue. 0 picks the hardware
  /// concurrency; 1 gives the deterministic single-worker mode (requests
  /// execute one at a time in submission order).
  int num_threads = 0;
  /// Slabs per request for the intra-request parallel sweep. 1 runs the
  /// plain sequential RunCrest per request (the bit-identity reference);
  /// higher values decompose each sweep via RunCrestParallel.
  int slabs_per_request = 1;
  /// Sweep tuning forwarded to every request. `strip_sink` is owned by the
  /// engine and must be left null here.
  CrestOptions crest;
  /// Byte budget of the engine's result cache (SweepCache): 0 disables
  /// caching, any positive value memoizes whole responses keyed by the
  /// request content. Repeated workloads (sessions re-submitting
  /// near-identical circle sets every tick, what-if replays) then skip the
  /// sweep entirely; cached responses are bit-identical to freshly
  /// computed ones.
  size_t cache_bytes = 0;
  /// Entry-count ceiling of the result cache (LRU evicts beyond either
  /// budget). Ignored when `cache_bytes` is 0.
  size_t cache_entries = 256;
};

/// Thread-safe batched facade over CREST heat-map construction.
class HeatmapEngine {
 public:
  explicit HeatmapEngine(const InfluenceMeasure& measure,
                         HeatmapEngineOptions options = {});
  ~HeatmapEngine();

  HeatmapEngine(const HeatmapEngine&) = delete;
  HeatmapEngine& operator=(const HeatmapEngine&) = delete;

  /// Enqueues one request; callable concurrently from any thread. Invalid
  /// requests (non-positive raster size, degenerate domain) CHECK-fail
  /// here, at the call site; the future carries the response or any
  /// exception thrown while serving.
  std::future<HeatmapResponse> Submit(HeatmapRequest request);

  /// Submits a whole batch and waits; responses are returned in request
  /// order regardless of completion order.
  std::vector<HeatmapResponse> RunBatch(std::vector<HeatmapRequest> requests);

  /// Computes one request synchronously on the calling thread, bypassing
  /// the queue (but not the result cache). This is exactly the code path
  /// workers run: consult the cache when enabled, sweep on a miss, admit
  /// the response. Cache hits never copy the request; the rvalue overload
  /// additionally moves a missing request's circles straight into the
  /// cache entry (workers use it), where the const-ref overload copies.
  HeatmapResponse Execute(const HeatmapRequest& request) const;
  HeatmapResponse Execute(HeatmapRequest&& request) const;

  /// Resolved worker count.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Requests accepted but not yet finished.
  size_t pending() const;

  /// Current result-cache counters; all-zero when caching is disabled.
  SweepCacheStats cache_stats() const;

 private:
  void WorkerLoop();
  // Shared body of both Execute overloads; `owned`, when non-null, is the
  // caller's request to move into the cache on a miss.
  HeatmapResponse Serve(const HeatmapRequest& request,
                        HeatmapRequest* owned) const;
  // The uncached sweep of one request (cache miss path).
  HeatmapResponse Sweep(const HeatmapRequest& request) const;

  const InfluenceMeasure& measure_;
  const HeatmapEngineOptions options_;
  // Result cache shared by all workers (internally synchronized); null
  // when options_.cache_bytes == 0. Const pointer, mutable pointee: the
  // cache may be consulted from the const Execute path.
  const std::unique_ptr<SweepCache> cache_;

  struct PendingRequest {
    HeatmapRequest request;
    std::promise<HeatmapResponse> promise;
  };

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<PendingRequest> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rnnhm

#endif  // RNNHM_QUERY_HEATMAP_ENGINE_H_
