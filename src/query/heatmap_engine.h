// Batched, multi-threaded heat-map serving facade.
//
// The paper's motivating workloads (taxi sharing, location planning) issue
// many independent RNNHM computations: one per city tile, per time tick, or
// per what-if facility placement. HeatmapEngine turns those into a service:
// requests are submitted from any thread, queued, and dispatched across a
// worker pool; each request runs the CREST sweep of its metric and
// rasterizes its heat map exactly as the sequential builder for that metric
// does (BuildHeatmapLInf / BuildHeatmapL1Parallel / BuildHeatmapL2), so
// batched output is bit-identical to a sequential run over the same inputs.
//
// Two parallelism axes compose:
//   * across requests — `num_threads` workers drain the shared queue;
//   * within a request — `slabs_per_request > 1` sweeps each request with
//     the slab-decomposed RunCrestParallel / RunCrestL2Parallel, painting
//     one shared grid through the strip sink (slab strips never overlap,
//     so the raster is still exact and deterministic).
//
// Determinism contract: a request's grid depends only on the request and
// the measure, never on scheduling. `HeatmapEngineOptions{.num_threads = 1}`
// additionally serializes execution in submission order — the mode tests
// use as the reference.
//
// The engine holds a reference to one shared InfluenceMeasure; it must be
// safe for concurrent Evaluate (SizeInfluence, WeightedInfluence and
// ConnectivityInfluence are — see the crest_parallel contract).
#ifndef RNNHM_QUERY_HEATMAP_ENGINE_H_
#define RNNHM_QUERY_HEATMAP_ENGINE_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/crest.h"
#include "core/crest_l2.h"
#include "core/influence_measure.h"
#include "geom/geometry.h"
#include "heatmap/heatmap.h"

namespace rnnhm {

/// One heat-map computation: sweep `circles` (NN-circles built under
/// `metric`) and rasterize the influence field over `domain` at
/// `width` x `height`. L2 requests run the arc sweep and are exact at
/// pixel centers; L1 requests sweep the rotated frame and resample.
struct HeatmapRequest {
  std::vector<NnCircle> circles;
  Rect domain;
  int width = 0;
  int height = 0;
  Metric metric = Metric::kLInf;
};

/// The finished raster plus the sweep's counters: `stats` for the
/// rectilinear sweeps (kLInf, kL1), `l2_stats` for the arc sweep (kL2);
/// the counters of the sweep that did not run stay zero.
struct HeatmapResponse {
  HeatmapGrid grid;
  CrestStats stats;
  CrestL2Stats l2_stats;
};

struct HeatmapEngineOptions {
  /// Worker threads draining the request queue. 0 picks the hardware
  /// concurrency; 1 gives the deterministic single-worker mode (requests
  /// execute one at a time in submission order).
  int num_threads = 0;
  /// Slabs per request for the intra-request parallel sweep. 1 runs the
  /// plain sequential RunCrest per request (the bit-identity reference);
  /// higher values decompose each sweep via RunCrestParallel.
  int slabs_per_request = 1;
  /// Sweep tuning forwarded to every request. `strip_sink` is owned by the
  /// engine and must be left null here.
  CrestOptions crest;
};

/// Thread-safe batched facade over CREST heat-map construction.
class HeatmapEngine {
 public:
  explicit HeatmapEngine(const InfluenceMeasure& measure,
                         HeatmapEngineOptions options = {});
  ~HeatmapEngine();

  HeatmapEngine(const HeatmapEngine&) = delete;
  HeatmapEngine& operator=(const HeatmapEngine&) = delete;

  /// Enqueues one request; callable concurrently from any thread. Invalid
  /// requests (non-positive raster size, degenerate domain) CHECK-fail
  /// here, at the call site; the future carries the response or any
  /// exception thrown while serving.
  std::future<HeatmapResponse> Submit(HeatmapRequest request);

  /// Submits a whole batch and waits; responses are returned in request
  /// order regardless of completion order.
  std::vector<HeatmapResponse> RunBatch(std::vector<HeatmapRequest> requests);

  /// Computes one request synchronously on the calling thread, bypassing
  /// the queue. This is exactly the code path workers run.
  HeatmapResponse Execute(const HeatmapRequest& request) const;

  /// Resolved worker count.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Requests accepted but not yet finished.
  size_t pending() const;

 private:
  void WorkerLoop();

  const InfluenceMeasure& measure_;
  const HeatmapEngineOptions options_;

  struct PendingRequest {
    HeatmapRequest request;
    std::promise<HeatmapResponse> promise;
  };

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<PendingRequest> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rnnhm

#endif  // RNNHM_QUERY_HEATMAP_ENGINE_H_
