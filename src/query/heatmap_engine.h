// Batched, multi-threaded heat-map serving facade.
//
// The paper's motivating workloads (taxi sharing, location planning) issue
// many independent RNNHM computations: one per city tile, per time tick, or
// per what-if facility placement. HeatmapEngine turns those into a service:
// requests are submitted from any thread, queued, and dispatched across a
// worker pool; each request runs the CREST sweep of its metric and
// rasterizes its heat map exactly as the sequential builder for that metric
// does (BuildHeatmapLInf / BuildHeatmapL1Parallel / BuildHeatmapL2), so
// batched output is bit-identical to a sequential run over the same inputs.
//
// Two request forms share one execution path:
//   * HeatmapRequestV2 (preferred) references a circle set registered in
//     the engine's CircleSetRegistry by CircleSetHandle — submits never
//     copy circle data, and cache probes key off the handle's precomputed
//     content hash (O(1) in the circle count);
//   * the legacy HeatmapRequest inlines its circle vector and is adapted
//     internally (an immutable snapshot is made of the moved-in vector; the
//     const-ref Execute overload hashes in place and copies only on a cache
//     miss, so hits are copy-free).
//
// Two parallelism axes compose:
//   * across requests — `num_threads` workers drain the shared queue;
//   * within a request — `slabs_per_request > 1` sweeps each request with
//     the slab-decomposed RunCrestParallel / RunCrestL2Parallel, painting
//     one shared grid through the strip sink (slab strips never overlap,
//     so the raster is still exact and deterministic).
// A third axis avoids the sweep altogether: `cache_bytes > 0` enables the
// content-addressed SweepCache (query/sweep_cache.h), which memoizes whole
// responses across Submit/RunBatch/Execute — repeated workloads are served
// bit-identically without recomputation, and every response reports
// whether it was a hit (`from_cache`) plus the cache counters (`cache`).
//
// Determinism contract: a request's grid depends only on the request and
// the measure, never on scheduling. `HeatmapEngineOptions{.num_threads = 1}`
// additionally serializes execution in submission order — the mode tests
// use as the reference.
//
// The engine holds a reference to one shared InfluenceMeasure; it must be
// safe for concurrent Evaluate (SizeInfluence, WeightedInfluence and
// ConnectivityInfluence are — see the crest_parallel contract).
#ifndef RNNHM_QUERY_HEATMAP_ENGINE_H_
#define RNNHM_QUERY_HEATMAP_ENGINE_H_

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/crest.h"
#include "core/crest_l2.h"
#include "core/influence_measure.h"
#include "geom/geometry.h"
#include "heatmap/heatmap.h"
#include "heatmap/incremental.h"
#include "query/circle_set_registry.h"

namespace rnnhm {

class SweepCache;
struct SweepCacheKey;
class TilePlan;
struct Tile;

/// One heat-map computation: sweep `circles` (NN-circles built under
/// `metric`) and rasterize the influence field over `domain` at
/// `width` x `height`. L2 requests run the arc sweep and are exact at
/// pixel centers; L1 requests sweep the rotated frame and resample.
/// This is the legacy inline form; HeatmapRequestV2 shares the circle
/// data instead of embedding it.
struct HeatmapRequest {
  /// NN-circles to sweep; must have been built under `metric`.
  std::vector<NnCircle> circles;
  /// Rectangular raster window (need not cover every circle).
  Rect domain;
  /// Raster resolution in pixels; both must be positive.
  int width = 0;
  int height = 0;
  /// Metric the circles were built under; selects the sweep pipeline.
  Metric metric = Metric::kLInf;
};

/// The v2 request: the circle set travels as a handle into the engine's
/// CircleSetRegistry (register via `engine.registry().Register(...)`), so
/// a population shared by many requests is stored once and cache probes
/// reuse the handle's precomputed content hash. The metric is a property
/// of the registered set, not of the request.
struct HeatmapRequestV2 {
  /// Handle of a set registered in the serving engine's registry.
  CircleSetHandle circles;
  /// Rectangular raster window (need not cover every circle).
  Rect domain;
  /// Raster resolution in pixels; both must be positive.
  int width = 0;
  int height = 0;
};

/// Aggregate counters of a SweepCache (also snapshotted onto every
/// response served by a cache-enabled engine). Hits/misses/insertions/
/// evictions are cumulative; entries/bytes describe the current contents.
struct SweepCacheStats {
  uint64_t hits = 0;        ///< lookups answered from the cache
  uint64_t misses = 0;      ///< lookups that fell through to a sweep
  uint64_t insertions = 0;  ///< responses admitted
  uint64_t evictions = 0;   ///< entries dropped by the LRU/byte budget
  size_t entries = 0;       ///< resident entries
  size_t bytes = 0;         ///< resident bytes (grids + keys)
};

/// Per-request accounting of one ExecuteTiled call: how each tile of the
/// R x C grid was served. `background_tiles` covers tiles with an empty
/// pixel window or no assigned circles (their pixels are pure background
/// and need no sweep and no cache entry); the rest are fragments served
/// from the SweepCache (`cached_tiles`) or recomputed (`swept_tiles`).
struct TiledServeStats {
  int tiles = 0;             ///< tile_rows * tile_cols
  int background_tiles = 0;  ///< empty window or empty circle subset
  int cached_tiles = 0;      ///< fragments served from the cache
  int swept_tiles = 0;       ///< fragments recomputed by a sweep
};

/// The finished raster plus the sweep's counters: `stats` for the
/// rectilinear sweeps (kLInf, kL1), `l2_stats` for the arc sweep (kL2);
/// the counters of the sweep that did not run stay zero.
struct HeatmapResponse {
  HeatmapGrid grid;
  CrestStats stats;
  CrestL2Stats l2_stats;
  /// True iff this response was served from the engine's SweepCache
  /// without running a sweep (always false on cache-disabled engines).
  bool from_cache = false;
  /// Snapshot of the engine's cache counters taken when this response was
  /// served (all zero on cache-disabled engines).
  SweepCacheStats cache;
};

struct HeatmapEngineOptions {
  /// Worker threads draining the request queue. 0 picks the hardware
  /// concurrency; 1 gives the deterministic single-worker mode (requests
  /// execute one at a time in submission order).
  int num_threads = 0;
  /// Slabs per request for the intra-request parallel sweep. 1 runs the
  /// plain sequential RunCrest per request (the bit-identity reference);
  /// higher values decompose each sweep via RunCrestParallel.
  int slabs_per_request = 1;
  /// Sweep tuning forwarded to every request. `strip_sink` is owned by the
  /// engine and must be left null here.
  CrestOptions crest;
  /// Byte budget of the engine's result cache (SweepCache): 0 disables
  /// caching, any positive value memoizes whole responses keyed by the
  /// request content. Repeated workloads (sessions re-submitting
  /// near-identical circle sets every tick, what-if replays) then skip the
  /// sweep entirely; cached responses are bit-identical to freshly
  /// computed ones.
  size_t cache_bytes = 0;
  /// Entry-count ceiling of the result cache (LRU evicts beyond either
  /// budget). Ignored when `cache_bytes` is 0.
  size_t cache_entries = 256;
  /// Circle-set registry v2 requests resolve against. Null makes the
  /// engine create a private one (reachable via `registry()`); pass a
  /// shared registry to let several engines or sessions publish into the
  /// same handle space.
  std::shared_ptr<CircleSetRegistry> registry;
};

/// Thread-safe batched facade over CREST heat-map construction.
class HeatmapEngine {
 public:
  explicit HeatmapEngine(const InfluenceMeasure& measure,
                         HeatmapEngineOptions options = {});
  ~HeatmapEngine();

  HeatmapEngine(const HeatmapEngine&) = delete;
  HeatmapEngine& operator=(const HeatmapEngine&) = delete;

  /// Enqueues one request; callable concurrently from any thread. Invalid
  /// requests (non-positive raster size, degenerate domain) CHECK-fail
  /// here, at the call site; the future carries the response or any
  /// exception thrown while serving. The circle vector is moved into an
  /// immutable snapshot, never copied.
  std::future<HeatmapResponse> Submit(HeatmapRequest request);

  /// Enqueues one v2 request. The handle must name a live set in
  /// `registry()` (CHECK-fails here otherwise — resolve untrusted handles
  /// yourself first); the snapshot is pinned for the request's lifetime,
  /// so a concurrent Release cannot unmap it mid-sweep.
  std::future<HeatmapResponse> Submit(const HeatmapRequestV2& request);

  /// Submits a whole batch and waits; responses are returned in request
  /// order regardless of completion order.
  std::vector<HeatmapResponse> RunBatch(std::vector<HeatmapRequest> requests);
  std::vector<HeatmapResponse> RunBatch(
      const std::vector<HeatmapRequestV2>& requests);

  /// Computes one request synchronously on the calling thread, bypassing
  /// the queue (but not the result cache). This is exactly the code path
  /// workers run: consult the cache when enabled, sweep on a miss, admit
  /// the response. Cache hits never copy the request's circles; the
  /// const-ref overload copies them only into a cache entry on a miss,
  /// and the rvalue overload moves them instead (workers use it).
  HeatmapResponse Execute(const HeatmapRequest& request) const;
  HeatmapResponse Execute(HeatmapRequest&& request) const;

  /// Computes one v2 request synchronously. Copy-free on every path: the
  /// cache is probed with the handle's precomputed hash, and hit or miss,
  /// the circle data is only ever shared, never duplicated.
  HeatmapResponse Execute(const HeatmapRequestV2& request) const;

  /// Computes one v2 request through the domain-tiling path
  /// (tile/tile_plan.h): the raster is split into a tile_rows x tile_cols
  /// grid, each tile sweeps just the circles whose influence can reach it,
  /// and the stitched result is bit-identical to Execute on the same
  /// request. With caching enabled, each tile's *fragment* is memoized
  /// under the hash of the tile's circle subset plus its pixel window —
  /// so after an edit, only the tiles the edited circle's influence
  /// region overlaps miss (their subset hash changed) and every other
  /// tile restitches from the cache, composing with the 2D dirty-rect
  /// machinery of the delta path at tile granularity. `tile_stats`, when
  /// non-null, reports how each tile was served. CHECK-fails on invalid
  /// geometry, an unregistered handle, or a non-positive tile grid.
  HeatmapResponse ExecuteTiled(const HeatmapRequestV2& request, int tile_rows,
                               int tile_cols,
                               TiledServeStats* tile_stats = nullptr) const;

  /// The serving-stack by-tile shard path: computes the single tile
  /// `tile_id` (row-major, in [0, tile_rows * tile_cols)) of the tiled
  /// decomposition of `request` and returns its *fragment* — a grid of
  /// the tile's window size whose cell (i, j) is global pixel
  /// (window.col_lo + i, window.row_lo + j). Fragments are memoized under
  /// the same per-tile keys ExecuteTiled uses. Every failure is a Status:
  /// kInvalidArgument for bad geometry, a bad tile grid (bounds are
  /// wire-facing: at most 1024 x 1024 tiles), a tile id outside the grid,
  /// or an empty tile window (route only non-empty windows); kNotFound
  /// for an unresolved handle; kInternal for a sweep that threw.
  Status ExecuteTileFragmentChecked(
      const HeatmapRequestV2& request, int tile_rows, int tile_cols,
      int tile_id, std::optional<HeatmapResponse>* response) const;

  /// The serving-stack submit path: like Execute(HeatmapRequestV2) but
  /// every failure comes back as a Status instead of a CHECK or an
  /// exception — kInvalidArgument for bad geometry, kNotFound for a
  /// handle this registry does not resolve, kInternal for a sweep that
  /// threw. `*response` is engaged only on ok (an optional because a
  /// HeatmapResponse has no empty state — its grid carries dimensions).
  /// This is what a server facing untrusted requests calls (see
  /// serve/wire_server.h).
  Status ExecuteChecked(const HeatmapRequestV2& request,
                        std::optional<HeatmapResponse>* response) const;

  /// The serving-stack delta path (wire v4): derives a new registered set
  /// from `base` + `edits` via registry().ApplyDelta (the caller owns the
  /// derived registration bump reported through `*derived`), then serves
  /// the derived set's heat map over `domain` at `width` x `height`.
  /// When the engine's cache still holds the base raster for the same
  /// geometry and the metric is column-separable (kLInf, kL2), the
  /// response is *spliced* — only the pixels inside the dirty rects the
  /// edits touched are recomputed — and is bit-identical to a
  /// from-scratch sweep by the incremental-raster contract
  /// (heatmap/incremental.h); otherwise it falls back to the normal cold
  /// path. `*spliced`, when non-null, reports which path served the
  /// response; `*splice_stats`, when non-null, receives the splice pass
  /// counters (zeroed when the response was not spliced). Status mirrors
  /// ExecuteChecked plus ApplyDelta's kNotFound (base gone/evicted) and
  /// kInvalidArgument (bad edit index, derived-hash mismatch); nothing is
  /// registered on failure.
  Status ExecuteDeltaChecked(const CircleSetHandle& base,
                             std::span<const CircleSetEdit> edits,
                             std::optional<uint64_t> expected_hash,
                             const Rect& domain, int width, int height,
                             CircleSetHandle* derived,
                             std::optional<HeatmapResponse>* response,
                             bool* spliced = nullptr,
                             IncrementalRasterStats* splice_stats =
                                 nullptr) const;

  /// The registry v2 handles resolve against (engine-private unless one
  /// was passed in via options).
  CircleSetRegistry& registry() const { return *registry_; }

  /// Resolved worker count.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Requests accepted but not yet finished.
  size_t pending() const RNNHM_EXCLUDES(mu_);

  /// Current result-cache counters; all-zero when caching is disabled.
  SweepCacheStats cache_stats() const;

 private:
  // The canonical in-flight form both request structs reduce to: a pinned
  // immutable circle-set snapshot plus the raster geometry.
  struct ResolvedRequest {
    std::shared_ptr<const CircleSetSnapshot> set;
    Rect domain;
    int width = 0;
    int height = 0;
  };

  void WorkerLoop() RNNHM_EXCLUDES(mu_);
  std::future<HeatmapResponse> Enqueue(ResolvedRequest request)
      RNNHM_EXCLUDES(mu_);
  ResolvedRequest Resolve(const HeatmapRequestV2& request) const;
  // The shared serve path: cache probe keyed by the snapshot's content
  // hash, sweep on a miss, admit sharing the snapshot.
  HeatmapResponse Serve(const ResolvedRequest& request) const;
  // The uncached sweep (cache miss path).
  HeatmapResponse Sweep(const std::vector<NnCircle>& circles, Metric metric,
                        const Rect& domain, int width, int height) const;
  // One tile's fragment: cache probe under the per-tile key (subset hash +
  // pixel window), fragment sweep on a miss, admit. Requires a non-empty
  // window; an empty circle subset yields an uncached background fragment.
  HeatmapResponse ServeTileFragment(const TilePlan& plan, const Tile& t,
                                    Metric metric, const Rect& domain,
                                    int width, int height) const;

  const InfluenceMeasure& measure_;
  const HeatmapEngineOptions options_;
  const std::shared_ptr<CircleSetRegistry> registry_;
  // Result cache shared by all workers (internally synchronized); null
  // when options_.cache_bytes == 0. Const pointer, mutable pointee: the
  // cache may be consulted from the const Execute path.
  const std::unique_ptr<SweepCache> cache_;

  struct PendingRequest {
    ResolvedRequest request;
    std::promise<HeatmapResponse> promise;
  };

  mutable Mutex mu_;
  CondVar work_available_;
  std::deque<PendingRequest> queue_ RNNHM_GUARDED_BY(mu_);
  // Queued + currently executing.
  size_t in_flight_ RNNHM_GUARDED_BY(mu_) = 0;
  bool stopping_ RNNHM_GUARDED_BY(mu_) = false;
  // Written only by the constructor, before any worker runs; read-only
  // afterwards (num_threads, the destructor's join).
  std::vector<std::thread> workers_;
};

}  // namespace rnnhm

#endif  // RNNHM_QUERY_HEATMAP_ENGINE_H_
