// Dynamic workload sessions (the paper's motivating taxi-sharing setting:
// "the heat map may change as clients move around and need to be
// recomputed frequently").
//
// A HeatmapSession owns a mutable client/facility workload and keeps the
// NN-circles incrementally correct:
//   * moving or adding a client recomputes only that client's circle
//     (one k-d tree query);
//   * adding a facility shrinks exactly the circles it now serves
//     (no index rebuild — a linear radius check);
//   * removing a facility re-queries only the clients it was serving
//     (facility tree rebuilt lazily).
// Rebuild() then runs the sweep over the current circles, which is where
// an efficient RNNHM algorithm matters — CREST's O(n log n + r lambda)
// makes per-tick recomputation feasible.
#ifndef RNNHM_QUERY_HEATMAP_SESSION_H_
#define RNNHM_QUERY_HEATMAP_SESSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/crest.h"
#include "core/crest_l2.h"
#include "core/crest_parallel.h"
#include "core/influence_measure.h"
#include "core/label_sink.h"
#include "geom/geometry.h"
#include "index/kdtree.h"

namespace rnnhm {

/// Mutable bichromatic workload with incrementally maintained NN-circles.
class HeatmapSession {
 public:
  /// Starts a session; requires at least one facility.
  HeatmapSession(std::vector<Point> clients, std::vector<Point> facilities,
                 Metric metric);

  size_t num_clients() const { return clients_.size(); }
  size_t num_facilities() const { return facilities_.size(); }
  Metric metric() const { return metric_; }

  /// Moves client `id`; O(log |F|).
  void MoveClient(int32_t id, const Point& to);

  /// Adds a client; returns its id. O(log |F|).
  int32_t AddClient(const Point& at);

  /// Adds a facility; O(|O|) radius shrink pass, no tree rebuild.
  void AddFacility(const Point& at);

  /// Removes facility `id` (swap-removes; the last facility takes its id).
  /// Requires at least two facilities. Rebuilds the facility tree and
  /// re-queries only the clients that were served by the removed facility.
  void RemoveFacility(int32_t id);

  /// The current NN-circles (metric-specific radii).
  const std::vector<NnCircle>& circles() const { return circles_; }
  const std::vector<Point>& clients() const { return clients_; }
  const std::vector<Point>& facilities() const { return facilities_; }

  /// Runs the sweep appropriate for the session metric over the current
  /// circles (L1 is swept in the rotated frame, as RunCrestL1).
  void Rebuild(const InfluenceMeasure& measure, RegionLabelSink* sink,
               const CrestOptions& options = {}) const;

  /// As Rebuild with the slab-parallel sweep: shard i labels slab i through
  /// `shard_sinks[i]` (see core/crest_parallel.h for the thread-safety
  /// contract; L1 sessions sweep and label in the rotated frame, L2
  /// sessions run the slab-decomposed arc sweep). Returns the summed
  /// per-shard stats of whichever sweep ran. `options` applies to the
  /// rectilinear sweeps only.
  MetricSweepStats RebuildParallel(
      const InfluenceMeasure& measure,
      std::span<RegionLabelSink* const> shard_sinks,
      const CrestOptions& options = {}) const;

 private:
  void EnsureFacilityTree();
  void RequeryClient(int32_t id);

  Metric metric_;
  std::vector<Point> clients_;
  std::vector<Point> facilities_;
  std::vector<NnCircle> circles_;
  std::vector<int32_t> client_nn_;  // facility currently nearest per client
  std::unique_ptr<KdTree> facility_tree_;  // rebuilt lazily
};

}  // namespace rnnhm

#endif  // RNNHM_QUERY_HEATMAP_SESSION_H_
