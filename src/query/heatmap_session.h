// Dynamic workload sessions (the paper's motivating taxi-sharing setting:
// "the heat map may change as clients move around and need to be
// recomputed frequently").
//
// A HeatmapSession owns a mutable client/facility workload and keeps the
// NN-circles incrementally correct:
//   * moving or adding a client recomputes only that client's circle
//     (one k-d tree query);
//   * adding a facility shrinks exactly the circles it now serves
//     (no index rebuild — a linear radius check);
//   * removing a facility re-queries only the clients it was serving
//     (facility tree rebuilt lazily).
// Rebuild() then runs the sweep over the current circles, which is where
// an efficient RNNHM algorithm matters — CREST's O(n log n + r lambda)
// makes per-tick recomputation feasible. RasterIncremental() goes one step
// further for kLInf/kL2 sessions: it retains the previous raster, tracks
// the 2D rect each edit dirties, and re-sweeps only the sub-rects covering
// them — bit-identical to a from-scratch rebuild at a fraction of the
// work when edits are local.
#ifndef RNNHM_QUERY_HEATMAP_SESSION_H_
#define RNNHM_QUERY_HEATMAP_SESSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/crest.h"
#include "core/crest_l2.h"
#include "core/crest_parallel.h"
#include "core/dirty_interval.h"
#include "core/influence_measure.h"
#include "core/label_sink.h"
#include "geom/geometry.h"
#include "heatmap/heatmap.h"
#include "heatmap/incremental.h"
#include "index/kdtree.h"
#include "query/circle_set_registry.h"
#include "query/heatmap_engine.h"

namespace rnnhm {

/// Outcome of one HeatmapSession::RasterIncremental call.
struct IncrementalRebuildStats {
  /// True when the call swept everything from scratch instead of splicing:
  /// the first raster, a domain/size/measure change, an explicit
  /// InvalidateRaster, or a kL1 session (whose sweep runs in the rotated
  /// frame and is not column-separable). `raster` stays zero then.
  bool full_rebuild = false;
  /// Counters of the splice pass (dirty slabs/columns, clipped-sweep work).
  IncrementalRasterStats raster;
};

/// Mutable bichromatic workload with incrementally maintained NN-circles.
///
/// Concurrency model: a session is thread-compatible, not thread-safe —
/// it holds no locks and every member is owned by whichever single thread
/// drives the session (distinct sessions on distinct threads are fine).
/// The one multi-threaded path, RebuildParallel, fans work out internally
/// through SweepCrestParallel, whose workers write disjoint shard scratch
/// and never touch session state; the session object itself stays
/// confined to the caller for the whole call. This is the same external-
/// synchronization contract the engine gives each queue entry, so no
/// annotated mutex lives here by design (see docs/ARCHITECTURE.md,
/// "Concurrency model & static analysis").
class HeatmapSession {
 public:
  /// Starts a session; requires at least one facility.
  HeatmapSession(std::vector<Point> clients, std::vector<Point> facilities,
                 Metric metric);

  /// Number of clients currently in the workload (edits can grow it).
  size_t num_clients() const { return clients_.size(); }
  /// Number of facilities currently in the workload (always >= 1).
  size_t num_facilities() const { return facilities_.size(); }
  /// The distance metric every circle radius is measured in.
  Metric metric() const { return metric_; }

  /// Moves client `id`; O(log |F|).
  void MoveClient(int32_t id, const Point& to);

  /// Adds a client; returns its id. O(log |F|).
  int32_t AddClient(const Point& at);

  /// Adds a facility; O(|O|) radius shrink pass, no tree rebuild.
  void AddFacility(const Point& at);

  /// Removes facility `id` (swap-removes; the last facility takes its id).
  /// Requires at least two facilities. Rebuilds the facility tree and
  /// re-queries only the clients that were served by the removed facility.
  void RemoveFacility(int32_t id);

  /// The current NN-circles (metric-specific radii), index == client id.
  const std::vector<NnCircle>& circles() const { return circles_; }
  /// Current client locations, index == client id.
  const std::vector<Point>& clients() const { return clients_; }
  /// Current facility locations (RemoveFacility swap-compacts ids).
  const std::vector<Point>& facilities() const { return facilities_; }

  /// Runs the sweep appropriate for the session metric over the current
  /// circles (L1 is swept in the rotated frame, as RunCrestL1).
  void Rebuild(const InfluenceMeasure& measure, RegionLabelSink* sink,
               const CrestOptions& options = {}) const;

  /// As Rebuild with the slab-parallel sweep: shard i labels slab i through
  /// `shard_sinks[i]` (see core/crest_parallel.h for the thread-safety
  /// contract; L1 sessions sweep and label in the rotated frame, L2
  /// sessions run the slab-decomposed arc sweep). Returns the summed
  /// per-shard stats of whichever sweep ran. `options` applies to the
  /// rectilinear sweeps only.
  MetricSweepStats RebuildParallel(
      const InfluenceMeasure& measure,
      std::span<RegionLabelSink* const> shard_sinks,
      const CrestOptions& options = {}) const;

  /// Maintains a retained raster across edits: the first call (or any call
  /// after the domain, size or measure changed) sweeps from scratch; later
  /// calls re-sweep only the pixel-aligned sub-rects covering the dirty
  /// rects the edits since the previous call accumulated, and splice the
  /// recomputed pixels into the retained grid (see heatmap/incremental.h
  /// for why the splice is bit-identical to a from-scratch build). kL1 sessions always
  /// rebuild fully — their sweep runs in the rotated frame. The returned
  /// reference stays valid until the next RasterIncremental or
  /// InvalidateRaster. `measure` is identified by address and must be the
  /// same object across calls for splicing to engage.
  const HeatmapGrid& RasterIncremental(
      const InfluenceMeasure& measure, const Rect& domain, int width,
      int height, IncrementalRebuildStats* stats = nullptr);

  /// Drops the retained raster; the next RasterIncremental rebuilds fully.
  void InvalidateRaster();

  /// Publishes the session's current circles into `registry` and returns
  /// the shared handle. Identical workloads — two sessions at the same
  /// tick, or a session whose edits reverted — deduplicate to the same
  /// handle, so their engine requests share one snapshot and one cache
  /// key. The session releases its previous publication into the same
  /// registry automatically (a ticking session holds at most one
  /// registration there); it never releases into a different registry,
  /// and never on destruction — callers that switch or drop registries
  /// manage those registrations themselves.
  CircleSetHandle PublishCircles(CircleSetRegistry& registry);

  /// Releases the session's current publication (if any) back into its
  /// registry and forgets it. Idempotent and double-release-safe: calling
  /// it twice, or after the registry evicted the entry, is a no-op that
  /// returns false (the registry itself also refuses to underflow a
  /// zero-registration entry). Returns true iff a registration was
  /// actually released. Use before dropping a registry the session
  /// published into; PublishCircles keeps working afterwards.
  bool ReleasePublication();

  /// Turns the edit journal on (or off): while enabled, every mutator
  /// records the CircleSetEdit that reproduces its circle change, in
  /// order, so a tick's edits can travel as a wire v4 delta request
  /// instead of re-shipping the set. Off by default — sessions that never
  /// drain the journal must not accumulate one. Enabling clears any
  /// stale journal.
  void EnableEditJournal(bool on = true);

  /// Drains the journal: returns the edits recorded since the last call
  /// (or since EnableEditJournal) and clears it. Applying them in order
  /// to the previous tick's circle vector reproduces circles() exactly —
  /// same content hash, byte for byte.
  std::vector<CircleSetEdit> TakeCircleEdits();

  /// The undrained journal (empty when disabled).
  const std::vector<CircleSetEdit>& pending_edits() const { return edits_; }

  /// Publishes into `engine.registry()` and executes a v2 request for the
  /// current circles: the serving-path analogue of Rebuild. On a
  /// cache-enabled engine, ticks whose circle set matches one already
  /// served — by this or any other session sharing the engine — come back
  /// `from_cache`, bit-identical to a fresh sweep.
  HeatmapResponse RenderThroughEngine(HeatmapEngine& engine,
                                      const Rect& domain, int width,
                                      int height);

  /// The dirty rects (edited circles' footprint bounding boxes) accumulated
  /// since the last RasterIncremental (exposed for tests and monitoring;
  /// consumed — and cleared — by RasterIncremental).
  const DirtyRegionSet& dirty_regions() const { return dirty_; }

 private:
  void EnsureFacilityTree();
  // `record` controls whether the resulting circle change lands in the
  // edit journal as a kReplace (AddClient journals a kAppend itself —
  // the placeholder it replaces does not exist in the previous tick).
  void RequeryClient(int32_t id, bool record = true);
  void MarkCircleDirty(const NnCircle& circle);
  void RecordEdit(const CircleSetEdit& edit);

  Metric metric_;
  std::vector<Point> clients_;
  std::vector<Point> facilities_;
  std::vector<NnCircle> circles_;
  std::vector<int32_t> client_nn_;  // facility currently nearest per client
  std::unique_ptr<KdTree> facility_tree_;  // rebuilt lazily

  // Incremental raster state: the retained grid, the measure it was built
  // with (compared by address only, never dereferenced), and the dirty
  // rects accumulated since it was last brought up to date.
  DirtyRegionSet dirty_;
  std::unique_ptr<HeatmapGrid> raster_;
  const InfluenceMeasure* raster_measure_ = nullptr;

  // The session's latest publication (see PublishCircles): released into
  // the same registry on the next publish so stale ticks don't accumulate.
  CircleSetHandle published_;
  CircleSetRegistry* published_registry_ = nullptr;

  // The edit journal (see EnableEditJournal/TakeCircleEdits).
  bool journal_enabled_ = false;
  std::vector<CircleSetEdit> edits_;
};

}  // namespace rnnhm

#endif  // RNNHM_QUERY_HEATMAP_SESSION_H_
