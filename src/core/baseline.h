// The baseline algorithm (BA) of Section IV.
//
// Extends the sides of every NN-circle across the whole arrangement,
// forming an irregular grid; each grid cell lies in exactly one region, so
// labeling every cell (via a point-enclosure query on its centroid) solves
// Region Coloring. The number of cells m is O(n^2) and each cell issues an
// enclosure query — the two costs CREST eliminates.
#ifndef RNNHM_CORE_BASELINE_H_
#define RNNHM_CORE_BASELINE_H_

#include <cstdint>
#include <vector>

#include "core/influence_measure.h"
#include "core/label_sink.h"
#include "geom/geometry.h"

namespace rnnhm {

/// Which point-enclosure index the baseline uses.
enum class EnclosureBackend {
  kSegmentTree,   ///< the S-tree stand-in (EnclosureIndex)
  kRTree,         ///< the R-tree (stabbing query)
  kQuadTree,      ///< region quadtree
  kIntervalTree,  ///< centered interval tree on x, y filtered per hit
};

/// Counters reported by a baseline run.
struct BaselineStats {
  size_t num_circles = 0;
  size_t num_skipped_circles = 0;
  size_t num_cells = 0;             ///< m: grid cells = labelings
  size_t num_enclosure_queries = 0;
};

/// Runs the baseline over L-infinity NN-circles (squares). Labels every
/// grid cell through `sink`. Only cells with positive area are labeled
/// (degenerate rows/columns from duplicate coordinates are skipped).
BaselineStats RunBaseline(
    const std::vector<NnCircle>& circles, const InfluenceMeasure& measure,
    RegionLabelSink* sink,
    EnclosureBackend backend = EnclosureBackend::kSegmentTree);

/// L1 variant via the pi/4 rotation (labeled rectangles are in the rotated
/// frame, like RunCrestL1).
BaselineStats RunBaselineL1(
    const std::vector<NnCircle>& l1_circles, const InfluenceMeasure& measure,
    RegionLabelSink* sink,
    EnclosureBackend backend = EnclosureBackend::kSegmentTree);

}  // namespace rnnhm

#endif  // RNNHM_CORE_BASELINE_H_
