#include "core/brute_force.h"

#include <algorithm>

namespace rnnhm {

std::vector<int32_t> BruteForceRnnSet(const Point& q,
                                      const std::vector<NnCircle>& circles,
                                      Metric metric) {
  std::vector<int32_t> out;
  for (const NnCircle& c : circles) {
    if (c.Contains(q, metric)) out.push_back(c.client);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int32_t> BruteForceRnnSet(const Point& q,
                                      const std::vector<Point>& clients,
                                      const std::vector<Point>& facilities,
                                      Metric metric) {
  std::vector<int32_t> out;
  for (size_t i = 0; i < clients.size(); ++i) {
    const double dq = Distance(clients[i], q, metric);
    bool closer_facility = false;
    for (const Point& f : facilities) {
      if (Distance(clients[i], f, metric) < dq) {
        closer_facility = true;
        break;
      }
    }
    if (!closer_facility) out.push_back(static_cast<int32_t>(i));
  }
  return out;
}

}  // namespace rnnhm
