// Dirty x-interval tracking for incremental re-sweeps.
//
// The paper frames heat maps as an interactive exploration tool: a session
// edit (move a client, add a facility, ...) perturbs a handful of
// NN-circles, yet a from-scratch Rebuild re-sweeps everything. Because the
// influence at a point p can only change when p's membership in one of the
// *edited* circles changes, the x-extents of the edited circles' old and
// new footprints bound every pixel column whose value may differ. A
// DirtyIntervalSet accumulates those extents across edits; the incremental
// rasterizer (heatmap/incremental.h) then re-sweeps only the slabs they
// cover and splices the recomputed columns into the retained grid.
#ifndef RNNHM_CORE_DIRTY_INTERVAL_H_
#define RNNHM_CORE_DIRTY_INTERVAL_H_

#include <cstddef>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// Closed interval [lo, hi] of x-coordinates (lo <= hi).
struct DirtyInterval {
  double lo;
  double hi;

  friend bool operator==(const DirtyInterval&,
                         const DirtyInterval&) = default;
};

/// Accumulates closed x-intervals across session edits and exposes them as
/// a merged, sorted, pairwise-disjoint list. Intervals are merged lazily:
/// Add is O(1) amortized, Merged() is O(b log b) for b pending intervals.
class DirtyIntervalSet {
 public:
  /// Marks [lo, hi] dirty. Requires lo <= hi (a degenerate point interval
  /// is allowed: a zero-radius circle still has a footprint boundary).
  void Add(double lo, double hi);

  /// True iff no interval has been added since construction / last Clear.
  bool empty() const { return intervals_.empty(); }

  /// Number of intervals added since the last Clear (before merging).
  size_t num_pending() const { return intervals_.size(); }

  /// The merged view: sorted ascending, pairwise disjoint (touching
  /// intervals coalesce). Idempotent; Add may follow.
  const std::vector<DirtyInterval>& Merged() const;

  /// Forgets all accumulated intervals (after a rebuild consumed them).
  void Clear();

 private:
  // Mutable so Merged() can normalize in place while staying const to
  // callers that only read the merged view.
  mutable std::vector<DirtyInterval> intervals_;
  mutable bool merged_ = true;
};

/// Closed axis-aligned dirty rectangle: the 2D footprint of an edit.
struct DirtyRect {
  DirtyInterval x;
  DirtyInterval y;

  friend bool operator==(const DirtyRect&, const DirtyRect&) = default;
};

/// Accumulates closed dirty rectangles across session edits and exposes
/// them merged: sorted ascending and pairwise disjoint in x, with rects
/// whose x-intervals overlap or touch coalesced into one — x stays the
/// splice's slab axis — and their y-intervals unioned (a conservative
/// bound; see heatmap/incremental.h for why retaining pixels outside the
/// y-union is exact). Add is O(1) amortized, Merged() is O(b log b) for b
/// pending rects, mirroring DirtyIntervalSet.
class DirtyRegionSet {
 public:
  /// Marks [x_lo, x_hi] x [y_lo, y_hi] dirty. Requires lo <= hi on both
  /// axes (degenerate point footprints are allowed).
  void Add(double x_lo, double x_hi, double y_lo, double y_hi);

  /// Marks a circle footprint's bounding box dirty.
  void AddRect(const Rect& bounds);

  /// True iff nothing has been added since construction / last Clear.
  bool empty() const { return rects_.empty(); }

  /// Number of rects added since the last Clear (before merging).
  size_t num_pending() const { return rects_.size(); }

  /// The merged view: x-sorted, pairwise disjoint in x, y-unioned per
  /// x-group. Idempotent; Add may follow.
  const std::vector<DirtyRect>& Merged() const;

  /// Forgets all accumulated rects (after a rebuild consumed them).
  void Clear();

 private:
  // Mutable so Merged() can normalize in place while staying const to
  // callers that only read the merged view.
  mutable std::vector<DirtyRect> rects_;
  mutable bool merged_ = true;
};

}  // namespace rnnhm

#endif  // RNNHM_CORE_DIRTY_INTERVAL_H_
