// Dirty x-interval tracking for incremental re-sweeps.
//
// The paper frames heat maps as an interactive exploration tool: a session
// edit (move a client, add a facility, ...) perturbs a handful of
// NN-circles, yet a from-scratch Rebuild re-sweeps everything. Because the
// influence at a point p can only change when p's membership in one of the
// *edited* circles changes, the x-extents of the edited circles' old and
// new footprints bound every pixel column whose value may differ. A
// DirtyIntervalSet accumulates those extents across edits; the incremental
// rasterizer (heatmap/incremental.h) then re-sweeps only the slabs they
// cover and splices the recomputed columns into the retained grid.
#ifndef RNNHM_CORE_DIRTY_INTERVAL_H_
#define RNNHM_CORE_DIRTY_INTERVAL_H_

#include <cstddef>
#include <vector>

namespace rnnhm {

/// Closed interval [lo, hi] of x-coordinates (lo <= hi).
struct DirtyInterval {
  double lo;
  double hi;

  friend bool operator==(const DirtyInterval&,
                         const DirtyInterval&) = default;
};

/// Accumulates closed x-intervals across session edits and exposes them as
/// a merged, sorted, pairwise-disjoint list. Intervals are merged lazily:
/// Add is O(1) amortized, Merged() is O(b log b) for b pending intervals.
class DirtyIntervalSet {
 public:
  /// Marks [lo, hi] dirty. Requires lo <= hi (a degenerate point interval
  /// is allowed: a zero-radius circle still has a footprint boundary).
  void Add(double lo, double hi);

  /// True iff no interval has been added since construction / last Clear.
  bool empty() const { return intervals_.empty(); }

  /// Number of intervals added since the last Clear (before merging).
  size_t num_pending() const { return intervals_.size(); }

  /// The merged view: sorted ascending, pairwise disjoint (touching
  /// intervals coalesce). Idempotent; Add may follow.
  const std::vector<DirtyInterval>& Merged() const;

  /// Forgets all accumulated intervals (after a rebuild consumed them).
  void Clear();

 private:
  // Mutable so Merged() can normalize in place while staying const to
  // callers that only read the merged view.
  mutable std::vector<DirtyInterval> intervals_;
  mutable bool merged_ = true;
};

}  // namespace rnnhm

#endif  // RNNHM_CORE_DIRTY_INTERVAL_H_
