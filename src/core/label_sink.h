// Output interfaces of the region-coloring algorithms.
//
// Every RC algorithm (CREST, CREST-A, CREST-L2, the baseline) reports its
// work through a RegionLabelSink: one callback per region labeling, carrying
// a representative rectangle, the region's RNN set, and its influence under
// the configured measure. Common sinks (max tracking, counting, collecting)
// are provided here; the heat-map rasterizer in heatmap/ is another sink.
#ifndef RNNHM_CORE_LABEL_SINK_H_
#define RNNHM_CORE_LABEL_SINK_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// Receiver of region labelings.
class RegionLabelSink {
 public:
  virtual ~RegionLabelSink() = default;

  /// One region labeling. `subregion` is a representative axis-aligned box
  /// of the labeled subregion (for the L2 sweep, the bounding box of the
  /// pair over the current strip); `rnn` lists the region's client ids in
  /// unspecified order; `influence` is the measure value for that set.
  virtual void OnRegionLabel(const Rect& subregion,
                             std::span<const int32_t> rnn,
                             double influence) = 0;
};

/// Receiver of exact vertical heat spans, used for rasterization.
/// For each strip between consecutive sweep events, the sweep reports every
/// valid pair once: the strip's x-range, the pair's y-range and the cached
/// influence of the region. Spans tile each strip exactly.
class StripSink {
 public:
  virtual ~StripSink() = default;
  virtual void OnSpan(double x0, double x1, double y0, double y1,
                      double influence) = 0;
};

/// Tracks the maximum influence seen and one witness region.
class MaxInfluenceSink : public RegionLabelSink {
 public:
  void OnRegionLabel(const Rect& subregion, std::span<const int32_t> rnn,
                     double influence) override;

  bool HasResult() const { return has_result_; }
  double max_influence() const { return max_influence_; }
  const Rect& witness() const { return witness_; }
  const std::vector<int32_t>& witness_rnn() const { return witness_rnn_; }

 private:
  bool has_result_ = false;
  double max_influence_ = 0.0;
  Rect witness_ = EmptyRect();
  std::vector<int32_t> witness_rnn_;
};

/// Counts labelings (the paper's k) without storing them.
class CountingSink : public RegionLabelSink {
 public:
  void OnRegionLabel(const Rect&, std::span<const int32_t>,
                     double) override {
    ++count_;
  }
  size_t count() const { return count_; }

 private:
  size_t count_ = 0;
};

/// Collects the distinct RNN sets seen, mapped to their influence.
/// Intended for tests and small inputs: keys are sorted client-id vectors.
class DistinctSetSink : public RegionLabelSink {
 public:
  void OnRegionLabel(const Rect& subregion, std::span<const int32_t> rnn,
                     double influence) override;

  const std::map<std::vector<int32_t>, double>& sets() const {
    return sets_;
  }

 private:
  std::map<std::vector<int32_t>, double> sets_;
};

/// Stores every labeling verbatim (tests / tiny inputs only).
class CollectingSink : public RegionLabelSink {
 public:
  struct Label {
    Rect subregion;
    std::vector<int32_t> rnn;  // sorted for comparability
    double influence;
  };

  void OnRegionLabel(const Rect& subregion, std::span<const int32_t> rnn,
                     double influence) override;

  const std::vector<Label>& labels() const { return labels_; }

 private:
  std::vector<Label> labels_;
};

/// Broadcasts labelings to several sinks.
class TeeSink : public RegionLabelSink {
 public:
  explicit TeeSink(std::vector<RegionLabelSink*> sinks)
      : sinks_(std::move(sinks)) {}

  void OnRegionLabel(const Rect& subregion, std::span<const int32_t> rnn,
                     double influence) override {
    for (RegionLabelSink* s : sinks_) s->OnRegionLabel(subregion, rnn, influence);
  }

 private:
  std::vector<RegionLabelSink*> sinks_;
};

}  // namespace rnnhm

#endif  // RNNHM_CORE_LABEL_SINK_H_
