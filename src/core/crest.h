// CREST: Constructing RNN hEat maps with the Sweep line sTrategy.
//
// Implements Algorithm 1 of the paper for the L-infinity metric (NN-circles
// are axis-aligned squares) and, via the pi/4 rotation of Section VII-B,
// the L1 metric. Two optimizations over the baseline:
//   1. RNN sets are derived incrementally from the line status (Lemma 1 /
//      Corollary 1) — no point-enclosure queries are ever issued.
//   2. Only pairs inside merged *changed intervals* are relabeled (Lemma 2),
//      with *base sets* cached per line element (Section V-C2), bounding the
//      number of labelings k by Theta(r) (Lemma 3).
// Disabling optimization 2 yields the paper's CREST-A comparison algorithm.
#ifndef RNNHM_CORE_CREST_H_
#define RNNHM_CORE_CREST_H_

#include <cstdint>
#include <vector>

#include "core/influence_measure.h"
#include "core/label_sink.h"
#include "geom/geometry.h"

namespace rnnhm {

/// Line-status container choice (ablation of the paper's "balanced search
/// tree with doubly linked leaves" recommendation).
enum class StatusBackend {
  kSkipList,     ///< handle-stable skip list (default)
  kStdMultimap,  ///< std::multimap with stored iterators
};

/// Tuning knobs and optional hooks for a sweep run.
struct CrestOptions {
  /// true  -> full CREST (changed intervals + cached base sets);
  /// false -> CREST-A (every valid pair of every line status is relabeled).
  bool use_changed_intervals = true;
  /// Optional rasterization hook: receives exact heat spans per strip.
  StripSink* strip_sink = nullptr;
  /// Ordered container implementing the line status.
  StatusBackend status_backend = StatusBackend::kSkipList;
};

/// Counters reported by a sweep run.
struct CrestStats {
  size_t num_circles = 0;          ///< non-degenerate NN-circles swept
  size_t num_skipped_circles = 0;  ///< zero-radius circles ignored
  size_t num_events = 0;           ///< distinct event x-coordinates
  size_t num_labelings = 0;        ///< k: region labelings = influence evals
  size_t num_merged_intervals = 0; ///< changed intervals after merging
  size_t num_elements_walked = 0;  ///< line-status elements visited
};

/// An axis-aligned rectangle carrying a client id — the general input of
/// the Region Coloring problem (Definition 2). NN-circles under L-infinity
/// are the square special case; clipped rectangles arise in the parallel
/// slab decomposition.
struct ColoredRect {
  Rect box;
  int32_t client = -1;
};

/// Runs the sweep over arbitrary axis-aligned rectangles: labels every
/// region of their arrangement with the set of rectangles containing it.
/// Degenerate (empty-area) rectangles are skipped and counted.
CrestStats RunRegionColoring(const std::vector<ColoredRect>& rects,
                             const InfluenceMeasure& measure,
                             RegionLabelSink* sink,
                             const CrestOptions& options = {});

/// Runs CREST over L-infinity NN-circles (squares). Every region labeling
/// is reported to `sink` (required). Influence values come from `measure`.
CrestStats RunCrest(const std::vector<NnCircle>& circles,
                    const InfluenceMeasure& measure, RegionLabelSink* sink,
                    const CrestOptions& options = {});

/// Convenience: solves the RNNHM/RC problem for the L1 metric by rotating
/// the input circles into the L-infinity frame (Section VII-B) and running
/// CREST there. Labeled rectangles live in the *rotated* frame; RNN sets
/// and influence values are frame-independent. Input circles must have been
/// built with Metric::kL1.
CrestStats RunCrestL1(const std::vector<NnCircle>& l1_circles,
                      const InfluenceMeasure& measure, RegionLabelSink* sink,
                      const CrestOptions& options = {});

}  // namespace rnnhm

#endif  // RNNHM_CORE_CREST_H_
