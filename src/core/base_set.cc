#include "core/base_set.h"

#include "common/check.h"

namespace rnnhm {

BaseSet::BaseSet(int32_t universe)
    : universe_(universe),
      next_(universe, kNil),
      prev_(universe, kNil),
      in_(universe, 0) {}

void BaseSet::Add(int32_t id) {
  RNNHM_DCHECK(id >= 0 && id < universe_);
  if (in_[id]) {
    RNNHM_DCHECK(false);
    return;
  }
  in_[id] = 1;
  next_[id] = head_;
  prev_[id] = kNil;
  if (head_ != kNil) prev_[head_] = id;
  head_ = id;
  ++size_;
}

void BaseSet::Remove(int32_t id) {
  RNNHM_DCHECK(id >= 0 && id < universe_);
  if (!in_[id]) {
    RNNHM_DCHECK(false);
    return;
  }
  in_[id] = 0;
  const int32_t p = prev_[id];
  const int32_t n = next_[id];
  if (p != kNil) next_[p] = n;
  if (n != kNil) prev_[n] = p;
  if (head_ == id) head_ = n;
  --size_;
}

void BaseSet::Clear() {
  int32_t cur = head_;
  while (cur != kNil) {
    const int32_t n = next_[cur];
    in_[cur] = 0;
    cur = n;
  }
  head_ = kNil;
  size_ = 0;
}

void BaseSet::Assign(std::span<const int32_t> ids) {
  Clear();
  for (const int32_t id : ids) Add(id);
}

void BaseSet::CopyTo(std::vector<int32_t>& out) const {
  out.clear();
  out.reserve(size_);
  int32_t cur = head_;
  while (cur != kNil) {
    out.push_back(cur);
    cur = next_[cur];
  }
}

}  // namespace rnnhm
