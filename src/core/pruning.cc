#include "core/pruning.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/stopwatch.h"
#include "geom/circle_geometry.h"
#include "index/rtree.h"

namespace rnnhm {

namespace {

// Containment masks over an anchor's overlap set, as flat bit vectors.
using Mask = std::vector<uint64_t>;

struct MaskHash {
  size_t operator()(const Mask& m) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const uint64_t w : m) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

inline void SetBit(Mask& m, size_t i) { m[i >> 6] |= uint64_t{1} << (i & 63); }
inline bool GetBit(const Mask& m, size_t i) {
  return (m[i >> 6] >> (i & 63)) & 1;
}

// Candidate witness points near circle i: its center, its four axis
// extremes, and (added by the caller) perturbed pairwise intersection
// points. Perturbation pushes intersection points off the boundaries so
// each candidate lies strictly inside a face of the arrangement.
void AppendCirclePoints(const NnCircle& c, std::vector<Point>& out) {
  out.push_back(c.center);
  out.push_back({c.center.x - c.radius * 0.5, c.center.y});
  out.push_back({c.center.x + c.radius * 0.5, c.center.y});
  out.push_back({c.center.x, c.center.y - c.radius * 0.5});
  out.push_back({c.center.x, c.center.y + c.radius * 0.5});
}

void AppendPerturbed(const Point& p, double eps, std::vector<Point>& out) {
  for (const double dx : {-1.0, 0.0, 1.0}) {
    for (const double dy : {-1.0, 0.0, 1.0}) {
      if (dx == 0.0 && dy == 0.0) continue;
      out.push_back({p.x + dx * eps, p.y + dy * eps});
    }
  }
}

class PruningSolver {
 public:
  PruningSolver(const std::vector<NnCircle>& circles,
                const InfluenceMeasure& measure,
                const PruningOptions& options)
      : circles_(circles), measure_(measure), options_(options) {}

  PruningResult Solve() {
    // The empty region (outside every NN-circle) always exists.
    result_.max_influence = measure_.Evaluate({});
    result_.best_rnn = {};
    ++result_.num_influence_evals;

    std::vector<Rect> boxes;
    boxes.reserve(circles_.size());
    for (const NnCircle& c : circles_) boxes.push_back(c.Bounds());
    rtree_.BulkLoad(boxes);

    for (int32_t anchor = 0; anchor < static_cast<int32_t>(circles_.size());
         ++anchor) {
      if (circles_[anchor].radius <= 0.0) continue;
      SolveAnchor(anchor, boxes[anchor]);
      if (stopped_ || TimedOut()) {
        result_.timed_out = true;
        break;
      }
    }
    std::sort(result_.best_rnn.begin(), result_.best_rnn.end());
    return result_;
  }

 private:
  bool TimedOut() {
    return options_.time_budget_ms > 0.0 &&
           clock_.ElapsedMs() > options_.time_budget_ms;
  }

  // Enumerates every region contained in the anchor circle.
  void SolveAnchor(int32_t anchor, const Rect& anchor_box) {
    const NnCircle& a = circles_[anchor];
    // Filter step: circles whose disks overlap the anchor's disk.
    overlap_.clear();
    rtree_.Query(anchor_box, [&](int32_t j) {
      if (j == anchor || circles_[j].radius <= 0.0) return;
      const NnCircle& c = circles_[j];
      if (DistanceL2(a.center, c.center) < a.radius + c.radius) {
        overlap_.push_back(j);
      }
    });
    std::sort(overlap_.begin(), overlap_.end());

    // Build witness candidates: points strictly inside faces of the local
    // arrangement. eps is tied to the smallest radius involved.
    double min_r = a.radius;
    for (const int32_t j : overlap_) min_r = std::min(min_r, circles_[j].radius);
    const double eps = min_r * 1e-7;
    std::vector<Point> candidates;
    AppendCirclePoints(a, candidates);
    for (const int32_t j : overlap_) AppendCirclePoints(circles_[j], candidates);
    for (size_t u = 0; u < overlap_.size(); ++u) {
      const NnCircle& cu = circles_[overlap_[u]];
      // anchor x overlap member intersections
      const CircleIntersection ia =
          IntersectCircles(a.center, a.radius, cu.center, cu.radius);
      for (int k = 0; k < ia.count; ++k) AppendPerturbed(ia.points[k], eps, candidates);
      // member x member intersections
      for (size_t v = u + 1; v < overlap_.size(); ++v) {
        const NnCircle& cv = circles_[overlap_[v]];
        if (!CirclesProperlyIntersect(cu.center, cu.radius, cv.center,
                                      cv.radius)) {
          continue;
        }
        const CircleIntersection iuv =
            IntersectCircles(cu.center, cu.radius, cv.center, cv.radius);
        for (int k = 0; k < iuv.count; ++k) {
          AppendPerturbed(iuv.points[k], eps, candidates);
        }
      }
    }

    // Keep candidates strictly inside the anchor; record their containment
    // masks over the overlap set. The distinct masks are the realizable
    // regions — the refine oracle for the leaf existence check.
    const size_t words = (overlap_.size() + 63) / 64;
    existing_masks_.clear();
    for (const Point& q : candidates) {
      if (DistanceL2(q, a.center) >= a.radius) continue;
      Mask m(words, 0);
      for (size_t u = 0; u < overlap_.size(); ++u) {
        const NnCircle& c = circles_[overlap_[u]];
        if (DistanceL2(q, c.center) < c.radius) SetBit(m, u);
      }
      existing_masks_.insert(std::move(m));
    }
    if (existing_masks_.empty()) return;

    // Enumerate inside/outside combinations (the filter step of [22]).
    committed_.clear();
    committed_.push_back(a.client);
    committed_circles_.clear();
    committed_circles_.push_back(anchor);
    optional_.clear();
    for (const int32_t j : overlap_) optional_.push_back(circles_[j].client);
    Mask current(words, 0);
    Dfs(0, current);
  }

  // Geometric filter: a region inside every committed circle and circle j
  // requires all those disks to pairwise intersect; skip the include
  // branch otherwise. (Necessary, not sufficient — the refine step still
  // checks true existence at the leaves.)
  bool OverlapsAllCommitted(int32_t j) const {
    const NnCircle& cj = circles_[j];
    for (const int32_t k : committed_circles_) {
      const NnCircle& ck = circles_[k];
      if (DistanceL2(cj.center, ck.center) >= cj.radius + ck.radius) {
        return false;
      }
    }
    return true;
  }

  void Dfs(size_t idx, Mask& current) {
    if (stopped_) return;
    ++result_.num_nodes;
    if ((result_.num_nodes & 0x3ff) == 0 && TimedOut()) {
      stopped_ = true;
      return;
    }
    if (options_.use_bound_pruning) {
      const std::span<const int32_t> remaining(optional_.data() + idx,
                                               optional_.size() - idx);
      ++result_.num_influence_evals;
      if (measure_.UpperBound(committed_, remaining) <=
          result_.max_influence) {
        return;
      }
    }
    if (idx == optional_.size()) {
      ++result_.num_leaves;
      // Refine step: does this inside/outside combination exist?
      if (existing_masks_.count(current) == 0) return;
      ++result_.num_existing_regions;
      ++result_.num_influence_evals;
      const double influence = measure_.Evaluate(committed_);
      if (influence > result_.max_influence) {
        result_.max_influence = influence;
        result_.best_rnn = committed_;
      }
      return;
    }
    // Include circle idx (only if a common intersection is possible).
    if (OverlapsAllCommitted(overlap_[idx])) {
      SetBit(current, idx);
      committed_.push_back(optional_[idx]);
      committed_circles_.push_back(overlap_[idx]);
      Dfs(idx + 1, current);
      committed_circles_.pop_back();
      committed_.pop_back();
      current[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
    }
    // Exclude circle idx.
    Dfs(idx + 1, current);
  }

  const std::vector<NnCircle>& circles_;
  const InfluenceMeasure& measure_;
  PruningOptions options_;
  RTree rtree_;
  Stopwatch clock_;
  PruningResult result_;
  std::vector<int32_t> overlap_;
  std::vector<int32_t> committed_;          // client ids of the region
  std::vector<int32_t> committed_circles_;  // circle indices of the region
  std::vector<int32_t> optional_;
  std::unordered_set<Mask, MaskHash> existing_masks_;
  bool stopped_ = false;
};

}  // namespace

PruningResult RunPruning(const std::vector<NnCircle>& circles,
                         const InfluenceMeasure& measure,
                         const PruningOptions& options) {
  PruningSolver solver(circles, measure, options);
  return solver.Solve();
}

}  // namespace rnnhm
