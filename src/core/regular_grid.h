// The naive regular-grid approach dismissed in Section I.
//
// "A straightforward approach such as employing a grid to divide the space
// and then using the cells to fit the regions has difficulties in finding
// the right granularity and suffers from low efficiency." This module
// implements that straw man so the claim can be measured: a G x G uniform
// grid over the arrangement's bounding box, one enclosure query per cell
// center. Unlike the adaptive baseline of Section IV, cells are *not*
// aligned with region boundaries, so the output is approximate: a cell may
// straddle several regions and report any one of them.
#ifndef RNNHM_CORE_REGULAR_GRID_H_
#define RNNHM_CORE_REGULAR_GRID_H_

#include <cstdint>
#include <vector>

#include "core/influence_measure.h"
#include "core/label_sink.h"
#include "geom/geometry.h"

namespace rnnhm {

/// Counters and accuracy proxies for a regular-grid run.
struct RegularGridStats {
  size_t num_cells = 0;
  size_t num_enclosure_queries = 0;
  /// Number of distinct RNN sets reported. Comparing against the exact
  /// region count exposes granularity loss (straddled regions missed) or
  /// waste (many cells per region).
  size_t num_distinct_sets = 0;
};

/// Labels every cell of a `grid_size` x `grid_size` uniform grid over the
/// bounding box of the (L-infinity) NN-circles with the RNN set of the cell
/// center. Approximate by construction; exposed as a comparison point.
RegularGridStats RunRegularGrid(const std::vector<NnCircle>& circles,
                                const InfluenceMeasure& measure,
                                RegionLabelSink* sink, int grid_size);

}  // namespace rnnhm

#endif  // RNNHM_CORE_REGULAR_GRID_H_
