#include "core/regular_grid.h"

#include <set>

#include "common/check.h"
#include "index/enclosure_index.h"

namespace rnnhm {

RegularGridStats RunRegularGrid(const std::vector<NnCircle>& circles,
                                const InfluenceMeasure& measure,
                                RegionLabelSink* sink, int grid_size) {
  RNNHM_CHECK_MSG(sink != nullptr, "the regular grid requires a label sink");
  RNNHM_CHECK(grid_size > 0);
  RegularGridStats stats;
  Rect box = EmptyRect();
  std::vector<Rect> rects;
  rects.reserve(circles.size());
  for (const NnCircle& c : circles) {
    if (c.radius <= 0.0) continue;
    rects.push_back(c.Bounds());
    box = box.Union(rects.back());
  }
  if (rects.empty()) return stats;

  EnclosureIndex index(rects);
  const double dx = (box.hi.x - box.lo.x) / grid_size;
  const double dy = (box.hi.y - box.lo.y) / grid_size;
  std::vector<int32_t> rnn;
  std::set<std::vector<int32_t>> distinct;
  // Map filtered-rect indices back to client ids.
  std::vector<int32_t> clients;
  clients.reserve(rects.size());
  for (const NnCircle& c : circles) {
    if (c.radius > 0.0) clients.push_back(c.client);
  }
  for (int i = 0; i < grid_size; ++i) {
    for (int j = 0; j < grid_size; ++j) {
      const Point center{box.lo.x + (i + 0.5) * dx, box.lo.y + (j + 0.5) * dy};
      rnn.clear();
      ++stats.num_enclosure_queries;
      index.Stab(center, [&](int32_t id) { rnn.push_back(clients[id]); });
      ++stats.num_cells;
      std::vector<int32_t> key = rnn;
      std::sort(key.begin(), key.end());
      distinct.insert(std::move(key));
      sink->OnRegionLabel(Rect{{box.lo.x + i * dx, box.lo.y + j * dy},
                               {box.lo.x + (i + 1) * dx,
                                box.lo.y + (j + 1) * dy}},
                          rnn, measure.Evaluate(rnn));
    }
  }
  stats.num_distinct_sets = distinct.size();
  return stats;
}

}  // namespace rnnhm
