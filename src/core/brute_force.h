// Brute-force RNN oracle.
//
// Computes the RNN set of arbitrary query points by direct scans. Serves as
// the ground truth every sweep algorithm is validated against, and as the
// reference for per-point heat queries in tests and small demos.
#ifndef RNNHM_CORE_BRUTE_FORCE_H_
#define RNNHM_CORE_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// RNN set of q given precomputed NN-circles: the clients whose NN-circle
/// contains q (closed boundary, matching d(o, q) <= d(o, NN(o))). Sorted by
/// client id. O(n) per query.
std::vector<int32_t> BruteForceRnnSet(const Point& q,
                                      const std::vector<NnCircle>& circles,
                                      Metric metric);

/// RNN set of q computed from the raw point sets (no precomputation):
/// o is in R(q) iff d(o, q) <= d(o, f) for every facility f. Sorted by
/// client id. O(|O| * |F|) per query.
std::vector<int32_t> BruteForceRnnSet(const Point& q,
                                      const std::vector<Point>& clients,
                                      const std::vector<Point>& facilities,
                                      Metric metric);

}  // namespace rnnhm

#endif  // RNNHM_CORE_BRUTE_FORCE_H_
