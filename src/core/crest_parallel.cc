#include "core/crest_parallel.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {

namespace {

// Slab boundaries at event quantiles: every vertical side is an event, so
// splitting their sorted order evenly balances per-shard event counts.
std::vector<double> SlabBoundaries(const std::vector<ColoredRect>& rects,
                                   size_t shards) {
  std::vector<double> xs;
  xs.reserve(rects.size() * 2);
  for (const ColoredRect& r : rects) {
    xs.push_back(r.box.lo.x);
    xs.push_back(r.box.hi.x);
  }
  std::sort(xs.begin(), xs.end());
  std::vector<double> bounds;
  bounds.reserve(shards + 1);
  bounds.push_back(xs.front());
  for (size_t s = 1; s < shards; ++s) {
    bounds.push_back(xs[xs.size() * s / shards]);
  }
  bounds.push_back(xs.back());
  // Collapse duplicate boundaries (heavy ties); empty slabs then no-op.
  return bounds;
}

}  // namespace

CrestStats RunCrestParallel(
    const std::vector<NnCircle>& circles,
    std::span<const InfluenceMeasure* const> shard_measures,
    std::span<RegionLabelSink* const> shard_sinks,
    const CrestOptions& options) {
  RNNHM_CHECK_MSG(!shard_sinks.empty(), "need at least one shard sink");
  RNNHM_CHECK_MSG(shard_measures.size() == shard_sinks.size(),
                  "one measure per shard");
  const size_t shards = shard_sinks.size();

  std::vector<ColoredRect> rects;
  rects.reserve(circles.size());
  size_t skipped = 0;
  for (const NnCircle& c : circles) {
    if (c.radius > 0.0) {
      rects.push_back(ColoredRect{c.Bounds(), c.client});
    } else {
      ++skipped;
    }
  }
  if (rects.empty() || shards == 1) {
    CrestStats stats = RunRegionColoring(rects, *shard_measures[0],
                                         shard_sinks[0], options);
    stats.num_skipped_circles += skipped;
    return stats;
  }

  const std::vector<double> bounds = SlabBoundaries(rects, shards);
  std::vector<CrestStats> shard_stats(shards);
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    workers.emplace_back([&, s] {
      const double lo = bounds[s];
      const double hi = bounds[s + 1];
      if (!(lo < hi)) return;  // duplicate boundary -> empty slab
      std::vector<ColoredRect> clipped;
      for (const ColoredRect& r : rects) {
        const double cl = std::max(r.box.lo.x, lo);
        const double ch = std::min(r.box.hi.x, hi);
        if (cl < ch) {
          clipped.push_back(ColoredRect{
              Rect{{cl, r.box.lo.y}, {ch, r.box.hi.y}}, r.client});
        }
      }
      shard_stats[s] = RunRegionColoring(clipped, *shard_measures[s],
                                         shard_sinks[s], options);
    });
  }
  for (std::thread& t : workers) t.join();

  CrestStats total;
  total.num_circles = rects.size();
  total.num_skipped_circles = skipped;
  for (const CrestStats& s : shard_stats) {
    total.num_events += s.num_events;
    total.num_labelings += s.num_labelings;
    total.num_merged_intervals += s.num_merged_intervals;
    total.num_elements_walked += s.num_elements_walked;
  }
  return total;
}

CrestStats RunCrestParallel(const std::vector<NnCircle>& circles,
                            const InfluenceMeasure& measure,
                            std::span<RegionLabelSink* const> shard_sinks,
                            const CrestOptions& options) {
  std::vector<const InfluenceMeasure*> measures(shard_sinks.size(),
                                                &measure);
  return RunCrestParallel(circles,
                          std::span<const InfluenceMeasure* const>(measures),
                          shard_sinks, options);
}

CrestStats RunCrestParallelStrips(const std::vector<NnCircle>& circles,
                                  const InfluenceMeasure& measure,
                                  int num_slabs,
                                  const CrestOptions& options) {
  RNNHM_CHECK(num_slabs >= 1);
  std::vector<CountingSink> counters(num_slabs);
  std::vector<RegionLabelSink*> sinks;
  sinks.reserve(counters.size());
  for (CountingSink& c : counters) sinks.push_back(&c);
  return RunCrestParallel(circles, measure, sinks, options);
}

CrestStats RunCrestSlab(const std::vector<NnCircle>& circles,
                        const InfluenceMeasure& measure,
                        RegionLabelSink* sink, double clip_lo, double clip_hi,
                        const CrestOptions& options) {
  RNNHM_CHECK_MSG(clip_lo < clip_hi, "slab needs clip_lo < clip_hi");
  // Clip exactly like a RunCrestParallel shard: intersect each bounding
  // square with the slab, keep it only when the overlap has positive width.
  std::vector<ColoredRect> clipped;
  size_t skipped = 0;
  for (const NnCircle& c : circles) {
    if (c.radius <= 0.0) {
      ++skipped;
      continue;
    }
    const Rect box = c.Bounds();
    const double cl = std::max(box.lo.x, clip_lo);
    const double ch = std::min(box.hi.x, clip_hi);
    if (cl < ch) {
      clipped.push_back(
          ColoredRect{Rect{{cl, box.lo.y}, {ch, box.hi.y}}, c.client});
    }
  }
  CrestStats stats = RunRegionColoring(clipped, measure, sink, options);
  stats.num_circles = circles.size() - skipped;
  stats.num_skipped_circles = skipped;
  return stats;
}

MetricSweepStats RunCrestSlabMetric(Metric metric,
                                    const std::vector<NnCircle>& circles,
                                    const InfluenceMeasure& measure,
                                    RegionLabelSink* sink, double clip_lo,
                                    double clip_hi,
                                    const CrestOptions& crest_options,
                                    const CrestL2Options& l2_options) {
  MetricSweepStats stats;
  switch (metric) {
    case Metric::kLInf:
      stats.crest = RunCrestSlab(circles, measure, sink, clip_lo, clip_hi,
                                 crest_options);
      break;
    case Metric::kL1:
      RNNHM_CHECK_MSG(false,
                      "kL1 sweeps the rotated frame; slab sweeps of the "
                      "original frame are not defined for it");
      break;
    case Metric::kL2: {
      CrestL2Options slab = l2_options;
      slab.clip_lo = clip_lo;
      slab.clip_hi = clip_hi;
      // Event groups must match the unclipped sweep (same contract as the
      // parallel shards).
      if (slab.event_group_span < 0.0) {
        slab.event_group_span = DiskEventGroupSpan(circles);
      }
      stats.l2 = RunCrestL2(circles, measure, sink, slab);
      break;
    }
  }
  return stats;
}

MetricSweepStats RunCrestParallelMetric(
    Metric metric, const std::vector<NnCircle>& circles,
    const InfluenceMeasure& measure,
    std::span<RegionLabelSink* const> shard_sinks,
    const CrestOptions& crest_options, const CrestL2Options& l2_options) {
  MetricSweepStats stats;
  switch (metric) {
    case Metric::kLInf:
      stats.crest =
          RunCrestParallel(circles, measure, shard_sinks, crest_options);
      break;
    case Metric::kL1:
      stats.crest = RunCrestParallel(RotateCirclesToLInf(circles), measure,
                                     shard_sinks, crest_options);
      break;
    case Metric::kL2:
      stats.l2 =
          RunCrestL2Parallel(circles, measure, shard_sinks, l2_options);
      break;
  }
  return stats;
}

}  // namespace rnnhm
