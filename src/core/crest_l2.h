// CREST under the L2 metric (Section VII-C).
//
// NN-circles are disks; the arrangement has curved edges. The sweep keeps
// the same machinery as the square case with these changes:
//   * line elements are the lower/upper semicircle arcs of the disks cut by
//     the line (a lower arc adds its client to the base set, an upper arc
//     removes it — exactly like lower/upper square sides);
//   * event points are the x-extremes of every disk, disk centers (keeping
//     arcs y-monotone per strip), and all pairwise boundary intersection
//     points (arcs switch positions there).
// Because arcs cannot cross strictly inside a strip (crossings are events),
// the status order is maintained positionally: insertions locate their slot
// by evaluating arc ordinates at the strip midpoint, intersections swap the
// two incident arcs. Changed intervals are positional index ranges; base
// sets are cached per arc under the same 2i / 2i+1 keying as the square
// sweep.
#ifndef RNNHM_CORE_CREST_L2_H_
#define RNNHM_CORE_CREST_L2_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/influence_measure.h"
#include "core/label_sink.h"
#include "geom/geometry.h"

namespace rnnhm {

/// Counters reported by an L2 sweep run.
struct CrestL2Stats {
  size_t num_circles = 0;
  size_t num_skipped_circles = 0;   ///< zero-radius circles ignored
  size_t num_events = 0;            ///< total events processed
  size_t num_cross_events = 0;      ///< intersection events
  size_t num_labelings = 0;         ///< k: labelings = influence evals
};

/// Receiver of the curved analogue of StripSink spans: the region between
/// two vertically adjacent arcs over one sweep strip. Consumers evaluate
/// the arc ordinates themselves (ArcYAt) wherever they need them — e.g. a
/// rasterizer samples both arcs at each pixel-column center, which is what
/// makes the painted grid independent of how strips were subdivided.
/// Strips of one sweep tile its x-range; regions of one strip tile the
/// y-range between the lowest and highest live arc.
class ArcStripSink {
 public:
  /// One bounding arc: the lower or upper semicircle of a disk.
  struct ArcGeom {
    Point center;
    double radius = 0.0;
    bool is_upper = false;
  };

  virtual ~ArcStripSink() = default;

  /// The region between `lower` and `upper` over x in [x0, x1) carries
  /// `influence`. At every x in the strip, lower's ordinate is <= upper's.
  virtual void OnArcStrip(double x0, double x1, const ArcGeom& lower,
                          const ArcGeom& upper, double influence) = 0;
};

/// Tuning knobs and hooks for an L2 sweep run.
struct CrestL2Options {
  /// Optional rasterization hook; receives every adjacent-arc region of
  /// every strip (curved analogue of CrestOptions::strip_sink).
  ArcStripSink* arc_sink = nullptr;
  /// Sweep only the vertical slab [clip_lo, clip_hi): disks are clipped to
  /// the slab (arcs entering it behave like a sweep starting mid-way), and
  /// events outside it are dropped. Defaults sweep the whole plane. Used by
  /// RunCrestL2Parallel; labels of a clipped run are correct region labels
  /// whose representative boxes are clipped to the slab.
  double clip_lo = -std::numeric_limits<double>::infinity();
  double clip_hi = std::numeric_limits<double>::infinity();
  /// Override for the coordinate span that scales the simultaneous-event
  /// grouping epsilon. Negative derives it from the swept disks; the
  /// parallel driver passes the whole input's span so every shard groups
  /// events exactly like the sequential sweep.
  double event_group_span = -1.0;
};

/// Runs the L2 CREST sweep over disks built with Metric::kL2. Labeled
/// "rectangles" are per-strip bounding boxes of the curved subregions.
/// Requires the input to be in general position (no two identical disks);
/// exact duplicates are deduplicated defensively by keeping one disk per
/// (center, radius) — the duplicate clients still appear in RNN sets.
/// `stats.num_circles` / `num_skipped_circles` always count the full input,
/// even when `options` clips the sweep to a slab.
CrestL2Stats RunCrestL2(const std::vector<NnCircle>& circles,
                        const InfluenceMeasure& measure,
                        RegionLabelSink* sink,
                        const CrestL2Options& options = {});

/// Slab-parallel L2 sweep: decomposes the x-axis into one vertical slab per
/// sink in `shard_sinks`, cut at crossing-event-density quantiles
/// (SlabBoundariesL2), and sweeps the slabs on independent threads. Disks are clipped
/// to each slab they overlap — x-extremes, centers and pairwise boundary
/// intersections inside a slab stay events there, so per-slab labels are
/// correct region labels; a region spanning a boundary is labeled once per
/// slab it touches (same RNN set). `options.arc_sink`, when set, receives
/// strips from all shards concurrently; shard strips never overlap in x
/// (half-open slabs), so RasterArcSink painting a shared grid is safe and
/// the raster is bit-identical to a sequential sweep's for measures whose
/// value does not depend on RNN-set iteration order.
/// `options.clip_lo`/`clip_hi` must be left at their defaults — the driver
/// owns the slab decomposition. Returns the per-shard sums; num_circles and
/// num_skipped_circles are global counts matching the sequential sweep.
CrestL2Stats RunCrestL2Parallel(const std::vector<NnCircle>& circles,
                                const InfluenceMeasure& measure,
                                std::span<RegionLabelSink* const> shard_sinks,
                                const CrestL2Options& options = {});

/// As above with one measure instance per shard (for measures with
/// per-instance scratch, e.g. CapacityInfluence). `shard_measures` must
/// have the same length as `shard_sinks`.
CrestL2Stats RunCrestL2Parallel(
    const std::vector<NnCircle>& circles,
    std::span<const InfluenceMeasure* const> shard_measures,
    std::span<RegionLabelSink* const> shard_sinks,
    const CrestL2Options& options = {});

/// Convenience for callers that only consume `options.arc_sink` output
/// (parallel rasterization): sweeps with `num_slabs` shards, discarding the
/// region labels through private counting sinks. Returns the summed stats.
CrestL2Stats RunCrestL2ParallelStrips(const std::vector<NnCircle>& circles,
                                      const InfluenceMeasure& measure,
                                      int num_slabs,
                                      const CrestL2Options& options = {});

/// Slab cuts for the parallel L2 sweep: `shards` + 1 ascending boundaries
/// (outer two infinite) at weighted quantiles of the estimated *event
/// density*. Per-disk events (x-extremes, centers) weigh 1 each; pairwise
/// crossing events — the sweep's dominant cost on intersection-heavy
/// inputs — are estimated from a deterministic stride sample of at most
/// `crossing_sample_cap` disks (R-tree probed exactly like the event
/// builder), each observation weighted by the inverse sampling rate. A hot
/// intersection cluster thus splits across slabs instead of serializing
/// one, where plain x-extreme quantiles would underweight it. Boundaries
/// affect load balance only, never output: the raster sinks' center
/// sampling keeps grids bit-identical for every decomposition. No RNG —
/// identical inputs always cut identically.
std::vector<double> SlabBoundariesL2(const std::vector<NnCircle>& circles,
                                     size_t shards,
                                     size_t crossing_sample_cap = 256);

/// The coordinate span that scales the sweep's simultaneous-event grouping
/// epsilon, derived from the full disk set exactly as the sequential sweep
/// derives it. Any clipped sweep over a subset of the plane (a parallel
/// shard, an incremental dirty slab) must pass this via
/// `CrestL2Options::event_group_span` so its event groups match the
/// sequential sweep's bit for bit.
double DiskEventGroupSpan(const std::vector<NnCircle>& circles);

}  // namespace rnnhm

#endif  // RNNHM_CORE_CREST_L2_H_
