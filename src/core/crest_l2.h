// CREST under the L2 metric (Section VII-C).
//
// NN-circles are disks; the arrangement has curved edges. The sweep keeps
// the same machinery as the square case with these changes:
//   * line elements are the lower/upper semicircle arcs of the disks cut by
//     the line (a lower arc adds its client to the base set, an upper arc
//     removes it — exactly like lower/upper square sides);
//   * event points are the x-extremes of every disk, disk centers (keeping
//     arcs y-monotone per strip), and all pairwise boundary intersection
//     points (arcs switch positions there).
// Because arcs cannot cross strictly inside a strip (crossings are events),
// the status order is maintained positionally: insertions locate their slot
// by evaluating arc ordinates at the strip midpoint, intersections swap the
// two incident arcs. Changed intervals are positional index ranges; base
// sets are cached per arc under the same 2i / 2i+1 keying as the square
// sweep.
#ifndef RNNHM_CORE_CREST_L2_H_
#define RNNHM_CORE_CREST_L2_H_

#include <cstdint>
#include <vector>

#include "core/influence_measure.h"
#include "core/label_sink.h"
#include "geom/geometry.h"

namespace rnnhm {

/// Counters reported by an L2 sweep run.
struct CrestL2Stats {
  size_t num_circles = 0;
  size_t num_skipped_circles = 0;   ///< zero-radius circles ignored
  size_t num_events = 0;            ///< total events processed
  size_t num_cross_events = 0;      ///< intersection events
  size_t num_labelings = 0;         ///< k: labelings = influence evals
};

/// Runs the L2 CREST sweep over disks built with Metric::kL2. Labeled
/// "rectangles" are per-strip bounding boxes of the curved subregions.
/// Requires the input to be in general position (no two identical disks);
/// exact duplicates are deduplicated defensively by keeping one disk per
/// (center, radius) — the duplicate clients still appear in RNN sets.
CrestL2Stats RunCrestL2(const std::vector<NnCircle>& circles,
                        const InfluenceMeasure& measure,
                        RegionLabelSink* sink);

}  // namespace rnnhm

#endif  // RNNHM_CORE_CREST_L2_H_
