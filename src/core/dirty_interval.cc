#include "core/dirty_interval.h"

#include <algorithm>

#include "common/check.h"

namespace rnnhm {

void DirtyIntervalSet::Add(double lo, double hi) {
  RNNHM_CHECK_MSG(lo <= hi, "dirty interval needs lo <= hi");
  // Absorb into the last interval when possible so long runs of edits in
  // one neighborhood stay O(1) per edit without a merge pass.
  if (!intervals_.empty()) {
    DirtyInterval& last = intervals_.back();
    if (lo >= last.lo && lo <= last.hi) {
      last.hi = std::max(last.hi, hi);
      return;
    }
  }
  intervals_.push_back(DirtyInterval{lo, hi});
  merged_ = false;
}

const std::vector<DirtyInterval>& DirtyIntervalSet::Merged() const {
  if (merged_ || intervals_.size() <= 1) {
    merged_ = true;
    return intervals_;
  }
  std::sort(intervals_.begin(), intervals_.end(),
            [](const DirtyInterval& a, const DirtyInterval& b) {
              return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
            });
  size_t out = 0;
  for (size_t i = 1; i < intervals_.size(); ++i) {
    if (intervals_[i].lo <= intervals_[out].hi) {
      intervals_[out].hi = std::max(intervals_[out].hi, intervals_[i].hi);
    } else {
      intervals_[++out] = intervals_[i];
    }
  }
  intervals_.resize(out + 1);
  merged_ = true;
  return intervals_;
}

void DirtyIntervalSet::Clear() {
  intervals_.clear();
  merged_ = true;
}

}  // namespace rnnhm
