#include "core/dirty_interval.h"

#include <algorithm>

#include "common/check.h"

namespace rnnhm {

void DirtyIntervalSet::Add(double lo, double hi) {
  RNNHM_CHECK_MSG(lo <= hi, "dirty interval needs lo <= hi");
  // Absorb into the last interval when possible so long runs of edits in
  // one neighborhood stay O(1) per edit without a merge pass.
  if (!intervals_.empty()) {
    DirtyInterval& last = intervals_.back();
    if (lo >= last.lo && lo <= last.hi) {
      last.hi = std::max(last.hi, hi);
      return;
    }
  }
  intervals_.push_back(DirtyInterval{lo, hi});
  merged_ = false;
}

const std::vector<DirtyInterval>& DirtyIntervalSet::Merged() const {
  if (merged_ || intervals_.size() <= 1) {
    merged_ = true;
    return intervals_;
  }
  std::sort(intervals_.begin(), intervals_.end(),
            [](const DirtyInterval& a, const DirtyInterval& b) {
              return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
            });
  size_t out = 0;
  for (size_t i = 1; i < intervals_.size(); ++i) {
    if (intervals_[i].lo <= intervals_[out].hi) {
      intervals_[out].hi = std::max(intervals_[out].hi, intervals_[i].hi);
    } else {
      intervals_[++out] = intervals_[i];
    }
  }
  intervals_.resize(out + 1);
  merged_ = true;
  return intervals_;
}

void DirtyIntervalSet::Clear() {
  intervals_.clear();
  merged_ = true;
}

void DirtyRegionSet::Add(double x_lo, double x_hi, double y_lo, double y_hi) {
  RNNHM_CHECK_MSG(x_lo <= x_hi && y_lo <= y_hi,
                  "dirty rect needs lo <= hi on both axes");
  // Absorb into the last rect when the x-ranges overlap, so long runs of
  // edits in one neighborhood stay O(1) per edit without a merge pass.
  if (!rects_.empty()) {
    DirtyRect& last = rects_.back();
    if (x_lo >= last.x.lo && x_lo <= last.x.hi) {
      last.x.hi = std::max(last.x.hi, x_hi);
      last.y.lo = std::min(last.y.lo, y_lo);
      last.y.hi = std::max(last.y.hi, y_hi);
      return;
    }
  }
  rects_.push_back(DirtyRect{{x_lo, x_hi}, {y_lo, y_hi}});
  merged_ = false;
}

void DirtyRegionSet::AddRect(const Rect& bounds) {
  Add(bounds.lo.x, bounds.hi.x, bounds.lo.y, bounds.hi.y);
}

const std::vector<DirtyRect>& DirtyRegionSet::Merged() const {
  if (merged_ || rects_.size() <= 1) {
    merged_ = true;
    return rects_;
  }
  std::sort(rects_.begin(), rects_.end(),
            [](const DirtyRect& a, const DirtyRect& b) {
              return a.x.lo < b.x.lo ||
                     (a.x.lo == b.x.lo && a.x.hi < b.x.hi);
            });
  size_t out = 0;
  for (size_t i = 1; i < rects_.size(); ++i) {
    if (rects_[i].x.lo <= rects_[out].x.hi) {
      rects_[out].x.hi = std::max(rects_[out].x.hi, rects_[i].x.hi);
      rects_[out].y.lo = std::min(rects_[out].y.lo, rects_[i].y.lo);
      rects_[out].y.hi = std::max(rects_[out].y.hi, rects_[i].y.hi);
    } else {
      rects_[++out] = rects_[i];
    }
  }
  rects_.resize(out + 1);
  merged_ = true;
  return rects_;
}

void DirtyRegionSet::Clear() {
  rects_.clear();
  merged_ = true;
}

}  // namespace rnnhm
