#include "core/crest.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "core/base_set.h"
#include "core/changed_interval.h"
#include "index/skiplist.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {

namespace {

// A horizontal side of an NN-circle stored in the line status.
struct SideElement {
  int32_t circle;   // index into the (filtered) circle array
  bool is_lower;    // lower side adds the client, upper side removes it
};

// A vertical side of an NN-circle in the event queue.
struct EventSide {
  double x;
  int32_t circle;
  bool is_left;
};

// ---------------------------------------------------------------------------
// Line-status adapters. Both expose the same interface: ordered multiset of
// (y, SideElement) with stable handles, O(log n) bound searches, and
// bidirectional neighbor access. End() is the null/sentinel handle.
// ---------------------------------------------------------------------------

class SkipListStatus {
 public:
  using List = SkipList<double, SideElement>;
  using Handle = List::Node*;

  Handle End() const { return nullptr; }
  Handle Insert(double key, const SideElement& v) {
    return list_.Insert(key, v);
  }
  void Erase(Handle h) { list_.Erase(h); }
  Handle First() const { return list_.First(); }
  Handle LowerBound(double k) const { return list_.LowerBound(k); }
  Handle UpperBound(double k) const { return list_.UpperBound(k); }
  Handle Next(Handle h) const { return List::Next(h); }
  Handle Prev(Handle h) const { return list_.Prev(h); }
  static double Key(Handle h) { return h->key; }
  static const SideElement& Value(Handle h) { return h->value; }

 private:
  List list_;
};

class MultimapStatus {
 public:
  using Map = std::multimap<double, SideElement>;
  using Handle = Map::iterator;

  Handle End() { return map_.end(); }
  Handle Insert(double key, const SideElement& v) {
    return map_.emplace(key, v);
  }
  void Erase(Handle h) { map_.erase(h); }
  Handle First() { return map_.begin() == map_.end() ? End() : map_.begin(); }
  Handle LowerBound(double k) { return map_.lower_bound(k); }
  Handle UpperBound(double k) { return map_.upper_bound(k); }
  Handle Next(Handle h) { return std::next(h); }
  Handle Prev(Handle h) { return h == map_.begin() ? End() : std::prev(h); }
  static double Key(Handle h) { return h->first; }
  static const SideElement& Value(Handle h) { return h->second; }

 private:
  Map map_;
};

// The sweep state (Algorithm 1). One instance per RunCrest call.
template <typename Status>
class Sweep {
 public:
  using Handle = typename Status::Handle;

  Sweep(const std::vector<ColoredRect>& rects,
        const InfluenceMeasure& measure, RegionLabelSink* sink,
        const CrestOptions& options)
      : measure_(measure), sink_(sink), options_(options) {
    RNNHM_CHECK_MSG(sink != nullptr, "CREST requires a label sink");
    // Filter out degenerate (empty-area) rectangles: they enclose no area
    // and cannot change any region's RNN set.
    rects_.reserve(rects.size());
    for (const ColoredRect& r : rects) {
      if (r.box.lo.x < r.box.hi.x && r.box.lo.y < r.box.hi.y) {
        rects_.push_back(r);
      } else {
        ++stats_.num_skipped_circles;
      }
    }
    stats_.num_circles = rects_.size();
    const size_t n = rects_.size();
    handles_lower_.assign(n, Handle{});
    handles_upper_.assign(n, Handle{});
    records_.assign(2 * n, {});
    has_record_.assign(2 * n, 0);
    values_.assign(2 * n, 0.0);
    universe_ = 0;
    for (const ColoredRect& r : rects_) {
      universe_ = std::max(universe_, r.client + 1);
    }
  }

  CrestStats Run() {
    BuildEventQueue();
    BaseSet base(universe_);
    std::vector<ChangedInterval> intervals;
    size_t i = 0;
    double prev_x = 0.0;
    bool have_prev = false;
    while (i < sides_.size()) {
      const double x = sides_[i].x;
      ++stats_.num_events;
      // Emit the finished strip [prev_x, x] before mutating the status.
      if (options_.strip_sink != nullptr && have_prev && prev_x < x) {
        EmitStrip(prev_x, x);
      }
      // Apply every side with this x-coordinate (one event, Section V-A).
      intervals.clear();
      for (; i < sides_.size() && sides_[i].x == x; ++i) {
        const EventSide& s = sides_[i];
        const Rect& b = rects_[s.circle].box;
        if (s.is_left) {
          handles_lower_[s.circle] =
              status_.Insert(b.lo.y, SideElement{s.circle, true});
          handles_upper_[s.circle] =
              status_.Insert(b.hi.y, SideElement{s.circle, false});
        } else {
          status_.Erase(handles_lower_[s.circle]);
          status_.Erase(handles_upper_[s.circle]);
          // Drop the cached records of the removed sides (line 12).
          has_record_[2 * s.circle] = 0;
          has_record_[2 * s.circle + 1] = 0;
          records_[2 * s.circle].clear();
          records_[2 * s.circle + 1].clear();
        }
        intervals.push_back(ChangedInterval{b.lo.y, b.hi.y});
      }
      const double next_x = i < sides_.size() ? sides_[i].x : x;
      if (options_.use_changed_intervals) {
        MergeChangedIntervals(intervals);
        stats_.num_merged_intervals += intervals.size();
        for (const ChangedInterval& iv : intervals) {
          ProcessInterval(iv.lo, iv.hi, x, next_x, base);
        }
      } else {
        ProcessWholeStatus(x, next_x, base);
      }
      prev_x = x;
      have_prev = true;
    }
    return stats_;
  }

 private:
  static int32_t KeyOf(const SideElement& e) {
    return 2 * e.circle + (e.is_lower ? 0 : 1);
  }

  void BuildEventQueue() {
    sides_.reserve(rects_.size() * 2);
    for (int32_t i = 0; i < static_cast<int32_t>(rects_.size()); ++i) {
      const Rect& b = rects_[i].box;
      sides_.push_back(EventSide{b.lo.x, i, true});
      sides_.push_back(EventSide{b.hi.x, i, false});
    }
    std::sort(sides_.begin(), sides_.end(),
              [](const EventSide& a, const EventSide& b) {
                if (a.x != b.x) return a.x < b.x;
                // Within one event the order of side applications does not
                // matter; fix it for determinism.
                if (a.is_left != b.is_left) return a.is_left < b.is_left;
                return a.circle < b.circle;
              });
  }

  // Labels the valid pairs inside the changed interval [lo, hi] following
  // Section V-C: start from the cached base set of the element immediately
  // preceding the interval and walk every element whose value lies in
  // [lo, hi], editing the base set and refreshing records on the way.
  void ProcessInterval(double lo, double hi, double x, double next_x,
                       BaseSet& base) {
    Handle st = status_.LowerBound(lo);
    Handle end = status_.UpperBound(hi);
    if (st == end) return;  // no element inside the interval
    Handle prev = status_.Prev(st);
    if (prev == status_.End()) {
      base.Clear();
    } else {
      const int32_t key = KeyOf(Status::Value(prev));
      RNNHM_DCHECK(has_record_[key]);
      base.Assign(records_[key]);
      // The pair (prev, st) may have just become valid with a different
      // second element (e.g. prev was the topmost element and an insertion
      // above revived it); its set is unchanged — prev's record — but the
      // per-pair value cache keyed by prev can be stale from an older
      // pair. Refresh it for the rasterizer without counting a labeling.
      if (options_.strip_sink != nullptr &&
          Status::Key(prev) < Status::Key(st)) {
        values_[key] = measure_.Evaluate(records_[key]);
      }
    }
    Walk(st, end, x, next_x, base, /*maintain_records=*/true);
  }

  // CREST-A: relabel every valid pair of the current line status.
  void ProcessWholeStatus(double x, double next_x, BaseSet& base) {
    base.Clear();
    Walk(status_.First(), status_.End(), x, next_x, base,
         /*maintain_records=*/false);
  }

  // Walks elements [st, end) applying Corollary 1: a lower side adds its
  // client to the base set, an upper side removes it; each valid pair
  // (strictly increasing y) is labeled with the current set.
  void Walk(Handle st, Handle end, double x, double next_x, BaseSet& base,
            bool maintain_records) {
    Handle last = status_.End();
    for (Handle node = st; node != end; node = status_.Next(node)) {
      ++stats_.num_elements_walked;
      const SideElement& e = Status::Value(node);
      if (e.is_lower) {
        base.Add(rects_[e.circle].client);
      } else {
        base.Remove(rects_[e.circle].client);
      }
      const int32_t key = KeyOf(e);
      Handle nxt = status_.Next(node);
      const bool valid_pair = nxt != status_.End() && nxt != end &&
                              Status::Key(node) < Status::Key(nxt);
      if (valid_pair) {
        base.CopyTo(scratch_);
        const double influence = measure_.Evaluate(scratch_);
        ++stats_.num_labelings;
        values_[key] = influence;
        sink_->OnRegionLabel(
            Rect{{x, Status::Key(node)}, {next_x, Status::Key(nxt)}},
            scratch_, influence);
      }
      if (maintain_records) {
        // "For elements of the same value, the record is always maintained
        // only at the last one" (Section V-C2): a non-last element of an
        // equal-value cluster can only become a base-set anchor after the
        // equal element above it is removed — and that removal's changed
        // interval rewalks it. Skipping the O(lambda) copy here turns the
        // degenerate nested-squares cost from cubic to quadratic.
        const bool last_among_equals =
            nxt == status_.End() || Status::Key(node) != Status::Key(nxt);
        if (last_among_equals) {
          base.CopyTo(records_[key]);
          has_record_[key] = 1;
        }
      }
      last = node;
    }
    // Interval-boundary pair (last, end): its region is unchanged, so it is
    // deliberately not relabeled (Lemma 2). When rasterizing, though, the
    // per-pair value cache is keyed by the pair's *first* element, which may
    // have just changed identity — refresh it without counting a labeling.
    if (options_.strip_sink != nullptr && maintain_records &&
        last != status_.End() && end != status_.End() &&
        Status::Key(last) < Status::Key(end)) {
      base.CopyTo(scratch_);
      values_[KeyOf(Status::Value(last))] = measure_.Evaluate(scratch_);
    }
  }

  // Reports every valid pair of the current status as a heat span for the
  // strip [x0, x1]. Influence values are read from the per-pair cache; any
  // currently valid pair was labeled when its set last changed, so the
  // cache is fresh (see DESIGN.md).
  void EmitStrip(double x0, double x1) {
    for (Handle node = status_.First(); node != status_.End();
         node = status_.Next(node)) {
      Handle nxt = status_.Next(node);
      if (nxt == status_.End()) break;
      if (Status::Key(node) < Status::Key(nxt)) {
        options_.strip_sink->OnSpan(x0, x1, Status::Key(node),
                                    Status::Key(nxt),
                                    values_[KeyOf(Status::Value(node))]);
      }
    }
  }

  const InfluenceMeasure& measure_;
  RegionLabelSink* sink_;
  CrestOptions options_;
  std::vector<ColoredRect> rects_;
  std::vector<EventSide> sides_;
  Status status_;
  std::vector<Handle> handles_lower_;
  std::vector<Handle> handles_upper_;
  std::vector<std::vector<int32_t>> records_;  // cached RNN set per element
  std::vector<uint8_t> has_record_;
  std::vector<double> values_;  // cached influence per valid pair
  std::vector<int32_t> scratch_;
  int32_t universe_ = 0;
  CrestStats stats_;
};

}  // namespace

CrestStats RunRegionColoring(const std::vector<ColoredRect>& rects,
                             const InfluenceMeasure& measure,
                             RegionLabelSink* sink,
                             const CrestOptions& options) {
  if (options.status_backend == StatusBackend::kStdMultimap) {
    Sweep<MultimapStatus> sweep(rects, measure, sink, options);
    return sweep.Run();
  }
  Sweep<SkipListStatus> sweep(rects, measure, sink, options);
  return sweep.Run();
}

CrestStats RunCrest(const std::vector<NnCircle>& circles,
                    const InfluenceMeasure& measure, RegionLabelSink* sink,
                    const CrestOptions& options) {
  std::vector<ColoredRect> rects;
  rects.reserve(circles.size());
  size_t skipped = 0;
  for (const NnCircle& c : circles) {
    if (c.radius > 0.0) {
      rects.push_back(ColoredRect{c.Bounds(), c.client});
    } else {
      ++skipped;  // zero-radius circles are points, not regions
    }
  }
  CrestStats stats = RunRegionColoring(rects, measure, sink, options);
  stats.num_skipped_circles += skipped;
  return stats;
}

CrestStats RunCrestL1(const std::vector<NnCircle>& l1_circles,
                      const InfluenceMeasure& measure, RegionLabelSink* sink,
                      const CrestOptions& options) {
  return RunCrest(RotateCirclesToLInf(l1_circles), measure, sink, options);
}

}  // namespace rnnhm
