// The "Pruning" comparison algorithm (Section VII-C).
//
// Reimplementation of the filter-and-refine location-selection algorithm of
// Sun et al. [22], adapted (as the paper does) to the maximum-influence
// task under L2: for each anchor NN-circle C(o), enumerate all candidate
// regions inside C(o) as inside/outside combinations over the circles
// overlapping C(o), prune branches whose optimistic influence bound cannot
// beat the best region found so far, and at each leaf check whether the
// enumerated region actually exists in the arrangement. Existence is
// decided against a precomputed candidate-point set (circle extremes,
// centers, and perturbed pairwise intersection points) — the refine step.
// The enumeration is exponential in the overlap degree, which is exactly
// the behaviour Figs. 18-19 contrast against CREST-L2.
#ifndef RNNHM_CORE_PRUNING_H_
#define RNNHM_CORE_PRUNING_H_

#include <cstdint>
#include <vector>

#include "core/influence_measure.h"
#include "geom/geometry.h"

namespace rnnhm {

/// Options for a Pruning run.
struct PruningOptions {
  /// Wall-clock budget in milliseconds; 0 means unlimited. When exceeded,
  /// the run stops early and reports timed_out (the paper similarly
  /// early-terminated algorithms that ran for more than 24 hours).
  double time_budget_ms = 0.0;
  /// Disables the influence-bound pruning (the paper notes that without
  /// its pruning techniques the algorithm degrades to exhaustive
  /// enumeration); used by the ablation benchmark.
  bool use_bound_pruning = true;
};

/// Result of a Pruning run.
struct PruningResult {
  double max_influence = 0.0;           ///< best influence found
  std::vector<int32_t> best_rnn;        ///< RNN set of the best region
  bool timed_out = false;               ///< budget exhausted before finishing
  size_t num_nodes = 0;                 ///< DFS nodes expanded
  size_t num_leaves = 0;                ///< candidate regions enumerated
  size_t num_existing_regions = 0;      ///< leaves that passed refinement
  size_t num_influence_evals = 0;
};

/// Finds the maximum-influence region of the L2 arrangement of `circles`
/// under `measure`.
PruningResult RunPruning(const std::vector<NnCircle>& circles,
                         const InfluenceMeasure& measure,
                         const PruningOptions& options = {});

}  // namespace rnnhm

#endif  // RNNHM_CORE_PRUNING_H_
