// Influence measure interface (Definition 1).
//
// An influence measure is any real-valued function of an RNN set. CREST is
// generic over the measure: it hands each labeled region's RNN set to the
// measure exactly once per labeling. Concrete measures (size, weighted sum,
// capacity-constrained, connectivity) live in heatmap/influence.h.
#ifndef RNNHM_CORE_INFLUENCE_MEASURE_H_
#define RNNHM_CORE_INFLUENCE_MEASURE_H_

#include <cstdint>
#include <span>

namespace rnnhm {

/// Real-valued function over RNN sets (client-id sets, unordered).
class InfluenceMeasure {
 public:
  virtual ~InfluenceMeasure() = default;

  /// Influence of a region whose RNN set is exactly `clients`.
  /// `clients` carries distinct client ids in unspecified order.
  virtual double Evaluate(std::span<const int32_t> clients) const = 0;

  /// Optimistic bound used by branch-and-bound comparators (the Pruning
  /// algorithm): an upper bound on Evaluate(S) over every S with
  /// committed ⊆ S ⊆ committed ∪ optional. The default evaluates the full
  /// union, which is a valid bound for monotone measures (size, weights,
  /// connectivity); non-monotone measures must override.
  virtual double UpperBound(std::span<const int32_t> committed,
                            std::span<const int32_t> optional) const;
};

}  // namespace rnnhm

#endif  // RNNHM_CORE_INFLUENCE_MEASURE_H_
