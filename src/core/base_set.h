// The base set of Section V-D.
//
// CREST derives the RNN set of each valid pair by incrementally editing the
// set of the previous pair. The paper prescribes "a linked list [of data
// points] and ... an additional random access data structure indexed by the
// data points" so that insertion and deletion are O(1) and copying is
// O(lambda). BaseSet is exactly that: an intrusive doubly linked list over
// a preallocated node table indexed by client id.
#ifndef RNNHM_CORE_BASE_SET_H_
#define RNNHM_CORE_BASE_SET_H_

#include <cstdint>
#include <span>
#include <vector>

namespace rnnhm {

/// Set of client ids in [0, universe) with O(1) add/remove/contains,
/// O(size) iteration, clearing, and copying.
class BaseSet {
 public:
  /// Creates an empty set over ids 0..universe-1.
  explicit BaseSet(int32_t universe);

  /// Number of elements.
  int32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True iff id is in the set.
  bool Contains(int32_t id) const { return in_[id]; }

  /// Inserts id. No-op (with DCHECK) if already present.
  void Add(int32_t id);

  /// Removes id. No-op (with DCHECK) if absent.
  void Remove(int32_t id);

  /// Empties the set in O(size).
  void Clear();

  /// Replaces contents with `ids` in O(old size + |ids|).
  void Assign(std::span<const int32_t> ids);

  /// Appends the elements to `out` (cleared first); O(size). The order is
  /// the list order (insertion order), not sorted.
  void CopyTo(std::vector<int32_t>& out) const;

 private:
  static constexpr int32_t kNil = -1;

  int32_t universe_;
  int32_t head_ = kNil;
  int32_t size_ = 0;
  std::vector<int32_t> next_;
  std::vector<int32_t> prev_;
  std::vector<uint8_t> in_;
};

}  // namespace rnnhm

#endif  // RNNHM_CORE_BASE_SET_H_
