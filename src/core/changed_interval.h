// Changed intervals (Section V-C1).
//
// When the sweep line crosses an event, every NN-circle inserted into or
// removed from the line contributes a changed interval [y_c, y-bar_c];
// intersecting intervals are merged so each resulting interval can be
// processed independently, in ascending order.
#ifndef RNNHM_CORE_CHANGED_INTERVAL_H_
#define RNNHM_CORE_CHANGED_INTERVAL_H_

#include <vector>

namespace rnnhm {

/// Closed interval [lo, hi] of y-coordinates (lo <= hi).
struct ChangedInterval {
  double lo;
  double hi;

  friend bool operator==(const ChangedInterval&,
                         const ChangedInterval&) = default;
};

/// Merges intersecting (or touching) intervals in place. Result is sorted
/// ascending and pairwise disjoint. O(b log b) for b intervals.
void MergeChangedIntervals(std::vector<ChangedInterval>& intervals);

}  // namespace rnnhm

#endif  // RNNHM_CORE_CHANGED_INTERVAL_H_
