#include "core/label_sink.h"

#include <algorithm>

#include "core/influence_measure.h"

namespace rnnhm {

double InfluenceMeasure::UpperBound(std::span<const int32_t> committed,
                                    std::span<const int32_t> optional) const {
  std::vector<int32_t> all(committed.begin(), committed.end());
  all.insert(all.end(), optional.begin(), optional.end());
  return Evaluate(all);
}

void MaxInfluenceSink::OnRegionLabel(const Rect& subregion,
                                     std::span<const int32_t> rnn,
                                     double influence) {
  if (!has_result_ || influence > max_influence_) {
    has_result_ = true;
    max_influence_ = influence;
    witness_ = subregion;
    witness_rnn_.assign(rnn.begin(), rnn.end());
    std::sort(witness_rnn_.begin(), witness_rnn_.end());
  }
}

void DistinctSetSink::OnRegionLabel(const Rect&,
                                    std::span<const int32_t> rnn,
                                    double influence) {
  std::vector<int32_t> key(rnn.begin(), rnn.end());
  std::sort(key.begin(), key.end());
  sets_[std::move(key)] = influence;
}

void CollectingSink::OnRegionLabel(const Rect& subregion,
                                   std::span<const int32_t> rnn,
                                   double influence) {
  Label l;
  l.subregion = subregion;
  l.rnn.assign(rnn.begin(), rnn.end());
  std::sort(l.rnn.begin(), l.rnn.end());
  l.influence = influence;
  labels_.push_back(std::move(l));
}

}  // namespace rnnhm
