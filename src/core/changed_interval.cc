#include "core/changed_interval.h"

#include <algorithm>

namespace rnnhm {

void MergeChangedIntervals(std::vector<ChangedInterval>& intervals) {
  if (intervals.size() <= 1) return;
  std::sort(intervals.begin(), intervals.end(),
            [](const ChangedInterval& a, const ChangedInterval& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  size_t out = 0;
  for (size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].lo <= intervals[out].hi) {
      intervals[out].hi = std::max(intervals[out].hi, intervals[i].hi);
    } else {
      intervals[++out] = intervals[i];
    }
  }
  intervals.resize(out + 1);
}

}  // namespace rnnhm
