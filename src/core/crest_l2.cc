#include "core/crest_l2.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"
#include "core/base_set.h"
#include "geom/circle_geometry.h"
#include "index/rtree.h"

namespace rnnhm {

namespace {

// One swept disk. Exact duplicates of (center, radius) are merged so the
// arrangement stays in general position; all merged clients share the disk.
struct SweepDisk {
  Point center;
  double radius;
  std::vector<int32_t> clients;
};

enum class EventType : uint8_t {
  kRemove = 0,  // applied before insertions at the same x
  kInsert = 1,
  kCenter = 2,  // monotonicity breakpoint; forces a re-sort checkpoint
  kCross = 3,   // order change; forces a re-sort checkpoint
};

struct Event {
  double x;
  EventType type;
  int32_t disk = -1;
  int32_t disk2 = -1;  // second disk for crossing events
};

// An arc in the line status: lower or upper semicircle of a disk.
struct Arc {
  int32_t disk;
  bool is_upper;
};

// Arcs are ordered per strip by the paper's (y_s, y_l, y_m) keys —
// smallest / largest / midpoint ordinate of the arc over the strip — with
// the midpoint promoted to the primary key. Arcs never cross strictly
// inside a strip (crossings and centers are events), so the midpoint
// ordinate ranks them bottom-to-top; crucially it is also *numerically*
// robust: at a crossing event the endpoint ordinates of the two arcs are
// equal up to rounding noise (which would let noise decide the order),
// while the midpoint ordinates have separated by half a strip.
struct ArcKey {
  double ym, ys, yl;

  friend bool operator<(const ArcKey& a, const ArcKey& b) {
    if (a.ym != b.ym) return a.ym < b.ym;
    if (a.ys != b.ys) return a.ys < b.ys;
    return a.yl < b.yl;
  }
};

class SweepL2 {
 public:
  SweepL2(const std::vector<NnCircle>& circles,
          const InfluenceMeasure& measure, RegionLabelSink* sink)
      : measure_(measure), sink_(sink) {
    RNNHM_CHECK_MSG(sink != nullptr, "CREST-L2 requires a label sink");
    std::map<std::pair<std::pair<double, double>, double>, int32_t> dedup;
    for (const NnCircle& c : circles) {
      if (c.radius <= 0.0) {
        ++stats_.num_skipped_circles;
        continue;
      }
      const auto key =
          std::make_pair(std::make_pair(c.center.x, c.center.y), c.radius);
      const auto [it, inserted] =
          dedup.emplace(key, static_cast<int32_t>(disks_.size()));
      if (inserted) {
        disks_.push_back(SweepDisk{c.center, c.radius, {c.client}});
      } else {
        disks_[it->second].clients.push_back(c.client);
      }
      universe_ = std::max(universe_, c.client + 1);
    }
    stats_.num_circles = disks_.size();
    const size_t n = disks_.size();
    records_.assign(2 * n, {});
    has_record_.assign(2 * n, 0);
    live_index_.assign(n, -1);
    succ_of_.assign(2 * n, kNoArc);
    involved_.assign(2 * n, 0);
  }

  CrestL2Stats Run() {
    BuildEvents();
    // Event x-coordinates within a relative epsilon of each other are
    // processed as one simultaneous group. Real workloads concentrate many
    // pairwise crossings at a geometrically common point (the shared
    // facility every NN-circle passes through); their computed x's spread
    // over a few ulps, and processing them one-by-one would order arcs
    // inside strips far narrower than the rounding noise.
    double span = 0.0;
    for (const SweepDisk& d : disks_) {
      span = std::max(span, std::fabs(d.center.x) + d.radius);
    }
    const double x_eps = span * 1e-12;
    BaseSet base(universe_);
    size_t i = 0;
    while (i < events_.size()) {
      const double x = events_[i].x;
      ++stats_.num_events;
      // Apply every structural change in this x-group. Crossings and
      // centers carry no structural change; crossings force the re-sort
      // checkpoint below (order can only change where arcs cross).
      bool needs_checkpoint = false;
      for (const int32_t key : involved_keys_) involved_[key] = 0;
      involved_keys_.clear();
      auto mark_involved = [this](int32_t disk) {
        for (const int32_t key : {2 * disk, 2 * disk + 1}) {
          if (!involved_[key]) {
            involved_[key] = 1;
            involved_keys_.push_back(key);
          }
        }
      };
      for (; i < events_.size() && events_[i].x <= x + x_eps; ++i) {
        const Event& ev = events_[i];
        switch (ev.type) {
          case EventType::kInsert:
            live_index_[ev.disk] = static_cast<int32_t>(live_disks_.size());
            live_disks_.push_back(ev.disk);
            mark_involved(ev.disk);
            needs_checkpoint = true;
            break;
          case EventType::kRemove: {
            // Swap-remove from the live list.
            const int32_t at = live_index_[ev.disk];
            const int32_t last = live_disks_.back();
            live_disks_[at] = last;
            live_index_[last] = at;
            live_disks_.pop_back();
            live_index_[ev.disk] = -1;
            has_record_[2 * ev.disk] = 0;
            has_record_[2 * ev.disk + 1] = 0;
            records_[2 * ev.disk].clear();
            records_[2 * ev.disk + 1].clear();
            needs_checkpoint = true;
            break;
          }
          case EventType::kCross:
            ++stats_.num_cross_events;
            // Mark all four arcs: a crossing can move arcs across a region
            // without breaking its bounding adjacency (all circles of
            // clients sharing a facility cross at that facility's point),
            // so every pair adjacent to a crossing arc must be relabeled
            // even if the adjacency itself is preserved.
            mark_involved(ev.disk);
            mark_involved(ev.disk2);
            needs_checkpoint = true;
            break;
          case EventType::kCenter:
            // Arcs change monotonicity but never order; keys are
            // recomputed per checkpoint anyway, so nothing to do.
            break;
        }
      }
      if (needs_checkpoint) {
        const double next_x = i < events_.size() ? events_[i].x : x;
        Checkpoint(x, next_x, base);
      }
    }
    return stats_;
  }

 private:
  static constexpr int32_t kNoArc = -1;

  static int32_t KeyOf(const Arc& a) {
    return 2 * a.disk + (a.is_upper ? 1 : 0);
  }

  double ArcY(const Arc& a, double x) const {
    const SweepDisk& d = disks_[a.disk];
    return ArcYAt(d.center, d.radius, a.is_upper, x);
  }

  void BuildEvents() {
    for (int32_t i = 0; i < static_cast<int32_t>(disks_.size()); ++i) {
      const SweepDisk& d = disks_[i];
      events_.push_back(Event{d.center.x - d.radius, EventType::kInsert, i});
      events_.push_back(Event{d.center.x, EventType::kCenter, i});
      events_.push_back(Event{d.center.x + d.radius, EventType::kRemove, i});
    }
    // Pairwise boundary intersections via an R-tree over disk boxes.
    std::vector<Rect> boxes;
    boxes.reserve(disks_.size());
    for (const SweepDisk& d : disks_) {
      boxes.push_back(NnCircle{d.center, d.radius, 0}.Bounds());
    }
    RTree rtree;
    rtree.BulkLoad(boxes);
    for (int32_t i = 0; i < static_cast<int32_t>(disks_.size()); ++i) {
      rtree.Query(boxes[i], [&](int32_t j) {
        if (j <= i) return;
        const SweepDisk& di = disks_[i];
        const SweepDisk& dj = disks_[j];
        if (!CirclesProperlyIntersect(di.center, di.radius, dj.center,
                                      dj.radius)) {
          return;
        }
        const CircleIntersection isect =
            IntersectCircles(di.center, di.radius, dj.center, dj.radius);
        for (int k = 0; k < isect.count; ++k) {
          events_.push_back(
              Event{isect.points[k].x, EventType::kCross, i, j});
        }
      });
    }
    std::sort(events_.begin(), events_.end(),
              [](const Event& a, const Event& b) {
                if (a.x != b.x) return a.x < b.x;
                if (a.type != b.type) return a.type < b.type;
                return a.disk < b.disk;
              });
  }

  // Rebuilds the status order for the strip [x, next_x], then labels every
  // *new adjacency* — a pair of arcs that was not adjacent (in this order)
  // before this event. A preserved adjacency bounds an unchanged region:
  // no arc can enter or leave the region between two arcs without breaking
  // one of its bounding adjacencies. So preserved pairs keep their cached
  // RNN sets — this is the changed-interval optimization in order-diff
  // form, robust to arbitrarily degenerate inputs.
  void Checkpoint(double x, double next_x, BaseSet& base) {
    sorted_.clear();
    for (const int32_t d : live_disks_) {
      sorted_.push_back(Arc{d, false});
      sorted_.push_back(Arc{d, true});
    }
    keys_.resize(sorted_.size());
    const double xm = (x + next_x) / 2.0;
    for (size_t t = 0; t < sorted_.size(); ++t) {
      const double y0 = ArcY(sorted_[t], x);
      const double y1 = ArcY(sorted_[t], next_x);
      keys_[t] =
          ArcKey{ArcY(sorted_[t], xm), std::min(y0, y1), std::max(y0, y1)};
    }
    order_.resize(sorted_.size());
    for (size_t t = 0; t < order_.size(); ++t) order_[t] = t;
    std::sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
      if (keys_[a] < keys_[b]) return true;
      if (keys_[b] < keys_[a]) return false;
      return KeyOf(sorted_[a]) < KeyOf(sorted_[b]);  // deterministic ties
    });
    scratch_arcs_.clear();
    scratch_arcs_.reserve(order_.size());
    for (const size_t t : order_) scratch_arcs_.push_back(sorted_[t]);
    sorted_.swap(scratch_arcs_);

#ifdef RNNHM_L2_TRACE
    std::fprintf(stderr, "ckpt x=%.9f next=%.9f order:", x, next_x);
    for (const Arc& a : sorted_) {
      std::fprintf(stderr, " %d%c", a.disk, a.is_upper ? 'U' : 'L');
    }
    std::fprintf(stderr, "\n");
#endif

    // Label runs of dirty pairs: adjacencies that are new, plus pairs
    // adjacent to an arc involved in this group's crossings/insertions
    // (whose region may have changed contents even with the adjacency
    // preserved).
    const int m = static_cast<int>(sorted_.size());
    int run_start = -1;
    for (int t = 0; t < m; ++t) {
      const bool dirty_pair =
          t + 1 < m &&
          (succ_of_[KeyOf(sorted_[t])] != KeyOf(sorted_[t + 1]) ||
           involved_[KeyOf(sorted_[t])] || involved_[KeyOf(sorted_[t + 1])]);
      if (dirty_pair) {
        if (run_start < 0) run_start = t;
      } else if (run_start >= 0) {
        // Pairs run_start .. t-1 are dirty; walk elements run_start .. t.
        ProcessRange(run_start, t, x, next_x, base);
        run_start = -1;
      }
    }
    RNNHM_DCHECK(run_start < 0);  // the last pair check always closes runs

    // Persist the adjacency map for the next checkpoint.
    for (int t = 0; t < m; ++t) {
      succ_of_[KeyOf(sorted_[t])] =
          t + 1 < m ? KeyOf(sorted_[t + 1]) : kNoArc;
    }
  }

  // Walks elements [a, b] of sorted_, re-deriving RNN sets from the cached
  // base set of element a-1 (Corollary 1 on arcs: a lower arc adds its
  // disk's clients, an upper arc removes them), labeling pairs a..b-1 and
  // refreshing records for a..b.
  void ProcessRange(int a, int b, double x, double next_x, BaseSet& base) {
    if (a == 0) {
      base.Clear();
    } else {
      const int32_t key = KeyOf(sorted_[a - 1]);
      RNNHM_DCHECK(has_record_[key]);
      base.Assign(records_[key]);
    }
    const double xm = (x + next_x) / 2.0;
    for (int t = a; t <= b; ++t) {
      const Arc& arc = sorted_[t];
      const SweepDisk& d = disks_[arc.disk];
      if (arc.is_upper) {
        for (const int32_t c : d.clients) base.Remove(c);
      } else {
        for (const int32_t c : d.clients) base.Add(c);
      }
      if (t < b) {
        base.CopyTo(scratch_);
        const double influence = measure_.Evaluate(scratch_);
        ++stats_.num_labelings;
        const double y0 = ArcY(sorted_[t], xm);
        const double y1 = ArcY(sorted_[t + 1], xm);
        sink_->OnRegionLabel(
            Rect{{x, std::min(y0, y1)}, {next_x, std::max(y0, y1)}},
            scratch_, influence);
      }
      const int32_t key = KeyOf(arc);
      base.CopyTo(records_[key]);
      has_record_[key] = 1;
    }
  }

  const InfluenceMeasure& measure_;
  RegionLabelSink* sink_;
  std::vector<SweepDisk> disks_;
  std::vector<Event> events_;
  std::vector<Arc> sorted_;        // status order over the current strip
  std::vector<Arc> scratch_arcs_;  // sorting scratch
  std::vector<ArcKey> keys_;       // scratch
  std::vector<size_t> order_;      // scratch
  std::vector<int32_t> live_disks_;  // disks currently cut by the line
  std::vector<int32_t> live_index_;  // disk -> index in live_disks_, or -1
  std::vector<int32_t> succ_of_;     // old successor arc key per arc key
  std::vector<uint8_t> involved_;    // arc key touched by this event group
  std::vector<int32_t> involved_keys_;
  std::vector<std::vector<int32_t>> records_;
  std::vector<uint8_t> has_record_;
  std::vector<int32_t> scratch_;
  int32_t universe_ = 0;
  CrestL2Stats stats_;
};

}  // namespace

CrestL2Stats RunCrestL2(const std::vector<NnCircle>& circles,
                        const InfluenceMeasure& measure,
                        RegionLabelSink* sink) {
  SweepL2 sweep(circles, measure, sink);
  return sweep.Run();
}

}  // namespace rnnhm
