#include "core/crest_l2.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <thread>
#include <utility>

#include "common/check.h"
#include "core/base_set.h"
#include "geom/circle_geometry.h"
#include "index/rtree.h"

namespace rnnhm {

namespace {

// One swept disk. Exact duplicates of (center, radius) are merged so the
// arrangement stays in general position; all merged clients share the disk.
struct SweepDisk {
  Point center;
  double radius;
  std::vector<int32_t> clients;
};

enum class EventType : uint8_t {
  kRemove = 0,  // applied before insertions at the same x
  kInsert = 1,
  kCenter = 2,  // monotonicity breakpoint; splits the strip, no re-sort
  kCross = 3,   // order change; forces a re-sort checkpoint
};

struct Event {
  double x;
  EventType type;
  int32_t disk = -1;
  int32_t disk2 = -1;  // second disk for crossing events
};

// An arc in the line status: lower or upper semicircle of a disk.
struct Arc {
  int32_t disk;
  bool is_upper;
};

// Arcs are ordered per strip by the paper's (y_s, y_l, y_m) keys —
// smallest / largest / midpoint ordinate of the arc over the strip — with
// the midpoint promoted to the primary key. Arcs never cross strictly
// inside a strip (crossings and centers are events), so the midpoint
// ordinate ranks them bottom-to-top; crucially it is also *numerically*
// robust: at a crossing event the endpoint ordinates of the two arcs are
// equal up to rounding noise (which would let noise decide the order),
// while the midpoint ordinates have separated by half a strip.
struct ArcKey {
  double ym, ys, yl;

  friend bool operator<(const ArcKey& a, const ArcKey& b) {
    if (a.ym != b.ym) return a.ym < b.ym;
    if (a.ys != b.ys) return a.ys < b.ys;
    return a.yl < b.yl;
  }
};

class SweepL2 {
 public:
  SweepL2(const std::vector<NnCircle>& circles,
          const InfluenceMeasure& measure, RegionLabelSink* sink,
          const CrestL2Options& options)
      : measure_(measure), sink_(sink), options_(options) {
    RNNHM_CHECK_MSG(sink != nullptr, "CREST-L2 requires a label sink");
    RNNHM_CHECK_MSG(options.clip_lo < options.clip_hi,
                    "CREST-L2 clip range must be non-empty");
    std::map<std::pair<std::pair<double, double>, double>, int32_t> dedup;
    for (const NnCircle& c : circles) {
      if (c.radius <= 0.0) {
        ++stats_.num_skipped_circles;
        continue;
      }
      const auto key =
          std::make_pair(std::make_pair(c.center.x, c.center.y), c.radius);
      const auto [it, inserted] =
          dedup.emplace(key, static_cast<int32_t>(disks_.size()));
      if (inserted) {
        disks_.push_back(SweepDisk{c.center, c.radius, {c.client}});
      } else {
        disks_[it->second].clients.push_back(c.client);
      }
      universe_ = std::max(universe_, c.client + 1);
    }
    stats_.num_circles = disks_.size();
    const size_t n = disks_.size();
    records_.assign(2 * n, {});
    has_record_.assign(2 * n, 0);
    live_index_.assign(n, -1);
    succ_of_.assign(2 * n, kNoArc);
    involved_.assign(2 * n, 0);
    region_influence_.assign(2 * n, 0.0);
  }

  CrestL2Stats Run() {
    BuildEvents();
    // Event x-coordinates within a relative epsilon of each other are
    // processed as one simultaneous group. Real workloads concentrate many
    // pairwise crossings at a geometrically common point (the shared
    // facility every NN-circle passes through); their computed x's spread
    // over a few ulps, and processing them one-by-one would order arcs
    // inside strips far narrower than the rounding noise.
    double span = options_.event_group_span;
    if (span < 0.0) {
      span = 0.0;
      for (const SweepDisk& d : disks_) {
        span = std::max(span, std::fabs(d.center.x) + d.radius);
      }
    }
    const double x_eps = span * 1e-12;
    BaseSet base(universe_);
    size_t i = 0;
    while (i < events_.size()) {
      const double x = events_[i].x;
      ++stats_.num_events;
      // Apply every structural change in this x-group. Crossings and
      // centers carry no structural change; crossings force the re-sort
      // checkpoint below (order can only change where arcs cross).
      bool needs_checkpoint = false;
      for (const int32_t key : involved_keys_) involved_[key] = 0;
      involved_keys_.clear();
      auto mark_involved = [this](int32_t disk) {
        for (const int32_t key : {2 * disk, 2 * disk + 1}) {
          if (!involved_[key]) {
            involved_[key] = 1;
            involved_keys_.push_back(key);
          }
        }
      };
      for (; i < events_.size() && events_[i].x <= x + x_eps; ++i) {
        const Event& ev = events_[i];
        switch (ev.type) {
          case EventType::kInsert:
            live_index_[ev.disk] = static_cast<int32_t>(live_disks_.size());
            live_disks_.push_back(ev.disk);
            mark_involved(ev.disk);
            needs_checkpoint = true;
            break;
          case EventType::kRemove: {
            // Swap-remove from the live list.
            const int32_t at = live_index_[ev.disk];
            const int32_t last = live_disks_.back();
            live_disks_[at] = last;
            live_index_[last] = at;
            live_disks_.pop_back();
            live_index_[ev.disk] = -1;
            has_record_[2 * ev.disk] = 0;
            has_record_[2 * ev.disk + 1] = 0;
            records_[2 * ev.disk].clear();
            records_[2 * ev.disk + 1].clear();
            needs_checkpoint = true;
            break;
          }
          case EventType::kCross:
            ++stats_.num_cross_events;
            // Mark all four arcs: a crossing can move arcs across a region
            // without breaking its bounding adjacency (all circles of
            // clients sharing a facility cross at that facility's point),
            // so every pair adjacent to a crossing arc must be relabeled
            // even if the adjacency itself is preserved.
            mark_involved(ev.disk);
            mark_involved(ev.disk2);
            needs_checkpoint = true;
            break;
          case EventType::kCenter:
            // Arcs change monotonicity but never order; keys are
            // recomputed per checkpoint anyway, so nothing to do.
            break;
        }
      }
      const double next_x = i < events_.size() ? events_[i].x : x;
      if (needs_checkpoint) {
        Checkpoint(x, next_x, base);
      }
      // Rasterize the strip up to the next event. Checkpoints skip groups
      // with no structural change (center events preserve order and region
      // contents), but every strip must still be painted; the cached
      // per-pair influence makes that free of influence evaluations.
      if (options_.arc_sink != nullptr && x < next_x) {
        EmitStrip(x, next_x);
      }
    }
    return stats_;
  }

 private:
  static constexpr int32_t kNoArc = -1;

  static int32_t KeyOf(const Arc& a) {
    return 2 * a.disk + (a.is_upper ? 1 : 0);
  }

  double ArcY(const Arc& a, double x) const {
    const SweepDisk& d = disks_[a.disk];
    return ArcYAt(d.center, d.radius, a.is_upper, x);
  }

  void BuildEvents() {
    // Disks are clipped to [clip_lo, clip_hi): an arc entering the slab
    // inserts at the boundary exactly like a sweep starting mid-way, so the
    // first checkpoint rebuilds the full line status there. Crossings at
    // the low boundary are redundant (every arc live there is freshly
    // inserted and involved), so only events strictly inside matter.
    const double lo = options_.clip_lo;
    const double hi = options_.clip_hi;
    for (int32_t i = 0; i < static_cast<int32_t>(disks_.size()); ++i) {
      const SweepDisk& d = disks_[i];
      const double in_x = std::max(d.center.x - d.radius, lo);
      const double out_x = std::min(d.center.x + d.radius, hi);
      if (!(in_x < out_x)) continue;  // disk outside the slab
      events_.push_back(Event{in_x, EventType::kInsert, i});
      if (d.center.x > in_x && d.center.x < out_x) {
        events_.push_back(Event{d.center.x, EventType::kCenter, i});
      }
      events_.push_back(Event{out_x, EventType::kRemove, i});
    }
    // Pairwise boundary intersections via an R-tree over disk boxes,
    // queried with the slab-clipped box so off-slab pairs are pruned.
    std::vector<Rect> boxes;
    boxes.reserve(disks_.size());
    for (const SweepDisk& d : disks_) {
      boxes.push_back(NnCircle{d.center, d.radius, 0}.Bounds());
    }
    RTree rtree;
    rtree.BulkLoad(boxes);
    for (int32_t i = 0; i < static_cast<int32_t>(disks_.size()); ++i) {
      Rect query = boxes[i];
      query.lo.x = std::max(query.lo.x, lo);
      query.hi.x = std::min(query.hi.x, hi);
      if (!(query.lo.x < query.hi.x)) continue;
      rtree.Query(query, [&](int32_t j) {
        if (j <= i) return;
        const SweepDisk& di = disks_[i];
        const SweepDisk& dj = disks_[j];
        if (!CirclesProperlyIntersect(di.center, di.radius, dj.center,
                                      dj.radius)) {
          return;
        }
        const CircleIntersection isect =
            IntersectCircles(di.center, di.radius, dj.center, dj.radius);
        for (int k = 0; k < isect.count; ++k) {
          if (isect.points[k].x > lo && isect.points[k].x < hi) {
            events_.push_back(
                Event{isect.points[k].x, EventType::kCross, i, j});
          }
        }
      });
    }
    std::sort(events_.begin(), events_.end(),
              [](const Event& a, const Event& b) {
                if (a.x != b.x) return a.x < b.x;
                if (a.type != b.type) return a.type < b.type;
                return a.disk < b.disk;
              });
  }

  // Rebuilds the status order for the strip [x, next_x], then labels every
  // *new adjacency* — a pair of arcs that was not adjacent (in this order)
  // before this event. A preserved adjacency bounds an unchanged region:
  // no arc can enter or leave the region between two arcs without breaking
  // one of its bounding adjacencies. So preserved pairs keep their cached
  // RNN sets — this is the changed-interval optimization in order-diff
  // form, robust to arbitrarily degenerate inputs.
  void Checkpoint(double x, double next_x, BaseSet& base) {
    sorted_.clear();
    for (const int32_t d : live_disks_) {
      sorted_.push_back(Arc{d, false});
      sorted_.push_back(Arc{d, true});
    }
    keys_.resize(sorted_.size());
    const double xm = (x + next_x) / 2.0;
    for (size_t t = 0; t < sorted_.size(); ++t) {
      const double y0 = ArcY(sorted_[t], x);
      const double y1 = ArcY(sorted_[t], next_x);
      keys_[t] =
          ArcKey{ArcY(sorted_[t], xm), std::min(y0, y1), std::max(y0, y1)};
    }
    order_.resize(sorted_.size());
    for (size_t t = 0; t < order_.size(); ++t) order_[t] = t;
    std::sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
      if (keys_[a] < keys_[b]) return true;
      if (keys_[b] < keys_[a]) return false;
      return KeyOf(sorted_[a]) < KeyOf(sorted_[b]);  // deterministic ties
    });
    scratch_arcs_.clear();
    scratch_arcs_.reserve(order_.size());
    for (const size_t t : order_) scratch_arcs_.push_back(sorted_[t]);
    sorted_.swap(scratch_arcs_);

#ifdef RNNHM_L2_TRACE
    std::fprintf(stderr, "ckpt x=%.9f next=%.9f order:", x, next_x);
    for (const Arc& a : sorted_) {
      std::fprintf(stderr, " %d%c", a.disk, a.is_upper ? 'U' : 'L');
    }
    std::fprintf(stderr, "\n");
#endif

    // Label runs of dirty pairs: adjacencies that are new, plus pairs
    // adjacent to an arc involved in this group's crossings/insertions
    // (whose region may have changed contents even with the adjacency
    // preserved).
    const int m = static_cast<int>(sorted_.size());
    int run_start = -1;
    for (int t = 0; t < m; ++t) {
      const bool dirty_pair =
          t + 1 < m &&
          (succ_of_[KeyOf(sorted_[t])] != KeyOf(sorted_[t + 1]) ||
           involved_[KeyOf(sorted_[t])] || involved_[KeyOf(sorted_[t + 1])]);
      if (dirty_pair) {
        if (run_start < 0) run_start = t;
      } else if (run_start >= 0) {
        // Pairs run_start .. t-1 are dirty; walk elements run_start .. t.
        ProcessRange(run_start, t, x, next_x, base);
        run_start = -1;
      }
    }
    RNNHM_DCHECK(run_start < 0);  // the last pair check always closes runs

    // Persist the adjacency map for the next checkpoint.
    for (int t = 0; t < m; ++t) {
      succ_of_[KeyOf(sorted_[t])] =
          t + 1 < m ? KeyOf(sorted_[t + 1]) : kNoArc;
    }
  }

  // Walks elements [a, b] of sorted_, re-deriving RNN sets from the cached
  // base set of element a-1 (Corollary 1 on arcs: a lower arc adds its
  // disk's clients, an upper arc removes them), labeling pairs a..b-1 and
  // refreshing records for a..b.
  void ProcessRange(int a, int b, double x, double next_x, BaseSet& base) {
    if (a == 0) {
      base.Clear();
    } else {
      const int32_t key = KeyOf(sorted_[a - 1]);
      RNNHM_DCHECK(has_record_[key]);
      base.Assign(records_[key]);
    }
    const double xm = (x + next_x) / 2.0;
    for (int t = a; t <= b; ++t) {
      const Arc& arc = sorted_[t];
      const SweepDisk& d = disks_[arc.disk];
      if (arc.is_upper) {
        for (const int32_t c : d.clients) base.Remove(c);
      } else {
        for (const int32_t c : d.clients) base.Add(c);
      }
      if (t < b) {
        base.CopyTo(scratch_);
        const double influence = measure_.Evaluate(scratch_);
        ++stats_.num_labelings;
        region_influence_[KeyOf(arc)] = influence;
        const double y0 = ArcY(sorted_[t], xm);
        const double y1 = ArcY(sorted_[t + 1], xm);
        sink_->OnRegionLabel(
            Rect{{x, std::min(y0, y1)}, {next_x, std::max(y0, y1)}},
            scratch_, influence);
      }
      const int32_t key = KeyOf(arc);
      base.CopyTo(records_[key]);
      has_record_[key] = 1;
    }
  }

  // Reports every adjacent-arc region of the strip [x, next_x) to the arc
  // sink. Influence values come from the per-pair cache maintained by
  // ProcessRange: a pair missing from this checkpoint's dirty runs bounds a
  // region whose contents have not changed since it was last labeled, so
  // its cached value is current. The regions below the lowest and above the
  // highest arc carry the empty RNN set, whose influence the sink's grid
  // holds as background.
  void EmitStrip(double x, double next_x) {
    const int m = static_cast<int>(sorted_.size());
    for (int t = 0; t + 1 < m; ++t) {
      const SweepDisk& dl = disks_[sorted_[t].disk];
      const SweepDisk& du = disks_[sorted_[t + 1].disk];
      options_.arc_sink->OnArcStrip(
          x, next_x,
          ArcStripSink::ArcGeom{dl.center, dl.radius, sorted_[t].is_upper},
          ArcStripSink::ArcGeom{du.center, du.radius,
                                sorted_[t + 1].is_upper},
          region_influence_[KeyOf(sorted_[t])]);
    }
  }

  const InfluenceMeasure& measure_;
  RegionLabelSink* sink_;
  const CrestL2Options options_;
  std::vector<SweepDisk> disks_;
  std::vector<Event> events_;
  std::vector<Arc> sorted_;        // status order over the current strip
  std::vector<Arc> scratch_arcs_;  // sorting scratch
  std::vector<ArcKey> keys_;       // scratch
  std::vector<size_t> order_;      // scratch
  std::vector<int32_t> live_disks_;  // disks currently cut by the line
  std::vector<int32_t> live_index_;  // disk -> index in live_disks_, or -1
  std::vector<int32_t> succ_of_;     // old successor arc key per arc key
  std::vector<uint8_t> involved_;    // arc key touched by this event group
  std::vector<int32_t> involved_keys_;
  std::vector<std::vector<int32_t>> records_;
  std::vector<uint8_t> has_record_;
  std::vector<double> region_influence_;  // per arc key: region above it
  std::vector<int32_t> scratch_;
  int32_t universe_ = 0;
  CrestL2Stats stats_;
};

}  // namespace

std::vector<double> SlabBoundariesL2(const std::vector<NnCircle>& circles,
                                     size_t shards,
                                     size_t crossing_sample_cap) {
  // One weighted observation per estimated sweep event. Per-disk events
  // (x-extremes and centers) are cheap and exact, weight 1 each. Crossing
  // events — the dominant cost on intersection-heavy workloads — would
  // need the all-pairs pass the shards are meant to divide, so they are
  // *estimated*: a deterministic stride sample of `samples` disks runs the
  // same R-tree probe the sweep's event builder runs, and each observed
  // intersection abscissa is weighted up by the inverse sampling rate.
  // Every crossing is seen from both endpoints when all disks are sampled,
  // hence the 2 in the weight; the estimator then reproduces the true
  // crossing count exactly at full sampling and unbiasedly under the cap.
  struct WeightedX {
    double x;
    double w;
  };
  std::vector<WeightedX> events;
  std::vector<Rect> boxes;
  std::vector<int32_t> disk_of;  // box index -> circles index
  events.reserve(circles.size() * 3);
  for (int32_t i = 0; i < static_cast<int32_t>(circles.size()); ++i) {
    const NnCircle& c = circles[i];
    if (c.radius <= 0.0) continue;
    events.push_back(WeightedX{c.center.x - c.radius, 1.0});
    events.push_back(WeightedX{c.center.x, 1.0});
    events.push_back(WeightedX{c.center.x + c.radius, 1.0});
    boxes.push_back(c.Bounds());
    disk_of.push_back(i);
  }
  const size_t n = boxes.size();
  if (shards > 1 && n >= 2 && crossing_sample_cap > 0) {
    RTree rtree;
    rtree.BulkLoad(boxes);
    const size_t samples = std::min(n, crossing_sample_cap);
    const double weight = static_cast<double>(n) / (2.0 * samples);
    for (size_t k = 0; k < samples; ++k) {
      const size_t b = k * n / samples;  // deterministic stride, no RNG
      const NnCircle& a = circles[disk_of[b]];
      rtree.Query(boxes[b], [&](int32_t other) {
        if (static_cast<size_t>(other) == b) return;
        const NnCircle& c = circles[disk_of[other]];
        if (!CirclesProperlyIntersect(a.center, a.radius, c.center,
                                      c.radius)) {
          return;
        }
        const CircleIntersection isect =
            IntersectCircles(a.center, a.radius, c.center, c.radius);
        for (int p = 0; p < isect.count; ++p) {
          events.push_back(WeightedX{isect.points[p].x, weight});
        }
      });
    }
  }
  std::sort(events.begin(), events.end(),
            [](const WeightedX& a, const WeightedX& b) {
              return a.x < b.x || (a.x == b.x && a.w < b.w);
            });
  double total = 0.0;
  for (const WeightedX& e : events) total += e.w;
  std::vector<double> bounds;
  bounds.reserve(shards + 1);
  // Outer boundaries are infinite so no arc is ever lost to rounding at
  // the extreme event coordinates. Duplicate interior boundaries (heavy
  // ties) collapse to empty slabs, which no-op.
  bounds.push_back(-std::numeric_limits<double>::infinity());
  size_t idx = 0;
  double cum = 0.0;
  for (size_t s = 1; s < shards; ++s) {
    if (events.empty()) {
      bounds.push_back(bounds.back());
      continue;
    }
    // Cut at the weighted s/shards quantile of the event distribution.
    const double target = total * static_cast<double>(s) / shards;
    while (idx + 1 < events.size() && cum + events[idx].w < target) {
      cum += events[idx].w;
      ++idx;
    }
    bounds.push_back(events[idx].x);
  }
  bounds.push_back(std::numeric_limits<double>::infinity());
  return bounds;
}

CrestL2Stats RunCrestL2(const std::vector<NnCircle>& circles,
                        const InfluenceMeasure& measure,
                        RegionLabelSink* sink,
                        const CrestL2Options& options) {
  SweepL2 sweep(circles, measure, sink, options);
  return sweep.Run();
}

CrestL2Stats RunCrestL2Parallel(
    const std::vector<NnCircle>& circles,
    std::span<const InfluenceMeasure* const> shard_measures,
    std::span<RegionLabelSink* const> shard_sinks,
    const CrestL2Options& options) {
  RNNHM_CHECK_MSG(!shard_sinks.empty(), "need at least one shard sink");
  RNNHM_CHECK_MSG(shard_measures.size() == shard_sinks.size(),
                  "one measure per shard");
  RNNHM_CHECK_MSG(std::isinf(options.clip_lo) && std::isinf(options.clip_hi),
                  "the parallel driver owns the slab clipping");
  const size_t shards = shard_sinks.size();

  // The grouping epsilon must be shared by every shard (and match the
  // sequential sweep) so simultaneous-event groups do not depend on the
  // slab decomposition.
  double span = options.event_group_span;
  if (span < 0.0) span = DiskEventGroupSpan(circles);

  if (shards == 1) {
    CrestL2Options seq = options;
    seq.event_group_span = span;
    return RunCrestL2(circles, *shard_measures[0], shard_sinks[0], seq);
  }

  const std::vector<double> bounds = SlabBoundariesL2(circles, shards);
  std::vector<CrestL2Stats> shard_stats(shards);
  std::vector<uint8_t> ran(shards, 0);
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    workers.emplace_back([&, s] {
      if (!(bounds[s] < bounds[s + 1])) return;  // empty slab
      CrestL2Options shard = options;
      shard.clip_lo = bounds[s];
      shard.clip_hi = bounds[s + 1];
      shard.event_group_span = span;
      shard_stats[s] =
          RunCrestL2(circles, *shard_measures[s], shard_sinks[s], shard);
      ran[s] = 1;
    });
  }
  for (std::thread& t : workers) t.join();

  // Every shard that ran reports the full input's circle accounting (the
  // sweep dedups and counts before clipping), so the global counts come
  // from any of them — the slab from -inf to +inf guarantees at least one.
  // Sweep counters sum, with boundary-spanning regions counted once per
  // slab they touch.
  CrestL2Stats total;
  for (size_t s = 0; s < shards; ++s) {
    if (ran[s]) {
      total.num_circles = shard_stats[s].num_circles;
      total.num_skipped_circles = shard_stats[s].num_skipped_circles;
      break;
    }
  }
  for (const CrestL2Stats& s : shard_stats) {
    total.num_events += s.num_events;
    total.num_cross_events += s.num_cross_events;
    total.num_labelings += s.num_labelings;
  }
  return total;
}

CrestL2Stats RunCrestL2Parallel(const std::vector<NnCircle>& circles,
                                const InfluenceMeasure& measure,
                                std::span<RegionLabelSink* const> shard_sinks,
                                const CrestL2Options& options) {
  std::vector<const InfluenceMeasure*> measures(shard_sinks.size(),
                                                &measure);
  return RunCrestL2Parallel(
      circles, std::span<const InfluenceMeasure* const>(measures),
      shard_sinks, options);
}

CrestL2Stats RunCrestL2ParallelStrips(const std::vector<NnCircle>& circles,
                                      const InfluenceMeasure& measure,
                                      int num_slabs,
                                      const CrestL2Options& options) {
  RNNHM_CHECK(num_slabs >= 1);
  std::vector<CountingSink> counters(num_slabs);
  std::vector<RegionLabelSink*> sinks;
  sinks.reserve(counters.size());
  for (CountingSink& c : counters) sinks.push_back(&c);
  return RunCrestL2Parallel(circles, measure, sinks, options);
}

double DiskEventGroupSpan(const std::vector<NnCircle>& circles) {
  double span = 0.0;
  for (const NnCircle& c : circles) {
    if (c.radius > 0.0) {
      span = std::max(span, std::fabs(c.center.x) + c.radius);
    }
  }
  return span;
}

}  // namespace rnnhm
