// Parallel CREST: slab decomposition of the sweep.
//
// The paper motivates efficiency by workloads that "need to be recomputed
// frequently" (taxi sharing). The sweep parallelizes naturally: split the
// x-axis into vertical slabs at event quantiles, clip every rectangle to
// each slab it overlaps, and sweep the slabs independently — a rectangle
// clipped at a slab edge behaves exactly like a sweep entering mid-way, so
// per-slab labelings are correct region labels. A region spanning a slab
// boundary is labeled once per slab it touches (bounded duplication, same
// RNN set), which distinct-set, top-k, threshold and raster sinks all
// absorb by construction.
//
// Thread-safety contract: each shard writes only to its own sink; the
// InfluenceMeasure is shared and must be safe for concurrent Evaluate
// (SizeInfluence / WeightedInfluence / ConnectivityInfluence are;
// CapacityInfluence keeps per-instance scratch and is not — give each
// shard its own instance via `shard_measures`).
#ifndef RNNHM_CORE_CREST_PARALLEL_H_
#define RNNHM_CORE_CREST_PARALLEL_H_

#include <span>
#include <vector>

#include "core/crest.h"
#include "core/crest_l2.h"

namespace rnnhm {

// Concurrency model: the parallel sweeps are shared-nothing by
// construction, so there is no lock (and hence no thread-safety
// annotation) anywhere in this module. Each worker thread owns shard s
// exclusively — its sink `shard_sinks[s]`, its stats slot, and (in the
// per-shard-measure overload) its measure instance — and the slab
// partition hands every worker a disjoint x-range of the arrangement.
// The only shared object is an optional strip sink, whose contract below
// makes concurrent spans non-overlapping. The TSan CI job (RNNHM_TSAN)
// is the checker for this path: a worker reaching outside its shard is a
// data race it reports, where a mutex-based design would rely on the
// annotations in common/mutex.h instead.

/// Sweeps the L-infinity NN-circles with one thread per sink in
/// `shard_sinks`; shard i labels the regions of slab i through sink i.
/// Returns the summed per-shard statistics. `options.strip_sink`, when
/// set, receives spans from all shards concurrently; the spans of
/// different shards never overlap (half-open strips), so RasterStripSink
/// painting a shared grid is safe.
CrestStats RunCrestParallel(const std::vector<NnCircle>& circles,
                            const InfluenceMeasure& measure,
                            std::span<RegionLabelSink* const> shard_sinks,
                            const CrestOptions& options = {});

/// As above with one measure instance per shard (for measures with
/// per-instance scratch, e.g. CapacityInfluence). `shard_measures` must
/// have the same length as `shard_sinks`.
CrestStats RunCrestParallel(
    const std::vector<NnCircle>& circles,
    std::span<const InfluenceMeasure* const> shard_measures,
    std::span<RegionLabelSink* const> shard_sinks,
    const CrestOptions& options = {});

/// Convenience for callers that only consume `options.strip_sink` output
/// (parallel rasterization): sweeps with `num_slabs` shards, discarding the
/// region labels through private counting sinks. Returns the summed stats.
CrestStats RunCrestParallelStrips(const std::vector<NnCircle>& circles,
                                  const InfluenceMeasure& measure,
                                  int num_slabs,
                                  const CrestOptions& options = {});

/// Counters of a metric-dispatched parallel sweep: exactly one of the two
/// members is populated, depending on which sweep ran.
struct MetricSweepStats {
  CrestStats crest;  ///< rectilinear sweeps (kLInf, and kL1 via rotation)
  CrestL2Stats l2;   ///< the arc sweep (kL2)

  size_t num_labelings() const {
    return crest.num_labelings + l2.num_labelings;
  }
  size_t num_events() const { return crest.num_events + l2.num_events; }
};

/// The single dispatching entry point over all three metrics: slab-sweeps
/// `circles` (which must have been built under `metric`) with one thread
/// per shard sink. kLInf runs RunCrestParallel directly, kL1 rotates into
/// the L-infinity frame first (labels are in the rotated frame), and kL2
/// runs the arc sweep via RunCrestL2Parallel. `crest_options` applies to
/// the rectilinear sweeps only, `l2_options` to the arc sweep only.
MetricSweepStats RunCrestParallelMetric(
    Metric metric, const std::vector<NnCircle>& circles,
    const InfluenceMeasure& measure,
    std::span<RegionLabelSink* const> shard_sinks,
    const CrestOptions& crest_options = {},
    const CrestL2Options& l2_options = {});

/// Sweeps exactly one vertical slab [clip_lo, clip_hi) of the L-infinity
/// arrangement on the calling thread: every circle's bounding square is
/// clipped to the slab (identical to one shard of RunCrestParallel) and the
/// clipped arrangement is swept sequentially. Labels are correct region
/// labels of the full arrangement restricted to the slab;
/// `options.strip_sink` receives only spans inside the slab. This is the
/// building block of the incremental re-sweep (heatmap/incremental.h),
/// which retains a raster and re-runs only the slabs an edit dirtied.
/// Requires clip_lo < clip_hi (both finite).
CrestStats RunCrestSlab(const std::vector<NnCircle>& circles,
                        const InfluenceMeasure& measure,
                        RegionLabelSink* sink, double clip_lo, double clip_hi,
                        const CrestOptions& options = {});

/// Metric-dispatched single-slab sweep: kLInf clips squares and runs
/// RunCrestSlab, kL2 clips disks via CrestL2Options::clip_lo/clip_hi and
/// runs the arc sweep (with the event-grouping span derived from the full
/// input, so event groups match the unclipped sweep exactly). kL1 is not
/// supported — its sweep runs in the pi/4-rotated frame, where a vertical
/// slab of the original frame is not a vertical slab (callers fall back to
/// a full rebuild; see HeatmapSession::RasterIncremental).
MetricSweepStats RunCrestSlabMetric(Metric metric,
                                    const std::vector<NnCircle>& circles,
                                    const InfluenceMeasure& measure,
                                    RegionLabelSink* sink, double clip_lo,
                                    double clip_hi,
                                    const CrestOptions& crest_options = {},
                                    const CrestL2Options& l2_options = {});

}  // namespace rnnhm

#endif  // RNNHM_CORE_CREST_PARALLEL_H_
