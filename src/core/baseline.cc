#include "core/baseline.h"

#include <algorithm>

#include "common/check.h"
#include "index/enclosure_index.h"
#include "index/interval_tree.h"
#include "index/quadtree.h"
#include "index/rtree.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {

BaselineStats RunBaseline(const std::vector<NnCircle>& circles,
                          const InfluenceMeasure& measure,
                          RegionLabelSink* sink, EnclosureBackend backend) {
  RNNHM_CHECK_MSG(sink != nullptr, "the baseline requires a label sink");
  BaselineStats stats;
  std::vector<NnCircle> live;
  live.reserve(circles.size());
  for (const NnCircle& c : circles) {
    if (c.radius > 0.0) {
      live.push_back(c);
    } else {
      ++stats.num_skipped_circles;
    }
  }
  stats.num_circles = live.size();
  if (live.empty()) return stats;

  // Extended sides form the grid (Fig. 7).
  std::vector<double> xs, ys;
  xs.reserve(live.size() * 2);
  ys.reserve(live.size() * 2);
  std::vector<Rect> rects;
  rects.reserve(live.size());
  for (const NnCircle& c : live) {
    const Rect b = c.Bounds();
    xs.push_back(b.lo.x);
    xs.push_back(b.hi.x);
    ys.push_back(b.lo.y);
    ys.push_back(b.hi.y);
    rects.push_back(b);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  // Point-enclosure index over the squares (backend-selected).
  EnclosureIndex seg_index(backend == EnclosureBackend::kSegmentTree
                               ? rects
                               : std::vector<Rect>{});
  RTree rtree;
  if (backend == EnclosureBackend::kRTree) rtree.BulkLoad(rects);
  QuadTree quadtree(backend == EnclosureBackend::kQuadTree
                        ? rects
                        : std::vector<Rect>{});
  std::vector<Interval> x_intervals;
  if (backend == EnclosureBackend::kIntervalTree) {
    for (size_t i = 0; i < rects.size(); ++i) {
      x_intervals.push_back(
          Interval{rects[i].lo.x, rects[i].hi.x, static_cast<int32_t>(i)});
    }
  }
  IntervalTree interval_tree(std::move(x_intervals));

  std::vector<int32_t> rnn;
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    const double cx = (xs[i] + xs[i + 1]) / 2.0;
    if (!(xs[i] < xs[i + 1])) continue;
    for (size_t j = 0; j + 1 < ys.size(); ++j) {
      if (!(ys[j] < ys[j + 1])) continue;
      const double cy = (ys[j] + ys[j + 1]) / 2.0;
      rnn.clear();
      ++stats.num_enclosure_queries;
      const Point centroid{cx, cy};
      auto visit = [&](int32_t id) { rnn.push_back(live[id].client); };
      switch (backend) {
        case EnclosureBackend::kSegmentTree:
          seg_index.Stab(centroid, visit);
          break;
        case EnclosureBackend::kRTree:
          rtree.Stab(centroid, visit);
          break;
        case EnclosureBackend::kQuadTree:
          quadtree.Stab(centroid, visit);
          break;
        case EnclosureBackend::kIntervalTree:
          interval_tree.Stab(centroid.x, [&](int32_t id) {
            if (rects[id].lo.y <= centroid.y &&
                centroid.y <= rects[id].hi.y) {
              visit(id);
            }
          });
          break;
      }
      const double influence = measure.Evaluate(rnn);
      ++stats.num_cells;
      sink->OnRegionLabel(
          Rect{{xs[i], ys[j]}, {xs[i + 1], ys[j + 1]}}, rnn, influence);
    }
  }
  return stats;
}

BaselineStats RunBaselineL1(const std::vector<NnCircle>& l1_circles,
                            const InfluenceMeasure& measure,
                            RegionLabelSink* sink,
                            EnclosureBackend backend) {
  return RunBaseline(RotateCirclesToLInf(l1_circles), measure, sink, backend);
}

}  // namespace rnnhm
