#include "nn/nn_circle_builder.h"

#include "common/check.h"
#include "index/kdtree.h"

namespace rnnhm {

std::vector<NnCircle> BuildNnCircles(const std::vector<Point>& clients,
                                     const std::vector<Point>& facilities,
                                     Metric metric) {
  RNNHM_CHECK_MSG(!facilities.empty(),
                  "bichromatic NN-circles need at least one facility");
  KdTree tree(facilities);
  std::vector<NnCircle> out;
  out.reserve(clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    const NnResult nn = tree.Nearest(clients[i], metric);
    RNNHM_DCHECK(nn.index >= 0);
    out.push_back(
        NnCircle{clients[i], nn.distance, static_cast<int32_t>(i)});
  }
  return out;
}

std::vector<NnCircle> BuildMonochromaticNnCircles(
    const std::vector<Point>& points, Metric metric) {
  RNNHM_CHECK_MSG(points.size() >= 2,
                  "monochromatic NN-circles need at least two points");
  KdTree tree(points);
  std::vector<NnCircle> out;
  out.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const NnResult nn =
        tree.Nearest(points[i], metric, static_cast<int32_t>(i));
    RNNHM_DCHECK(nn.index >= 0);
    out.push_back(
        NnCircle{points[i], nn.distance, static_cast<int32_t>(i)});
  }
  return out;
}

std::vector<NnCircle> RotateCirclesToLInf(const std::vector<NnCircle>& in) {
  constexpr double kInvSqrt2 = 0.7071067811865475244;
  std::vector<NnCircle> out;
  out.reserve(in.size());
  for (const NnCircle& c : in) {
    out.push_back(
        NnCircle{RotateToLInf(c.center), c.radius * kInvSqrt2, c.client});
  }
  return out;
}

}  // namespace rnnhm
