// NN-circle computation (Section III-A).
//
// For every client o in O, the NN-circle C(o) is centered at o with radius
// equal to the distance from o to its nearest facility in F (bichromatic)
// or to its nearest other client in O (monochromatic, O = F). The paper
// assumes this precomputation as given; we provide it via the KdTree.
#ifndef RNNHM_NN_NN_CIRCLE_BUILDER_H_
#define RNNHM_NN_NN_CIRCLE_BUILDER_H_

#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// Builds bichromatic NN-circles: one per client, radius = distance to the
/// nearest facility under `metric`. Requires at least one facility.
std::vector<NnCircle> BuildNnCircles(const std::vector<Point>& clients,
                                     const std::vector<Point>& facilities,
                                     Metric metric);

/// Builds monochromatic NN-circles over a single set (each point's NN is
/// its nearest *other* point). Requires at least two points.
std::vector<NnCircle> BuildMonochromaticNnCircles(
    const std::vector<Point>& points, Metric metric);

/// Rotates a set of L1 NN-circles (diamonds) into the L-infinity frame
/// (squares), scaling radii by 1/sqrt(2) (Section VII-B). Input circles
/// must have been built with Metric::kL1.
std::vector<NnCircle> RotateCirclesToLInf(const std::vector<NnCircle>& in);

}  // namespace rnnhm

#endif  // RNNHM_NN_NN_CIRCLE_BUILDER_H_
