// Static point-enclosure (rectangle stabbing) index.
//
// Stand-in for the S-tree of Vaishnavi [25] used by the baseline algorithm
// (Section IV): given n axis-aligned rectangles, report all rectangles
// containing a query point. A segment tree is built over the distinct
// x-endpoints; each rectangle is registered at O(log n) canonical nodes, and
// each node keeps its rectangles' y-intervals. A query walks the root-to-
// leaf path for q.x and, at every node, reports the y-intervals containing
// q.y via binary search over lists sorted by lower endpoint.
#ifndef RNNHM_INDEX_ENCLOSURE_INDEX_H_
#define RNNHM_INDEX_ENCLOSURE_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// Immutable rectangle stabbing structure; built once, queried many times.
class EnclosureIndex {
 public:
  /// Builds the index over `rects` with ids 0..n-1. O(n log n).
  explicit EnclosureIndex(const std::vector<Rect>& rects);

  /// Calls visit(id) for every rectangle whose *closed* extent contains p.
  void Stab(const Point& p, const std::function<void(int32_t)>& visit) const;

  /// Ids of all rectangles containing p.
  std::vector<int32_t> StabIds(const Point& p) const;

  /// Number of indexed rectangles.
  size_t size() const { return rects_.size(); }

 private:
  struct YEntry {
    double y_lo;
    double y_hi;
    int32_t id;
  };
  struct TreeNode {
    // Entries assigned to this canonical node, sorted ascending by y_lo,
    // with prefix maxima of y_hi to cut off scans early.
    std::vector<YEntry> entries;
  };

  void AssignToNodes(int node, int lo, int hi, int32_t id, double x_lo,
                     double x_hi);

  std::vector<Rect> rects_;
  std::vector<double> xs_;       // distinct x endpoints (elementary bounds)
  std::vector<TreeNode> tree_;   // segment tree, 1-based heap layout
  int leaf_count_ = 0;
};

}  // namespace rnnhm

#endif  // RNNHM_INDEX_ENCLOSURE_INDEX_H_
