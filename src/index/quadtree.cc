#include "index/quadtree.h"

#include <algorithm>

namespace rnnhm {

QuadTree::QuadTree(const std::vector<Rect>& rects, int max_depth,
                   int leaf_capacity)
    : rects_(rects), max_depth_(max_depth), leaf_capacity_(leaf_capacity) {
  Rect bounds = EmptyRect();
  for (const Rect& r : rects_) bounds = bounds.Union(r);
  if (rects_.empty()) return;
  nodes_.push_back(Node{bounds, {}, {-1, -1, -1, -1}});
  std::vector<int32_t> all(rects_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int32_t>(i);
  Build(0, all, 0);
}

void QuadTree::Build(int node, const std::vector<int32_t>& candidates,
                     int depth) {
  if (static_cast<int>(candidates.size()) <= leaf_capacity_ ||
      depth >= max_depth_) {
    nodes_[node].items = candidates;
    return;
  }
  const Rect bounds = nodes_[node].bounds;
  const Point mid = bounds.Center();
  const Rect quadrant[4] = {
      Rect{bounds.lo, mid},
      Rect{{mid.x, bounds.lo.y}, {bounds.hi.x, mid.y}},
      Rect{{bounds.lo.x, mid.y}, {mid.x, bounds.hi.y}},
      Rect{mid, bounds.hi},
  };
  std::vector<int32_t> per_child[4];
  for (const int32_t id : candidates) {
    const Rect& r = rects_[id];
    int child = -1;
    for (int q = 0; q < 4; ++q) {
      if (quadrant[q].Contains(r)) {
        child = q;
        break;
      }
    }
    if (child < 0) {
      nodes_[node].items.push_back(id);  // straddles a split line
    } else {
      per_child[child].push_back(id);
    }
  }
  // If nothing separated, subdividing is pointless.
  if (nodes_[node].items.size() == candidates.size()) return;
  for (int q = 0; q < 4; ++q) {
    if (per_child[q].empty()) continue;
    const int child = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{quadrant[q], {}, {-1, -1, -1, -1}});
    nodes_[node].children[q] = child;
    Build(child, per_child[q], depth + 1);
  }
}

void QuadTree::Stab(const Point& p,
                    const std::function<void(int32_t)>& visit) const {
  if (nodes_.empty() || !nodes_[0].bounds.ContainsClosed(p)) return;
  // Descend into every quadrant whose closed bounds contain p: normally a
  // single path, but up to four when p lies exactly on split lines (each
  // node is visited at most once, so no duplicates are reported).
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    for (const int32_t id : n.items) {
      if (rects_[id].ContainsClosed(p)) visit(id);
    }
    for (int q = 0; q < 4; ++q) {
      const int child = n.children[q];
      if (child >= 0 && nodes_[child].bounds.ContainsClosed(p)) {
        stack.push_back(child);
      }
    }
  }
}

std::vector<int32_t> QuadTree::StabIds(const Point& p) const {
  std::vector<int32_t> out;
  Stab(p, [&out](int32_t id) { out.push_back(id); });
  return out;
}

void QuadTree::Query(const Rect& window,
                     const std::function<void(int32_t)>& visit) const {
  if (nodes_.empty()) return;
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    if (!n.bounds.Intersects(window)) continue;
    for (const int32_t id : n.items) {
      if (rects_[id].Intersects(window)) visit(id);
    }
    for (int q = 0; q < 4; ++q) {
      if (n.children[q] >= 0) stack.push_back(n.children[q]);
    }
  }
}

}  // namespace rnnhm
