// R-tree over axis-aligned rectangles.
//
// General-purpose spatial substrate: supports STR bulk loading, dynamic
// insertion (quadratic split), window queries, point-enclosure queries
// (stabbing), and best-first nearest-neighbor over rectangle min-distance.
// The baseline algorithm of Section IV can run against either this index or
// the segment-tree EnclosureIndex; benchmarks compare both.
#ifndef RNNHM_INDEX_RTREE_H_
#define RNNHM_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// Dynamic R-tree storing (rect, id) entries.
class RTree {
 public:
  /// Maximum node fan-out.
  static constexpr int kMaxEntries = 16;
  /// Minimum fill after split.
  static constexpr int kMinEntries = 6;

  /// Result of NearestRect.
  struct NnEntry {
    int32_t id = -1;
    double distance = 0.0;
  };

  RTree() = default;

  /// STR (Sort-Tile-Recursive) bulk load. Replaces current contents.
  void BulkLoad(const std::vector<Rect>& rects,
                const std::vector<int32_t>& ids);

  /// Convenience bulk load with ids 0..n-1.
  void BulkLoad(const std::vector<Rect>& rects);

  /// Inserts one entry (Guttman quadratic split).
  void Insert(const Rect& rect, int32_t id);

  /// Number of stored entries.
  size_t size() const { return size_; }

  /// Calls visit(id) for every entry whose rectangle intersects `window`.
  void Query(const Rect& window,
             const std::function<void(int32_t)>& visit) const;

  /// Calls visit(id) for every entry whose closed rectangle contains p.
  void Stab(const Point& p, const std::function<void(int32_t)>& visit) const;

  /// Ids of all entries whose rectangle contains p (convenience wrapper).
  std::vector<int32_t> StabIds(const Point& p) const;

  /// Best-first nearest entry to p by L2 min-distance between p and the
  /// entry rectangle. Returns id -1 when empty.
  NnEntry NearestRect(const Point& p) const;

  /// Height of the tree (0 when empty); exposed for tests.
  int Height() const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<Rect> rects;
    std::vector<int32_t> children;  // node indices (internal) or ids (leaf)
    Rect bounds = EmptyRect();
  };

  int NewNode(bool leaf);
  void RecomputeBounds(int node);
  void SplitChild(int parent_index_in_path, std::vector<int>& path,
                  int node);
  int BuildStrLevel(const std::vector<Rect>& rects,
                    const std::vector<int32_t>& ptrs, bool leaf);

  std::vector<Node> nodes_;
  int root_ = -1;
  size_t size_ = 0;
  size_t last_level_begin_ = 0;  // first node index of the level being built
};

}  // namespace rnnhm

#endif  // RNNHM_INDEX_RTREE_H_
