// Static centered interval tree (1-D stabbing).
//
// Classic substrate: given n closed intervals, report all intervals
// containing a query value in O(log n + answer). Used by the interval-tree
// enclosure backend (stab x-intervals, filter y) and exposed on its own.
#ifndef RNNHM_INDEX_INTERVAL_TREE_H_
#define RNNHM_INDEX_INTERVAL_TREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// Closed 1-D interval with an id payload.
struct Interval {
  double lo;
  double hi;
  int32_t id;
};

/// Immutable centered interval tree.
class IntervalTree {
 public:
  /// Builds over `intervals` (copied). O(n log n).
  explicit IntervalTree(std::vector<Interval> intervals);

  /// Calls visit(id) for every interval with lo <= x <= hi.
  void Stab(double x, const std::function<void(int32_t)>& visit) const;

  /// Ids of all intervals containing x, unsorted.
  std::vector<int32_t> StabIds(double x) const;

  size_t size() const { return size_; }

 private:
  struct Node {
    double center;
    // Intervals crossing the center, sorted two ways for early cut-off.
    std::vector<Interval> by_lo;   // ascending lo
    std::vector<Interval> by_hi;   // descending hi
    int32_t left = -1;
    int32_t right = -1;
  };

  int32_t Build(std::vector<Interval>& intervals);

  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t size_ = 0;
};

}  // namespace rnnhm

#endif  // RNNHM_INDEX_INTERVAL_TREE_H_
