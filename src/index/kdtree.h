// Static 2-d tree for exact nearest-neighbor queries under L1/L2/L-inf.
//
// Used to precompute NN-circles: the paper assumes NN-circles are given
// ("there are efficient algorithms to compute and maintain the NN-circles
// [12]"); this is that substrate. The tree is built once over the facility
// set and queried once per client.
#ifndef RNNHM_INDEX_KDTREE_H_
#define RNNHM_INDEX_KDTREE_H_

#include <cstdint>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// Result of a nearest-neighbor query.
struct NnResult {
  int32_t index = -1;   ///< Index into the construction point vector.
  double distance = 0;  ///< Distance under the query metric.
};

/// Balanced 2-d tree over a fixed point set. The tree is stored as a
/// median-ordered permutation of the input (no pointers), halving memory
/// and keeping traversal cache-friendly.
class KdTree {
 public:
  /// Builds the tree; `points` is copied. O(n log n).
  explicit KdTree(std::vector<Point> points);

  /// Number of indexed points.
  size_t size() const { return points_.size(); }

  /// Exact nearest neighbor of q under `metric`. If `exclude` >= 0, the
  /// point with that construction index is skipped (used for monochromatic
  /// queries where a point must not be its own NN). Returns index -1 when
  /// the tree is empty or only contains the excluded point.
  NnResult Nearest(const Point& q, Metric metric, int32_t exclude = -1) const;

  /// Exact k nearest neighbors, ascending by distance. Ties are broken by
  /// construction index for determinism.
  std::vector<NnResult> KNearest(const Point& q, int k, Metric metric,
                                 int32_t exclude = -1) const;

 private:
  void Build(int lo, int hi, int depth);

  std::vector<Point> points_;
  std::vector<int32_t> order_;  // permutation; median of [lo,hi) at midpoint
};

}  // namespace rnnhm

#endif  // RNNHM_INDEX_KDTREE_H_
