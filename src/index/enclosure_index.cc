#include "index/enclosure_index.h"

#include <algorithm>

#include "common/check.h"

namespace rnnhm {

namespace {

// Elementary-interval index of value v over sorted distinct coords xs:
// intervals are (-inf,x0) [x0] (x0,x1) [x1] ... [x_{m-1}] (x_{m-1},+inf),
// numbered 0..2m. Value exactly at xs[i] maps to 2i+1.
int ElementaryIndex(const std::vector<double>& xs, double v) {
  const auto it = std::lower_bound(xs.begin(), xs.end(), v);
  const int i = static_cast<int>(it - xs.begin());
  if (it != xs.end() && *it == v) return 2 * i + 1;
  return 2 * i;
}

}  // namespace

EnclosureIndex::EnclosureIndex(const std::vector<Rect>& rects)
    : rects_(rects) {
  xs_.reserve(rects.size() * 2);
  for (const Rect& r : rects) {
    xs_.push_back(r.lo.x);
    xs_.push_back(r.hi.x);
  }
  std::sort(xs_.begin(), xs_.end());
  xs_.erase(std::unique(xs_.begin(), xs_.end()), xs_.end());
  leaf_count_ = static_cast<int>(2 * xs_.size() + 1);
  tree_.assign(4 * static_cast<size_t>(leaf_count_) + 4, TreeNode{});
  for (size_t id = 0; id < rects_.size(); ++id) {
    const Rect& r = rects_[id];
    const int lo = ElementaryIndex(xs_, r.lo.x);
    const int hi = ElementaryIndex(xs_, r.hi.x);
    AssignToNodes(1, 0, leaf_count_ - 1, static_cast<int32_t>(id),
                  static_cast<double>(lo), static_cast<double>(hi));
  }
  for (TreeNode& node : tree_) {
    std::sort(node.entries.begin(), node.entries.end(),
              [](const YEntry& a, const YEntry& b) {
                if (a.y_lo != b.y_lo) return a.y_lo < b.y_lo;
                return a.id < b.id;
              });
  }
}

void EnclosureIndex::AssignToNodes(int node, int lo, int hi, int32_t id,
                                   double x_lo, double x_hi) {
  // x_lo/x_hi are elementary indices (stored as double to reuse the
  // signature); the canonical decomposition is the standard one.
  const int a = static_cast<int>(x_lo);
  const int b = static_cast<int>(x_hi);
  if (b < lo || hi < a) return;
  if (a <= lo && hi <= b) {
    const Rect& r = rects_[id];
    tree_[node].entries.push_back(YEntry{r.lo.y, r.hi.y, id});
    return;
  }
  const int mid = (lo + hi) / 2;
  AssignToNodes(2 * node, lo, mid, id, x_lo, x_hi);
  AssignToNodes(2 * node + 1, mid + 1, hi, id, x_lo, x_hi);
}

void EnclosureIndex::Stab(const Point& p,
                          const std::function<void(int32_t)>& visit) const {
  if (rects_.empty()) return;
  const int target = ElementaryIndex(xs_, p.x);
  int node = 1;
  int lo = 0;
  int hi = leaf_count_ - 1;
  for (;;) {
    const TreeNode& t = tree_[node];
    // All entries at this node span p.x; report those containing p.y.
    // Entries are sorted by y_lo, so candidates form a prefix.
    for (const YEntry& e : t.entries) {
      if (e.y_lo > p.y) break;
      if (e.y_hi >= p.y) visit(e.id);
    }
    if (lo == hi) break;
    const int mid = (lo + hi) / 2;
    if (target <= mid) {
      node = 2 * node;
      hi = mid;
    } else {
      node = 2 * node + 1;
      lo = mid + 1;
    }
  }
}

std::vector<int32_t> EnclosureIndex::StabIds(const Point& p) const {
  std::vector<int32_t> out;
  Stab(p, [&out](int32_t id) { out.push_back(id); });
  return out;
}

}  // namespace rnnhm
