// Region quadtree over axis-aligned rectangles.
//
// Third point-enclosure backend (Section IV notes "other spatial indexes
// such as the R-tree may be used"): rectangles are stored at the deepest
// node whose quadrant fully contains them; a stab query walks the single
// root-to-leaf path of the query point and tests the rectangles stored on
// it. Simple, allocation-light, and a useful comparison point against the
// segment tree and the R-tree in the ablation benchmark.
#ifndef RNNHM_INDEX_QUADTREE_H_
#define RNNHM_INDEX_QUADTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// Static quadtree built over a rectangle set.
class QuadTree {
 public:
  /// Builds over `rects` with ids 0..n-1. `max_depth` bounds the tree;
  /// `leaf_capacity` stops subdividing sparse quadrants.
  explicit QuadTree(const std::vector<Rect>& rects, int max_depth = 16,
                    int leaf_capacity = 8);

  /// Calls visit(id) for every rectangle whose closed extent contains p.
  void Stab(const Point& p, const std::function<void(int32_t)>& visit) const;

  /// Ids of all rectangles containing p, unsorted.
  std::vector<int32_t> StabIds(const Point& p) const;

  /// Calls visit(id) for every rectangle intersecting `window`.
  void Query(const Rect& window,
             const std::function<void(int32_t)>& visit) const;

  size_t size() const { return rects_.size(); }
  /// Number of tree nodes (exposed for tests).
  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    Rect bounds;
    std::vector<int32_t> items;   // rects pinned at this node
    int32_t children[4] = {-1, -1, -1, -1};
  };

  void Build(int node, const std::vector<int32_t>& candidates, int depth);

  std::vector<Rect> rects_;
  std::vector<Node> nodes_;
  int max_depth_;
  int leaf_capacity_;
};

}  // namespace rnnhm

#endif  // RNNHM_INDEX_QUADTREE_H_
