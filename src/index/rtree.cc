#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "common/check.h"

namespace rnnhm {

int RTree::NewNode(bool leaf) {
  nodes_.push_back(Node{});
  nodes_.back().leaf = leaf;
  return static_cast<int>(nodes_.size()) - 1;
}

void RTree::RecomputeBounds(int node) {
  Node& n = nodes_[node];
  Rect b = EmptyRect();
  for (const Rect& r : n.rects) b = b.Union(r);
  n.bounds = b;
}

void RTree::BulkLoad(const std::vector<Rect>& rects) {
  std::vector<int32_t> ids(rects.size());
  std::iota(ids.begin(), ids.end(), 0);
  BulkLoad(rects, ids);
}

void RTree::BulkLoad(const std::vector<Rect>& rects,
                     const std::vector<int32_t>& ids) {
  RNNHM_CHECK(rects.size() == ids.size());
  nodes_.clear();
  root_ = -1;
  size_ = rects.size();
  if (rects.empty()) return;

  // Sort entries by x-center into vertical slices, then by y-center within
  // each slice (STR), packing kMaxEntries per node at each level.
  std::vector<Rect> level_rects = rects;
  std::vector<int32_t> level_ptrs = ids;
  bool leaf = true;
  while (true) {
    const int root = BuildStrLevel(level_rects, level_ptrs, leaf);
    if (root >= 0) {
      root_ = root;
      return;
    }
    // BuildStrLevel produced more than one node; the freshly created nodes
    // occupy the tail of nodes_. Collect them for the next level.
    std::vector<Rect> next_rects;
    std::vector<int32_t> next_ptrs;
    for (size_t i = last_level_begin_; i < nodes_.size(); ++i) {
      next_rects.push_back(nodes_[i].bounds);
      next_ptrs.push_back(static_cast<int32_t>(i));
    }
    level_rects = std::move(next_rects);
    level_ptrs = std::move(next_ptrs);
    leaf = false;
  }
}

int RTree::BuildStrLevel(const std::vector<Rect>& rects,
                         const std::vector<int32_t>& ptrs, bool leaf) {
  const size_t n = rects.size();
  last_level_begin_ = nodes_.size();
  if (n <= static_cast<size_t>(kMaxEntries)) {
    const int node = NewNode(leaf);
    nodes_[node].rects = rects;
    nodes_[node].children = ptrs;
    RecomputeBounds(node);
    return node;
  }
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return rects[a].Center().x < rects[b].Center().x;
  });
  const size_t num_nodes = (n + kMaxEntries - 1) / kMaxEntries;
  const size_t num_slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_nodes))));
  const size_t slice_size =
      (n + num_slices - 1) / num_slices;
  for (size_t s = 0; s < num_slices; ++s) {
    const size_t lo = s * slice_size;
    if (lo >= n) break;
    const size_t hi = std::min(n, lo + slice_size);
    std::sort(order.begin() + lo, order.begin() + hi,
              [&](int32_t a, int32_t b) {
                return rects[a].Center().y < rects[b].Center().y;
              });
    for (size_t i = lo; i < hi; i += kMaxEntries) {
      const int node = NewNode(leaf);
      for (size_t j = i; j < std::min(hi, i + kMaxEntries); ++j) {
        nodes_[node].rects.push_back(rects[order[j]]);
        nodes_[node].children.push_back(ptrs[order[j]]);
      }
      RecomputeBounds(node);
    }
  }
  return -1;  // multiple nodes created; caller builds the next level
}

void RTree::Insert(const Rect& rect, int32_t id) {
  if (root_ < 0) {
    root_ = NewNode(true);
  }
  // Descend to the leaf with minimum enlargement.
  std::vector<int> path;  // nodes from root to chosen leaf
  int node = root_;
  for (;;) {
    path.push_back(node);
    Node& n = nodes_[node];
    n.bounds = n.bounds.Union(rect);
    if (n.leaf) break;
    int best = 0;
    double best_enl = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n.rects.size(); ++i) {
      const double enl = n.rects[i].Enlargement(rect);
      const double area = n.rects[i].Area();
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best = static_cast<int>(i);
        best_enl = enl;
        best_area = area;
      }
    }
    n.rects[best] = n.rects[best].Union(rect);
    node = n.children[best];
  }
  nodes_[node].rects.push_back(rect);
  nodes_[node].children.push_back(id);
  ++size_;

  // Split upward while overflowing.
  for (int i = static_cast<int>(path.size()) - 1; i >= 0; --i) {
    const int cur = path[i];
    if (nodes_[cur].rects.size() <= static_cast<size_t>(kMaxEntries)) break;
    SplitChild(i, path, cur);
  }
}

void RTree::SplitChild(int depth, std::vector<int>& path, int node) {
  // Guttman quadratic split of `node` into node + sibling.
  Node& n = nodes_[node];
  const size_t count = n.rects.size();
  // Pick seeds: pair wasting the most area.
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      const double waste = n.rects[i].Union(n.rects[j]).Area() -
                           n.rects[i].Area() - n.rects[j].Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  std::vector<Rect> rects = std::move(n.rects);
  std::vector<int32_t> children = std::move(n.children);
  n.rects.clear();
  n.children.clear();
  const int sibling = NewNode(nodes_[node].leaf);
  // NewNode may have reallocated nodes_; re-reference.
  Node& a = nodes_[node];
  Node& b = nodes_[sibling];
  std::vector<bool> assigned(count, false);
  a.rects.push_back(rects[seed_a]);
  a.children.push_back(children[seed_a]);
  b.rects.push_back(rects[seed_b]);
  b.children.push_back(children[seed_b]);
  assigned[seed_a] = assigned[seed_b] = true;
  Rect ba = rects[seed_a];
  Rect bb = rects[seed_b];
  size_t remaining = count - 2;
  while (remaining > 0) {
    // Force assignment if one group must take all remaining entries.
    if (a.rects.size() + remaining <= kMinEntries ||
        b.rects.size() >= count - kMinEntries) {
      for (size_t i = 0; i < count; ++i) {
        if (!assigned[i]) {
          a.rects.push_back(rects[i]);
          a.children.push_back(children[i]);
          ba = ba.Union(rects[i]);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    if (b.rects.size() + remaining <= kMinEntries ||
        a.rects.size() >= count - kMinEntries) {
      for (size_t i = 0; i < count; ++i) {
        if (!assigned[i]) {
          b.rects.push_back(rects[i]);
          b.children.push_back(children[i]);
          bb = bb.Union(rects[i]);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    // Pick the entry with the largest preference difference.
    size_t pick = 0;
    double best_diff = -1.0;
    double d1_pick = 0, d2_pick = 0;
    for (size_t i = 0; i < count; ++i) {
      if (assigned[i]) continue;
      const double d1 = ba.Enlargement(rects[i]);
      const double d2 = bb.Enlargement(rects[i]);
      const double diff = std::fabs(d1 - d2);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        d1_pick = d1;
        d2_pick = d2;
      }
    }
    assigned[pick] = true;
    --remaining;
    const bool to_a =
        d1_pick < d2_pick ||
        (d1_pick == d2_pick && a.rects.size() <= b.rects.size());
    if (to_a) {
      a.rects.push_back(rects[pick]);
      a.children.push_back(children[pick]);
      ba = ba.Union(rects[pick]);
    } else {
      b.rects.push_back(rects[pick]);
      b.children.push_back(children[pick]);
      bb = bb.Union(rects[pick]);
    }
  }
  RecomputeBounds(node);
  RecomputeBounds(sibling);

  if (depth == 0) {
    // Node was the root: grow the tree.
    const int new_root = NewNode(false);
    nodes_[new_root].rects = {nodes_[node].bounds, nodes_[sibling].bounds};
    nodes_[new_root].children = {node, sibling};
    RecomputeBounds(new_root);
    root_ = new_root;
  } else {
    const int parent = path[depth - 1];
    Node& p = nodes_[parent];
    for (size_t i = 0; i < p.children.size(); ++i) {
      if (p.children[i] == node) {
        p.rects[i] = nodes_[node].bounds;
        break;
      }
    }
    p.rects.push_back(nodes_[sibling].bounds);
    p.children.push_back(sibling);
  }
}

void RTree::Query(const Rect& window,
                  const std::function<void(int32_t)>& visit) const {
  if (root_ < 0) return;
  std::vector<int> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    for (size_t i = 0; i < n.rects.size(); ++i) {
      if (!n.rects[i].Intersects(window)) continue;
      if (n.leaf) {
        visit(n.children[i]);
      } else {
        stack.push_back(n.children[i]);
      }
    }
  }
}

void RTree::Stab(const Point& p,
                 const std::function<void(int32_t)>& visit) const {
  Query(Rect{p, p}, visit);
}

std::vector<int32_t> RTree::StabIds(const Point& p) const {
  std::vector<int32_t> out;
  Stab(p, [&out](int32_t id) { out.push_back(id); });
  return out;
}

RTree::NnEntry RTree::NearestRect(const Point& p) const {
  NnEntry best;
  if (root_ < 0) return best;
  best.distance = std::numeric_limits<double>::infinity();
  using QueueEntry = std::pair<double, int32_t>;  // (min-dist, node)
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  pq.push({nodes_[root_].bounds.MinDistanceL2(p), root_});
  while (!pq.empty()) {
    const auto [dist, node] = pq.top();
    pq.pop();
    if (dist > best.distance) break;
    const Node& n = nodes_[node];
    for (size_t i = 0; i < n.rects.size(); ++i) {
      const double d = n.rects[i].MinDistanceL2(p);
      if (d > best.distance) continue;
      if (n.leaf) {
        if (d < best.distance ||
            (d == best.distance && n.children[i] < best.id)) {
          best.distance = d;
          best.id = n.children[i];
        }
      } else {
        pq.push({d, n.children[i]});
      }
    }
  }
  return best;
}

int RTree::Height() const {
  if (root_ < 0) return 0;
  int h = 1;
  int node = root_;
  while (!nodes_[node].leaf) {
    node = nodes_[node].children[0];
    ++h;
  }
  return h;
}

}  // namespace rnnhm
