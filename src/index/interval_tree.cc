#include "index/interval_tree.h"

#include <algorithm>

namespace rnnhm {

IntervalTree::IntervalTree(std::vector<Interval> intervals)
    : size_(intervals.size()) {
  nodes_.reserve(intervals.size());
  if (!intervals.empty()) root_ = Build(intervals);
}

int32_t IntervalTree::Build(std::vector<Interval>& intervals) {
  // Center = median of endpoint midpoints (balanced in practice).
  std::vector<double> mids;
  mids.reserve(intervals.size());
  for (const Interval& iv : intervals) mids.push_back((iv.lo + iv.hi) / 2);
  std::nth_element(mids.begin(), mids.begin() + mids.size() / 2, mids.end());
  const double center = mids[mids.size() / 2];

  const int32_t node = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{center, {}, {}, -1, -1});

  std::vector<Interval> left, right;
  for (const Interval& iv : intervals) {
    if (iv.hi < center) {
      left.push_back(iv);
    } else if (iv.lo > center) {
      right.push_back(iv);
    } else {
      nodes_[node].by_lo.push_back(iv);
    }
  }
  // Degenerate guard: if nothing crosses the center and one side holds
  // everything, pin the whole set here to guarantee termination.
  if (nodes_[node].by_lo.empty() &&
      (left.size() == intervals.size() || right.size() == intervals.size())) {
    nodes_[node].by_lo = intervals;
    left.clear();
    right.clear();
  }
  std::sort(nodes_[node].by_lo.begin(), nodes_[node].by_lo.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  nodes_[node].by_hi = nodes_[node].by_lo;
  std::sort(nodes_[node].by_hi.begin(), nodes_[node].by_hi.end(),
            [](const Interval& a, const Interval& b) { return a.hi > b.hi; });
  if (!left.empty()) {
    const int32_t child = Build(left);
    nodes_[node].left = child;
  }
  if (!right.empty()) {
    const int32_t child = Build(right);
    nodes_[node].right = child;
  }
  return node;
}

void IntervalTree::Stab(double x,
                        const std::function<void(int32_t)>& visit) const {
  int32_t node = root_;
  while (node >= 0) {
    const Node& n = nodes_[node];
    if (x < n.center) {
      // Crossing intervals sorted by lo: report the prefix with lo <= x.
      for (const Interval& iv : n.by_lo) {
        if (iv.lo > x) break;
        visit(iv.id);
      }
      node = n.left;
    } else if (x > n.center) {
      for (const Interval& iv : n.by_hi) {
        if (iv.hi < x) break;
        visit(iv.id);
      }
      node = n.right;
    } else {
      for (const Interval& iv : n.by_lo) {
        if (iv.lo > x) break;
        visit(iv.id);
      }
      return;  // everything containing the center lives here
    }
  }
}

std::vector<int32_t> IntervalTree::StabIds(double x) const {
  std::vector<int32_t> out;
  Stab(x, [&out](int32_t id) { out.push_back(id); });
  return out;
}

}  // namespace rnnhm
