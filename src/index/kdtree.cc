#include "index/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace rnnhm {

namespace {

// Distance from q to the splitting line `coord` on `axis`, under metric.
// For all three supported metrics the one-dimensional gap is a valid lower
// bound on the distance to any point on the far side of the split.
inline double AxisGap(const Point& q, int axis, double coord) {
  return std::fabs((axis == 0 ? q.x : q.y) - coord);
}

inline double Coord(const Point& p, int axis) { return axis == 0 ? p.x : p.y; }

}  // namespace

KdTree::KdTree(std::vector<Point> points) : points_(std::move(points)) {
  order_.resize(points_.size());
  std::iota(order_.begin(), order_.end(), 0);
  if (!order_.empty()) Build(0, static_cast<int>(order_.size()), 0);
}

void KdTree::Build(int lo, int hi, int depth) {
  if (hi - lo <= 1) return;
  const int mid = (lo + hi) / 2;
  const int axis = depth & 1;
  std::nth_element(order_.begin() + lo, order_.begin() + mid,
                   order_.begin() + hi, [&](int32_t a, int32_t b) {
                     const double ca = Coord(points_[a], axis);
                     const double cb = Coord(points_[b], axis);
                     if (ca != cb) return ca < cb;
                     return a < b;
                   });
  Build(lo, mid, depth + 1);
  Build(mid + 1, hi, depth + 1);
}

NnResult KdTree::Nearest(const Point& q, Metric metric,
                         int32_t exclude) const {
  NnResult best;
  best.distance = std::numeric_limits<double>::infinity();

  // Explicit stack of (lo, hi, depth) ranges, nearer child first.
  struct Frame {
    int lo, hi, depth;
  };
  std::vector<Frame> stack;
  if (!order_.empty()) stack.push_back({0, static_cast<int>(order_.size()), 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.hi <= f.lo) continue;
    const int mid = (f.lo + f.hi) / 2;
    const int axis = f.depth & 1;
    const int32_t idx = order_[mid];
    if (idx != exclude) {
      const double d = Distance(q, points_[idx], metric);
      if (d < best.distance ||
          (d == best.distance && idx < best.index)) {
        best.distance = d;
        best.index = idx;
      }
    }
    const double split = Coord(points_[idx], axis);
    const bool go_left_first = Coord(q, axis) < split;
    const Frame near = go_left_first ? Frame{f.lo, mid, f.depth + 1}
                                     : Frame{mid + 1, f.hi, f.depth + 1};
    const Frame far = go_left_first ? Frame{mid + 1, f.hi, f.depth + 1}
                                    : Frame{f.lo, mid, f.depth + 1};
    if (AxisGap(q, axis, split) <= best.distance) stack.push_back(far);
    stack.push_back(near);
  }
  if (best.index < 0) best.distance = 0.0;
  return best;
}

std::vector<NnResult> KdTree::KNearest(const Point& q, int k, Metric metric,
                                       int32_t exclude) const {
  std::vector<NnResult> heap;  // max-heap by (distance, index)
  auto cmp = [](const NnResult& a, const NnResult& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;
  };
  struct Frame {
    int lo, hi, depth;
  };
  std::vector<Frame> stack;
  if (!order_.empty()) stack.push_back({0, static_cast<int>(order_.size()), 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.hi <= f.lo) continue;
    const int mid = (f.lo + f.hi) / 2;
    const int axis = f.depth & 1;
    const int32_t idx = order_[mid];
    const double bound = static_cast<int>(heap.size()) < k
                             ? std::numeric_limits<double>::infinity()
                             : heap.front().distance;
    if (idx != exclude) {
      const double d = Distance(q, points_[idx], metric);
      if (d < bound || static_cast<int>(heap.size()) < k) {
        heap.push_back({idx, d});
        std::push_heap(heap.begin(), heap.end(), cmp);
        if (static_cast<int>(heap.size()) > k) {
          std::pop_heap(heap.begin(), heap.end(), cmp);
          heap.pop_back();
        }
      }
    }
    const double split = Coord(points_[idx], axis);
    const bool go_left_first = Coord(q, axis) < split;
    const Frame near = go_left_first ? Frame{f.lo, mid, f.depth + 1}
                                     : Frame{mid + 1, f.hi, f.depth + 1};
    const Frame far = go_left_first ? Frame{mid + 1, f.hi, f.depth + 1}
                                    : Frame{f.lo, mid, f.depth + 1};
    const double new_bound = static_cast<int>(heap.size()) < k
                                 ? std::numeric_limits<double>::infinity()
                                 : heap.front().distance;
    if (AxisGap(q, axis, split) <= new_bound) stack.push_back(far);
    stack.push_back(near);
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

}  // namespace rnnhm
