// Deterministic skip list with stable node handles.
//
// CREST's line status (Section V-A) needs an ordered container supporting
//   * O(log n) insertion by key,
//   * O(1) erasure given a handle to the element (each NN-circle remembers
//     the handles of its two horizontal sides),
//   * bidirectional iteration from any element (walking changed intervals),
//   * O(log n) search for the first element >= a key.
// The paper suggests "a balanced search tree in which the data are stored in
// doubly linked leaf nodes (e.g. a B+-tree)"; a skip list with a doubly
// linked level-0 provides the same interface bounds and is simpler to make
// handle-stable. Tower heights are drawn from a deterministic SplitMix64
// stream so runs are reproducible.
#ifndef RNNHM_INDEX_SKIPLIST_H_
#define RNNHM_INDEX_SKIPLIST_H_

#include <array>
#include <cstdint>
#include <functional>

#include "common/check.h"
#include "common/rng.h"

namespace rnnhm {

/// Ordered multiset keyed by Key with attached Value payload.
/// Equal keys are allowed; among equal keys, newly inserted elements are
/// placed *after* existing ones (stable insertion order), which matches the
/// paper's "ties are broken arbitrarily" and keeps walks deterministic.
template <typename Key, typename Value, typename Less = std::less<Key>>
class SkipList {
 public:
  struct Node {
    Key key;
    Value value;
    Node* prev = nullptr;        // level-0 doubly linked list
    int height = 1;
    Node* next[1];               // flexible array: next[0..height-1]
  };

  static constexpr int kMaxHeight = 24;

  explicit SkipList(uint64_t seed = 0xdb15ebed0c57b0fdULL, Less less = Less())
      : less_(less), rng_state_(seed) {
    head_ = AllocateNode(kMaxHeight);
    for (int i = 0; i < kMaxHeight; ++i) head_->next[i] = nullptr;
    head_->prev = nullptr;
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  ~SkipList() {
    Node* n = head_->next[0];
    while (n != nullptr) {
      Node* next = n->next[0];
      FreeNode(n);
      n = next;
    }
    FreeNode(head_);
  }

  /// Number of stored elements.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// First element in key order, or nullptr if empty.
  Node* First() const { return head_->next[0]; }
  /// Last element in key order, or nullptr if empty.
  Node* Last() const { return last_; }

  /// Next element after n in key order (nullptr at the end).
  static Node* Next(Node* n) { return n->next[0]; }
  /// Previous element before n (nullptr at the beginning).
  Node* Prev(Node* n) const {
    Node* p = n->prev;
    return p == head_ ? nullptr : p;
  }

  /// Inserts (key, value) after all existing elements with equal key.
  /// Returns a stable handle valid until Erase.
  Node* Insert(const Key& key, const Value& value) {
    Node* update[kMaxHeight];
    Node* x = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      // Advance while next key <= key (ties insert after equals).
      while (x->next[level] != nullptr && !less_(key, x->next[level]->key)) {
        x = x->next[level];
      }
      update[level] = x;
    }
    const int height = RandomHeight();
    Node* n = AllocateNode(height);
    n->key = key;
    n->value = value;
    n->height = height;
    for (int i = 0; i < height; ++i) {
      n->next[i] = update[i]->next[i];
      update[i]->next[i] = n;
    }
    n->prev = update[0];
    if (n->next[0] != nullptr) {
      n->next[0]->prev = n;
    } else {
      last_ = n;
    }
    ++size_;
    return n;
  }

  /// Removes the element behind handle n. The handle becomes invalid.
  void Erase(Node* n) {
    RNNHM_DCHECK(n != nullptr && n != head_);
    // Locate predecessors at every level of n's tower. Equal keys need
    // care: the descending cursor x must never pass a node with key equal
    // to n's (it might overshoot n at a level where n is not linked), so x
    // advances only while strictly less; a per-level cursor y then walks
    // the equal-key run to find n's true predecessor at that level.
    Node* update[kMaxHeight];
    Node* x = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      while (x->next[level] != nullptr && less_(x->next[level]->key, n->key)) {
        x = x->next[level];
      }
      Node* y = x;
      while (y->next[level] != nullptr && y->next[level] != n &&
             !less_(n->key, y->next[level]->key)) {
        y = y->next[level];
      }
      update[level] = y;
    }
    // For levels above n's height, update[i] may not precede n; the
    // identity check below makes those no-ops.
    for (int i = 0; i < n->height; ++i) {
      if (update[i]->next[i] == n) {
        update[i]->next[i] = n->next[i];
      }
    }
    if (n->next[0] != nullptr) {
      n->next[0]->prev = n->prev;
    } else {
      last_ = (n->prev == head_) ? nullptr : n->prev;
    }
    --size_;
    FreeNode(n);
  }

  /// First element with key >= k (lower bound), or nullptr.
  Node* LowerBound(const Key& k) const {
    Node* x = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      while (x->next[level] != nullptr && less_(x->next[level]->key, k)) {
        x = x->next[level];
      }
    }
    return x->next[0];
  }

  /// First element with key > k (upper bound), or nullptr.
  Node* UpperBound(const Key& k) const {
    Node* x = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      while (x->next[level] != nullptr && !less_(k, x->next[level]->key)) {
        x = x->next[level];
      }
    }
    return x->next[0];
  }

 private:
  static Node* AllocateNode(int height) {
    const size_t bytes = sizeof(Node) + (height - 1) * sizeof(Node*);
    Node* n = static_cast<Node*>(::operator new(bytes));
    new (n) Node();
    n->height = height;
    return n;
  }

  static void FreeNode(Node* n) {
    n->~Node();
    ::operator delete(n);
  }

  int RandomHeight() {
    // Geometric(1/4) capped at kMaxHeight, from a deterministic stream.
    int h = 1;
    uint64_t bits = SplitMix64(rng_state_);
    while (h < kMaxHeight && (bits & 3) == 0) {
      ++h;
      bits >>= 2;
      if (bits == 0) bits = SplitMix64(rng_state_);
    }
    return h;
  }

  Less less_;
  uint64_t rng_state_;
  Node* head_ = nullptr;
  Node* last_ = nullptr;
  size_t size_ = 0;
};

}  // namespace rnnhm

#endif  // RNNHM_INDEX_SKIPLIST_H_
