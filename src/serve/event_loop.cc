#include "serve/event_loop.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#define RNNHM_HAVE_EPOLL 1
#endif

namespace rnnhm {

// --- Poller ---------------------------------------------------------------

Poller::Poller(Poller&& other) noexcept
    : backend_(other.backend_),
      epoll_fd_(std::exchange(other.epoll_fd_, -1)),
      poll_interest_(std::move(other.poll_interest_)) {
  other.poll_interest_.clear();
}

Poller& Poller::operator=(Poller&& other) noexcept {
  if (this != &other) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    backend_ = other.backend_;
    epoll_fd_ = std::exchange(other.epoll_fd_, -1);
    poll_interest_ = std::move(other.poll_interest_);
    other.poll_interest_.clear();
  }
  return *this;
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status Poller::Create(bool prefer_epoll, Poller* out) {
  Poller poller;
#if RNNHM_HAVE_EPOLL
  if (prefer_epoll) {
    const int fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (fd < 0) {
      return Status::Unavailable(std::string("epoll_create1: ") +
                                 std::strerror(errno));
    }
    poller.backend_ = Backend::kEpoll;
    poller.epoll_fd_ = fd;
    *out = std::move(poller);
    return Status::Ok();
  }
#else
  (void)prefer_epoll;
#endif
  poller.backend_ = Backend::kPoll;
  *out = std::move(poller);
  return Status::Ok();
}

namespace {

short PollMask(bool want_read, bool want_write) {
  short mask = 0;
  if (want_read) mask |= POLLIN;
  if (want_write) mask |= POLLOUT;
  return mask;
}

#if RNNHM_HAVE_EPOLL
uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}
#endif

}  // namespace

Status Poller::Add(int fd, bool want_read, bool want_write) {
#if RNNHM_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Status::Unavailable(std::string("epoll_ctl add: ") +
                                 std::strerror(errno));
    }
    return Status::Ok();
  }
#endif
  poll_interest_[fd] = PollMask(want_read, want_write);
  return Status::Ok();
}

Status Poller::Modify(int fd, bool want_read, bool want_write) {
#if RNNHM_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      return Status::Unavailable(std::string("epoll_ctl mod: ") +
                                 std::strerror(errno));
    }
    return Status::Ok();
  }
#endif
  poll_interest_[fd] = PollMask(want_read, want_write);
  return Status::Ok();
}

void Poller::Remove(int fd) {
#if RNNHM_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  poll_interest_.erase(fd);
}

Status Poller::Wait(int timeout_ms, std::vector<Event>* events) {
  events->clear();
#if RNNHM_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ready[64];
    const int n = ::epoll_wait(epoll_fd_, ready, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::Ok();
      return Status::Unavailable(std::string("epoll_wait: ") +
                                 std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      Event event;
      event.fd = ready[i].data.fd;
      event.readable = (ready[i].events & EPOLLIN) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.broken = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
    return Status::Ok();
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(poll_interest_.size());
  for (const auto& [fd, mask] : poll_interest_) {
    fds.push_back(pollfd{fd, mask, 0});
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return Status::Ok();
    return Status::Unavailable(std::string("poll: ") + std::strerror(errno));
  }
  for (const pollfd& pfd : fds) {
    if (pfd.revents == 0) continue;
    Event event;
    event.fd = pfd.fd;
    event.readable = (pfd.revents & POLLIN) != 0;
    event.writable = (pfd.revents & POLLOUT) != 0;
    event.broken = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events->push_back(event);
  }
  return Status::Ok();
}

// --- EventLoopServer ------------------------------------------------------

struct EventLoopServer::Connection {
  Connection(size_t max_payload, CircleSetRegistry* registry,
             size_t max_conn_sets)
      : assembler(max_payload), scope(registry, max_conn_sets) {}

  FrameAssembler assembler;
  // Registrations this connection owns (inline sets, delta derivations);
  // released when the connection closes — the destructor runs as the
  // connection leaves the map — so one client cannot pin sets forever.
  RegistrationScope scope;
  OutputBuffer output;
  std::chrono::steady_clock::time_point last_activity;
  bool peer_done = false;         // read side saw EOF or poison
  bool close_after_flush = false; // close once output drains
};

EventLoopServer::EventLoopServer(Listener listener, HeatmapEngine& engine,
                                 const ServeOptions& options)
    : listener_(std::move(listener)),
      wire_server_(engine),
      registry_(&engine.registry()),
      options_(options) {
  if (::pipe(wake_fds_) == 0) {
    MakeNonblocking(wake_fds_[0]);
    MakeNonblocking(wake_fds_[1]);
  } else {
    wake_fds_[0] = wake_fds_[1] = -1;
  }
}

EventLoopServer::~EventLoopServer() {
  for (auto& [fd, conn] : connections_) {
    (void)conn;
    ::close(fd);
  }
  connections_.clear();
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void EventLoopServer::RequestShutdown() {
  // Async-signal-safety audit: fetch_add on a lock-free atomic and
  // write(2) are both on the signal-safety(7) list; nothing here touches
  // the loop-confined state (the analysis enforces that — this method
  // does not hold loop_thread_).
  static_assert(std::atomic<int>::is_always_lock_free,
                "RequestShutdown must stay async-signal-safe");
  shutdown_requests_.fetch_add(1, std::memory_order_relaxed);
  if (wake_fds_[1] >= 0) {
    const uint8_t byte = 1;
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
}

void EventLoopServer::CloseConnection(int fd) {
  poller_.Remove(fd);
  ::close(fd);
  connections_.erase(fd);
}

void EventLoopServer::HandleReadable(int fd, Connection& conn) {
  uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.last_activity = std::chrono::steady_clock::now();
      conn.assembler.Feed(
          std::span<const uint8_t>(chunk, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      // Peer finished sending; serve what we have, then close once the
      // responses are flushed.
      conn.peer_done = true;
      conn.close_after_flush = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    // Hard connection error: drop it.
    conn.peer_done = true;
    conn.close_after_flush = true;
    break;
  }
  while (std::optional<std::vector<uint8_t>> frame = conn.assembler.Next()) {
    conn.output.AppendFrame(wire_server_.HandleFrame(*frame, &conn.scope));
  }
  if (conn.assembler.poisoned() && !conn.peer_done) {
    // The framing is unrecoverable: answer with the protocol error and
    // hang up after the reply drains.
    const Status& status = conn.assembler.status();
    conn.output.AppendFrame(
        EncodeErrorResponse(ToWireStatus(status.code), status.message));
    conn.peer_done = true;
    conn.close_after_flush = true;
  }
}

void EventLoopServer::UpdateInterest(int fd, Connection& conn) {
  const bool want_read = !conn.peer_done;
  const bool want_write = !conn.output.empty();
  poller_.Modify(fd, want_read, want_write);
}

Status EventLoopServer::Run() {
  // The calling thread becomes the loop thread: it holds the confinement
  // role for the whole serve loop, licensing every touch of the guarded
  // loop state (connections_, poller_, draining_, drain_deadline_).
  ThreadRoleGuard loop(&loop_thread_);
  if (!listener_.valid()) {
    return Status::InvalidArgument("event loop needs a bound listener");
  }
  if (wake_fds_[0] < 0) {
    return Status::Unavailable("failed to create the shutdown wake pipe");
  }
  if (const Status status = Poller::Create(options_.prefer_epoll, &poller_);
      !status.ok()) {
    return status;
  }
  if (const Status status = poller_.Add(wake_fds_[0], true, false);
      !status.ok()) {
    return status;
  }
  if (const Status status = poller_.Add(listener_.fd(), true, false);
      !status.ok()) {
    return status;
  }

  const auto idle_limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<Poller::Event> events;
  for (;;) {
    // Shutdown bookkeeping first, so a request observed between waits is
    // honored before blocking again.
    const int requests = shutdown_requests_.load(std::memory_order_relaxed);
    if (requests >= 2) break;  // hard stop
    if (requests >= 1 && !draining_) {
      draining_ = true;
      poller_.Remove(listener_.fd());
      listener_.Close();
      drain_deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
    }
    if (draining_ && connections_.empty()) break;  // clean drain

    // The wait bound: the nearest of the drain deadline and any idle
    // deadline; -1 (forever) when neither applies.
    const auto now = std::chrono::steady_clock::now();
    int timeout_ms = -1;
    auto bound_timeout = [&timeout_ms,
                          now](std::chrono::steady_clock::time_point dl) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(dl - now)
              .count();
      const int ms = remaining < 0 ? 0 : static_cast<int>(
                                             std::min<long long>(
                                                 remaining, 60 * 1000));
      if (timeout_ms < 0 || ms < timeout_ms) timeout_ms = ms;
    };
    if (draining_) {
      if (now >= drain_deadline_) break;  // drain bound elapsed
      bound_timeout(drain_deadline_);
    }
    if (options_.idle_timeout_ms > 0) {
      for (const auto& [fd, conn] : connections_) {
        (void)fd;
        bound_timeout(conn->last_activity + idle_limit);
      }
    }

    if (const Status status = poller_.Wait(timeout_ms, &events);
        !status.ok()) {
      return status;
    }

    for (const Poller::Event& event : events) {
      if (event.fd == wake_fds_[0]) {
        uint8_t drain[64];
        while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        continue;  // counters are re-read at the top of the loop
      }
      if (event.fd == listener_.fd() && listener_.valid()) {
        for (;;) {
          int client_fd = -1;
          const Status status = listener_.Accept(&client_fd);
          if (!status.ok()) break;  // would-block or transient error
          if (draining_ ||
              connections_.size() >=
                  static_cast<size_t>(options_.max_connections)) {
            ::close(client_fd);
            continue;
          }
          auto conn = std::make_unique<Connection>(
              kMaxFramePayloadBytes, registry_, options_.max_conn_sets);
          conn->last_activity = std::chrono::steady_clock::now();
          if (!poller_.Add(client_fd, true, false).ok()) {
            ::close(client_fd);
            continue;
          }
          connections_.emplace(client_fd, std::move(conn));
        }
        continue;
      }
      auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      if (event.readable || event.broken) {
        HandleReadable(event.fd, conn);
      }
      if (event.writable && !conn.output.empty()) {
        if (conn.output.WriteSome(event.fd) < 0) {
          CloseConnection(event.fd);
          continue;
        }
        conn.last_activity = std::chrono::steady_clock::now();
      } else if (!conn.output.empty()) {
        // Fresh responses queued by this read: try an optimistic write
        // now instead of waiting one poll cycle.
        if (conn.output.WriteSome(event.fd) < 0) {
          CloseConnection(event.fd);
          continue;
        }
      }
      if (conn.output.empty() && conn.close_after_flush) {
        CloseConnection(event.fd);
        continue;
      }
      if (conn.peer_done && conn.output.empty()) {
        CloseConnection(event.fd);
        continue;
      }
      UpdateInterest(event.fd, conn);
    }

    // Idle sweep.
    if (options_.idle_timeout_ms > 0) {
      const auto cutoff = std::chrono::steady_clock::now() - idle_limit;
      std::vector<int> stale;
      for (const auto& [fd, conn] : connections_) {
        if (conn->last_activity <= cutoff) stale.push_back(fd);
      }
      for (const int fd : stale) CloseConnection(fd);
    }
  }

  // Loop exit: close whatever is left (hard stop or drain bound).
  std::vector<int> open;
  open.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) {
    (void)conn;
    open.push_back(fd);
  }
  for (const int fd : open) CloseConnection(fd);
  listener_.Close();
  return Status::Ok();
}

// --- Signal wiring --------------------------------------------------------

namespace {

// Signal-handler target. Audit (see also RequestShutdown): the handler
// performs one relaxed atomic pointer load and calls RequestShutdown,
// whose body is an atomic increment plus a pipe write — every step is
// async-signal-safe. The pointer is only as alive as the caller keeps
// it: InstallShutdownSignalHandlers(nullptr) must run before the server
// is destroyed.
std::atomic<EventLoopServer*> g_signal_server{nullptr};
static_assert(std::atomic<EventLoopServer*>::is_always_lock_free,
              "signal handler must not take a lock to load the target");

void ShutdownSignalHandler(int /*signum*/) {
  EventLoopServer* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->RequestShutdown();
}

}  // namespace

void InstallShutdownSignalHandlers(EventLoopServer* server) {
  g_signal_server.store(server, std::memory_order_relaxed);
  struct sigaction action{};
  if (server != nullptr) {
    action.sa_handler = ShutdownSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: the loop re-checks on EINTR
  } else {
    action.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

}  // namespace rnnhm
