// Multi-process sharding: a fleet of shared-nothing engine workers behind
// one routing front.
//
// ShardFleet forks ServeOptions::num_shards worker processes. Each worker
// owns a whole serving stack — HeatmapEngine (its own registry, cache and
// threads), EventLoopServer — and listens on its own Unix-domain socket
// under ServeOptions::socket_dir. Nothing is shared between workers, so
// there is no cross-process synchronization anywhere in the hot path.
// The parent binds every listener BEFORE forking: a connection raced in
// before a worker reaches its accept loop just queues in that listener's
// backlog, so the fleet is connectable the moment Spawn returns.
//
// ShardRouter is the front process's loop. It accepts client connections
// (TCP or Unix), peeks each request frame's routing hash (PeekRouteInfo —
// no full decode) and forwards the frame verbatim to shard
// `hash % num_shards`. Hash-affinity is what makes inline-once
// registration work across processes: the first request for a set
// carries the circles inline, lands on the owning shard and registers
// there; every later by-hash request for the same set hashes to the same
// shard, where the set is known. Delta frames route by their *base* hash
// (the shard holding the base applies the edits), and the router records
// the derived hash's affinity to that shard so follow-up requests — and
// chained deltas — for the derived set land where it was registered. Responses are forwarded back verbatim
// (so a routed response is bit-identical to a direct engine Execute) and
// re-ordered per client: shard replies arrive in each shard's FIFO
// order, and a per-client slot queue restores the client's submission
// order. A stats request fans out to every shard and comes back as one
// merged WireStatsReply with `shards` = fleet size.
#ifndef RNNHM_SERVE_SHARD_ROUTER_H_
#define RNNHM_SERVE_SHARD_ROUTER_H_

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/event_loop.h"
#include "serve/frame_buffer.h"
#include "serve/options.h"
#include "serve/transport.h"

namespace rnnhm {

/// A set of forked worker processes, one engine each, listening on
/// per-shard Unix-domain sockets. Move-free (construct in place via
/// Spawn); Shutdown (or destruction) SIGTERMs and reaps the workers.
///
/// Concurrency model: thread-compatible, no locks by design — the fleet
/// is confined to the supervising thread (Spawn's fork requirement below
/// already forces single-threaded use), and cross-*process* isolation is
/// total: workers share no memory, so there is nothing to annotate.
class ShardFleet {
 public:
  ShardFleet() = default;
  ~ShardFleet();

  ShardFleet(const ShardFleet&) = delete;
  ShardFleet& operator=(const ShardFleet&) = delete;

  /// Binds `options.num_shards` listeners under `options.socket_dir`
  /// (empty derives /tmp/rnnhm-fleet-<pid>), then forks one worker per
  /// listener. Worker engines take `options.threads/slabs/cache_bytes`.
  /// Call from a single-threaded process state (before spawning local
  /// engine threads): fork does not carry sibling threads into children.
  static Status Spawn(const ServeOptions& options, ShardFleet* out);

  /// The per-shard socket paths, index == shard id.
  const std::vector<std::string>& socket_paths() const {
    return socket_paths_;
  }

  int num_shards() const { return static_cast<int>(pids_.size()); }

  /// The worker process of one shard — lets a supervisor (or a fault
  /// test) target an individual worker.
  pid_t worker_pid(int shard) const { return pids_[shard]; }

  /// SIGTERMs every worker (triggering its graceful drain) and reaps it;
  /// escalates to SIGKILL for a worker that outlives the drain bound.
  void Shutdown();

 private:
  std::vector<pid_t> pids_;
  std::vector<std::string> socket_paths_;
  /// The parent's copies of the worker listeners: fds closed right after
  /// fork (CloseFdOnly — the children own the accepting), paths retained
  /// so Shutdown can unlink any socket file a killed worker left behind.
  std::vector<Listener> parent_listeners_;
  std::string socket_dir_;
  bool owns_socket_dir_ = false;
};

/// The routing front: one nonblocking loop multiplexing client
/// connections and the per-shard upstream connections.
class ShardRouter {
 public:
  /// Takes the already-bound front listener and the shard socket paths
  /// (index == shard id; connections are opened inside Run).
  ShardRouter(Listener front, std::vector<std::string> shard_paths,
              const ServeOptions& options);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Connects to every shard, then serves until shutdown completes (same
  /// lame-duck drain protocol as EventLoopServer). Single-threaded: the
  /// calling thread becomes the loop thread and the sole holder of
  /// `loop_thread_` below.
  Status Run() RNNHM_EXCLUDES(loop_thread_);

  /// Async-signal-safe and thread-safe; first call drains, second stops.
  /// Not a holder of `loop_thread_` — the analysis proves it never
  /// touches the loop-confined routing state.
  void RequestShutdown();

  const Listener& listener() const { return front_; }

 private:
  struct Client;
  struct Shard;
  struct Tag;

  void CloseClient(int fd) RNNHM_REQUIRES(loop_thread_);
  void HandleClientReadable(int fd, Client& client)
      RNNHM_REQUIRES(loop_thread_);
  void RouteFrame(Client& client, const std::vector<uint8_t>& frame)
      RNNHM_REQUIRES(loop_thread_);
  /// Pins `hash` to `shard_index` for future route lookups (FIFO-bounded).
  void RecordAffinity(uint64_t hash, size_t shard_index)
      RNNHM_REQUIRES(loop_thread_);
  void HandleShardReadable(size_t shard_index) RNNHM_REQUIRES(loop_thread_);
  /// Resolves every outstanding tag of a dying shard with an error reply.
  void FailShard(size_t shard_index, const std::string& reason)
      RNNHM_REQUIRES(loop_thread_);
  /// Moves a client's ready front slots into its output buffer and pushes
  /// bytes; closes the client when it is finished.
  void FlushClient(int fd, Client& client) RNNHM_REQUIRES(loop_thread_);
  void UpdateClientInterest(int fd, Client& client)
      RNNHM_REQUIRES(loop_thread_);
  void UpdateShardInterest(Shard& shard) RNNHM_REQUIRES(loop_thread_);

  Listener front_;
  const std::vector<std::string> shard_paths_;
  const ServeOptions options_;

  /// Thread-confinement capability (see EventLoopServer::loop_thread_):
  /// Run holds it for its whole body; everything below is loop-thread
  /// state, so a cross-thread touch is a compile error.
  ThreadRole loop_thread_;
  Poller poller_ RNNHM_GUARDED_BY(loop_thread_);
  std::vector<std::unique_ptr<Shard>> shards_ RNNHM_GUARDED_BY(loop_thread_);
  std::map<int, std::unique_ptr<Client>> clients_  // by fd
      RNNHM_GUARDED_BY(loop_thread_);
  std::map<uint64_t, int> client_fd_by_id_ RNNHM_GUARDED_BY(loop_thread_);
  std::map<int, size_t> shard_index_by_fd_ RNNHM_GUARDED_BY(loop_thread_);
  /// Derived-set affinity (see RouteFrame): content hash -> shard that
  /// registered it via a delta. FIFO-bounded so a churning workload
  /// cannot grow the router without bound; an evicted affinity entry
  /// degrades to hash % N routing (a clean kUnknownCircleSet at worst).
  std::unordered_map<uint64_t, size_t> affinity_
      RNNHM_GUARDED_BY(loop_thread_);
  std::deque<uint64_t> affinity_fifo_ RNNHM_GUARDED_BY(loop_thread_);
  static constexpr size_t kMaxAffinityEntries = size_t{1} << 16;
  uint64_t next_client_id_ RNNHM_GUARDED_BY(loop_thread_) = 1;
  /// Self-pipe [read, write]: fixed after construction; the write end is
  /// the one thing RequestShutdown may touch besides the atomic below.
  int wake_fds_[2] = {-1, -1};
  std::atomic<int> shutdown_requests_{0};
  bool draining_ RNNHM_GUARDED_BY(loop_thread_) = false;
  std::chrono::steady_clock::time_point drain_deadline_
      RNNHM_GUARDED_BY(loop_thread_){};
};

/// Points SIGINT/SIGTERM at `router->RequestShutdown()` (nullptr
/// restores the default dispositions). Independent of the
/// EventLoopServer handler installer.
void InstallRouterSignalHandlers(ShardRouter* router);

}  // namespace rnnhm

#endif  // RNNHM_SERVE_SHARD_ROUTER_H_
