#include "serve/frame_buffer.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rnnhm {

namespace {

// Compact once the consumed prefix dominates, so long-lived connections
// do not grow their buffers without bound.
void MaybeCompact(std::vector<uint8_t>* buffer, size_t* pos) {
  if (*pos >= 4096 && *pos * 2 >= buffer->size()) {
    buffer->erase(buffer->begin(),
                  buffer->begin() + static_cast<std::ptrdiff_t>(*pos));
    *pos = 0;
  }
}

}  // namespace

FrameAssembler::FrameAssembler(size_t max_payload)
    : max_payload_(max_payload) {}

void FrameAssembler::Feed(std::span<const uint8_t> bytes) {
  if (poisoned()) return;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<uint8_t>> FrameAssembler::Next() {
  if (poisoned()) return std::nullopt;
  if (buffer_.size() - pos_ < 4) return std::nullopt;
  uint32_t length = 0;
  for (int i = 3; i >= 0; --i) {
    length = (length << 8) | buffer_[pos_ + static_cast<size_t>(i)];
  }
  if (length > max_payload_) {
    status_ = Status::ResourceExhausted("frame payload over the size ceiling");
    buffer_.clear();
    pos_ = 0;
    return std::nullopt;
  }
  if (buffer_.size() - pos_ < 4 + static_cast<size_t>(length)) {
    return std::nullopt;
  }
  std::vector<uint8_t> payload(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4),
                               buffer_.begin() +
                                   static_cast<std::ptrdiff_t>(pos_ + 4 + length));
  pos_ += 4 + static_cast<size_t>(length);
  MaybeCompact(&buffer_, &pos_);
  return payload;
}

void OutputBuffer::Append(std::span<const uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void OutputBuffer::AppendFrame(std::span<const uint8_t> payload) {
  const uint32_t length = static_cast<uint32_t>(payload.size());
  uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<uint8_t>(length >> (8 * i));
  }
  buffer_.insert(buffer_.end(), prefix, prefix + 4);
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
}

std::ptrdiff_t OutputBuffer::WriteSome(int fd) {
  size_t total = 0;
  while (pos_ < buffer_.size()) {
    const size_t pending = buffer_.size() - pos_;
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    std::ptrdiff_t n =
        ::send(fd, buffer_.data() + pos_, pending, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, buffer_.data() + pos_, pending);
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      return -1;
    }
    if (n == 0) break;
    pos_ += static_cast<size_t>(n);
    total += static_cast<size_t>(n);
  }
  if (empty()) {
    buffer_.clear();
    pos_ = 0;
  } else {
    MaybeCompact(&buffer_, &pos_);
  }
  return static_cast<std::ptrdiff_t>(total);
}

}  // namespace rnnhm
