#include "serve/shard_router.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "heatmap/heatmap.h"
#include "heatmap/influence.h"
#include "query/heatmap_engine.h"
#include "query/wire.h"
#include "tile/tile_plan.h"

namespace rnnhm {

// --- ShardFleet -----------------------------------------------------------

namespace {

/// The worker process body: a whole serving stack over the inherited
/// listener. Never returns.
[[noreturn]] void RunShardWorker(Listener listener,
                                 const ServeOptions& options) {
  SizeInfluence measure;
  HeatmapEngineOptions engine_options;
  engine_options.num_threads = options.threads;
  engine_options.slabs_per_request = options.slabs;
  engine_options.cache_bytes = options.cache_bytes;
  // Bounded retention: connections own their registrations (released on
  // disconnect by the per-connection scope), and fully released sets stay
  // resolvable-by-hash up to the retention budget, LRU-evicted past it.
  CircleSetRegistryOptions registry_options;
  registry_options.max_unpinned_entries = options.retain_sets;
  engine_options.registry =
      std::make_shared<CircleSetRegistry>(registry_options);
  HeatmapEngine engine(measure, engine_options);
  ServeOptions worker_options = options;
  // The router holds one long-lived connection per worker; an idle
  // timeout here would sever the fleet under a quiet workload.
  worker_options.idle_timeout_ms = 0;
  EventLoopServer server(std::move(listener), engine, worker_options);
  InstallShutdownSignalHandlers(&server);
  const Status status = server.Run();
  InstallShutdownSignalHandlers(nullptr);
  std::_Exit(status.ok() ? 0 : 1);
}

}  // namespace

ShardFleet::~ShardFleet() { Shutdown(); }

Status ShardFleet::Spawn(const ServeOptions& options, ShardFleet* out) {
  if (options.num_shards <= 0) {
    return Status::InvalidArgument("a fleet needs at least one shard");
  }
  std::string dir = options.socket_dir;
  bool owns_dir = false;
  if (dir.empty()) {
    dir = "/tmp/rnnhm-fleet-" + std::to_string(::getpid());
    owns_dir = true;
  }
  ::mkdir(dir.c_str(), 0700);  // fine if it already exists

  // Bind every listener BEFORE forking: the fleet is connectable the
  // moment Spawn returns — an early connection queues in the backlog
  // until its worker reaches the accept loop.
  std::vector<Listener> listeners(options.num_shards);
  std::vector<std::string> paths;
  for (int i = 0; i < options.num_shards; ++i) {
    const std::string path = dir + "/shard-" + std::to_string(i) + ".sock";
    if (const Status status = Listener::ListenUnix(path, &listeners[i]);
        !status.ok()) {
      return status;
    }
    paths.push_back(path);
  }

  std::vector<pid_t> pids;
  for (int i = 0; i < options.num_shards; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      const Status status = Status::Unavailable(std::string("fork: ") +
                                                std::strerror(errno));
      for (const pid_t child : pids) ::kill(child, SIGKILL);
      for (const pid_t child : pids) ::waitpid(child, nullptr, 0);
      return status;
    }
    if (pid == 0) {
      // Child: keep only shard i's listener fd; raw-close the siblings'
      // (no unlink — their owners are still serving on those paths).
      for (int j = 0; j < options.num_shards; ++j) {
        if (j != i) ::close(listeners[j].fd());
      }
      RunShardWorker(std::move(listeners[i]), options);
    }
    pids.push_back(pid);
  }

  // Parent: drop the accepting fds (the children own them now) but keep
  // the paths for post-shutdown cleanup.
  for (Listener& listener : listeners) listener.CloseFdOnly();
  out->Shutdown();  // replace any previous fleet
  out->pids_ = std::move(pids);
  out->socket_paths_ = std::move(paths);
  out->parent_listeners_ = std::move(listeners);
  out->socket_dir_ = dir;
  out->owns_socket_dir_ = owns_dir;
  return Status::Ok();
}

void ShardFleet::Shutdown() {
  if (!pids_.empty()) {
    for (const pid_t pid : pids_) ::kill(pid, SIGTERM);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (const pid_t pid : pids_) {
      for (;;) {
        const pid_t done = ::waitpid(pid, nullptr, WNOHANG);
        if (done == pid || (done < 0 && errno == ECHILD)) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          ::kill(pid, SIGKILL);
          ::waitpid(pid, nullptr, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    pids_.clear();
  }
  for (Listener& listener : parent_listeners_) listener.Close();
  parent_listeners_.clear();
  socket_paths_.clear();
  if (owns_socket_dir_ && !socket_dir_.empty()) {
    ::rmdir(socket_dir_.c_str());
  }
  socket_dir_.clear();
  owns_socket_dir_ = false;
}

// --- ShardRouter ----------------------------------------------------------

struct ShardRouter::Tag {
  uint64_t client_id = 0;
  uint64_t seq = 0;
  /// By-tile fan-out only: which tile of the slot's decomposition this
  /// forwarded sub-request computes; -1 for ordinary forwards.
  int32_t tile_id = -1;
};

namespace {

/// One outstanding response position in a client's submission order.
struct RouterSlot {
  bool ready = false;
  std::vector<uint8_t> payload;
  // Stats fan-out bookkeeping (is_stats slots only).
  bool is_stats = false;
  int stats_remaining = 0;
  bool stats_failed = false;
  std::string stats_error;
  WireStatsReply merged;
  // Tile fan-out bookkeeping (is_tile slots only): fragments stitch into
  // `tile_grid` as they arrive; any failed fragment fails the whole slot —
  // the client gets one error response, never a partially stitched grid.
  bool is_tile = false;
  int tile_remaining = 0;
  bool tile_failed = false;
  WireStatus tile_status = WireStatus::kOk;
  std::string tile_error;
  std::vector<TileWindow> tile_windows;  // indexed by tile id
  std::optional<HeatmapGrid> tile_grid;
  CrestStats tile_stats;
  CrestL2Stats tile_l2;
  SweepCacheStats tile_cache;
  bool tile_from_cache = true;
};

void FailTileSlot(RouterSlot& slot, WireStatus status,
                  const std::string& reason) {
  if (slot.tile_failed) return;  // first failure names the error
  slot.tile_failed = true;
  slot.tile_status = status;
  slot.tile_error = reason;
}

void FoldTileFragment(RouterSlot& slot, int32_t tile_id,
                      const std::vector<uint8_t>& payload) {
  std::string error;
  const std::optional<WireResponse> response = DecodeResponse(payload, &error);
  if (!response.has_value()) {
    FailTileSlot(slot, WireStatus::kServerError,
                 "undecodable tile fragment response: " + error);
    return;
  }
  if (response->status != WireStatus::kOk) {
    FailTileSlot(slot, response->status,
                 "tile fragment failed: " + response->error);
    return;
  }
  const TileWindow& window = slot.tile_windows[tile_id];
  const HeatmapResponse& fragment = *response->response;
  if (fragment.grid.width() != window.width() ||
      fragment.grid.height() != window.height()) {
    FailTileSlot(slot, WireStatus::kServerError,
                 "tile fragment has the wrong window size");
    return;
  }
  TilePlan::StitchFragment(window, fragment.grid, &*slot.tile_grid);
  slot.tile_stats.num_circles += fragment.stats.num_circles;
  slot.tile_stats.num_skipped_circles += fragment.stats.num_skipped_circles;
  slot.tile_stats.num_events += fragment.stats.num_events;
  slot.tile_stats.num_labelings += fragment.stats.num_labelings;
  slot.tile_stats.num_merged_intervals += fragment.stats.num_merged_intervals;
  slot.tile_stats.num_elements_walked += fragment.stats.num_elements_walked;
  slot.tile_l2.num_circles += fragment.l2_stats.num_circles;
  slot.tile_l2.num_skipped_circles += fragment.l2_stats.num_skipped_circles;
  slot.tile_l2.num_events += fragment.l2_stats.num_events;
  slot.tile_l2.num_cross_events += fragment.l2_stats.num_cross_events;
  slot.tile_l2.num_labelings += fragment.l2_stats.num_labelings;
  slot.tile_cache.hits += fragment.cache.hits;
  slot.tile_cache.misses += fragment.cache.misses;
  slot.tile_cache.insertions += fragment.cache.insertions;
  slot.tile_cache.evictions += fragment.cache.evictions;
  slot.tile_cache.entries += fragment.cache.entries;
  slot.tile_cache.bytes += fragment.cache.bytes;
  slot.tile_from_cache = slot.tile_from_cache && fragment.from_cache;
}

}  // namespace

struct ShardRouter::Client {
  explicit Client(uint64_t id_in)
      : id(id_in), assembler(kMaxFramePayloadBytes) {}

  uint64_t id;
  FrameAssembler assembler;
  OutputBuffer output;
  /// Responses owed to this client, in submission order; front() flushes
  /// once ready. slots[k] answers request base_seq + k.
  std::deque<RouterSlot> slots;
  uint64_t base_seq = 0;
  uint64_t next_seq = 0;
  std::chrono::steady_clock::time_point last_activity;
  bool peer_done = false;
};

struct ShardRouter::Shard {
  Shard() : assembler(kMaxFramePayloadBytes) {}

  int fd = -1;
  FrameAssembler assembler;
  OutputBuffer output;
  /// Requests forwarded but unanswered, in forwarding order — a worker
  /// answers its stream strictly in order, so response k resolves
  /// pending[k].
  std::deque<Tag> pending;
  bool alive = false;
};

ShardRouter::ShardRouter(Listener front, std::vector<std::string> shard_paths,
                         const ServeOptions& options)
    : front_(std::move(front)),
      shard_paths_(std::move(shard_paths)),
      options_(options) {
  shards_.reserve(shard_paths_.size());
  for (size_t i = 0; i < shard_paths_.size(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (::pipe(wake_fds_) == 0) {
    MakeNonblocking(wake_fds_[0]);
    MakeNonblocking(wake_fds_[1]);
  } else {
    wake_fds_[0] = wake_fds_[1] = -1;
  }
}

ShardRouter::~ShardRouter() {
  for (const auto& [fd, client] : clients_) {
    (void)client;
    ::close(fd);
  }
  for (const auto& shard : shards_) {
    if (shard->fd >= 0) ::close(shard->fd);
  }
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void ShardRouter::RequestShutdown() {
  // Async-signal-safe: a lock-free atomic bump plus a pipe write, and
  // (enforced by the analysis — no loop_thread_ held here) no touch of
  // the loop-confined routing state.
  static_assert(std::atomic<int>::is_always_lock_free,
                "RequestShutdown must stay async-signal-safe");
  shutdown_requests_.fetch_add(1, std::memory_order_relaxed);
  if (wake_fds_[1] >= 0) {
    const uint8_t byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
}

void ShardRouter::CloseClient(int fd) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  client_fd_by_id_.erase(it->second->id);
  poller_.Remove(fd);
  ::close(fd);
  clients_.erase(it);
}

void ShardRouter::RouteFrame(Client& client,
                             const std::vector<uint8_t>& frame) {
  const uint64_t seq = client.next_seq++;
  (void)seq;  // == base_seq + slots.size(), by construction
  client.slots.emplace_back();
  RouterSlot& slot = client.slots.back();

  if (IsStatsRequest(frame)) {
    if (const Status status = DecodeStatsRequest(frame); !status.ok()) {
      slot.ready = true;
      slot.payload =
          EncodeErrorResponse(ToWireStatus(status.code), status.message);
      return;
    }
    slot.is_stats = true;
    int fanned = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      if (!shard.alive) continue;
      shard.output.AppendFrame(frame);
      shard.pending.push_back(Tag{client.id, client.next_seq - 1});
      poller_.Modify(shard.fd, true, true);
      ++fanned;
    }
    if (fanned == 0) {
      slot.is_stats = false;
      slot.ready = true;
      slot.payload =
          EncodeErrorResponse(WireStatus::kServerError, "no live shards");
    } else {
      slot.stats_remaining = fanned;
    }
    return;
  }

  const std::optional<WireRouteInfo> route = PeekRouteInfo(frame);
  if (!route.has_value()) {
    slot.ready = true;
    slot.payload = EncodeErrorResponse(
        WireStatus::kMalformedRequest,
        "router could not parse the request header");
    return;
  }
  // By-tile mode: a plain heat-map request is decomposed here — one tile
  // sub-request per non-empty tile window, fanned to shard
  // tile_id % num_shards — and the fragments stitch back into one
  // response. Delta frames keep hash/affinity routing (a splice needs the
  // whole base raster on one shard) and tile frames pass through like
  // plain ones.
  if (options_.route_by_tile && !route->is_delta && !route->is_tile) {
    std::string decode_error;
    const std::optional<WireRequest> request =
        DecodeRequest(frame, &decode_error);
    if (!request.has_value()) {
      slot.ready = true;
      slot.payload =
          EncodeErrorResponse(WireStatus::kMalformedRequest, decode_error);
      return;
    }
    const int tile_rows = options_.tile_rows;
    const int tile_cols = options_.tile_cols;
    slot.tile_windows = TileWindows(request->domain, request->width,
                                    request->height, tile_rows, tile_cols);
    // All-or-nothing: verify every target shard is up before sending any
    // sub-request, so a down shard yields one clean error, not a half-fan.
    for (int tile_id = 0; tile_id < tile_rows * tile_cols; ++tile_id) {
      if (slot.tile_windows[tile_id].empty()) continue;
      if (!shards_[tile_id % shards_.size()]->alive) {
        slot.ready = true;
        slot.payload = EncodeErrorResponse(
            WireStatus::kServerError,
            "shard " + std::to_string(tile_id % shards_.size()) +
                " is down");
        return;
      }
    }
    slot.is_tile = true;
    slot.tile_grid.emplace(request->width, request->height, request->domain,
                           0.0);
    int fanned = 0;
    for (int tile_id = 0; tile_id < tile_rows * tile_cols; ++tile_id) {
      if (slot.tile_windows[tile_id].empty()) continue;
      WireTileRequest sub;
      sub.metric = request->metric;
      sub.set_hash = request->set_hash;
      sub.inline_circles = request->inline_circles;
      sub.circles = request->circles;
      sub.domain = request->domain;
      sub.width = request->width;
      sub.height = request->height;
      sub.tile_rows = tile_rows;
      sub.tile_cols = tile_cols;
      sub.tile_id = tile_id;
      const size_t shard_index = tile_id % shards_.size();
      Shard& shard = *shards_[shard_index];
      shard.output.AppendFrame(EncodeTileRequest(sub));
      shard.pending.push_back(Tag{client.id, client.next_seq - 1, tile_id});
      poller_.Modify(shard.fd, true, true);
      ++fanned;
    }
    // The windows partition a positive raster, so at least one is
    // non-empty and the slot always has fragments to wait for.
    slot.tile_remaining = fanned;
    return;
  }
  // Affinity first, hash partition second: a set derived by a delta lives
  // on the shard that held its base (which is where the delta was routed),
  // not necessarily at derived_hash % N — so requests and chained deltas
  // for a derived hash must follow the recorded affinity.
  const auto affinity_it = affinity_.find(route->route_hash);
  const size_t shard_index = affinity_it != affinity_.end()
                                 ? affinity_it->second
                                 : route->route_hash % shards_.size();
  Shard& shard = *shards_[shard_index];
  if (!shard.alive) {
    slot.ready = true;
    slot.payload = EncodeErrorResponse(
        WireStatus::kServerError,
        "shard " + std::to_string(shard_index) + " is down");
    return;
  }
  if (route->is_delta) {
    RecordAffinity(route->derived_hash, shard_index);
  }
  shard.output.AppendFrame(frame);
  shard.pending.push_back(Tag{client.id, client.next_seq - 1});
  poller_.Modify(shard.fd, true, true);
}

void ShardRouter::RecordAffinity(uint64_t hash, size_t shard_index) {
  const auto [it, inserted] = affinity_.emplace(hash, shard_index);
  if (!inserted) {
    it->second = shard_index;  // a re-derivation may land elsewhere
    return;
  }
  affinity_fifo_.push_back(hash);
  while (affinity_fifo_.size() > kMaxAffinityEntries) {
    affinity_.erase(affinity_fifo_.front());
    affinity_fifo_.pop_front();
  }
}

void ShardRouter::HandleClientReadable(int fd, Client& client) {
  uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      client.last_activity = std::chrono::steady_clock::now();
      client.assembler.Feed(
          std::span<const uint8_t>(chunk, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      client.peer_done = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    client.peer_done = true;
    break;
  }
  while (std::optional<std::vector<uint8_t>> frame = client.assembler.Next()) {
    RouteFrame(client, *frame);
  }
  if (client.assembler.poisoned() && !client.peer_done) {
    const Status& status = client.assembler.status();
    client.slots.emplace_back();
    RouterSlot& slot = client.slots.back();
    ++client.next_seq;
    slot.ready = true;
    slot.payload =
        EncodeErrorResponse(ToWireStatus(status.code), status.message);
    client.peer_done = true;
  }
}

void ShardRouter::FlushClient(int fd, Client& client) {
  while (!client.slots.empty() && client.slots.front().ready) {
    client.output.AppendFrame(client.slots.front().payload);
    client.slots.pop_front();
    ++client.base_seq;
  }
  if (!client.output.empty()) {
    if (client.output.WriteSome(fd) < 0) {
      CloseClient(fd);
      return;
    }
  }
  if (client.peer_done && client.slots.empty() && client.output.empty()) {
    CloseClient(fd);
    return;
  }
  UpdateClientInterest(fd, client);
}

void ShardRouter::UpdateClientInterest(int fd, Client& client) {
  poller_.Modify(fd, !client.peer_done, !client.output.empty());
}

void ShardRouter::UpdateShardInterest(Shard& shard) {
  if (!shard.alive) return;
  poller_.Modify(shard.fd, true, !shard.output.empty());
}

namespace {

/// Folds one shard's answer (or its loss) into the slot; returns true
/// when the slot just became ready. `tile_id` is the forwarding tag's
/// tile (-1 for ordinary forwards) — it names the window a tile
/// fragment stitches into.
bool ResolveSlot(RouterSlot& slot, int32_t tile_id,
                 const std::vector<uint8_t>& payload, bool failed,
                 const std::string& reason) {
  if (slot.is_tile) {
    if (failed) {
      FailTileSlot(slot, WireStatus::kServerError, reason);
    } else {
      FoldTileFragment(slot, tile_id, payload);
    }
    if (--slot.tile_remaining > 0) return false;
    if (slot.tile_failed) {
      slot.payload = EncodeErrorResponse(slot.tile_status, slot.tile_error);
    } else {
      slot.payload = EncodeResponse(
          HeatmapResponse{std::move(*slot.tile_grid), slot.tile_stats,
                          slot.tile_l2, slot.tile_from_cache,
                          slot.tile_cache});
    }
    slot.ready = true;
    return true;
  }
  if (!slot.is_stats) {
    slot.payload = failed
                       ? EncodeErrorResponse(WireStatus::kServerError, reason)
                       : payload;
    slot.ready = true;
    return true;
  }
  if (failed) {
    slot.stats_failed = true;
    slot.stats_error = reason;
  } else {
    std::string error;
    const std::optional<WireStatsReply> reply =
        DecodeStatsResponse(payload, &error);
    if (!reply.has_value()) {
      slot.stats_failed = true;
      slot.stats_error = "a shard answered the stats op with an error";
    } else {
      slot.merged.shards += reply->shards;
      slot.merged.requests += reply->requests;
      slot.merged.ok += reply->ok;
      slot.merged.errors += reply->errors;
      slot.merged.sets_registered += reply->sets_registered;
      slot.merged.deltas += reply->deltas;
      slot.merged.delta_splices += reply->delta_splices;
      slot.merged.sets_evicted += reply->sets_evicted;
      slot.merged.delta_dirty_columns += reply->delta_dirty_columns;
      slot.merged.tile_requests += reply->tile_requests;
      slot.merged.tile_fragments += reply->tile_fragments;
    }
  }
  if (--slot.stats_remaining > 0) return false;
  slot.payload = slot.stats_failed
                     ? EncodeErrorResponse(WireStatus::kServerError,
                                           slot.stats_error)
                     : EncodeStatsResponse(slot.merged);
  slot.ready = true;
  return true;
}

}  // namespace

void ShardRouter::HandleShardReadable(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  bool lost = false;
  uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(shard.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      shard.assembler.Feed(
          std::span<const uint8_t>(chunk, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      lost = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    lost = true;
    break;
  }
  while (std::optional<std::vector<uint8_t>> frame = shard.assembler.Next()) {
    if (shard.pending.empty()) continue;  // unsolicited; drop
    const Tag tag = shard.pending.front();
    shard.pending.pop_front();
    const auto fd_it = client_fd_by_id_.find(tag.client_id);
    if (fd_it == client_fd_by_id_.end()) continue;  // client already gone
    const int client_fd = fd_it->second;
    Client& client = *clients_.at(client_fd);
    RouterSlot& slot = client.slots[tag.seq - client.base_seq];
    if (ResolveSlot(slot, tag.tile_id, *frame, false, "")) {
      FlushClient(client_fd, client);
    }
  }
  if (shard.assembler.poisoned()) lost = true;
  if (lost) {
    FailShard(shard_index,
              "shard " + std::to_string(shard_index) + " connection lost");
  }
}

void ShardRouter::FailShard(size_t shard_index, const std::string& reason) {
  Shard& shard = *shards_[shard_index];
  if (!shard.alive) return;
  shard.alive = false;
  poller_.Remove(shard.fd);
  shard_index_by_fd_.erase(shard.fd);
  ::close(shard.fd);
  shard.fd = -1;
  std::deque<Tag> orphaned;
  orphaned.swap(shard.pending);
  const std::vector<uint8_t> empty;
  for (const Tag& tag : orphaned) {
    const auto fd_it = client_fd_by_id_.find(tag.client_id);
    if (fd_it == client_fd_by_id_.end()) continue;
    const int client_fd = fd_it->second;
    Client& client = *clients_.at(client_fd);
    RouterSlot& slot = client.slots[tag.seq - client.base_seq];
    if (ResolveSlot(slot, tag.tile_id, empty, true, reason)) {
      FlushClient(client_fd, client);  // may close the client
    }
  }
}

Status ShardRouter::Run() {
  // The calling thread becomes the loop thread; holding the confinement
  // role for the whole body licenses every touch of the guarded routing
  // state and every RNNHM_REQUIRES(loop_thread_) helper call.
  ThreadRoleGuard loop(&loop_thread_);
  if (!front_.valid()) {
    return Status::InvalidArgument("router needs a bound front listener");
  }
  if (shard_paths_.empty()) {
    return Status::InvalidArgument("router needs at least one shard");
  }
  if (options_.route_by_tile) {
    if (options_.tile_rows < 1 || options_.tile_cols < 1 ||
        options_.tile_rows > kMaxWireTileGridSide ||
        options_.tile_cols > kMaxWireTileGridSide) {
      return Status::InvalidArgument(
          "by-tile routing needs a tile grid within the wire ceiling");
    }
    if (static_cast<size_t>(options_.tile_rows) *
            static_cast<size_t>(options_.tile_cols) <
        shard_paths_.size()) {
      return Status::InvalidArgument(
          "by-tile routing needs at least as many tiles as shards");
    }
  }
  if (wake_fds_[0] < 0) {
    return Status::Unavailable("failed to create the shutdown wake pipe");
  }
  if (const Status status = Poller::Create(options_.prefer_epoll, &poller_);
      !status.ok()) {
    return status;
  }
  for (size_t i = 0; i < shard_paths_.size(); ++i) {
    Shard& shard = *shards_[i];
    if (const Status status = ConnectUnix(shard_paths_[i], &shard.fd);
        !status.ok()) {
      return status;
    }
    if (const Status status = MakeNonblocking(shard.fd); !status.ok()) {
      ::close(shard.fd);
      return status;
    }
    shard.alive = true;
    if (const Status status = poller_.Add(shard.fd, true, false);
        !status.ok()) {
      return status;
    }
    shard_index_by_fd_[shard.fd] = i;
  }
  if (const Status status = poller_.Add(wake_fds_[0], true, false);
      !status.ok()) {
    return status;
  }
  if (const Status status = poller_.Add(front_.fd(), true, false);
      !status.ok()) {
    return status;
  }

  const auto idle_limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<Poller::Event> events;
  for (;;) {
    const int requests = shutdown_requests_.load(std::memory_order_relaxed);
    if (requests >= 2) break;
    if (requests >= 1 && !draining_) {
      draining_ = true;
      poller_.Remove(front_.fd());
      front_.Close();
      drain_deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
    }
    if (draining_ && clients_.empty()) break;

    const auto now = std::chrono::steady_clock::now();
    int timeout_ms = -1;
    auto bound_timeout = [&timeout_ms,
                          now](std::chrono::steady_clock::time_point dl) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(dl - now)
              .count();
      const int ms =
          remaining < 0
              ? 0
              : static_cast<int>(std::min<long long>(remaining, 60 * 1000));
      if (timeout_ms < 0 || ms < timeout_ms) timeout_ms = ms;
    };
    if (draining_) {
      if (now >= drain_deadline_) break;
      bound_timeout(drain_deadline_);
    }
    if (options_.idle_timeout_ms > 0) {
      for (const auto& [fd, client] : clients_) {
        (void)fd;
        bound_timeout(client->last_activity + idle_limit);
      }
    }

    if (const Status status = poller_.Wait(timeout_ms, &events);
        !status.ok()) {
      return status;
    }

    for (const Poller::Event& event : events) {
      if (event.fd == wake_fds_[0]) {
        uint8_t drain[64];
        while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (event.fd == front_.fd() && front_.valid()) {
        for (;;) {
          int client_fd = -1;
          const Status status = front_.Accept(&client_fd);
          if (!status.ok()) break;
          if (draining_ ||
              clients_.size() >=
                  static_cast<size_t>(options_.max_connections)) {
            ::close(client_fd);
            continue;
          }
          auto client = std::make_unique<Client>(next_client_id_++);
          client->last_activity = std::chrono::steady_clock::now();
          if (!poller_.Add(client_fd, true, false).ok()) {
            ::close(client_fd);
            continue;
          }
          client_fd_by_id_[client->id] = client_fd;
          clients_.emplace(client_fd, std::move(client));
        }
        continue;
      }
      if (const auto shard_it = shard_index_by_fd_.find(event.fd);
          shard_it != shard_index_by_fd_.end()) {
        const size_t shard_index = shard_it->second;
        Shard& shard = *shards_[shard_index];
        if (event.readable || event.broken) {
          HandleShardReadable(shard_index);
        }
        if (shard.alive && event.writable && !shard.output.empty()) {
          if (shard.output.WriteSome(shard.fd) < 0) {
            FailShard(shard_index, "shard " + std::to_string(shard_index) +
                                       " write failed");
            continue;
          }
        }
        UpdateShardInterest(shard);
        continue;
      }
      auto client_it = clients_.find(event.fd);
      if (client_it == clients_.end()) continue;
      Client& client = *client_it->second;
      if (event.readable || event.broken) {
        HandleClientReadable(event.fd, client);
      }
      FlushClient(event.fd, client);  // flush + interest + close check
    }

    if (options_.idle_timeout_ms > 0) {
      const auto cutoff = std::chrono::steady_clock::now() - idle_limit;
      std::vector<int> stale;
      for (const auto& [fd, client] : clients_) {
        if (client->last_activity <= cutoff) stale.push_back(fd);
      }
      for (const int fd : stale) CloseClient(fd);
    }
  }

  std::vector<int> open;
  open.reserve(clients_.size());
  for (const auto& [fd, client] : clients_) {
    (void)client;
    open.push_back(fd);
  }
  for (const int fd : open) CloseClient(fd);
  for (const auto& shard : shards_) {
    if (shard->fd >= 0) {
      poller_.Remove(shard->fd);
      ::close(shard->fd);
      shard->fd = -1;
      shard->alive = false;
    }
  }
  shard_index_by_fd_.clear();
  front_.Close();
  return Status::Ok();
}

// --- Signal wiring --------------------------------------------------------

namespace {

// Same async-signal-safety shape as the EventLoopServer handler: relaxed
// lock-free pointer load, then RequestShutdown's atomic bump + pipe
// write. InstallRouterSignalHandlers(nullptr) must run before the router
// is destroyed — the handler holds a raw pointer.
std::atomic<ShardRouter*> g_signal_router{nullptr};
static_assert(std::atomic<ShardRouter*>::is_always_lock_free,
              "signal handler must not take a lock to load the target");

void RouterSignalHandler(int /*signum*/) {
  ShardRouter* router = g_signal_router.load(std::memory_order_relaxed);
  if (router != nullptr) router->RequestShutdown();
}

}  // namespace

void InstallRouterSignalHandlers(ShardRouter* router) {
  g_signal_router.store(router, std::memory_order_relaxed);
  struct sigaction action{};
  if (router != nullptr) {
    action.sa_handler = RouterSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
  } else {
    action.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

}  // namespace rnnhm
