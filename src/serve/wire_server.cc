#include "serve/wire_server.h"

#include <cstdio>
#include <optional>
#include <string>
#include <utility>

#include "serve/frame_buffer.h"

namespace rnnhm {

namespace {

// One frame's worth of raster-size sanity, shared by the plain and delta
// request paths.
bool OverPixelCeiling(int width, int height) {
  return static_cast<uint64_t>(width) * static_cast<uint64_t>(height) >
         kMaxWirePixels;
}

}  // namespace

std::vector<uint8_t> WireServer::HandleFrame(std::span<const uint8_t> frame,
                                             RegistrationScope* scope) {
  ++stats_.requests;
  std::vector<uint8_t> reply;
  WireStatus wire_status = WireStatus::kOk;
  if (IsStatsRequest(frame)) {
    const Status status = DecodeStatsRequest(frame);
    if (status.ok()) {
      WireStatsReply stats_reply;
      stats_reply.shards = 1;
      stats_reply.requests = stats_.requests;
      stats_reply.ok = stats_.ok + 1;  // count this very request as served
      stats_reply.errors = stats_.errors;
      stats_reply.sets_registered = stats_.sets_registered;
      stats_reply.deltas = stats_.deltas;
      stats_reply.delta_splices = stats_.delta_splices;
      stats_reply.sets_evicted = engine_.registry().total_evicted();
      stats_reply.delta_dirty_columns = stats_.delta_dirty_columns;
      stats_reply.tile_requests = stats_.tile_requests;
      stats_reply.tile_fragments = stats_.tile_fragments;
      reply = EncodeStatsResponse(stats_reply);
    } else {
      wire_status = ToWireStatus(status.code);
      reply = EncodeErrorResponse(wire_status, status.message);
    }
  } else if (IsDeltaRequest(frame)) {
    std::string decode_error;
    std::optional<WireDeltaRequest> request =
        DecodeDeltaRequest(frame, &decode_error);
    if (!request.has_value()) {
      wire_status = WireStatus::kMalformedRequest;
      reply = EncodeErrorResponse(wire_status, decode_error);
    } else if (OverPixelCeiling(request->width, request->height)) {
      wire_status = WireStatus::kMalformedRequest;
      reply = EncodeErrorResponse(wire_status,
                                  "raster exceeds the pixel ceiling");
    } else {
      CircleSetRegistry& registry = engine_.registry();
      const CircleSetHandle base = registry.FindByHash(request->base_hash);
      std::shared_ptr<const CircleSetSnapshot> base_set =
          base.valid() ? registry.Resolve(base) : nullptr;
      // Verify the resolved content actually hashes to the requested base
      // hash: under a 64-bit collision the bucket can resolve a set the
      // client never meant, and deriving from it would serve a wrong map.
      if (base_set == nullptr ||
          base_set->content_hash() != request->base_hash) {
        wire_status = WireStatus::kUnknownCircleSet;
        reply = EncodeErrorResponse(
            wire_status,
            "delta base circle set is not registered on this shard "
            "(released, evicted, or never seen here)");
      } else if (base_set->metric() != request->metric) {
        wire_status = WireStatus::kMalformedRequest;
        reply = EncodeErrorResponse(
            wire_status, "delta metric disagrees with the registered base");
      } else {
        CircleSetHandle derived;
        std::optional<HeatmapResponse> response;
        bool spliced = false;
        IncrementalRasterStats splice_stats;
        const Status status = engine_.ExecuteDeltaChecked(
            base, request->edits, request->new_hash, request->domain,
            request->width, request->height, &derived, &response, &spliced,
            &splice_stats);
        if (status.ok()) {
          if (scope != nullptr) scope->Track(derived);
          ++stats_.deltas;
          if (spliced) {
            ++stats_.delta_splices;
            stats_.delta_dirty_columns +=
                static_cast<uint64_t>(splice_stats.dirty_columns);
          }
          reply = EncodeResponse(*response);
        } else {
          wire_status = ToWireStatus(status.code);
          reply = EncodeErrorResponse(wire_status, status.message);
        }
      }
    }
  } else if (IsTileRequest(frame)) {
    ++stats_.tile_requests;
    std::string decode_error;
    std::optional<WireTileRequest> request =
        DecodeTileRequest(frame, &decode_error);
    if (!request.has_value()) {
      wire_status = WireStatus::kMalformedRequest;
      reply = EncodeErrorResponse(wire_status, decode_error);
    } else if (OverPixelCeiling(request->width, request->height)) {
      wire_status = WireStatus::kMalformedRequest;
      reply = EncodeErrorResponse(wire_status,
                                  "raster exceeds the pixel ceiling");
    } else {
      CircleSetRegistry& registry = engine_.registry();
      CircleSetHandle handle;
      if (request->inline_circles) {
        const size_t before = registry.size();
        handle =
            registry.Register(std::move(request->circles), request->metric);
        if (registry.size() > before) ++stats_.sets_registered;
        if (scope != nullptr) scope->Track(handle);
      } else {
        handle = registry.FindByHash(request->set_hash);
      }
      std::shared_ptr<const CircleSetSnapshot> set =
          handle.valid() ? registry.Resolve(handle) : nullptr;
      if (set == nullptr) {
        wire_status = WireStatus::kUnknownCircleSet;
        reply = EncodeErrorResponse(
            wire_status,
            "circle set is not registered on this shard (never carried "
            "inline, released, or evicted)");
      } else if (!request->inline_circles &&
                 set->content_hash() != request->set_hash) {
        wire_status = WireStatus::kUnknownCircleSet;
        reply = EncodeErrorResponse(
            wire_status,
            "registered set under this hash has different content "
            "(64-bit hash collision)");
      } else if (set->metric() != request->metric) {
        wire_status = WireStatus::kMalformedRequest;
        reply = EncodeErrorResponse(
            wire_status, "request metric disagrees with the registered set");
      } else {
        std::optional<HeatmapResponse> response;
        const Status status = engine_.ExecuteTileFragmentChecked(
            HeatmapRequestV2{handle, request->domain, request->width,
                             request->height},
            request->tile_rows, request->tile_cols, request->tile_id,
            &response);
        if (status.ok()) {
          ++stats_.tile_fragments;
          reply = EncodeResponse(*response);
        } else {
          wire_status = ToWireStatus(status.code);
          reply = EncodeErrorResponse(wire_status, status.message);
        }
      }
    }
  } else {
    std::string decode_error;
    std::optional<WireRequest> request = DecodeRequest(frame, &decode_error);
    if (!request.has_value()) {
      wire_status = WireStatus::kMalformedRequest;
      reply = EncodeErrorResponse(wire_status, decode_error);
    } else if (OverPixelCeiling(request->width, request->height)) {
      wire_status = WireStatus::kMalformedRequest;
      reply = EncodeErrorResponse(wire_status,
                                  "raster exceeds the pixel ceiling");
    } else {
      CircleSetRegistry& registry = engine_.registry();
      CircleSetHandle handle;
      if (request->inline_circles) {
        const size_t before = registry.size();
        handle =
            registry.Register(std::move(request->circles), request->metric);
        if (registry.size() > before) ++stats_.sets_registered;
        if (scope != nullptr) scope->Track(handle);
      } else {
        handle = registry.FindByHash(request->set_hash);
      }
      std::shared_ptr<const CircleSetSnapshot> set =
          handle.valid() ? registry.Resolve(handle) : nullptr;
      if (set == nullptr) {
        wire_status = WireStatus::kUnknownCircleSet;
        reply = EncodeErrorResponse(
            wire_status,
            "circle set is not registered on this shard (never carried "
            "inline, released, or evicted)");
      } else if (!request->inline_circles &&
                 set->content_hash() != request->set_hash) {
        // The bucket matched but the content does not hash to the asked-for
        // value: a 64-bit collision resolved a different set. Refusing is
        // the only correct answer — serving it would be silently wrong.
        wire_status = WireStatus::kUnknownCircleSet;
        reply = EncodeErrorResponse(
            wire_status,
            "registered set under this hash has different content "
            "(64-bit hash collision)");
      } else if (set->metric() != request->metric) {
        wire_status = WireStatus::kMalformedRequest;
        reply = EncodeErrorResponse(
            wire_status, "request metric disagrees with the registered set");
      } else {
        std::optional<HeatmapResponse> response;
        const Status status = engine_.ExecuteChecked(
            HeatmapRequestV2{handle, request->domain, request->width,
                             request->height},
            &response);
        if (status.ok()) {
          reply = EncodeResponse(*response);
        } else {
          wire_status = ToWireStatus(status.code);
          reply = EncodeErrorResponse(wire_status, status.message);
        }
      }
    }
  }
  if (wire_status == WireStatus::kOk) {
    ++stats_.ok;
  } else {
    ++stats_.errors;
  }
  return reply;
}

Status WireServer::ServeStream(ByteSource& in, ByteSink& out) {
  FrameAssembler assembler(kMaxFramePayloadBytes);
  uint8_t chunk[64 * 1024];
  for (;;) {
    while (std::optional<std::vector<uint8_t>> frame = assembler.Next()) {
      const std::vector<uint8_t> reply = HandleFrame(*frame);
      const uint32_t length = static_cast<uint32_t>(reply.size());
      uint8_t prefix[4];
      for (int i = 0; i < 4; ++i) {
        prefix[i] = static_cast<uint8_t>(length >> (8 * i));
      }
      if (!out.Write(std::span<const uint8_t>(prefix, 4)) ||
          !out.Write(reply) || !out.Flush()) {
        return Status::Unavailable("failed to write response frame");
      }
    }
    if (assembler.poisoned()) return assembler.status();
    const std::ptrdiff_t n = in.Read(chunk, sizeof(chunk));
    if (n < 0) return Status::DataLoss("read error on frame stream");
    if (n == 0) {
      if (assembler.mid_frame()) {
        return Status::DataLoss("stream truncated mid-frame");
      }
      return Status::Ok();
    }
    assembler.Feed(std::span<const uint8_t>(chunk, static_cast<size_t>(n)));
  }
}

// The legacy FILE* entry point (declared in query/wire.h): wraps the
// streams and reports the WireServer counters/error the way the old loop
// did.
bool ServeWireStream(std::FILE* in, std::FILE* out, HeatmapEngine& engine,
                     WireServeStats* stats, std::string* error) {
  WireServer server(engine);
  FileByteSource source(in);
  FileByteSink sink(out);
  const Status status = server.ServeStream(source, sink);
  if (stats != nullptr) *stats = server.stats();
  if (!status.ok() && error != nullptr) *error = status.message;
  return status.ok();
}

}  // namespace rnnhm
