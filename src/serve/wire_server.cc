#include "serve/wire_server.h"

#include <cstdio>
#include <optional>
#include <string>
#include <utility>

#include "serve/frame_buffer.h"

namespace rnnhm {

std::vector<uint8_t> WireServer::HandleFrame(std::span<const uint8_t> frame) {
  ++stats_.requests;
  std::vector<uint8_t> reply;
  WireStatus wire_status = WireStatus::kOk;
  if (IsStatsRequest(frame)) {
    const Status status = DecodeStatsRequest(frame);
    if (status.ok()) {
      WireStatsReply stats_reply;
      stats_reply.shards = 1;
      stats_reply.requests = stats_.requests;
      stats_reply.ok = stats_.ok + 1;  // count this very request as served
      stats_reply.errors = stats_.errors;
      stats_reply.sets_registered = stats_.sets_registered;
      reply = EncodeStatsResponse(stats_reply);
    } else {
      wire_status = ToWireStatus(status.code);
      reply = EncodeErrorResponse(wire_status, status.message);
    }
  } else {
    std::string decode_error;
    std::optional<WireRequest> request = DecodeRequest(frame, &decode_error);
    if (!request.has_value()) {
      wire_status = WireStatus::kMalformedRequest;
      reply = EncodeErrorResponse(wire_status, decode_error);
    } else if (static_cast<uint64_t>(request->width) *
                   static_cast<uint64_t>(request->height) >
               kMaxWirePixels) {
      wire_status = WireStatus::kMalformedRequest;
      reply = EncodeErrorResponse(wire_status,
                                  "raster exceeds the pixel ceiling");
    } else {
      CircleSetRegistry& registry = engine_.registry();
      CircleSetHandle handle;
      if (request->inline_circles) {
        const size_t before = registry.size();
        handle =
            registry.Register(std::move(request->circles), request->metric);
        if (registry.size() > before) ++stats_.sets_registered;
      } else {
        handle = registry.FindByHash(request->set_hash);
      }
      std::shared_ptr<const CircleSetSnapshot> set =
          handle.valid() ? registry.Resolve(handle) : nullptr;
      if (set == nullptr) {
        wire_status = WireStatus::kUnknownCircleSet;
        reply = EncodeErrorResponse(
            wire_status, "circle set was never carried inline on this stream");
      } else if (set->metric() != request->metric) {
        wire_status = WireStatus::kMalformedRequest;
        reply = EncodeErrorResponse(
            wire_status, "request metric disagrees with the registered set");
      } else {
        std::optional<HeatmapResponse> response;
        const Status status = engine_.ExecuteChecked(
            HeatmapRequestV2{handle, request->domain, request->width,
                             request->height},
            &response);
        if (status.ok()) {
          reply = EncodeResponse(*response);
        } else {
          wire_status = ToWireStatus(status.code);
          reply = EncodeErrorResponse(wire_status, status.message);
        }
      }
    }
  }
  if (wire_status == WireStatus::kOk) {
    ++stats_.ok;
  } else {
    ++stats_.errors;
  }
  return reply;
}

Status WireServer::ServeStream(ByteSource& in, ByteSink& out) {
  FrameAssembler assembler(kMaxFramePayloadBytes);
  uint8_t chunk[64 * 1024];
  for (;;) {
    while (std::optional<std::vector<uint8_t>> frame = assembler.Next()) {
      const std::vector<uint8_t> reply = HandleFrame(*frame);
      const uint32_t length = static_cast<uint32_t>(reply.size());
      uint8_t prefix[4];
      for (int i = 0; i < 4; ++i) {
        prefix[i] = static_cast<uint8_t>(length >> (8 * i));
      }
      if (!out.Write(std::span<const uint8_t>(prefix, 4)) ||
          !out.Write(reply) || !out.Flush()) {
        return Status::Unavailable("failed to write response frame");
      }
    }
    if (assembler.poisoned()) return assembler.status();
    const std::ptrdiff_t n = in.Read(chunk, sizeof(chunk));
    if (n < 0) return Status::DataLoss("read error on frame stream");
    if (n == 0) {
      if (assembler.mid_frame()) {
        return Status::DataLoss("stream truncated mid-frame");
      }
      return Status::Ok();
    }
    assembler.Feed(std::span<const uint8_t>(chunk, static_cast<size_t>(n)));
  }
}

// The legacy FILE* entry point (declared in query/wire.h): wraps the
// streams and reports the WireServer counters/error the way the old loop
// did.
bool ServeWireStream(std::FILE* in, std::FILE* out, HeatmapEngine& engine,
                     WireServeStats* stats, std::string* error) {
  WireServer server(engine);
  FileByteSource source(in);
  FileByteSink sink(out);
  const Status status = server.ServeStream(source, sink);
  if (stats != nullptr) *stats = server.stats();
  if (!status.ok() && error != nullptr) *error = status.message;
  return status.ok();
}

}  // namespace rnnhm
