// Incremental frame reassembly and buffered writes — the per-connection
// state of the nonblocking serving layer.
//
// A socket delivers bytes in arbitrary chunks: a frame may arrive one
// byte at a time or many frames in one read. FrameAssembler is the
// reassembly state machine: feed it whatever the transport produced and
// pop complete [u32 LE length][payload] frames as they close. It never
// blocks and never over-reads — partial frames simply stay buffered until
// the rest arrives, so one slow connection cannot stall the event loop.
//
// Symmetrically, a socket accepts writes in arbitrary chunks: OutputBuffer
// queues encoded response frames and drains as much as the peer accepts
// per writability event, so a slow reader backpressures into server
// memory instead of blocking the loop.
//
// Both are plain single-threaded state; the event loop owns one pair per
// connection.
#ifndef RNNHM_SERVE_FRAME_BUFFER_H_
#define RNNHM_SERVE_FRAME_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"

namespace rnnhm {

/// Reassembles length-prefixed frames from an incremental byte feed.
class FrameAssembler {
 public:
  /// `max_payload` guards a hostile or garbage length prefix: a prefix
  /// over the ceiling poisons the assembler (the stream cannot be
  /// resynchronized once the framing is wrong).
  explicit FrameAssembler(size_t max_payload);

  /// Appends transport bytes. Ignored once poisoned.
  void Feed(std::span<const uint8_t> bytes);

  /// Pops the next complete frame payload, or nullopt when no full frame
  /// is buffered (including after poisoning).
  std::optional<std::vector<uint8_t>> Next();

  /// kOk while the framing is intact; kResourceExhausted once a length
  /// prefix exceeded the ceiling. A poisoned assembler stays poisoned.
  const Status& status() const { return status_; }

  /// True iff bytes of an unfinished frame (or prefix) are buffered —
  /// i.e. an EOF now would truncate a frame.
  bool mid_frame() const { return !poisoned() && pos_ < buffer_.size(); }

  bool poisoned() const { return !status_.ok(); }

  /// Bytes currently buffered (unconsumed).
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  const size_t max_payload_;
  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;  // consumed prefix of buffer_
  Status status_;
};

/// Queues outgoing bytes and drains them through nonblocking writes.
class OutputBuffer {
 public:
  /// Queues raw bytes.
  void Append(std::span<const uint8_t> bytes);

  /// Queues one frame: the u32 LE length prefix, then the payload.
  void AppendFrame(std::span<const uint8_t> payload);

  /// Writes as much pending data to `fd` as it accepts right now (send
  /// with MSG_NOSIGNAL for sockets, falling back to write for pipes).
  /// Returns the bytes written (possibly 0 when the peer's buffer is
  /// full), or -1 on a connection error.
  std::ptrdiff_t WriteSome(int fd);

  bool empty() const { return pos_ == buffer_.size(); }
  size_t pending_bytes() const { return buffer_.size() - pos_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;  // flushed prefix of buffer_
};

}  // namespace rnnhm

#endif  // RNNHM_SERVE_FRAME_BUFFER_H_
