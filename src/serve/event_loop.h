// The nonblocking serving core: a single-threaded event loop multiplexing
// many connections over one HeatmapEngine.
//
// Design, in one paragraph: a Poller (epoll on Linux, poll everywhere)
// reports readiness on the listener, a self-pipe wake fd, and every live
// connection. Each connection owns a FrameAssembler and an OutputBuffer
// (serve/frame_buffer.h); reads feed the assembler, complete frames run
// through WireServer::HandleFrame, and responses queue in the output
// buffer to drain as the peer accepts them. No syscall in the loop ever
// blocks on a peer, so one slow or half-delivered connection cannot stall
// the rest.
//
// Shutdown protocol: RequestShutdown (safe from signal handlers and other
// threads — it only writes the wake pipe) puts the loop into lame-duck
// mode: the listener closes, in-flight connections keep being served
// until each peer closes or ServeOptions::drain_timeout_ms elapses. A
// second request stops the loop immediately. InstallShutdownSignalHandlers
// wires SIGINT/SIGTERM to exactly that.
#ifndef RNNHM_SERVE_EVENT_LOOP_H_
#define RNNHM_SERVE_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/frame_buffer.h"
#include "serve/options.h"
#include "serve/transport.h"
#include "serve/wire_server.h"

namespace rnnhm {

/// Readiness multiplexer: epoll where available, poll as the portable
/// fallback. Move-only; single-threaded.
class Poller {
 public:
  enum class Backend { kEpoll, kPoll };

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool broken = false;  ///< HUP or error: the fd is done
  };

  Poller() = default;
  Poller(Poller&& other) noexcept;
  Poller& operator=(Poller&& other) noexcept;
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;
  ~Poller();

  /// Builds a poller. `prefer_epoll` picks epoll when the platform has
  /// it; the poll backend is always available.
  static Status Create(bool prefer_epoll, Poller* out);

  Backend backend() const { return backend_; }

  Status Add(int fd, bool want_read, bool want_write);
  Status Modify(int fd, bool want_read, bool want_write);
  void Remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) and appends ready fds to
  /// `events` (cleared first). EINTR returns kOk with no events.
  Status Wait(int timeout_ms, std::vector<Event>* events);

 private:
  Backend backend_ = Backend::kPoll;
  int epoll_fd_ = -1;
  // Poll backend state: interest set mirrored into a pollfd array per Wait.
  std::map<int, short> poll_interest_;
};

/// One serving process: accepts on a Listener, multiplexes connections,
/// executes frames on the engine behind `server`.
class EventLoopServer {
 public:
  /// Takes ownership of the bound listener. `options` supplies connection
  /// policy (max_connections, idle_timeout_ms, drain_timeout_ms,
  /// prefer_epoll); addressing fields are ignored here (the listener is
  /// already bound).
  EventLoopServer(Listener listener, HeatmapEngine& engine,
                  const ServeOptions& options);
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// Serves until shutdown completes. Returns kOk after a clean drain (or
  /// hard stop); an error Status if the loop infrastructure itself fails.
  /// Single-threaded: the calling thread becomes the loop thread and is
  /// the only one allowed to touch the loop state below.
  Status Run() RNNHM_EXCLUDES(loop_thread_);

  /// Async-signal-safe and thread-safe. First call begins the lame-duck
  /// drain; a second forces an immediate stop. Deliberately NOT a holder
  /// of `loop_thread_`: the analysis proves it cannot touch the
  /// loop-confined state — it only bumps the lock-free request counter
  /// and writes the wake pipe, both async-signal-safe.
  void RequestShutdown();

  /// The listener (valid until the drain begins); tests read the resolved
  /// port/path from here.
  const Listener& listener() const { return listener_; }

  const WireServeStats& stats() const { return wire_server_.stats(); }

 private:
  struct Connection;

  void CloseConnection(int fd) RNNHM_REQUIRES(loop_thread_);
  /// Reads everything available, runs complete frames, queues responses.
  void HandleReadable(int fd, Connection& conn)
      RNNHM_REQUIRES(loop_thread_);
  /// Recomputes poller interest from connection state.
  void UpdateInterest(int fd, Connection& conn)
      RNNHM_REQUIRES(loop_thread_);

  Listener listener_;
  WireServer wire_server_;
  CircleSetRegistry* registry_;  // the engine's; scopes release into it
  const ServeOptions options_;

  /// Thread-confinement capability: held by Run for its whole body. The
  /// state below is loop-thread-only; guarding it by the role makes a
  /// cross-thread touch (e.g. from RequestShutdown or a signal-handler
  /// path) a compile error instead of a latent data race.
  ThreadRole loop_thread_;
  Poller poller_ RNNHM_GUARDED_BY(loop_thread_);
  std::map<int, std::unique_ptr<Connection>> connections_
      RNNHM_GUARDED_BY(loop_thread_);
  /// Self-pipe [read, write]: created in the constructor, closed in the
  /// destructor, never reassigned in between — the write end is safe to
  /// use from any thread or signal handler, which is the whole point.
  int wake_fds_[2] = {-1, -1};
  /// Lock-free cross-thread input: the only state RequestShutdown writes.
  std::atomic<int> shutdown_requests_{0};
  bool draining_ RNNHM_GUARDED_BY(loop_thread_) = false;
  std::chrono::steady_clock::time_point drain_deadline_
      RNNHM_GUARDED_BY(loop_thread_){};
};

/// Points SIGINT and SIGTERM at `server->RequestShutdown()`. One server at
/// a time; pass nullptr to restore default dispositions. The handler path
/// is async-signal-safe end to end: an atomic pointer load, an atomic
/// counter bump, and a write(2) on the wake pipe. Uninstall (nullptr)
/// before destroying the server — the handler holds a raw pointer.
void InstallShutdownSignalHandlers(EventLoopServer* server);

}  // namespace rnnhm

#endif  // RNNHM_SERVE_EVENT_LOOP_H_
