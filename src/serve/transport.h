// Socket transport: listeners for the event loop and a small blocking
// client side for tools, tests and benches.
//
// The server side is nonblocking throughout — Listener::Accept never
// blocks, accepted fds come back nonblocking — following the standard
// epoll/nonblocking idioms: accept until EAGAIN, never trust one
// readiness event for more than one unit of progress. The client side
// (Connect/SendFrame/RecvFrame) is deliberately blocking: clients want
// simple sequential round-trips.
//
// All functions return the serving stack's unified Status; no errno
// escapes this layer.
#ifndef RNNHM_SERVE_TRANSPORT_H_
#define RNNHM_SERVE_TRANSPORT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/options.h"

namespace rnnhm {

/// A bound, listening, nonblocking server socket. Move-only; closes (and
/// unlinks, for Unix sockets) on destruction.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Binds and listens on host:port (port 0 = ephemeral; `port()` returns
  /// the resolved one).
  static Status ListenTcp(const std::string& host, int port, Listener* out);

  /// Binds and listens on a Unix-domain socket path (a stale socket file
  /// at the path is replaced).
  static Status ListenUnix(const std::string& path, Listener* out);

  /// Accepts one pending connection as a nonblocking fd. kOk with the fd,
  /// kUnavailable("no pending connection") when accept would block, or an
  /// error.
  Status Accept(int* client_fd) const;

  /// Closes the socket now (stops accepting); Unix paths are unlinked.
  void Close();

  /// Closes this process's fd but leaves the socket path on disk — what a
  /// fleet parent calls after forking a worker that inherited the fd (the
  /// child is still serving on the path, so unlinking it would strand the
  /// socket). The path is remembered and unlinked by Close/destruction,
  /// as post-shutdown cleanup.
  void CloseFdOnly();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The resolved TCP port (0 for Unix listeners).
  int port() const { return port_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  int port_ = 0;
  std::string path_;  // unix socket path to unlink on close
};

/// Marks an fd nonblocking (and close-on-exec).
Status MakeNonblocking(int fd);

// --- Blocking client side -------------------------------------------------

/// Connects (blocking) to a TCP server.
Status ConnectTcp(const std::string& host, int port, int* fd);

/// Connects (blocking) to a Unix-domain server socket.
Status ConnectUnix(const std::string& path, int* fd);

/// Writes all of `bytes` (retrying short writes; EINTR-safe).
Status SendAll(int fd, std::span<const uint8_t> bytes);

/// Writes one [u32 LE length][payload] frame.
Status SendFrame(int fd, std::span<const uint8_t> payload);

/// Reads one frame (blocking). kOk with the payload; kUnavailable with
/// message "end of stream" on a clean EOF at a frame boundary; kDataLoss
/// on truncation; kResourceExhausted on an oversized prefix.
Status RecvFrame(int fd, std::vector<uint8_t>* payload);

}  // namespace rnnhm

#endif  // RNNHM_SERVE_TRANSPORT_H_
