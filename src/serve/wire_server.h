// The transport-agnostic serving surface: one frame in, one frame out.
//
// WireServer owns the request semantics of the wire protocol — decode,
// registry interaction, engine execution, stats — with zero knowledge of
// where bytes come from. Three transports drive it:
//   * ServeStream(ByteSource, ByteSink) — the blocking loop (stdio,
//     files, in-memory tests);
//   * ServeWireStream(FILE*, ...) — the legacy entry point, kept as a
//     thin shim over ServeStream (declared in query/wire.h so existing
//     callers compile unchanged);
//   * EventLoopServer (serve/event_loop.h) — the nonblocking socket
//     server, which reassembles frames itself (serve/frame_buffer.h) and
//     calls HandleFrame per complete frame.
//
// HandleFrame never fails: every input byte string maps to exactly one
// response payload (ok, error-status, or stats), so transports need no
// error protocol of their own — transport-level failures (truncated
// stream, dead peer) are the only thing they report, as Status.
#ifndef RNNHM_SERVE_WIRE_SERVER_H_
#define RNNHM_SERVE_WIRE_SERVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "query/wire.h"
#include "serve/byte_stream.h"

namespace rnnhm {

/// Executes wire frames against a HeatmapEngine. Single-threaded: one
/// WireServer per serving loop (the engine behind it may be shared).
class WireServer {
 public:
  explicit WireServer(HeatmapEngine& engine) : engine_(engine) {}

  /// Serves one request frame payload, returning the response payload.
  /// Heat-map requests run through HeatmapEngine::ExecuteChecked (inline
  /// sets register into the engine's registry first); delta requests
  /// derive a new set from a registered base and run through
  /// ExecuteDeltaChecked; tile requests compute one fragment of the tiled
  /// decomposition through ExecuteTileFragmentChecked; stats requests
  /// return this server's counters; anything malformed returns an
  /// error-status response. Total: every input produces one response.
  ///
  /// `scope`, when non-null, takes ownership of the registration bumps
  /// this frame performs (inline registers and delta derivations), so a
  /// transport that owns the scope — EventLoopServer keeps one per
  /// connection — releases them on disconnect. With a null scope the
  /// registrations persist for the engine's lifetime (the legacy stream
  /// behavior: later by-reference requests depend on them).
  std::vector<uint8_t> HandleFrame(std::span<const uint8_t> frame,
                                   RegistrationScope* scope = nullptr);

  /// The blocking serve loop: drains frames from `in` until end of
  /// stream, answering each on `out` in order. Returns kOk on clean EOF;
  /// kDataLoss on a stream truncated mid-frame; kResourceExhausted on an
  /// oversized frame prefix; kUnavailable when the sink fails.
  Status ServeStream(ByteSource& in, ByteSink& out);

  /// Counters since construction (served by the stats op).
  const WireServeStats& stats() const { return stats_; }

 private:
  HeatmapEngine& engine_;
  WireServeStats stats_;
};

}  // namespace rnnhm

#endif  // RNNHM_SERVE_WIRE_SERVER_H_
