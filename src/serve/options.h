// The one place serving configuration lives.
//
// Every knob of `rnnhm_cli serve` and `rnnhm_cli route` lands in this
// struct — transport selection, socket addressing, connection policy,
// shard count, and the engine knobs each worker gets. The CLI parses its
// flags into a ServeOptions in a single function (tools/rnnhm_cli.cc,
// ParseServeFlags) and every serving path reads from here; tests and
// benches construct it directly.
#ifndef RNNHM_SERVE_OPTIONS_H_
#define RNNHM_SERVE_OPTIONS_H_

#include <cstddef>
#include <string>

namespace rnnhm {

/// Which byte transport a server (or router front) speaks.
enum class TransportKind {
  kStdio,  ///< length-prefixed frames on stdin/stdout (or --in/--out files)
  kTcp,    ///< nonblocking TCP event loop
  kUnix,   ///< nonblocking Unix-domain-socket event loop
};

/// Parses "stdio" | "tcp" | "unix"; false on anything else.
bool ParseTransportKind(const std::string& name, TransportKind* out);

const char* TransportKindName(TransportKind kind);

/// Everything `serve` and `route` need, with serving defaults.
struct ServeOptions {
  // --- Transport ---------------------------------------------------------
  TransportKind transport = TransportKind::kStdio;
  /// TCP bind/connect host.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (the server prints the resolved
  /// one on stderr).
  int port = 0;
  /// Unix-domain socket path (required for kUnix).
  std::string socket_path;

  // --- Connection policy (socket transports) -----------------------------
  /// Accepted connections beyond this are closed immediately.
  int max_connections = 64;
  /// Connections with no read/write progress for this long are closed;
  /// 0 disables the timeout.
  int idle_timeout_ms = 30000;
  /// Graceful-shutdown bound: after SIGINT/SIGTERM the server stops
  /// accepting and keeps serving open connections until they close, at
  /// most this long.
  int drain_timeout_ms = 5000;
  /// Use epoll where available (Linux); false forces the portable poll
  /// backend.
  bool prefer_epoll = true;

  // --- Sharding (route) --------------------------------------------------
  /// Worker processes behind the router, one engine each.
  int num_shards = 2;
  /// Directory for the fleet's worker sockets; empty derives a
  /// per-process default under /tmp.
  std::string socket_dir;
  /// Route plain heat-map requests by *domain tile* instead of by set
  /// hash: the router decodes each plain request, fans one tile
  /// sub-request per non-empty tile window to shard `tile_id %
  /// num_shards`, and stitches the returned fragments into one response
  /// grid bit-identical to an untiled Execute. Delta and stats frames
  /// keep their usual routing. Requires tile_rows * tile_cols >=
  /// num_shards so every shard can be given work.
  bool route_by_tile = false;
  /// Tile grid of the by-tile mode (ignored unless route_by_tile).
  int tile_rows = 1;
  int tile_cols = 1;

  // --- Engine knobs (per worker) -----------------------------------------
  int threads = 1;
  int slabs = 1;
  size_t cache_bytes = 0;

  // --- Registry retention (per worker) -----------------------------------
  /// Fully released circle sets retained unpinned (LRU) before eviction,
  /// so a reconnecting client's by-hash requests keep resolving. 0 erases
  /// sets the moment their last registration goes away (legacy behavior —
  /// with per-connection scopes that means the instant the registering
  /// connection closes).
  size_t retain_sets = 256;
  /// Registrations one connection may hold at once (inline registers and
  /// delta derivations); the oldest is released as new ones push past the
  /// cap. 0 = unbounded per connection.
  size_t max_conn_sets = 64;

  // --- Stdio/file mode ---------------------------------------------------
  std::string in_path;   ///< empty = stdin
  std::string out_path;  ///< empty = stdout
};

}  // namespace rnnhm

#endif  // RNNHM_SERVE_OPTIONS_H_
