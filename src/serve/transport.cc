#include "serve/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "query/wire.h"

namespace rnnhm {

namespace {

Status Errno(StatusCode code, const std::string& what) {
  return Status::Error(code, what + ": " + std::strerror(errno));
}

}  // namespace

bool ParseTransportKind(const std::string& name, TransportKind* out) {
  if (name == "stdio") {
    *out = TransportKind::kStdio;
  } else if (name == "tcp") {
    *out = TransportKind::kTcp;
  } else if (name == "unix") {
    *out = TransportKind::kUnix;
  } else {
    return false;
  }
  return true;
}

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kStdio:
      return "stdio";
    case TransportKind::kTcp:
      return "tcp";
    case TransportKind::kUnix:
      return "unix";
  }
  return "unknown";
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      path_(std::move(other.path_)) {
  other.path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

Listener::~Listener() { Close(); }

void Listener::Close() {
  CloseFdOnly();
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

void Listener::CloseFdOnly() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status MakeNonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno(StatusCode::kUnavailable, "fcntl O_NONBLOCK");
  }
  const int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags < 0 || ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) < 0) {
    return Errno(StatusCode::kUnavailable, "fcntl FD_CLOEXEC");
  }
  return Status::Ok();
}

Status Listener::ListenTcp(const std::string& host, int port, Listener* out) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparsable TCP host '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno(StatusCode::kUnavailable, "socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Errno(StatusCode::kUnavailable, "bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) < 0) {
    const Status status = Errno(StatusCode::kUnavailable, "listen");
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const Status status = Errno(StatusCode::kUnavailable, "getsockname");
    ::close(fd);
    return status;
  }
  if (const Status status = MakeNonblocking(fd); !status.ok()) {
    ::close(fd);
    return status;
  }
  out->Close();
  out->fd_ = fd;
  out->port_ = ntohs(bound.sin_port);
  return Status::Ok();
}

Status Listener::ListenUnix(const std::string& path, Listener* out) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path empty or too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno(StatusCode::kUnavailable, "socket");
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Errno(StatusCode::kUnavailable, "bind " + path);
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) < 0) {
    const Status status = Errno(StatusCode::kUnavailable, "listen " + path);
    ::close(fd);
    return status;
  }
  if (const Status status = MakeNonblocking(fd); !status.ok()) {
    ::close(fd);
    return status;
  }
  out->Close();
  out->fd_ = fd;
  out->path_ = path;
  return Status::Ok();
}

Status Listener::Accept(int* client_fd) const {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      if (const Status status = MakeNonblocking(fd); !status.ok()) {
        ::close(fd);
        return status;
      }
      *client_fd = fd;
      return Status::Ok();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("no pending connection");
    }
    return Errno(StatusCode::kUnavailable, "accept");
  }
}

Status ConnectTcp(const std::string& host, int port, int* fd) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparsable TCP host '" + host + "'");
  }
  const int sock = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock < 0) return Errno(StatusCode::kUnavailable, "socket");
  if (::connect(sock, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const Status status = Errno(StatusCode::kUnavailable, "connect");
    ::close(sock);
    return status;
  }
  *fd = sock;
  return Status::Ok();
}

Status ConnectUnix(const std::string& path, int* fd) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path empty or too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int sock = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (sock < 0) return Errno(StatusCode::kUnavailable, "socket");
  if (::connect(sock, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const Status status = Errno(StatusCode::kUnavailable, "connect " + path);
    ::close(sock);
    return status;
  }
  *fd = sock;
  return Status::Ok();
}

Status SendAll(int fd, std::span<const uint8_t> bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const std::ptrdiff_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno(StatusCode::kUnavailable, "send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status SendFrame(int fd, std::span<const uint8_t> payload) {
  if (payload.size() > kMaxFramePayloadBytes) {
    return Status::ResourceExhausted("frame payload over the size ceiling");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<uint8_t>(length >> (8 * i));
  }
  if (const Status status = SendAll(fd, std::span<const uint8_t>(prefix, 4));
      !status.ok()) {
    return status;
  }
  return SendAll(fd, payload);
}

namespace {

// Reads exactly `len` bytes. `*clean_eof` is set when the very first read
// returns end-of-stream (a frame boundary).
Status RecvExact(int fd, uint8_t* dst, size_t len, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  size_t got = 0;
  while (got < len) {
    const std::ptrdiff_t n = ::recv(fd, dst + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno(StatusCode::kUnavailable, "recv");
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::Unavailable("end of stream");
      }
      return Status::DataLoss("stream truncated mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status RecvFrame(int fd, std::vector<uint8_t>* payload) {
  uint8_t prefix[4];
  bool clean_eof = false;
  if (const Status status = RecvExact(fd, prefix, 4, &clean_eof);
      !status.ok()) {
    return status;
  }
  uint32_t length = 0;
  for (int i = 3; i >= 0; --i) length = (length << 8) | prefix[i];
  if (length > kMaxFramePayloadBytes) {
    return Status::ResourceExhausted("frame payload over the size ceiling");
  }
  payload->assign(length, 0);
  if (length == 0) return Status::Ok();
  return RecvExact(fd, payload->data(), length, nullptr);
}

}  // namespace rnnhm
