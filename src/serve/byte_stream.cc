#include "serve/byte_stream.h"

#include <algorithm>
#include <cstring>

namespace rnnhm {

std::ptrdiff_t FileByteSource::Read(uint8_t* dst, size_t max) {
  if (max == 0) return 0;
  const size_t got = std::fread(dst, 1, max, file_);
  if (got == 0 && std::ferror(file_) != 0) return -1;
  return static_cast<std::ptrdiff_t>(got);
}

bool FileByteSink::Write(std::span<const uint8_t> bytes) {
  return bytes.empty() ||
         std::fwrite(bytes.data(), 1, bytes.size(), file_) == bytes.size();
}

bool FileByteSink::Flush() { return std::fflush(file_) == 0; }

std::ptrdiff_t MemoryByteSource::Read(uint8_t* dst, size_t max) {
  size_t n = std::min(max, bytes_.size() - pos_);
  if (chunk_ > 0) n = std::min(n, chunk_);
  std::memcpy(dst, bytes_.data() + pos_, n);
  pos_ += n;
  return static_cast<std::ptrdiff_t>(n);
}

bool MemoryByteSink::Write(std::span<const uint8_t> bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  return true;
}

}  // namespace rnnhm
