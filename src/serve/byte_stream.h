// Byte-stream interfaces the transport-agnostic serving surface is
// written against.
//
// WireServer (serve/wire_server.h) serves frames over any
// ByteSource/ByteSink pair: a FILE* (the original stdio serve loop), an
// in-memory buffer (tests feed partial reads deterministically), or —
// through the event loop, which bypasses these blocking interfaces and
// drives the same per-frame handler — a nonblocking socket. The
// interfaces are deliberately minimal: a blocking chunk read and a
// full-or-fail write; framing lives one layer up in
// serve/frame_buffer.h.
#ifndef RNNHM_SERVE_BYTE_STREAM_H_
#define RNNHM_SERVE_BYTE_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

namespace rnnhm {

/// A blocking source of bytes.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Reads up to `max` bytes into `dst`, blocking until at least one byte
  /// is available. Returns the count read, 0 on end of stream, -1 on a
  /// transport error.
  virtual std::ptrdiff_t Read(uint8_t* dst, size_t max) = 0;
};

/// A blocking sink of bytes.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  /// Writes all of `bytes` or fails. Returns false on a transport error.
  virtual bool Write(std::span<const uint8_t> bytes) = 0;

  /// Pushes buffered bytes to the peer (a no-op for unbuffered sinks).
  virtual bool Flush() { return true; }
};

/// ByteSource over a FILE* (does not own the handle).
class FileByteSource final : public ByteSource {
 public:
  explicit FileByteSource(std::FILE* file) : file_(file) {}
  std::ptrdiff_t Read(uint8_t* dst, size_t max) override;

 private:
  std::FILE* file_;
};

/// ByteSink over a FILE* (does not own the handle).
class FileByteSink final : public ByteSink {
 public:
  explicit FileByteSink(std::FILE* file) : file_(file) {}
  bool Write(std::span<const uint8_t> bytes) override;
  bool Flush() override;

 private:
  std::FILE* file_;
};

/// ByteSource over an in-memory buffer, delivering at most `chunk` bytes
/// per Read so tests can force partial delivery through the reassembly
/// path (chunk = 1 is the byte-at-a-time feed).
class MemoryByteSource final : public ByteSource {
 public:
  explicit MemoryByteSource(std::vector<uint8_t> bytes, size_t chunk = 0)
      : bytes_(std::move(bytes)), chunk_(chunk) {}
  std::ptrdiff_t Read(uint8_t* dst, size_t max) override;

 private:
  std::vector<uint8_t> bytes_;
  size_t chunk_;  // 0 = no artificial cap
  size_t pos_ = 0;
};

/// ByteSink accumulating into an in-memory buffer.
class MemoryByteSink final : public ByteSink {
 public:
  bool Write(std::span<const uint8_t> bytes) override;
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace rnnhm

#endif  // RNNHM_SERVE_BYTE_STREAM_H_
