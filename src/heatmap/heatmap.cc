#include "heatmap/heatmap.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/brute_force.h"
#include "core/crest_l2.h"
#include "core/crest_parallel.h"
#include "heatmap/raster_sink.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {

HeatmapGrid::HeatmapGrid(int width, int height, const Rect& domain,
                         double background)
    : width_(width), height_(height), domain_(domain) {
  RNNHM_CHECK(width > 0 && height > 0);
  RNNHM_CHECK(domain.lo.x < domain.hi.x && domain.lo.y < domain.hi.y);
  values_.assign(static_cast<size_t>(width) * height, background);
}

Point HeatmapGrid::PixelCenter(int i, int j) const {
  const double dx = (domain_.hi.x - domain_.lo.x) / width_;
  const double dy = (domain_.hi.y - domain_.lo.y) / height_;
  return Point{domain_.lo.x + (i + 0.5) * dx, domain_.lo.y + (j + 0.5) * dy};
}

double HeatmapGrid::Sample(const Point& p) const {
  const double dx = (domain_.hi.x - domain_.lo.x) / width_;
  const double dy = (domain_.hi.y - domain_.lo.y) / height_;
  int i = static_cast<int>((p.x - domain_.lo.x) / dx);
  int j = static_cast<int>((p.y - domain_.lo.y) / dy);
  i = std::clamp(i, 0, width_ - 1);
  j = std::clamp(j, 0, height_ - 1);
  return At(i, j);
}

double HeatmapGrid::MaxValue() const {
  double m = 0.0;
  for (const double v : values_) m = std::max(m, v);
  return m;
}

HeatmapGrid BuildHeatmapLInf(const std::vector<NnCircle>& circles,
                             const InfluenceMeasure& measure,
                             const Rect& domain, int width, int height) {
  HeatmapGrid grid(width, height, domain, measure.Evaluate({}));
  RasterStripSink raster(&grid);
  CountingSink counter;  // labels are not needed, only the strips
  CrestOptions options;
  options.strip_sink = &raster;
  RunCrest(circles, measure, &counter, options);
  return grid;
}

HeatmapGrid BuildHeatmapLInfParallel(const std::vector<NnCircle>& circles,
                                     const InfluenceMeasure& measure,
                                     const Rect& domain, int width,
                                     int height, int num_slabs) {
  HeatmapGrid grid(width, height, domain, measure.Evaluate({}));
  RasterStripSink raster(&grid);
  CrestOptions options;
  options.strip_sink = &raster;
  RunCrestParallelStrips(circles, measure, num_slabs, options);
  return grid;
}

namespace {

// Shared tail of the L1 builders: sweep rotated (L-infinity) circles over
// the rotated domain and resample back into the requested frame.
HeatmapGrid ResampleRotatedSweep(const std::vector<NnCircle>& rot_circles,
                                 const InfluenceMeasure& measure,
                                 const Rect& domain, int width, int height,
                                 int num_slabs, double oversample,
                                 CrestStats* stats_out,
                                 const CrestOptions& sweep_options) {
  const Point corners[4] = {domain.lo,
                            {domain.hi.x, domain.lo.y},
                            {domain.lo.x, domain.hi.y},
                            domain.hi};
  Rect rot_domain = EmptyRect();
  for (const Point& c : corners) {
    const Point r = RotateToLInf(c);
    rot_domain = rot_domain.Union(Rect{r, r});
  }
  const int rot_res = static_cast<int>(
      std::ceil(std::max(width, height) * std::max(1.0, oversample)));
  HeatmapGrid rotated(rot_res, rot_res, rot_domain, measure.Evaluate({}));
  {
    RNNHM_CHECK_MSG(sweep_options.strip_sink == nullptr,
                    "the L1 builder owns the strip sink");
    RasterStripSink raster(&rotated);
    CrestOptions options = sweep_options;
    options.strip_sink = &raster;
    const CrestStats stats =
        RunCrestParallelStrips(rot_circles, measure, num_slabs, options);
    if (stats_out != nullptr) *stats_out = stats;
  }

  HeatmapGrid out(width, height, domain, measure.Evaluate({}));
  for (int i = 0; i < width; ++i) {
    for (int j = 0; j < height; ++j) {
      out.At(i, j) = rotated.Sample(RotateToLInf(out.PixelCenter(i, j)));
    }
  }
  return out;
}

}  // namespace

HeatmapGrid BuildHeatmapL1(const std::vector<Point>& clients,
                           const std::vector<Point>& facilities,
                           const InfluenceMeasure& measure,
                           const Rect& domain, int width, int height,
                           double oversample) {
  // Sweep in the rotated frame over the rotated domain's bounding box.
  std::vector<Point> rot_clients;
  rot_clients.reserve(clients.size());
  for (const Point& p : clients) rot_clients.push_back(RotateToLInf(p));
  std::vector<Point> rot_facilities;
  rot_facilities.reserve(facilities.size());
  for (const Point& p : facilities) {
    rot_facilities.push_back(RotateToLInf(p));
  }
  const std::vector<NnCircle> circles =
      BuildNnCircles(rot_clients, rot_facilities, Metric::kLInf);
  return ResampleRotatedSweep(circles, measure, domain, width, height,
                              /*num_slabs=*/1, oversample,
                              /*stats_out=*/nullptr, CrestOptions{});
}

HeatmapGrid BuildHeatmapL1Parallel(const std::vector<NnCircle>& l1_circles,
                                   const InfluenceMeasure& measure,
                                   const Rect& domain, int width, int height,
                                   int num_slabs, double oversample,
                                   CrestStats* stats_out,
                                   const CrestOptions& sweep_options) {
  return ResampleRotatedSweep(RotateCirclesToLInf(l1_circles), measure,
                              domain, width, height, num_slabs, oversample,
                              stats_out, sweep_options);
}

HeatmapGrid BuildHeatmapL2(const std::vector<NnCircle>& circles,
                           const InfluenceMeasure& measure,
                           const Rect& domain, int width, int height) {
  return BuildHeatmapL2Parallel(circles, measure, domain, width, height,
                                /*num_slabs=*/1);
}

HeatmapGrid BuildHeatmapL2Parallel(const std::vector<NnCircle>& circles,
                                   const InfluenceMeasure& measure,
                                   const Rect& domain, int width, int height,
                                   int num_slabs) {
  HeatmapGrid grid(width, height, domain, measure.Evaluate({}));
  RasterArcSink raster(&grid);
  CrestL2Options options;
  options.arc_sink = &raster;
  RunCrestL2ParallelStrips(circles, measure, num_slabs, options);
  return grid;
}

HeatmapGrid BuildHeatmapForMetric(Metric metric,
                                  const std::vector<NnCircle>& circles,
                                  const InfluenceMeasure& measure,
                                  const Rect& domain, int width, int height) {
  switch (metric) {
    case Metric::kLInf:
      return BuildHeatmapLInf(circles, measure, domain, width, height);
    case Metric::kL1:
      return BuildHeatmapL1Parallel(circles, measure, domain, width, height,
                                    /*num_slabs=*/1);
    case Metric::kL2:
    default:
      return BuildHeatmapL2(circles, measure, domain, width, height);
  }
}

HeatmapGrid BuildHeatmapBruteForce(const std::vector<NnCircle>& circles,
                                   Metric metric,
                                   const InfluenceMeasure& measure,
                                   const Rect& domain, int width,
                                   int height) {
  HeatmapGrid grid(width, height, domain, measure.Evaluate({}));
  std::vector<int32_t> rnn;
  for (int i = 0; i < width; ++i) {
    for (int j = 0; j < height; ++j) {
      rnn = BruteForceRnnSet(grid.PixelCenter(i, j), circles, metric);
      grid.At(i, j) = measure.Evaluate(rnn);
    }
  }
  return grid;
}

Rect BoundingBox(const std::vector<Point>& points, double pad_fraction) {
  Rect box = EmptyRect();
  for (const Point& p : points) box = box.Union(Rect{p, p});
  if (pad_fraction > 0.0 && box.Area() >= 0.0 && !points.empty()) {
    const double pad =
        pad_fraction *
        std::max(box.hi.x - box.lo.x, box.hi.y - box.lo.y);
    box.lo.x -= pad;
    box.lo.y -= pad;
    box.hi.x += pad;
    box.hi.y += pad;
  }
  return box;
}

}  // namespace rnnhm
