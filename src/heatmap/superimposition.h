// The superimposition "heat map" of Fig. 3(b).
//
// Overlaying translucent NN-circles yields, at each point, the *count* of
// NN-circles covering it — which equals the true heat map only for the
// size measure (or a weighted sum). For any other measure superimposition
// is wrong; the taxi-sharing example reproduces the paper's Fig. 3
// discrepancy. Provided as a comparison baseline for examples and tests.
#ifndef RNNHM_HEATMAP_SUPERIMPOSITION_H_
#define RNNHM_HEATMAP_SUPERIMPOSITION_H_

#include <vector>

#include "geom/geometry.h"
#include "heatmap/heatmap.h"

namespace rnnhm {

/// Rasterizes the superimposition of NN-circles: each pixel's value is the
/// number of circles containing its center (optionally weighted).
HeatmapGrid BuildSuperimposition(const std::vector<NnCircle>& circles,
                                 Metric metric, const Rect& domain,
                                 int width, int height,
                                 const std::vector<double>* weights = nullptr);

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_SUPERIMPOSITION_H_
