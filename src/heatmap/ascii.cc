#include "heatmap/ascii.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rnnhm {

std::string RenderAscii(const HeatmapGrid& grid, int cols, int rows) {
  RNNHM_CHECK(cols > 0 && rows > 0);
  static constexpr char kShades[] = " .:-=+*#%@";
  constexpr int kLevels = sizeof(kShades) - 2;  // index of '@'
  const double max = std::max(grid.MaxValue(), 1e-12);
  const Rect& d = grid.domain();
  std::string out;
  out.reserve(static_cast<size_t>(rows) * (cols + 1));
  for (int r = 0; r < rows; ++r) {
    // Top row first: highest y band.
    const double y =
        d.lo.y + (d.hi.y - d.lo.y) * (rows - r - 0.5) / rows;
    for (int c = 0; c < cols; ++c) {
      const double x = d.lo.x + (d.hi.x - d.lo.x) * (c + 0.5) / cols;
      const double t = std::sqrt(std::clamp(grid.Sample({x, y}) / max,
                                            0.0, 1.0));
      out.push_back(kShades[static_cast<int>(std::lround(t * kLevels))]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace rnnhm
