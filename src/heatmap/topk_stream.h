// Bounded-memory streaming top-k region sink.
//
// RegionQuerySink retains every distinct RNN set (O(r * lambda) memory),
// which is fine for exploration but wasteful when only the k best regions
// are wanted. TopKStreamSink keeps a min-heap of the current k best
// distinct regions: O(k * lambda) memory regardless of arrangement size.
#ifndef RNNHM_HEATMAP_TOPK_STREAM_H_
#define RNNHM_HEATMAP_TOPK_STREAM_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/label_sink.h"
#include "heatmap/postprocess.h"

namespace rnnhm {

/// Streaming top-k by influence over distinct RNN sets.
class TopKStreamSink : public RegionLabelSink {
 public:
  explicit TopKStreamSink(size_t k);

  void OnRegionLabel(const Rect& subregion, std::span<const int32_t> rnn,
                     double influence) override;

  /// The top-k regions, descending by influence (ties by RNN set).
  /// O(k log k); call after the sweep.
  std::vector<InfluentialRegion> Result() const;

  /// Current admission threshold (smallest influence retained), or
  /// -infinity while fewer than k regions are held.
  double Threshold() const;

 private:
  struct SetHash {
    size_t operator()(const std::vector<int32_t>& v) const;
  };

  size_t k_;
  // Min-heap over heap_ by (influence, rnn); members_ guards distinctness.
  std::vector<InfluentialRegion> heap_;
  std::unordered_set<std::vector<int32_t>, SetHash> members_;
};

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_TOPK_STREAM_H_
