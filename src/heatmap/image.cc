#include "heatmap/image.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace rnnhm {

namespace {

struct Rgb {
  uint8_t r, g, b;
};

// Piecewise-linear warm ramp; t in [0, 1], larger = hotter = darker.
Rgb HeatColor(double t) {
  t = std::clamp(t, 0.0, 1.0);
  auto lerp = [](double a, double b, double u) {
    return static_cast<uint8_t>(std::lround(a + (b - a) * u));
  };
  if (t < 0.25) {
    const double u = t / 0.25;  // white -> yellow
    return {255, 255, lerp(255, 96, u)};
  }
  if (t < 0.6) {
    const double u = (t - 0.25) / 0.35;  // yellow -> red
    return {255, lerp(255, 64, u), lerp(96, 32, u)};
  }
  const double u = (t - 0.6) / 0.4;  // red -> near-black
  return {lerp(255, 48, u), lerp(64, 8, u), lerp(32, 8, u)};
}

}  // namespace

bool WritePgm(const HeatmapGrid& grid, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const double max = std::max(grid.MaxValue(), 1e-12);
  std::fprintf(f, "P5\n%d %d\n255\n", grid.width(), grid.height());
  std::vector<uint8_t> row(grid.width());
  for (int j = grid.height() - 1; j >= 0; --j) {  // top row first
    for (int i = 0; i < grid.width(); ++i) {
      const double t = std::sqrt(std::clamp(grid.At(i, j) / max, 0.0, 1.0));
      row[i] = static_cast<uint8_t>(std::lround(255.0 * (1.0 - t)));
    }
    std::fwrite(row.data(), 1, row.size(), f);
  }
  return std::fclose(f) == 0;
}

bool WritePpm(const HeatmapGrid& grid, const std::string& path,
              ColorMap map) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const double max = std::max(grid.MaxValue(), 1e-12);
  std::fprintf(f, "P6\n%d %d\n255\n", grid.width(), grid.height());
  std::vector<uint8_t> row(static_cast<size_t>(grid.width()) * 3);
  for (int j = grid.height() - 1; j >= 0; --j) {
    for (int i = 0; i < grid.width(); ++i) {
      const double t = std::sqrt(std::clamp(grid.At(i, j) / max, 0.0, 1.0));
      Rgb c;
      if (map == ColorMap::kHeat) {
        c = HeatColor(t);
      } else {
        const uint8_t g = static_cast<uint8_t>(std::lround(255.0 * (1.0 - t)));
        c = {g, g, g};
      }
      row[3 * i] = c.r;
      row[3 * i + 1] = c.g;
      row[3 * i + 2] = c.b;
    }
    std::fwrite(row.data(), 1, row.size(), f);
  }
  return std::fclose(f) == 0;
}

}  // namespace rnnhm
