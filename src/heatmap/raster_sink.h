// StripSink implementation that paints exact heat spans into a HeatmapGrid.
#ifndef RNNHM_HEATMAP_RASTER_SINK_H_
#define RNNHM_HEATMAP_RASTER_SINK_H_

#include "core/label_sink.h"
#include "heatmap/heatmap.h"

namespace rnnhm {

/// Paints sweep strips into a grid: a pixel receives a span's influence iff
/// its center lies inside the span (half-open on the high edges so adjacent
/// spans never double-paint).
class RasterStripSink : public StripSink {
 public:
  explicit RasterStripSink(HeatmapGrid* grid);

  void OnSpan(double x0, double x1, double y0, double y1,
              double influence) override;

 private:
  HeatmapGrid* grid_;
  double dx_;
  double dy_;
};

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_RASTER_SINK_H_
