// Sink implementations that paint exact heat spans into a HeatmapGrid.
#ifndef RNNHM_HEATMAP_RASTER_SINK_H_
#define RNNHM_HEATMAP_RASTER_SINK_H_

#include "core/crest_l2.h"
#include "core/label_sink.h"
#include "heatmap/heatmap.h"

namespace rnnhm {

/// Paints sweep strips into a grid: a pixel receives a span's influence iff
/// its center lies inside the span (half-open on the high edges so adjacent
/// spans never double-paint).
class RasterStripSink : public StripSink {
 public:
  explicit RasterStripSink(HeatmapGrid* grid);

  void OnSpan(double x0, double x1, double y0, double y1,
              double influence) override;

 private:
  HeatmapGrid* grid_;
  double dx_;
  double dy_;
};

/// Paints the L2 sweep's curved strips into a grid. For every pixel column
/// whose center abscissa lies in the strip, both bounding arcs are sampled
/// at exactly that abscissa and the pixels whose center ordinate falls in
/// [lower, upper) are painted. Because each pixel's value depends only on
/// the arcs live at its own center — never on where the strip was cut —
/// slab-decomposed sweeps paint bit-identical grids, and shards writing
/// through one shared sink touch disjoint columns (strips of different
/// slabs never overlap in x).
class RasterArcSink : public ArcStripSink {
 public:
  explicit RasterArcSink(HeatmapGrid* grid);

  void OnArcStrip(double x0, double x1, const ArcGeom& lower,
                  const ArcGeom& upper, double influence) override;

 private:
  HeatmapGrid* grid_;
  double dx_;
  double dy_;
};

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_RASTER_SINK_H_
