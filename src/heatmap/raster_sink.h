// Sink implementations that paint exact heat spans into a HeatmapGrid.
//
// Both sinks precompute their grid's pixel-center tables (SoA layout, see
// heatmap/raster_kernels.h) at construction: a span's pixel range is two
// PixelAxis::LowerBound calls instead of a per-pixel center recomputation
// with break/continue, and the arc sink batch-evaluates both bounding arcs
// over whole column runs through the SIMD ArcYAtColumns kernel. Painted
// pixels are exactly those whose centers fall in the half-open span — the
// same sampling convention as always, so rasters stay independent of how
// strips were cut.
#ifndef RNNHM_HEATMAP_RASTER_SINK_H_
#define RNNHM_HEATMAP_RASTER_SINK_H_

#include "core/crest_l2.h"
#include "core/label_sink.h"
#include "heatmap/heatmap.h"
#include "heatmap/raster_kernels.h"

namespace rnnhm {

/// Paints sweep strips into a grid: a pixel receives a span's influence iff
/// its center lies inside the span (half-open on the high edges so adjacent
/// spans never double-paint).
class RasterStripSink : public StripSink {
 public:
  explicit RasterStripSink(HeatmapGrid* grid);

  void OnSpan(double x0, double x1, double y0, double y1,
              double influence) override;

  /// Restricts painting to rows [row_lo, row_hi) — the dirty-rect splice's
  /// y-clip (heatmap/incremental.h). Rows outside the window keep their
  /// retained values. Defaults to the full grid; clamped to it. Set before
  /// the sweep runs, never concurrently with it.
  void SetRowWindow(int row_lo, int row_hi);

 private:
  HeatmapGrid* grid_;
  PixelAxis cols_;
  PixelAxis rows_;
  int row_lo_;
  int row_hi_;
};

/// Paints the L2 sweep's curved strips into a grid. For every pixel column
/// whose center abscissa lies in the strip, both bounding arcs are sampled
/// at exactly that abscissa and the pixels whose center ordinate falls in
/// [lower, upper) are painted. Because each pixel's value depends only on
/// the arcs live at its own center — never on where the strip was cut —
/// slab-decomposed sweeps paint bit-identical grids, and shards writing
/// through one shared sink touch disjoint columns (strips of different
/// slabs never overlap in x). Arc ordinates are evaluated in fixed-size
/// column batches through ArcYAtColumns; the batch buffers live on the
/// stack, so concurrent shard calls share no mutable sink state.
class RasterArcSink : public ArcStripSink {
 public:
  explicit RasterArcSink(HeatmapGrid* grid);

  void OnArcStrip(double x0, double x1, const ArcGeom& lower,
                  const ArcGeom& upper, double influence) override;

  /// Restricts painting to rows [row_lo, row_hi); see
  /// RasterStripSink::SetRowWindow.
  void SetRowWindow(int row_lo, int row_hi);

 private:
  HeatmapGrid* grid_;
  PixelAxis cols_;
  PixelAxis rows_;
  int row_lo_;
  int row_hi_;
};

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_RASTER_SINK_H_
