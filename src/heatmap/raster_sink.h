// Sink implementations that paint exact heat spans into a HeatmapGrid.
//
// Both sinks precompute their grid's pixel-center tables (SoA layout, see
// heatmap/raster_kernels.h) at construction: a span's pixel range is two
// PixelAxis::LowerBound calls instead of a per-pixel center recomputation
// with break/continue, and the arc sink batch-evaluates both bounding arcs
// over whole column runs through the SIMD ArcYAtColumns kernel. Painted
// pixels are exactly those whose centers fall in the half-open span — the
// same sampling convention as always, so rasters stay independent of how
// strips were cut.
//
// Fragment painting (src/tile/): both sinks also accept explicit GLOBAL
// pixel axes plus a half-open global index window and an origin. Spans are
// converted to indices through the global center tables — the exact tables
// the untiled sink would use — then clamped to the window and stored at
// (i - origin_col, j - origin_row). Because index conversion never sees the
// fragment's own geometry, a fragment raster is bit-identical to the
// corresponding sub-rectangle of the untiled raster by construction.
#ifndef RNNHM_HEATMAP_RASTER_SINK_H_
#define RNNHM_HEATMAP_RASTER_SINK_H_

#include "core/crest_l2.h"
#include "core/label_sink.h"
#include "heatmap/heatmap.h"
#include "heatmap/raster_kernels.h"

namespace rnnhm {

/// Paints sweep strips into a grid: a pixel receives a span's influence iff
/// its center lies inside the span (half-open on the high edges so adjacent
/// spans never double-paint).
class RasterStripSink : public StripSink {
 public:
  explicit RasterStripSink(HeatmapGrid* grid);

  /// Fragment-painting constructor: converts spans to pixel indices through
  /// the GLOBAL axes `cols`/`rows` (the untiled grid's center tables),
  /// paints only global indices in [col_lo, col_hi) x [row_lo, row_hi), and
  /// stores global pixel (i, j) at grid cell (i - origin_col,
  /// j - origin_row). `grid` must cover the window: requires
  /// origin_col <= col_lo, col_hi - origin_col <= grid->width() (same for
  /// rows). The plain constructor is the special case window = full grid,
  /// origin = (0, 0).
  RasterStripSink(HeatmapGrid* grid, const PixelAxis& cols,
                  const PixelAxis& rows, int col_lo, int col_hi, int row_lo,
                  int row_hi, int origin_col, int origin_row);

  void OnSpan(double x0, double x1, double y0, double y1,
              double influence) override;

  /// Restricts painting to rows [row_lo, row_hi) — the dirty-rect splice's
  /// y-clip (heatmap/incremental.h). Rows outside the window keep their
  /// retained values. Defaults to the construction window (the full grid
  /// for the plain constructor); clamped to it. Set before the sweep runs,
  /// never concurrently with it.
  void SetRowWindow(int row_lo, int row_hi);

 private:
  HeatmapGrid* grid_;
  PixelAxis cols_;
  PixelAxis rows_;
  int col_lo_;
  int col_hi_;
  int row_lo_;
  int row_hi_;
  int win_row_lo_;  // construction row window; SetRowWindow clamps to it
  int win_row_hi_;
  int origin_col_;
  int origin_row_;
};

/// Paints the L2 sweep's curved strips into a grid. For every pixel column
/// whose center abscissa lies in the strip, both bounding arcs are sampled
/// at exactly that abscissa and the pixels whose center ordinate falls in
/// [lower, upper) are painted. Because each pixel's value depends only on
/// the arcs live at its own center — never on where the strip was cut —
/// slab-decomposed sweeps paint bit-identical grids, and shards writing
/// through one shared sink touch disjoint columns (strips of different
/// slabs never overlap in x). Arc ordinates are evaluated in fixed-size
/// column batches through ArcYAtColumns; the batch buffers live on the
/// stack, so concurrent shard calls share no mutable sink state.
class RasterArcSink : public ArcStripSink {
 public:
  explicit RasterArcSink(HeatmapGrid* grid);

  /// Fragment-painting constructor; see RasterStripSink. ArcYAtColumns is
  /// pointwise (out[k] depends only on xs[k]), so the shifted batch
  /// boundaries a clamped column range produces cannot change any painted
  /// value.
  RasterArcSink(HeatmapGrid* grid, const PixelAxis& cols,
                const PixelAxis& rows, int col_lo, int col_hi, int row_lo,
                int row_hi, int origin_col, int origin_row);

  void OnArcStrip(double x0, double x1, const ArcGeom& lower,
                  const ArcGeom& upper, double influence) override;

  /// Restricts painting to rows [row_lo, row_hi); see
  /// RasterStripSink::SetRowWindow.
  void SetRowWindow(int row_lo, int row_hi);

 private:
  HeatmapGrid* grid_;
  PixelAxis cols_;
  PixelAxis rows_;
  int col_lo_;
  int col_hi_;
  int row_lo_;
  int row_hi_;
  int win_row_lo_;
  int win_row_hi_;
  int origin_col_;
  int origin_row_;
};

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_RASTER_SINK_H_
