#include "heatmap/postprocess.h"

#include <algorithm>

namespace rnnhm {

void RegionQuerySink::OnRegionLabel(const Rect& subregion,
                                    std::span<const int32_t> rnn,
                                    double influence) {
  std::vector<int32_t> key(rnn.begin(), rnn.end());
  std::sort(key.begin(), key.end());
  auto [it, inserted] =
      regions_.try_emplace(std::move(key), Entry{influence, subregion});
  if (!inserted) {
    it->second.influence = influence;
    it->second.representative = subregion;
  }
}

namespace {

std::vector<InfluentialRegion> SortedByInfluence(
    std::vector<InfluentialRegion> regions) {
  std::sort(regions.begin(), regions.end(),
            [](const InfluentialRegion& a, const InfluentialRegion& b) {
              if (a.influence != b.influence) return a.influence > b.influence;
              return a.rnn < b.rnn;
            });
  return regions;
}

}  // namespace

std::vector<InfluentialRegion> RegionQuerySink::TopK(size_t k) const {
  std::vector<InfluentialRegion> all;
  all.reserve(regions_.size());
  for (const auto& [rnn, entry] : regions_) {
    all.push_back(InfluentialRegion{rnn, entry.influence,
                                    entry.representative});
  }
  all = SortedByInfluence(std::move(all));
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<InfluentialRegion> RegionQuerySink::AboveThreshold(
    double threshold) const {
  std::vector<InfluentialRegion> out;
  for (const auto& [rnn, entry] : regions_) {
    if (entry.influence >= threshold) {
      out.push_back(InfluentialRegion{rnn, entry.influence,
                                      entry.representative});
    }
  }
  return SortedByInfluence(std::move(out));
}

}  // namespace rnnhm
