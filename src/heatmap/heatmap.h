// Heat-map grids and end-to-end heat-map construction.
//
// A HeatmapGrid is a dense raster of influence values over a rectangular
// domain. Builders are provided for all three metrics:
//   * L-infinity — exact strip rasterization fed by the CREST sweep;
//   * L1         — CREST in the rotated frame (Section VII-B), resampled
//                  back into the original frame;
//   * any metric — brute-force per-pixel evaluation (reference/showcase).
#ifndef RNNHM_HEATMAP_HEATMAP_H_
#define RNNHM_HEATMAP_HEATMAP_H_

#include <cstdint>
#include <vector>

#include "core/crest.h"
#include "core/influence_measure.h"
#include "geom/geometry.h"

namespace rnnhm {

/// Dense raster of influence values over `domain`. Pixel (i, j) covers the
/// cell [lo.x + i*dx, lo.x + (i+1)*dx] x [lo.y + j*dy, ...]; values are
/// point samples at cell centers.
class HeatmapGrid {
 public:
  HeatmapGrid(int width, int height, const Rect& domain,
              double background = 0.0);

  int width() const { return width_; }
  int height() const { return height_; }
  const Rect& domain() const { return domain_; }

  double& At(int i, int j) { return values_[Index(i, j)]; }
  double At(int i, int j) const { return values_[Index(i, j)]; }

  /// Raw pointer to row j (width() consecutive values) — the unchecked
  /// accessor the raster hot loops use; pixel (i, j) is Row(j)[i].
  double* Row(int j) { return values_.data() + static_cast<size_t>(j) * width_; }
  const double* Row(int j) const {
    return values_.data() + static_cast<size_t>(j) * width_;
  }

  /// Raw pointer to the full row-major value array (height() * width()).
  double* data() { return values_.data(); }
  const double* data() const { return values_.data(); }

  /// Center of pixel (i, j).
  Point PixelCenter(int i, int j) const;

  /// Value of the pixel containing p (clamped to the domain).
  double Sample(const Point& p) const;

  /// Maximum stored value.
  double MaxValue() const;

  const std::vector<double>& values() const { return values_; }

 private:
  size_t Index(int i, int j) const {
    return static_cast<size_t>(j) * width_ + i;
  }

  int width_;
  int height_;
  Rect domain_;
  std::vector<double> values_;
};

/// Builds the exact heat map of L-infinity NN-circles via the CREST strip
/// rasterizer. Pixels outside every labeled span keep the influence of the
/// empty RNN set.
HeatmapGrid BuildHeatmapLInf(const std::vector<NnCircle>& circles,
                             const InfluenceMeasure& measure,
                             const Rect& domain, int width, int height);

/// As BuildHeatmapLInf with the slab-parallel sweep: `num_slabs` shards
/// paint disjoint strips of the shared grid. Output is bit-identical to
/// the sequential builder for every slab count.
HeatmapGrid BuildHeatmapLInfParallel(const std::vector<NnCircle>& circles,
                                     const InfluenceMeasure& measure,
                                     const Rect& domain, int width,
                                     int height, int num_slabs);

/// Builds the heat map for the L1 metric: rotates clients and facilities
/// into the L-infinity frame, sweeps there, and resamples the rotated grid
/// back into `domain`. `oversample` scales the intermediate grid.
HeatmapGrid BuildHeatmapL1(const std::vector<Point>& clients,
                           const std::vector<Point>& facilities,
                           const InfluenceMeasure& measure,
                           const Rect& domain, int width, int height,
                           double oversample = 1.5);

/// As BuildHeatmapL1 from prebuilt L1 NN-circles (diamond radii): rotates
/// the circles, sweeps the rotated frame with `num_slabs` slab shards, and
/// resamples into `domain`. Output is identical for every slab count.
/// `stats_out`, when non-null, receives the rotated sweep's counters.
/// `sweep_options` forwards sweep tuning; its `strip_sink` must be null
/// (the builder owns the rasterizing sink).
HeatmapGrid BuildHeatmapL1Parallel(const std::vector<NnCircle>& l1_circles,
                                   const InfluenceMeasure& measure,
                                   const Rect& domain, int width, int height,
                                   int num_slabs, double oversample = 1.5,
                                   CrestStats* stats_out = nullptr,
                                   const CrestOptions& sweep_options = {});

/// Builds the exact heat map of L2 NN-circles (disks) via the arc sweep's
/// strip rasterizer: every pixel's value is the influence of the region
/// containing its center. Pixels outside every region keep the influence
/// of the empty RNN set.
HeatmapGrid BuildHeatmapL2(const std::vector<NnCircle>& circles,
                           const InfluenceMeasure& measure,
                           const Rect& domain, int width, int height);

/// As BuildHeatmapL2 with the slab-parallel arc sweep: `num_slabs` shards
/// paint disjoint pixel columns of the shared grid. Output is bit-identical
/// to the sequential builder for every slab count (see
/// core/crest_l2.h::RunCrestL2Parallel for the measure caveat).
HeatmapGrid BuildHeatmapL2Parallel(const std::vector<NnCircle>& circles,
                                   const InfluenceMeasure& measure,
                                   const Rect& domain, int width, int height,
                                   int num_slabs);

/// The sequential from-scratch builder for any metric over prebuilt
/// circles: dispatches to BuildHeatmapLInf / BuildHeatmapL1Parallel
/// (one slab) / BuildHeatmapL2. This is the single reference recipe the
/// session's full-rebuild path and verification tools share, so they can
/// never drift apart.
HeatmapGrid BuildHeatmapForMetric(Metric metric,
                                  const std::vector<NnCircle>& circles,
                                  const InfluenceMeasure& measure,
                                  const Rect& domain, int width, int height);

/// Reference builder: evaluates the RNN set of every pixel center directly.
/// O(width * height * n); use for tests and small showcases only.
HeatmapGrid BuildHeatmapBruteForce(const std::vector<NnCircle>& circles,
                                   Metric metric,
                                   const InfluenceMeasure& measure,
                                   const Rect& domain, int width, int height);

/// Axis-aligned bounding box of a point set, optionally padded by a
/// fraction of the larger extent.
Rect BoundingBox(const std::vector<Point>& points, double pad_fraction = 0.0);

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_HEATMAP_H_
