// Exact area-weighted influence distribution.
//
// Consumes the sweep's strip spans and accumulates, per influence value,
// the exact area where that influence holds. Answers exploration questions
// a point-sampled raster can only approximate: "what fraction of the city
// would a facility at influence >= v cover?", "what is the area-weighted
// p99 influence?". O(#spans) time, O(#distinct influences) memory.
#ifndef RNNHM_HEATMAP_HISTOGRAM_H_
#define RNNHM_HEATMAP_HISTOGRAM_H_

#include <map>

#include "core/label_sink.h"

namespace rnnhm {

/// StripSink accumulating exact area per influence value.
class AreaHistogramSink : public StripSink {
 public:
  void OnSpan(double x0, double x1, double y0, double y1,
              double influence) override;

  /// Exact area per influence value (only values that occur).
  const std::map<double, double>& area_by_influence() const {
    return areas_;
  }

  /// Total area covered by spans (the swept arrangement's extent).
  double TotalArea() const;

  /// Area with influence >= threshold.
  double AreaAtLeast(double threshold) const;

  /// Smallest influence v such that the area with influence >= v is at
  /// most `fraction` of the total (an area-weighted upper quantile).
  /// Returns 0 for an empty histogram.
  double QuantileInfluence(double fraction) const;

 private:
  std::map<double, double> areas_;
};

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_HISTOGRAM_H_
