#include "heatmap/serialization.h"

#include <cstdio>
#include <cstring>

namespace rnnhm {

namespace {
constexpr char kMagic[4] = {'R', 'N', 'H', 'M'};
constexpr uint32_t kVersion = 1;

struct Header {
  char magic[4];
  uint32_t version;
  int32_t width;
  int32_t height;
  double lo_x, lo_y, hi_x, hi_y;
};
}  // namespace

bool SaveHeatmap(const HeatmapGrid& grid, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  Header h;
  std::memcpy(h.magic, kMagic, 4);
  h.version = kVersion;
  h.width = grid.width();
  h.height = grid.height();
  h.lo_x = grid.domain().lo.x;
  h.lo_y = grid.domain().lo.y;
  h.hi_x = grid.domain().hi.x;
  h.hi_y = grid.domain().hi.y;
  bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
  ok = ok && std::fwrite(grid.values().data(), sizeof(double),
                         grid.values().size(),
                         f) == grid.values().size();
  return (std::fclose(f) == 0) && ok;
}

size_t SerializedSizeBytes(const HeatmapGrid& grid) {
  return sizeof(Header) + grid.values().size() * sizeof(double);
}

std::optional<HeatmapGrid> LoadHeatmap(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  Header h;
  if (std::fread(&h, sizeof(h), 1, f) != 1 ||
      std::memcmp(h.magic, kMagic, 4) != 0 || h.version != kVersion ||
      h.width <= 0 || h.height <= 0 || !(h.lo_x < h.hi_x) ||
      !(h.lo_y < h.hi_y)) {
    std::fclose(f);
    return std::nullopt;
  }
  HeatmapGrid grid(h.width, h.height, Rect{{h.lo_x, h.lo_y}, {h.hi_x, h.hi_y}});
  const size_t count = static_cast<size_t>(h.width) * h.height;
  std::vector<double> values(count);
  if (std::fread(values.data(), sizeof(double), count, f) != count) {
    std::fclose(f);
    return std::nullopt;
  }
  std::fclose(f);
  for (int j = 0; j < h.height; ++j) {
    for (int i = 0; i < h.width; ++i) {
      grid.At(i, j) = values[static_cast<size_t>(j) * h.width + i];
    }
  }
  return grid;
}

}  // namespace rnnhm
