#include "heatmap/serialization.h"

#include <cstdio>
#include <cstring>

namespace rnnhm {

namespace {
constexpr char kMagic[4] = {'R', 'N', 'H', 'M'};
constexpr uint32_t kVersion = 1;

struct Header {
  char magic[4];
  uint32_t version;
  int32_t width;
  int32_t height;
  double lo_x, lo_y, hi_x, hi_y;
};

bool Fail(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}
}  // namespace

void EncodeHeatmap(const HeatmapGrid& grid, std::vector<uint8_t>* out) {
  Header h;
  std::memcpy(h.magic, kMagic, 4);
  h.version = kVersion;
  h.width = grid.width();
  h.height = grid.height();
  h.lo_x = grid.domain().lo.x;
  h.lo_y = grid.domain().lo.y;
  h.hi_x = grid.domain().hi.x;
  h.hi_y = grid.domain().hi.y;
  const size_t start = out->size();
  out->resize(start + SerializedSizeBytes(grid));
  std::memcpy(out->data() + start, &h, sizeof(h));
  std::memcpy(out->data() + start + sizeof(h), grid.values().data(),
              grid.values().size() * sizeof(double));
}

std::optional<HeatmapGrid> DecodeHeatmap(const uint8_t* data, size_t size,
                                         size_t* consumed,
                                         std::string* error) {
  Header h;
  if (size < sizeof(h)) {
    Fail(error, "heatmap blob shorter than its header");
    return std::nullopt;
  }
  std::memcpy(&h, data, sizeof(h));
  if (std::memcmp(h.magic, kMagic, 4) != 0) {
    Fail(error, "bad heatmap magic");
    return std::nullopt;
  }
  if (h.version != kVersion) {
    Fail(error, "unsupported heatmap version");
    return std::nullopt;
  }
  if (h.width <= 0 || h.height <= 0) {
    Fail(error, "non-positive heatmap dimensions");
    return std::nullopt;
  }
  if (!(h.lo_x < h.hi_x) || !(h.lo_y < h.hi_y)) {
    Fail(error, "degenerate heatmap domain");
    return std::nullopt;
  }
  const uint64_t count =
      static_cast<uint64_t>(h.width) * static_cast<uint64_t>(h.height);
  if ((size - sizeof(h)) / sizeof(double) < count) {
    Fail(error, "truncated heatmap payload");
    return std::nullopt;
  }
  HeatmapGrid grid(h.width, h.height,
                   Rect{{h.lo_x, h.lo_y}, {h.hi_x, h.hi_y}});
  const uint8_t* payload = data + sizeof(h);
  for (int j = 0; j < h.height; ++j) {
    for (int i = 0; i < h.width; ++i) {
      double v;
      std::memcpy(&v, payload + (static_cast<size_t>(j) * h.width + i) *
                                    sizeof(double),
                  sizeof(v));
      grid.At(i, j) = v;
    }
  }
  if (consumed != nullptr) {
    *consumed = sizeof(h) + static_cast<size_t>(count) * sizeof(double);
  }
  return grid;
}

bool SaveHeatmap(const HeatmapGrid& grid, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::vector<uint8_t> bytes;
  EncodeHeatmap(grid, &bytes);
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return (std::fclose(f) == 0) && ok;
}

size_t SerializedSizeBytes(const HeatmapGrid& grid) {
  return sizeof(Header) + grid.values().size() * sizeof(double);
}

std::optional<HeatmapGrid> LoadHeatmap(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<uint8_t> bytes;
  uint8_t chunk[1 << 16];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return std::nullopt;
  return DecodeHeatmap(bytes.data(), bytes.size(), nullptr);
}

}  // namespace rnnhm
