// SIMD-friendly rasterization kernels shared by the raster sinks.
//
// The hot loop of heat-map painting evaluates disk arcs at consecutive
// pixel-column centers (RasterArcSink) and converts span bounds into
// contiguous pixel index ranges (both sinks). This header provides that
// machinery in SoA form:
//   * PixelAxis — the precomputed center table for one grid axis plus an
//     exact LowerBound over it, so sinks compute each span's index range
//     once instead of testing every pixel center with break/continue;
//   * ArcYAtColumns — geom/circle_geometry.h's ArcYAt batched over a run
//     of consecutive column centers, dispatched to explicit-width vector
//     kernels (SSE2 / AVX2 / AVX-512 on x86-64) at runtime.
//
// Bit-identity contract: for finite inputs, every backend produces exactly
// the doubles the scalar ArcYAt loop produces. The vector kernels replicate
// the scalar operation order per lane — clamp as max-then-min with the
// value operand first, `std::max(0.0, s)` as maxpd(s, 0) so a NaN/-0.0
// discriminant collapses to +0.0 identically, and vsqrtpd, which IEEE 754
// requires to be correctly rounded, matching scalar sqrt — and the build
// compiles with -ffp-contract=off so no path contracts mul+sub into a
// fused multiply-add the other path lacks. The differential test suite runs
// with SIMD on and off (RNNHM_DISABLE_SIMD=1) as the standing proof.
//
// Dispatch: the candidate kernel set is fixed at compile time (x86-64 with
// GNU-style target attributes compiles all of them; other targets get the
// scalar kernel only); the widest CPU-supported backend is picked once per
// process, unless the RNNHM_DISABLE_SIMD environment variable (any value
// but "0" or empty) forces the scalar path — the kill switch for narrowing
// down any suspected vectorization miscompile in production.
#ifndef RNNHM_HEATMAP_RASTER_KERNELS_H_
#define RNNHM_HEATMAP_RASTER_KERNELS_H_

#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// Vector backends, widest last. Backends are totally ordered: on x86-64
/// every CPU with AVX-512F also runs AVX2 and SSE2 code.
enum class RasterBackend : int {
  kScalar = 0,
  kSse2 = 1,    ///< 2 lanes (x86-64 baseline)
  kAvx2 = 2,    ///< 4 lanes
  kAvx512 = 3,  ///< 8 lanes
};

/// The widest backend this CPU supports, ignoring the kill switch.
RasterBackend DetectedRasterBackend();

/// The backend ArcYAtColumns dispatches to: DetectedRasterBackend() unless
/// RNNHM_DISABLE_SIMD forces kScalar (env read once per process) or a test
/// override is in effect.
RasterBackend ActiveRasterBackend();

/// Human-readable backend name ("scalar", "sse2", ...).
const char* RasterBackendName(RasterBackend backend);

/// Vector width of a backend in doubles (1, 2, 4, 8).
int RasterBackendLanes(RasterBackend backend);

/// out[k] = ArcYAt(center, radius, is_upper, xs[k]) for k in [0, count) —
/// the lower/upper semicircle ordinate at each abscissa, bit-identical to
/// the scalar loop on every backend (finite center/radius/xs assumed; the
/// sweep never emits non-finite arc geometry). xs and out need no
/// particular alignment and must not overlap.
void ArcYAtColumns(const Point& center, double radius, bool is_upper,
                   const double* xs, double* out, int count);

/// The scalar reference ArcYAtColumns dispatches to on kScalar — exposed
/// so parity tests can compare any backend against it directly.
void ArcYAtColumnsScalar(const Point& center, double radius, bool is_upper,
                         const double* xs, double* out, int count);

/// Test seam: force dispatch to `backend` for the calling process. Must be
/// at most DetectedRasterBackend() — forcing an unsupported backend would
/// fault on the first kernel call. Not thread-safe; call only from
/// single-threaded test setup.
void SetRasterBackendForTesting(RasterBackend backend);

/// Undoes SetRasterBackendForTesting (restores detection + kill switch).
void ResetRasterBackendForTesting();

/// Precomputed pixel-center table for one raster axis: centers()[i] =
/// lo + (i + 0.5) * step, evaluated in exactly that expression order so
/// the table matches what per-pixel code historically computed. With
/// step > 0 the table is nondecreasing, so every half-open coordinate
/// span maps to one contiguous index range — the SoA replacement for
/// per-pixel break/continue scans.
class PixelAxis {
 public:
  /// Builds the table for `n` pixels starting at domain coordinate `lo`
  /// with pixel pitch `step` (> 0).
  PixelAxis(double lo, double step, int n);

  int size() const { return n_; }
  double step() const { return step_; }
  /// The center table, size() entries.
  const double* centers() const { return centers_.data(); }

  /// First index i in [0, size()] with centers()[i] >= bound; size() when
  /// no center qualifies. Computed from an analytic guess clamped in
  /// double space (far-off-domain bounds never hit int-cast UB) and fixed
  /// up against the actual table, so the result is exact even when the
  /// guess rounds across a center. Pixels painted by a half-open span
  /// [b0, b1) are exactly indices [LowerBound(b0), LowerBound(b1)).
  int LowerBound(double bound) const;

 private:
  double lo_;
  double step_;
  int n_;
  std::vector<double> centers_;
};

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_RASTER_KERNELS_H_
