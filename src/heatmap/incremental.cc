#include "heatmap/incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/label_sink.h"
#include "heatmap/raster_sink.h"

namespace rnnhm {

IncrementalRasterStats RecomputeDirtyColumns(
    HeatmapGrid* grid, Metric metric, const std::vector<NnCircle>& circles,
    const InfluenceMeasure& measure, const DirtyRegionSet& dirty) {
  RNNHM_CHECK(grid != nullptr);
  RNNHM_CHECK_MSG(metric != Metric::kL1,
                  "kL1 sweeps the rotated frame; use a full rebuild");
  IncrementalRasterStats stats;
  stats.total_columns = grid->width();
  stats.total_rows = grid->height();
  if (dirty.empty()) return stats;

  const Rect& domain = grid->domain();
  const double dx = (domain.hi.x - domain.lo.x) / grid->width();
  const double dy = (domain.hi.y - domain.lo.y) / grid->height();
  const double background = measure.Evaluate({});

  // The event-grouping span must come from the full input so each slab
  // sweep groups simultaneous events exactly like an unclipped sweep.
  CrestL2Options l2_options;
  if (metric == Metric::kL2) {
    l2_options.event_group_span = DiskEventGroupSpan(circles);
  }

  RasterStripSink strip_raster(grid);
  RasterArcSink arc_raster(grid);
  CrestOptions crest_options;
  crest_options.strip_sink = &strip_raster;
  l2_options.arc_sink = &arc_raster;

  for (const DirtyRect& rect : dirty.Merged()) {
    // Columns/rows whose centers lie in the closed dirty rect. Only those
    // pixels can have changed; everything else keeps its retained value.
    // Clamp in double space first: a far-off-domain edit produces ordinals
    // beyond int range, and casting those is undefined behavior.
    const double width = grid->width();
    const double height = grid->height();
    const double lo_col = std::ceil((rect.x.lo - domain.lo.x) / dx - 0.5);
    const double hi_col = std::floor((rect.x.hi - domain.lo.x) / dx - 0.5);
    if (hi_col < 0.0 || lo_col > width - 1.0) continue;  // off-screen
    const int i0 = static_cast<int>(std::max(0.0, lo_col));
    const int i1 = static_cast<int>(std::min(width - 1.0, hi_col));
    if (i0 > i1) continue;  // between two column centers
    const double lo_row = std::ceil((rect.y.lo - domain.lo.y) / dy - 0.5);
    const double hi_row = std::floor((rect.y.hi - domain.lo.y) / dy - 0.5);
    if (hi_row < 0.0 || lo_row > height - 1.0) continue;  // off-screen
    const int j0 = static_cast<int>(std::max(0.0, lo_row));
    const int j1 = static_cast<int>(std::min(height - 1.0, hi_row));
    if (j0 > j1) continue;  // between two row centers

    // Reset the dirty sub-rect to the empty-set influence, then repaint it
    // with a sweep clipped in x to the pixel-aligned slab and row-windowed
    // in y to [j0, j1]. Slab edges sit half a pixel away from every column
    // center, so the half-open paint conventions put exactly the columns
    // i0..i1 inside the slab; the row window clips painting to exactly the
    // rows whose centers lie in the dirty y-interval.
    for (int j = j0; j <= j1; ++j) {
      double* row = grid->Row(j);
      std::fill(row + i0, row + i1 + 1, background);
    }
    strip_raster.SetRowWindow(j0, j1 + 1);
    arc_raster.SetRowWindow(j0, j1 + 1);
    const double clip_lo = domain.lo.x + i0 * dx;
    const double clip_hi = domain.lo.x + (i1 + 1) * dx;
    CountingSink labels;  // only the painted strips are needed
    const MetricSweepStats slab_stats =
        RunCrestSlabMetric(metric, circles, measure, &labels, clip_lo,
                           clip_hi, crest_options, l2_options);
    stats.sweep.crest.num_events += slab_stats.crest.num_events;
    stats.sweep.crest.num_labelings += slab_stats.crest.num_labelings;
    stats.sweep.crest.num_merged_intervals +=
        slab_stats.crest.num_merged_intervals;
    stats.sweep.crest.num_elements_walked +=
        slab_stats.crest.num_elements_walked;
    stats.sweep.l2.num_events += slab_stats.l2.num_events;
    stats.sweep.l2.num_cross_events += slab_stats.l2.num_cross_events;
    stats.sweep.l2.num_labelings += slab_stats.l2.num_labelings;
    stats.sweep.crest.num_circles = slab_stats.crest.num_circles;
    stats.sweep.crest.num_skipped_circles =
        slab_stats.crest.num_skipped_circles;
    stats.sweep.l2.num_circles = slab_stats.l2.num_circles;
    stats.sweep.l2.num_skipped_circles = slab_stats.l2.num_skipped_circles;
    ++stats.dirty_slabs;
    stats.dirty_columns += i1 - i0 + 1;
    stats.dirty_pixels +=
        static_cast<int64_t>(i1 - i0 + 1) * (j1 - j0 + 1);
  }
  return stats;
}

IncrementalRasterStats RecomputeDirtyColumns(
    HeatmapGrid* grid, Metric metric, const std::vector<NnCircle>& circles,
    const InfluenceMeasure& measure, const DirtyIntervalSet& dirty) {
  const double inf = std::numeric_limits<double>::infinity();
  DirtyRegionSet regions;
  for (const DirtyInterval& interval : dirty.Merged()) {
    regions.Add(interval.lo, interval.hi, -inf, inf);
  }
  return RecomputeDirtyColumns(grid, metric, circles, measure, regions);
}

}  // namespace rnnhm
