#include "heatmap/influence.h"

#include <algorithm>

#include "common/check.h"

namespace rnnhm {

double WeightedInfluence::Evaluate(std::span<const int32_t> clients) const {
  double total = 0.0;
  for (const int32_t c : clients) total += weights_[c];
  return total;
}

double WeightedInfluence::UpperBound(
    std::span<const int32_t> committed,
    std::span<const int32_t> optional) const {
  double total = Evaluate(committed);
  for (const int32_t c : optional) total += std::max(0.0, weights_[c]);
  return total;
}

CapacityInfluence::CapacityInfluence(std::vector<int32_t> client_nn,
                                     std::vector<int32_t> facility_capacity,
                                     int32_t candidate_capacity)
    : client_nn_(std::move(client_nn)),
      capacity_(std::move(facility_capacity)),
      candidate_capacity_(candidate_capacity) {
  rnn_count_.assign(capacity_.size(), 0);
  for (const int32_t f : client_nn_) {
    RNNHM_CHECK(f >= 0 && f < static_cast<int32_t>(capacity_.size()));
    ++rnn_count_[f];
  }
  for (size_t f = 0; f < capacity_.size(); ++f) {
    base_total_ += std::min(capacity_[f], rnn_count_[f]);
  }
  stolen_.assign(capacity_.size(), 0);
}

double CapacityInfluence::Evaluate(std::span<const int32_t> clients) const {
  // Adding the candidate p steals `clients` from their previous NNs.
  touched_.clear();
  for (const int32_t c : clients) {
    const int32_t f = client_nn_[c];
    if (stolen_[f] == 0) touched_.push_back(f);
    ++stolen_[f];
  }
  double total = base_total_;
  for (const int32_t f : touched_) {
    total -= std::min(capacity_[f], rnn_count_[f]);
    total += std::min(capacity_[f], rnn_count_[f] - stolen_[f]);
    stolen_[f] = 0;
  }
  total += std::min<int32_t>(candidate_capacity_,
                             static_cast<int32_t>(clients.size()));
  return total;
}

double CapacityInfluence::UpperBound(
    std::span<const int32_t> committed,
    std::span<const int32_t> optional) const {
  // Stealing can only lower the existing facilities' contribution, so the
  // base total plus the candidate's own saturated term bounds every
  // superset of `committed` within committed ∪ optional.
  const int32_t r = static_cast<int32_t>(committed.size() + optional.size());
  return base_total_ + std::min(candidate_capacity_, r);
}

ConnectivityInfluence::ConnectivityInfluence(
    int32_t num_clients,
    const std::vector<std::pair<int32_t, int32_t>>& edges) {
  adjacency_.assign(num_clients, {});
  for (const auto& [a, b] : edges) {
    RNNHM_CHECK(a >= 0 && a < num_clients && b >= 0 && b < num_clients);
    if (a == b) continue;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }
}

double ConnectivityInfluence::Evaluate(
    std::span<const int32_t> clients) const {
  // Thread-local membership scratch keeps concurrent Evaluate safe (the
  // slab-parallel sweeps share one measure across shards). It only ever
  // grows, is zero outside this call, and is restored to zero before
  // returning, so instances of any size can share it.
  thread_local std::vector<uint8_t> in_set;
  if (in_set.size() < adjacency_.size()) in_set.resize(adjacency_.size());
  for (const int32_t c : clients) in_set[c] = 1;
  int64_t twice_edges = 0;
  for (const int32_t c : clients) {
    for (const int32_t nb : adjacency_[c]) {
      if (in_set[nb]) ++twice_edges;
    }
  }
  for (const int32_t c : clients) in_set[c] = 0;
  return static_cast<double>(twice_edges) / 2.0;
}

}  // namespace rnnhm
