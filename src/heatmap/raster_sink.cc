#include "heatmap/raster_sink.h"

#include <algorithm>
#include <cmath>

#include "geom/circle_geometry.h"

namespace rnnhm {

RasterStripSink::RasterStripSink(HeatmapGrid* grid) : grid_(grid) {
  const Rect& d = grid_->domain();
  dx_ = (d.hi.x - d.lo.x) / grid_->width();
  dy_ = (d.hi.y - d.lo.y) / grid_->height();
}

RasterArcSink::RasterArcSink(HeatmapGrid* grid) : grid_(grid) {
  const Rect& d = grid_->domain();
  dx_ = (d.hi.x - d.lo.x) / grid_->width();
  dy_ = (d.hi.y - d.lo.y) / grid_->height();
}

void RasterArcSink::OnArcStrip(double x0, double x1, const ArcGeom& lower,
                               const ArcGeom& upper, double influence) {
  const Rect& d = grid_->domain();
  const int i0 =
      std::max(0, static_cast<int>(std::ceil((x0 - d.lo.x) / dx_ - 0.5)));
  for (int i = i0; i < grid_->width(); ++i) {
    const double cx = d.lo.x + (i + 0.5) * dx_;
    if (cx >= x1) break;
    if (cx < x0) continue;
    const double ylo = ArcYAt(lower.center, lower.radius, lower.is_upper, cx);
    const double yhi = ArcYAt(upper.center, upper.radius, upper.is_upper, cx);
    const int j0 =
        std::max(0, static_cast<int>(std::ceil((ylo - d.lo.y) / dy_ - 0.5)));
    for (int j = j0; j < grid_->height(); ++j) {
      const double cy = d.lo.y + (j + 0.5) * dy_;
      if (cy >= yhi) break;
      if (cy < ylo) continue;
      grid_->At(i, j) = influence;
    }
  }
}

void RasterStripSink::OnSpan(double x0, double x1, double y0, double y1,
                             double influence) {
  const Rect& d = grid_->domain();
  // A pixel is painted iff its center lies in [x0, x1) x [y0, y1); spans
  // tile strips exactly, so half-open edges avoid double-painting.
  const int i0 =
      std::max(0, static_cast<int>(std::ceil((x0 - d.lo.x) / dx_ - 0.5)));
  const int j0 =
      std::max(0, static_cast<int>(std::ceil((y0 - d.lo.y) / dy_ - 0.5)));
  for (int i = i0; i < grid_->width(); ++i) {
    const double cx = d.lo.x + (i + 0.5) * dx_;
    if (cx >= x1) break;
    if (cx < x0) continue;
    for (int j = j0; j < grid_->height(); ++j) {
      const double cy = d.lo.y + (j + 0.5) * dy_;
      if (cy >= y1) break;
      if (cy < y0) continue;
      grid_->At(i, j) = influence;
    }
  }
}

}  // namespace rnnhm
