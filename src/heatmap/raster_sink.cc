#include "heatmap/raster_sink.h"

#include <algorithm>

#include "common/check.h"

namespace rnnhm {

namespace {

// Arc-ordinate batch size: large enough to amortize dispatch and keep the
// widest kernel (8 lanes) busy, small enough to live on each caller's
// stack — parallel shards paint through one shared sink, so OnArcStrip
// must not keep mutable scratch in the sink object.
constexpr int kArcBatch = 64;

PixelAxis MakeCols(const HeatmapGrid& grid) {
  const Rect& d = grid.domain();
  return PixelAxis(d.lo.x, (d.hi.x - d.lo.x) / grid.width(), grid.width());
}

PixelAxis MakeRows(const HeatmapGrid& grid) {
  const Rect& d = grid.domain();
  return PixelAxis(d.lo.y, (d.hi.y - d.lo.y) / grid.height(), grid.height());
}

void CheckFragmentWindow(const HeatmapGrid& grid, int col_lo, int col_hi,
                         int row_lo, int row_hi, int origin_col,
                         int origin_row) {
  RNNHM_CHECK(origin_col <= col_lo && origin_row <= row_lo);
  RNNHM_CHECK(col_hi - origin_col <= grid.width());
  RNNHM_CHECK(row_hi - origin_row <= grid.height());
}

}  // namespace

RasterStripSink::RasterStripSink(HeatmapGrid* grid)
    : grid_(grid),
      cols_(MakeCols(*grid)),
      rows_(MakeRows(*grid)),
      col_lo_(0),
      col_hi_(grid->width()),
      row_lo_(0),
      row_hi_(grid->height()),
      win_row_lo_(0),
      win_row_hi_(grid->height()),
      origin_col_(0),
      origin_row_(0) {}

RasterStripSink::RasterStripSink(HeatmapGrid* grid, const PixelAxis& cols,
                                 const PixelAxis& rows, int col_lo,
                                 int col_hi, int row_lo, int row_hi,
                                 int origin_col, int origin_row)
    : grid_(grid),
      cols_(cols),
      rows_(rows),
      col_lo_(col_lo),
      col_hi_(col_hi),
      row_lo_(row_lo),
      row_hi_(row_hi),
      win_row_lo_(row_lo),
      win_row_hi_(row_hi),
      origin_col_(origin_col),
      origin_row_(origin_row) {
  CheckFragmentWindow(*grid, col_lo, col_hi, row_lo, row_hi, origin_col,
                      origin_row);
}

void RasterStripSink::SetRowWindow(int row_lo, int row_hi) {
  row_lo_ = std::max(win_row_lo_, row_lo);
  row_hi_ = std::min(win_row_hi_, row_hi);
}

void RasterStripSink::OnSpan(double x0, double x1, double y0, double y1,
                             double influence) {
  // A pixel is painted iff its center lies in [x0, x1) x [y0, y1); spans
  // tile strips exactly, so half-open edges avoid double-painting. The
  // center tables are monotone, so the painted set is one index rectangle.
  const int i0 = std::max(cols_.LowerBound(x0), col_lo_);
  const int i1 = std::min(cols_.LowerBound(x1), col_hi_);
  if (i0 >= i1) return;
  const int j0 = std::max(rows_.LowerBound(y0), row_lo_);
  const int j1 = std::min(rows_.LowerBound(y1), row_hi_);
  for (int j = j0; j < j1; ++j) {
    double* row = grid_->Row(j - origin_row_);
    std::fill(row + (i0 - origin_col_), row + (i1 - origin_col_), influence);
  }
}

RasterArcSink::RasterArcSink(HeatmapGrid* grid)
    : grid_(grid),
      cols_(MakeCols(*grid)),
      rows_(MakeRows(*grid)),
      col_lo_(0),
      col_hi_(grid->width()),
      row_lo_(0),
      row_hi_(grid->height()),
      win_row_lo_(0),
      win_row_hi_(grid->height()),
      origin_col_(0),
      origin_row_(0) {}

RasterArcSink::RasterArcSink(HeatmapGrid* grid, const PixelAxis& cols,
                             const PixelAxis& rows, int col_lo, int col_hi,
                             int row_lo, int row_hi, int origin_col,
                             int origin_row)
    : grid_(grid),
      cols_(cols),
      rows_(rows),
      col_lo_(col_lo),
      col_hi_(col_hi),
      row_lo_(row_lo),
      row_hi_(row_hi),
      win_row_lo_(row_lo),
      win_row_hi_(row_hi),
      origin_col_(origin_col),
      origin_row_(origin_row) {
  CheckFragmentWindow(*grid, col_lo, col_hi, row_lo, row_hi, origin_col,
                      origin_row);
}

void RasterArcSink::SetRowWindow(int row_lo, int row_hi) {
  row_lo_ = std::max(win_row_lo_, row_lo);
  row_hi_ = std::min(win_row_hi_, row_hi);
}

void RasterArcSink::OnArcStrip(double x0, double x1, const ArcGeom& lower,
                               const ArcGeom& upper, double influence) {
  const int i0 = std::max(cols_.LowerBound(x0), col_lo_);
  const int i1 = std::min(cols_.LowerBound(x1), col_hi_);
  const int width = grid_->width();
  double* const base = grid_->data();
  double ylo[kArcBatch];
  double yhi[kArcBatch];
  for (int batch = i0; batch < i1; batch += kArcBatch) {
    const int n = std::min(kArcBatch, i1 - batch);
    const double* centers = cols_.centers() + batch;
    ArcYAtColumns(lower.center, lower.radius, lower.is_upper, centers, ylo, n);
    ArcYAtColumns(upper.center, upper.radius, upper.is_upper, centers, yhi, n);
    for (int k = 0; k < n; ++k) {
      const int j0 = std::max(rows_.LowerBound(ylo[k]), row_lo_);
      const int j1 = std::min(rows_.LowerBound(yhi[k]), row_hi_);
      if (j0 >= j1) continue;
      double* p = base + static_cast<size_t>(j0 - origin_row_) * width +
                  (batch + k - origin_col_);
      for (int j = j0; j < j1; ++j, p += width) *p = influence;
    }
  }
}

}  // namespace rnnhm
