#include "heatmap/raster_sink.h"

#include <algorithm>

namespace rnnhm {

namespace {

// Arc-ordinate batch size: large enough to amortize dispatch and keep the
// widest kernel (8 lanes) busy, small enough to live on each caller's
// stack — parallel shards paint through one shared sink, so OnArcStrip
// must not keep mutable scratch in the sink object.
constexpr int kArcBatch = 64;

PixelAxis MakeCols(const HeatmapGrid& grid) {
  const Rect& d = grid.domain();
  return PixelAxis(d.lo.x, (d.hi.x - d.lo.x) / grid.width(), grid.width());
}

PixelAxis MakeRows(const HeatmapGrid& grid) {
  const Rect& d = grid.domain();
  return PixelAxis(d.lo.y, (d.hi.y - d.lo.y) / grid.height(), grid.height());
}

}  // namespace

RasterStripSink::RasterStripSink(HeatmapGrid* grid)
    : grid_(grid),
      cols_(MakeCols(*grid)),
      rows_(MakeRows(*grid)),
      row_lo_(0),
      row_hi_(grid->height()) {}

void RasterStripSink::SetRowWindow(int row_lo, int row_hi) {
  row_lo_ = std::max(0, row_lo);
  row_hi_ = std::min(grid_->height(), row_hi);
}

void RasterStripSink::OnSpan(double x0, double x1, double y0, double y1,
                             double influence) {
  // A pixel is painted iff its center lies in [x0, x1) x [y0, y1); spans
  // tile strips exactly, so half-open edges avoid double-painting. The
  // center tables are monotone, so the painted set is one index rectangle.
  const int i0 = cols_.LowerBound(x0);
  const int i1 = cols_.LowerBound(x1);
  if (i0 >= i1) return;
  const int j0 = std::max(rows_.LowerBound(y0), row_lo_);
  const int j1 = std::min(rows_.LowerBound(y1), row_hi_);
  for (int j = j0; j < j1; ++j) {
    double* row = grid_->Row(j);
    std::fill(row + i0, row + i1, influence);
  }
}

RasterArcSink::RasterArcSink(HeatmapGrid* grid)
    : grid_(grid),
      cols_(MakeCols(*grid)),
      rows_(MakeRows(*grid)),
      row_lo_(0),
      row_hi_(grid->height()) {}

void RasterArcSink::SetRowWindow(int row_lo, int row_hi) {
  row_lo_ = std::max(0, row_lo);
  row_hi_ = std::min(grid_->height(), row_hi);
}

void RasterArcSink::OnArcStrip(double x0, double x1, const ArcGeom& lower,
                               const ArcGeom& upper, double influence) {
  const int i0 = cols_.LowerBound(x0);
  const int i1 = cols_.LowerBound(x1);
  const int width = grid_->width();
  double* const base = grid_->data();
  double ylo[kArcBatch];
  double yhi[kArcBatch];
  for (int batch = i0; batch < i1; batch += kArcBatch) {
    const int n = std::min(kArcBatch, i1 - batch);
    const double* centers = cols_.centers() + batch;
    ArcYAtColumns(lower.center, lower.radius, lower.is_upper, centers, ylo, n);
    ArcYAtColumns(upper.center, upper.radius, upper.is_upper, centers, yhi, n);
    for (int k = 0; k < n; ++k) {
      const int j0 = std::max(rows_.LowerBound(ylo[k]), row_lo_);
      const int j1 = std::min(rows_.LowerBound(yhi[k]), row_hi_);
      double* p = base + static_cast<size_t>(j0) * width + (batch + k);
      for (int j = j0; j < j1; ++j, p += width) *p = influence;
    }
  }
}

}  // namespace rnnhm
