#include "heatmap/raster_sink.h"

#include <algorithm>
#include <cmath>

namespace rnnhm {

RasterStripSink::RasterStripSink(HeatmapGrid* grid) : grid_(grid) {
  const Rect& d = grid_->domain();
  dx_ = (d.hi.x - d.lo.x) / grid_->width();
  dy_ = (d.hi.y - d.lo.y) / grid_->height();
}

void RasterStripSink::OnSpan(double x0, double x1, double y0, double y1,
                             double influence) {
  const Rect& d = grid_->domain();
  // A pixel is painted iff its center lies in [x0, x1) x [y0, y1); spans
  // tile strips exactly, so half-open edges avoid double-painting.
  const int i0 =
      std::max(0, static_cast<int>(std::ceil((x0 - d.lo.x) / dx_ - 0.5)));
  const int j0 =
      std::max(0, static_cast<int>(std::ceil((y0 - d.lo.y) / dy_ - 0.5)));
  for (int i = i0; i < grid_->width(); ++i) {
    const double cx = d.lo.x + (i + 0.5) * dx_;
    if (cx >= x1) break;
    if (cx < x0) continue;
    for (int j = j0; j < grid_->height(); ++j) {
      const double cy = d.lo.y + (j + 0.5) * dy_;
      if (cy >= y1) break;
      if (cy < y0) continue;
      grid_->At(i, j) = influence;
    }
  }
}

}  // namespace rnnhm
