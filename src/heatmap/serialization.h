// Binary serialization of heat-map grids.
//
// Simple versioned little-endian format ("RNHM"): header with dimensions
// and domain, then row-major doubles. Lets expensive city-scale maps be
// computed once and re-rendered / re-queried later (see the CLI's
// `render` subcommand), and doubles as the grid payload of the serving
// wire protocol (query/wire.h): EncodeHeatmap/DecodeHeatmap are the
// buffer-level primitives, SaveHeatmap/LoadHeatmap the file wrappers.
#ifndef RNNHM_HEATMAP_SERIALIZATION_H_
#define RNNHM_HEATMAP_SERIALIZATION_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "heatmap/heatmap.h"

namespace rnnhm {

/// Appends the grid's serialized bytes (the exact byte stream SaveHeatmap
/// writes) to `*out`.
void EncodeHeatmap(const HeatmapGrid& grid, std::vector<uint8_t>* out);

/// Decodes one grid from the front of [data, data + size). On success
/// advances `*consumed` by the number of bytes read (trailing bytes are
/// left for the caller). On any malformed input — short buffer, bad
/// magic/version, non-positive dimensions, degenerate domain, truncated
/// payload — returns nullopt and, when `error` is non-null, describes the
/// failure; never CHECK-fails, so it is safe on untrusted bytes.
std::optional<HeatmapGrid> DecodeHeatmap(const uint8_t* data, size_t size,
                                         size_t* consumed,
                                         std::string* error = nullptr);

/// Writes the grid to `path`. Returns false on I/O failure.
bool SaveHeatmap(const HeatmapGrid& grid, const std::string& path);

/// Loads a grid written by SaveHeatmap. Returns nullopt on I/O failure,
/// bad magic/version, or a truncated payload.
std::optional<HeatmapGrid> LoadHeatmap(const std::string& path);

/// Exact size in bytes of the serialized form of `grid` (header +
/// row-major payload). Doubles as the resident-size estimate the
/// engine's SweepCache charges per memoized grid.
size_t SerializedSizeBytes(const HeatmapGrid& grid);

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_SERIALIZATION_H_
