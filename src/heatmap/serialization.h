// Binary serialization of heat-map grids.
//
// Simple versioned little-endian format ("RNHM"): header with dimensions
// and domain, then row-major doubles. Lets expensive city-scale maps be
// computed once and re-rendered / re-queried later (see the CLI's
// `render` subcommand).
#ifndef RNNHM_HEATMAP_SERIALIZATION_H_
#define RNNHM_HEATMAP_SERIALIZATION_H_

#include <cstddef>
#include <optional>
#include <string>

#include "heatmap/heatmap.h"

namespace rnnhm {

/// Writes the grid to `path`. Returns false on I/O failure.
bool SaveHeatmap(const HeatmapGrid& grid, const std::string& path);

/// Loads a grid written by SaveHeatmap. Returns nullopt on I/O failure,
/// bad magic/version, or a truncated payload.
std::optional<HeatmapGrid> LoadHeatmap(const std::string& path);

/// Exact size in bytes of the file SaveHeatmap would write for `grid`
/// (header + row-major payload). Doubles as the resident-size estimate the
/// engine's SweepCache charges per memoized grid.
size_t SerializedSizeBytes(const HeatmapGrid& grid);

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_SERIALIZATION_H_
