// Concrete influence measures (Section I / Section VIII-B).
//
// The paper stresses that CREST is generic over "any influence measure
// computable from RNN sets". This module provides the measures used in the
// paper's examples and experiments:
//   * SizeInfluence        — |R|, the classic Korn & Muthukrishnan measure;
//   * WeightedInfluence    — sum of per-client weights;
//   * CapacityInfluence    — the capacity-constrained utility of [22],
//                            sum over f of min{c(f), |R(f)|} after adding
//                            the candidate location;
//   * ConnectivityInfluence— the taxi-sharing measure of Fig. 3: number of
//                            "close-destination" edges within the RNN set.
#ifndef RNNHM_HEATMAP_INFLUENCE_H_
#define RNNHM_HEATMAP_INFLUENCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/influence_measure.h"

namespace rnnhm {

/// Influence = |R| (size of the RNN set).
class SizeInfluence : public InfluenceMeasure {
 public:
  double Evaluate(std::span<const int32_t> clients) const override {
    return static_cast<double>(clients.size());
  }
};

/// Influence = sum of client weights.
class WeightedInfluence : public InfluenceMeasure {
 public:
  explicit WeightedInfluence(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  double Evaluate(std::span<const int32_t> clients) const override;
  double UpperBound(std::span<const int32_t> committed,
                    std::span<const int32_t> optional) const override;

 private:
  std::vector<double> weights_;
};

/// The capacity-constrained measure of [22] (see the Introduction):
///   influence(p) = sum_{f in F ∪ {p}} min{c(f), |R(f)|},
/// where adding p steals p's RNN set from the clients' previous NNs.
/// Construction precomputes each client's current NN facility and every
/// facility's RNN count, so Evaluate costs O(|R|).
class CapacityInfluence : public InfluenceMeasure {
 public:
  /// `client_nn[i]` is the facility index currently nearest to client i;
  /// `facility_capacity[j]` is c(f_j); `candidate_capacity` is c(p) for the
  /// evaluated location.
  CapacityInfluence(std::vector<int32_t> client_nn,
                    std::vector<int32_t> facility_capacity,
                    int32_t candidate_capacity);

  double Evaluate(std::span<const int32_t> clients) const override;
  /// The measure is not monotone (stealing clients can lower the existing
  /// facilities' contribution), so the default bound does not apply. This
  /// override returns base_total + min(c(p), |committed| + |optional|),
  /// which dominates every realizable superset.
  double UpperBound(std::span<const int32_t> committed,
                    std::span<const int32_t> optional) const override;

 private:
  std::vector<int32_t> client_nn_;
  std::vector<int32_t> capacity_;
  std::vector<int32_t> rnn_count_;  // |R(f)| without the candidate
  int32_t candidate_capacity_;
  double base_total_ = 0.0;         // sum_f min{c(f), |R(f)|}
  // Scratch for Evaluate (stolen counts per touched facility).
  mutable std::vector<int32_t> stolen_;
  mutable std::vector<int32_t> touched_;
};

/// The taxi-sharing measure of Fig. 3: clients are graph vertices, an edge
/// connects passengers with close destinations, and the influence of a
/// region is the number of edges both of whose endpoints are in the RNN
/// set. Evaluate keeps its membership scratch thread-local, so one
/// instance is safe to share across concurrent sweep shards.
class ConnectivityInfluence : public InfluenceMeasure {
 public:
  /// `num_clients` vertices; `edges` are undirected (i, j) pairs.
  ConnectivityInfluence(int32_t num_clients,
                        const std::vector<std::pair<int32_t, int32_t>>& edges);

  double Evaluate(std::span<const int32_t> clients) const override;

 private:
  std::vector<std::vector<int32_t>> adjacency_;
};

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_INFLUENCE_H_
