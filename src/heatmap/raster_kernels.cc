#include "heatmap/raster_kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "geom/circle_geometry.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RNNHM_X86_SIMD 1
#include <immintrin.h>
#else
#define RNNHM_X86_SIMD 0
#endif

namespace rnnhm {

namespace {

// --- Vector kernels -------------------------------------------------------
//
// Each kernel is ArcYAt unrolled across lanes with the scalar operation
// order preserved exactly:
//   dx = clamp(x - cx, -r, r)      -> min(max(t, -r), r), value first
//   s  = r*r - dx*dx               -> separate mul/sub (-ffp-contract=off)
//   dy = sqrt(max(0.0, s))         -> maxpd(s, 0): NaN/-0.0 lanes -> +0.0,
//                                     matching std::max(0.0, s); hardware
//                                     sqrt is correctly rounded like sqrt()
//   y  = is_upper ? cy + dy : cy - dy
// Remainders fall through to the scalar loop; a scalar iteration computes
// the same double as a vector lane would, so the seam cannot show.

#if RNNHM_X86_SIMD

void ArcYAtColumnsSse2(const Point& center, double radius, bool is_upper,
                       const double* xs, double* out, int count) {
  const __m128d vcx = _mm_set1_pd(center.x);
  const __m128d vcy = _mm_set1_pd(center.y);
  const __m128d vlo = _mm_set1_pd(-radius);
  const __m128d vhi = _mm_set1_pd(radius);
  const __m128d vr2 = _mm_set1_pd(radius * radius);
  const __m128d vzero = _mm_setzero_pd();
  int k = 0;
  for (; k + 2 <= count; k += 2) {
    __m128d t = _mm_sub_pd(_mm_loadu_pd(xs + k), vcx);
    t = _mm_min_pd(_mm_max_pd(t, vlo), vhi);
    __m128d s = _mm_sub_pd(vr2, _mm_mul_pd(t, t));
    const __m128d dy = _mm_sqrt_pd(_mm_max_pd(s, vzero));
    _mm_storeu_pd(out + k,
                  is_upper ? _mm_add_pd(vcy, dy) : _mm_sub_pd(vcy, dy));
  }
  if (k < count) {
    ArcYAtColumnsScalar(center, radius, is_upper, xs + k, out + k, count - k);
  }
}

__attribute__((target("avx2"))) void ArcYAtColumnsAvx2(
    const Point& center, double radius, bool is_upper, const double* xs,
    double* out, int count) {
  const __m256d vcx = _mm256_set1_pd(center.x);
  const __m256d vcy = _mm256_set1_pd(center.y);
  const __m256d vlo = _mm256_set1_pd(-radius);
  const __m256d vhi = _mm256_set1_pd(radius);
  const __m256d vr2 = _mm256_set1_pd(radius * radius);
  const __m256d vzero = _mm256_setzero_pd();
  int k = 0;
  for (; k + 4 <= count; k += 4) {
    __m256d t = _mm256_sub_pd(_mm256_loadu_pd(xs + k), vcx);
    t = _mm256_min_pd(_mm256_max_pd(t, vlo), vhi);
    __m256d s = _mm256_sub_pd(vr2, _mm256_mul_pd(t, t));
    const __m256d dy = _mm256_sqrt_pd(_mm256_max_pd(s, vzero));
    _mm256_storeu_pd(
        out + k, is_upper ? _mm256_add_pd(vcy, dy) : _mm256_sub_pd(vcy, dy));
  }
  if (k < count) {
    ArcYAtColumnsSse2(center, radius, is_upper, xs + k, out + k, count - k);
  }
}

__attribute__((target("avx512f"))) void ArcYAtColumnsAvx512(
    const Point& center, double radius, bool is_upper, const double* xs,
    double* out, int count) {
  const __m512d vcx = _mm512_set1_pd(center.x);
  const __m512d vcy = _mm512_set1_pd(center.y);
  const __m512d vlo = _mm512_set1_pd(-radius);
  const __m512d vhi = _mm512_set1_pd(radius);
  const __m512d vr2 = _mm512_set1_pd(radius * radius);
  const __m512d vzero = _mm512_setzero_pd();
  int k = 0;
  for (; k + 8 <= count; k += 8) {
    __m512d t = _mm512_sub_pd(_mm512_loadu_pd(xs + k), vcx);
    t = _mm512_min_pd(_mm512_max_pd(t, vlo), vhi);
    __m512d s = _mm512_sub_pd(vr2, _mm512_mul_pd(t, t));
    const __m512d dy = _mm512_sqrt_pd(_mm512_max_pd(s, vzero));
    _mm512_storeu_pd(
        out + k, is_upper ? _mm512_add_pd(vcy, dy) : _mm512_sub_pd(vcy, dy));
  }
  if (k < count) {
    ArcYAtColumnsAvx2(center, radius, is_upper, xs + k, out + k, count - k);
  }
}

#endif  // RNNHM_X86_SIMD

bool SimdKillSwitchSet() {
  const char* env = std::getenv("RNNHM_DISABLE_SIMD");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

RasterBackend DetectBackend() {
#if RNNHM_X86_SIMD
  if (__builtin_cpu_supports("avx512f")) return RasterBackend::kAvx512;
  if (__builtin_cpu_supports("avx2")) return RasterBackend::kAvx2;
  return RasterBackend::kSse2;  // x86-64 baseline
#else
  return RasterBackend::kScalar;
#endif
}

RasterBackend DefaultBackend() {
  return SimdKillSwitchSet() ? RasterBackend::kScalar : DetectBackend();
}

// Process-wide dispatch target. Initialized once (thread-safe magic
// static); mutated only by the single-threaded test seam.
RasterBackend& BackendSlot() {
  static RasterBackend backend = DefaultBackend();
  return backend;
}

}  // namespace

RasterBackend DetectedRasterBackend() {
  static const RasterBackend detected = DetectBackend();
  return detected;
}

RasterBackend ActiveRasterBackend() { return BackendSlot(); }

const char* RasterBackendName(RasterBackend backend) {
  switch (backend) {
    case RasterBackend::kScalar:
      return "scalar";
    case RasterBackend::kSse2:
      return "sse2";
    case RasterBackend::kAvx2:
      return "avx2";
    case RasterBackend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

int RasterBackendLanes(RasterBackend backend) {
  switch (backend) {
    case RasterBackend::kScalar:
      return 1;
    case RasterBackend::kSse2:
      return 2;
    case RasterBackend::kAvx2:
      return 4;
    case RasterBackend::kAvx512:
      return 8;
  }
  return 1;
}

void ArcYAtColumnsScalar(const Point& center, double radius, bool is_upper,
                         const double* xs, double* out, int count) {
  for (int k = 0; k < count; ++k) {
    out[k] = ArcYAt(center, radius, is_upper, xs[k]);
  }
}

void ArcYAtColumns(const Point& center, double radius, bool is_upper,
                   const double* xs, double* out, int count) {
  switch (ActiveRasterBackend()) {
#if RNNHM_X86_SIMD
    case RasterBackend::kAvx512:
      ArcYAtColumnsAvx512(center, radius, is_upper, xs, out, count);
      return;
    case RasterBackend::kAvx2:
      ArcYAtColumnsAvx2(center, radius, is_upper, xs, out, count);
      return;
    case RasterBackend::kSse2:
      ArcYAtColumnsSse2(center, radius, is_upper, xs, out, count);
      return;
#endif
    default:
      ArcYAtColumnsScalar(center, radius, is_upper, xs, out, count);
      return;
  }
}

void SetRasterBackendForTesting(RasterBackend backend) {
  RNNHM_CHECK_MSG(static_cast<int>(backend) <=
                      static_cast<int>(DetectedRasterBackend()),
                  "cannot force a raster backend this CPU does not support");
  BackendSlot() = backend;
}

void ResetRasterBackendForTesting() { BackendSlot() = DefaultBackend(); }

PixelAxis::PixelAxis(double lo, double step, int n)
    : lo_(lo), step_(step), n_(n) {
  RNNHM_CHECK(n >= 0);
  RNNHM_CHECK_MSG(step > 0.0, "pixel pitch must be positive");
  centers_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    centers_[static_cast<size_t>(i)] = lo + (i + 0.5) * step;
  }
}

int PixelAxis::LowerBound(double bound) const {
  // Analytic guess, clamped in double space before the int cast (an
  // off-domain bound can put the guess far beyond int range). A NaN bound
  // fails both clamp comparisons and lands on 0; both fix-up loops then
  // no-op (comparisons with NaN are false), matching "no center >= NaN".
  const double guess = std::ceil((bound - lo_) / step_ - 0.5);
  int i;
  if (!(guess > 0.0)) {
    i = 0;
  } else if (guess >= static_cast<double>(n_)) {
    i = n_;
  } else {
    i = static_cast<int>(guess);
  }
  // The guess's division can round across a center when `bound` sits
  // within an ulp of it; walk to the exact table boundary (at most a step
  // or two in practice).
  while (i > 0 && centers_[static_cast<size_t>(i) - 1] >= bound) --i;
  while (i < n_ && centers_[static_cast<size_t>(i)] < bound) ++i;
  return i;
}

}  // namespace rnnhm
