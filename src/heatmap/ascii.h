// Terminal rendering of heat maps.
//
// Quick exploration aid: renders a HeatmapGrid as rows of shade characters
// (space = cold, '@' = hottest), normalized by the grid maximum. Used by
// the examples so the heat map is visible without an image viewer.
#ifndef RNNHM_HEATMAP_ASCII_H_
#define RNNHM_HEATMAP_ASCII_H_

#include <string>

#include "heatmap/heatmap.h"

namespace rnnhm {

/// Renders the grid into `cols` x `rows` characters (top row first),
/// sampling pixel centers. Returns a newline-separated string.
std::string RenderAscii(const HeatmapGrid& grid, int cols = 72,
                        int rows = 24);

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_ASCII_H_
