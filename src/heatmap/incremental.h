// Incremental heat-map maintenance: re-sweep only dirty slabs and splice
// the recomputed pixels into a retained grid.
//
// Exactness rests on the raster sinks' column-center sampling convention:
// a pixel's value depends only on the sweep elements live at its own
// center abscissa, never on where slabs were cut (RasterStripSink paints
// half-open spans, RasterArcSink samples both bounding arcs at each
// column center). A sweep clipped to any slab [lo, hi) therefore paints
// the columns whose centers fall in [lo, hi) bit-identically to a full
// sweep — so recomputing just the slabs covering a session edit's dirty
// x-intervals, after resetting those columns to the background influence,
// reproduces the from-scratch raster exactly.
//
// The 2D dirty-rect splice sharpens this to dirty *area*: each dirty rect
// is the bounding box of an edited circle's footprint, so every pixel
// whose value can differ lies inside some rect — in its x-range AND its
// y-range. Merging rects by x-overlap unions their y-intervals, which
// keeps the invariant: a pixel in a merged rect's x-slab but outside its
// y-union is outside every contributing footprint, hence unchanged, and
// retaining it untouched is exact. The clipped re-sweep still runs over
// full columns (the sweep line is vertical), but reset and repaint are
// both restricted to the dirty row window (the sinks' SetRowWindow), so
// splice cost scales with the dirty rectangle's area, not the column
// height.
//
// Supported for the two column-separable sweeps (kLInf squares, kL2
// disks). kL1 sweeps the pi/4-rotated frame, where a vertical slab of the
// output frame is not a vertical slab; its callers fall back to a full
// rebuild (see HeatmapSession::RasterIncremental).
#ifndef RNNHM_HEATMAP_INCREMENTAL_H_
#define RNNHM_HEATMAP_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "core/crest_parallel.h"
#include "core/dirty_interval.h"
#include "heatmap/heatmap.h"

namespace rnnhm {

/// Counters of one incremental recompute pass.
struct IncrementalRasterStats {
  int dirty_slabs = 0;     ///< merged dirty rects that touched the grid
  int dirty_columns = 0;   ///< pixel columns reset and recomputed
  int total_columns = 0;   ///< grid width (for dirty-fraction reporting)
  int total_rows = 0;      ///< grid height (for dirty-fraction reporting)
  /// Pixels actually reset and repainted (sum of dirty-rect areas in
  /// pixels). With 1D dirty intervals this is dirty_columns * height; a
  /// y-localized edit drives it far lower.
  int64_t dirty_pixels = 0;
  MetricSweepStats sweep;  ///< summed counters of the clipped sweeps run
};

/// Recomputes in place every pixel of `grid` whose center lies in one of
/// `dirty`'s merged rects' pixel-aligned bounding slabs: those pixels are
/// reset to `measure.Evaluate({})` and repainted by sweeps of the
/// *current* `circles` clipped in x to the slab covering each rect, with
/// painting row-windowed to the rect's dirty rows. `metric` must be kLInf
/// or kL2 (the column-separable sweeps) and must match the metric the
/// circles were built under. Rects outside the grid are skipped
/// (off-screen edits change no pixel). Returns the pass counters; the
/// grid is untouched when `dirty` is empty.
IncrementalRasterStats RecomputeDirtyColumns(
    HeatmapGrid* grid, Metric metric, const std::vector<NnCircle>& circles,
    const InfluenceMeasure& measure, const DirtyRegionSet& dirty);

/// 1D compatibility overload: treats each dirty x-interval as a rect of
/// unbounded y-extent (full-height columns, the pre-dirty-rect behavior).
IncrementalRasterStats RecomputeDirtyColumns(
    HeatmapGrid* grid, Metric metric, const std::vector<NnCircle>& circles,
    const InfluenceMeasure& measure, const DirtyIntervalSet& dirty);

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_INCREMENTAL_H_
