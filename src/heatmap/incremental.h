// Incremental heat-map maintenance: re-sweep only dirty slabs and splice
// the recomputed pixel columns into a retained grid.
//
// Exactness rests on the raster sinks' column-center sampling convention:
// a pixel's value depends only on the sweep elements live at its own
// center abscissa, never on where slabs were cut (RasterStripSink paints
// half-open spans, RasterArcSink samples both bounding arcs at each
// column center). A sweep clipped to any slab [lo, hi) therefore paints
// the columns whose centers fall in [lo, hi) bit-identically to a full
// sweep — so recomputing just the slabs covering a session edit's dirty
// x-intervals, after resetting those columns to the background influence,
// reproduces the from-scratch raster exactly.
//
// Supported for the two column-separable sweeps (kLInf squares, kL2
// disks). kL1 sweeps the pi/4-rotated frame, where a vertical slab of the
// output frame is not a vertical slab; its callers fall back to a full
// rebuild (see HeatmapSession::RasterIncremental).
#ifndef RNNHM_HEATMAP_INCREMENTAL_H_
#define RNNHM_HEATMAP_INCREMENTAL_H_

#include <vector>

#include "core/crest_parallel.h"
#include "core/dirty_interval.h"
#include "heatmap/heatmap.h"

namespace rnnhm {

/// Counters of one incremental recompute pass.
struct IncrementalRasterStats {
  int dirty_slabs = 0;     ///< merged dirty intervals that touched the grid
  int dirty_columns = 0;   ///< pixel columns reset and recomputed
  int total_columns = 0;   ///< grid width (for dirty-fraction reporting)
  MetricSweepStats sweep;  ///< summed counters of the clipped sweeps run
};

/// Recomputes in place every pixel column of `grid` whose center abscissa
/// lies in one of `dirty`'s merged intervals: the columns are reset to
/// `measure.Evaluate({})` and repainted by sweeps of the *current*
/// `circles` clipped to the pixel-aligned slab covering each interval.
/// `metric` must be kLInf or kL2 (the column-separable sweeps) and must
/// match the metric the circles were built under. Dirty intervals outside
/// the grid's x-range are skipped (off-screen edits change no pixel).
/// Returns the pass counters; the grid is untouched when `dirty` is empty.
IncrementalRasterStats RecomputeDirtyColumns(
    HeatmapGrid* grid, Metric metric, const std::vector<NnCircle>& circles,
    const InfluenceMeasure& measure, const DirtyIntervalSet& dirty);

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_INCREMENTAL_H_
