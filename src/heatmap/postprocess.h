// Interactive post-processing operations over labeled regions.
//
// The paper contrasts CREST with superimposition by noting CREST's output
// supports "selectively showing regions with heat values above a threshold
// or regions having the top-k heat values" as cheap post-processing. These
// sinks implement those two operations.
#ifndef RNNHM_HEATMAP_POSTPROCESS_H_
#define RNNHM_HEATMAP_POSTPROCESS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/label_sink.h"

namespace rnnhm {

/// A distinct influential region: its RNN set, influence, and one
/// representative subregion rectangle.
struct InfluentialRegion {
  std::vector<int32_t> rnn;  // sorted
  double influence = 0.0;
  Rect representative = EmptyRect();
};

/// Collects distinct RNN sets with their influence; supports top-k and
/// threshold extraction after the sweep.
class RegionQuerySink : public RegionLabelSink {
 public:
  void OnRegionLabel(const Rect& subregion, std::span<const int32_t> rnn,
                     double influence) override;

  /// Regions with the k highest influence values (distinct RNN sets),
  /// descending by influence; ties broken by RNN set for determinism.
  std::vector<InfluentialRegion> TopK(size_t k) const;

  /// Regions with influence >= threshold, descending by influence.
  std::vector<InfluentialRegion> AboveThreshold(double threshold) const;

  /// Number of distinct RNN sets observed.
  size_t NumDistinctSets() const { return regions_.size(); }

 private:
  struct Entry {
    double influence;
    Rect representative;
  };
  std::map<std::vector<int32_t>, Entry> regions_;
};

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_POSTPROCESS_H_
