#include "heatmap/superimposition.h"

#include <algorithm>
#include <cmath>

namespace rnnhm {

HeatmapGrid BuildSuperimposition(const std::vector<NnCircle>& circles,
                                 Metric metric, const Rect& domain,
                                 int width, int height,
                                 const std::vector<double>* weights) {
  HeatmapGrid grid(width, height, domain, 0.0);
  const double dx = (domain.hi.x - domain.lo.x) / width;
  const double dy = (domain.hi.y - domain.lo.y) / height;
  for (const NnCircle& c : circles) {
    const Rect b = c.Bounds();
    const int i0 = std::max(
        0, static_cast<int>(std::floor((b.lo.x - domain.lo.x) / dx - 0.5)));
    const int j0 = std::max(
        0, static_cast<int>(std::floor((b.lo.y - domain.lo.y) / dy - 0.5)));
    const double w = weights != nullptr ? (*weights)[c.client] : 1.0;
    for (int i = i0; i < width; ++i) {
      const double cx = domain.lo.x + (i + 0.5) * dx;
      if (cx > b.hi.x) break;
      for (int j = j0; j < height; ++j) {
        const double cy = domain.lo.y + (j + 0.5) * dy;
        if (cy > b.hi.y) break;
        if (c.Contains({cx, cy}, metric)) grid.At(i, j) += w;
      }
    }
  }
  return grid;
}

}  // namespace rnnhm
