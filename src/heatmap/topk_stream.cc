#include "heatmap/topk_stream.h"

#include <algorithm>
#include <limits>

namespace rnnhm {

namespace {

// Min-heap order: the *worst* region at the front.
bool HeapAfter(const InfluentialRegion& a, const InfluentialRegion& b) {
  if (a.influence != b.influence) return a.influence > b.influence;
  return a.rnn < b.rnn;
}

}  // namespace

size_t TopKStreamSink::SetHash::operator()(
    const std::vector<int32_t>& v) const {
  size_t h = 0xcbf29ce484222325ULL;
  for (const int32_t x : v) {
    h ^= static_cast<size_t>(x) + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

TopKStreamSink::TopKStreamSink(size_t k) : k_(k) {}

void TopKStreamSink::OnRegionLabel(const Rect& subregion,
                                   std::span<const int32_t> rnn,
                                   double influence) {
  if (k_ == 0) return;
  if (heap_.size() >= k_ && influence < heap_.front().influence) {
    // Cannot beat the current k-th best.
    return;
  }
  std::vector<int32_t> key(rnn.begin(), rnn.end());
  std::sort(key.begin(), key.end());
  if (members_.count(key)) return;  // already retained
  if (heap_.size() == k_) {
    // Ties are resolved under the same total order the batch TopK uses
    // (influence descending, then RNN set ascending), keeping the two
    // implementations byte-identical.
    const InfluentialRegion& worst = heap_.front();
    if (influence == worst.influence && !(key < worst.rnn)) return;
    std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
    members_.erase(heap_.back().rnn);
    heap_.pop_back();
  }
  members_.insert(key);
  heap_.push_back(InfluentialRegion{std::move(key), influence, subregion});
  std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
}

std::vector<InfluentialRegion> TopKStreamSink::Result() const {
  std::vector<InfluentialRegion> out = heap_;
  std::sort(out.begin(), out.end(),
            [](const InfluentialRegion& a, const InfluentialRegion& b) {
              if (a.influence != b.influence) return a.influence > b.influence;
              return a.rnn < b.rnn;
            });
  return out;
}

double TopKStreamSink::Threshold() const {
  if (heap_.size() < k_) return -std::numeric_limits<double>::infinity();
  return heap_.front().influence;
}

}  // namespace rnnhm
