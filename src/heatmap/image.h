// Image export of heat maps (PGM grayscale / PPM color).
//
// Used to regenerate the qualitative figures (Fig. 1 and Fig. 15): the heat
// map is normalized by its maximum and written with a warm color ramp where
// darker means more influential, matching the paper's rendering.
#ifndef RNNHM_HEATMAP_IMAGE_H_
#define RNNHM_HEATMAP_IMAGE_H_

#include <string>

#include "heatmap/heatmap.h"

namespace rnnhm {

/// Color map selector for WritePpm.
enum class ColorMap {
  kHeat,      ///< white -> yellow -> red -> near-black (paper style)
  kGrayscale  ///< white -> black
};

/// Writes the grid as a binary PGM (P5), darker = higher value.
/// Returns false on I/O failure.
bool WritePgm(const HeatmapGrid& grid, const std::string& path);

/// Writes the grid as a binary PPM (P6) with the given color map.
/// Values are normalized by the grid maximum (gamma 0.5 to lift the mid
/// range, as heat maps are typically displayed). Returns false on I/O
/// failure.
bool WritePpm(const HeatmapGrid& grid, const std::string& path,
              ColorMap map = ColorMap::kHeat);

}  // namespace rnnhm

#endif  // RNNHM_HEATMAP_IMAGE_H_
