#include "heatmap/histogram.h"

namespace rnnhm {

void AreaHistogramSink::OnSpan(double x0, double x1, double y0, double y1,
                               double influence) {
  const double area = (x1 - x0) * (y1 - y0);
  if (area > 0.0) areas_[influence] += area;
}

double AreaHistogramSink::TotalArea() const {
  double total = 0.0;
  for (const auto& [influence, area] : areas_) total += area;
  return total;
}

double AreaHistogramSink::AreaAtLeast(double threshold) const {
  double total = 0.0;
  for (auto it = areas_.lower_bound(threshold); it != areas_.end(); ++it) {
    total += it->second;
  }
  return total;
}

double AreaHistogramSink::QuantileInfluence(double fraction) const {
  if (areas_.empty()) return 0.0;
  const double budget = TotalArea() * fraction;
  double cumulative = 0.0;
  // Walk from the hottest value down until the budget is exhausted.
  for (auto it = areas_.rbegin(); it != areas_.rend(); ++it) {
    cumulative += it->second;
    if (cumulative >= budget) return it->first;
  }
  return areas_.begin()->first;
}

}  // namespace rnnhm
