#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace rnnhm {

std::vector<Point> GenerateUniform(size_t n, const Rect& domain, Rng& rng) {
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Point{rng.Uniform(domain.lo.x, domain.hi.x),
                        rng.Uniform(domain.lo.y, domain.hi.y)});
  }
  return out;
}

std::vector<Point> GenerateZipf(size_t n, const Rect& domain, double skew,
                                Rng& rng, int grid_size) {
  RNNHM_CHECK(grid_size > 0 && skew >= 0.0);
  const int cells = grid_size * grid_size;
  // Rank cells by distance from a random hot corner so the skew has a
  // spatial interpretation.
  const Point hot{rng.NextBounded(2) ? domain.lo.x : domain.hi.x,
                  rng.NextBounded(2) ? domain.lo.y : domain.hi.y};
  std::vector<int> rank(cells);
  std::iota(rank.begin(), rank.end(), 0);
  const double cw = (domain.hi.x - domain.lo.x) / grid_size;
  const double ch = (domain.hi.y - domain.lo.y) / grid_size;
  auto cell_center = [&](int c) {
    return Point{domain.lo.x + (c % grid_size + 0.5) * cw,
                 domain.lo.y + (c / grid_size + 0.5) * ch};
  };
  std::sort(rank.begin(), rank.end(), [&](int a, int b) {
    return DistanceL2Squared(cell_center(a), hot) <
           DistanceL2Squared(cell_center(b), hot);
  });
  // Zipf CDF over ranks: P(rank i) ~ 1 / (i+1)^skew.
  std::vector<double> cdf(cells);
  double total = 0.0;
  for (int i = 0; i < cells; ++i) {
    total += std::pow(static_cast<double>(i + 1), -skew);
    cdf[i] = total;
  }
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng.NextDouble() * total;
    const int r = static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const int c = rank[std::min(r, cells - 1)];
    const double x0 = domain.lo.x + (c % grid_size) * cw;
    const double y0 = domain.lo.y + (c / grid_size) * ch;
    out.push_back(Point{rng.Uniform(x0, x0 + cw), rng.Uniform(y0, y0 + ch)});
  }
  return out;
}

std::vector<Point> GenerateCity(size_t n, const Rect& domain,
                                const CityParams& params, Rng& rng) {
  const double margin =
      params.margin_fraction *
      std::min(domain.hi.x - domain.lo.x, domain.hi.y - domain.lo.y);
  const Rect inner{{domain.lo.x + margin, domain.lo.y + margin},
                   {domain.hi.x - margin, domain.hi.y - margin}};
  // Cluster cores: positions uniform in the inner area, radii log-normal.
  struct Cluster {
    Point center;
    double sigma;
    double weight;
  };
  std::vector<Cluster> clusters;
  const double scale =
      std::min(inner.hi.x - inner.lo.x, inner.hi.y - inner.lo.y);
  double weight_total = 0.0;
  for (int c = 0; c < params.num_clusters; ++c) {
    Cluster cl;
    cl.center = Point{rng.Uniform(inner.lo.x, inner.hi.x),
                      rng.Uniform(inner.lo.y, inner.hi.y)};
    cl.sigma = scale * 0.01 * std::exp(rng.NextGaussian() * 0.6 + 0.5);
    cl.weight = std::exp(rng.NextGaussian());  // few dominant cores
    weight_total += cl.weight;
    clusters.push_back(cl);
  }
  std::vector<double> cluster_cdf;
  double acc = 0.0;
  for (const Cluster& cl : clusters) {
    acc += cl.weight / weight_total;
    cluster_cdf.push_back(acc);
  }
  auto pick_cluster = [&]() -> const Cluster& {
    const double u = rng.NextDouble();
    const size_t i = static_cast<size_t>(
        std::lower_bound(cluster_cdf.begin(), cluster_cdf.end(), u) -
        cluster_cdf.begin());
    return clusters[std::min(i, clusters.size() - 1)];
  };
  auto clamp_to = [&](Point p) {
    p.x = std::clamp(p.x, inner.lo.x, inner.hi.x);
    p.y = std::clamp(p.y, inner.lo.y, inner.hi.y);
    return p;
  };

  std::vector<Point> out;
  out.reserve(n);
  const size_t n_cluster = static_cast<size_t>(n * params.cluster_fraction);
  const size_t n_corridor = static_cast<size_t>(n * params.corridor_fraction);
  for (size_t i = 0; i < n_cluster; ++i) {
    const Cluster& cl = pick_cluster();
    out.push_back(clamp_to(Point{cl.center.x + rng.NextGaussian() * cl.sigma,
                                 cl.center.y + rng.NextGaussian() * cl.sigma}));
  }
  for (size_t i = 0; i < n_corridor; ++i) {
    // A point jittered around the segment between two cluster cores.
    const Cluster& a = pick_cluster();
    const Cluster& b = pick_cluster();
    const double t = rng.NextDouble();
    const double jitter = scale * 0.004;
    out.push_back(clamp_to(
        Point{a.center.x + (b.center.x - a.center.x) * t +
                  rng.NextGaussian() * jitter,
              a.center.y + (b.center.y - a.center.y) * t +
                  rng.NextGaussian() * jitter}));
  }
  while (out.size() < n) {
    out.push_back(Point{rng.Uniform(inner.lo.x, inner.hi.x),
                        rng.Uniform(inner.lo.y, inner.hi.y)});
  }
  return out;
}

std::vector<Point> SampleWithoutReplacement(const std::vector<Point>& points,
                                            size_t k, Rng& rng) {
  RNNHM_CHECK_MSG(k <= points.size(), "sample larger than population");
  std::vector<size_t> idx(points.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::vector<Point> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + rng.NextBounded(idx.size() - i);
    std::swap(idx[i], idx[j]);
    out.push_back(points[idx[i]]);
  }
  return out;
}

std::vector<NnCircle> MakeWorstCaseSquares(int n) {
  std::vector<NnCircle> out;
  out.reserve(n);
  for (int i = 1; i <= n; ++i) {
    out.push_back(NnCircle{{static_cast<double>(i), static_cast<double>(i)},
                           n / 2.0, i - 1});
  }
  return out;
}

std::vector<NnCircle> MakeElementDistinctnessSquares(
    const std::vector<double>& values) {
  RNNHM_CHECK(!values.empty());
  std::vector<NnCircle> out;
  out.reserve(values.size() - 1);
  const double a1 = values[0];
  for (size_t i = 1; i < values.size(); ++i) {
    const double ai = values[i];
    out.push_back(NnCircle{{(a1 + ai) / 2.0, (a1 + ai) / 2.0},
                           std::fabs(ai - a1) / 2.0,
                           static_cast<int32_t>(i - 1)});
  }
  return out;
}

}  // namespace rnnhm
