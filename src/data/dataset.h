// Named experiment data sets (Table II and the synthetic distributions).
//
// MakeDataset reproduces the paper's four data sets. NYC and LA are
// synthetic-city substitutes sized like Table II (the paper's POI data is
// not public — see DESIGN.md); Uniform and Zipfian match Section VIII.
#ifndef RNNHM_DATA_DATASET_H_
#define RNNHM_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// One experiment data set: a pool of points the client and facility
/// samples are drawn from.
struct Dataset {
  std::string name;
  std::string description;
  std::vector<Point> points;
};

/// Data set selector matching Section VIII.
enum class DatasetKind { kNyc, kLa, kUniform, kZipfian };

/// Human-readable name ("NYC", "LA", "Uniform", "Zipfian").
std::string DatasetKindName(DatasetKind kind);

/// Builds the named data set deterministically. `size` == 0 uses the
/// Table II size for the city data sets (128,547 / 116,596) and 131,072 for
/// the synthetic ones.
Dataset MakeDataset(DatasetKind kind, uint64_t seed, size_t size = 0);

/// Draws disjoint client / facility samples from a data set pool, as the
/// experiments do ("we uniformly sample from the data sets to obtain the
/// client set O and the facility set F").
struct Workload {
  std::vector<Point> clients;
  std::vector<Point> facilities;
};
Workload SampleWorkload(const Dataset& dataset, size_t num_clients,
                        size_t num_facilities, uint64_t seed);

}  // namespace rnnhm

#endif  // RNNHM_DATA_DATASET_H_
