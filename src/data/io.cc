#include "data/io.h"

#include <cstdio>
#include <cstring>

namespace rnnhm {

bool WritePointsCsv(const std::vector<Point>& points,
                    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const Point& p : points) {
    std::fprintf(f, "%.17g,%.17g\n", p.x, p.y);
  }
  return std::fclose(f) == 0;
}

bool ReadPointsCsv(const std::string& path, std::vector<Point>* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char line[256];
  bool ok = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') continue;
    double x = 0.0, y = 0.0;
    if (std::sscanf(line, "%lf,%lf", &x, &y) != 2) {
      ok = false;
      break;
    }
    out->push_back(Point{x, y});
  }
  std::fclose(f);
  return ok;
}

}  // namespace rnnhm
