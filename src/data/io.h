// CSV import/export of point sets.
#ifndef RNNHM_DATA_IO_H_
#define RNNHM_DATA_IO_H_

#include <string>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// Writes points as "x,y" lines. Returns false on I/O failure.
bool WritePointsCsv(const std::vector<Point>& points,
                    const std::string& path);

/// Reads "x,y" lines (blank lines and lines starting with '#' skipped).
/// Returns false on I/O or parse failure; `out` holds rows parsed so far.
bool ReadPointsCsv(const std::string& path, std::vector<Point>* out);

}  // namespace rnnhm

#endif  // RNNHM_DATA_IO_H_
