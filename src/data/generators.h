// Workload generators (Section VIII).
//
// The paper evaluates on two real POI data sets (NYC, LA — obtained
// privately from the authors of [2]) and two synthetic distributions
// (Uniform and Zipfian with skew 0.2). The real data is not publicly
// available, so GenerateCity produces a documented substitute: a mixture of
// Gaussian clusters (downtown cores), linear corridors between clusters
// (arterial roads), and a uniform background, leaving an empty margin
// (water / mountains). All generators are deterministic given the seed.
#ifndef RNNHM_DATA_GENERATORS_H_
#define RNNHM_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/geometry.h"

namespace rnnhm {

/// n i.i.d. uniform points in `domain`.
std::vector<Point> GenerateUniform(size_t n, const Rect& domain, Rng& rng);

/// n points with Zipfian spatial skew: the domain is divided into
/// grid_size^2 cells ranked by distance from a randomly chosen hot corner;
/// cell popularity follows a Zipf law with the given skew (paper: 0.2),
/// positions are uniform within the chosen cell.
std::vector<Point> GenerateZipf(size_t n, const Rect& domain, double skew,
                                Rng& rng, int grid_size = 64);

/// Parameters of the synthetic-city generator.
struct CityParams {
  int num_clusters = 24;        ///< downtown cores
  double cluster_fraction = 0.62;
  double corridor_fraction = 0.25;  ///< points along roads between cores
  double background_fraction = 0.13;
  double margin_fraction = 0.06;    ///< empty border (water / hills)
};

/// n points imitating a city POI distribution (NYC/LA substitute).
std::vector<Point> GenerateCity(size_t n, const Rect& domain,
                                const CityParams& params, Rng& rng);

/// Uniform sample of k distinct points from `points` (k <= |points|);
/// order is randomized. Deterministic partial Fisher-Yates.
std::vector<Point> SampleWithoutReplacement(const std::vector<Point>& points,
                                            size_t k, Rng& rng);

/// The adversarial arrangement of Fig. 8: n squares of side length n, the
/// i-th centered at (i, i), giving r = n^2 - n + 2 regions. Returned as
/// ready-made L-infinity NN-circles (radius n/2).
std::vector<NnCircle> MakeWorstCaseSquares(int n);

/// The element-distinctness reduction of Section VI-C: for reals a_1..a_n,
/// squares with corners (a_1, a_1) and (a_i, a_i). The arrangement has
/// exactly n regions (n distinct RNN sets, counting the exterior) iff the
/// a_i are pairwise distinct.
std::vector<NnCircle> MakeElementDistinctnessSquares(
    const std::vector<double>& values);

}  // namespace rnnhm

#endif  // RNNHM_DATA_GENERATORS_H_
