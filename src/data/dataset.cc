#include "data/dataset.h"

#include "common/check.h"
#include "common/rng.h"
#include "data/generators.h"

namespace rnnhm {

std::string DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kNyc:
      return "NYC";
    case DatasetKind::kLa:
      return "LA";
    case DatasetKind::kUniform:
      return "Uniform";
    case DatasetKind::kZipfian:
      return "Zipfian";
  }
  return "?";
}

Dataset MakeDataset(DatasetKind kind, uint64_t seed, size_t size) {
  Dataset ds;
  ds.name = DatasetKindName(kind);
  Rng rng(seed ^ (static_cast<uint64_t>(kind) * 0x9e3779b97f4a7c15ULL));
  switch (kind) {
    case DatasetKind::kNyc: {
      if (size == 0) size = 128547;  // Table II
      // Latitude/longitude window of Fig. 1, scaled to degrees.
      const Rect domain{{-74.15, 40.50}, {-73.70, 40.95}};
      CityParams params;
      params.num_clusters = 28;
      ds.points = GenerateCity(size, domain, params, rng);
      ds.description = "synthetic substitute for NYC points-of-interest";
      break;
    }
    case DatasetKind::kLa: {
      if (size == 0) size = 116596;  // Table II
      const Rect domain{{-118.47, 33.82}, {-118.12, 34.17}};
      CityParams params;
      params.num_clusters = 22;
      params.cluster_fraction = 0.55;
      params.corridor_fraction = 0.32;
      params.background_fraction = 0.13;
      ds.points = GenerateCity(size, domain, params, rng);
      ds.description = "synthetic substitute for LA points-of-interest";
      break;
    }
    case DatasetKind::kUniform: {
      if (size == 0) size = 131072;
      ds.points = GenerateUniform(size, Rect{{0, 0}, {1, 1}}, rng);
      ds.description = "uniform distribution on the unit square";
      break;
    }
    case DatasetKind::kZipfian: {
      if (size == 0) size = 131072;
      ds.points =
          GenerateZipf(size, Rect{{0, 0}, {1, 1}}, /*skew=*/0.2, rng);
      ds.description = "Zipfian distribution, skew coefficient 0.2";
      break;
    }
  }
  return ds;
}

Workload SampleWorkload(const Dataset& dataset, size_t num_clients,
                        size_t num_facilities, uint64_t seed) {
  RNNHM_CHECK_MSG(num_clients + num_facilities <= dataset.points.size(),
                  "sample exceeds data set size");
  Rng rng(seed);
  std::vector<Point> sample = SampleWithoutReplacement(
      dataset.points, num_clients + num_facilities, rng);
  Workload w;
  w.clients.assign(sample.begin(), sample.begin() + num_clients);
  w.facilities.assign(sample.begin() + num_clients, sample.end());
  return w;
}

}  // namespace rnnhm
