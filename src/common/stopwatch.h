// Wall-clock stopwatch used by the benchmark harnesses.
#ifndef RNNHM_COMMON_STOPWATCH_H_
#define RNNHM_COMMON_STOPWATCH_H_

#include <chrono>

namespace rnnhm {

/// Monotonic wall-clock stopwatch with millisecond reporting.
class Stopwatch {
 public:
  Stopwatch();

  /// Restarts the stopwatch.
  void Reset();

  /// Elapsed time since construction / last Reset, in milliseconds.
  double ElapsedMs() const;

  /// Elapsed time in seconds.
  double ElapsedSeconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rnnhm

#endif  // RNNHM_COMMON_STOPWATCH_H_
