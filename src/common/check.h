// Lightweight invariant-checking macros used across the library.
//
// RNNHM_CHECK is always on (it guards algorithmic invariants whose violation
// would silently corrupt results); RNNHM_DCHECK compiles out in release
// builds and is used on hot paths.
#ifndef RNNHM_COMMON_CHECK_H_
#define RNNHM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define RNNHM_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define RNNHM_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,   \
                   __LINE__, #cond, msg);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define RNNHM_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define RNNHM_DCHECK(cond) RNNHM_CHECK(cond)
#endif

#endif  // RNNHM_COMMON_CHECK_H_
