#include "common/status.h"

namespace rnnhm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDataLoss:
      return "data loss";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

int ExitCodeFor(const Status& status) {
  if (status.ok()) return 0;
  // 1 and 2 belong to the CLI (usage / generic failure); error codes start
  // at 3 so every StatusCode is distinguishable from both.
  return 2 + static_cast<int>(status.code);
}

}  // namespace rnnhm
