// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng so that every experiment
// and test is reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded via SplitMix64, which is both fast and statistically
// strong enough for workload generation.
#ifndef RNNHM_COMMON_RNG_H_
#define RNNHM_COMMON_RNG_H_

#include <cstdint>

namespace rnnhm {

/// SplitMix64 step; used to seed xoshiro and as a cheap hash.
uint64_t SplitMix64(uint64_t& state);

/// Deterministic xoshiro256** generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBounded(uint64_t n);

  /// Standard normal via Box-Muller (no cached spare; deterministic).
  double NextGaussian();

  /// Returns a new generator derived from this one (for sub-streams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace rnnhm

#endif  // RNNHM_COMMON_RNG_H_
