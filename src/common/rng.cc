#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace rnnhm {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t n) {
  RNNHM_CHECK(n > 0);
  // Debiased modulo via rejection on the top range.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  // Box-Muller; draws until u1 is nonzero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace rnnhm
