// Clang Thread Safety Analysis attribute macros.
//
// These wrap Clang's capability-analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the locking
// protocols this codebase documents in comments — the registry's
// "mu_ before lru_mu_" order, the cache's single leaf mutex, the engine
// worker pool's queue guard, the serve loops' single-thread confinement —
// become machine-checked contracts: a guarded member touched without its
// mutex, a *Locked helper called without the lock, or a reversed
// acquisition order is a compile error under Clang
// (`-Wthread-safety -Werror=thread-safety`; lock-order checking via
// ACQUIRED_BEFORE/ACQUIRED_AFTER additionally needs the
// `-Wthread-safety-beta` group, which the build enables as warnings).
//
// On compilers without the attributes (GCC builds of this repo) every
// macro expands to nothing, so annotated code stays portable. Use the
// annotated wrapper types in common/mutex.h rather than raw std::mutex:
// libstdc++'s mutexes carry no capability attributes, so the analysis
// only sees acquisitions made through annotated wrappers.
#ifndef RNNHM_COMMON_THREAD_ANNOTATIONS_H_
#define RNNHM_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define RNNHM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RNNHM_THREAD_ANNOTATION(x)  // no-op on non-Clang compilers
#endif

/// Marks a type as a capability (a lockable resource the analysis
/// tracks). `x` is the capability kind shown in diagnostics ("mutex",
/// "shared_mutex", "role").
#define RNNHM_CAPABILITY(x) RNNHM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (MutexLock and friends).
#define RNNHM_SCOPED_CAPABILITY RNNHM_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member may only be accessed while holding the
/// given capability (reads need at least a shared hold, writes an
/// exclusive one).
#define RNNHM_GUARDED_BY(x) RNNHM_THREAD_ANNOTATION(guarded_by(x))

/// As GUARDED_BY, for the data a pointer member points to.
#define RNNHM_PT_GUARDED_BY(x) RNNHM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Documents (and, under -Wthread-safety-beta, enforces) that this
/// capability must be acquired before/after the listed ones — the
/// compile-time encoding of a documented lock order.
#define RNNHM_ACQUIRED_BEFORE(...) \
  RNNHM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RNNHM_ACQUIRED_AFTER(...) \
  RNNHM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function requires the listed capabilities held (exclusively /
/// at least shared) on entry, and does not release them.
#define RNNHM_REQUIRES(...) \
  RNNHM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RNNHM_REQUIRES_SHARED(...) \
  RNNHM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (exclusively / shared) and holds
/// it on return.
#define RNNHM_ACQUIRE(...) \
  RNNHM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RNNHM_ACQUIRE_SHARED(...) \
  RNNHM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability. The plain RELEASE form matches
/// either an exclusive or a shared hold, which is what scoped-guard
/// destructors want.
#define RNNHM_RELEASE(...) \
  RNNHM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RNNHM_RELEASE_SHARED(...) \
  RNNHM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RNNHM_RELEASE_GENERIC(...) \
  RNNHM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// The function attempts the acquisition and returns `b` on success.
#define RNNHM_TRY_ACQUIRE(...) \
  RNNHM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RNNHM_TRY_ACQUIRE_SHARED(...) \
  RNNHM_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called with the listed capabilities held —
/// the self-deadlock guard for public methods that take their own lock.
#define RNNHM_EXCLUDES(...) \
  RNNHM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that the calling thread holds the
/// capability — for runtime-checked entry points.
#define RNNHM_ASSERT_CAPABILITY(x) \
  RNNHM_THREAD_ANNOTATION(assert_capability(x))
#define RNNHM_ASSERT_SHARED_CAPABILITY(x) \
  RNNHM_THREAD_ANNOTATION(assert_shared_capability(x))

/// The function returns a reference to the named capability.
#define RNNHM_RETURN_CAPABILITY(x) RNNHM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the protocol cannot be expressed.
#define RNNHM_NO_THREAD_SAFETY_ANALYSIS \
  RNNHM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // RNNHM_COMMON_THREAD_ANNOTATIONS_H_
