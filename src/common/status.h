// The unified result type of the serving stack.
//
// Before this existed, every layer reported failure its own way: the wire
// decoders returned nullopt + a string, the serve loop returned bool + a
// string, the engine CHECK-failed or threw, and the CLI collapsed all of
// it onto exit code 2. Status is the one currency they all trade in now:
// wire decoders have Status-returning overloads, the transport layer and
// the event-loop server return Status everywhere, HeatmapEngine grows a
// non-throwing ExecuteChecked, and the CLI maps each code to a distinct
// process exit code (ExitCodeFor) so scripts can tell a malformed request
// from a dead shard.
//
// The code set is deliberately small and transport-meaningful rather than
// a copy of any particular RPC vocabulary; WireStatus (the on-the-wire
// response status) maps into it losslessly via query/wire.h's
// FromWireStatus/ToWireStatus.
#ifndef RNNHM_COMMON_STATUS_H_
#define RNNHM_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace rnnhm {

enum class StatusCode : uint8_t {
  kOk = 0,
  /// The caller's bytes or arguments are wrong (malformed frame, bad
  /// geometry, unknown flag). Retrying the same input cannot succeed.
  kInvalidArgument = 1,
  /// A referenced entity does not exist (a by-hash circle set that was
  /// never registered, a stale handle).
  kNotFound = 2,
  /// The server failed internally (a sweep threw). The input may be fine.
  kInternal = 3,
  /// The transport is down: connect/accept/bind failed, a peer vanished,
  /// a shard connection dropped.
  kUnavailable = 4,
  /// The stream ended mid-message: a truncated frame, a short read where
  /// bytes were promised.
  kDataLoss = 5,
  /// A configured limit was hit: frame size ceiling, connection limit,
  /// queue bound.
  kResourceExhausted = 6,
  /// A deadline or idle timeout expired.
  kDeadlineExceeded = 7,
};

/// Stable lowercase name for logs and CLI diagnostics.
const char* StatusCodeName(StatusCode code);

/// A code plus a human-readable message (empty iff ok). Cheap to move;
/// construct through the named factories so call sites read as intent.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }

  static Status Ok() { return Status{}; }
  static Status Error(StatusCode code, std::string message) {
    return Status{code, std::move(message)};
  }
  static Status InvalidArgument(std::string m) {
    return Error(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Error(StatusCode::kNotFound, std::move(m));
  }
  static Status Internal(std::string m) {
    return Error(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Error(StatusCode::kUnavailable, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Error(StatusCode::kDataLoss, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Error(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Error(StatusCode::kDeadlineExceeded, std::move(m));
  }

  /// "ok" or "<code name>: <message>".
  std::string ToString() const;
};

/// The CLI's process exit code for a status. 0 for ok; each error code
/// gets its own value (kInvalidArgument=3, kNotFound=4, kInternal=5,
/// kUnavailable=6, kDataLoss=7, kResourceExhausted=8,
/// kDeadlineExceeded=9). Exit codes 1 (usage) and 2 (generic I/O or
/// verification failure) are reserved by the CLI and never returned here.
int ExitCodeFor(const Status& status);

}  // namespace rnnhm

#endif  // RNNHM_COMMON_STATUS_H_
