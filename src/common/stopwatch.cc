#include "common/stopwatch.h"

namespace rnnhm {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::Reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

double Stopwatch::ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

}  // namespace rnnhm
