// Annotated synchronization wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex / std::shared_mutex carry no capability
// attributes, so locking them is invisible to the analysis. These thin
// wrappers (zero overhead: every method is an inline forward) restore
// visibility: Mutex and SharedMutex are CAPABILITY types, the *MutexLock
// guards are SCOPED_CAPABILITY RAII types, and CondVar waits directly on
// a Mutex (it is BasicLockable) so a worker's wait loop stays inside one
// analyzed critical section. ThreadRole is a no-op capability that models
// thread *confinement* — single-threaded event-loop state is "guarded by"
// the role its loop thread holds, which turns a cross-thread touch (say,
// from a signal-handler path) into a compile error.
//
// Everything is a no-op on non-Clang compilers (see
// common/thread_annotations.h); behavior is identical either way.
#ifndef RNNHM_COMMON_MUTEX_H_
#define RNNHM_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace rnnhm {

/// std::mutex with capability annotations. Lock through MutexLock (or
/// lock()/unlock() where RAII does not fit — CondVar does internally).
class RNNHM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RNNHM_ACQUIRE() { mu_.lock(); }
  void unlock() RNNHM_RELEASE() { mu_.unlock(); }
  bool try_lock() RNNHM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with capability annotations. Writers lock through
/// WriterMutexLock, readers through ReaderMutexLock.
class RNNHM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() RNNHM_ACQUIRE() { mu_.lock(); }
  void unlock() RNNHM_RELEASE() { mu_.unlock(); }
  bool try_lock() RNNHM_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() RNNHM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RNNHM_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() RNNHM_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive hold of a Mutex.
class RNNHM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RNNHM_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RNNHM_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive hold of a SharedMutex.
class RNNHM_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) RNNHM_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~WriterMutexLock() RNNHM_RELEASE() { mu_->unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared hold of a SharedMutex.
class RNNHM_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) RNNHM_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() RNNHM_RELEASE() { mu_->unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable that waits on an annotated Mutex directly
/// (std::condition_variable_any accepts any BasicLockable), so the
/// analysis sees the whole wait loop holding the mutex. Spurious wakeups
/// apply as usual: call Wait in a `while` over the predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  void Wait(Mutex& mu) RNNHM_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// A phantom capability modeling thread confinement: state owned by one
/// logical thread (an event loop, a test driver) is GUARDED_BY the role,
/// the owning function body holds it through a ThreadRoleGuard, and the
/// helpers it calls declare RNNHM_REQUIRES(role). Acquire/Release are
/// no-ops at runtime — the value is purely the compile-time proof that
/// nothing outside the owning thread touches the confined state.
class RNNHM_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Acquire() RNNHM_ACQUIRE() {}
  void Release() RNNHM_RELEASE() {}
};

/// RAII hold of a ThreadRole for the body of the owning function.
class RNNHM_SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(ThreadRole* role) RNNHM_ACQUIRE(role)
      : role_(role) {
    role_->Acquire();
  }
  ~ThreadRoleGuard() RNNHM_RELEASE() { role_->Release(); }

  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;

 private:
  ThreadRole* const role_;
};

}  // namespace rnnhm

#endif  // RNNHM_COMMON_MUTEX_H_
