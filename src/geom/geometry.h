// Planar geometry primitives shared by all modules.
//
// The paper works in a two-dimensional space under three metrics: L-infinity
// (NN-circles are axis-aligned squares), L1 (diamonds; handled by rotating
// the plane by pi/4 into the L-infinity case, Section VII-B) and L2 (disks,
// handled by the arc-based sweep of Section VII-C).
#ifndef RNNHM_GEOM_GEOMETRY_H_
#define RNNHM_GEOM_GEOMETRY_H_

#include <cstdint>
#include <limits>
#include <string>

namespace rnnhm {

/// Distance metric selector.
enum class Metric { kLInf, kL1, kL2 };

/// Human-readable metric name ("Linf", "L1", "L2").
std::string MetricName(Metric metric);

/// A point in the plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Distance between two points under the given metric.
/// For efficiency-critical inner loops prefer the metric-specific overloads.
double Distance(const Point& a, const Point& b, Metric metric);

/// L-infinity (Chebyshev) distance.
double DistanceLInf(const Point& a, const Point& b);
/// L1 (Manhattan) distance.
double DistanceL1(const Point& a, const Point& b);
/// Euclidean distance.
double DistanceL2(const Point& a, const Point& b);
/// Squared Euclidean distance (avoids the sqrt for comparisons).
double DistanceL2Squared(const Point& a, const Point& b);

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
struct Rect {
  Point lo;
  Point hi;

  /// True iff p lies strictly inside the rectangle.
  bool ContainsOpen(const Point& p) const {
    return p.x > lo.x && p.x < hi.x && p.y > lo.y && p.y < hi.y;
  }
  /// True iff p lies in the closed rectangle.
  bool ContainsClosed(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  /// True iff the closed rectangles intersect.
  bool Intersects(const Rect& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y &&
           o.lo.y <= hi.y;
  }
  /// True iff this rectangle fully contains o.
  bool Contains(const Rect& o) const {
    return lo.x <= o.lo.x && o.hi.x <= hi.x && lo.y <= o.lo.y &&
           o.hi.y <= hi.y;
  }
  /// Smallest rectangle covering both this and o.
  Rect Union(const Rect& o) const;
  /// Center point.
  Point Center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }
  /// Area (non-negative; 0 for degenerate rectangles).
  double Area() const;
  /// Half-perimeter growth needed to include o (R-tree insertion heuristic).
  double Enlargement(const Rect& o) const;
  /// Minimum L2 distance from p to the closed rectangle (0 if inside).
  double MinDistanceL2(const Point& p) const;

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Returns a rectangle guaranteed empty under Union (inverted bounds).
Rect EmptyRect();

/// The NN-circle of a client (Section III-A): center = the client location,
/// radius = distance from the client to its nearest facility, measured in
/// the active metric. `Bounds()` gives the axis-aligned bounding box, which
/// *is* the NN-circle for L-infinity.
struct NnCircle {
  Point center;
  double radius = 0.0;
  /// Index of the client in O this circle belongs to.
  int32_t client = -1;

  /// Axis-aligned bounding box of the circle (exact shape for L-infinity).
  Rect Bounds() const {
    return Rect{{center.x - radius, center.y - radius},
                {center.x + radius, center.y + radius}};
  }
  /// True iff q is inside the circle under `metric` (closed: boundary
  /// counts, matching d(o, f) <= d(o, f') in the RNN definition).
  bool Contains(const Point& q, Metric metric) const;
};

/// Rotates a point counter-clockwise by pi/4 around the origin.
/// Maps L1 diamonds to L-infinity squares with radius scaled by 1/sqrt(2)
/// (Section VII-B).
Point RotateToLInf(const Point& p);

/// Inverse of RotateToLInf.
Point RotateFromLInf(const Point& p);

}  // namespace rnnhm

#endif  // RNNHM_GEOM_GEOMETRY_H_
