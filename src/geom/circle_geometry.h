// Euclidean circle geometry used by the L2 sweep (Section VII-C).
#ifndef RNNHM_GEOM_CIRCLE_GEOMETRY_H_
#define RNNHM_GEOM_CIRCLE_GEOMETRY_H_

#include <optional>
#include <utility>
#include <vector>

#include "geom/geometry.h"

namespace rnnhm {

/// Result of intersecting two circle boundaries: 0, 1 (tangency) or 2
/// points. Points are returned in unspecified order.
struct CircleIntersection {
  int count = 0;
  Point points[2];
};

/// Intersects the boundaries of two circles. Tangencies and (near-)
/// coincident circles are resolved conservatively: coincident circles report
/// zero intersections.
CircleIntersection IntersectCircles(const Point& c0, double r0,
                                    const Point& c1, double r1);

/// Y-coordinate of the lower (is_upper == false) or upper (is_upper == true)
/// semicircle arc of the circle at abscissa x. Requires x within
/// [center.x - radius, center.x + radius]; x is clamped to that range to
/// absorb floating-point error at arc endpoints.
double ArcYAt(const Point& center, double radius, bool is_upper, double x);

/// True iff circle (c0, r0) and circle (c1, r1) boundaries properly
/// intersect (overlap without containment or disjointness).
bool CirclesProperlyIntersect(const Point& c0, double r0, const Point& c1,
                              double r1);

}  // namespace rnnhm

#endif  // RNNHM_GEOM_CIRCLE_GEOMETRY_H_
