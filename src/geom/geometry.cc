#include "geom/geometry.h"

#include <algorithm>
#include <cmath>

namespace rnnhm {

std::string MetricName(Metric metric) {
  switch (metric) {
    case Metric::kLInf:
      return "Linf";
    case Metric::kL1:
      return "L1";
    case Metric::kL2:
      return "L2";
  }
  return "?";
}

double DistanceLInf(const Point& a, const Point& b) {
  return std::max(std::fabs(a.x - b.x), std::fabs(a.y - b.y));
}

double DistanceL1(const Point& a, const Point& b) {
  return std::fabs(a.x - b.x) + std::fabs(a.y - b.y);
}

double DistanceL2(const Point& a, const Point& b) {
  return std::sqrt(DistanceL2Squared(a, b));
}

double DistanceL2Squared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double Distance(const Point& a, const Point& b, Metric metric) {
  switch (metric) {
    case Metric::kLInf:
      return DistanceLInf(a, b);
    case Metric::kL1:
      return DistanceL1(a, b);
    case Metric::kL2:
      return DistanceL2(a, b);
  }
  return std::numeric_limits<double>::quiet_NaN();
}

Rect Rect::Union(const Rect& o) const {
  return Rect{{std::min(lo.x, o.lo.x), std::min(lo.y, o.lo.y)},
              {std::max(hi.x, o.hi.x), std::max(hi.y, o.hi.y)}};
}

double Rect::Area() const {
  const double w = hi.x - lo.x;
  const double h = hi.y - lo.y;
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

double Rect::Enlargement(const Rect& o) const {
  return Union(o).Area() - Area();
}

double Rect::MinDistanceL2(const Point& p) const {
  const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
  const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
  return std::sqrt(dx * dx + dy * dy);
}

Rect EmptyRect() {
  const double inf = std::numeric_limits<double>::infinity();
  return Rect{{inf, inf}, {-inf, -inf}};
}

bool NnCircle::Contains(const Point& q, Metric metric) const {
  return Distance(center, q, metric) <= radius;
}

Point RotateToLInf(const Point& p) {
  // Rotation by pi/4: x' = (x - y)/sqrt(2), y' = (x + y)/sqrt(2).
  constexpr double kInvSqrt2 = 0.7071067811865475244;
  return Point{(p.x - p.y) * kInvSqrt2, (p.x + p.y) * kInvSqrt2};
}

Point RotateFromLInf(const Point& p) {
  constexpr double kInvSqrt2 = 0.7071067811865475244;
  return Point{(p.x + p.y) * kInvSqrt2, (p.y - p.x) * kInvSqrt2};
}

}  // namespace rnnhm
