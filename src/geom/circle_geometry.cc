#include "geom/circle_geometry.h"

#include <algorithm>
#include <cmath>

namespace rnnhm {

CircleIntersection IntersectCircles(const Point& c0, double r0,
                                    const Point& c1, double r1) {
  CircleIntersection out;
  const double dx = c1.x - c0.x;
  const double dy = c1.y - c0.y;
  const double d2 = dx * dx + dy * dy;
  const double d = std::sqrt(d2);
  if (d <= 0.0) return out;                    // concentric or coincident
  if (d > r0 + r1 || d < std::fabs(r0 - r1)) {
    return out;                                // disjoint or contained
  }
  // Distance from c0 to the chord midpoint along the center line.
  const double a = (d2 + r0 * r0 - r1 * r1) / (2.0 * d);
  const double h2 = r0 * r0 - a * a;
  const double h = h2 > 0.0 ? std::sqrt(h2) : 0.0;
  const Point mid{c0.x + a * dx / d, c0.y + a * dy / d};
  if (h == 0.0) {
    out.count = 1;
    out.points[0] = mid;
    return out;
  }
  out.count = 2;
  out.points[0] = Point{mid.x + h * dy / d, mid.y - h * dx / d};
  out.points[1] = Point{mid.x - h * dy / d, mid.y + h * dx / d};
  return out;
}

double ArcYAt(const Point& center, double radius, bool is_upper, double x) {
  const double dx =
      std::clamp(x - center.x, -radius, radius);
  const double dy = std::sqrt(std::max(0.0, radius * radius - dx * dx));
  return is_upper ? center.y + dy : center.y - dy;
}

bool CirclesProperlyIntersect(const Point& c0, double r0, const Point& c1,
                              double r1) {
  const double d = DistanceL2(c0, c1);
  return d < r0 + r1 && d > std::fabs(r0 - r1);
}

}  // namespace rnnhm
