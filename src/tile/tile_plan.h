// Domain tiling: partition a raster into an R x C grid of tiles, sweep
// every tile independently over just the circles that can influence it, and
// stitch the per-tile rasters into one grid bit-identical to the untiled
// sweep (ROADMAP item 1 — datasets bigger than one sweep).
//
// Why stitching is exact: a pixel's value is the influence of the circles
// whose region contains the pixel's *center*, and the raster sinks paint by
// center sampling through the global PixelAxis tables. A tile sweep over
// any superset of the circles covering the tile's pixel centers therefore
// paints exactly the values the full sweep paints there — extra circles
// contribute empty spans at centers they do not contain, and span-to-index
// conversion goes through the same global center tables the untiled sink
// uses (see the fragment constructors in heatmap/raster_sink.h). Holds for
// influence measures whose value does not depend on RNN-set iteration
// order (SizeInfluence et al.), the same caveat as the slab decomposition.
//
// Tile boundaries come from PixelAxis::LowerBound over the global center
// table — never from independent float math — so tile edges can never
// disagree with the span edges the sweeps emit, and the windows partition
// the pixel space exactly (every output pixel has exactly one owner tile).
//
// Circle-to-tile assignment is a bulk R-tree pass (src/index/rtree.h): one
// STR bulk load of the circle bounding boxes, one window query per tile
// with the tile's closed pixel-center extent — O(n log n + tiles * log n)
// instead of the O(n * tiles) scan. For L1 the sweep runs in the pi/4-
// rotated frame, so assignment happens there too: the R-tree holds rotated
// bounds and each tile queries the rotated cell window its resample reads.
#ifndef RNNHM_TILE_TILE_PLAN_H_
#define RNNHM_TILE_TILE_PLAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/crest_parallel.h"
#include "geom/geometry.h"
#include "heatmap/heatmap.h"

namespace rnnhm {

/// Half-open global pixel-index window [col_lo, col_hi) x [row_lo, row_hi).
struct TileWindow {
  int col_lo = 0;
  int col_hi = 0;
  int row_lo = 0;
  int row_hi = 0;

  bool empty() const { return col_lo >= col_hi || row_lo >= row_hi; }
  int width() const { return col_hi - col_lo; }
  int height() const { return row_hi - row_lo; }
  friend bool operator==(const TileWindow&, const TileWindow&) = default;
};

/// The R x C tile pixel windows of a width x height raster over `domain`,
/// row-major (tile (r, c) at index r * cols + c). Boundary k of the column
/// cut at coordinate lo.x + (extent * k) / cols is
/// PixelAxis::LowerBound(cut) — the exact conversion the sweeps' span
/// painting uses — with the outer boundaries forced to 0 and width, so the
/// windows partition [0, width) x [0, height) no matter how the cut
/// coordinates round. Shards and routers calling this with equal arguments
/// compute equal windows (no per-process state).
std::vector<TileWindow> TileWindows(const Rect& domain, int width, int height,
                                    int rows, int cols);

/// One tile of a TilePlan.
struct Tile {
  int row = 0;  ///< position in the tile grid
  int col = 0;
  TileWindow window;  ///< global pixel-index window this tile owns
  /// Indices (ascending) into the plan's circle span of every circle whose
  /// influence can reach a pixel center of this tile — a conservative
  /// superset via bounding-box intersection.
  std::vector<int32_t> circles;
  /// kL1 only: the rotated-grid cell window the tile's resample reads.
  TileWindow rot_window;
};

struct TilePlanOptions {
  int rows = 1;
  int cols = 1;
  /// Intermediate-grid scaling of the L1 rotated sweep; must match the
  /// untiled builder's (BuildHeatmapL1Parallel default) for bit-identity.
  double oversample = 1.5;
};

/// An immutable tiling of one (metric, circles, domain, width, height)
/// sweep. Does not own the circles: the span must outlive the plan.
class TilePlan {
 public:
  TilePlan(Metric metric, std::span<const NnCircle> circles,
           const Rect& domain, int width, int height,
           const TilePlanOptions& options = {});

  Metric metric() const { return metric_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int width() const { return width_; }
  int height() const { return height_; }
  const Rect& domain() const { return domain_; }
  const std::vector<Tile>& tiles() const { return tiles_; }
  const Tile& tile(int r, int c) const { return tiles_[r * cols_ + c]; }

  /// Materializes the tile's assigned circles (input order preserved) —
  /// the subset a shard sweeps, and what per-tile cache keys hash.
  std::vector<NnCircle> GatherCircles(const Tile& t) const;

  /// Sweeps one tile into the full-size grid `out` (which must have the
  /// plan's width/height). Only pixels inside the tile's window are
  /// written; they end up bit-identical to the untiled sweep's. `num_slabs`
  /// is the slab parallelism within the tile sweep (any value yields the
  /// same bits). Stats accumulate into `*stats` when non-null.
  void SweepTileInto(const Tile& t, const InfluenceMeasure& measure,
                     int num_slabs, HeatmapGrid* out,
                     MetricSweepStats* stats = nullptr) const;

  /// Sweeps one tile into a window-sized fragment grid — what a by-tile
  /// shard returns over the wire. Fragment cell (i, j) is global pixel
  /// (window.col_lo + i, window.row_lo + j). Requires !t.window.empty().
  HeatmapGrid SweepTileFragment(const Tile& t, const InfluenceMeasure& measure,
                                int num_slabs,
                                MetricSweepStats* stats = nullptr) const;

  /// Copies a window-sized fragment into its place in the full grid.
  static void StitchFragment(const TileWindow& window,
                             const HeatmapGrid& fragment, HeatmapGrid* out);

  /// Sweeps every tile and stitches: the full grid, bit-identical to the
  /// untiled BuildHeatmap*Parallel output for this metric.
  HeatmapGrid Run(const InfluenceMeasure& measure, int num_slabs = 1,
                  MetricSweepStats* stats = nullptr) const;

 private:
  void SweepWindowed(const Tile& t, const InfluenceMeasure& measure,
                     int num_slabs, HeatmapGrid* target, int origin_col,
                     int origin_row, MetricSweepStats* stats) const;

  Metric metric_;
  std::span<const NnCircle> circles_;
  Rect domain_;
  int width_;
  int height_;
  int rows_;
  int cols_;
  std::vector<Tile> tiles_;
  // kL2: the full-set event-grouping span every tile sweep shares (the
  // same contract slab shards follow; see core/crest_l2.h).
  double l2_event_span_ = -1.0;
  // kL1: the exact rotated-sweep geometry of the untiled builder
  // (heatmap.cc's ResampleRotatedSweep), reproduced once here.
  std::vector<NnCircle> rot_circles_;
  Rect rot_domain_ = EmptyRect();
  int rot_res_ = 0;
};

}  // namespace rnnhm

#endif  // RNNHM_TILE_TILE_PLAN_H_
