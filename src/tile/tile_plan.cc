#include "tile/tile_plan.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/crest_l2.h"
#include "heatmap/raster_sink.h"
#include "index/rtree.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {

namespace {

PixelAxis AxisX(const Rect& domain, int n) {
  return PixelAxis(domain.lo.x, (domain.hi.x - domain.lo.x) / n, n);
}

PixelAxis AxisY(const Rect& domain, int n) {
  return PixelAxis(domain.lo.y, (domain.hi.y - domain.lo.y) / n, n);
}

// Index boundaries of `parts` cuts over one axis: boundary k converts the
// cut coordinate lo + (extent * k) / parts through the same LowerBound the
// span painting uses, endpoints forced to the full range. Monotone by
// construction (the cuts are nondecreasing and LowerBound is monotone);
// checked rather than trusted because the whole stitch invariant rides on
// it.
std::vector<int> AxisBoundaries(const PixelAxis& axis, double lo,
                                double extent, int parts) {
  std::vector<int> bounds(parts + 1);
  for (int k = 0; k <= parts; ++k) {
    bounds[k] = axis.LowerBound(lo + (extent * k) / parts);
  }
  bounds[0] = 0;
  bounds[parts] = axis.size();
  for (int k = 0; k < parts; ++k) {
    RNNHM_CHECK_MSG(bounds[k] <= bounds[k + 1],
                    "tile boundaries must be nondecreasing");
  }
  return bounds;
}

void Accumulate(const CrestStats& s, MetricSweepStats* out) {
  if (out == nullptr) return;
  out->crest.num_circles += s.num_circles;
  out->crest.num_skipped_circles += s.num_skipped_circles;
  out->crest.num_events += s.num_events;
  out->crest.num_labelings += s.num_labelings;
  out->crest.num_merged_intervals += s.num_merged_intervals;
  out->crest.num_elements_walked += s.num_elements_walked;
}

void Accumulate(const CrestL2Stats& s, MetricSweepStats* out) {
  if (out == nullptr) return;
  out->l2.num_circles += s.num_circles;
  out->l2.num_skipped_circles += s.num_skipped_circles;
  out->l2.num_events += s.num_events;
  out->l2.num_cross_events += s.num_cross_events;
  out->l2.num_labelings += s.num_labelings;
}

// HeatmapGrid::Sample's cell lookup, verbatim (same expression order, same
// truncating cast, same clamp), over explicit square-grid geometry — the
// tiled L1 resample must read exactly the cell the untiled resample reads.
void SampleCell(const Rect& domain, int res, const Point& p, int* i, int* j) {
  const double dx = (domain.hi.x - domain.lo.x) / res;
  const double dy = (domain.hi.y - domain.lo.y) / res;
  *i = std::clamp(static_cast<int>((p.x - domain.lo.x) / dx), 0, res - 1);
  *j = std::clamp(static_cast<int>((p.y - domain.lo.y) / dy), 0, res - 1);
}

}  // namespace

std::vector<TileWindow> TileWindows(const Rect& domain, int width, int height,
                                    int rows, int cols) {
  RNNHM_CHECK(width > 0 && height > 0 && rows > 0 && cols > 0);
  RNNHM_CHECK(domain.lo.x < domain.hi.x && domain.lo.y < domain.hi.y);
  const std::vector<int> col_bounds = AxisBoundaries(
      AxisX(domain, width), domain.lo.x, domain.hi.x - domain.lo.x, cols);
  const std::vector<int> row_bounds = AxisBoundaries(
      AxisY(domain, height), domain.lo.y, domain.hi.y - domain.lo.y, rows);
  std::vector<TileWindow> windows;
  windows.reserve(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      windows.push_back(TileWindow{col_bounds[c], col_bounds[c + 1],
                                   row_bounds[r], row_bounds[r + 1]});
    }
  }
  return windows;
}

TilePlan::TilePlan(Metric metric, std::span<const NnCircle> circles,
                   const Rect& domain, int width, int height,
                   const TilePlanOptions& options)
    : metric_(metric),
      circles_(circles),
      domain_(domain),
      width_(width),
      height_(height),
      rows_(options.rows),
      cols_(options.cols) {
  const std::vector<TileWindow> windows =
      TileWindows(domain, width, height, rows_, cols_);
  tiles_.resize(windows.size());
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      Tile& t = tiles_[r * cols_ + c];
      t.row = r;
      t.col = c;
      t.window = windows[r * cols_ + c];
    }
  }

  const PixelAxis cols_axis = AxisX(domain, width);
  const PixelAxis rows_axis = AxisY(domain, height);

  if (metric == Metric::kL2) {
    std::vector<NnCircle> all(circles.begin(), circles.end());
    l2_event_span_ = DiskEventGroupSpan(all);
  }

  // Assignment frame: the original plane for kLInf/kL2; the pi/4-rotated
  // frame for kL1, where the sweep and its resample reads actually happen.
  if (metric == Metric::kL1) {
    std::vector<NnCircle> originals(circles.begin(), circles.end());
    rot_circles_ = RotateCirclesToLInf(originals);
    // The untiled builder's rotated geometry, expression for expression
    // (ResampleRotatedSweep): bbox of the rotated domain corners, square
    // grid of ceil(max(w, h) * max(1, oversample)) cells.
    const Point corners[4] = {domain.lo,
                              {domain.hi.x, domain.lo.y},
                              {domain.lo.x, domain.hi.y},
                              domain.hi};
    rot_domain_ = EmptyRect();
    for (const Point& c : corners) {
      const Point r = RotateToLInf(c);
      rot_domain_ = rot_domain_.Union(Rect{r, r});
    }
    rot_res_ = static_cast<int>(std::ceil(std::max(width, height) *
                                          std::max(1.0, options.oversample)));
    const PixelAxis rot_cols = AxisX(rot_domain_, rot_res_);
    const PixelAxis rot_rows = AxisY(rot_domain_, rot_res_);
    // Each tile reads rotated cells around the rotated image of its pixel
    // rectangle. The image is a quad whose coordinate extremes are at the
    // corners (linear map, componentwise-monotone float ops), so the
    // corner cells bound the read set; +/-1 covers any residual rounding
    // and the window CHECK in the resample loop backstops it.
    for (Tile& t : tiles_) {
      if (t.window.empty()) continue;
      const Point pc[4] = {
          {cols_axis.centers()[t.window.col_lo],
           rows_axis.centers()[t.window.row_lo]},
          {cols_axis.centers()[t.window.col_hi - 1],
           rows_axis.centers()[t.window.row_lo]},
          {cols_axis.centers()[t.window.col_lo],
           rows_axis.centers()[t.window.row_hi - 1]},
          {cols_axis.centers()[t.window.col_hi - 1],
           rows_axis.centers()[t.window.row_hi - 1]}};
      int si_lo = rot_res_, si_hi = -1, sj_lo = rot_res_, sj_hi = -1;
      for (const Point& p : pc) {
        int si = 0, sj = 0;
        SampleCell(rot_domain_, rot_res_, RotateToLInf(p), &si, &sj);
        si_lo = std::min(si_lo, si);
        si_hi = std::max(si_hi, si);
        sj_lo = std::min(sj_lo, sj);
        sj_hi = std::max(sj_hi, sj);
      }
      t.rot_window = TileWindow{std::max(0, si_lo - 1),
                                std::min(rot_res_, si_hi + 2),
                                std::max(0, sj_lo - 1),
                                std::min(rot_res_, sj_hi + 2)};
    }
    // Bulk-load rotated circle bounds; query each tile with the closed
    // coordinate extent of the rotated cells its resample may read.
    std::vector<Rect> bounds;
    bounds.reserve(rot_circles_.size());
    for (const NnCircle& c : rot_circles_) bounds.push_back(c.Bounds());
    RTree rtree;
    rtree.BulkLoad(bounds);
    for (Tile& t : tiles_) {
      if (t.window.empty()) continue;
      const Rect query{{rot_cols.centers()[t.rot_window.col_lo],
                        rot_rows.centers()[t.rot_window.row_lo]},
                       {rot_cols.centers()[t.rot_window.col_hi - 1],
                        rot_rows.centers()[t.rot_window.row_hi - 1]}};
      rtree.Query(query, [&t](int32_t id) { t.circles.push_back(id); });
      std::sort(t.circles.begin(), t.circles.end());
    }
  } else {
    std::vector<Rect> bounds;
    bounds.reserve(circles.size());
    for (const NnCircle& c : circles) bounds.push_back(c.Bounds());
    RTree rtree;
    rtree.BulkLoad(bounds);
    for (Tile& t : tiles_) {
      if (t.window.empty()) continue;
      // Closed extent of the tile's pixel centers: any circle containing
      // one of those centers has a bounding box intersecting it.
      const Rect query{{cols_axis.centers()[t.window.col_lo],
                        rows_axis.centers()[t.window.row_lo]},
                       {cols_axis.centers()[t.window.col_hi - 1],
                        rows_axis.centers()[t.window.row_hi - 1]}};
      rtree.Query(query, [&t](int32_t id) { t.circles.push_back(id); });
      std::sort(t.circles.begin(), t.circles.end());
    }
  }
}

std::vector<NnCircle> TilePlan::GatherCircles(const Tile& t) const {
  std::vector<NnCircle> subset;
  subset.reserve(t.circles.size());
  for (const int32_t id : t.circles) subset.push_back(circles_[id]);
  return subset;
}

void TilePlan::SweepWindowed(const Tile& t, const InfluenceMeasure& measure,
                             int num_slabs, HeatmapGrid* target,
                             int origin_col, int origin_row,
                             MetricSweepStats* stats) const {
  const TileWindow& w = t.window;
  if (w.empty() || t.circles.empty()) return;  // background is correct

  const PixelAxis cols_axis = AxisX(domain_, width_);
  const PixelAxis rows_axis = AxisY(domain_, height_);

  switch (metric_) {
    case Metric::kLInf: {
      const std::vector<NnCircle> subset = GatherCircles(t);
      RasterStripSink sink(target, cols_axis, rows_axis, w.col_lo, w.col_hi,
                           w.row_lo, w.row_hi, origin_col, origin_row);
      CrestOptions options;
      options.strip_sink = &sink;
      Accumulate(RunCrestParallelStrips(subset, measure, num_slabs, options),
                 stats);
      break;
    }
    case Metric::kL2: {
      const std::vector<NnCircle> subset = GatherCircles(t);
      RasterArcSink sink(target, cols_axis, rows_axis, w.col_lo, w.col_hi,
                         w.row_lo, w.row_hi, origin_col, origin_row);
      CrestL2Options options;
      options.arc_sink = &sink;
      options.event_group_span = l2_event_span_;
      Accumulate(RunCrestL2ParallelStrips(subset, measure, num_slabs, options),
                 stats);
      break;
    }
    case Metric::kL1: {
      // Sweep the rotated subset into a fragment of the untiled builder's
      // rotated grid (global rotated axes), then resample only this tile's
      // pixels through the exact Sample arithmetic.
      const TileWindow& rw = t.rot_window;
      std::vector<NnCircle> rot_subset;
      rot_subset.reserve(t.circles.size());
      for (const int32_t id : t.circles) {
        rot_subset.push_back(rot_circles_[id]);
      }
      const PixelAxis rot_cols = AxisX(rot_domain_, rot_res_);
      const PixelAxis rot_rows = AxisY(rot_domain_, rot_res_);
      HeatmapGrid rotated(rw.width(), rw.height(), rot_domain_,
                          measure.Evaluate({}));
      RasterStripSink sink(&rotated, rot_cols, rot_rows, rw.col_lo, rw.col_hi,
                           rw.row_lo, rw.row_hi, rw.col_lo, rw.row_lo);
      CrestOptions options;
      options.strip_sink = &sink;
      Accumulate(
          RunCrestParallelStrips(rot_subset, measure, num_slabs, options),
          stats);
      for (int j = w.row_lo; j < w.row_hi; ++j) {
        for (int i = w.col_lo; i < w.col_hi; ++i) {
          const Point q = RotateToLInf(
              Point{cols_axis.centers()[i], rows_axis.centers()[j]});
          int si = 0, sj = 0;
          SampleCell(rot_domain_, rot_res_, q, &si, &sj);
          RNNHM_CHECK_MSG(si >= rw.col_lo && si < rw.col_hi &&
                              sj >= rw.row_lo && sj < rw.row_hi,
                          "L1 resample read outside the tile's rotated "
                          "window");
          target->At(i - origin_col, j - origin_row) =
              rotated.At(si - rw.col_lo, sj - rw.row_lo);
        }
      }
      break;
    }
  }
}

void TilePlan::SweepTileInto(const Tile& t, const InfluenceMeasure& measure,
                             int num_slabs, HeatmapGrid* out,
                             MetricSweepStats* stats) const {
  RNNHM_CHECK(out->width() == width_ && out->height() == height_);
  SweepWindowed(t, measure, num_slabs, out, /*origin_col=*/0,
                /*origin_row=*/0, stats);
}

HeatmapGrid TilePlan::SweepTileFragment(const Tile& t,
                                        const InfluenceMeasure& measure,
                                        int num_slabs,
                                        MetricSweepStats* stats) const {
  const TileWindow& w = t.window;
  RNNHM_CHECK_MSG(!w.empty(), "empty tiles have no fragment");
  // The fragment's own domain is decorative (painting goes through the
  // global axes); use the tile's coordinate cell when it is representable,
  // else fall back to the full domain.
  const double dx = (domain_.hi.x - domain_.lo.x) / width_;
  const double dy = (domain_.hi.y - domain_.lo.y) / height_;
  Rect frag_domain{{domain_.lo.x + w.col_lo * dx, domain_.lo.y + w.row_lo * dy},
                   {domain_.lo.x + w.col_hi * dx, domain_.lo.y + w.row_hi * dy}};
  if (!(frag_domain.lo.x < frag_domain.hi.x &&
        frag_domain.lo.y < frag_domain.hi.y)) {
    frag_domain = domain_;
  }
  HeatmapGrid fragment(w.width(), w.height(), frag_domain,
                       measure.Evaluate({}));
  SweepWindowed(t, measure, num_slabs, &fragment, w.col_lo, w.row_lo, stats);
  return fragment;
}

void TilePlan::StitchFragment(const TileWindow& window,
                              const HeatmapGrid& fragment, HeatmapGrid* out) {
  RNNHM_CHECK(fragment.width() == window.width() &&
              fragment.height() == window.height());
  RNNHM_CHECK(window.col_hi <= out->width() && window.row_hi <= out->height());
  for (int j = 0; j < fragment.height(); ++j) {
    const double* src = fragment.Row(j);
    double* dst = out->Row(window.row_lo + j) + window.col_lo;
    std::copy(src, src + fragment.width(), dst);
  }
}

HeatmapGrid TilePlan::Run(const InfluenceMeasure& measure, int num_slabs,
                          MetricSweepStats* stats) const {
  HeatmapGrid out(width_, height_, domain_, measure.Evaluate({}));
  for (const Tile& t : tiles_) {
    SweepTileInto(t, measure, num_slabs, &out, stats);
  }
  return out;
}

}  // namespace rnnhm
