#!/usr/bin/env python3
"""Gate a benchmark run against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [options]

Both files carry the shared bench JSON shape emitted by bench_common.h:

    {"benchmark": "<name>", "cells": [{<config fields>, <measurements>}]}

Cells are matched between the two files by their configuration fields —
everything that is not a known measurement key (ms, cold_ms, warm_ms,
wall_ms, p50_ms, p99_ms, us_per_call, maps_per_sec, mb_per_s, rps).
A matched cell regresses when a time-like measurement grows by more than
--threshold (default 15%) over the baseline; measurements under --min-ms
(default 5 ms) in the baseline are skipped as noise. Throughput-like
measurements are reported but never gate: they are redundant with their
time twin and noisier.

Exit status: 0 clean, 1 on any regression, 2 on malformed input. The
threshold can also be set with RNNHM_BENCH_THRESHOLD (a fraction, e.g.
0.15) so CI can loosen the gate without editing the workflow.
"""

import argparse
import json
import os
import sys

# Lower is better; these gate.
TIME_KEYS = ("ms", "cold_ms", "warm_ms", "wall_ms", "p50_ms", "p99_ms",
             "us_per_call")
# Higher is better; reported only.
RATE_KEYS = ("maps_per_sec", "mb_per_s", "rps")
MEASURE_KEYS = TIME_KEYS + RATE_KEYS


def cell_key(cell):
    """The identity of a cell: every non-measurement field, sorted."""
    return tuple(sorted((k, v) for k, v in cell.items()
                        if k not in MEASURE_KEYS))


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "cells" not in doc or not isinstance(doc["cells"], list):
        raise ValueError(f"{path}: no 'cells' array")
    return doc


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get(
                            "RNNHM_BENCH_THRESHOLD", "0.15")),
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--min-ms", type=float, default=5.0,
                        help="skip baseline measurements below this value")
    args = parser.parse_args()

    try:
        baseline = load(args.baseline)
        current = load(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    base_cells = {cell_key(c): c for c in baseline["cells"]}
    cur_cells = {cell_key(c): c for c in current["cells"]}

    name = current.get("benchmark", args.current)
    regressions = []
    compared = 0
    for key, cur in sorted(cur_cells.items()):
        base = base_cells.get(key)
        if base is None:
            print(f"[{name}] new cell (no baseline): {fmt_key(key)}")
            continue
        for measure in TIME_KEYS:
            if measure not in base or measure not in cur:
                continue
            old, new = float(base[measure]), float(cur[measure])
            if old < args.min_ms:
                continue
            compared += 1
            ratio = new / old if old > 0 else float("inf")
            line = (f"[{name}] {fmt_key(key)}: {measure} "
                    f"{old:.3f} -> {new:.3f} ({(ratio - 1.0):+.1%})")
            if ratio > 1.0 + args.threshold:
                regressions.append(line)
                print("REGRESSION " + line)
            else:
                print("ok         " + line)
    for key in sorted(base_cells):
        if key not in cur_cells:
            print(f"[{name}] baseline cell vanished: {fmt_key(key)}")

    print(f"[{name}] compared {compared} measurements, "
          f"{len(regressions)} regression(s), "
          f"threshold {args.threshold:.0%}, floor {args.min_ms} ms")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
