#!/usr/bin/env python3
"""Checks that every relative markdown link in the repo resolves.

Scans all tracked *.md files for inline links/images and validates that
link targets pointing into the repository exist on disk (anchors are
checked against the target file's headings). External URLs (http/https/
mailto) are skipped — CI must not depend on the network. Exits non-zero
listing every broken link, so documentation rot fails the build.
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, punctuation out."""
    anchor = heading.strip().lower()
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def anchors_in(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        return {anchor_of(h) for h in HEADING_RE.findall(f.read())}


def main() -> int:
    root = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"], capture_output=True,
        text=True, check=True).stdout.strip()
    md_files = subprocess.run(
        ["git", "ls-files", "*.md"], capture_output=True, text=True,
        cwd=root, check=True).stdout.split()
    broken = []
    for md in md_files:
        md_path = os.path.join(root, md)
        with open(md_path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if not path_part:  # same-file anchor
                if anchor and anchor not in anchors_in(md_path):
                    broken.append(f"{md}: missing anchor #{anchor}")
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path_part))
            if not os.path.exists(resolved):
                broken.append(f"{md}: missing target {target}")
            elif anchor and resolved.endswith(".md") and \
                    anchor not in anchors_in(resolved):
                broken.append(f"{md}: missing anchor {target}")
    if broken:
        print("broken markdown links:")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"checked {len(md_files)} markdown files: all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
