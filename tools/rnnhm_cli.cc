// rnnhm — command-line front end to the library.
//
// Subcommands:
//   generate <nyc|la|uniform|zipfian> <count> <out.csv> [--seed S]
//       Write a synthetic data set as "x,y" CSV.
//   heatmap --clients A.csv --facilities B.csv [--metric linf|l1|l2]
//           [--size N] [--threads T] [--out map.ppm] [--ascii]
//           [--cache BYTES] [--repeat N] [--tiles RxC]
//       Build the RNN heat map (size measure) and export it. --threads
//       slab-parallelizes the linf, l1 and l2 sweeps (bit-identical
//       output for every thread count). --tiles partitions the domain
//       into an R x C tile grid and sweeps each tile over just the
//       circles that can influence it (src/tile/tile_plan.h) — output
//       bit-identical to the untiled sweep for every grid. --cache
//       routes the build through a HeatmapEngine with a result cache of
//       that many bytes and runs it --repeat times (default 2),
//       reporting cold/warm timings and hit counters; with --tiles the
//       cache keys per-tile fragments, so warm iterations report
//       tile-level hit counts.
//   replay --clients A.csv --facilities B.csv [--metric linf|l1|l2]
//          [--size N] [--edits K] [--seed S] [--verify] [--out map.ppm]
//       Edit-replay mode: start a HeatmapSession, apply K random edits
//       (move/add client, add/remove facility) and refresh the map after
//       each via the incremental re-sweep, reporting per-tick dirty
//       columns and timings. --verify additionally rebuilds each tick
//       from scratch and fails unless the spliced raster is bit-identical.
//   topk --clients A.csv --facilities B.csv [--metric ...] [--k K]
//       Print the K most influential regions.
//   query --clients A.csv --facilities B.csv --x X --y Y [--metric ...]
//       Print R((X, Y)): the clients a facility at that point would win.
//   render --load map.bin [--out map.ppm] [--ascii]
//       Re-render a heat map saved with `heatmap --save`.
//   stats --clients A.csv --facilities B.csv [--metric linf|l1]
//       Exact area-weighted influence distribution (histogram, quantiles).
//   serve [--transport stdio|tcp|unix] [--threads T] [--slabs S]
//         [--cache BYTES] [--in req.bin] [--out resp.bin]
//         [--host H] [--port P] [--path SOCK] [--max-conns N]
//         [--idle-timeout MS] [--drain-timeout MS] [--poller epoll|poll]
//         [--retain-sets N] [--max-conn-sets N]
//       Wire-protocol server. stdio reads length-prefixed serving-API
//       request frames from --in (default stdin) and answers on --out
//       (default stdout). tcp/unix run the nonblocking event loop
//       (serve/event_loop.h) on the given address — --port 0 binds an
//       ephemeral port, printed on stderr as "listening on tcp HOST:PORT".
//       Inline circle sets register into the engine's registry; later
//       requests may reference them by content hash alone, and v4 delta
//       frames derive new sets from registered bases. Memory stays
//       bounded: each connection's registrations are released when it
//       disconnects (at most --max-conn-sets are pinned per connection),
//       and fully released sets survive as an LRU of --retain-sets
//       entries before eviction. SIGINT/SIGTERM drain gracefully (a
//       second signal stops immediately).
//   route [--transport tcp|unix] [--shards N] [--socket-dir DIR]
//         [--threads T] [--slabs S] [--cache BYTES]
//         [--by-tile --tiles RxC] plus the serve
//         address/connection/retention flags
//       Multi-process sharding front: fork N shared-nothing engine
//       workers (one per shard, each on its own Unix socket under
//       --socket-dir) and route request frames to shard
//       (set_hash % N) — delta frames route by their base hash, and the
//       derived set's hash is pinned to that shard for follow-ups. With
//       --by-tile the router instead fans each plain heat-map request
//       as one tile sub-request per non-empty tile window (shard =
//       tile_id % N) and stitches the fragments into one response
//       bit-identical to an untiled Execute. See serve/shard_router.h.
//   wire-send [--requests req.bin] --connect tcp:HOST:PORT|unix:PATH
//             [--out resp.bin] [--stats]
//       Socket client: send each framed request from --requests to a
//       running serve/route process, collecting one response frame per
//       request into --out. --stats additionally sends a stats op and
//       prints the (fleet-merged) serve counters.
//   wire-pack --clients A.csv --facilities B.csv [--metric linf|l1|l2]
//             [--size N] [--count K] [--deltas D] [--seed S] --out req.bin
//       Encode K framed wire requests over one circle set (the first
//       carries the set inline, the rest reference it by hash; each at a
//       distinct resolution) — the client half of a serve round-trip.
//       With --deltas D, pack instead one inline request followed by D
//       v4 delta frames: each frame carries the edit journal of one
//       random session tick plus the expected derived hash.
//   wire-verify --requests req.bin --responses resp.bin
//       Decode request/response frame pairs and recompute every request
//       directly (delta frames replay their edits through ApplyDelta);
//       fails unless each served grid is bit-identical.
//
// Exit codes: 0 success, 1 usage error, 2 I/O or verification failure;
// serving-stack failures exit with a per-StatusCode code (3 + code — see
// ExitCodeFor in common/status.h), so a supervisor can tell a bad flag
// from a lost socket from a truncated stream.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/crest.h"
#include "core/crest_l2.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/io.h"
#include "heatmap/ascii.h"
#include "heatmap/heatmap.h"
#include "heatmap/histogram.h"
#include "heatmap/image.h"
#include "heatmap/influence.h"
#include "heatmap/postprocess.h"
#include "heatmap/serialization.h"
#include "nn/nn_circle_builder.h"
#include "query/heatmap_engine.h"
#include "query/heatmap_session.h"
#include "query/rnn_query.h"
#include "query/wire.h"
#include "serve/byte_stream.h"
#include "serve/event_loop.h"
#include "serve/options.h"
#include "serve/shard_router.h"
#include "serve/transport.h"
#include "serve/wire_server.h"
#include "tile/tile_plan.h"

namespace {

using namespace rnnhm;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rnnhm_cli generate <nyc|la|uniform|zipfian> <count> <out.csv> "
      "[--seed S]\n"
      "  rnnhm_cli heatmap --clients A.csv --facilities B.csv\n"
      "            [--metric linf|l1|l2] [--size N] [--threads T] "
      "[--out map.ppm] [--ascii]\n"
      "            [--cache BYTES] [--repeat N] [--tiles RxC]\n"
      "  rnnhm_cli replay --clients A.csv --facilities B.csv\n"
      "            [--metric linf|l1|l2] [--size N] [--edits K] [--seed S] "
      "[--verify] [--out map.ppm]\n"
      "  rnnhm_cli topk --clients A.csv --facilities B.csv [--k K] "
      "[--metric ...]\n"
      "  rnnhm_cli query --clients A.csv --facilities B.csv --x X --y Y "
      "[--metric ...]\n"
      "  rnnhm_cli serve [--transport stdio|tcp|unix] [--threads T] "
      "[--slabs S] [--cache BYTES]\n"
      "            [--in req.bin] [--out resp.bin] [--host H] [--port P] "
      "[--path SOCK]\n"
      "            [--max-conns N] [--idle-timeout MS] [--drain-timeout MS] "
      "[--poller epoll|poll]\n"
      "            [--retain-sets N] [--max-conn-sets N]\n"
      "  rnnhm_cli route [--transport tcp|unix] [--shards N] "
      "[--socket-dir DIR]\n"
      "            [--threads T] [--slabs S] [--cache BYTES] "
      "[--by-tile --tiles RxC]\n"
      "            + serve address flags\n"
      "  rnnhm_cli wire-send [--requests req.bin] --connect "
      "tcp:HOST:PORT|unix:PATH\n"
      "            [--out resp.bin] [--stats]\n"
      "  rnnhm_cli wire-pack --clients A.csv --facilities B.csv "
      "[--metric ...] [--size N]\n"
      "            [--count K] [--deltas D] [--seed S] --out req.bin\n"
      "  rnnhm_cli wire-verify --requests req.bin --responses resp.bin\n");
  return 1;
}

// Minimal flag parser: --name value pairs after the subcommand.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  const char* Flag(const std::string& name,
                   const char* fallback = nullptr) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return v.c_str();
    }
    return fallback;
  }
  bool Has(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return true;
    }
    return false;
  }
};

bool Parse(int argc, char** argv, Args* out) {
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      const std::string name = argv[i] + 2;
      if (name == "ascii" || name == "verify" || name == "stats" ||
          name == "by-tile") {  // boolean flags
        out->flags.emplace_back(name, "1");
      } else if (i + 1 < argc) {
        out->flags.emplace_back(name, argv[++i]);
      } else {
        return false;
      }
    } else {
      out->positional.push_back(argv[i]);
    }
  }
  return true;
}

// Parses a "RxC" tile-grid flag value ("3x3", "1x4"). False (with *error
// set) on anything that is not two positive integers around an 'x'.
bool ParseTileGrid(const char* value, int* rows, int* cols,
                   std::string* error) {
  char* end = nullptr;
  const long r = std::strtol(value, &end, 10);
  if (end == value || *end != 'x' || r <= 0) {
    *error = std::string("--tiles needs RxC (e.g. 3x3), got '") + value + "'";
    return false;
  }
  const char* cols_start = end + 1;
  const long c = std::strtol(cols_start, &end, 10);
  if (end == cols_start || *end != '\0' || c <= 0) {
    *error = std::string("--tiles needs RxC (e.g. 3x3), got '") + value + "'";
    return false;
  }
  *rows = static_cast<int>(r);
  *cols = static_cast<int>(c);
  return true;
}

bool ParseMetric(const Args& args, Metric* metric) {
  const std::string name = args.Flag("metric", "l1");
  if (name == "linf") {
    *metric = Metric::kLInf;
  } else if (name == "l1") {
    *metric = Metric::kL1;
  } else if (name == "l2") {
    *metric = Metric::kL2;
  } else {
    std::fprintf(stderr, "unknown metric '%s'\n", name.c_str());
    return false;
  }
  return true;
}

bool LoadWorkload(const Args& args, std::vector<Point>* clients,
                  std::vector<Point>* facilities) {
  const char* cpath = args.Flag("clients");
  const char* fpath = args.Flag("facilities");
  if (cpath == nullptr || fpath == nullptr) {
    std::fprintf(stderr, "--clients and --facilities are required\n");
    return false;
  }
  if (!ReadPointsCsv(cpath, clients) || clients->empty()) {
    std::fprintf(stderr, "failed to read clients from %s\n", cpath);
    return false;
  }
  if (!ReadPointsCsv(fpath, facilities) || facilities->empty()) {
    std::fprintf(stderr, "failed to read facilities from %s\n", fpath);
    return false;
  }
  return true;
}

int CmdGenerate(const Args& args) {
  if (args.positional.size() != 3) return Usage();
  const std::string kind_name = args.positional[0];
  const size_t count = std::strtoull(args.positional[1].c_str(), nullptr, 10);
  const uint64_t seed = std::strtoull(args.Flag("seed", "1"), nullptr, 10);
  DatasetKind kind;
  if (kind_name == "nyc") {
    kind = DatasetKind::kNyc;
  } else if (kind_name == "la") {
    kind = DatasetKind::kLa;
  } else if (kind_name == "uniform") {
    kind = DatasetKind::kUniform;
  } else if (kind_name == "zipfian") {
    kind = DatasetKind::kZipfian;
  } else {
    std::fprintf(stderr, "unknown data set '%s'\n", kind_name.c_str());
    return 1;
  }
  const Dataset ds = MakeDataset(kind, seed, count);
  if (!WritePointsCsv(ds.points, args.positional[2])) {
    std::fprintf(stderr, "cannot write %s\n", args.positional[2].c_str());
    return 2;
  }
  std::printf("wrote %zu %s points to %s\n", ds.points.size(),
              ds.name.c_str(), args.positional[2].c_str());
  return 0;
}

int CmdHeatmap(const Args& args) {
  std::vector<Point> clients, facilities;
  Metric metric;
  if (!LoadWorkload(args, &clients, &facilities) ||
      !ParseMetric(args, &metric)) {
    return 1;
  }
  const int size = std::atoi(args.Flag("size", "512"));
  const int threads = std::atoi(args.Flag("threads", "1"));
  char* cache_end = nullptr;
  const char* cache_arg = args.Flag("cache", "0");
  const long long cache_value = std::strtoll(cache_arg, &cache_end, 10);
  if (cache_end == cache_arg || *cache_end != '\0' || cache_value < 0) {
    std::fprintf(stderr, "--cache needs a non-negative byte count\n");
    return Usage();
  }
  const size_t cache_bytes = static_cast<size_t>(cache_value);
  const int repeat =
      std::atoi(args.Flag("repeat", cache_bytes > 0 ? "2" : "1"));
  if (size <= 0 || threads <= 0 || repeat <= 0) return Usage();
  int tile_rows = 0;
  int tile_cols = 0;
  if (const char* tiles = args.Flag("tiles"); tiles != nullptr) {
    std::string tiles_error;
    if (!ParseTileGrid(tiles, &tile_rows, &tile_cols, &tiles_error)) {
      std::fprintf(stderr, "%s\n", tiles_error.c_str());
      return Usage();
    }
  }
  SizeInfluence measure;
  const Rect domain = BoundingBox(clients, 0.02);
  HeatmapGrid grid = [&] {
    if (cache_bytes > 0) {
      // Engine path: the result cache serves every byte-identical
      // re-request (iterations 2..repeat) without sweeping. With --tiles
      // the request decomposes into per-tile cached fragments, so the
      // warm iterations report tile-level hit counts.
      HeatmapEngineOptions options;
      options.num_threads = 1;
      options.slabs_per_request = threads;
      options.cache_bytes = cache_bytes;
      HeatmapEngine engine(measure, options);
      if (tile_rows > 0) {
        const CircleSetHandle handle = engine.registry().Register(
            BuildNnCircles(clients, facilities, metric), metric);
        const HeatmapRequestV2 request{handle, domain, size, size};
        HeatmapResponse last{HeatmapGrid(1, 1, Rect{{0, 0}, {1, 1}}),
                             {}, {}, false, {}};
        for (int i = 0; i < repeat; ++i) {
          TiledServeStats tile_stats;
          Stopwatch sw;
          last = engine.ExecuteTiled(request, tile_rows, tile_cols,
                                     &tile_stats);
          std::printf("iteration %d: %.2f ms (%d tiles: %d swept, %d "
                      "cached, %d background)\n",
                      i + 1, sw.ElapsedMs(), tile_stats.tiles,
                      tile_stats.swept_tiles, tile_stats.cached_tiles,
                      tile_stats.background_tiles);
        }
        std::printf("cache: %llu hits, %llu misses, %zu entries, %zu "
                    "bytes\n",
                    static_cast<unsigned long long>(last.cache.hits),
                    static_cast<unsigned long long>(last.cache.misses),
                    last.cache.entries, last.cache.bytes);
        return std::move(last.grid);
      }
      HeatmapRequest request{BuildNnCircles(clients, facilities, metric),
                             domain, size, size, metric};
      HeatmapResponse last{HeatmapGrid(1, 1, Rect{{0, 0}, {1, 1}}),
                           {}, {}, false, {}};
      for (int i = 0; i < repeat; ++i) {
        Stopwatch sw;
        last = engine.Execute(request);
        std::printf("iteration %d: %.2f ms (%s)\n", i + 1, sw.ElapsedMs(),
                    last.from_cache ? "cache hit" : "swept");
      }
      std::printf("cache: %llu hits, %llu misses, %zu entries, %zu bytes\n",
                  static_cast<unsigned long long>(last.cache.hits),
                  static_cast<unsigned long long>(last.cache.misses),
                  last.cache.entries, last.cache.bytes);
      return std::move(last.grid);
    }
    if (tile_rows > 0) {
      // Tiled sweep: partition the domain, sweep each tile over just the
      // circles that can influence it, stitch — bit-identical to the
      // untiled builders below.
      const auto circles = BuildNnCircles(clients, facilities, metric);
      TilePlanOptions plan_options;
      plan_options.rows = tile_rows;
      plan_options.cols = tile_cols;
      const TilePlan plan(metric, circles, domain, size, size, plan_options);
      return plan.Run(measure, threads);
    }
    switch (metric) {
      case Metric::kLInf:
        return BuildHeatmapLInfParallel(
            BuildNnCircles(clients, facilities, Metric::kLInf), measure,
            domain, size, size, threads);
      case Metric::kL1:
        return BuildHeatmapL1Parallel(
            BuildNnCircles(clients, facilities, Metric::kL1), measure,
            domain, size, size, threads);
      case Metric::kL2:
      default:
        // Exact arc-sweep rasterization (exact at pixel centers),
        // slab-parallel across --threads.
        return BuildHeatmapL2Parallel(
            BuildNnCircles(clients, facilities, Metric::kL2), measure,
            domain, size, size, threads);
    }
  }();
  std::printf("heat map %dx%d, max influence %.0f\n", size, size,
              grid.MaxValue());
  if (args.Has("ascii")) {
    std::fputs(RenderAscii(grid).c_str(), stdout);
  }
  const char* out = args.Flag("out");
  if (out != nullptr) {
    if (!WritePpm(grid, out)) {
      std::fprintf(stderr, "cannot write %s\n", out);
      return 2;
    }
    std::printf("wrote %s\n", out);
  }
  const char* save = args.Flag("save");
  if (save != nullptr) {
    if (!SaveHeatmap(grid, save)) {
      std::fprintf(stderr, "cannot save %s\n", save);
      return 2;
    }
    std::printf("saved %s\n", save);
  }
  return 0;
}

int CmdReplay(const Args& args) {
  std::vector<Point> clients, facilities;
  Metric metric;
  if (!LoadWorkload(args, &clients, &facilities) ||
      !ParseMetric(args, &metric)) {
    return 1;
  }
  const int size = std::atoi(args.Flag("size", "256"));
  const int edits = std::atoi(args.Flag("edits", "50"));
  const uint64_t seed = std::strtoull(args.Flag("seed", "1"), nullptr, 10);
  const bool verify = args.Has("verify");
  if (size <= 0 || edits < 0) return Usage();

  SizeInfluence measure;
  const Rect domain = BoundingBox(clients, 0.02);
  HeatmapSession session(clients, facilities, metric);

  Stopwatch sw;
  session.RasterIncremental(measure, domain, size, size);
  std::printf("initial %dx%d map (%s): %.2f ms full sweep\n", size, size,
              MetricName(metric).c_str(), sw.ElapsedMs());

  Rng rng(seed);
  double incremental_ms = 0.0;
  double reference_ms = 0.0;
  long dirty_columns = 0;
  long full_rebuilds = 0;
  for (int tick = 0; tick < edits; ++tick) {
    const double dice = rng.NextDouble();
    if (dice < 0.45) {
      session.MoveClient(
          static_cast<int32_t>(rng.NextBounded(session.num_clients())),
          {rng.Uniform(domain.lo.x, domain.hi.x),
           rng.Uniform(domain.lo.y, domain.hi.y)});
    } else if (dice < 0.65) {
      session.AddClient({rng.Uniform(domain.lo.x, domain.hi.x),
                         rng.Uniform(domain.lo.y, domain.hi.y)});
    } else if (dice < 0.85 || session.num_facilities() < 2) {
      session.AddFacility({rng.Uniform(domain.lo.x, domain.hi.x),
                           rng.Uniform(domain.lo.y, domain.hi.y)});
    } else {
      session.RemoveFacility(
          static_cast<int32_t>(rng.NextBounded(session.num_facilities())));
    }
    IncrementalRebuildStats stats;
    sw.Reset();
    const HeatmapGrid& grid =
        session.RasterIncremental(measure, domain, size, size, &stats);
    incremental_ms += sw.ElapsedMs();
    if (stats.full_rebuild) {
      ++full_rebuilds;
    } else {
      dirty_columns += stats.raster.dirty_columns;
    }
    if (verify) {
      sw.Reset();
      // The same from-scratch recipe the session's full rebuild uses.
      const HeatmapGrid reference = BuildHeatmapForMetric(
          session.metric(), session.circles(), measure, domain, size, size);
      reference_ms += sw.ElapsedMs();
      if (grid.values() != reference.values()) {
        std::fprintf(stderr,
                     "tick %d: incremental raster diverged from the "
                     "from-scratch build\n",
                     tick);
        return 2;
      }
    }
  }
  std::printf("%d edits: %.2f ms incremental total (%.2f ms/tick), "
              "%ld full rebuilds, %.1f%% columns recomputed/tick avg\n",
              edits, incremental_ms, edits > 0 ? incremental_ms / edits : 0.0,
              full_rebuilds,
              edits > full_rebuilds
                  ? 100.0 * dirty_columns / (size * (edits - full_rebuilds))
                  : 0.0);
  if (verify) {
    std::printf("verified bit-identical against %d from-scratch rebuilds "
                "(%.2f ms/tick from scratch)\n",
                edits, edits > 0 ? reference_ms / edits : 0.0);
  }
  const HeatmapGrid& final_grid =
      session.RasterIncremental(measure, domain, size, size);
  std::printf("final max influence %.0f\n", final_grid.MaxValue());
  const char* out = args.Flag("out");
  if (out != nullptr) {
    if (!WritePpm(final_grid, out)) {
      std::fprintf(stderr, "cannot write %s\n", out);
      return 2;
    }
    std::printf("wrote %s\n", out);
  }
  return 0;
}

int CmdRender(const Args& args) {
  const char* load = args.Flag("load");
  if (load == nullptr) {
    std::fprintf(stderr, "--load is required\n");
    return 1;
  }
  const auto grid = LoadHeatmap(load);
  if (!grid.has_value()) {
    std::fprintf(stderr, "cannot load %s\n", load);
    return 2;
  }
  std::printf("loaded %dx%d heat map, max influence %.0f\n", grid->width(),
              grid->height(), grid->MaxValue());
  if (args.Has("ascii")) {
    std::fputs(RenderAscii(*grid).c_str(), stdout);
  }
  const char* out = args.Flag("out");
  if (out != nullptr) {
    if (!WritePpm(*grid, out)) {
      std::fprintf(stderr, "cannot write %s\n", out);
      return 2;
    }
    std::printf("wrote %s\n", out);
  }
  return 0;
}

int CmdStats(const Args& args) {
  std::vector<Point> clients, facilities;
  Metric metric;
  if (!LoadWorkload(args, &clients, &facilities) ||
      !ParseMetric(args, &metric)) {
    return 1;
  }
  if (metric == Metric::kL2) {
    std::fprintf(stderr,
                 "stats uses the exact strip decomposition (linf/l1)\n");
    return 1;
  }
  SizeInfluence measure;
  auto circles = BuildNnCircles(clients, facilities, metric);
  if (metric == Metric::kL1) circles = RotateCirclesToLInf(circles);
  AreaHistogramSink histogram;
  CountingSink counter;
  CrestOptions options;
  options.strip_sink = &histogram;
  RunCrest(circles, measure, &counter, options);
  const double total = histogram.TotalArea();
  std::printf("arrangement area: %.6f (note: L1 stats are computed in the "
              "rotated frame; areas are preserved)\n", total);
  std::printf("area-weighted influence quantiles:\n");
  for (const double q : {0.01, 0.05, 0.25, 0.50}) {
    std::printf("  top %4.0f%% of area has influence >= %.0f\n", q * 100,
                histogram.QuantileInfluence(q));
  }
  std::printf("area by influence (head):\n");
  int shown = 0;
  for (auto it = histogram.area_by_influence().rbegin();
       it != histogram.area_by_influence().rend() && shown < 10;
       ++it, ++shown) {
    std::printf("  influence %4.0f: %.2f%% of area\n", it->first,
                100.0 * it->second / total);
  }
  return 0;
}

int CmdTopK(const Args& args) {
  std::vector<Point> clients, facilities;
  Metric metric;
  if (!LoadWorkload(args, &clients, &facilities) ||
      !ParseMetric(args, &metric)) {
    return 1;
  }
  const size_t k = std::strtoull(args.Flag("k", "5"), nullptr, 10);
  SizeInfluence measure;
  const auto circles = BuildNnCircles(clients, facilities, metric);
  RegionQuerySink regions;
  switch (metric) {
    case Metric::kLInf:
      RunCrest(circles, measure, &regions);
      break;
    case Metric::kL1:
      RunCrestL1(circles, measure, &regions);
      break;
    case Metric::kL2:
      RunCrestL2(circles, measure, &regions);
      break;
  }
  std::printf("top-%zu regions by influence (|RNN set|):\n", k);
  for (const InfluentialRegion& r : regions.TopK(k)) {
    Point site = r.representative.Center();
    if (metric == Metric::kL1) site = RotateFromLInf(site);
    std::printf("  %.0f clients near (%.6f, %.6f)\n", r.influence, site.x,
                site.y);
  }
  return 0;
}

// The one place serve/route flags are parsed (ISSUE: ServeOptions is the
// single source of serving configuration). False (with *error set) on any
// out-of-range or unparsable flag.
bool ParseServeFlags(const Args& args, ServeOptions* options,
                     std::string* error) {
  options->threads = std::atoi(args.Flag("threads", "1"));
  options->slabs = std::atoi(args.Flag("slabs", "1"));
  char* cache_end = nullptr;
  const char* cache_arg = args.Flag("cache", "0");
  const long long cache_value = std::strtoll(cache_arg, &cache_end, 10);
  if (cache_end == cache_arg || *cache_end != '\0' || cache_value < 0) {
    *error = "--cache needs a non-negative byte count";
    return false;
  }
  options->cache_bytes = static_cast<size_t>(cache_value);
  if (options->threads <= 0 || options->slabs <= 0) {
    *error = "--threads and --slabs must be positive";
    return false;
  }
  if (!ParseTransportKind(args.Flag("transport", "stdio"),
                          &options->transport)) {
    *error = std::string("unknown transport '") +
             args.Flag("transport", "stdio") + "' (stdio|tcp|unix)";
    return false;
  }
  options->host = args.Flag("host", "127.0.0.1");
  options->port = std::atoi(args.Flag("port", "0"));
  if (options->port < 0 || options->port > 65535) {
    *error = "--port must be 0..65535";
    return false;
  }
  if (const char* path = args.Flag("path"); path != nullptr) {
    options->socket_path = path;
  }
  if (options->transport == TransportKind::kUnix &&
      options->socket_path.empty()) {
    *error = "--transport unix needs --path";
    return false;
  }
  options->max_connections = std::atoi(args.Flag("max-conns", "64"));
  options->idle_timeout_ms = std::atoi(args.Flag("idle-timeout", "30000"));
  options->drain_timeout_ms = std::atoi(args.Flag("drain-timeout", "5000"));
  if (options->max_connections <= 0 || options->idle_timeout_ms < 0 ||
      options->drain_timeout_ms < 0) {
    *error = "--max-conns must be positive; timeouts non-negative";
    return false;
  }
  const std::string poller = args.Flag("poller", "epoll");
  if (poller == "epoll") {
    options->prefer_epoll = true;
  } else if (poller == "poll") {
    options->prefer_epoll = false;
  } else {
    *error = "unknown --poller '" + poller + "' (epoll|poll)";
    return false;
  }
  const int retain_sets = std::atoi(args.Flag("retain-sets", "256"));
  const int max_conn_sets = std::atoi(args.Flag("max-conn-sets", "64"));
  if (retain_sets < 0 || max_conn_sets < 0) {
    *error = "--retain-sets and --max-conn-sets must be non-negative";
    return false;
  }
  options->retain_sets = static_cast<size_t>(retain_sets);
  options->max_conn_sets = static_cast<size_t>(max_conn_sets);
  options->num_shards = std::atoi(args.Flag("shards", "2"));
  if (options->num_shards <= 0) {
    *error = "--shards must be positive";
    return false;
  }
  if (const char* dir = args.Flag("socket-dir"); dir != nullptr) {
    options->socket_dir = dir;
  }
  options->route_by_tile = args.Has("by-tile");
  if (const char* tiles = args.Flag("tiles"); tiles != nullptr) {
    if (!ParseTileGrid(tiles, &options->tile_rows, &options->tile_cols,
                       error)) {
      return false;
    }
  }
  if (options->route_by_tile &&
      options->tile_rows * options->tile_cols < options->num_shards) {
    *error = "--by-tile needs --tiles RxC with at least as many tiles as "
             "shards";
    return false;
  }
  if (const char* in = args.Flag("in"); in != nullptr) options->in_path = in;
  if (const char* out = args.Flag("out"); out != nullptr) {
    options->out_path = out;
  }
  return true;
}

void PrintServeStats(const WireServeStats& stats) {
  std::fprintf(stderr,
               "served %llu requests (%llu ok, %llu errors, %llu circle "
               "sets registered, %llu deltas, %llu spliced, %llu dirty "
               "columns)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.ok),
               static_cast<unsigned long long>(stats.errors),
               static_cast<unsigned long long>(stats.sets_registered),
               static_cast<unsigned long long>(stats.deltas),
               static_cast<unsigned long long>(stats.delta_splices),
               static_cast<unsigned long long>(stats.delta_dirty_columns));
}

// The stdio/file leg of serve: the blocking WireServer loop over
// ByteSource/ByteSink (what ServeWireStream wraps for legacy callers).
int ServeStdio(const ServeOptions& options, HeatmapEngine& engine) {
  std::FILE* in = stdin;
  std::FILE* out = stdout;
  if (!options.in_path.empty() &&
      (in = std::fopen(options.in_path.c_str(), "rb")) == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", options.in_path.c_str());
    return 2;
  }
  if (!options.out_path.empty() &&
      (out = std::fopen(options.out_path.c_str(), "wb")) == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", options.out_path.c_str());
    if (in != stdin) std::fclose(in);
    return 2;
  }
  WireServer server(engine);
  FileByteSource source(in);
  FileByteSink sink(out);
  const Status status = server.ServeStream(source, sink);
  if (in != stdin) std::fclose(in);
  if (out != stdout) std::fclose(out);
  PrintServeStats(server.stats());
  if (!status.ok()) {
    std::fprintf(stderr, "serve aborted: %s\n", status.ToString().c_str());
  }
  return ExitCodeFor(status);
}

int CmdServe(const Args& args) {
  ServeOptions options;
  std::string parse_error;
  if (!ParseServeFlags(args, &options, &parse_error)) {
    std::fprintf(stderr, "%s\n", parse_error.c_str());
    return Usage();
  }
  SizeInfluence measure;
  HeatmapEngineOptions engine_options;
  engine_options.num_threads = options.threads;
  engine_options.slabs_per_request = options.slabs;
  engine_options.cache_bytes = options.cache_bytes;
  // Bounded registry: fully released sets stay resolvable by hash up to
  // --retain-sets, LRU-evicted past it (0 = erase on last release).
  CircleSetRegistryOptions registry_options;
  registry_options.max_unpinned_entries = options.retain_sets;
  engine_options.registry =
      std::make_shared<CircleSetRegistry>(registry_options);
  HeatmapEngine engine(measure, engine_options);
  if (options.transport == TransportKind::kStdio) {
    return ServeStdio(options, engine);
  }
  Listener listener;
  Status status =
      options.transport == TransportKind::kTcp
          ? Listener::ListenTcp(options.host, options.port, &listener)
          : Listener::ListenUnix(options.socket_path, &listener);
  if (!status.ok()) {
    std::fprintf(stderr, "serve: %s\n", status.ToString().c_str());
    return ExitCodeFor(status);
  }
  if (options.transport == TransportKind::kTcp) {
    std::fprintf(stderr, "listening on tcp %s:%d\n", options.host.c_str(),
                 listener.port());
  } else {
    std::fprintf(stderr, "listening on unix %s\n", listener.path().c_str());
  }
  EventLoopServer server(std::move(listener), engine, options);
  InstallShutdownSignalHandlers(&server);
  status = server.Run();
  InstallShutdownSignalHandlers(nullptr);
  PrintServeStats(server.stats());
  if (!status.ok()) {
    std::fprintf(stderr, "serve aborted: %s\n", status.ToString().c_str());
  }
  return ExitCodeFor(status);
}

int CmdRoute(const Args& args) {
  ServeOptions options;
  std::string parse_error;
  if (!ParseServeFlags(args, &options, &parse_error)) {
    std::fprintf(stderr, "%s\n", parse_error.c_str());
    return Usage();
  }
  if (options.transport == TransportKind::kStdio) {
    std::fprintf(stderr, "route needs --transport tcp or unix\n");
    return Usage();
  }
  // Fleet first, while this process is still single-threaded (fork).
  ShardFleet fleet;
  Status status = ShardFleet::Spawn(options, &fleet);
  if (!status.ok()) {
    std::fprintf(stderr, "route: %s\n", status.ToString().c_str());
    return ExitCodeFor(status);
  }
  Listener front;
  status = options.transport == TransportKind::kTcp
               ? Listener::ListenTcp(options.host, options.port, &front)
               : Listener::ListenUnix(options.socket_path, &front);
  if (!status.ok()) {
    std::fprintf(stderr, "route: %s\n", status.ToString().c_str());
    fleet.Shutdown();
    return ExitCodeFor(status);
  }
  if (options.transport == TransportKind::kTcp) {
    std::fprintf(stderr, "routing %d shards on tcp %s:%d\n",
                 fleet.num_shards(), options.host.c_str(), front.port());
  } else {
    std::fprintf(stderr, "routing %d shards on unix %s\n", fleet.num_shards(),
                 front.path().c_str());
  }
  ShardRouter router(std::move(front), fleet.socket_paths(), options);
  InstallRouterSignalHandlers(&router);
  status = router.Run();
  InstallRouterSignalHandlers(nullptr);
  fleet.Shutdown();
  if (!status.ok()) {
    std::fprintf(stderr, "route aborted: %s\n", status.ToString().c_str());
  }
  return ExitCodeFor(status);
}

int CmdWireSend(const Args& args) {
  const char* req_path = args.Flag("requests");
  const char* connect = args.Flag("connect");
  const char* out_path = args.Flag("out");
  const bool want_stats = args.Has("stats");
  if (connect == nullptr || (req_path == nullptr && !want_stats)) {
    std::fprintf(stderr,
                 "--connect is required, plus --requests and/or --stats\n");
    return Usage();
  }
  const std::string target = connect;
  int fd = -1;
  Status status;
  if (target.rfind("tcp:", 0) == 0) {
    const size_t colon = target.rfind(':');
    if (colon == 3) {
      std::fprintf(stderr, "--connect tcp needs tcp:HOST:PORT\n");
      return Usage();
    }
    status = ConnectTcp(target.substr(4, colon - 4),
                        std::atoi(target.c_str() + colon + 1), &fd);
  } else if (target.rfind("unix:", 0) == 0) {
    status = ConnectUnix(target.substr(5), &fd);
  } else {
    std::fprintf(stderr, "--connect needs tcp:HOST:PORT or unix:PATH\n");
    return Usage();
  }
  if (!status.ok()) {
    std::fprintf(stderr, "wire-send: %s\n", status.ToString().c_str());
    return ExitCodeFor(status);
  }
  std::FILE* out = nullptr;
  if (out_path != nullptr && (out = std::fopen(out_path, "wb")) == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    ::close(fd);
    return 2;
  }
  int sent = 0;
  int exit_code = 0;
  if (req_path != nullptr) {
    std::FILE* req_file = std::fopen(req_path, "rb");
    if (req_file == nullptr) {
      std::fprintf(stderr, "cannot read %s\n", req_path);
      if (out != nullptr) std::fclose(out);
      ::close(fd);
      return 2;
    }
    for (;;) {
      std::string frame_error;
      const auto frame = ReadFrame(req_file, &frame_error);
      if (!frame.has_value()) {
        if (!frame_error.empty()) {
          std::fprintf(stderr, "%s: %s\n", req_path, frame_error.c_str());
          exit_code = 2;
        }
        break;
      }
      std::vector<uint8_t> reply;
      if (status = SendFrame(fd, *frame); status.ok()) {
        status = RecvFrame(fd, &reply);
      }
      if (!status.ok()) {
        std::fprintf(stderr, "wire-send: %s\n", status.ToString().c_str());
        exit_code = ExitCodeFor(status);
        break;
      }
      if (out != nullptr && !WriteFrame(out, reply)) {
        std::fprintf(stderr, "failed writing %s\n", out_path);
        exit_code = 2;
        break;
      }
      ++sent;
    }
    std::fclose(req_file);
  }
  if (exit_code == 0 && want_stats) {
    std::vector<uint8_t> reply;
    if (status = SendFrame(fd, EncodeStatsRequest()); status.ok()) {
      status = RecvFrame(fd, &reply);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "wire-send: %s\n", status.ToString().c_str());
      exit_code = ExitCodeFor(status);
    } else {
      std::string decode_error;
      const auto stats = DecodeStatsResponse(reply, &decode_error);
      if (!stats.has_value()) {
        std::fprintf(stderr, "stats reply: %s\n", decode_error.c_str());
        exit_code = 2;
      } else {
        std::printf("stats: %u shard(s), %llu requests, %llu ok, %llu "
                    "errors, %llu sets registered, %llu deltas (%llu "
                    "spliced, %llu dirty columns), %llu sets evicted\n",
                    stats->shards,
                    static_cast<unsigned long long>(stats->requests),
                    static_cast<unsigned long long>(stats->ok),
                    static_cast<unsigned long long>(stats->errors),
                    static_cast<unsigned long long>(stats->sets_registered),
                    static_cast<unsigned long long>(stats->deltas),
                    static_cast<unsigned long long>(stats->delta_splices),
                    static_cast<unsigned long long>(stats->delta_dirty_columns),
                    static_cast<unsigned long long>(stats->sets_evicted));
      }
    }
  }
  ::close(fd);
  if (out != nullptr && std::fclose(out) != 0 && exit_code == 0) {
    std::fprintf(stderr, "failed writing %s\n", out_path);
    exit_code = 2;
  }
  if (exit_code == 0 && sent > 0) {
    std::printf("sent %d requests, received %d responses\n", sent, sent);
  }
  return exit_code;
}

int CmdWirePack(const Args& args) {
  std::vector<Point> clients, facilities;
  Metric metric;
  if (!LoadWorkload(args, &clients, &facilities) ||
      !ParseMetric(args, &metric)) {
    return 1;
  }
  const int size = std::atoi(args.Flag("size", "64"));
  const int count = std::atoi(args.Flag("count", "4"));
  const int deltas = std::atoi(args.Flag("deltas", "0"));
  const uint64_t seed = std::strtoull(args.Flag("seed", "1"), nullptr, 10);
  const char* out_path = args.Flag("out");
  if (size <= 0 || count <= 0 || deltas < 0 || out_path == nullptr) {
    return Usage();
  }
  const Rect domain = BoundingBox(clients, 0.02);
  std::FILE* out = std::fopen(out_path, "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 2;
  }
  bool ok = true;
  size_t num_circles = 0;
  if (deltas > 0) {
    // Delta stream: one inline request establishes the base set, then
    // every tick of a randomly edited session travels as a v4 delta
    // frame (base hash + edit journal + expected derived hash) at the
    // same geometry, so the server can splice instead of resweeping.
    HeatmapSession session(clients, facilities, metric);
    const auto base = CircleSetSnapshot::Make(session.circles(), metric);
    num_circles = base->circles().size();
    ok = WriteFrame(out, EncodeRequest(MakeWireRequest(
                             *base, domain, size, size,
                             /*include_circles=*/true)));
    session.EnableEditJournal();
    uint64_t prev_hash = base->content_hash();
    Rng rng(seed);
    for (int i = 0; i < deltas && ok; ++i) {
      const double dice = rng.NextDouble();
      if (dice < 0.55) {
        session.MoveClient(
            static_cast<int32_t>(rng.NextBounded(session.num_clients())),
            {rng.Uniform(domain.lo.x, domain.hi.x),
             rng.Uniform(domain.lo.y, domain.hi.y)});
      } else if (dice < 0.75) {
        session.AddClient({rng.Uniform(domain.lo.x, domain.hi.x),
                           rng.Uniform(domain.lo.y, domain.hi.y)});
      } else if (dice < 0.9 || session.num_facilities() < 2) {
        session.AddFacility({rng.Uniform(domain.lo.x, domain.hi.x),
                             rng.Uniform(domain.lo.y, domain.hi.y)});
      } else {
        session.RemoveFacility(
            static_cast<int32_t>(rng.NextBounded(session.num_facilities())));
      }
      WireDeltaRequest delta;
      delta.metric = metric;
      delta.base_hash = prev_hash;
      delta.edits = session.TakeCircleEdits();
      delta.new_hash = HashCircleSet(session.circles(), metric);
      delta.domain = domain;
      delta.width = size;
      delta.height = size;
      ok = WriteFrame(out, EncodeDeltaRequest(delta));
      prev_hash = delta.new_hash;
    }
  } else {
    const auto set = CircleSetSnapshot::Make(
        BuildNnCircles(clients, facilities, metric), metric);
    num_circles = set->circles().size();
    for (int i = 0; i < count && ok; ++i) {
      // The first frame carries the set inline; the rest reference it by
      // content hash. Distinct resolutions keep every response distinct.
      const WireRequest request = MakeWireRequest(
          *set, domain, size + i, size + i, /*include_circles=*/i == 0);
      ok = WriteFrame(out, EncodeRequest(request));
    }
  }
  ok = (std::fclose(out) == 0) && ok;
  if (!ok) {
    std::fprintf(stderr, "failed writing %s\n", out_path);
    return 2;
  }
  if (deltas > 0) {
    std::printf("packed 1 inline request + %d deltas over %zu circles "
                "(%s) to %s\n",
                deltas, num_circles, MetricName(metric).c_str(), out_path);
  } else {
    std::printf("packed %d requests over %zu circles (%s) to %s\n", count,
                num_circles, MetricName(metric).c_str(), out_path);
  }
  return 0;
}

int CmdWireVerify(const Args& args) {
  const char* req_path = args.Flag("requests");
  const char* resp_path = args.Flag("responses");
  if (req_path == nullptr || resp_path == nullptr) {
    std::fprintf(stderr, "--requests and --responses are required\n");
    return 1;
  }
  std::FILE* req_file = std::fopen(req_path, "rb");
  if (req_file == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", req_path);
    return 2;
  }
  std::FILE* resp_file = std::fopen(resp_path, "rb");
  if (resp_file == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", resp_path);
    std::fclose(req_file);
    return 2;
  }
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  HeatmapEngine engine(measure, options);
  // Inline sets seen so far, by content hash, for by-reference requests.
  std::vector<std::pair<uint64_t, CircleSetHandle>> known;
  int verified = 0;
  int failures = 0;
  for (;;) {
    std::string error;
    std::string req_error;
    std::string resp_error;
    const auto req_frame = ReadFrame(req_file, &req_error);
    const auto resp_frame = ReadFrame(resp_file, &resp_error);
    if (!req_frame.has_value() || !resp_frame.has_value()) {
      // A truncated frame on either side is a failure even when both
      // files end simultaneously; only a clean EOF on both is success.
      if (!req_error.empty() || !resp_error.empty()) {
        std::fprintf(stderr, "frame %d: %s\n", verified,
                     (!req_error.empty() ? req_error : resp_error).c_str());
        ++failures;
      } else if (req_frame.has_value() != resp_frame.has_value()) {
        std::fprintf(stderr, "request/response frame counts differ\n");
        ++failures;
      }
      break;
    }
    const auto response = DecodeResponse(*resp_frame, &error);
    if (!response.has_value()) {
      std::fprintf(stderr, "response %d: %s\n", verified, error.c_str());
      ++failures;
      break;
    }
    if (response->status != WireStatus::kOk) {
      std::fprintf(stderr, "response %d: server error %d (%s)\n", verified,
                   static_cast<int>(response->status),
                   response->error.c_str());
      ++failures;
      break;
    }
    // Resolve the request — plain or delta — to the handle + geometry the
    // reference Execute needs.
    CircleSetHandle handle;
    Rect ref_domain;
    int ref_width = 0;
    int ref_height = 0;
    if (IsDeltaRequest(*req_frame)) {
      const auto delta = DecodeDeltaRequest(*req_frame, &error);
      if (!delta.has_value()) {
        std::fprintf(stderr, "request %d: %s\n", verified, error.c_str());
        ++failures;
        break;
      }
      CircleSetHandle base;
      for (const auto& [hash, h] : known) {
        if (hash == delta->base_hash) base = h;
      }
      if (!base.valid()) {
        std::fprintf(stderr, "request %d: delta references an unseen base\n",
                     verified);
        ++failures;
        break;
      }
      const Status status = engine.registry().ApplyDelta(
          base, delta->edits, delta->new_hash, &handle);
      if (!status.ok()) {
        std::fprintf(stderr, "request %d: %s\n", verified,
                     status.ToString().c_str());
        ++failures;
        break;
      }
      known.emplace_back(delta->new_hash, handle);
      ref_domain = delta->domain;
      ref_width = delta->width;
      ref_height = delta->height;
    } else {
      const auto request = DecodeRequest(*req_frame, &error);
      if (!request.has_value()) {
        std::fprintf(stderr, "request %d: %s\n", verified, error.c_str());
        ++failures;
        break;
      }
      if (request->inline_circles) {
        handle =
            engine.registry().Register(request->circles, request->metric);
        known.emplace_back(request->set_hash, handle);
      } else {
        for (const auto& [hash, h] : known) {
          if (hash == request->set_hash) handle = h;
        }
        if (!handle.valid()) {
          std::fprintf(stderr, "request %d references an unseen set\n",
                       verified);
          ++failures;
          break;
        }
      }
      ref_domain = request->domain;
      ref_width = request->width;
      ref_height = request->height;
    }
    const HeatmapResponse reference = engine.Execute(
        HeatmapRequestV2{handle, ref_domain, ref_width, ref_height});
    if (reference.grid.values() != response->response->grid.values()) {
      std::fprintf(stderr,
                   "request %d: served grid differs from direct Execute\n",
                   verified);
      ++failures;
      break;
    }
    ++verified;
  }
  std::fclose(req_file);
  std::fclose(resp_file);
  if (failures > 0) return 2;
  std::printf("verified %d responses bit-identical to direct Execute\n",
              verified);
  return 0;
}

int CmdQuery(const Args& args) {
  std::vector<Point> clients, facilities;
  Metric metric;
  if (!LoadWorkload(args, &clients, &facilities) ||
      !ParseMetric(args, &metric)) {
    return 1;
  }
  if (!args.Has("x") || !args.Has("y")) {
    std::fprintf(stderr, "--x and --y are required\n");
    return 1;
  }
  const Point q{std::atof(args.Flag("x")), std::atof(args.Flag("y"))};
  RnnQueryEngine engine(clients, facilities, metric);
  const auto rnn = engine.Query(q);
  std::printf("R((%.6f, %.6f)) under %s: %zu clients\n", q.x, q.y,
              MetricName(metric).c_str(), rnn.size());
  for (const int32_t c : rnn) {
    std::printf("  client %d at (%.6f, %.6f)\n", c, clients[c].x,
                clients[c].y);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  if (!Parse(argc, argv, &args)) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "heatmap") return CmdHeatmap(args);
  if (cmd == "replay") return CmdReplay(args);
  if (cmd == "render") return CmdRender(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "topk") return CmdTopK(args);
  if (cmd == "query") return CmdQuery(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "route") return CmdRoute(args);
  if (cmd == "wire-send") return CmdWireSend(args);
  if (cmd == "wire-pack") return CmdWirePack(args);
  if (cmd == "wire-verify") return CmdWireVerify(args);
  return Usage();
}
