#!/usr/bin/env python3
"""Cross-checks the declared wire layouts against the codec that ships them.

The declarative layout tables live in src/query/wire_layout.h (one
``// wire-layout: <frame> bytes=<N> magic=<XXXX>`` marker per table); the
hand-written encoder/decoder lives in src/query/wire.cc. The C++
static_asserts already force the codec's *constants* to match the tables,
but both sides are edited by the same hands — this linter re-derives the
layouts independently, straight from the text, and fails CI when:

  * a table has a gap, overlap, zero-size field, or wrong declared size;
  * an encoder's Put* call sequence (PutMagic=4, PutU32=4, push_back=1,
    PutU16=2, PutI32=4, PutF64=8, PutU64=8) disagrees with its table,
    field for field;
  * a frame's magic literal in wire.cc differs from the table marker;
  * the routing-peek offsets (PeekRequestSetHash / PeekRouteInfo) do not
    line up with the set_hash / new_hash / tile_id table fields;
  * the version-history table is not append-only monotonic, misses a
    version, or its last row disagrees with the live kWireVersion sizes.

Run ``--self-test`` to prove the checks can fail: it perturbs each
invariant in-memory and requires every perturbation to be caught.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
WIRE_LAYOUT_H = REPO / "src" / "query" / "wire_layout.h"
WIRE_H = REPO / "src" / "query" / "wire.h"
WIRE_CC = REPO / "src" / "query" / "wire.cc"

# Bytes appended by each straight-line encoder call.
CALL_SIZES = {
    "PutMagic": 4,
    "PutU16": 2,
    "PutU32": 4,
    "PutI32": 4,
    "PutU64": 8,
    "PutF64": 8,
    "push_back": 1,
}

# frame name in the table marker -> (magic constant in wire.cc, encoder).
FRAMES = {
    "request": ("kRequestMagic", "EncodeRequest"),
    "response": ("kResponseMagic", "EncodeResponseHeader"),
    "delta": ("kDeltaRequestMagic", "EncodeDeltaRequest"),
    "tile": ("kTileRequestMagic", "EncodeTileRequest"),
    "stats_request": ("kStatsRequestMagic", "EncodeStatsRequest"),
    "stats_response": ("kStatsResponseMagic", "EncodeStatsResponse"),
    "circle": (None, None),  # payload record: no magic, inline encoders
}


@dataclasses.dataclass
class Field:
    name: str
    offset: int
    size: int


@dataclasses.dataclass
class Layout:
    frame: str
    declared_bytes: int
    magic: str | None
    fields: list[Field]


def parse_layouts(layout_text: str) -> dict[str, Layout]:
    """Reads every ``// wire-layout:`` marked table out of wire_layout.h."""
    layouts: dict[str, Layout] = {}
    marker = re.compile(
        r"^// wire-layout: (\w+) bytes=(\d+) magic=(\w+)\s*$", re.M
    )
    row = re.compile(r'^\s*\{"(\w+)", (\d+), (\d+)\},\s*$')
    lines = layout_text.splitlines()
    for m in marker.finditer(layout_text):
        frame, declared, magic = m.group(1), int(m.group(2)), m.group(3)
        start = layout_text[: m.start()].count("\n") + 1
        fields: list[Field] = []
        in_table = False
        for line in lines[start:]:
            if "constexpr WireField" in line:
                in_table = True
                continue
            if in_table:
                r = row.match(line)
                if r:
                    fields.append(
                        Field(r.group(1), int(r.group(2)), int(r.group(3)))
                    )
                    continue
                if line.strip() == "};":
                    break
                fail(f"{frame}: unparseable table row {line!r}")
        layouts[frame] = Layout(
            frame, declared, None if magic == "none" else magic, fields
        )
    return layouts


def parse_history(layout_text: str) -> list[dict[str, int]]:
    """Reads the kWireVersionHistory rows (marker: wire-layout-history)."""
    m = re.search(
        r"^// wire-layout-history: columns=([\w,]+)$", layout_text, re.M
    )
    if not m:
        fail("wire_layout.h: missing wire-layout-history marker")
    columns = ["version"] + m.group(1).split(",")
    rows = []
    row_re = re.compile(r"^\s*\{(\d+(?:,\s*\d+)*)\},")
    for line in layout_text[m.end() :].splitlines():
        r = row_re.match(line)
        if r:
            values = [int(v) for v in r.group(1).split(",")]
            if len(values) != len(columns):
                fail(f"history row {line.strip()!r}: expected "
                     f"{len(columns)} columns")
            rows.append(dict(zip(columns, values)))
        elif line.strip() == "};":
            break
    if not rows:
        fail("wire_layout.h: empty version-history table")
    return rows


def extract_function(cc_text: str, name: str) -> str:
    """The body of `name(...)` up to its closing brace (depth matched)."""
    m = re.search(rf"\b{name}\s*\([^;]*?\)\s*\{{", cc_text)
    if not m:
        fail(f"wire.cc: encoder {name} not found")
    depth, i = 1, m.end()
    while depth > 0 and i < len(cc_text):
        depth += {"{": 1, "}": -1}.get(cc_text[i], 0)
        i += 1
    return cc_text[m.end() : i - 1]


def straight_line_sizes(body: str) -> list[int]:
    """Sizes of the Put*/push_back calls before the first branch/loop."""
    branch = re.search(r"\n\s*(if|for|switch|while)\s*\(", body)
    prefix = body[: branch.start()] if branch else body
    sizes = []
    for call in re.finditer(r"\b(PutMagic|PutU16|PutU32|PutI32|PutU64|PutF64|push_back)\s*\(", prefix):
        sizes.append(CALL_SIZES[call.group(1)])
    return sizes


ERRORS: list[str] = []


def fail(message: str) -> None:
    ERRORS.append(message)


def check_tables(layouts: dict[str, Layout]) -> None:
    for want in FRAMES:
        if want not in layouts:
            fail(f"wire_layout.h: no layout table for frame '{want}'")
    for layout in layouts.values():
        expected = 0
        for f in layout.fields:
            if f.size <= 0:
                fail(f"{layout.frame}.{f.name}: zero/negative size")
            if f.offset != expected:
                fail(
                    f"{layout.frame}.{f.name}: offset {f.offset}, expected "
                    f"{expected} (gap or overlap — offsets must be "
                    "contiguous from 0)"
                )
            expected = f.offset + f.size
        if expected != layout.declared_bytes:
            fail(
                f"{layout.frame}: fields sum to {expected} bytes but the "
                f"marker declares bytes={layout.declared_bytes}"
            )
        if layout.magic is not None:
            first = layout.fields[0]
            if first.name != "magic" or first.size != 4:
                fail(f"{layout.frame}: first field must be a 4-byte magic")


def check_magics(layouts: dict[str, Layout], cc_text: str) -> None:
    for frame, (constant, _) in FRAMES.items():
        if constant is None:
            continue
        m = re.search(
            rf"constexpr char {constant}\[4\] = \{{'(.)', '(.)', '(.)', '(.)'\}};",
            cc_text,
        )
        if not m:
            fail(f"wire.cc: magic constant {constant} not found")
            continue
        literal = "".join(m.groups())
        declared = layouts[frame].magic
        if literal != declared:
            fail(
                f"{frame}: wire.cc {constant} is '{literal}' but the table "
                f"declares magic={declared}"
            )


def check_encoders(layouts: dict[str, Layout], cc_text: str) -> None:
    for frame, (_, encoder) in FRAMES.items():
        if encoder is None:
            continue
        sizes = straight_line_sizes(extract_function(cc_text, encoder))
        table = layouts[frame]
        expected = [f.size for f in table.fields]
        if sizes[: len(expected)] != expected:
            fail(
                f"{frame}: {encoder} emits field sizes "
                f"{sizes[:len(expected)]} but the table declares {expected}"
            )
        elif len(sizes) > len(expected) and frame not in ("response",):
            # Extra straight-line Put* calls past the declared header mean
            # the table no longer covers the whole fixed prefix. (The
            # response header is followed by a variable message insert,
            # never by straight-line Put* calls.)
            fail(
                f"{frame}: {encoder} emits {len(sizes)} fixed fields, the "
                f"table declares only {len(expected)}"
            )


def check_peeks(layouts: dict[str, Layout], layout_text: str,
                cc_text: str) -> None:
    request = {f.name: f for f in layouts["request"].fields}
    delta = {f.name: f for f in layouts["delta"].fields}
    tile = {f.name: f for f in layouts["tile"].fields}

    def constant(name: str) -> int:
        m = re.search(
            rf"constexpr std::size_t {name} = (\d+);", layout_text
        )
        if not m:
            fail(f"wire_layout.h: constant {name} not found")
            return -1
        return int(m.group(1))

    pairs = [
        ("kRequestSetHashOffset", request["set_hash"].offset),
        ("kDeltaNewHashOffset", delta["new_hash"].offset),
        ("kTileIdOffset", tile["tile_id"].offset),
        ("kRequestHeaderBytes", layouts["request"].declared_bytes),
        ("kResponseHeaderBytes", layouts["response"].declared_bytes),
        ("kDeltaHeaderBytes", layouts["delta"].declared_bytes),
        ("kTileHeaderBytes", layouts["tile"].declared_bytes),
        ("kStatsRequestBytes", layouts["stats_request"].declared_bytes),
        ("kStatsResponseBytes", layouts["stats_response"].declared_bytes),
        ("kCircleBytes", layouts["circle"].declared_bytes),
    ]
    for name, table_value in pairs:
        value = constant(name)
        if value >= 0 and value != table_value:
            fail(
                f"wire_layout.h: {name} = {value} but the layout table "
                f"says {table_value}"
            )

    # The routing contract: one peek offset serves request, delta (base)
    # and tile frames alike.
    if delta["base_hash"].offset != request["set_hash"].offset:
        fail("delta.base_hash must sit in the request.set_hash slot")
    if tile["set_hash"].offset != request["set_hash"].offset:
        fail("tile.set_hash must sit in the request.set_hash slot")

    # And the peek functions must actually read those named constants
    # (PeekRequestSetHash may instead delegate to PeekRouteInfo).
    for func, needed in [
        ("PeekRequestSetHash", [("kRequestSetHashOffset", "PeekRouteInfo")]),
        (
            "PeekRouteInfo",
            [
                ("kRequestSetHashOffset",),
                ("kDeltaNewHashOffset",),
                ("kTileIdOffset",),
            ],
        ),
    ]:
        body = extract_function(cc_text, func)
        for alternatives in needed:
            if not any(name in body for name in alternatives):
                fail(
                    f"wire.cc: {func} no longer reads "
                    f"{' or '.join(alternatives)} — the peek and the "
                    "layout table can drift apart"
                )


def check_history(layouts: dict[str, Layout], history: list[dict[str, int]],
                  wire_h_text: str) -> None:
    m = re.search(r"constexpr uint32_t kWireVersion = (\d+);", wire_h_text)
    if not m:
        fail("wire.h: kWireVersion not found")
        return
    live_version = int(m.group(1))

    versions = [row["version"] for row in history]
    if versions != sorted(versions) or len(set(versions)) != len(versions):
        fail(f"history versions {versions} must be strictly increasing")
    if versions != list(range(versions[0], versions[-1] + 1)):
        fail(f"history versions {versions} must cover every version "
             "(append-only, no gaps)")
    if versions[-1] != live_version:
        fail(
            f"history's last row is v{versions[-1]} but wire.h publishes "
            f"kWireVersion = {live_version}"
        )

    columns = [c for c in history[0] if c != "version"]
    for col in columns:
        values = [row[col] for row in history]
        # 0 means "frame kind not yet defined": once a frame exists its
        # size may only grow (layouts are append-only within a version
        # line; a shrink would mean a silently redefined old version).
        born = False
        previous = 0
        for version, value in zip(versions, values):
            if born and value < previous:
                fail(
                    f"history column {col}: v{version} shrinks to {value} "
                    f"from {previous} — published layouts are append-only"
                )
            if value > 0:
                born = True
                previous = value

    last = history[-1]
    live = {
        "request": layouts["request"].declared_bytes,
        "response": layouts["response"].declared_bytes,
        "stats_request": layouts["stats_request"].declared_bytes,
        "stats_response": layouts["stats_response"].declared_bytes,
        "delta": layouts["delta"].declared_bytes,
        "tile": layouts["tile"].declared_bytes,
    }
    for col, want in live.items():
        if last[col] != want:
            fail(
                f"history v{last['version']} publishes {col}={last[col]} "
                f"but the live table declares {want}"
            )


def run_checks(layout_text: str, wire_h_text: str, cc_text: str) -> list[str]:
    ERRORS.clear()
    layouts = parse_layouts(layout_text)
    if not ERRORS:
        check_tables(layouts)
    if not ERRORS or all("table row" not in e for e in ERRORS):
        history = parse_history(layout_text)
        check_magics(layouts, cc_text)
        check_encoders(layouts, cc_text)
        check_peeks(layouts, layout_text, cc_text)
        check_history(layouts, history, wire_h_text)
    return list(ERRORS)


def self_test(layout_text: str, wire_h_text: str, cc_text: str) -> int:
    """Each perturbation must make run_checks report at least one error."""
    clean = run_checks(layout_text, wire_h_text, cc_text)
    if clean:
        print("self-test: pristine tree must pass, but got:")
        for e in clean:
            print(f"  {e}")
        return 1

    perturbations = [
        (
            "shift the set_hash offset",
            (layout_text.replace('{"set_hash", 52, 8},',
                                 '{"set_hash", 56, 8},'),
             wire_h_text, cc_text),
        ),
        (
            "shrink the stats response declared size",
            (layout_text.replace("wire-layout: stats_response bytes=92",
                                 "wire-layout: stats_response bytes=84"),
             wire_h_text, cc_text),
        ),
        (
            "swap two encoder fields",
            (layout_text, wire_h_text,
             cc_text.replace(
                 "PutI32(&out, request.width);\n  PutI32(&out, request.height);",
                 "PutF64(&out, request.domain.lo.x);\n  PutI32(&out, request.width);",
                 1)),
        ),
        (
            "retype a header field in the encoder",
            (layout_text, wire_h_text,
             cc_text.replace("PutU16(&out, 0);  // reserved",
                             "PutU32(&out, 0);  // reserved", 1)),
        ),
        (
            "change a frame magic in the codec",
            (layout_text, wire_h_text,
             cc_text.replace("{'R', 'N', 'W', 'L'}", "{'R', 'N', 'W', 'X'}")),
        ),
        (
            "rewrite a published history row",
            (layout_text.replace("{4, 68, 16, 12, 68, 76, 0},",
                                 "{4, 68, 16, 12, 92, 76, 0},"),
             wire_h_text, cc_text),
        ),
        (
            "drop a history version",
            (layout_text.replace("{3, 68, 16, 12, 44, 0, 0},", ""),
             wire_h_text, cc_text),
        ),
        (
            "bump kWireVersion without a history row",
            (layout_text,
             wire_h_text.replace("kWireVersion = 6", "kWireVersion = 7"),
             cc_text),
        ),
        (
            "peek function rewritten with hard-coded offsets",
            (layout_text, wire_h_text,
             cc_text.replace("kTileIdOffset", "(68 + 8)")),
        ),
    ]
    failures = 0
    for label, (lt, wh, cc) in perturbations:
        if (lt, wh, cc) == (layout_text, wire_h_text, cc_text):
            print(f"self-test: perturbation '{label}' was a no-op edit")
            failures += 1
            continue
        errors = run_checks(lt, wh, cc)
        if not errors:
            print(f"self-test: perturbation '{label}' was NOT caught")
            failures += 1
        else:
            print(f"self-test: '{label}' caught: {errors[0]}")
    if failures:
        print(f"self-test: {failures} perturbation(s) escaped the linter")
        return 1
    print(f"self-test: all {len(perturbations)} perturbations caught")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="perturb each invariant in-memory and require a failure",
    )
    args = parser.parse_args()

    layout_text = WIRE_LAYOUT_H.read_text()
    wire_h_text = WIRE_H.read_text()
    cc_text = WIRE_CC.read_text()

    if args.self_test:
        return self_test(layout_text, wire_h_text, cc_text)

    errors = run_checks(layout_text, wire_h_text, cc_text)
    if errors:
        print(f"check_wire_layout: {len(errors)} error(s)")
        for e in errors:
            print(f"  {e}")
        return 1
    print(
        f"check_wire_layout: {len(parse_layouts(layout_text))} frame "
        "layouts consistent with the codec"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
