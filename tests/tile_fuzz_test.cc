// Randomized tile fuzzing: ~200 seeded configurations of domain, raster
// resolution, tile-grid shape, circle population (with degenerate radii:
// exact zeros and near-infinite giants), metric, and slab count. Each
// configuration asserts the two tiling invariants:
//   1. ownership — TileWindows partitions the pixel space: every output
//      pixel belongs to exactly one tile window;
//   2. stitching — the tiled sweep is bit-identical to the untiled
//      slab-parallel builder.
// Runs under the `differential` CTest label (and therefore again with
// RNNHM_DISABLE_SIMD=1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"
#include "tile/tile_plan.h"

namespace rnnhm {
namespace {

constexpr int kConfigs = 200;

struct FuzzConfig {
  Rect domain;
  int width = 0;
  int height = 0;
  int tile_rows = 0;
  int tile_cols = 0;
  int num_slabs = 0;
  Metric metric = Metric::kLInf;
  std::vector<NnCircle> circles;
};

FuzzConfig MakeConfig(uint64_t seed) {
  Rng rng(seed);
  FuzzConfig cfg;
  const double lo_x = rng.Uniform(-5.0, 5.0);
  const double lo_y = rng.Uniform(-5.0, 5.0);
  // Extents from sub-pixel-tiny to wide; never degenerate.
  cfg.domain = Rect{{lo_x, lo_y},
                    {lo_x + rng.Uniform(0.01, 8.0),
                     lo_y + rng.Uniform(0.01, 8.0)}};
  cfg.width = 1 + static_cast<int>(rng.NextBounded(48));
  cfg.height = 1 + static_cast<int>(rng.NextBounded(48));
  // Tile counts may exceed the resolution: that leaves some windows empty,
  // which the plan must handle (ownership still covers every pixel).
  cfg.tile_rows = 1 + static_cast<int>(rng.NextBounded(6));
  cfg.tile_cols = 1 + static_cast<int>(rng.NextBounded(6));
  constexpr int kSlabs[] = {1, 2, 4, 8};
  cfg.num_slabs = kSlabs[rng.NextBounded(4)];
  constexpr Metric kMetrics[] = {Metric::kLInf, Metric::kL1, Metric::kL2};
  cfg.metric = kMetrics[rng.NextBounded(3)];
  const int n = static_cast<int>(rng.NextBounded(60));
  const double extent =
      std::max(cfg.domain.hi.x - cfg.domain.lo.x,
               cfg.domain.hi.y - cfg.domain.lo.y);
  for (int i = 0; i < n; ++i) {
    // Centers mostly inside the domain, sometimes outside it.
    const double margin = 0.25 * extent;
    NnCircle c;
    c.center = {rng.Uniform(cfg.domain.lo.x - margin, cfg.domain.hi.x + margin),
                rng.Uniform(cfg.domain.lo.y - margin,
                            cfg.domain.hi.y + margin)};
    const double roll = rng.NextDouble();
    if (roll < 0.08) {
      c.radius = 0.0;  // degenerate: skipped by every sweep
    } else if (roll < 0.14) {
      c.radius = rng.Uniform(1.0e8, 1.0e9);  // near-inf: covers everything
    } else {
      c.radius = rng.Uniform(1.0e-4 * extent, 0.6 * extent);
    }
    c.client = i;
    cfg.circles.push_back(c);
  }
  return cfg;
}

std::string Describe(const FuzzConfig& cfg, uint64_t seed) {
  return "seed=" + std::to_string(seed) + " " + MetricName(cfg.metric) + " " +
         std::to_string(cfg.width) + "x" + std::to_string(cfg.height) +
         " tiles=" + std::to_string(cfg.tile_rows) + "x" +
         std::to_string(cfg.tile_cols) +
         " slabs=" + std::to_string(cfg.num_slabs) +
         " n=" + std::to_string(cfg.circles.size());
}

HeatmapGrid Untiled(const FuzzConfig& cfg, const InfluenceMeasure& measure) {
  switch (cfg.metric) {
    case Metric::kLInf:
      return BuildHeatmapLInfParallel(cfg.circles, measure, cfg.domain,
                                      cfg.width, cfg.height, cfg.num_slabs);
    case Metric::kL1:
      return BuildHeatmapL1Parallel(cfg.circles, measure, cfg.domain,
                                    cfg.width, cfg.height, cfg.num_slabs);
    case Metric::kL2:
    default:
      return BuildHeatmapL2Parallel(cfg.circles, measure, cfg.domain,
                                    cfg.width, cfg.height, cfg.num_slabs);
  }
}

TEST(TileFuzzTest, OwnershipAndStitchBitIdentity) {
  SizeInfluence measure;
  for (uint64_t seed = 1; seed <= kConfigs; ++seed) {
    const FuzzConfig cfg = MakeConfig(9000 + seed);
    const std::string what = Describe(cfg, seed);

    // Invariant 1: every pixel is owned by exactly one tile window.
    const std::vector<TileWindow> windows = TileWindows(
        cfg.domain, cfg.width, cfg.height, cfg.tile_rows, cfg.tile_cols);
    ASSERT_EQ(windows.size(),
              static_cast<size_t>(cfg.tile_rows) * cfg.tile_cols)
        << what;
    std::vector<int> owners(static_cast<size_t>(cfg.width) * cfg.height, 0);
    for (const TileWindow& w : windows) {
      for (int j = w.row_lo; j < w.row_hi; ++j) {
        for (int i = w.col_lo; i < w.col_hi; ++i) {
          ++owners[static_cast<size_t>(j) * cfg.width + i];
        }
      }
    }
    for (size_t p = 0; p < owners.size(); ++p) {
      ASSERT_EQ(owners[p], 1) << what << " pixel " << p;
    }

    // Invariant 2: the stitched tiled raster is the untiled raster, bit
    // for bit.
    const HeatmapGrid reference = Untiled(cfg, measure);
    const TilePlan plan(cfg.metric, cfg.circles, cfg.domain, cfg.width,
                        cfg.height,
                        TilePlanOptions{cfg.tile_rows, cfg.tile_cols});
    const HeatmapGrid tiled = plan.Run(measure, cfg.num_slabs);
    ASSERT_EQ(reference.values(), tiled.values()) << what;
  }
}

}  // namespace
}  // namespace rnnhm
