// The runtime half of the wire-layout lint: the static_asserts in
// wire.cc prove the layout tables agree with the codec's constants, and
// tools/check_wire_layout.py re-derives the tables from the encoder
// text; this test closes the loop by encoding real frames and checking
// that the bytes land exactly where src/query/wire_layout.h says —
// field by field, and for every published version in the history.
#include "query/wire_layout.h"

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "query/wire.h"

namespace rnnhm {
namespace {

namespace wl = wire_layout;

// Little-endian reads at table offsets — deliberately independent of the
// codec's own Reader so a codec bug cannot cancel out in this test.
uint64_t ReadLe(std::span<const uint8_t> bytes, size_t offset, size_t size) {
  uint64_t v = 0;
  for (size_t i = 0; i < size; ++i) {
    v |= static_cast<uint64_t>(bytes[offset + i]) << (8 * i);
  }
  return v;
}

double ReadF64(std::span<const uint8_t> bytes, size_t offset) {
  const uint64_t bits = ReadLe(bytes, offset, 8);
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

template <size_t N>
size_t OffsetOf(const wl::WireField (&fields)[N], const std::string& name) {
  for (const wl::WireField& f : fields) {
    if (name == f.name) return f.offset;
  }
  ADD_FAILURE() << "no field named " << name;
  return 0;
}

std::string MagicAt(std::span<const uint8_t> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), 4);
}

NnCircle TestCircle(int client) {
  return NnCircle{{0.25 * client, -0.5 * client}, 0.125 + client, client};
}

// --- Published sizes, all versions ----------------------------------------

TEST(WireLayoutTest, VersionHistoryIsAppendOnlyAndEndsAtLiveVersion) {
  constexpr size_t n = std::size(wl::kWireVersionHistory);
  ASSERT_GE(n, 5u);  // v2..v6 at minimum
  EXPECT_EQ(wl::kWireVersionHistory[0].version, 2u);
  EXPECT_EQ(wl::kWireVersionHistory[n - 1].version, kWireVersion);
  for (size_t i = 1; i < n; ++i) {
    const auto& prev = wl::kWireVersionHistory[i - 1];
    const auto& row = wl::kWireVersionHistory[i];
    EXPECT_EQ(row.version, prev.version + 1) << "history must have no gaps";
    // A frame kind, once published, never shrinks in a later version.
    EXPECT_GE(row.request_header_bytes, prev.request_header_bytes);
    EXPECT_GE(row.response_header_bytes, prev.response_header_bytes);
    EXPECT_GE(row.stats_request_bytes, prev.stats_request_bytes);
    EXPECT_GE(row.stats_response_bytes, prev.stats_response_bytes);
    EXPECT_GE(row.delta_header_bytes, prev.delta_header_bytes);
    EXPECT_GE(row.tile_header_bytes, prev.tile_header_bytes);
  }
}

TEST(WireLayoutTest, PublishedSizesPerVersion) {
  // The exact sizes every deployed version shipped with. These rows are
  // frozen: editing an old row here (or in wire_layout.h) means the
  // protocol history was silently rewritten.
  struct Row {
    uint32_t version;
    size_t request, response, stats_req, stats_resp, delta, tile;
  };
  constexpr Row kExpected[] = {
      {2, 68, 16, 0, 0, 0, 0},    {3, 68, 16, 12, 44, 0, 0},
      {4, 68, 16, 12, 68, 76, 0}, {5, 68, 16, 12, 76, 76, 0},
      {6, 68, 16, 12, 92, 76, 80},
  };
  ASSERT_EQ(std::size(wl::kWireVersionHistory), std::size(kExpected));
  for (size_t i = 0; i < std::size(kExpected); ++i) {
    const auto& row = wl::kWireVersionHistory[i];
    const Row& want = kExpected[i];
    EXPECT_EQ(row.version, want.version);
    EXPECT_EQ(row.request_header_bytes, want.request);
    EXPECT_EQ(row.response_header_bytes, want.response);
    EXPECT_EQ(row.stats_request_bytes, want.stats_req);
    EXPECT_EQ(row.stats_response_bytes, want.stats_resp);
    EXPECT_EQ(row.delta_header_bytes, want.delta);
    EXPECT_EQ(row.tile_header_bytes, want.tile);
  }
}

// --- Encoded frames vs. the tables ----------------------------------------

TEST(WireLayoutTest, RequestBytesLandAtTableOffsets) {
  WireRequest request;
  request.metric = Metric::kL2;
  request.width = 640;
  request.height = 480;
  request.domain = Rect{{-1.5, -2.5}, {3.5, 4.5}};
  request.set_hash = 0x0123456789abcdefull;
  request.inline_circles = true;
  request.circles = {TestCircle(1), TestCircle(2)};

  const std::vector<uint8_t> bytes = EncodeRequest(request);
  const auto& t = wl::kRequestLayout;
  ASSERT_EQ(bytes.size(),
            wl::kRequestHeaderBytes + 2 * wl::kCircleBytes);
  EXPECT_EQ(MagicAt(bytes), "RNWQ");
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "version"), 4), kWireVersion);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "metric"), 1),
            static_cast<uint64_t>(Metric::kL2));
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "flags"), 1), 1u);  // inline
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "reserved"), 2), 0u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "width"), 4), 640u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "height"), 4), 480u);
  EXPECT_EQ(ReadF64(bytes, OffsetOf(t, "domain_lo_x")), -1.5);
  EXPECT_EQ(ReadF64(bytes, OffsetOf(t, "domain_lo_y")), -2.5);
  EXPECT_EQ(ReadF64(bytes, OffsetOf(t, "domain_hi_x")), 3.5);
  EXPECT_EQ(ReadF64(bytes, OffsetOf(t, "domain_hi_y")), 4.5);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "set_hash"), 8),
            0x0123456789abcdefull);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "circle_count"), 8), 2u);

  // The first circle record, at the table's field offsets.
  const std::span<const uint8_t> circle =
      std::span(bytes).subspan(wl::kRequestHeaderBytes, wl::kCircleBytes);
  const auto& c = wl::kCircleLayout;
  EXPECT_EQ(ReadF64(circle, OffsetOf(c, "center_x")), 0.25);
  EXPECT_EQ(ReadF64(circle, OffsetOf(c, "center_y")), -0.5);
  EXPECT_EQ(ReadF64(circle, OffsetOf(c, "radius")), 1.125);
  EXPECT_EQ(ReadLe(circle, OffsetOf(c, "client"), 4), 1u);
}

TEST(WireLayoutTest, ResponseBytesLandAtTableOffsets) {
  const std::vector<uint8_t> bytes =
      EncodeErrorResponse(WireStatus::kMalformedRequest, "nope");
  const auto& t = wl::kResponseLayout;
  ASSERT_EQ(bytes.size(), wl::kResponseHeaderBytes + 4);
  EXPECT_EQ(MagicAt(bytes), "RNWS");
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "version"), 4), kWireVersion);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "status"), 1),
            static_cast<uint64_t>(WireStatus::kMalformedRequest));
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "from_cache"), 1), 0u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "reserved"), 2), 0u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "error_len"), 4), 4u);
  EXPECT_EQ(std::string(bytes.begin() + wl::kResponseHeaderBytes,
                        bytes.end()),
            "nope");
}

TEST(WireLayoutTest, DeltaBytesLandAtTableOffsetsAndShareRequestPrefix) {
  WireDeltaRequest request;
  request.metric = Metric::kLInf;
  request.width = 32;
  request.height = 16;
  request.domain = Rect{{0.0, 0.0}, {1.0, 1.0}};
  request.base_hash = 0x1111111111111111ull;
  request.new_hash = 0x2222222222222222ull;
  request.edits = {
      CircleSetEdit{CircleSetEdit::Kind::kAppend, 0, TestCircle(3)}};

  const std::vector<uint8_t> bytes = EncodeDeltaRequest(request);
  const auto& t = wl::kDeltaLayout;
  ASSERT_GE(bytes.size(), wl::kDeltaHeaderBytes);
  EXPECT_EQ(MagicAt(bytes), "RNWD");
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "base_hash"), 8),
            0x1111111111111111ull);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "new_hash"), 8),
            0x2222222222222222ull);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "edit_count"), 8), 1u);

  // Routing contract: base_hash occupies the request set_hash slot, so
  // one peek offset serves both frame kinds.
  EXPECT_EQ(OffsetOf(t, "base_hash"),
            OffsetOf(wl::kRequestLayout, "set_hash"));
  const auto route = PeekRouteInfo(bytes);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->route_hash, request.base_hash);
  EXPECT_EQ(ReadLe(bytes, wl::kRequestSetHashOffset, 8),
            request.base_hash);
  EXPECT_EQ(ReadLe(bytes, wl::kDeltaNewHashOffset, 8), request.new_hash);
}

TEST(WireLayoutTest, TileBytesLandAtTableOffsets) {
  WireTileRequest request;
  request.metric = Metric::kL2;
  request.width = 64;
  request.height = 64;
  request.domain = Rect{{0.0, 0.0}, {2.0, 2.0}};
  request.set_hash = 0x3333333333333333ull;
  request.tile_rows = 4;
  request.tile_cols = 8;
  request.tile_id = 17;
  request.inline_circles = true;
  request.circles = {TestCircle(4)};

  const std::vector<uint8_t> bytes = EncodeTileRequest(request);
  const auto& t = wl::kTileLayout;
  ASSERT_EQ(bytes.size(), wl::kTileHeaderBytes + wl::kCircleBytes);
  EXPECT_EQ(MagicAt(bytes), "RNWL");
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "set_hash"), 8),
            0x3333333333333333ull);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "circle_count"), 8), 1u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "tile_rows"), 4), 4u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "tile_cols"), 4), 8u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "tile_id"), 4), 17u);
  // The whole plain-request header is a prefix of the tile header.
  EXPECT_EQ(OffsetOf(t, "tile_rows"), wl::kRequestHeaderBytes);
  EXPECT_EQ(OffsetOf(t, "tile_id"), wl::kTileIdOffset);
}

TEST(WireLayoutTest, StatsBytesLandAtTableOffsets) {
  const std::vector<uint8_t> req = EncodeStatsRequest();
  ASSERT_EQ(req.size(), wl::kStatsRequestBytes);
  EXPECT_EQ(MagicAt(req), "RNWT");
  EXPECT_EQ(ReadLe(req, OffsetOf(wl::kStatsRequestLayout, "version"), 4),
            kWireVersion);

  WireStatsReply reply;
  reply.shards = 3;
  reply.requests = 101;
  reply.ok = 90;
  reply.errors = 11;
  reply.sets_registered = 7;
  reply.deltas = 6;
  reply.delta_splices = 5;
  reply.sets_evicted = 4;
  reply.delta_dirty_columns = 1234;
  reply.tile_requests = 44;
  reply.tile_fragments = 55;
  const std::vector<uint8_t> bytes = EncodeStatsResponse(reply);
  const auto& t = wl::kStatsResponseLayout;
  ASSERT_EQ(bytes.size(), wl::kStatsResponseBytes);
  EXPECT_EQ(MagicAt(bytes), "RNWU");
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "shards"), 4), 3u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "requests"), 8), 101u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "ok"), 8), 90u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "errors"), 8), 11u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "sets_registered"), 8), 7u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "deltas"), 8), 6u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "delta_splices"), 8), 5u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "sets_evicted"), 8), 4u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "delta_dirty_columns"), 8), 1234u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "tile_requests"), 8), 44u);
  EXPECT_EQ(ReadLe(bytes, OffsetOf(t, "tile_fragments"), 8), 55u);
}

TEST(WireLayoutTest, TablesAreContiguousAndSizedAsDeclared) {
  EXPECT_TRUE(wl::Contiguous(wl::kRequestLayout));
  EXPECT_TRUE(wl::Contiguous(wl::kResponseLayout));
  EXPECT_TRUE(wl::Contiguous(wl::kDeltaLayout));
  EXPECT_TRUE(wl::Contiguous(wl::kTileLayout));
  EXPECT_TRUE(wl::Contiguous(wl::kStatsRequestLayout));
  EXPECT_TRUE(wl::Contiguous(wl::kStatsResponseLayout));
  EXPECT_TRUE(wl::Contiguous(wl::kCircleLayout));
  EXPECT_EQ(wl::TotalBytes(wl::kRequestLayout), wl::kRequestHeaderBytes);
  EXPECT_EQ(wl::TotalBytes(wl::kResponseLayout),
            wl::kResponseHeaderBytes);
  EXPECT_EQ(wl::TotalBytes(wl::kDeltaLayout), wl::kDeltaHeaderBytes);
  EXPECT_EQ(wl::TotalBytes(wl::kTileLayout), wl::kTileHeaderBytes);
  EXPECT_EQ(wl::TotalBytes(wl::kStatsRequestLayout),
            wl::kStatsRequestBytes);
  EXPECT_EQ(wl::TotalBytes(wl::kStatsResponseLayout),
            wl::kStatsResponseBytes);
  EXPECT_EQ(wl::TotalBytes(wl::kCircleLayout), wl::kCircleBytes);
}

}  // namespace
}  // namespace rnnhm
