#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/brute_force.h"
#include "core/crest.h"
#include "core/regular_grid.h"
#include "heatmap/influence.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> RandomCircles(int n, Rng& rng, double max_r = 0.15) {
  std::vector<NnCircle> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.01, max_r), i});
  }
  return out;
}

TEST(RegularGridTest, LabelsEveryCellWithTheOracleSet) {
  Rng rng(600);
  const auto circles = RandomCircles(30, rng);
  SizeInfluence measure;
  CollectingSink sink;
  const RegularGridStats stats = RunRegularGrid(circles, measure, &sink, 16);
  EXPECT_EQ(stats.num_cells, 256u);
  EXPECT_EQ(sink.labels().size(), 256u);
  for (const auto& label : sink.labels()) {
    const auto want =
        BruteForceRnnSet(label.subregion.Center(), circles, Metric::kLInf);
    ASSERT_EQ(label.rnn, want);
  }
}

TEST(RegularGridTest, CoarseGridMissesRegionsFineGridWastesCells) {
  // The Section I granularity dilemma, measured: a coarse grid reports
  // fewer distinct RNN sets than exist; a fine grid reports (nearly) all
  // of them but spends quadratically many cells.
  Rng rng(601);
  const auto circles = RandomCircles(40, rng);
  SizeInfluence measure;
  DistinctSetSink exact_sink;
  RunCrest(circles, measure, &exact_sink);
  const size_t exact = exact_sink.sets().size();

  CountingSink c1, c2;
  const RegularGridStats coarse = RunRegularGrid(circles, measure, &c1, 8);
  const RegularGridStats fine = RunRegularGrid(circles, measure, &c2, 256);
  EXPECT_LT(coarse.num_distinct_sets, exact);
  EXPECT_GT(fine.num_distinct_sets, coarse.num_distinct_sets);
  EXPECT_EQ(fine.num_cells, 256u * 256u);
  // Even 65536 cells typically miss sliver regions entirely.
  EXPECT_LE(fine.num_distinct_sets, exact + 1);
}

TEST(RegularGridTest, DegenerateInputs) {
  SizeInfluence measure;
  CountingSink sink;
  EXPECT_EQ(RunRegularGrid({}, measure, &sink, 8).num_cells, 0u);
  const std::vector<NnCircle> zero{{{0.5, 0.5}, 0.0, 0}};
  EXPECT_EQ(RunRegularGrid(zero, measure, &sink, 8).num_cells, 0u);
}

}  // namespace
}  // namespace rnnhm
