#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/interval_tree.h"

namespace rnnhm {
namespace {

TEST(IntervalTreeTest, EmptyTree) {
  IntervalTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.StabIds(0.0).empty());
}

TEST(IntervalTreeTest, SingleIntervalClosedEndpoints) {
  IntervalTree tree({Interval{1.0, 3.0, 7}});
  EXPECT_EQ(tree.StabIds(2.0), (std::vector<int32_t>{7}));
  EXPECT_EQ(tree.StabIds(1.0), (std::vector<int32_t>{7}));
  EXPECT_EQ(tree.StabIds(3.0), (std::vector<int32_t>{7}));
  EXPECT_TRUE(tree.StabIds(0.999).empty());
  EXPECT_TRUE(tree.StabIds(3.001).empty());
}

TEST(IntervalTreeTest, NestedAndDisjoint) {
  IntervalTree tree({Interval{0, 10, 0}, Interval{2, 4, 1},
                     Interval{3, 3, 2}, Interval{20, 30, 3}});
  auto sorted = [&](double x) {
    auto v = tree.StabIds(x);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(3.0), (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(sorted(5.0), (std::vector<int32_t>{0}));
  EXPECT_EQ(sorted(25.0), (std::vector<int32_t>{3}));
  EXPECT_TRUE(sorted(15.0).empty());
}

TEST(IntervalTreeTest, IdenticalIntervals) {
  std::vector<Interval> intervals;
  for (int i = 0; i < 50; ++i) intervals.push_back(Interval{1, 2, i});
  IntervalTree tree(intervals);
  EXPECT_EQ(tree.StabIds(1.5).size(), 50u);
  EXPECT_TRUE(tree.StabIds(0.5).empty());
}

class IntervalTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalTreeProperty, StabMatchesBruteForce) {
  Rng rng(2400 + GetParam());
  std::vector<Interval> intervals;
  for (int i = 0; i < GetParam(); ++i) {
    const double lo = rng.Uniform(0, 100);
    intervals.push_back(Interval{lo, lo + rng.Uniform(0, 20), i});
  }
  IntervalTree tree(intervals);
  for (int q = 0; q < 500; ++q) {
    const double x = rng.Uniform(-5, 125);
    auto got = tree.StabIds(x);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want;
    for (const Interval& iv : intervals) {
      if (iv.lo <= x && x <= iv.hi) want.push_back(iv.id);
    }
    ASSERT_EQ(got, want) << "x=" << x;
  }
}

TEST_P(IntervalTreeProperty, EndpointQueriesAreExact) {
  Rng rng(2500 + GetParam());
  std::vector<Interval> intervals;
  for (int i = 0; i < GetParam(); ++i) {
    const double lo = rng.Uniform(0, 10);
    intervals.push_back(Interval{lo, lo + rng.Uniform(0, 3), i});
  }
  IntervalTree tree(intervals);
  for (const Interval& iv : intervals) {
    for (const double x : {iv.lo, iv.hi}) {
      auto got = tree.StabIds(x);
      std::sort(got.begin(), got.end());
      std::vector<int32_t> want;
      for (const Interval& other : intervals) {
        if (other.lo <= x && x <= other.hi) want.push_back(other.id);
      }
      ASSERT_EQ(got, want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntervalTreeProperty,
                         ::testing::Values(1, 10, 100, 1000),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace rnnhm
