#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "heatmap/heatmap.h"
#include "heatmap/serialization.h"

namespace rnnhm {
namespace {

TEST(SerializationTest, RoundTripPreservesEverything) {
  Rng rng(3000);
  HeatmapGrid grid(37, 21, Rect{{-2.5, 3.5}, {4.5, 9.5}});
  for (int i = 0; i < 37; ++i) {
    for (int j = 0; j < 21; ++j) grid.At(i, j) = rng.Uniform(-5, 5);
  }
  const std::string path = "/tmp/rnnhm_grid.bin";
  ASSERT_TRUE(SaveHeatmap(grid, path));
  const auto loaded = LoadHeatmap(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->width(), grid.width());
  EXPECT_EQ(loaded->height(), grid.height());
  EXPECT_EQ(loaded->domain(), grid.domain());
  for (int i = 0; i < 37; ++i) {
    for (int j = 0; j < 21; ++j) {
      ASSERT_DOUBLE_EQ(loaded->At(i, j), grid.At(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileFails) {
  EXPECT_FALSE(LoadHeatmap("/nonexistent/grid.bin").has_value());
  HeatmapGrid grid(2, 2, Rect{{0, 0}, {1, 1}});
  EXPECT_FALSE(SaveHeatmap(grid, "/nonexistent_dir/grid.bin"));
}

TEST(SerializationTest, RejectsBadMagicAndTruncation) {
  const std::string path = "/tmp/rnnhm_bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a heatmap at all", f);
  std::fclose(f);
  EXPECT_FALSE(LoadHeatmap(path).has_value());

  // Valid header, truncated payload.
  HeatmapGrid grid(64, 64, Rect{{0, 0}, {1, 1}}, 1.0);
  ASSERT_TRUE(SaveHeatmap(grid, path));
  f = std::fopen(path.c_str(), "r+b");
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), full / 2), 0);
  EXPECT_FALSE(LoadHeatmap(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rnnhm
