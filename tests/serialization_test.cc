#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>

#include "common/rng.h"
#include "heatmap/heatmap.h"
#include "heatmap/serialization.h"

namespace rnnhm {
namespace {

TEST(SerializationTest, RoundTripPreservesEverything) {
  Rng rng(3000);
  HeatmapGrid grid(37, 21, Rect{{-2.5, 3.5}, {4.5, 9.5}});
  for (int i = 0; i < 37; ++i) {
    for (int j = 0; j < 21; ++j) grid.At(i, j) = rng.Uniform(-5, 5);
  }
  const std::string path = "/tmp/rnnhm_grid.bin";
  ASSERT_TRUE(SaveHeatmap(grid, path));
  const auto loaded = LoadHeatmap(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->width(), grid.width());
  EXPECT_EQ(loaded->height(), grid.height());
  EXPECT_EQ(loaded->domain(), grid.domain());
  for (int i = 0; i < 37; ++i) {
    for (int j = 0; j < 21; ++j) {
      ASSERT_DOUBLE_EQ(loaded->At(i, j), grid.At(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, SerializedSizeMatchesTheFileExactly) {
  for (const auto& [w, h] : {std::pair{1, 1}, {1, 64}, {64, 1}, {37, 21}}) {
    HeatmapGrid grid(w, h, Rect{{0, 0}, {1, 1}}, 0.5);
    const std::string path = "/tmp/rnnhm_size.bin";
    ASSERT_TRUE(SaveHeatmap(grid, path));
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long on_disk = std::ftell(f);
    std::fclose(f);
    EXPECT_EQ(static_cast<size_t>(on_disk), SerializedSizeBytes(grid))
        << w << "x" << h;
    std::remove(path.c_str());
  }
}

// The degenerate shapes the cache must size and round-trip correctly: the
// minimal 1x1 grid and single-row/column strips.
TEST(SerializationTest, DegenerateGridsRoundTrip) {
  Rng rng(3100);
  for (const auto& [w, h] : {std::pair{1, 1}, {1, 48}, {48, 1}}) {
    HeatmapGrid grid(w, h, Rect{{-1e6, -0.25}, {1e6, 0.75}});
    for (int i = 0; i < w; ++i) {
      for (int j = 0; j < h; ++j) grid.At(i, j) = rng.Uniform(-1e9, 1e9);
    }
    const std::string path = "/tmp/rnnhm_degenerate.bin";
    ASSERT_TRUE(SaveHeatmap(grid, path));
    const auto loaded = LoadHeatmap(path);
    ASSERT_TRUE(loaded.has_value()) << w << "x" << h;
    EXPECT_EQ(loaded->width(), w);
    EXPECT_EQ(loaded->height(), h);
    EXPECT_EQ(loaded->domain(), grid.domain());
    EXPECT_EQ(loaded->values(), grid.values());  // bit-exact payload
    std::remove(path.c_str());
  }
}

// Extreme but representable values must survive the binary round trip
// bit for bit (the cache trusts grids to be value-faithful).
TEST(SerializationTest, ExtremeValuesRoundTripBitExactly) {
  HeatmapGrid grid(3, 2, Rect{{0, 0}, {1, 1}});
  grid.At(0, 0) = 0.0;
  grid.At(1, 0) = -0.0;
  grid.At(2, 0) = 1e308;
  grid.At(0, 1) = -1e308;
  grid.At(1, 1) = 5e-324;  // smallest subnormal
  grid.At(2, 1) = 0.1;     // not exactly representable
  const std::string path = "/tmp/rnnhm_extreme.bin";
  ASSERT_TRUE(SaveHeatmap(grid, path));
  const auto loaded = LoadHeatmap(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->values(), grid.values());
  EXPECT_TRUE(std::signbit(loaded->At(1, 0)));
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsNonPositiveDimensionsAndBadDomain) {
  // Hand-craft headers with corrupted fields; every one must be refused.
  HeatmapGrid grid(4, 4, Rect{{0, 0}, {1, 1}}, 1.0);
  const std::string path = "/tmp/rnnhm_header.bin";
  ASSERT_TRUE(SaveHeatmap(grid, path));
  // Header layout: magic[4], version u32, width i32, height i32, domain.
  struct Patch {
    long offset;
    int32_t value;
  };
  for (const Patch& patch :
       {Patch{8, 0}, Patch{8, -4}, Patch{12, 0}, Patch{12, -4}}) {
    HeatmapGrid fresh(4, 4, Rect{{0, 0}, {1, 1}}, 1.0);
    ASSERT_TRUE(SaveHeatmap(fresh, path));
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, patch.offset, SEEK_SET);
    std::fwrite(&patch.value, sizeof(patch.value), 1, f);
    std::fclose(f);
    EXPECT_FALSE(LoadHeatmap(path).has_value())
        << "offset " << patch.offset << " value " << patch.value;
  }
  // Inverted domain (lo.x >= hi.x): patch the four domain doubles.
  HeatmapGrid fresh(4, 4, Rect{{0, 0}, {1, 1}}, 1.0);
  ASSERT_TRUE(SaveHeatmap(fresh, path));
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const double bad_lo_x = 2.0;  // domain.lo.x at offset 16
  std::fseek(f, 16, SEEK_SET);
  std::fwrite(&bad_lo_x, sizeof(bad_lo_x), 1, f);
  std::fclose(f);
  EXPECT_FALSE(LoadHeatmap(path).has_value());
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileFails) {
  EXPECT_FALSE(LoadHeatmap("/nonexistent/grid.bin").has_value());
  HeatmapGrid grid(2, 2, Rect{{0, 0}, {1, 1}});
  EXPECT_FALSE(SaveHeatmap(grid, "/nonexistent_dir/grid.bin"));
}

TEST(SerializationTest, RejectsBadMagicAndTruncation) {
  const std::string path = "/tmp/rnnhm_bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a heatmap at all", f);
  std::fclose(f);
  EXPECT_FALSE(LoadHeatmap(path).has_value());

  // Valid header, truncated payload.
  HeatmapGrid grid(64, 64, Rect{{0, 0}, {1, 1}}, 1.0);
  ASSERT_TRUE(SaveHeatmap(grid, path));
  f = std::fopen(path.c_str(), "r+b");
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), full / 2), 0);
  EXPECT_FALSE(LoadHeatmap(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rnnhm
