// Differential harness over every sweep pipeline (the acceptance gate for
// the slab-parallel L2 arc sweep).
//
// For both exact-sweep metrics (L-infinity squares, L2 disks) and the
// measures safe to share across shards (Size, Weighted, Connectivity), a
// seeded generator produces workloads — including degenerate ones: snapped
// coordinates with duplicate x-extremes, tangent disks, zero-radius and
// exactly duplicated circles — and the harness asserts three-way agreement:
//
//   brute force  ==  sequential CREST  ==  slab-parallel CREST (1/2/4/8)
//
// on (a) distinct region labels with their influence values, (b) rasters,
// which must be *bit-identical* between sequential and every slab count,
// and (c) brute-force pixel values away from region boundaries.
//
// Weighted influence uses dyadic weights (multiples of 1/8 in a small
// range) so floating-point sums are exact in any RNN-set order — that is
// the determinism contract's precondition for bit-identical weighted
// rasters (see README, "The L2 parallel contract").
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/brute_force.h"
#include "core/crest.h"
#include "core/crest_l2.h"
#include "core/crest_parallel.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"
#include "query/circle_set_registry.h"
#include "query/heatmap_engine.h"
#include "query/heatmap_session.h"
#include "query/wire.h"

namespace rnnhm {
namespace {

constexpr int kSlabCounts[] = {1, 2, 4, 8};
constexpr int kRaster = 48;
// Pixel centers are irrational relative to the snapped 1/32-grid inputs, so
// no pixel center ever lies exactly on a circle boundary by construction;
// the brute-force comparison still skips anything within kBoundaryTol.
const Rect kDomain{{-0.31250731, -0.27103343}, {1.29310917, 1.31071529}};
constexpr double kBoundaryTol = 1e-7;

enum class Scenario {
  kRandom,        // general-position random circles
  kSnapped,       // coordinates on a 1/32 grid: duplicate x-extremes, ties
  kTangent,       // chains of externally tangent disks
  kDegenerate,    // zero-radius circles + exact duplicates mixed in
};

std::string ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kRandom:
      return "Random";
    case Scenario::kSnapped:
      return "Snapped";
    case Scenario::kTangent:
      return "Tangent";
    case Scenario::kDegenerate:
      return "Degenerate";
  }
  return "Unknown";
}

std::vector<NnCircle> MakeCircles(Scenario scenario, uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<NnCircle> out;
  auto snap = [](double v) { return std::round(v * 32.0) / 32.0; };
  switch (scenario) {
    case Scenario::kRandom:
      for (int i = 0; i < n; ++i) {
        out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.02, 0.2), i});
      }
      break;
    case Scenario::kSnapped:
      // Snapped centers and radii make many circles share x-extremes and
      // intersection abscissae exactly (simultaneous-event groups).
      for (int i = 0; i < n; ++i) {
        out.push_back(NnCircle{{snap(rng.Uniform(0, 1)),
                                snap(rng.Uniform(0, 1))},
                               std::max(0.0625, snap(rng.Uniform(0.05, 0.25))),
                               i});
      }
      break;
    case Scenario::kTangent: {
      // Horizontal chains of externally tangent equal disks (tangencies
      // are single-point crossing events), plus one larger disk concentric
      // with each chain's last link (containment without intersection).
      const double r = 0.09375;  // 3/32
      int id = 0;
      for (int c = 0; id < n && c < 8; ++c) {
        const double y = snap(rng.Uniform(0.1, 0.9));
        double x = snap(rng.Uniform(0.0, 0.2));
        for (int k = 0; id < n && k < 5; ++k, x += 2 * r) {
          out.push_back(NnCircle{{x, y}, r, id++});
        }
        if (id < n) {
          out.push_back(NnCircle{{x - 2 * r, y}, 2 * r, id++});
        }
      }
      break;
    }
    case Scenario::kDegenerate:
      for (int i = 0; i < n; ++i) {
        const double roll = rng.NextDouble();
        if (roll < 0.15) {
          out.push_back(
              NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)}, 0.0, i});
        } else if (roll < 0.35 && !out.empty()) {
          NnCircle dup = out[rng.NextBounded(out.size())];
          dup.client = i;  // exact duplicate disk, distinct client
          out.push_back(dup);
        } else {
          out.push_back(NnCircle{{snap(rng.Uniform(0, 1)),
                                  snap(rng.Uniform(0, 1))},
                                 snap(rng.Uniform(0.05, 0.2)), i});
        }
      }
      break;
  }
  return out;
}

// Measures under test; WeightedInfluence gets dyadic weights so sums are
// exact regardless of RNN-set order.
std::unique_ptr<InfluenceMeasure> MakeMeasure(const std::string& name,
                                              int num_clients,
                                              uint64_t seed) {
  Rng rng(seed);
  if (name == "Size") return std::make_unique<SizeInfluence>();
  if (name == "Weighted") {
    std::vector<double> weights;
    weights.reserve(num_clients);
    for (int i = 0; i < num_clients; ++i) {
      weights.push_back(0.125 * static_cast<double>(1 + rng.NextBounded(32)));
    }
    return std::make_unique<WeightedInfluence>(std::move(weights));
  }
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int e = 0; e < 3 * num_clients; ++e) {
    edges.emplace_back(static_cast<int32_t>(rng.NextBounded(num_clients)),
                       static_cast<int32_t>(rng.NextBounded(num_clients)));
  }
  return std::make_unique<ConnectivityInfluence>(num_clients, edges);
}

// --- Metric-generic pipeline adapters -------------------------------------

std::map<std::vector<int32_t>, double> SequentialSets(
    Metric metric, const std::vector<NnCircle>& circles,
    const InfluenceMeasure& measure) {
  DistinctSetSink sink;
  if (metric == Metric::kL2) {
    RunCrestL2(circles, measure, &sink);
  } else {
    RunCrest(circles, measure, &sink);
  }
  // The empty RNN set is the background region; whether a sweep labels it
  // depends on where the status happens to have interior gaps, which the
  // slab decomposition legitimately changes. Ignore it on both sides.
  auto sets = sink.sets();
  sets.erase(std::vector<int32_t>{});
  return sets;
}

std::map<std::vector<int32_t>, double> ParallelSets(
    Metric metric, const std::vector<NnCircle>& circles,
    const InfluenceMeasure& measure, int shards) {
  std::vector<DistinctSetSink> shard_sinks(shards);
  std::vector<RegionLabelSink*> ptrs;
  for (auto& s : shard_sinks) ptrs.push_back(&s);
  RunCrestParallelMetric(metric, circles, measure, ptrs);
  std::map<std::vector<int32_t>, double> merged;
  for (const auto& s : shard_sinks) {
    for (const auto& [set, influence] : s.sets()) merged[set] = influence;
  }
  merged.erase(std::vector<int32_t>{});
  return merged;
}

HeatmapGrid SequentialRaster(Metric metric,
                             const std::vector<NnCircle>& circles,
                             const InfluenceMeasure& measure) {
  if (metric == Metric::kL2) {
    return BuildHeatmapL2(circles, measure, kDomain, kRaster, kRaster);
  }
  return BuildHeatmapLInf(circles, measure, kDomain, kRaster, kRaster);
}

HeatmapGrid ParallelRaster(Metric metric,
                           const std::vector<NnCircle>& circles,
                           const InfluenceMeasure& measure, int slabs) {
  if (metric == Metric::kL2) {
    return BuildHeatmapL2Parallel(circles, measure, kDomain, kRaster,
                                  kRaster, slabs);
  }
  return BuildHeatmapLInfParallel(circles, measure, kDomain, kRaster,
                                  kRaster, slabs);
}

// Distance from p to the boundary of the nearest circle edge (for skipping
// boundary pixels in the brute-force comparison).
double BoundaryDistance(const Point& p, const NnCircle& c, Metric metric) {
  return std::fabs(Distance(p, c.center, metric) - c.radius);
}

// --- The harness ----------------------------------------------------------

using Param = std::tuple<Metric, std::string, Scenario>;

class DifferentialTest : public ::testing::TestWithParam<Param> {};

TEST_P(DifferentialTest, BruteSequentialAndParallelAgree) {
  const auto [metric, measure_name, scenario] = GetParam();
  for (const uint64_t seed : {11u, 23u}) {
    const int n = 70;
    const auto circles = MakeCircles(scenario, 4000 + seed, n);
    const auto measure = MakeMeasure(measure_name, n, 5000 + seed);
    SCOPED_TRACE(ScenarioName(scenario) + " seed " + std::to_string(seed));

    // (a) Region labels: sequential vs parallel at every shard count. A
    // boundary-spanning region is labeled once per slab with the same RNN
    // set and (order-independent) influence, so the distinct-set maps must
    // be exactly equal.
    const auto sequential_sets = SequentialSets(metric, circles, *measure);
    for (const int shards : kSlabCounts) {
      EXPECT_EQ(ParallelSets(metric, circles, *measure, shards),
                sequential_sets)
          << "shards=" << shards;
    }

    // Brute-force witness: the RNN set of any sample point must appear in
    // the sequential label map with the measure's influence.
    Rng rng(6000 + seed);
    for (int q = 0; q < 300; ++q) {
      const Point p{rng.Uniform(kDomain.lo.x, kDomain.hi.x),
                    rng.Uniform(kDomain.lo.y, kDomain.hi.y)};
      auto rnn = BruteForceRnnSet(p, circles, metric);
      if (rnn.empty()) continue;
      const auto it = sequential_sets.find(rnn);
      ASSERT_NE(it, sequential_sets.end())
          << "point (" << p.x << ", " << p.y << ")";
      EXPECT_EQ(it->second, measure->Evaluate(rnn));
    }

    // (b) Rasters: bit-identical across every slab count.
    const HeatmapGrid reference =
        SequentialRaster(metric, circles, *measure);
    for (const int slabs : kSlabCounts) {
      const HeatmapGrid grid =
          ParallelRaster(metric, circles, *measure, slabs);
      ASSERT_EQ(grid.values().size(), reference.values().size());
      for (size_t i = 0; i < grid.values().size(); ++i) {
        ASSERT_EQ(grid.values()[i], reference.values()[i])
            << "slabs=" << slabs << " flat index " << i;
      }
    }

    // (c) Brute force per pixel, skipping centers within tolerance of any
    // circle boundary (the sweep and the closed-disk test may disagree
    // there by the half-open rasterization convention).
    for (int i = 0; i < kRaster; ++i) {
      for (int j = 0; j < kRaster; ++j) {
        const Point p = reference.PixelCenter(i, j);
        bool near_boundary = false;
        for (const NnCircle& c : circles) {
          if (c.radius > 0.0 &&
              BoundaryDistance(p, c, metric) < kBoundaryTol) {
            near_boundary = true;
            break;
          }
        }
        if (near_boundary) continue;
        const auto rnn = BruteForceRnnSet(p, circles, metric);
        ASSERT_EQ(reference.At(i, j), measure->Evaluate(rnn))
            << "pixel " << i << "," << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialTest,
    ::testing::Combine(
        ::testing::Values(Metric::kLInf, Metric::kL2),
        ::testing::Values(std::string("Size"), std::string("Weighted"),
                          std::string("Connectivity")),
        ::testing::Values(Scenario::kRandom, Scenario::kSnapped,
                          Scenario::kTangent, Scenario::kDegenerate)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return MetricName(std::get<0>(param_info.param)) +
             std::get<1>(param_info.param) +
             ScenarioName(std::get<2>(param_info.param));
    });

// --- Incremental re-sweep and result cache -------------------------------
//
// The acceptance gate for the incremental subsystem: for both
// column-separable metrics, a session replaying a randomized edit sequence
// must produce — after every single edit — a spliced raster that is
// *bit-identical* to a from-scratch build of its current circles at every
// slab count, under both an order-independent measure (Size) and exact
// dyadic weighted sums (the same determinism precondition the parallel
// contract documents).

using IncrementalParam = std::tuple<Metric, std::string>;

class IncrementalDifferentialTest
    : public ::testing::TestWithParam<IncrementalParam> {};

TEST_P(IncrementalDifferentialTest, EditReplayMatchesFromScratch) {
  const auto [metric, measure_name] = GetParam();
  for (const uint64_t seed : {3u, 17u}) {
    Rng rng(7000 + seed);
    std::vector<Point> clients, facilities;
    for (int i = 0; i < 60; ++i) {
      clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    }
    for (int i = 0; i < 8; ++i) {
      facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    }
    // Weights sized for every client this replay can ever add.
    const auto measure = MakeMeasure(measure_name, 60 + 40, 7100 + seed);
    HeatmapSession session(clients, facilities, metric);
    SCOPED_TRACE(MetricName(metric) + " seed " + std::to_string(seed));

    IncrementalRebuildStats stats;
    session.RasterIncremental(*measure, kDomain, kRaster, kRaster, &stats);
    ASSERT_TRUE(stats.full_rebuild);

    int spliced_ticks = 0;
    for (int tick = 0; tick < 40; ++tick) {
      const double dice = rng.NextDouble();
      if (dice < 0.4) {
        session.MoveClient(
            static_cast<int32_t>(rng.NextBounded(session.num_clients())),
            {rng.Uniform(0, 1), rng.Uniform(0, 1)});
      } else if (dice < 0.6) {
        session.AddClient({rng.Uniform(0, 1), rng.Uniform(0, 1)});
      } else if (dice < 0.8 || session.num_facilities() < 2) {
        session.AddFacility({rng.Uniform(0, 1), rng.Uniform(0, 1)});
      } else {
        session.RemoveFacility(
            static_cast<int32_t>(rng.NextBounded(session.num_facilities())));
      }
      const HeatmapGrid& spliced = session.RasterIncremental(
          *measure, kDomain, kRaster, kRaster, &stats);
      ASSERT_FALSE(stats.full_rebuild) << "tick " << tick;
      spliced_ticks += stats.raster.dirty_columns < kRaster ? 1 : 0;

      // Bit-identical to a from-scratch build at every slab count.
      for (const int slabs : kSlabCounts) {
        const HeatmapGrid scratch =
            ParallelRaster(metric, session.circles(), *measure, slabs);
        ASSERT_EQ(spliced.values(), scratch.values())
            << "tick " << tick << " slabs " << slabs;
      }
    }
    // The replay must actually exercise partial recomputation, not
    // degenerate into full-width dirty slabs every tick.
    EXPECT_GT(spliced_ticks, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalDifferentialTest,
    ::testing::Combine(::testing::Values(Metric::kLInf, Metric::kL2),
                       ::testing::Values(std::string("Size"),
                                         std::string("Weighted"))),
    [](const ::testing::TestParamInfo<IncrementalParam>& param_info) {
      return MetricName(std::get<0>(param_info.param)) + std::get<1>(param_info.param);
    });

// Cache hits must be bit-identical to the response a cache-less engine
// computes for the same request — for both exact metrics and all slab
// counts the engine can sweep with.
TEST(CacheDifferentialTest, HitsAreBitIdenticalToFreshSweeps) {
  SizeInfluence measure;
  for (const Metric metric : {Metric::kLInf, Metric::kL2}) {
    const auto circles = MakeCircles(Scenario::kSnapped, 4211, 70);
    for (const int slabs : kSlabCounts) {
      HeatmapEngineOptions cached_options;
      cached_options.num_threads = 1;
      cached_options.slabs_per_request = slabs;
      cached_options.cache_bytes = 32 << 20;
      HeatmapEngine cached(measure, cached_options);
      HeatmapEngineOptions plain_options;
      plain_options.num_threads = 1;
      plain_options.slabs_per_request = slabs;
      HeatmapEngine plain(measure, plain_options);

      const HeatmapRequest request{circles, kDomain, kRaster, kRaster,
                                   metric};
      const HeatmapResponse cold = cached.Execute(request);
      const HeatmapResponse warm = cached.Execute(request);
      const HeatmapResponse fresh = plain.Execute(request);
      ASSERT_FALSE(cold.from_cache);
      ASSERT_TRUE(warm.from_cache);
      EXPECT_EQ(warm.grid.values(), fresh.grid.values())
          << MetricName(metric) << " slabs " << slabs;
      EXPECT_EQ(cold.grid.values(), fresh.grid.values());
    }
  }
}

// Serving API v2: for any request, the legacy inline path, the handle
// path and a wire round-trip through the serve loop must all produce the
// same grid, bit for bit, at every slab count.
TEST(ServingV2DifferentialTest, InlineHandleAndWirePathsAgree) {
  SizeInfluence measure;
  for (const Metric metric : {Metric::kLInf, Metric::kL1, Metric::kL2}) {
    const auto circles = MakeCircles(Scenario::kSnapped, 5317, 60);
    for (const int slabs : kSlabCounts) {
      HeatmapEngineOptions options;
      options.num_threads = 1;
      options.slabs_per_request = slabs;
      options.cache_bytes = 32 << 20;
      HeatmapEngine engine(measure, options);

      // Legacy inline path.
      const HeatmapRequest request{circles, kDomain, kRaster, kRaster,
                                   metric};
      const HeatmapResponse inline_response = engine.Execute(request);

      // Handle path on the same engine (served from the shared cache) and
      // on a cache-less engine (fresh sweep).
      const CircleSetHandle handle =
          engine.registry().Register(circles, metric);
      const HeatmapRequestV2 v2{handle, kDomain, kRaster, kRaster};
      const HeatmapResponse handle_response = engine.Execute(v2);
      HeatmapEngineOptions plain_options;
      plain_options.num_threads = 1;
      plain_options.slabs_per_request = slabs;
      HeatmapEngine plain(measure, plain_options);
      const CircleSetHandle plain_handle =
          plain.registry().Register(circles, metric);
      const HeatmapResponse fresh_response = plain.Execute(
          HeatmapRequestV2{plain_handle, kDomain, kRaster, kRaster});

      // Wire round-trip: encode -> serve loop (its own engine) -> decode.
      const auto set = CircleSetSnapshot::Make(circles, metric);
      std::FILE* in = std::tmpfile();
      std::FILE* out = std::tmpfile();
      ASSERT_NE(in, nullptr);
      ASSERT_NE(out, nullptr);
      ASSERT_TRUE(WriteFrame(
          in, EncodeRequest(MakeWireRequest(*set, kDomain, kRaster, kRaster,
                                            /*include_circles=*/true))));
      std::rewind(in);
      HeatmapEngine server(measure, plain_options);
      std::string error;
      ASSERT_TRUE(ServeWireStream(in, out, server, nullptr, &error))
          << error;
      std::rewind(out);
      const auto frame = ReadFrame(out, &error);
      ASSERT_TRUE(frame.has_value()) << error;
      const auto wire_response = DecodeResponse(*frame, &error);
      ASSERT_TRUE(wire_response.has_value()) << error;
      ASSERT_EQ(wire_response->status, WireStatus::kOk)
          << wire_response->error;
      std::fclose(in);
      std::fclose(out);

      const std::vector<double>& reference = inline_response.grid.values();
      EXPECT_EQ(handle_response.grid.values(), reference)
          << MetricName(metric) << " slabs " << slabs << " (handle)";
      EXPECT_EQ(fresh_response.grid.values(), reference)
          << MetricName(metric) << " slabs " << slabs << " (fresh handle)";
      EXPECT_EQ(wire_response->response->grid.values(), reference)
          << MetricName(metric) << " slabs " << slabs << " (wire)";
    }
  }
}

// Parallel stat sums must stay consistent with the sequential sweep: the
// circle accounting is global and exact, the per-shard sweep counters can
// only grow (boundary-spanning regions are labeled once per slab).
TEST(DifferentialStatsTest, L2ParallelSumsMatchSequentialCounts) {
  const auto circles = MakeCircles(Scenario::kDegenerate, 77, 90);
  SizeInfluence measure;
  CountingSink sink;
  const CrestL2Stats sequential = RunCrestL2(circles, measure, &sink);
  for (const int shards : kSlabCounts) {
    std::vector<CountingSink> shard_sinks(shards);
    std::vector<RegionLabelSink*> ptrs;
    for (auto& s : shard_sinks) ptrs.push_back(&s);
    const CrestL2Stats parallel =
        RunCrestL2Parallel(circles, measure, ptrs);
    EXPECT_EQ(parallel.num_circles, sequential.num_circles)
        << "shards=" << shards;
    EXPECT_EQ(parallel.num_skipped_circles, sequential.num_skipped_circles)
        << "shards=" << shards;
    EXPECT_GE(parallel.num_labelings, sequential.num_labelings)
        << "shards=" << shards;
    // Each crossing lies in exactly one slab; crossings exactly on a slab
    // boundary are dropped as redundant (the boundary checkpoint relabels
    // everything), so the sum can only lose those.
    EXPECT_LE(parallel.num_cross_events, sequential.num_cross_events)
        << "shards=" << shards;
    size_t labeled = 0;
    for (const auto& s : shard_sinks) labeled += s.count();
    EXPECT_EQ(labeled, parallel.num_labelings) << "shards=" << shards;
  }
}

// The unified dispatcher must accept every metric (L1 labels live in the
// rotated frame, so compare its shard union against the rotated sweep).
TEST(DifferentialStatsTest, DispatcherCoversAllMetrics) {
  Rng rng(88);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 50; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.02, 0.2), i});
  }
  SizeInfluence measure;
  for (const Metric metric : {Metric::kLInf, Metric::kL1, Metric::kL2}) {
    std::vector<CountingSink> shard_sinks(3);
    std::vector<RegionLabelSink*> ptrs;
    for (auto& s : shard_sinks) ptrs.push_back(&s);
    const MetricSweepStats stats =
        RunCrestParallelMetric(metric, circles, measure, ptrs);
    EXPECT_GT(stats.num_labelings(), 0u) << MetricName(metric);
    if (metric == Metric::kL2) {
      EXPECT_EQ(stats.crest.num_labelings, 0u);
    } else {
      EXPECT_EQ(stats.l2.num_labelings, 0u);
    }
  }
}

}  // namespace
}  // namespace rnnhm
