#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/crest.h"
#include "core/influence_measure.h"
#include "core/label_sink.h"
#include "heatmap/influence.h"

namespace rnnhm {
namespace {

const Rect kRect{{0, 0}, {1, 1}};

TEST(MaxInfluenceSinkTest, TracksMaxAndWitness) {
  MaxInfluenceSink sink;
  EXPECT_FALSE(sink.HasResult());
  const std::vector<int32_t> a{3, 1};
  const std::vector<int32_t> b{2};
  sink.OnRegionLabel(Rect{{0, 0}, {1, 1}}, a, 2.0);
  sink.OnRegionLabel(Rect{{5, 5}, {6, 6}}, b, 1.0);
  ASSERT_TRUE(sink.HasResult());
  EXPECT_DOUBLE_EQ(sink.max_influence(), 2.0);
  EXPECT_EQ(sink.witness_rnn(), (std::vector<int32_t>{1, 3}));  // sorted
  EXPECT_EQ(sink.witness(), kRect);
}

TEST(MaxInfluenceSinkTest, FirstLabelWinsTies) {
  MaxInfluenceSink sink;
  const std::vector<int32_t> a{0};
  const std::vector<int32_t> b{1};
  sink.OnRegionLabel(Rect{{0, 0}, {1, 1}}, a, 5.0);
  sink.OnRegionLabel(Rect{{2, 2}, {3, 3}}, b, 5.0);
  EXPECT_EQ(sink.witness_rnn(), (std::vector<int32_t>{0}));
}

TEST(MaxInfluenceSinkTest, NegativeInfluenceStillTracked) {
  // Generic measures may be negative; the sink must report the max anyway.
  MaxInfluenceSink sink;
  const std::vector<int32_t> a{0};
  sink.OnRegionLabel(kRect, a, -7.0);
  ASSERT_TRUE(sink.HasResult());
  EXPECT_DOUBLE_EQ(sink.max_influence(), -7.0);
}

TEST(CountingSinkTest, CountsEveryCall) {
  CountingSink sink;
  const std::vector<int32_t> a{0};
  for (int i = 0; i < 17; ++i) sink.OnRegionLabel(kRect, a, 1.0);
  EXPECT_EQ(sink.count(), 17u);
}

TEST(TeeSinkTest, BroadcastsToAllChildren) {
  CountingSink c1, c2;
  MaxInfluenceSink m;
  TeeSink tee({&c1, &c2, &m});
  const std::vector<int32_t> a{4};
  tee.OnRegionLabel(kRect, a, 9.0);
  tee.OnRegionLabel(kRect, a, 3.0);
  EXPECT_EQ(c1.count(), 2u);
  EXPECT_EQ(c2.count(), 2u);
  EXPECT_DOUBLE_EQ(m.max_influence(), 9.0);
}

TEST(DistinctSetSinkTest, KeysAreSortedAndDeduplicated) {
  DistinctSetSink sink;
  const std::vector<int32_t> a{5, 2, 9};
  const std::vector<int32_t> a_permuted{9, 5, 2};
  sink.OnRegionLabel(kRect, a, 3.0);
  sink.OnRegionLabel(kRect, a_permuted, 3.0);
  ASSERT_EQ(sink.sets().size(), 1u);
  EXPECT_TRUE(sink.sets().count({2, 5, 9}));
}

// The genericity contract: the sweep calls Evaluate exactly once per
// labeling, never more (influence computation may be arbitrarily
// expensive, cf. the capacity measure of [22]).
class CountingMeasure : public InfluenceMeasure {
 public:
  double Evaluate(std::span<const int32_t> clients) const override {
    ++evaluations_;
    return static_cast<double>(clients.size());
  }
  mutable size_t evaluations_ = 0;
};

TEST(MeasureContractTest, OneEvaluationPerLabeling) {
  Rng rng(77);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 120; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.02, 0.2), i});
  }
  CountingMeasure measure;
  CountingSink sink;
  const CrestStats stats = RunCrest(circles, measure, &sink);
  EXPECT_EQ(measure.evaluations_, stats.num_labelings);
}

TEST(MeasureContractTest, CrestAAlsoEvaluatesOncePerLabeling) {
  Rng rng(78);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 80; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.02, 0.2), i});
  }
  CountingMeasure measure;
  CountingSink sink;
  CrestOptions options;
  options.use_changed_intervals = false;
  const CrestStats stats = RunCrest(circles, measure, &sink, options);
  EXPECT_EQ(measure.evaluations_, stats.num_labelings);
}

}  // namespace
}  // namespace rnnhm
