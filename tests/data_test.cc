#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/io.h"

namespace rnnhm {
namespace {

TEST(GeneratorTest, UniformStaysInDomainAndIsDeterministic) {
  const Rect domain{{-2, 3}, {5, 8}};
  Rng rng1(7), rng2(7);
  const auto a = GenerateUniform(1000, domain, rng1);
  const auto b = GenerateUniform(1000, domain, rng2);
  ASSERT_EQ(a.size(), 1000u);
  EXPECT_EQ(a, b);
  for (const Point& p : a) {
    EXPECT_TRUE(domain.ContainsClosed(p));
  }
}

TEST(GeneratorTest, ZipfIsSkewed) {
  const Rect domain{{0, 0}, {1, 1}};
  Rng rng(8);
  const auto pts = GenerateZipf(20000, domain, 0.8, rng, 8);
  // Count points per 8x8 cell; the most popular cell must hold
  // significantly more than the uniform share.
  int counts[64] = {};
  for (const Point& p : pts) {
    EXPECT_TRUE(domain.ContainsClosed(p));
    const int cx = std::min(7, static_cast<int>(p.x * 8));
    const int cy = std::min(7, static_cast<int>(p.y * 8));
    ++counts[cy * 8 + cx];
  }
  int max_count = 0;
  for (const int c : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20000 / 64 * 2);
}

TEST(GeneratorTest, ZipfSkewZeroIsNearUniform) {
  const Rect domain{{0, 0}, {1, 1}};
  Rng rng(9);
  const auto pts = GenerateZipf(32000, domain, 0.0, rng, 8);
  int counts[64] = {};
  for (const Point& p : pts) {
    const int cx = std::min(7, static_cast<int>(p.x * 8));
    const int cy = std::min(7, static_cast<int>(p.y * 8));
    ++counts[cy * 8 + cx];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 250);  // expected 500 +- noise
    EXPECT_LT(c, 1000);
  }
}

TEST(GeneratorTest, CityRespectsMarginAndSize) {
  const Rect domain{{0, 0}, {10, 10}};
  CityParams params;
  Rng rng(10);
  const auto pts = GenerateCity(5000, domain, params, rng);
  ASSERT_EQ(pts.size(), 5000u);
  const double margin = params.margin_fraction * 10.0;
  for (const Point& p : pts) {
    EXPECT_GE(p.x, margin - 1e-9);
    EXPECT_LE(p.x, 10 - margin + 1e-9);
    EXPECT_GE(p.y, margin - 1e-9);
    EXPECT_LE(p.y, 10 - margin + 1e-9);
  }
}

TEST(GeneratorTest, CityIsClustered) {
  const Rect domain{{0, 0}, {1, 1}};
  Rng rng(11);
  const auto pts = GenerateCity(20000, domain, CityParams{}, rng);
  // Clustering proxy: the densest 16x16 cell should far exceed uniform.
  int counts[256] = {};
  for (const Point& p : pts) {
    const int cx = std::min(15, static_cast<int>(p.x * 16));
    const int cy = std::min(15, static_cast<int>(p.y * 16));
    ++counts[cy * 16 + cx];
  }
  int max_count = 0;
  for (const int c : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20000 / 256 * 4);
}

TEST(GeneratorTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(12);
  const auto pool = GenerateUniform(500, Rect{{0, 0}, {1, 1}}, rng);
  const auto sample = SampleWithoutReplacement(pool, 200, rng);
  ASSERT_EQ(sample.size(), 200u);
  std::set<std::pair<double, double>> seen;
  for (const Point& p : sample) {
    EXPECT_TRUE(seen.insert({p.x, p.y}).second);
  }
}

TEST(GeneratorTest, WorstCaseSquaresMatchFig8) {
  const auto squares = MakeWorstCaseSquares(5);
  ASSERT_EQ(squares.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(squares[i].center.x, i + 1.0);
    EXPECT_DOUBLE_EQ(squares[i].center.y, i + 1.0);
    EXPECT_DOUBLE_EQ(squares[i].radius, 2.5);  // side length n = 5
  }
}

TEST(DatasetTest, TableIISizesAndDeterminism) {
  const Dataset nyc = MakeDataset(DatasetKind::kNyc, 1, 5000);
  EXPECT_EQ(nyc.name, "NYC");
  EXPECT_EQ(nyc.points.size(), 5000u);
  const Dataset nyc2 = MakeDataset(DatasetKind::kNyc, 1, 5000);
  EXPECT_EQ(nyc.points, nyc2.points);
  const Dataset la = MakeDataset(DatasetKind::kLa, 1, 4000);
  EXPECT_EQ(la.name, "LA");
  EXPECT_NE(la.points, nyc.points);
}

TEST(DatasetTest, DefaultSizesMatchTableII) {
  // Build tiny versions for speed, but verify the default constants via the
  // documented contract for the synthetic sets.
  const Dataset uni = MakeDataset(DatasetKind::kUniform, 2, 1000);
  EXPECT_EQ(uni.points.size(), 1000u);
  const Dataset zipf = MakeDataset(DatasetKind::kZipfian, 2, 1000);
  EXPECT_EQ(zipf.points.size(), 1000u);
}

TEST(DatasetTest, SampleWorkloadIsDisjoint) {
  const Dataset uni = MakeDataset(DatasetKind::kUniform, 3, 3000);
  const Workload w = SampleWorkload(uni, 1000, 100, 99);
  EXPECT_EQ(w.clients.size(), 1000u);
  EXPECT_EQ(w.facilities.size(), 100u);
  std::set<std::pair<double, double>> clients;
  for (const Point& p : w.clients) clients.insert({p.x, p.y});
  for (const Point& p : w.facilities) {
    EXPECT_FALSE(clients.count({p.x, p.y}));
  }
}

TEST(IoTest, CsvRoundTrip) {
  Rng rng(13);
  const auto pts = GenerateUniform(100, Rect{{-5, -5}, {5, 5}}, rng);
  const std::string path = "/tmp/rnnhm_points.csv";
  ASSERT_TRUE(WritePointsCsv(pts, path));
  std::vector<Point> back;
  ASSERT_TRUE(ReadPointsCsv(path, &back));
  ASSERT_EQ(back.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].x, pts[i].x);
    EXPECT_DOUBLE_EQ(back[i].y, pts[i].y);
  }
  std::remove(path.c_str());
}

TEST(IoTest, ReadMissingFileFails) {
  std::vector<Point> out;
  EXPECT_FALSE(ReadPointsCsv("/nonexistent/points.csv", &out));
}

TEST(IoTest, ReadSkipsCommentsAndRejectsGarbage) {
  const std::string path = "/tmp/rnnhm_mixed.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "# comment\n1.5,2.5\n\n3.5,4.5\n");
  std::fclose(f);
  std::vector<Point> out;
  ASSERT_TRUE(ReadPointsCsv(path, &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].y, 4.5);

  f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "1.5,2.5\nnot,a,point\n");
  std::fclose(f);
  out.clear();
  EXPECT_FALSE(ReadPointsCsv(path, &out));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rnnhm
