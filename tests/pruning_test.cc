#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/brute_force.h"
#include "core/crest_l2.h"
#include "core/pruning.h"
#include "heatmap/influence.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> RandomDisks(int n, Rng& rng, double max_r = 0.15) {
  std::vector<NnCircle> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.01, max_r), i});
  }
  return out;
}

TEST(PruningTest, SingleDisk) {
  const std::vector<NnCircle> disks{{{0.5, 0.5}, 0.2, 0}};
  SizeInfluence measure;
  const PruningResult result = RunPruning(disks, measure);
  EXPECT_DOUBLE_EQ(result.max_influence, 1.0);
  EXPECT_EQ(result.best_rnn, (std::vector<int32_t>{0}));
  EXPECT_FALSE(result.timed_out);
}

TEST(PruningTest, TwoOverlappingDisks) {
  const std::vector<NnCircle> disks{{{0.4, 0.5}, 0.2, 0},
                                    {{0.6, 0.5}, 0.2, 1}};
  SizeInfluence measure;
  const PruningResult result = RunPruning(disks, measure);
  EXPECT_DOUBLE_EQ(result.max_influence, 2.0);
  EXPECT_EQ(result.best_rnn, (std::vector<int32_t>{0, 1}));
}

TEST(PruningTest, DisjointDisksMaxIsOne) {
  const std::vector<NnCircle> disks{{{0.2, 0.2}, 0.05, 0},
                                    {{0.8, 0.8}, 0.05, 1},
                                    {{0.2, 0.8}, 0.05, 2}};
  SizeInfluence measure;
  const PruningResult result = RunPruning(disks, measure);
  EXPECT_DOUBLE_EQ(result.max_influence, 1.0);
}

TEST(PruningTest, NestedDisksFindInnerRegion) {
  const std::vector<NnCircle> disks{{{0.5, 0.5}, 0.3, 0},
                                    {{0.5, 0.5}, 0.15, 1},
                                    {{0.5, 0.5}, 0.05, 2}};
  SizeInfluence measure;
  const PruningResult result = RunPruning(disks, measure);
  EXPECT_DOUBLE_EQ(result.max_influence, 3.0);
  EXPECT_EQ(result.best_rnn, (std::vector<int32_t>{0, 1, 2}));
}

class PruningVsCrestL2 : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(PruningVsCrestL2, MaxInfluenceAgrees) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const std::vector<NnCircle> disks = RandomDisks(n, rng);
  SizeInfluence measure;
  const PruningResult pruning = RunPruning(disks, measure);
  ASSERT_FALSE(pruning.timed_out);
  MaxInfluenceSink sink;
  RunCrestL2(disks, measure, &sink);
  ASSERT_TRUE(sink.HasResult());
  EXPECT_DOUBLE_EQ(pruning.max_influence, sink.max_influence());
}

TEST_P(PruningVsCrestL2, BoundPruningDoesNotChangeTheAnswer) {
  const auto [n, seed] = GetParam();
  Rng rng(seed + 1000);
  const std::vector<NnCircle> disks = RandomDisks(n, rng);
  SizeInfluence measure;
  PruningOptions no_pruning;
  no_pruning.use_bound_pruning = false;
  const PruningResult with = RunPruning(disks, measure);
  const PruningResult without = RunPruning(disks, measure, no_pruning);
  EXPECT_DOUBLE_EQ(with.max_influence, without.max_influence);
  // Bound pruning can only reduce the explored node count.
  EXPECT_LE(with.num_nodes, without.num_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PruningVsCrestL2,
    ::testing::Values(std::tuple{3, 120}, std::tuple{8, 121},
                      std::tuple{15, 122}, std::tuple{30, 123},
                      std::tuple{60, 124}),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(PruningTest, TimeBudgetStopsEarly) {
  // A dense arrangement with a tiny budget must report a timeout but still
  // return a lower bound on the max influence.
  Rng rng(125);
  std::vector<NnCircle> disks;
  for (int i = 0; i < 400; ++i) {
    disks.push_back(NnCircle{{rng.Uniform(0.45, 0.55), rng.Uniform(0.45, 0.55)},
                             rng.Uniform(0.3, 0.5), i});
  }
  SizeInfluence measure;
  PruningOptions options;
  options.time_budget_ms = 5.0;
  const PruningResult result = RunPruning(disks, measure, options);
  EXPECT_TRUE(result.timed_out);
  EXPECT_GE(result.max_influence, 0.0);
}

TEST(PruningTest, RefinementRejectsNonexistentRegions) {
  // Disks 0 and 2 overlap pairwise, but their lens lies entirely inside
  // disk 1, so the enumerated combination "inside {0,2}, outside 1" does
  // not exist. Disable bound pruning so the enumeration actually reaches
  // those leaves and the refinement step has to reject them.
  const std::vector<NnCircle> disks{{{0.45, 0.5}, 0.1, 0},
                                    {{0.5, 0.5}, 0.3, 1},
                                    {{0.55, 0.5}, 0.1, 2}};
  SizeInfluence measure;
  PruningOptions options;
  options.use_bound_pruning = false;
  const PruningResult result = RunPruning(disks, measure, options);
  // Region {0, 2} without 1 does not exist; best is {0, 1, 2}.
  EXPECT_DOUBLE_EQ(result.max_influence, 3.0);
  EXPECT_GT(result.num_leaves, result.num_existing_regions);
}

TEST(PruningTest, EmptyInput) {
  SizeInfluence measure;
  const PruningResult result = RunPruning({}, measure);
  EXPECT_DOUBLE_EQ(result.max_influence, 0.0);
  EXPECT_TRUE(result.best_rnn.empty());
}

}  // namespace
}  // namespace rnnhm
