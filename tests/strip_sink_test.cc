// Invariants of the strip-rasterization hook (DESIGN.md "Strip visitor"):
// spans tile each strip exactly — same x-range, non-overlapping y-ranges in
// ascending order — and carry influence values that match the oracle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/brute_force.h"
#include "core/crest.h"
#include "heatmap/influence.h"

namespace rnnhm {
namespace {

struct Span {
  double x0, x1, y0, y1, influence;
};

class RecordingStripSink : public StripSink {
 public:
  void OnSpan(double x0, double x1, double y0, double y1,
              double influence) override {
    spans.push_back(Span{x0, x1, y0, y1, influence});
  }
  std::vector<Span> spans;
};

std::vector<NnCircle> RandomCircles(int n, Rng& rng, double max_r = 0.2) {
  std::vector<NnCircle> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.02, max_r), i});
  }
  return out;
}

class StripSinkProperty : public ::testing::TestWithParam<int> {};

TEST_P(StripSinkProperty, SpansTileStripsInOrder) {
  Rng rng(700 + GetParam());
  const auto circles = RandomCircles(GetParam(), rng);
  SizeInfluence measure;
  RecordingStripSink strip;
  CountingSink counter;
  CrestOptions options;
  options.strip_sink = &strip;
  RunCrest(circles, measure, &counter, options);
  ASSERT_FALSE(strip.spans.empty());
  // Group by strip (x0, x1); within each strip, spans must be y-ascending
  // and non-overlapping, with consistent x-ranges.
  for (size_t i = 0; i < strip.spans.size(); ++i) {
    const Span& s = strip.spans[i];
    ASSERT_LT(s.x0, s.x1);
    ASSERT_LT(s.y0, s.y1);
    if (i > 0) {
      const Span& prev = strip.spans[i - 1];
      if (prev.x0 == s.x0) {
        ASSERT_EQ(prev.x1, s.x1);
        ASSERT_LE(prev.y1, s.y0) << "spans overlap within a strip";
      } else {
        ASSERT_LE(prev.x1, s.x0) << "strips out of order";
      }
    }
  }
}

TEST_P(StripSinkProperty, SpanValuesMatchOracleAtSpanCenters) {
  Rng rng(800 + GetParam());
  const auto circles = RandomCircles(GetParam(), rng);
  SizeInfluence measure;
  RecordingStripSink strip;
  CountingSink counter;
  CrestOptions options;
  options.strip_sink = &strip;
  RunCrest(circles, measure, &counter, options);
  for (const Span& s : strip.spans) {
    const Point center{(s.x0 + s.x1) / 2, (s.y0 + s.y1) / 2};
    const auto rnn = BruteForceRnnSet(center, circles, Metric::kLInf);
    ASSERT_DOUBLE_EQ(s.influence, static_cast<double>(rnn.size()))
        << "span at (" << center.x << ", " << center.y << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StripSinkProperty,
                         ::testing::Values(2, 10, 50, 150),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST(StripSinkTest, RegressionRevivedTopmostPairValue) {
  // Pattern that left a stale cached span value: circle 0's upper side
  // pairs with circle 1's range (value {1}); circle 1 is removed, making
  // circle 0's upper side the topmost element (no pair); circle 2 is later
  // inserted above it, reviving the pair with the empty set — the cached
  // value must not leak the old {1}.
  const std::vector<NnCircle> circles{
      {{0.2100, 0.6383}, 0.1080, 0},   // removed first
      {{0.3285, 0.4228}, 0.1285, 1},   // its upper side survives
      {{0.4284, 0.6400}, 0.0348, 2}};  // inserted above the gap
  SizeInfluence measure;
  RecordingStripSink strip;
  CountingSink counter;
  CrestOptions options;
  options.strip_sink = &strip;
  RunCrest(circles, measure, &counter, options);
  for (const Span& s : strip.spans) {
    const Point center{(s.x0 + s.x1) / 2, (s.y0 + s.y1) / 2};
    const auto rnn = BruteForceRnnSet(center, circles, Metric::kLInf);
    ASSERT_DOUBLE_EQ(s.influence, static_cast<double>(rnn.size()))
        << "span at (" << center.x << ", " << center.y << ")";
  }
}

TEST(StripSinkTest, ManySeedsRasterMatchesBruteForce) {
  // Broad randomized sweep of the raster path (the staleness bug above
  // needed a specific removal/insertion pattern to surface).
  SizeInfluence measure;
  for (const uint64_t seed : {11u, 212u, 1212u, 9001u, 4444u}) {
    Rng rng(seed);
    const int n = 5 + static_cast<int>(rng.NextBounded(60));
    const auto circles = RandomCircles(n, rng, 0.15);
    RecordingStripSink strip;
    CountingSink counter;
    CrestOptions options;
    options.strip_sink = &strip;
    RunCrest(circles, measure, &counter, options);
    for (const Span& s : strip.spans) {
      const Point center{(s.x0 + s.x1) / 2, (s.y0 + s.y1) / 2};
      const auto rnn = BruteForceRnnSet(center, circles, Metric::kLInf);
      ASSERT_DOUBLE_EQ(s.influence, static_cast<double>(rnn.size()))
          << "seed " << seed;
    }
  }
}

TEST(StripSinkTest, CrestAModeAlsoSupportsStrips) {
  Rng rng(900);
  const auto circles = RandomCircles(60, rng);
  SizeInfluence measure;
  RecordingStripSink strip;
  CountingSink counter;
  CrestOptions options;
  options.strip_sink = &strip;
  options.use_changed_intervals = false;
  RunCrest(circles, measure, &counter, options);
  for (const Span& s : strip.spans) {
    const Point center{(s.x0 + s.x1) / 2, (s.y0 + s.y1) / 2};
    const auto rnn = BruteForceRnnSet(center, circles, Metric::kLInf);
    ASSERT_DOUBLE_EQ(s.influence, static_cast<double>(rnn.size()));
  }
}

}  // namespace
}  // namespace rnnhm
