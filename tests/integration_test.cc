// End-to-end tests across modules: dataset -> NN-circles -> sweep ->
// measures -> post-processing, under all metrics and both RNN flavours.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/baseline.h"
#include "core/brute_force.h"
#include "core/crest.h"
#include "core/crest_l2.h"
#include "core/pruning.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"
#include "heatmap/postprocess.h"
#include "index/kdtree.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {
namespace {

struct PipelineCase {
  DatasetKind dataset;
  size_t num_clients;
  size_t num_facilities;
  uint64_t seed;
};

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineTest, L1PipelineMatchesOracleAtSampledPoints) {
  const PipelineCase c = GetParam();
  const Dataset ds = MakeDataset(c.dataset, c.seed, 4096);
  const Workload w =
      SampleWorkload(ds, c.num_clients, c.num_facilities, c.seed);
  const auto l1_circles =
      BuildNnCircles(w.clients, w.facilities, Metric::kL1);
  SizeInfluence measure;

  // CREST over the rotated frame; verify distinct sets against the oracle
  // at sampled original-frame points.
  DistinctSetSink sink;
  const CrestStats stats = RunCrestL1(l1_circles, measure, &sink);
  EXPECT_GT(stats.num_labelings, 0u);
  Rng rng(c.seed + 123);
  const Rect box = BoundingBox(w.clients, 0.05);
  for (int q = 0; q < 2000; ++q) {
    const Point p{rng.Uniform(box.lo.x, box.hi.x),
                  rng.Uniform(box.lo.y, box.hi.y)};
    const auto rnn = BruteForceRnnSet(p, l1_circles, Metric::kL1);
    if (rnn.empty()) continue;
    ASSERT_TRUE(sink.sets().count(rnn))
        << "oracle found a set the sweep never labeled";
    ASSERT_DOUBLE_EQ(sink.sets().at(rnn), static_cast<double>(rnn.size()));
  }
}

TEST_P(PipelineTest, L2PipelineMatchesOracleAtSampledPoints) {
  const PipelineCase c = GetParam();
  const Dataset ds = MakeDataset(c.dataset, c.seed + 1, 4096);
  const Workload w =
      SampleWorkload(ds, c.num_clients / 2, c.num_facilities, c.seed);
  const auto disks = BuildNnCircles(w.clients, w.facilities, Metric::kL2);
  SizeInfluence measure;
  DistinctSetSink sink;
  RunCrestL2(disks, measure, &sink);
  Rng rng(c.seed + 321);
  const Rect box = BoundingBox(w.clients, 0.05);
  for (int q = 0; q < 1500; ++q) {
    const Point p{rng.Uniform(box.lo.x, box.hi.x),
                  rng.Uniform(box.lo.y, box.hi.y)};
    const auto rnn = BruteForceRnnSet(p, disks, Metric::kL2);
    if (rnn.empty()) continue;
    ASSERT_TRUE(sink.sets().count(rnn));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, PipelineTest,
    ::testing::Values(
        PipelineCase{DatasetKind::kNyc, 256, 32, 1000},
        PipelineCase{DatasetKind::kLa, 256, 16, 1001},
        PipelineCase{DatasetKind::kUniform, 512, 8, 1002},
        PipelineCase{DatasetKind::kZipfian, 512, 64, 1003}),
    [](const ::testing::TestParamInfo<PipelineCase>& param_info) {
      return DatasetKindName(param_info.param.dataset) + "_o" +
             std::to_string(param_info.param.num_clients) + "_f" +
             std::to_string(param_info.param.num_facilities);
    });

TEST(IntegrationTest, MonochromaticPipeline) {
  // O = F: every point's NN-circle reaches its nearest sibling; the sweep
  // must agree with the oracle and lambda stays constant-bounded.
  const Dataset ds = MakeDataset(DatasetKind::kUniform, 7, 2048);
  Rng rng(7);
  const auto points = SampleWithoutReplacement(ds.points, 500, rng);
  const auto circles = BuildMonochromaticNnCircles(points, Metric::kL1);
  SizeInfluence measure;
  DistinctSetSink sink;
  MaxInfluenceSink max_sink;
  TeeSink tee({&sink, &max_sink});
  RunCrestL1(circles, measure, &tee);
  EXPECT_LE(max_sink.max_influence(), 8.0);  // lambda = O(1) (Section VII-A)
  const Rect box = BoundingBox(points, 0.05);
  for (int q = 0; q < 1500; ++q) {
    const Point p{rng.Uniform(box.lo.x, box.hi.x),
                  rng.Uniform(box.lo.y, box.hi.y)};
    const auto rnn = BruteForceRnnSet(p, circles, Metric::kL1);
    if (!rnn.empty()) {
      ASSERT_TRUE(sink.sets().count(rnn));
    }
  }
}

TEST(IntegrationTest, CapacityMeasureThroughTheFullStack) {
  // The courier scenario: capacity-constrained influence through CREST,
  // validated against brute force at sampled points.
  const Dataset ds = MakeDataset(DatasetKind::kNyc, 8, 4096);
  const Workload w = SampleWorkload(ds, 300, 30, 8);
  const auto circles = BuildNnCircles(w.clients, w.facilities, Metric::kL1);
  // Client -> NN facility assignment for the measure.
  KdTree ftree(w.facilities);
  std::vector<int32_t> client_nn;
  for (const Point& c : w.clients) {
    client_nn.push_back(ftree.Nearest(c, Metric::kL1).index);
  }
  std::vector<int32_t> caps;
  Rng rng(88);
  for (size_t f = 0; f < w.facilities.size(); ++f) {
    caps.push_back(1 + static_cast<int32_t>(rng.NextBounded(10)));
  }
  CapacityInfluence measure(client_nn, caps, 8);

  DistinctSetSink sink;
  RunCrestL1(circles, measure, &sink);
  const Rect box = BoundingBox(w.clients, 0.02);
  for (int q = 0; q < 800; ++q) {
    const Point p{rng.Uniform(box.lo.x, box.hi.x),
                  rng.Uniform(box.lo.y, box.hi.y)};
    auto rnn = BruteForceRnnSet(p, circles, Metric::kL1);
    if (rnn.empty()) continue;
    ASSERT_TRUE(sink.sets().count(rnn));
    ASSERT_DOUBLE_EQ(sink.sets().at(rnn), measure.Evaluate(rnn));
  }
}

TEST(IntegrationTest, ThreeAlgorithmsAgreeOnMaxInfluenceL2) {
  // Enough facilities that overlap degrees stay tractable for the
  // exponential Pruning comparator (its blow-up on dense inputs is the
  // behaviour Figs. 18-19 measure, not something a unit test should pay).
  const Dataset ds = MakeDataset(DatasetKind::kUniform, 9, 2048);
  const Workload w = SampleWorkload(ds, 100, 25, 9);
  const auto disks = BuildNnCircles(w.clients, w.facilities, Metric::kL2);
  SizeInfluence measure;
  MaxInfluenceSink crest_sink;
  RunCrestL2(disks, measure, &crest_sink);
  PruningOptions options;
  options.time_budget_ms = 60000.0;
  const PruningResult pruning = RunPruning(disks, measure, options);
  ASSERT_FALSE(pruning.timed_out);
  EXPECT_DOUBLE_EQ(crest_sink.max_influence(), pruning.max_influence);
}

TEST(IntegrationTest, CrestAndBaselineAgreeOnCityWorkload) {
  // Real city workloads are degenerate: every NN-circle of clients sharing
  // a facility passes through that facility's location, and after the L1
  // rotation the coincident square sides differ by ~1 ulp. That creates
  // sliver regions a few 1e-14 wide, which CREST enumerates exactly but
  // the baseline's cell centroids round onto (producing boundary-set
  // artifacts). Compare only regions whose witness extent is robustly
  // positive; those must agree exactly.
  const Dataset ds = MakeDataset(DatasetKind::kLa, 10, 2048);
  const Workload w = SampleWorkload(ds, 200, 20, 10);
  const auto circles = BuildNnCircles(w.clients, w.facilities, Metric::kL1);
  SizeInfluence measure;
  CollectingSink via_crest, via_baseline;
  RunCrestL1(circles, measure, &via_crest);
  RunBaselineL1(circles, measure, &via_baseline);
  // CREST labels a region when it first appears — possibly while it is
  // still ulp-thin — and correctly never relabels it as it widens; the
  // baseline's centroid probing is instead blind to slivers but robust on
  // wide cells. So compare by double inclusion: every robustly-sized
  // region either algorithm finds must appear (at any size) in the other.
  constexpr double kEps = 1e-9;
  auto all_sets = [](const CollectingSink& s) {
    std::set<std::vector<int32_t>> out;
    for (const auto& label : s.labels()) {
      if (!label.rnn.empty()) out.insert(label.rnn);
    }
    return out;
  };
  auto robust_sets = [&](const CollectingSink& s) {
    std::set<std::vector<int32_t>> out;
    for (const auto& label : s.labels()) {
      if (label.rnn.empty()) continue;
      const Rect& r = label.subregion;
      if (r.hi.x - r.lo.x > kEps && r.hi.y - r.lo.y > kEps) {
        out.insert(label.rnn);
      }
    }
    return out;
  };
  const auto crest_all = all_sets(via_crest);
  const auto baseline_all = all_sets(via_baseline);
  const auto crest_robust = robust_sets(via_crest);
  const auto baseline_robust = robust_sets(via_baseline);
  EXPECT_GT(crest_robust.size(), 200u);
  for (const auto& set : crest_robust) {
    ASSERT_TRUE(baseline_all.count(set))
        << "baseline missed a robust CREST region of size " << set.size();
  }
  for (const auto& set : baseline_robust) {
    ASSERT_TRUE(crest_all.count(set))
        << "CREST missed a robust baseline region of size " << set.size();
  }
}

TEST(IntegrationTest, TopKRegionsAreRealAndOrdered) {
  const Dataset ds = MakeDataset(DatasetKind::kNyc, 11, 4096);
  const Workload w = SampleWorkload(ds, 400, 20, 11);
  const auto circles = BuildNnCircles(w.clients, w.facilities, Metric::kL1);
  SizeInfluence measure;
  RegionQuerySink query;
  RunCrestL1(circles, measure, &query);
  const auto top = query.TopK(10);
  ASSERT_EQ(top.size(), 10u);
  const auto rot = RotateCirclesToLInf(circles);
  for (const auto& region : top) {
    // Witness rectangles are in the rotated frame; verify there.
    const Point center = region.representative.Center();
    const auto rnn = BruteForceRnnSet(center, rot, Metric::kLInf);
    EXPECT_EQ(rnn, region.rnn);
  }
}

TEST(IntegrationTest, HeatmapImagePipelineRuns) {
  const Dataset ds = MakeDataset(DatasetKind::kNyc, 12, 8192);
  const Workload w = SampleWorkload(ds, 2000, 600, 12);
  SizeInfluence measure;
  const Rect domain = BoundingBox(ds.points, 0.01);
  const HeatmapGrid grid =
      BuildHeatmapL1(w.clients, w.facilities, measure, domain, 200, 200);
  EXPECT_GT(grid.MaxValue(), 1.0);
  // Some pixels must be hot, most lukewarm (city data is clustered).
  int hot = 0;
  for (const double v : grid.values()) hot += v >= grid.MaxValue() / 2;
  EXPECT_GT(hot, 0);
  EXPECT_LT(hot, 200 * 200 / 2);
}

}  // namespace
}  // namespace rnnhm
