#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/changed_interval.h"

namespace rnnhm {
namespace {

using Intervals = std::vector<ChangedInterval>;

TEST(ChangedIntervalTest, EmptyAndSingleton) {
  Intervals empty;
  MergeChangedIntervals(empty);
  EXPECT_TRUE(empty.empty());

  Intervals one{{1.0, 2.0}};
  MergeChangedIntervals(one);
  EXPECT_EQ(one, (Intervals{{1.0, 2.0}}));
}

TEST(ChangedIntervalTest, DisjointStaySeparate) {
  Intervals v{{3.0, 4.0}, {1.0, 2.0}};
  MergeChangedIntervals(v);
  EXPECT_EQ(v, (Intervals{{1.0, 2.0}, {3.0, 4.0}}));
}

TEST(ChangedIntervalTest, OverlappingMerge) {
  Intervals v{{1.0, 3.0}, {2.0, 5.0}};
  MergeChangedIntervals(v);
  EXPECT_EQ(v, (Intervals{{1.0, 5.0}}));
}

TEST(ChangedIntervalTest, TouchingEndpointsMerge) {
  // Section V-C1: [y_ci, y_cj] and [y_ci', y_cj'] merge if y_cj >= y_ci'.
  Intervals v{{1.0, 2.0}, {2.0, 3.0}};
  MergeChangedIntervals(v);
  EXPECT_EQ(v, (Intervals{{1.0, 3.0}}));
}

TEST(ChangedIntervalTest, ContainedIntervalAbsorbed) {
  Intervals v{{1.0, 10.0}, {2.0, 3.0}, {4.0, 5.0}};
  MergeChangedIntervals(v);
  EXPECT_EQ(v, (Intervals{{1.0, 10.0}}));
}

TEST(ChangedIntervalTest, ChainMerge) {
  Intervals v{{5.0, 6.0}, {1.0, 2.5}, {2.0, 3.5}, {3.0, 4.0}};
  MergeChangedIntervals(v);
  EXPECT_EQ(v, (Intervals{{1.0, 4.0}, {5.0, 6.0}}));
}

TEST(ChangedIntervalTest, RandomizedInvariants) {
  Rng rng(60);
  for (int trial = 0; trial < 200; ++trial) {
    Intervals v;
    const int n = 1 + static_cast<int>(rng.NextBounded(50));
    for (int i = 0; i < n; ++i) {
      const double lo = rng.Uniform(0, 10);
      v.push_back({lo, lo + rng.Uniform(0, 2)});
    }
    const Intervals original = v;
    MergeChangedIntervals(v);
    // Sorted, disjoint, non-touching.
    for (size_t i = 0; i + 1 < v.size(); ++i) {
      ASSERT_LT(v[i].hi, v[i + 1].lo);
    }
    // Every input point is covered by the output and vice versa: check via
    // sampled points from input endpoints.
    auto covered = [](const Intervals& set, double x) {
      for (const ChangedInterval& iv : set) {
        if (iv.lo <= x && x <= iv.hi) return true;
      }
      return false;
    };
    for (const ChangedInterval& iv : original) {
      for (const double x : {iv.lo, (iv.lo + iv.hi) / 2, iv.hi}) {
        ASSERT_TRUE(covered(v, x));
      }
    }
    for (const ChangedInterval& iv : v) {
      for (const double x : {iv.lo, iv.hi}) {
        ASSERT_TRUE(covered(original, x));
      }
    }
  }
}

}  // namespace
}  // namespace rnnhm
