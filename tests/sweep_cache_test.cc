#include "query/sweep_cache.h"

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "heatmap/influence.h"
#include "heatmap/serialization.h"
#include "query/heatmap_engine.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> MakeCircles(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<NnCircle> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.02, 0.2), i});
  }
  return out;
}

HeatmapRequest MakeRequest(uint64_t seed, int n = 40,
                           Metric metric = Metric::kLInf) {
  return HeatmapRequest{MakeCircles(seed, n), Rect{{0, 0}, {1, 1}}, 24, 24,
                        metric};
}

HeatmapEngineOptions SingleWorker() {
  HeatmapEngineOptions options;
  options.num_threads = 1;
  return options;
}

HeatmapResponse MakeResponse(const HeatmapRequest& request) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, SingleWorker());
  return engine.Execute(request);
}

TEST(SweepCacheTest, MissThenHitReturnsBitIdenticalResponse) {
  SweepCache cache(SweepCacheOptions{});
  const HeatmapRequest request = MakeRequest(1);
  EXPECT_FALSE(cache.Lookup(request).has_value());
  const HeatmapResponse response = MakeResponse(request);
  cache.Insert(request, response);
  const auto hit = cache.Lookup(request);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->from_cache);
  EXPECT_EQ(hit->grid.values(), response.grid.values());
  EXPECT_EQ(hit->grid.domain(), response.grid.domain());
  EXPECT_EQ(hit->stats.num_labelings, response.stats.num_labelings);
  EXPECT_EQ(hit->cache.hits, 1u);
  EXPECT_EQ(hit->cache.misses, 1u);
}

TEST(SweepCacheTest, FingerprintIsContentSensitive) {
  const HeatmapRequest base = MakeRequest(2);
  const uint64_t key = SweepCache::Fingerprint(base);
  EXPECT_EQ(key, SweepCache::Fingerprint(MakeRequest(2)));  // deterministic

  HeatmapRequest nudged = base;
  nudged.circles[7].center.x += 1e-12;  // one circle, one ulp-ish nudge
  EXPECT_NE(key, SweepCache::Fingerprint(nudged));
  HeatmapRequest resized = base;
  resized.width = 25;
  EXPECT_NE(key, SweepCache::Fingerprint(resized));
  HeatmapRequest remetriced = base;
  remetriced.metric = Metric::kL2;
  EXPECT_NE(key, SweepCache::Fingerprint(remetriced));
  HeatmapRequest moved_domain = base;
  moved_domain.domain.hi.x += 0.5;
  EXPECT_NE(key, SweepCache::Fingerprint(moved_domain));
}

TEST(SweepCacheTest, PerturbedRequestMisses) {
  SweepCache cache(SweepCacheOptions{});
  const HeatmapRequest request = MakeRequest(3);
  cache.Insert(request, MakeResponse(request));
  HeatmapRequest nudged = request;
  nudged.circles.back().radius *= 1.0000001;
  EXPECT_FALSE(cache.Lookup(nudged).has_value());
  EXPECT_TRUE(cache.Lookup(request).has_value());
}

TEST(SweepCacheTest, LruEvictsOldestFirstUnderEntryBudget) {
  SweepCacheOptions options;
  options.max_entries = 2;
  SweepCache cache(options);
  const HeatmapRequest a = MakeRequest(10), b = MakeRequest(11),
                       c = MakeRequest(12);
  cache.Insert(a, MakeResponse(a));
  cache.Insert(b, MakeResponse(b));
  EXPECT_TRUE(cache.Lookup(a).has_value());  // touch a: b becomes LRU
  cache.Insert(c, MakeResponse(c));          // evicts b
  EXPECT_TRUE(cache.Lookup(a).has_value());
  EXPECT_FALSE(cache.Lookup(b).has_value());
  EXPECT_TRUE(cache.Lookup(c).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SweepCacheTest, ByteBudgetBoundsResidency) {
  const HeatmapRequest a = MakeRequest(20);
  const HeatmapResponse response = MakeResponse(a);
  const size_t grid_bytes = SerializedSizeBytes(response.grid);
  SweepCacheOptions options;
  options.max_bytes = 2 * grid_bytes + 2 * sizeof(HeatmapRequest) +
                      2 * a.circles.size() * sizeof(NnCircle);
  SweepCache cache(options);
  for (uint64_t seed = 20; seed < 25; ++seed) {
    const HeatmapRequest r = MakeRequest(seed);
    cache.Insert(r, MakeResponse(r));
  }
  EXPECT_LE(cache.stats().bytes, options.max_bytes);
  EXPECT_LE(cache.stats().entries, 2u);
  EXPECT_GE(cache.stats().evictions, 3u);
}

TEST(SweepCacheTest, OversizedEntryIsNotAdmitted) {
  SweepCacheOptions options;
  options.max_bytes = 16;  // smaller than any response
  SweepCache cache(options);
  const HeatmapRequest a = MakeRequest(30);
  cache.Insert(a, MakeResponse(a));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.Lookup(a).has_value());
}

TEST(SweepCacheTest, ClearDropsEntriesButKeepsCounters) {
  SweepCache cache(SweepCacheOptions{});
  const HeatmapRequest a = MakeRequest(40);
  cache.Insert(a, MakeResponse(a));
  ASSERT_TRUE(cache.Lookup(a).has_value());
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(cache.Lookup(a).has_value());
}

// --- Engine integration ---------------------------------------------------

TEST(EngineCacheTest, RepeatSubmissionsHitAndMatchBitIdentically) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 32 << 20;
  HeatmapEngine engine(measure, options);

  const HeatmapRequest request = MakeRequest(50, 60, Metric::kL2);
  const HeatmapResponse cold = engine.Execute(request);
  EXPECT_FALSE(cold.from_cache);
  const HeatmapResponse warm = engine.Execute(request);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.grid.values(), cold.grid.values());
  EXPECT_EQ(warm.l2_stats.num_labelings, cold.l2_stats.num_labelings);
  EXPECT_EQ(engine.cache_stats().hits, 1u);

  // The cached response must also equal what a cache-less engine computes.
  HeatmapEngine plain(measure, SingleWorker());
  EXPECT_EQ(plain.Execute(request).grid.values(), warm.grid.values());
}

TEST(EngineCacheTest, RunBatchServesDuplicatesFromCache) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 2;
  options.cache_bytes = 32 << 20;
  HeatmapEngine engine(measure, options);

  std::vector<HeatmapRequest> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(MakeRequest(60 + i % 3));
  const std::vector<HeatmapResponse> responses =
      engine.RunBatch(std::move(batch));
  ASSERT_EQ(responses.size(), 12u);
  // 3 distinct requests: at least 9 of 12 must have been served by the
  // cache (racing workers may compute a duplicate concurrently before the
  // first insert lands, so exact counts are scheduling-dependent).
  const SweepCacheStats stats = engine.cache_stats();
  EXPECT_GE(stats.hits + stats.misses, 12u);
  EXPECT_GE(stats.hits, 1u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(responses[i].grid.values(), responses[i % 3].grid.values());
  }
}

TEST(EngineCacheTest, DisabledCacheReportsZeroStats) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, SingleWorker());
  const HeatmapResponse response = engine.Execute(MakeRequest(70));
  EXPECT_FALSE(response.from_cache);
  EXPECT_EQ(response.cache.hits + response.cache.misses, 0u);
  EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(EngineCacheTest, ConcurrentSubmittersShareTheCacheSafely) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 4;
  options.cache_bytes = 32 << 20;
  HeatmapEngine engine(measure, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20;
  std::vector<std::thread> submitters;
  std::vector<std::vector<HeatmapResponse>> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        results[t].push_back(
            engine.Submit(MakeRequest(100 + (t + i) % 5, 30)).get());
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  // Every response for the same seed must be bit-identical regardless of
  // which thread computed or cached it.
  for (int t = 1; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const int seed = (t + i) % 5;
      for (int u = 0; u < kPerThread; ++u) {
        if ((0 + u) % 5 == seed) {
          EXPECT_EQ(results[t][i].grid.values(), results[0][u].grid.values());
        }
      }
    }
  }
}

}  // namespace
}  // namespace rnnhm
