#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace rnnhm {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(d, -3.0);
    ASSERT_LT(d, 5.0);
  }
}

TEST(RngTest, NextBoundedCoversRangeWithoutBias) {
  Rng rng(9);
  int counts[7] = {};
  for (int i = 0; i < 70000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(10);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(11);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 3);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  const uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), first);
}

TEST(StopwatchTest, MeasuresElapsedTimeMonotonically) {
  Stopwatch sw;
  // Busy-wait a tiny amount.
  volatile double x = 0.0;
  for (int i = 0; i < 1000000; ++i) x += std::sqrt(static_cast<double>(i));
  const double ms = sw.ElapsedMs();
  EXPECT_GT(ms, 0.0);
  EXPECT_GE(sw.ElapsedMs(), ms);  // monotone
  // Seconds and milliseconds report the same clock within read jitter.
  const double seconds = sw.ElapsedSeconds();
  EXPECT_NEAR(seconds * 1000.0, sw.ElapsedMs(), 50.0);
  sw.Reset();
  EXPECT_LT(sw.ElapsedMs(), ms + 1000.0);
}

TEST(CheckTest, CheckAbortsOnFailure) {
  EXPECT_DEATH({ RNNHM_CHECK(1 == 2); }, "CHECK failed");
  EXPECT_DEATH({ RNNHM_CHECK_MSG(false, "context"); }, "context");
}

}  // namespace
}  // namespace rnnhm
