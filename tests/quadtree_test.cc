#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geom/geometry.h"
#include "index/quadtree.h"

namespace rnnhm {
namespace {

std::vector<Rect> RandomRects(size_t n, Rng& rng, double max_size = 0.25) {
  std::vector<Rect> out;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 1);
    const double y = rng.Uniform(0, 1);
    out.push_back(Rect{{x, y}, {x + rng.Uniform(0, max_size),
                                y + rng.Uniform(0, max_size)}});
  }
  return out;
}

TEST(QuadTreeTest, EmptyTree) {
  QuadTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.StabIds({0.5, 0.5}).empty());
}

TEST(QuadTreeTest, SingleRect) {
  QuadTree tree({Rect{{0, 0}, {1, 1}}});
  EXPECT_EQ(tree.StabIds({0.5, 0.5}), (std::vector<int32_t>{0}));
  EXPECT_EQ(tree.StabIds({0, 0}), (std::vector<int32_t>{0}));  // corner
  EXPECT_TRUE(tree.StabIds({1.5, 0.5}).empty());
}

TEST(QuadTreeTest, SubdividesDenseInput) {
  Rng rng(2000);
  const auto rects = RandomRects(500, rng, 0.05);
  QuadTree tree(rects);
  EXPECT_GT(tree.NumNodes(), 10u);  // actually built a hierarchy
}

class QuadTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuadTreeProperty, StabMatchesBruteForce) {
  Rng rng(2100 + GetParam());
  const auto rects = RandomRects(GetParam(), rng);
  QuadTree tree(rects);
  for (int q = 0; q < 400; ++q) {
    const Point p{rng.Uniform(-0.1, 1.3), rng.Uniform(-0.1, 1.3)};
    auto got = tree.StabIds(p);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].ContainsClosed(p)) want.push_back(static_cast<int32_t>(i));
    }
    ASSERT_EQ(got, want);
  }
}

TEST_P(QuadTreeProperty, QueryMatchesBruteForce) {
  Rng rng(2200 + GetParam());
  const auto rects = RandomRects(GetParam(), rng);
  QuadTree tree(rects);
  for (int q = 0; q < 100; ++q) {
    const double x = rng.Uniform(0, 1);
    const double y = rng.Uniform(0, 1);
    const Rect window{{x, y}, {x + 0.3, y + 0.3}};
    std::vector<int32_t> got;
    tree.Query(window, [&](int32_t id) { got.push_back(id); });
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].Intersects(window)) want.push_back(static_cast<int32_t>(i));
    }
    ASSERT_EQ(got, want);
  }
}

TEST_P(QuadTreeProperty, StabOnSplitLinesIsExact) {
  // Queries exactly on quadrant boundaries must not lose rectangles.
  Rng rng(2300 + GetParam());
  const auto rects = RandomRects(GetParam(), rng);
  QuadTree tree(rects);
  Rect bounds = EmptyRect();
  for (const Rect& r : rects) bounds = bounds.Union(r);
  const Point mid = bounds.Center();  // the root split point
  for (const Point p : {mid,
                        Point{mid.x, rng.Uniform(0, 1)},
                        Point{rng.Uniform(0, 1), mid.y}}) {
    auto got = tree.StabIds(p);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].ContainsClosed(p)) want.push_back(static_cast<int32_t>(i));
    }
    ASSERT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuadTreeProperty,
                         ::testing::Values(1, 10, 100, 1000),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace rnnhm
