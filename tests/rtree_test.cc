#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geom/geometry.h"
#include "index/rtree.h"

namespace rnnhm {
namespace {

std::vector<Rect> RandomRects(size_t n, Rng& rng, double max_size = 0.2) {
  std::vector<Rect> out;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 1);
    const double y = rng.Uniform(0, 1);
    const double w = rng.Uniform(0, max_size);
    const double h = rng.Uniform(0, max_size);
    out.push_back(Rect{{x, y}, {x + w, y + h}});
  }
  return out;
}

std::set<int32_t> BruteQuery(const std::vector<Rect>& rects,
                             const Rect& window) {
  std::set<int32_t> out;
  for (size_t i = 0; i < rects.size(); ++i) {
    if (rects[i].Intersects(window)) out.insert(static_cast<int32_t>(i));
  }
  return out;
}

std::set<int32_t> CollectQuery(const RTree& tree, const Rect& window) {
  std::set<int32_t> out;
  tree.Query(window, [&](int32_t id) { out.insert(id); });
  return out;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(CollectQuery(tree, Rect{{0, 0}, {1, 1}}).empty());
  EXPECT_EQ(tree.NearestRect({0, 0}).id, -1);
}

TEST(RTreeTest, BulkLoadSmall) {
  RTree tree;
  tree.BulkLoad({Rect{{0, 0}, {1, 1}}, Rect{{2, 2}, {3, 3}}});
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(CollectQuery(tree, Rect{{0.5, 0.5}, {0.6, 0.6}}),
            (std::set<int32_t>{0}));
  EXPECT_EQ(CollectQuery(tree, Rect{{-1, -1}, {4, 4}}),
            (std::set<int32_t>{0, 1}));
}

class RTreeProperty : public ::testing::TestWithParam<std::tuple<int, bool>> {
};

TEST_P(RTreeProperty, QueryMatchesBruteForce) {
  const auto [n, bulk] = GetParam();
  Rng rng(100 + n);
  const std::vector<Rect> rects = RandomRects(n, rng);
  RTree tree;
  if (bulk) {
    tree.BulkLoad(rects);
  } else {
    for (size_t i = 0; i < rects.size(); ++i) {
      tree.Insert(rects[i], static_cast<int32_t>(i));
    }
  }
  ASSERT_EQ(tree.size(), rects.size());
  for (int q = 0; q < 100; ++q) {
    const double x = rng.Uniform(-0.1, 1.0);
    const double y = rng.Uniform(-0.1, 1.0);
    const Rect window{{x, y},
                      {x + rng.Uniform(0, 0.4), y + rng.Uniform(0, 0.4)}};
    ASSERT_EQ(CollectQuery(tree, window), BruteQuery(rects, window));
  }
}

TEST_P(RTreeProperty, StabMatchesBruteForce) {
  const auto [n, bulk] = GetParam();
  Rng rng(200 + n);
  const std::vector<Rect> rects = RandomRects(n, rng);
  RTree tree;
  if (bulk) {
    tree.BulkLoad(rects);
  } else {
    for (size_t i = 0; i < rects.size(); ++i) {
      tree.Insert(rects[i], static_cast<int32_t>(i));
    }
  }
  for (int q = 0; q < 200; ++q) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    std::vector<int32_t> got = tree.StabIds(p);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].ContainsClosed(p)) want.push_back(static_cast<int32_t>(i));
    }
    ASSERT_EQ(got, want);
  }
}

TEST_P(RTreeProperty, NearestRectMatchesBruteForce) {
  const auto [n, bulk] = GetParam();
  Rng rng(300 + n);
  const std::vector<Rect> rects = RandomRects(n, rng);
  RTree tree;
  if (bulk) {
    tree.BulkLoad(rects);
  } else {
    for (size_t i = 0; i < rects.size(); ++i) {
      tree.Insert(rects[i], static_cast<int32_t>(i));
    }
  }
  for (int q = 0; q < 100; ++q) {
    const Point p{rng.Uniform(-0.5, 1.5), rng.Uniform(-0.5, 1.5)};
    const RTree::NnEntry got = tree.NearestRect(p);
    double want = std::numeric_limits<double>::infinity();
    for (const Rect& r : rects) want = std::min(want, r.MinDistanceL2(p));
    ASSERT_GE(got.id, 0);
    EXPECT_NEAR(got.distance, want, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeProperty,
    ::testing::Combine(::testing::Values(1, 16, 17, 100, 1000),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& param_info) {
      return std::string(std::get<1>(param_info.param) ? "bulk" : "insert") + "_n" +
             std::to_string(std::get<0>(param_info.param));
    });

TEST(RTreeTest, HeightGrowsLogarithmically) {
  Rng rng(9);
  const std::vector<Rect> rects = RandomRects(4096, rng);
  RTree tree;
  tree.BulkLoad(rects);
  // 4096 entries at fan-out 16 pack into height exactly 3.
  EXPECT_EQ(tree.Height(), 3);
}

TEST(RTreeTest, MixedBulkThenInsert) {
  Rng rng(10);
  std::vector<Rect> rects = RandomRects(256, rng);
  RTree tree;
  tree.BulkLoad(rects);
  const std::vector<Rect> extra = RandomRects(256, rng);
  for (const Rect& r : extra) {
    tree.Insert(r, static_cast<int32_t>(rects.size()));
    rects.push_back(r);
  }
  EXPECT_EQ(tree.size(), 512u);
  for (int q = 0; q < 50; ++q) {
    const double x = rng.Uniform(0, 1);
    const double y = rng.Uniform(0, 1);
    const Rect window{{x, y}, {x + 0.2, y + 0.2}};
    ASSERT_EQ(CollectQuery(tree, window), BruteQuery(rects, window));
  }
}

}  // namespace
}  // namespace rnnhm
