// The raster kernels' standing contract is bit-identity: every SIMD
// backend must produce, lane for lane, the exact doubles the scalar
// ArcYAt loop produces — any divergence would break the "raster is
// independent of slab decomposition and backend" guarantee the
// incremental splice and the differential suite rest on. These tests
// pin that contract per backend, across batch widths that exercise the
// vector/tail seam, and on degenerate and extreme inputs.
#include "heatmap/raster_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geom/circle_geometry.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"

namespace rnnhm {
namespace {

// Bitwise equality: NaN == NaN (same payload), -0.0 != +0.0. EXPECT_EQ
// would treat -0.0 and +0.0 as equal and NaNs as unequal — too weak and
// too strong at once for a bit-identity contract.
bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

std::vector<RasterBackend> AvailableBackends() {
  std::vector<RasterBackend> out{RasterBackend::kScalar};
  const RasterBackend top = DetectedRasterBackend();
  for (const RasterBackend b :
       {RasterBackend::kSse2, RasterBackend::kAvx2, RasterBackend::kAvx512}) {
    if (static_cast<int>(b) <= static_cast<int>(top)) out.push_back(b);
  }
  return out;
}

class BackendGuard {
 public:
  ~BackendGuard() { ResetRasterBackendForTesting(); }
};

void ExpectBatchMatchesScalar(const Point& center, double radius,
                              const std::vector<double>& xs,
                              const char* what) {
  std::vector<double> got(xs.size()), want(xs.size());
  for (const bool is_upper : {false, true}) {
    ArcYAtColumnsScalar(center, radius, is_upper, xs.data(), want.data(),
                        static_cast<int>(xs.size()));
    for (size_t k = 0; k < xs.size(); ++k) {
      // The scalar kernel itself must match the geometry routine exactly:
      // it IS the reference, not an approximation of it.
      ASSERT_TRUE(SameBits(want[k], ArcYAt(center, radius, is_upper, xs[k])))
          << what << " scalar kernel diverges from ArcYAt at column " << k;
    }
    ArcYAtColumns(center, radius, is_upper, xs.data(), got.data(),
                  static_cast<int>(xs.size()));
    for (size_t k = 0; k < xs.size(); ++k) {
      ASSERT_TRUE(SameBits(got[k], want[k]))
          << what << " backend " << RasterBackendName(ActiveRasterBackend())
          << (is_upper ? " upper" : " lower") << " arc, column " << k
          << ": " << got[k] << " vs " << want[k];
    }
  }
}

TEST(ArcYAtColumnsTest, EveryBackendMatchesScalarBitForBit) {
  BackendGuard guard;
  Rng rng(1234);
  for (const RasterBackend backend : AvailableBackends()) {
    SetRasterBackendForTesting(backend);
    const int lanes = RasterBackendLanes(backend);
    // Widths around the vector width exercise full vectors, the scalar
    // tail, and the empty-vector case in every combination.
    for (const int count :
         {1, 3, lanes - 1, lanes, lanes + 1, 4 * lanes + 3, 64}) {
      if (count <= 0) continue;
      for (int trial = 0; trial < 8; ++trial) {
        const Point center{rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
        const double radius = rng.Uniform(0.01, 0.8);
        std::vector<double> xs;
        for (int k = 0; k < count; ++k) {
          // Mix of interior, boundary-adjacent, and out-of-disk columns
          // (the clamp path) in one batch.
          xs.push_back(center.x + rng.Uniform(-1.5, 1.5) * radius);
        }
        ExpectBatchMatchesScalar(center, radius, xs, "random");
      }
    }
  }
}

TEST(ArcYAtColumnsTest, DegenerateAndExtremeArcsMatchScalar) {
  BackendGuard guard;
  const double inf = std::numeric_limits<double>::infinity();
  for (const RasterBackend backend : AvailableBackends()) {
    SetRasterBackendForTesting(backend);
    // Zero radius: every column clamps to the center ordinate.
    ExpectBatchMatchesScalar({0.25, 0.5}, 0.0,
                             {0.1, 0.25, 0.4, -3.0, 7.0}, "zero radius");
    // Tiny radius: s = r^2 - dx^2 underflows toward subnormals.
    ExpectBatchMatchesScalar({0.0, 0.0}, 1e-160,
                             {-1e-160, -5e-161, 0.0, 5e-161, 1e-160, 0.5},
                             "tiny radius");
    // Huge coordinates: r^2 overflow behavior must agree lane for lane.
    ExpectBatchMatchesScalar({1e150, -1e150}, 1e160,
                             {-1e160, 0.0, 1e150, 9.9e159}, "huge radius");
    // Columns at exactly the disk's x-extremes (dx == +-r: s == 0, the
    // sqrt(+-0) sign corner) and at the center.
    ExpectBatchMatchesScalar({0.5, -0.25}, 0.125,
                             {0.375, 0.5, 0.625}, "extremes");
    // Non-finite columns (an unclamped axis guess) still match.
    ExpectBatchMatchesScalar({0.0, 1.0}, 0.5, {-inf, 0.0, inf},
                             "infinite columns");
  }
}

// Sink-level differential: the full L2 raster painted with the active
// SIMD backend equals the raster painted with the forced-scalar backend,
// bit for bit, across grid sizes that stress the batch seam.
TEST(RasterBackendDifferentialTest, GridsMatchScalarBackend) {
  BackendGuard guard;
  if (DetectedRasterBackend() == RasterBackend::kScalar) {
    GTEST_SKIP() << "no SIMD backend on this host";
  }
  Rng rng(77);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 60; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.02, 0.25), i});
  }
  SizeInfluence measure;
  const Rect domain{{-0.1, -0.1}, {1.1, 1.1}};
  for (const int res : {7, 64, 97}) {
    SetRasterBackendForTesting(DetectedRasterBackend());
    const HeatmapGrid simd =
        BuildHeatmapL2(circles, measure, domain, res, res);
    SetRasterBackendForTesting(RasterBackend::kScalar);
    const HeatmapGrid scalar =
        BuildHeatmapL2(circles, measure, domain, res, res);
    ASSERT_EQ(simd.values().size(), scalar.values().size());
    for (size_t i = 0; i < simd.values().size(); ++i) {
      ASSERT_TRUE(SameBits(simd.values()[i], scalar.values()[i]))
          << "pixel " << i << " at " << res << "x" << res;
    }
  }
}

TEST(RasterBackendTest, DispatchReportsAValidBackend) {
  BackendGuard guard;
  const RasterBackend detected = DetectedRasterBackend();
  EXPECT_GE(RasterBackendLanes(detected), 1);
  EXPECT_NE(RasterBackendName(detected), nullptr);
  // This binary also runs with RNNHM_DISABLE_SIMD=1 (the _nosimd ctest
  // entry), where the default drops to scalar regardless of detection.
  const char* kill = std::getenv("RNNHM_DISABLE_SIMD");
  const bool kill_set =
      kill != nullptr && kill[0] != '\0' && std::string(kill) != "0";
  const RasterBackend expected_default =
      kill_set ? RasterBackend::kScalar : detected;
  EXPECT_EQ(ActiveRasterBackend(), expected_default);
  SetRasterBackendForTesting(RasterBackend::kScalar);
  EXPECT_EQ(ActiveRasterBackend(), RasterBackend::kScalar);
  EXPECT_EQ(RasterBackendLanes(RasterBackend::kScalar), 1);
  ResetRasterBackendForTesting();
  EXPECT_EQ(ActiveRasterBackend(), expected_default);
}

// --- PixelAxis ------------------------------------------------------------

TEST(PixelAxisTest, CentersMatchTheHoistedFormula) {
  const PixelAxis axis(-0.05, 0.0275, 40);
  ASSERT_EQ(axis.size(), 40);
  for (int i = 0; i < axis.size(); ++i) {
    EXPECT_TRUE(
        SameBits(axis.centers()[i], -0.05 + (i + 0.5) * 0.0275))
        << i;
  }
}

// LowerBound must return the first center index >= bound — exactly, at
// every seam, including bounds far outside the axis and non-finite ones.
TEST(PixelAxisTest, LowerBoundIsExactAtEverySeam) {
  const PixelAxis axis(0.0, 0.125, 32);
  const auto reference = [&](double bound) {
    int i = 0;
    while (i < axis.size() && axis.centers()[i] < bound) ++i;
    return i;
  };
  // Every center, just below, exactly at, and just above it.
  for (int i = 0; i < axis.size(); ++i) {
    const double c = axis.centers()[i];
    for (const double bound :
         {std::nextafter(c, -1e300), c, std::nextafter(c, 1e300)}) {
      EXPECT_EQ(axis.LowerBound(bound), reference(bound)) << bound;
    }
  }
  EXPECT_EQ(axis.LowerBound(-1e300), 0);
  EXPECT_EQ(axis.LowerBound(1e300), axis.size());
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(axis.LowerBound(-inf), 0);
  EXPECT_EQ(axis.LowerBound(inf), axis.size());
  EXPECT_EQ(axis.LowerBound(std::nan("")), 0);  // NaN: paint nothing wrong
}

TEST(PixelAxisTest, RandomBoundsAgreeWithLinearScan) {
  Rng rng(4321);
  const PixelAxis axis(-3.7, 0.0193, 257);
  const auto reference = [&](double bound) {
    int i = 0;
    while (i < axis.size() && axis.centers()[i] < bound) ++i;
    return i;
  };
  for (int t = 0; t < 2000; ++t) {
    const double bound = rng.Uniform(-6, 6);
    ASSERT_EQ(axis.LowerBound(bound), reference(bound)) << bound;
  }
}

}  // namespace
}  // namespace rnnhm
