#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/brute_force.h"
#include "core/crest_l2.h"
#include "heatmap/influence.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> RandomDisks(int n, Rng& rng, double max_r = 0.15) {
  std::vector<NnCircle> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.01, max_r), i});
  }
  return out;
}

std::map<std::vector<int32_t>, double> DistinctNonEmpty(
    const DistinctSetSink& sink) {
  std::map<std::vector<int32_t>, double> out;
  for (const auto& [set, influence] : sink.sets()) {
    if (!set.empty()) out[set] = influence;
  }
  return out;
}

TEST(CrestL2Test, SingleDisk) {
  const std::vector<NnCircle> disks{{{0.5, 0.5}, 0.25, 0}};
  SizeInfluence measure;
  CollectingSink sink;
  const CrestL2Stats stats = RunCrestL2(disks, measure, &sink);
  ASSERT_EQ(sink.labels().size(), 1u);
  EXPECT_EQ(sink.labels()[0].rnn, (std::vector<int32_t>{0}));
  EXPECT_EQ(stats.num_cross_events, 0u);
}

TEST(CrestL2Test, TwoOverlappingDisksLensIsFound) {
  const std::vector<NnCircle> disks{{{0.4, 0.5}, 0.2, 0},
                                    {{0.6, 0.5}, 0.2, 1}};
  SizeInfluence measure;
  DistinctSetSink sink;
  const CrestL2Stats stats = RunCrestL2(disks, measure, &sink);
  EXPECT_EQ(stats.num_cross_events, 2u);
  const auto sets = DistinctNonEmpty(sink);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_TRUE(sets.count({0}));
  EXPECT_TRUE(sets.count({1}));
  EXPECT_TRUE(sets.count({0, 1}));
}

TEST(CrestL2Test, DisjointAndNestedDisks) {
  const std::vector<NnCircle> disks{{{0.2, 0.2}, 0.1, 0},
                                    {{0.7, 0.7}, 0.25, 1},
                                    {{0.7, 0.7}, 0.1, 2}};  // nested in 1
  SizeInfluence measure;
  DistinctSetSink sink;
  const CrestL2Stats stats = RunCrestL2(disks, measure, &sink);
  EXPECT_EQ(stats.num_cross_events, 0u);
  const auto sets = DistinctNonEmpty(sink);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_TRUE(sets.count({0}));
  EXPECT_TRUE(sets.count({1}));
  EXPECT_TRUE(sets.count({1, 2}));
}

TEST(CrestL2Test, DuplicateDisksAreMerged) {
  const std::vector<NnCircle> disks{{{0.5, 0.5}, 0.2, 0},
                                    {{0.5, 0.5}, 0.2, 1}};
  SizeInfluence measure;
  DistinctSetSink sink;
  const CrestL2Stats stats = RunCrestL2(disks, measure, &sink);
  EXPECT_EQ(stats.num_circles, 1u);  // one swept disk carrying two clients
  const auto sets = DistinctNonEmpty(sink);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_TRUE(sets.count({0, 1}));
  EXPECT_DOUBLE_EQ(sets.at({0, 1}), 2.0);
}

TEST(CrestL2Test, ZeroRadiusSkipped) {
  const std::vector<NnCircle> disks{{{0.5, 0.5}, 0.0, 0},
                                    {{0.5, 0.5}, 0.2, 1}};
  SizeInfluence measure;
  DistinctSetSink sink;
  const CrestL2Stats stats = RunCrestL2(disks, measure, &sink);
  EXPECT_EQ(stats.num_skipped_circles, 1u);
  EXPECT_EQ(DistinctNonEmpty(sink).size(), 1u);
}

struct L2Case {
  int n;
  double max_r;
  uint64_t seed;
};

class CrestL2Property : public ::testing::TestWithParam<L2Case> {};

TEST_P(CrestL2Property, DistinctSetsMatchBruteForceSampling) {
  // Every labeled set must be a real region (checked at a witness point);
  // and dense point sampling must not discover sets the sweep missed.
  const L2Case c = GetParam();
  Rng rng(c.seed);
  const std::vector<NnCircle> disks = RandomDisks(c.n, rng, c.max_r);
  SizeInfluence measure;
  DistinctSetSink sink;
  RunCrestL2(disks, measure, &sink);
  const auto labeled = DistinctNonEmpty(sink);

  // (a) sampling: every sampled point's RNN set appears among the labels.
  std::map<std::vector<int32_t>, int> sampled;
  for (int q = 0; q < 20000; ++q) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    auto rnn = BruteForceRnnSet(p, disks, Metric::kL2);
    if (!rnn.empty()) sampled[std::move(rnn)]++;
  }
  for (const auto& [set, count] : sampled) {
    ASSERT_TRUE(labeled.count(set))
        << "sampled set of size " << set.size() << " seen " << count
        << " times but never labeled";
  }
  // (b) coverage sanity: the sweep found at least every sampled set.
  EXPECT_GE(labeled.size(), sampled.size());
}

TEST_P(CrestL2Property, MaxInfluenceMatchesDenseSampling) {
  const L2Case c = GetParam();
  Rng rng(c.seed + 1);
  const std::vector<NnCircle> disks = RandomDisks(c.n, rng, c.max_r);
  SizeInfluence measure;
  MaxInfluenceSink sink;
  RunCrestL2(disks, measure, &sink);
  ASSERT_TRUE(sink.HasResult());
  double sampled_max = 0.0;
  for (int q = 0; q < 30000; ++q) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    sampled_max = std::max(
        sampled_max, static_cast<double>(
                         BruteForceRnnSet(p, disks, Metric::kL2).size()));
  }
  // Sampling can only under-estimate.
  EXPECT_GE(sink.max_influence(), sampled_max);
  // The witness region must be real: its center's oracle set has the
  // reported influence (witness boxes of curved regions contain their
  // region's points; use the reported RNN set directly instead).
  EXPECT_EQ(static_cast<double>(sink.witness_rnn().size()),
            sink.max_influence());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrestL2Property,
    ::testing::Values(L2Case{3, 0.3, 110}, L2Case{8, 0.25, 111},
                      L2Case{20, 0.2, 112}, L2Case{60, 0.12, 113},
                      L2Case{150, 0.07, 114}, L2Case{40, 0.4, 115}),
    [](const ::testing::TestParamInfo<L2Case>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_seed" +
             std::to_string(param_info.param.seed);
    });

TEST(CrestL2Test, RegressionSharedFacilityMultiCrossing) {
  // Minimized from a real city workload: clients 0, 2, 3 sit on the same
  // vertical line as their shared facility (their disks are mutually
  // tangent at the facility and bottom out exactly there), and disks 1, 4,
  // 5 cross that point too. At the merged crossing event, arcs jump across
  // the preserved adjacency (0L, 2L) without breaking it, which an
  // adjacency-diff without involvement tracking misses: the region
  // {0,1,2,3,5} was silently dropped.
  const std::vector<NnCircle> disks{
      {{-73.727000000000004, 40.739214085980684}, 0.018247869191817756, 0},
      {{-73.731741082670993, 40.739358309772214}, 0.018993339601061754, 1},
      {{-73.727000000000004, 40.731623653444096}, 0.010657436655229446, 2},
      {{-73.727000000000004, 40.744741271100217}, 0.02377505431135063, 3},
      {{-73.74260115632913, 40.739717067851984}, 0.024392426988658612, 4},
      {{-73.754604017271447, 40.758993371509767}, 0.04698985279493266, 5}};
  SizeInfluence measure;
  DistinctSetSink sink;
  RunCrestL2(disks, measure, &sink);
  const Point p{-73.719839329296448, 40.727626738716111};
  const auto want = BruteForceRnnSet(p, disks, Metric::kL2);
  ASSERT_EQ(want, (std::vector<int32_t>{0, 1, 2, 3, 5}));
  EXPECT_TRUE(sink.sets().count(want));
}

TEST(CrestL2Test, SharedFacilityDegeneracyProperty) {
  // Stress the common-point degeneracy directly: many clients share one
  // facility, so every NN-circle passes exactly through it. The sweep must
  // still agree with the oracle at sampled points.
  Rng rng(117);
  std::vector<Point> clients;
  for (int i = 0; i < 60; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  // A handful of clients exactly aligned with the facility (vertical and
  // horizontal), maximizing tangency degeneracies.
  const Point f{0.5, 0.5};
  for (const double d : {0.05, 0.1, 0.2, 0.3}) {
    clients.push_back({f.x, f.y + d});
    clients.push_back({f.x, f.y - d});
    clients.push_back({f.x + d, f.y});
    clients.push_back({f.x - d, f.y});
  }
  const auto disks = BuildNnCircles(clients, {f}, Metric::kL2);
  SizeInfluence measure;
  DistinctSetSink sink;
  RunCrestL2(disks, measure, &sink);
  int checked = 0;
  for (int q = 0; q < 8000; ++q) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const auto rnn = BruteForceRnnSet(p, disks, Metric::kL2);
    if (rnn.empty()) continue;
    ASSERT_TRUE(sink.sets().count(rnn)) << "missing set of size "
                                        << rnn.size();
    ++checked;
  }
  EXPECT_GT(checked, 4000);
}

TEST(CrestL2Test, MonochromaticWorkload) {
  // O = F under L2: RNN sets are at most 6-sized (Korn et al., Section
  // VII-A) and the sweep must agree with the oracle.
  Rng rng(118);
  std::vector<Point> points;
  for (int i = 0; i < 250; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const auto disks = BuildMonochromaticNnCircles(points, Metric::kL2);
  SizeInfluence measure;
  DistinctSetSink sink;
  MaxInfluenceSink max_sink;
  TeeSink tee({&sink, &max_sink});
  RunCrestL2(disks, measure, &tee);
  ASSERT_TRUE(max_sink.HasResult());
  EXPECT_LE(max_sink.max_influence(), 6.0);
  for (int q = 0; q < 4000; ++q) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const auto rnn = BruteForceRnnSet(p, disks, Metric::kL2);
    if (!rnn.empty()) {
      ASSERT_TRUE(sink.sets().count(rnn));
    }
  }
}

TEST(CrestL2Test, RealNnCirclesWorkload) {
  // End-to-end: NN-circles from a bichromatic workload under L2.
  Rng rng(116);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 120; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 12; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const auto disks = BuildNnCircles(clients, facilities, Metric::kL2);
  SizeInfluence measure;
  DistinctSetSink sink;
  RunCrestL2(disks, measure, &sink);
  const auto labeled = DistinctNonEmpty(sink);
  EXPECT_GE(labeled.size(), 100u);  // at least one region per client circle
  for (int q = 0; q < 5000; ++q) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const auto rnn = BruteForceRnnSet(p, disks, Metric::kL2);
    if (!rnn.empty()) {
      ASSERT_TRUE(labeled.count(rnn));
      ASSERT_DOUBLE_EQ(labeled.at(rnn), static_cast<double>(rnn.size()));
    }
  }
}

// --- Event-density slab balancing ----------------------------------------

TEST(SlabBoundariesL2Test, BoundariesAreOrderedWithInfiniteRails) {
  Rng rng(123);
  const auto disks = RandomDisks(60, rng);
  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    const std::vector<double> bounds = SlabBoundariesL2(disks, shards);
    ASSERT_EQ(bounds.size(), shards + 1);
    EXPECT_TRUE(std::isinf(bounds.front()) && bounds.front() < 0);
    EXPECT_TRUE(std::isinf(bounds.back()) && bounds.back() > 0);
    for (size_t s = 0; s + 1 < bounds.size(); ++s) {
      EXPECT_LE(bounds[s], bounds[s + 1]);
    }
  }
}

TEST(SlabBoundariesL2Test, EmptyAndDegenerateInputsYieldInfiniteSlabs) {
  const std::vector<double> none = SlabBoundariesL2({}, 4);
  ASSERT_EQ(none.size(), 5u);
  // No events at all: every interior cut collapses onto the left rail.
  for (size_t s = 1; s + 1 < none.size(); ++s) {
    EXPECT_TRUE(std::isinf(none[s]));
  }
  const std::vector<NnCircle> zero_radius{{{0.5, 0.5}, 0.0, 0}};
  const std::vector<double> degenerate = SlabBoundariesL2(zero_radius, 2);
  ASSERT_EQ(degenerate.size(), 3u);
  EXPECT_TRUE(std::isinf(degenerate[1]));
}

TEST(SlabBoundariesL2Test, HotIntersectionClusterSplitsAcrossSlabs) {
  // A dense pairwise-crossing knot near x = 0.5 plus many non-overlapping
  // disks spread over [0, 10]. Counting only per-disk x-extremes (the old
  // quantile cut) the knot carries ~6% of the events, so no quarter cut
  // lands inside it and one slab sweeps every crossing; weighted by
  // estimated crossing density, at least one interior cut must fall
  // within the knot.
  std::vector<NnCircle> disks;
  int32_t id = 0;
  Rng rng(77);
  for (int i = 0; i < 12; ++i) {  // ~66 crossing pairs inside [0.46, 0.54]
    disks.push_back(NnCircle{
        {0.5 + rng.Uniform(-0.01, 0.01), 0.5 + rng.Uniform(-0.01, 0.01)},
        0.03, id++});
  }
  for (int i = 0; i < 188; ++i) {  // sparse, pairwise disjoint
    disks.push_back(
        NnCircle{{0.05 * i + rng.Uniform(0.0, 0.01), 3.0}, 0.002, id++});
  }
  const std::vector<double> bounds = SlabBoundariesL2(disks, 4);
  ASSERT_EQ(bounds.size(), 5u);
  bool cut_in_cluster = false;
  for (size_t s = 1; s + 1 < bounds.size(); ++s) {
    cut_in_cluster |= bounds[s] >= 0.4 && bounds[s] <= 0.6;
  }
  EXPECT_TRUE(cut_in_cluster)
      << "no interior cut inside the crossing-heavy cluster";

  // Balance is a heuristic; output must not depend on it. Same raster
  // bit-for-bit at every slab count over this adversarial input.
  SizeInfluence measure;
  DistinctSetSink reference;
  RunCrestL2(disks, measure, &reference);
  for (const int slabs : {2, 4, 8}) {
    std::vector<DistinctSetSink> sinks(slabs);
    std::vector<RegionLabelSink*> ptrs;
    for (auto& s : sinks) ptrs.push_back(&s);
    RunCrestL2Parallel(disks, measure, ptrs);
    std::map<std::vector<int32_t>, double> merged;
    for (const auto& s : sinks) {
      for (const auto& [set, influence] : s.sets()) merged[set] = influence;
    }
    for (const auto& [set, influence] : reference.sets()) {
      ASSERT_TRUE(merged.count(set)) << "slabs=" << slabs;
      ASSERT_EQ(merged.at(set), influence) << "slabs=" << slabs;
    }
  }
}

TEST(SlabBoundariesL2Test, SampleCapKeepsCutsDeterministic) {
  Rng rng(321);
  const auto disks = RandomDisks(150, rng);
  const auto a = SlabBoundariesL2(disks, 4, 32);
  const auto b = SlabBoundariesL2(disks, 4, 32);
  EXPECT_EQ(a, b);  // stride sampling, no RNG
  // A different cap may cut elsewhere but must stay well-formed.
  const auto c = SlabBoundariesL2(disks, 4, 8);
  ASSERT_EQ(c.size(), 5u);
  for (size_t s = 0; s + 1 < c.size(); ++s) EXPECT_LE(c[s], c[s + 1]);
}

}  // namespace
}  // namespace rnnhm
