#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/circle_geometry.h"
#include "geom/geometry.h"

namespace rnnhm {
namespace {

TEST(MetricTest, DistanceDefinitions) {
  const Point a{1.0, 2.0};
  const Point b{4.0, -2.0};
  EXPECT_DOUBLE_EQ(DistanceLInf(a, b), 4.0);
  EXPECT_DOUBLE_EQ(DistanceL1(a, b), 7.0);
  EXPECT_DOUBLE_EQ(DistanceL2(a, b), 5.0);
  EXPECT_DOUBLE_EQ(DistanceL2Squared(a, b), 25.0);
}

TEST(MetricTest, DispatcherMatchesDirectFunctions) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Point a{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const Point b{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kLInf), DistanceLInf(a, b));
    EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kL1), DistanceL1(a, b));
    EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kL2), DistanceL2(a, b));
  }
}

TEST(MetricTest, MetricInequalities) {
  // Linf <= L2 <= L1 for every pair.
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const Point a{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Point b{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    EXPECT_LE(DistanceLInf(a, b), DistanceL2(a, b) + 1e-12);
    EXPECT_LE(DistanceL2(a, b), DistanceL1(a, b) + 1e-12);
  }
}

TEST(MetricTest, NamesAreStable) {
  EXPECT_EQ(MetricName(Metric::kLInf), "Linf");
  EXPECT_EQ(MetricName(Metric::kL1), "L1");
  EXPECT_EQ(MetricName(Metric::kL2), "L2");
}

TEST(RectTest, ContainmentOpenVsClosed) {
  const Rect r{{0, 0}, {2, 2}};
  EXPECT_TRUE(r.ContainsClosed({0, 0}));
  EXPECT_FALSE(r.ContainsOpen({0, 0}));
  EXPECT_TRUE(r.ContainsOpen({1, 1}));
  EXPECT_FALSE(r.ContainsClosed({2.1, 1}));
}

TEST(RectTest, IntersectsAndContains) {
  const Rect a{{0, 0}, {2, 2}};
  const Rect b{{1, 1}, {3, 3}};
  const Rect c{{2, 2}, {3, 3}};  // touching corner counts (closed rects)
  const Rect d{{2.5, 0}, {3, 1}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(d));
  EXPECT_TRUE(Rect({{-1, -1}, {4, 4}}).Contains(a));
  EXPECT_FALSE(a.Contains(b));
}

TEST(RectTest, UnionAreaEnlargement) {
  const Rect a{{0, 0}, {1, 1}};
  const Rect b{{2, 2}, {3, 4}};
  const Rect u = a.Union(b);
  EXPECT_EQ(u, Rect({{0, 0}, {3, 4}}));
  EXPECT_DOUBLE_EQ(a.Area(), 1.0);
  EXPECT_DOUBLE_EQ(b.Area(), 2.0);
  EXPECT_DOUBLE_EQ(u.Area(), 12.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 11.0);
}

TEST(RectTest, EmptyRectIsUnionIdentity) {
  const Rect e = EmptyRect();
  const Rect a{{-1, 2}, {3, 5}};
  EXPECT_EQ(e.Union(a), a);
  EXPECT_EQ(a.Union(e), a);
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
}

TEST(RectTest, MinDistanceL2) {
  const Rect r{{0, 0}, {2, 2}};
  EXPECT_DOUBLE_EQ(r.MinDistanceL2({1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(r.MinDistanceL2({4, 1}), 2.0);
  EXPECT_DOUBLE_EQ(r.MinDistanceL2({5, 6}), 5.0);
}

TEST(NnCircleTest, BoundsAndContainsPerMetric) {
  const NnCircle c{{0, 0}, 1.0, 7};
  EXPECT_EQ(c.Bounds(), Rect({{-1, -1}, {1, 1}}));
  // Corner point: inside the square, outside diamond and disk.
  const Point corner{0.9, 0.9};
  EXPECT_TRUE(c.Contains(corner, Metric::kLInf));
  EXPECT_FALSE(c.Contains(corner, Metric::kL1));
  EXPECT_FALSE(c.Contains(corner, Metric::kL2));
  // Boundary counts as inside (closed circle).
  EXPECT_TRUE(c.Contains({1.0, 0.0}, Metric::kLInf));
  EXPECT_TRUE(c.Contains({1.0, 0.0}, Metric::kL1));
  EXPECT_TRUE(c.Contains({1.0, 0.0}, Metric::kL2));
}

TEST(RotationTest, RoundTripIsIdentity) {
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const Point p{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    const Point q = RotateFromLInf(RotateToLInf(p));
    EXPECT_NEAR(q.x, p.x, 1e-9);
    EXPECT_NEAR(q.y, p.y, 1e-9);
  }
}

TEST(RotationTest, L1BecomesScaledLInf) {
  // Section VII-B: after the pi/4 rotation, L-infinity distance equals the
  // original L1 distance divided by sqrt(2); NN relations are preserved.
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const Point a{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const Point b{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const double got = DistanceLInf(RotateToLInf(a), RotateToLInf(b));
    EXPECT_NEAR(got, DistanceL1(a, b) / std::sqrt(2.0), 1e-9);
  }
}

TEST(CircleIntersectionTest, DisjointContainedTangent) {
  EXPECT_EQ(IntersectCircles({0, 0}, 1, {5, 0}, 1).count, 0);    // disjoint
  EXPECT_EQ(IntersectCircles({0, 0}, 3, {0.5, 0}, 1).count, 0);  // contained
  EXPECT_EQ(IntersectCircles({0, 0}, 1, {0, 0}, 1).count, 0);    // coincident
  const CircleIntersection tangent = IntersectCircles({0, 0}, 1, {2, 0}, 1);
  ASSERT_EQ(tangent.count, 1);
  EXPECT_NEAR(tangent.points[0].x, 1.0, 1e-12);
  EXPECT_NEAR(tangent.points[0].y, 0.0, 1e-12);
}

TEST(CircleIntersectionTest, PointsLieOnBothBoundaries) {
  Rng rng(5);
  int proper = 0;
  for (int i = 0; i < 500; ++i) {
    const Point c0{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    const Point c1{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    const double r0 = rng.Uniform(0.1, 2.0);
    const double r1 = rng.Uniform(0.1, 2.0);
    const CircleIntersection isect = IntersectCircles(c0, r0, c1, r1);
    EXPECT_EQ(isect.count == 2, CirclesProperlyIntersect(c0, r0, c1, r1));
    for (int k = 0; k < isect.count; ++k) {
      EXPECT_NEAR(DistanceL2(isect.points[k], c0), r0, 1e-9);
      EXPECT_NEAR(DistanceL2(isect.points[k], c1), r1, 1e-9);
    }
    proper += isect.count == 2;
  }
  EXPECT_GT(proper, 50);  // the sweep actually exercised intersections
}

TEST(ArcYTest, MatchesCircleEquationAndClamps) {
  const Point c{1.0, 2.0};
  const double r = 2.0;
  EXPECT_DOUBLE_EQ(ArcYAt(c, r, true, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(ArcYAt(c, r, false, 1.0), 0.0);
  EXPECT_NEAR(ArcYAt(c, r, true, 2.0), 2.0 + std::sqrt(3.0), 1e-12);
  // Clamped at and beyond the extremes.
  EXPECT_DOUBLE_EQ(ArcYAt(c, r, true, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(ArcYAt(c, r, true, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(ArcYAt(c, r, false, -9.0), 2.0);
}

}  // namespace
}  // namespace rnnhm
