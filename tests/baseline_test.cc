#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/baseline.h"
#include "core/brute_force.h"
#include "core/crest.h"
#include "heatmap/influence.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> RandomCircles(int n, Rng& rng, double max_r = 0.15) {
  std::vector<NnCircle> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.01, max_r), i});
  }
  return out;
}

std::map<std::vector<int32_t>, double> DistinctNonEmpty(
    const DistinctSetSink& sink) {
  std::map<std::vector<int32_t>, double> out;
  for (const auto& [set, influence] : sink.sets()) {
    if (!set.empty()) out[set] = influence;
  }
  return out;
}

TEST(BaselineTest, SingleSquareSingleCell) {
  const std::vector<NnCircle> circles{{{0.5, 0.5}, 0.25, 0}};
  SizeInfluence measure;
  CollectingSink sink;
  const BaselineStats stats = RunBaseline(circles, measure, &sink);
  EXPECT_EQ(stats.num_cells, 1u);
  ASSERT_EQ(sink.labels().size(), 1u);
  EXPECT_EQ(sink.labels()[0].rnn, (std::vector<int32_t>{0}));
}

TEST(BaselineTest, GridCellCountIsQuadraticInTheWorstCase) {
  // Two diagonally overlapping squares -> 3x3 grid cells (the baseline
  // fragments 7 actual regions into 9 cells).
  const std::vector<NnCircle> circles{{{0.4, 0.5}, 0.2, 0},
                                      {{0.6, 0.7}, 0.2, 1}};
  SizeInfluence measure;
  CountingSink counter;
  const BaselineStats stats = RunBaseline(circles, measure, &counter);
  EXPECT_EQ(stats.num_cells, 9u);
  EXPECT_EQ(stats.num_cells, counter.count());
}

TEST(BaselineTest, EveryCellMatchesOracle) {
  Rng rng(90);
  const std::vector<NnCircle> circles = RandomCircles(40, rng);
  SizeInfluence measure;
  CollectingSink sink;
  RunBaseline(circles, measure, &sink);
  for (const auto& label : sink.labels()) {
    const Point center = label.subregion.Center();
    const auto want = BruteForceRnnSet(center, circles, Metric::kLInf);
    ASSERT_EQ(label.rnn, want);
  }
}

class BaselineBackendTest : public ::testing::TestWithParam<EnclosureBackend> {
};

TEST_P(BaselineBackendTest, AgreesWithCrestOnDistinctSets) {
  Rng rng(91);
  const std::vector<NnCircle> circles = RandomCircles(50, rng);
  SizeInfluence measure;
  DistinctSetSink via_baseline;
  RunBaseline(circles, measure, &via_baseline, GetParam());
  DistinctSetSink via_crest;
  RunCrest(circles, measure, &via_crest);
  // The baseline's grid may label empty cells inside the hull that CREST
  // never emits; non-empty sets must agree exactly.
  EXPECT_EQ(DistinctNonEmpty(via_baseline), DistinctNonEmpty(via_crest));
}

TEST_P(BaselineBackendTest, BackendsAgreeWithEachOther) {
  Rng rng(92);
  const std::vector<NnCircle> circles = RandomCircles(80, rng);
  SizeInfluence measure;
  DistinctSetSink seg, rt;
  RunBaseline(circles, measure, &seg, EnclosureBackend::kSegmentTree);
  RunBaseline(circles, measure, &rt, EnclosureBackend::kRTree);
  EXPECT_EQ(seg.sets(), rt.sets());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BaselineBackendTest,
    ::testing::Values(EnclosureBackend::kSegmentTree,
                      EnclosureBackend::kRTree, EnclosureBackend::kQuadTree,
                      EnclosureBackend::kIntervalTree),
    [](const ::testing::TestParamInfo<EnclosureBackend>& param_info) {
      switch (param_info.param) {
        case EnclosureBackend::kSegmentTree:
          return "SegmentTree";
        case EnclosureBackend::kRTree:
          return "RTree";
        case EnclosureBackend::kQuadTree:
          return "QuadTree";
        case EnclosureBackend::kIntervalTree:
          return "IntervalTree";
      }
      return "Unknown";
    });

TEST(BaselineTest, LabelsMoreCellsThanCrestLabelsRegions) {
  // The baseline's key weakness (Section IV): m grows toward Theta(n^2)
  // while CREST's k stays Theta(r).
  Rng rng(93);
  const std::vector<NnCircle> circles = RandomCircles(120, rng, 0.3);
  SizeInfluence measure;
  CountingSink baseline_counter, crest_counter;
  const BaselineStats bs = RunBaseline(circles, measure, &baseline_counter);
  const CrestStats cs = RunCrest(circles, measure, &crest_counter);
  EXPECT_GT(bs.num_cells, cs.num_labelings);
  EXPECT_EQ(bs.num_enclosure_queries, bs.num_cells);
}

TEST(BaselineTest, L1VariantAgreesWithCrestL1) {
  Rng rng(94);
  std::vector<NnCircle> l1_circles;
  for (int i = 0; i < 40; ++i) {
    l1_circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                                  rng.Uniform(0.02, 0.1), i});
  }
  SizeInfluence measure;
  DistinctSetSink via_baseline, via_crest;
  RunBaselineL1(l1_circles, measure, &via_baseline);
  RunCrestL1(l1_circles, measure, &via_crest);
  EXPECT_EQ(DistinctNonEmpty(via_baseline), DistinctNonEmpty(via_crest));
}

}  // namespace
}  // namespace rnnhm
