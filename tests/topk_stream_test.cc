#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/crest.h"
#include "heatmap/influence.h"
#include "heatmap/postprocess.h"
#include "heatmap/topk_stream.h"

namespace rnnhm {
namespace {

TEST(TopKStreamTest, KeepsBestKDistinct) {
  TopKStreamSink sink(2);
  const Rect r{{0, 0}, {1, 1}};
  const std::vector<int32_t> a{0}, b{1}, c{2}, d{3};
  sink.OnRegionLabel(r, a, 1.0);
  sink.OnRegionLabel(r, b, 5.0);
  sink.OnRegionLabel(r, c, 3.0);
  sink.OnRegionLabel(r, d, 0.5);
  const auto result = sink.Result();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_DOUBLE_EQ(result[0].influence, 5.0);
  EXPECT_DOUBLE_EQ(result[1].influence, 3.0);
  EXPECT_DOUBLE_EQ(sink.Threshold(), 3.0);
}

TEST(TopKStreamTest, DuplicateSetsCountOnce) {
  TopKStreamSink sink(3);
  const Rect r{{0, 0}, {1, 1}};
  const std::vector<int32_t> a{7, 3};
  for (int i = 0; i < 10; ++i) sink.OnRegionLabel(r, a, 4.0);
  const auto result = sink.Result();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].rnn, (std::vector<int32_t>{3, 7}));  // sorted
}

TEST(TopKStreamTest, ZeroKIsANoOp) {
  TopKStreamSink sink(0);
  const std::vector<int32_t> a{0};
  sink.OnRegionLabel(Rect{{0, 0}, {1, 1}}, a, 9.0);
  EXPECT_TRUE(sink.Result().empty());
}

TEST(TopKStreamTest, ThresholdIsMinusInfinityUntilFull) {
  TopKStreamSink sink(2);
  const std::vector<int32_t> a{0};
  EXPECT_LT(sink.Threshold(), -1e308);
  sink.OnRegionLabel(Rect{{0, 0}, {1, 1}}, a, 1.0);
  EXPECT_LT(sink.Threshold(), -1e308);
  const std::vector<int32_t> b{1};
  sink.OnRegionLabel(Rect{{0, 0}, {1, 1}}, b, 2.0);
  EXPECT_DOUBLE_EQ(sink.Threshold(), 1.0);
}

TEST(TopKStreamTest, AgreesWithRegionQuerySinkOnRealSweep) {
  Rng rng(620);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 150; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.03, 0.2), i});
  }
  SizeInfluence measure;
  for (const size_t k : {1u, 5u, 20u}) {
    TopKStreamSink stream(k);
    RegionQuerySink reference;
    TeeSink tee({&stream, &reference});
    RunCrest(circles, measure, &tee);
    const auto got = stream.Result();
    const auto want = reference.TopK(k);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[i].influence, want[i].influence) << "k=" << k;
      EXPECT_EQ(got[i].rnn, want[i].rnn) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace rnnhm
