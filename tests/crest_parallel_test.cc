#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/brute_force.h"
#include "core/crest.h"
#include "core/crest_parallel.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"
#include "heatmap/raster_sink.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> RandomCircles(int n, Rng& rng, double max_r = 0.15) {
  std::vector<NnCircle> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.01, max_r), i});
  }
  return out;
}

class ParallelProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelProperty, ShardUnionEqualsSequentialDistinctSets) {
  const auto [n, shards] = GetParam();
  Rng rng(1100 + n + shards);
  const auto circles = RandomCircles(n, rng);
  SizeInfluence measure;

  DistinctSetSink sequential;
  RunCrest(circles, measure, &sequential);

  std::vector<DistinctSetSink> shard_sinks(shards);
  std::vector<RegionLabelSink*> sink_ptrs;
  for (auto& s : shard_sinks) sink_ptrs.push_back(&s);
  const CrestStats stats = RunCrestParallel(circles, measure, sink_ptrs);
  EXPECT_GE(stats.num_labelings, sequential.sets().size() - 1);

  std::map<std::vector<int32_t>, double> merged;
  for (const auto& s : shard_sinks) {
    for (const auto& [set, influence] : s.sets()) merged[set] = influence;
  }
  EXPECT_EQ(merged, sequential.sets());
}

TEST_P(ParallelProperty, ParallelRasterEqualsSequentialRaster) {
  const auto [n, shards] = GetParam();
  Rng rng(1200 + n + shards);
  const auto circles = RandomCircles(n, rng);
  SizeInfluence measure;
  const Rect domain{{-0.2, -0.2}, {1.2, 1.2}};

  const HeatmapGrid sequential =
      BuildHeatmapLInf(circles, measure, domain, 100, 100);

  HeatmapGrid parallel(100, 100, domain, measure.Evaluate({}));
  RasterStripSink raster(&parallel);
  CrestOptions options;
  options.strip_sink = &raster;
  std::vector<CountingSink> shard_sinks(shards);
  std::vector<RegionLabelSink*> sink_ptrs;
  for (auto& s : shard_sinks) sink_ptrs.push_back(&s);
  RunCrestParallel(circles, measure, sink_ptrs, options);

  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 100; ++j) {
      ASSERT_DOUBLE_EQ(parallel.At(i, j), sequential.At(i, j))
          << "pixel " << i << "," << j << " shards=" << shards;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelProperty,
    ::testing::Combine(::testing::Values(10, 100, 400),
                       ::testing::Values(2, 4, 7)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_shards" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(ParallelCrestTest, SingleShardMatchesSequentialExactly) {
  Rng rng(1300);
  const auto circles = RandomCircles(80, rng);
  SizeInfluence measure;
  CountingSink sequential, parallel;
  const CrestStats s1 = RunCrest(circles, measure, &sequential);
  RegionLabelSink* sinks[] = {&parallel};
  const CrestStats s2 = RunCrestParallel(circles, measure, sinks);
  EXPECT_EQ(s1.num_labelings, s2.num_labelings);
  EXPECT_EQ(sequential.count(), parallel.count());
}

TEST(ParallelCrestTest, HeavyDuplicateBoundaries) {
  // Many rectangles sharing identical x-sides collapse slab boundaries;
  // empty slabs must no-op and the union must stay correct.
  std::vector<NnCircle> circles;
  for (int i = 0; i < 40; ++i) {
    circles.push_back(
        NnCircle{{0.5, 0.1 + 0.02 * i}, 0.25, i});  // identical x-extents
  }
  SizeInfluence measure;
  DistinctSetSink sequential;
  RunCrest(circles, measure, &sequential);
  std::vector<DistinctSetSink> shard_sinks(4);
  std::vector<RegionLabelSink*> sink_ptrs;
  for (auto& s : shard_sinks) sink_ptrs.push_back(&s);
  RunCrestParallel(circles, measure, sink_ptrs);
  std::map<std::vector<int32_t>, double> merged;
  for (const auto& s : shard_sinks) {
    for (const auto& [set, influence] : s.sets()) merged[set] = influence;
  }
  EXPECT_EQ(merged, sequential.sets());
}

TEST(ParallelCrestTest, PerShardMeasuresForUnsafeMeasures) {
  // CapacityInfluence has per-instance scratch: one instance per shard.
  Rng rng(1400);
  const auto circles = RandomCircles(100, rng);
  std::vector<int32_t> client_nn(100, 0);
  const std::vector<int32_t> caps{50};
  std::vector<CapacityInfluence> measures;
  measures.reserve(4);
  for (int s = 0; s < 4; ++s) measures.emplace_back(client_nn, caps, 10);
  std::vector<const InfluenceMeasure*> measure_ptrs;
  for (auto& m : measures) measure_ptrs.push_back(&m);
  std::vector<DistinctSetSink> shard_sinks(4);
  std::vector<RegionLabelSink*> sink_ptrs;
  for (auto& s : shard_sinks) sink_ptrs.push_back(&s);
  RunCrestParallel(circles, measure_ptrs, sink_ptrs);

  CapacityInfluence reference(client_nn, caps, 10);
  DistinctSetSink sequential;
  RunCrest(circles, reference, &sequential);
  std::map<std::vector<int32_t>, double> merged;
  for (const auto& s : shard_sinks) {
    for (const auto& [set, influence] : s.sets()) merged[set] = influence;
  }
  EXPECT_EQ(merged, sequential.sets());
}

TEST(ParallelCrestTest, StripsHelperRasterMatchesSequentialSweep) {
  // RunCrestParallelStrips discards labels and feeds only the strip sink;
  // the painted raster must be bit-identical to a sequential sweep's.
  Rng rng(1500);
  const auto circles = RandomCircles(120, rng);
  SizeInfluence measure;
  const Rect domain{{-0.2, -0.2}, {1.2, 1.2}};

  HeatmapGrid sequential(96, 96, domain, measure.Evaluate({}));
  {
    RasterStripSink raster(&sequential);
    CountingSink counter;
    CrestOptions options;
    options.strip_sink = &raster;
    RunCrest(circles, measure, &counter, options);
  }
  for (const int slabs : {1, 2, 4, 7}) {
    HeatmapGrid parallel(96, 96, domain, measure.Evaluate({}));
    RasterStripSink raster(&parallel);
    CrestOptions options;
    options.strip_sink = &raster;
    const CrestStats stats =
        RunCrestParallelStrips(circles, measure, slabs, options);
    EXPECT_GT(stats.num_labelings, 0u);
    ASSERT_EQ(parallel.values().size(), sequential.values().size());
    for (size_t i = 0; i < parallel.values().size(); ++i) {
      ASSERT_EQ(parallel.values()[i], sequential.values()[i])
          << "slabs " << slabs << ", flat index " << i;
    }
  }
}

}  // namespace
}  // namespace rnnhm
