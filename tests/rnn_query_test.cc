#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/brute_force.h"
#include "query/rnn_query.h"

namespace rnnhm {
namespace {

TEST(RnnQueryTest, HandExample) {
  // Fig. 4: two clients, one facility; both NN-circles reach f1.
  const std::vector<Point> clients{{1, 1}, {3, 2}};
  const std::vector<Point> facilities{{2, 1}};
  RnnQueryEngine engine(clients, facilities, Metric::kLInf);
  // A point inside both NN-circles.
  EXPECT_EQ(engine.Query({2.0, 1.2}), (std::vector<int32_t>{0, 1}));
  // Far away: nobody adopts it.
  EXPECT_TRUE(engine.Query({10, 10}).empty());
  EXPECT_EQ(engine.QueryCount({2.0, 1.2}), 2u);
}

struct QueryCase {
  Metric metric;
  bool monochromatic;
  uint64_t seed;
};

class RnnQueryProperty : public ::testing::TestWithParam<QueryCase> {};

TEST_P(RnnQueryProperty, MatchesBruteForceOracle) {
  const QueryCase c = GetParam();
  Rng rng(c.seed);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 300; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 30; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  auto engine = c.monochromatic
                    ? RnnQueryEngine(clients, c.metric)
                    : RnnQueryEngine(clients, facilities, c.metric);
  for (int q = 0; q < 500; ++q) {
    const Point p{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)};
    const auto got = engine.Query(p);
    const auto want = BruteForceRnnSet(p, engine.circles(), c.metric);
    ASSERT_EQ(got, want);
    ASSERT_EQ(engine.QueryCount(p), want.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RnnQueryProperty,
    ::testing::Values(QueryCase{Metric::kLInf, false, 500},
                      QueryCase{Metric::kL1, false, 501},
                      QueryCase{Metric::kL2, false, 502},
                      QueryCase{Metric::kLInf, true, 503},
                      QueryCase{Metric::kL1, true, 504},
                      QueryCase{Metric::kL2, true, 505}),
    [](const ::testing::TestParamInfo<QueryCase>& param_info) {
      return MetricName(param_info.param.metric) +
             (param_info.param.monochromatic ? "_mono" : "_bi");
    });

TEST(RnnQueryTest, MonochromaticRnnSetsAreBounded) {
  // Korn et al.: monochromatic RNN sets have O(1) size.
  Rng rng(506);
  std::vector<Point> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  RnnQueryEngine engine(points, Metric::kL2);
  for (int q = 0; q < 300; ++q) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    EXPECT_LE(engine.QueryCount(p), 6u);  // Section VII-A
  }
}

}  // namespace
}  // namespace rnnhm
