// Tile differential harness: the acceptance gate for domain tiling
// (src/tile/tile_plan.h). For every tested tile grid, metric, and slab
// count, the tiled sweep's stitched raster must be *bit-identical* to the
// untiled slab-parallel builder's — including workloads with circles
// spanning four or more tiles, circles larger than a tile, entirely empty
// tiles, tile boundaries landing exactly on pixel centers, and a domain
// whose extent is not exactly representable (the seam-risk regression:
// boundaries must come from PixelAxis::LowerBound, never independent float
// math). Runs under the `differential` CTest label, so the whole file is
// re-run with RNNHM_DISABLE_SIMD=1.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"
#include "query/heatmap_engine.h"
#include "tile/tile_plan.h"

namespace rnnhm {
namespace {

constexpr int kSlabCounts[] = {1, 2, 4, 8};
struct TileGrid {
  int rows;
  int cols;
};
constexpr TileGrid kTileGrids[] = {{1, 1}, {1, 4}, {4, 1}, {3, 3}, {5, 2}};
const Metric kMetrics[] = {Metric::kLInf, Metric::kL1, Metric::kL2};

std::string CaseName(Metric metric, const TileGrid& g, int slabs) {
  return MetricName(metric) + " " + std::to_string(g.rows) + "x" +
         std::to_string(g.cols) + " slabs=" + std::to_string(slabs);
}

std::vector<NnCircle> MakeCircles(uint64_t seed, int n, double r_lo,
                                  double r_hi) {
  Rng rng(seed);
  std::vector<NnCircle> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(r_lo, r_hi), i});
  }
  return out;
}

HeatmapGrid Untiled(Metric metric, const std::vector<NnCircle>& circles,
                    const InfluenceMeasure& measure, const Rect& domain,
                    int width, int height, int num_slabs) {
  switch (metric) {
    case Metric::kLInf:
      return BuildHeatmapLInfParallel(circles, measure, domain, width, height,
                                      num_slabs);
    case Metric::kL1:
      return BuildHeatmapL1Parallel(circles, measure, domain, width, height,
                                    num_slabs);
    case Metric::kL2:
    default:
      return BuildHeatmapL2Parallel(circles, measure, domain, width, height,
                                    num_slabs);
  }
}

void ExpectTiledMatchesUntiled(const std::vector<NnCircle>& circles,
                               const Rect& domain, int width, int height) {
  SizeInfluence measure;
  for (const Metric metric : kMetrics) {
    const HeatmapGrid reference =
        Untiled(metric, circles, measure, domain, width, height, 1);
    for (const TileGrid& g : kTileGrids) {
      const TilePlan plan(metric, circles, domain, width, height,
                          TilePlanOptions{g.rows, g.cols});
      for (const int slabs : kSlabCounts) {
        const HeatmapGrid tiled = plan.Run(measure, slabs);
        EXPECT_EQ(reference.values(), tiled.values())
            << CaseName(metric, g, slabs);
      }
    }
  }
}

TEST(TileDifferentialTest, RandomWorkloadAllGridsMetricsSlabs) {
  const Rect domain{{-0.05, -0.05}, {1.05, 1.05}};
  ExpectTiledMatchesUntiled(MakeCircles(101, 60, 0.02, 0.2), domain, 48, 48);
}

TEST(TileDifferentialTest, NonSquareRasterAndDomain) {
  const Rect domain{{-0.31250731, -0.27103343}, {1.29310917, 1.31071529}};
  ExpectTiledMatchesUntiled(MakeCircles(202, 50, 0.02, 0.25), domain, 52, 36);
}

// Circles whose influence region overlaps four or more tiles of the 3x3
// grid, verified structurally before the bit-compare.
TEST(TileDifferentialTest, CirclesSpanningManyTiles) {
  std::vector<NnCircle> circles = MakeCircles(303, 30, 0.02, 0.1);
  // Centered giants: radius 0.45 over a unit domain covers every tile of a
  // 3x3 split (tile extent ~0.37), and is also "larger than a tile".
  circles.push_back(NnCircle{{0.5, 0.5}, 0.45, 30});
  circles.push_back(NnCircle{{0.34, 0.61}, 0.4, 31});
  const Rect domain{{0.0, 0.0}, {1.1, 1.1}};
  const TilePlan plan(Metric::kLInf, circles, domain, 48, 48,
                      TilePlanOptions{3, 3});
  int tiles_with_giant = 0;
  for (const Tile& t : plan.tiles()) {
    for (const int32_t id : t.circles) {
      if (id == 30) {
        ++tiles_with_giant;
        break;
      }
    }
  }
  EXPECT_GE(tiles_with_giant, 4);
  ExpectTiledMatchesUntiled(circles, domain, 48, 48);
}

// All circles clustered in one corner: far tiles get no circles at all and
// must come out as pure background, matching the untiled raster.
TEST(TileDifferentialTest, EmptyTiles) {
  Rng rng(404);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 40; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0.0, 0.2), rng.Uniform(0.0, 0.2)},
                               rng.Uniform(0.01, 0.05), i});
  }
  const Rect domain{{0.0, 0.0}, {1.0, 1.0}};
  const TilePlan plan(Metric::kL2, circles, domain, 48, 48,
                      TilePlanOptions{3, 3});
  int empty_tiles = 0;
  for (const Tile& t : plan.tiles()) {
    if (t.circles.empty()) ++empty_tiles;
  }
  EXPECT_GT(empty_tiles, 0);
  ExpectTiledMatchesUntiled(circles, domain, 48, 48);
}

// Domain [0, 45] at width 45 makes the pixel pitch exactly 1.0, so pixel
// centers (i + 0.5) and the 2x2 cut coordinate 22.5 are all exact doubles:
// the cut lands exactly on the center of pixel 22. The boundary pixel must
// belong to exactly one tile (the right one, by LowerBound's >= convention)
// and the stitch must stay bit-identical.
TEST(TileDifferentialTest, TileBoundaryOnPixelCenter) {
  const Rect domain{{0.0, 0.0}, {45.0, 45.0}};
  const int res = 45;
  const std::vector<TileWindow> windows = TileWindows(domain, res, res, 2, 2);
  EXPECT_EQ(windows[0].col_hi, 22);
  EXPECT_EQ(windows[1].col_lo, 22);
  EXPECT_EQ(windows[0].row_hi, 22);
  Rng rng(505);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 50; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 45), rng.Uniform(0, 45)},
                               rng.Uniform(0.5, 9.0), i});
  }
  ExpectTiledMatchesUntiled(circles, domain, res, res);
}

// Seam-risk regression: a domain whose extents are not exactly
// representable (1/3 and 0.7) over prime resolutions. Tile boundaries are
// derived from PixelAxis::LowerBound over the global center table; if a
// tile edge ever came from independent float math it could disagree with
// the sweeps' span edges on exactly this kind of domain.
TEST(TileDifferentialTest, NonRepresentableDomainWidth) {
  const Rect domain{{0.1, 0.2}, {0.1 + 1.0 / 3.0, 0.9}};
  Rng rng(606);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 45; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0.1, 0.44), rng.Uniform(0.2, 0.9)},
                               rng.Uniform(0.005, 0.08), i});
  }
  ExpectTiledMatchesUntiled(circles, domain, 37, 29);
}

// Degenerate radii ride along with regular circles: zero-radius circles
// are skipped by every sweep, giants cover the whole domain.
TEST(TileDifferentialTest, DegenerateRadii) {
  std::vector<NnCircle> circles = MakeCircles(707, 30, 0.02, 0.15);
  circles.push_back(NnCircle{{0.3, 0.4}, 0.0, 30});
  circles.push_back(NnCircle{{0.6, 0.1}, 0.0, 31});
  circles.push_back(NnCircle{{0.5, 0.5}, 1.0e9, 32});
  const Rect domain{{0.0, 0.0}, {1.0, 1.0}};
  ExpectTiledMatchesUntiled(circles, domain, 40, 40);
}

// Fragment sweeps + stitching (the shard path) are the same bits as the
// in-place tile sweep and the untiled sweep.
TEST(TileDifferentialTest, FragmentStitchMatches) {
  const std::vector<NnCircle> circles = MakeCircles(808, 45, 0.02, 0.2);
  const Rect domain{{-0.02, -0.02}, {1.02, 1.02}};
  SizeInfluence measure;
  for (const Metric metric : kMetrics) {
    const HeatmapGrid reference =
        Untiled(metric, circles, measure, domain, 44, 44, 1);
    const TilePlan plan(metric, circles, domain, 44, 44,
                        TilePlanOptions{2, 3});
    HeatmapGrid stitched(44, 44, domain, measure.Evaluate({}));
    for (const Tile& t : plan.tiles()) {
      if (t.window.empty()) continue;
      const HeatmapGrid fragment = plan.SweepTileFragment(t, measure, 2);
      TilePlan::StitchFragment(t.window, fragment, &stitched);
    }
    EXPECT_EQ(reference.values(), stitched.values()) << MetricName(metric);
  }
}

// HeatmapEngine::ExecuteTiled serves the same bits as Execute for every
// metric and tile grid, and a repeat request restitches entirely from the
// per-tile fragment cache.
TEST(TileDifferentialTest, EngineTiledMatchesExecute) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  options.slabs_per_request = 2;
  options.cache_bytes = 16ull << 20;
  HeatmapEngine engine(measure, options);
  const Rect domain{{-0.05, -0.05}, {1.05, 1.05}};
  for (const Metric metric : kMetrics) {
    const CircleSetHandle handle = engine.registry().Register(
        MakeCircles(909 + static_cast<int>(metric), 40, 0.02, 0.15), metric);
    const HeatmapRequestV2 request{handle, domain, 40, 40};
    const HeatmapResponse reference = engine.Execute(request);
    for (const TileGrid& g : kTileGrids) {
      TiledServeStats first_stats;
      const HeatmapResponse tiled =
          engine.ExecuteTiled(request, g.rows, g.cols, &first_stats);
      EXPECT_EQ(reference.grid.values(), tiled.grid.values())
          << CaseName(metric, g, 2);
      EXPECT_EQ(first_stats.tiles, g.rows * g.cols);
      // Same request again: every fragment must come back from the cache.
      TiledServeStats repeat_stats;
      const HeatmapResponse repeat =
          engine.ExecuteTiled(request, g.rows, g.cols, &repeat_stats);
      EXPECT_EQ(reference.grid.values(), repeat.grid.values());
      EXPECT_TRUE(repeat.from_cache) << CaseName(metric, g, 2);
      EXPECT_EQ(repeat_stats.swept_tiles, 0) << CaseName(metric, g, 2);
      EXPECT_EQ(repeat_stats.cached_tiles, first_stats.swept_tiles);
    }
  }
}

// The tile-granular cache keys: editing one corner circle only invalidates
// the tiles its influence region overlaps — every other tile's fragment is
// served from the cache, and the stitched result still matches a fresh
// Execute of the edited set.
TEST(TileDifferentialTest, EngineTiledEditInvalidatesOnlyOverlappedTiles) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 16ull << 20;
  HeatmapEngine engine(measure, options);
  const Rect domain{{0.0, 0.0}, {1.0, 1.0}};
  // Small radii spread across the whole domain: most 4x4 tiles have
  // circles, and a corner circle's influence stays inside a few tiles.
  std::vector<NnCircle> circles = MakeCircles(1010, 64, 0.01, 0.05);
  circles.push_back(NnCircle{{0.04, 0.05}, 0.03, 64});
  const CircleSetHandle base =
      engine.registry().Register(circles, Metric::kLInf);
  const HeatmapRequestV2 request{base, domain, 48, 48};
  TiledServeStats cold;
  const HeatmapResponse tiled_base = engine.ExecuteTiled(request, 4, 4, &cold);
  EXPECT_EQ(engine.Execute(request).grid.values(), tiled_base.grid.values());
  ASSERT_GT(cold.swept_tiles, 8);  // the population reaches most tiles

  // Nudge the corner circle: only tile (0, 0) (and at most its immediate
  // neighbors) see a different circle subset.
  circles.back().center = {0.06, 0.04};
  const CircleSetHandle edited =
      engine.registry().Register(circles, Metric::kLInf);
  const HeatmapRequestV2 edited_request{edited, domain, 48, 48};
  TiledServeStats warm;
  const HeatmapResponse tiled_edited =
      engine.ExecuteTiled(edited_request, 4, 4, &warm);
  EXPECT_EQ(engine.Execute(edited_request).grid.values(),
            tiled_edited.grid.values());
  EXPECT_GE(warm.swept_tiles, 1);  // the overlapped corner tile resweeps
  EXPECT_LE(warm.swept_tiles, 4);  // ... and only its immediate neighborhood
  EXPECT_EQ(warm.cached_tiles + warm.swept_tiles + warm.background_tiles, 16);
  EXPECT_GT(warm.cached_tiles, warm.swept_tiles);
}

// The shard-facing fragment path: ExecuteTileFragmentChecked returns
// window-sized fragments that stitch into the Execute raster, and rejects
// bad tile ids and empty windows with a Status instead of a crash.
TEST(TileDifferentialTest, EngineTileFragmentsStitch) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 8ull << 20;
  HeatmapEngine engine(measure, options);
  const Rect domain{{-0.02, -0.02}, {1.02, 1.02}};
  const CircleSetHandle handle = engine.registry().Register(
      MakeCircles(1111, 45, 0.02, 0.2), Metric::kL2);
  const HeatmapRequestV2 request{handle, domain, 44, 44};
  const HeatmapResponse reference = engine.Execute(request);
  const std::vector<TileWindow> windows = TileWindows(domain, 44, 44, 2, 3);
  HeatmapGrid stitched(44, 44, domain, measure.Evaluate({}));
  for (int tile_id = 0; tile_id < 6; ++tile_id) {
    std::optional<HeatmapResponse> fragment;
    ASSERT_TRUE(
        engine.ExecuteTileFragmentChecked(request, 2, 3, tile_id, &fragment)
            .ok());
    ASSERT_TRUE(fragment.has_value());
    EXPECT_EQ(fragment->grid.width(), windows[tile_id].width());
    EXPECT_EQ(fragment->grid.height(), windows[tile_id].height());
    TilePlan::StitchFragment(windows[tile_id], fragment->grid, &stitched);
  }
  EXPECT_EQ(reference.grid.values(), stitched.values());

  std::optional<HeatmapResponse> fragment;
  EXPECT_FALSE(
      engine.ExecuteTileFragmentChecked(request, 2, 3, 6, &fragment).ok());
  EXPECT_FALSE(
      engine.ExecuteTileFragmentChecked(request, 0, 3, 0, &fragment).ok());
  // A tile grid finer than the raster leaves some windows empty; asking
  // for one is a client error, not a crash.
  EXPECT_FALSE(
      engine
          .ExecuteTileFragmentChecked(
              HeatmapRequestV2{handle, domain, 2, 2}, 4, 4, 1, &fragment)
          .ok());
}

}  // namespace
}  // namespace rnnhm
