#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/brute_force.h"
#include "heatmap/influence.h"
#include "nn/nn_circle_builder.h"
#include "query/heatmap_session.h"

namespace rnnhm {
namespace {

// Reference: circles rebuilt from scratch for the session's current state.
std::vector<NnCircle> Reference(const HeatmapSession& session) {
  return BuildNnCircles(session.clients(), session.facilities(),
                        session.metric());
}

void ExpectCirclesMatchReference(const HeatmapSession& session) {
  const auto want = Reference(session);
  const auto& got = session.circles();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].center, want[i].center) << "client " << i;
    ASSERT_DOUBLE_EQ(got[i].radius, want[i].radius) << "client " << i;
  }
}

class SessionProperty : public ::testing::TestWithParam<Metric> {};

TEST_P(SessionProperty, InitialCirclesMatchBatchConstruction) {
  Rng rng(1000);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 200; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 20; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  HeatmapSession session(clients, facilities, GetParam());
  ExpectCirclesMatchReference(session);
}

TEST_P(SessionProperty, RandomEditScriptStaysConsistent) {
  const Metric metric = GetParam();
  Rng rng(1001 + static_cast<int>(metric));
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 100; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 10; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  HeatmapSession session(clients, facilities, metric);
  for (int step = 0; step < 120; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.45) {
      const int32_t id =
          static_cast<int32_t>(rng.NextBounded(session.num_clients()));
      session.MoveClient(id, {rng.Uniform(0, 1), rng.Uniform(0, 1)});
    } else if (dice < 0.65) {
      session.AddClient({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    } else if (dice < 0.85) {
      session.AddFacility({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    } else if (session.num_facilities() >= 2) {
      session.RemoveFacility(
          static_cast<int32_t>(rng.NextBounded(session.num_facilities())));
    }
    if (step % 10 == 0) ExpectCirclesMatchReference(session);
  }
  ExpectCirclesMatchReference(session);
}

INSTANTIATE_TEST_SUITE_P(Metrics, SessionProperty,
                         ::testing::Values(Metric::kLInf, Metric::kL1,
                                           Metric::kL2),
                         [](const ::testing::TestParamInfo<Metric>& param_info) {
                           return MetricName(param_info.param);
                         });

TEST(HeatmapSessionTest, RebuildSweepsTheCurrentState) {
  Rng rng(1010);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 120; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 12; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  HeatmapSession session(clients, facilities, Metric::kL1);
  SizeInfluence measure;
  DistinctSetSink before;
  session.Rebuild(measure, &before);
  bool zero_before = false;
  for (const auto& [set, v] : before.sets()) {
    zero_before |= std::binary_search(set.begin(), set.end(), 0);
  }
  EXPECT_TRUE(zero_before);
  // A facility placed exactly on client 0 makes its NN-circle degenerate:
  // the client can no longer be won by any new location, so it must vanish
  // from every region's RNN set.
  session.AddFacility(clients[0]);
  DistinctSetSink after;
  session.Rebuild(measure, &after);
  for (const auto& [set, v] : after.sets()) {
    EXPECT_FALSE(std::binary_search(set.begin(), set.end(), 0));
  }
  for (int q = 0; q < 500; ++q) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const auto rnn = BruteForceRnnSet(p, session.circles(), Metric::kL1);
    if (!rnn.empty()) {
      ASSERT_TRUE(after.sets().count(rnn));
    }
  }
}

TEST(HeatmapSessionTest, MoveClientShrinksAndGrowsItsCircle) {
  HeatmapSession session({{0.0, 0.0}}, {{1.0, 0.0}, {4.0, 0.0}},
                         Metric::kL2);
  EXPECT_DOUBLE_EQ(session.circles()[0].radius, 1.0);
  session.MoveClient(0, {3.5, 0.0});
  EXPECT_DOUBLE_EQ(session.circles()[0].radius, 0.5);  // now nearest to f1
  session.MoveClient(0, {-2.0, 0.0});
  EXPECT_DOUBLE_EQ(session.circles()[0].radius, 3.0);
}

TEST(HeatmapSessionTest, RebuildParallelShardUnionMatchesRebuild) {
  Rng rng(1600);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 150; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 12; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  SizeInfluence measure;
  for (const Metric metric : {Metric::kLInf, Metric::kL1, Metric::kL2}) {
    HeatmapSession session(clients, facilities, metric);
    DistinctSetSink sequential;
    session.Rebuild(measure, &sequential);

    std::vector<DistinctSetSink> shard_sinks(4);
    std::vector<RegionLabelSink*> sink_ptrs;
    for (auto& s : shard_sinks) sink_ptrs.push_back(&s);
    const MetricSweepStats stats =
        session.RebuildParallel(measure, sink_ptrs);
    EXPECT_GT(stats.num_labelings(), 0u);

    std::map<std::vector<int32_t>, double> merged;
    for (const auto& s : shard_sinks) {
      for (const auto& [set, influence] : s.sets()) merged[set] = influence;
    }
    EXPECT_EQ(merged, sequential.sets()) << MetricName(metric);
  }
}

TEST(HeatmapSessionTest, RemoveFacilityRequeriesItsClients) {
  HeatmapSession session({{0.0, 0.0}, {10.0, 0.0}},
                         {{1.0, 0.0}, {9.0, 0.0}}, Metric::kL2);
  EXPECT_DOUBLE_EQ(session.circles()[0].radius, 1.0);
  EXPECT_DOUBLE_EQ(session.circles()[1].radius, 1.0);
  session.RemoveFacility(0);
  EXPECT_DOUBLE_EQ(session.circles()[0].radius, 9.0);  // falls back to f@9
  EXPECT_DOUBLE_EQ(session.circles()[1].radius, 1.0);
}

// --- Publishing into the serving API v2 -----------------------------------

std::vector<Point> RandomPoints(int n, Rng& rng) {
  std::vector<Point> out;
  for (int i = 0; i < n; ++i) {
    out.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  return out;
}

TEST(HeatmapSessionPublishTest, IdenticalSessionsShareOneHandle) {
  Rng rng(5000);
  const auto clients = RandomPoints(80, rng);
  const auto facilities = RandomPoints(8, rng);
  HeatmapSession a(clients, facilities, Metric::kL2);
  HeatmapSession b(clients, facilities, Metric::kL2);
  CircleSetRegistry registry;
  const CircleSetHandle ha = a.PublishCircles(registry);
  const CircleSetHandle hb = b.PublishCircles(registry);
  EXPECT_EQ(ha, hb);  // same workload, same content, one entry
  EXPECT_EQ(registry.size(), 1u);
}

TEST(HeatmapSessionPublishTest, TickingSessionHoldsOneRegistration) {
  Rng rng(5001);
  HeatmapSession session(RandomPoints(60, rng), RandomPoints(6, rng),
                         Metric::kLInf);
  CircleSetRegistry registry;
  CircleSetHandle last = session.PublishCircles(registry);
  for (int tick = 0; tick < 10; ++tick) {
    session.MoveClient(
        static_cast<int32_t>(rng.NextBounded(session.num_clients())),
        {rng.Uniform(0, 1), rng.Uniform(0, 1)});
    const CircleSetHandle next = session.PublishCircles(registry);
    EXPECT_NE(next, last);  // the edit changed the content
    // The previous tick's registration was released: only the newest
    // publication stays resident.
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.Resolve(last), nullptr);
    last = next;
  }
  // Publishing an unchanged state keeps exactly one registration too.
  EXPECT_EQ(session.PublishCircles(registry), last);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(HeatmapSessionPublishTest, RenderThroughEngineMatchesFromScratch) {
  Rng rng(5002);
  const auto clients = RandomPoints(70, rng);
  const auto facilities = RandomPoints(7, rng);
  SizeInfluence measure;
  const Rect domain{{0, 0}, {1, 1}};
  for (const Metric metric : {Metric::kLInf, Metric::kL2}) {
    HeatmapSession session(clients, facilities, metric);
    HeatmapEngineOptions options;
    options.num_threads = 1;
    HeatmapEngine engine(measure, options);
    const HeatmapResponse response =
        session.RenderThroughEngine(engine, domain, 40, 40);
    const HeatmapGrid reference = BuildHeatmapForMetric(
        metric, session.circles(), measure, domain, 40, 40);
    EXPECT_EQ(response.grid.values(), reference.values());
  }
}

TEST(HeatmapSessionPublishTest, IdenticalTicksAcrossSessionsHitTheCache) {
  Rng rng(5003);
  const auto clients = RandomPoints(50, rng);
  const auto facilities = RandomPoints(5, rng);
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 16 << 20;
  HeatmapEngine engine(measure, options);
  const Rect domain{{0, 0}, {1, 1}};

  HeatmapSession a(clients, facilities, Metric::kL2);
  HeatmapSession b(clients, facilities, Metric::kL2);
  const HeatmapResponse first = a.RenderThroughEngine(engine, domain, 32, 32);
  EXPECT_FALSE(first.from_cache);
  // Session b is at the identical state: its tick dedupes to the same
  // handle and is served from the shared engine cache, bit-identically.
  const HeatmapResponse second =
      b.RenderThroughEngine(engine, domain, 32, 32);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.grid.values(), first.grid.values());
  // An edit breaks content equality: fresh sweep, then its revert hits.
  b.MoveClient(0, {0.5, 0.5});
  EXPECT_FALSE(b.RenderThroughEngine(engine, domain, 32, 32).from_cache);
}

TEST(HeatmapSessionPublishTest, ReleasePublicationIsIdempotent) {
  Rng rng(5004);
  HeatmapSession session(RandomPoints(30, rng), RandomPoints(4, rng),
                         Metric::kLInf);
  CircleSetRegistry registry;
  const CircleSetHandle handle = session.PublishCircles(registry);
  ASSERT_TRUE(handle.valid());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(session.ReleasePublication());
  EXPECT_EQ(registry.size(), 0u);
  // Double release is a no-op, never an underflow.
  EXPECT_FALSE(session.ReleasePublication());
  EXPECT_FALSE(session.ReleasePublication());
  // Publishing again still works after a release.
  const CircleSetHandle again = session.PublishCircles(registry);
  EXPECT_TRUE(again.valid());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(session.ReleasePublication());
}

TEST(HeatmapSessionPublishTest, RePublishAfterEvictionCannotUnderflow) {
  // The registry evicts the session's publication behind its back; the
  // session's next Release must not underflow a recycled entry, and a
  // re-publish must register cleanly.
  Rng rng(5005);
  HeatmapSession session(RandomPoints(20, rng), RandomPoints(3, rng),
                         Metric::kLInf);
  CircleSetRegistryOptions options;
  options.max_unpinned_entries = 1;
  CircleSetRegistry registry(options);
  const CircleSetHandle published = session.PublishCircles(registry);
  // Simulate an operator-side release + budget eviction of the entry: a
  // filler set released behind it overflows the 1-entry retention budget.
  ASSERT_TRUE(registry.Release(published));
  const CircleSetHandle filler = registry.Register(
      std::vector<NnCircle>{NnCircle{{0.5, 0.5}, 0.25, 0}}, Metric::kLInf);
  ASSERT_TRUE(registry.Release(filler));
  EXPECT_EQ(registry.Resolve(published), nullptr);
  // The session still thinks it holds `published`: releasing is a no-op.
  EXPECT_FALSE(session.ReleasePublication());
  // And publishing the same content again re-registers from scratch.
  const CircleSetHandle fresh = session.PublishCircles(registry);
  EXPECT_TRUE(fresh.valid());
  EXPECT_NE(registry.Resolve(fresh), nullptr);
}

TEST(HeatmapSessionJournalTest, JournalReplayReproducesCirclesExactly) {
  Rng rng(5006);
  HeatmapSession session(RandomPoints(40, rng), RandomPoints(5, rng),
                         Metric::kL2);
  std::vector<NnCircle> shadow = session.circles();
  session.EnableEditJournal();
  for (int tick = 0; tick < 25; ++tick) {
    const double dice = rng.NextDouble();
    if (dice < 0.4) {
      session.MoveClient(
          static_cast<int32_t>(rng.NextBounded(session.num_clients())),
          {rng.Uniform(0, 1), rng.Uniform(0, 1)});
    } else if (dice < 0.6) {
      session.AddClient({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    } else if (dice < 0.85 || session.num_facilities() < 2) {
      session.AddFacility({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    } else {
      session.RemoveFacility(
          static_cast<int32_t>(rng.NextBounded(session.num_facilities())));
    }
    // Applying the tick's journal to the previous circle vector must land
    // bit-exactly on the session's current circles — same content hash.
    for (const CircleSetEdit& edit : session.TakeCircleEdits()) {
      switch (edit.kind) {
        case CircleSetEdit::Kind::kReplace:
          ASSERT_LT(edit.index, shadow.size());
          shadow[edit.index] = edit.circle;
          break;
        case CircleSetEdit::Kind::kAppend:
          shadow.push_back(edit.circle);
          break;
        case CircleSetEdit::Kind::kSwapRemove:
          ASSERT_LT(edit.index, shadow.size());
          shadow[edit.index] = shadow.back();
          shadow.pop_back();
          break;
      }
    }
    ASSERT_EQ(HashCircleSet(shadow, session.metric()),
              HashCircleSet(session.circles(), session.metric()))
        << "tick " << tick;
  }
  EXPECT_TRUE(session.pending_edits().empty());
}

TEST(HeatmapSessionJournalTest, DisabledJournalRecordsNothing) {
  Rng rng(5007);
  HeatmapSession session(RandomPoints(10, rng), RandomPoints(2, rng),
                         Metric::kLInf);
  session.MoveClient(0, {0.9, 0.9});
  EXPECT_TRUE(session.pending_edits().empty());
  session.EnableEditJournal();
  session.MoveClient(1, {0.1, 0.1});
  EXPECT_FALSE(session.pending_edits().empty());
  // Re-enabling clears the stale journal; disabling stops recording.
  session.EnableEditJournal();
  EXPECT_TRUE(session.pending_edits().empty());
  session.EnableEditJournal(false);
  session.MoveClient(2, {0.2, 0.2});
  EXPECT_TRUE(session.pending_edits().empty());
}

}  // namespace
}  // namespace rnnhm
