#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "heatmap/influence.h"

namespace rnnhm {
namespace {

TEST(SizeInfluenceTest, CountsClients) {
  SizeInfluence m;
  EXPECT_DOUBLE_EQ(m.Evaluate({}), 0.0);
  const std::vector<int32_t> r{3, 1, 7};
  EXPECT_DOUBLE_EQ(m.Evaluate(r), 3.0);
}

TEST(WeightedInfluenceTest, SumsWeights) {
  WeightedInfluence m({1.0, 2.0, 4.0, 8.0});
  const std::vector<int32_t> r{0, 2};
  EXPECT_DOUBLE_EQ(m.Evaluate(r), 5.0);
  EXPECT_DOUBLE_EQ(m.Evaluate({}), 0.0);
}

TEST(WeightedInfluenceTest, UpperBoundIgnoresNegativeOptionals) {
  WeightedInfluence m({1.0, -2.0, 4.0});
  const std::vector<int32_t> committed{0};
  const std::vector<int32_t> optional{1, 2};
  // Bound = 1 + max(0,-2) + max(0,4) = 5; any realizable set is <= 5.
  EXPECT_DOUBLE_EQ(m.UpperBound(committed, optional), 5.0);
  EXPECT_LE(m.Evaluate(std::vector<int32_t>{0, 1, 2}), 5.0);
}

// Naive reference for the capacity measure: recompute every facility's RNN
// count after the steal.
double NaiveCapacity(const std::vector<int32_t>& client_nn,
                     const std::vector<int32_t>& caps, int32_t cand_cap,
                     const std::vector<int32_t>& region) {
  std::vector<int32_t> counts(caps.size(), 0);
  for (const int32_t f : client_nn) ++counts[f];
  for (const int32_t c : region) --counts[client_nn[c]];
  double total = 0.0;
  for (size_t f = 0; f < caps.size(); ++f) {
    total += std::min(caps[f], counts[f]);
  }
  total += std::min<int32_t>(cand_cap, static_cast<int32_t>(region.size()));
  return total;
}

TEST(CapacityInfluenceTest, MatchesNaiveOnHandCase) {
  // 5 clients: NNs are facilities {0,0,1,1,1}; capacities {1, 2}; c(p)=2.
  const std::vector<int32_t> client_nn{0, 0, 1, 1, 1};
  const std::vector<int32_t> caps{1, 2};
  CapacityInfluence m(client_nn, caps, 2);
  // Base: min(1,2) + min(2,3) = 3.
  EXPECT_DOUBLE_EQ(m.Evaluate({}), 3.0);
  // Steal client 0 from facility 0: f0 has 1 left -> min(1,1)=1;
  // candidate serves 1 -> total 1 + 2 + 1 = 4.
  EXPECT_DOUBLE_EQ(m.Evaluate(std::vector<int32_t>{0}), 4.0);
  // Steal all: f0 0, f1 0, candidate min(2,5)=2 -> 2.
  EXPECT_DOUBLE_EQ(m.Evaluate(std::vector<int32_t>{0, 1, 2, 3, 4}), 2.0);
}

TEST(CapacityInfluenceTest, MatchesNaiveRandomized) {
  Rng rng(130);
  for (int trial = 0; trial < 100; ++trial) {
    const int nf = 1 + static_cast<int>(rng.NextBounded(8));
    const int nc = 1 + static_cast<int>(rng.NextBounded(40));
    std::vector<int32_t> client_nn, caps;
    for (int i = 0; i < nc; ++i) {
      client_nn.push_back(static_cast<int32_t>(rng.NextBounded(nf)));
    }
    for (int f = 0; f < nf; ++f) {
      caps.push_back(static_cast<int32_t>(rng.NextBounded(6)));
    }
    const int32_t cand_cap = static_cast<int32_t>(rng.NextBounded(6));
    CapacityInfluence m(client_nn, caps, cand_cap);
    for (int q = 0; q < 20; ++q) {
      // Random subset as a region.
      std::vector<int32_t> region;
      for (int c = 0; c < nc; ++c) {
        if (rng.NextDouble() < 0.3) region.push_back(c);
      }
      ASSERT_DOUBLE_EQ(m.Evaluate(region),
                       NaiveCapacity(client_nn, caps, cand_cap, region));
    }
  }
}

TEST(CapacityInfluenceTest, UpperBoundDominatesAllSubsets) {
  Rng rng(131);
  const std::vector<int32_t> client_nn{0, 1, 2, 0, 1, 2, 0, 1};
  const std::vector<int32_t> caps{2, 1, 3};
  CapacityInfluence m(client_nn, caps, 3);
  const std::vector<int32_t> committed{0, 3};
  const std::vector<int32_t> optional{1, 4, 6};
  const double bound = m.UpperBound(committed, optional);
  // Enumerate all subsets of optional.
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<int32_t> region = committed;
    for (int b = 0; b < 3; ++b) {
      if (mask & (1 << b)) region.push_back(optional[b]);
    }
    EXPECT_LE(m.Evaluate(region), bound + 1e-12);
  }
}

TEST(CapacityInfluenceTest, EvaluateIsReentrantAcrossCalls) {
  // The scratch arrays must be fully reset between calls.
  CapacityInfluence m({0, 0, 0}, {2}, 1);
  const double first = m.Evaluate(std::vector<int32_t>{0, 1});
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(m.Evaluate(std::vector<int32_t>{0, 1}), first);
  }
}

TEST(ConnectivityInfluenceTest, CountsInducedEdges) {
  // Fig. 3: o1, o2, o4 pairwise connected; o3 isolated.
  ConnectivityInfluence m(4, {{0, 1}, {0, 3}, {1, 3}});
  EXPECT_DOUBLE_EQ(m.Evaluate(std::vector<int32_t>{0, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(m.Evaluate(std::vector<int32_t>{0, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(m.Evaluate(std::vector<int32_t>{2}), 0.0);
  EXPECT_DOUBLE_EQ(m.Evaluate({}), 0.0);
}

TEST(ConnectivityInfluenceTest, SelfLoopsIgnoredDuplicateEdgesCount) {
  ConnectivityInfluence m(3, {{0, 0}, {0, 1}, {1, 0}});
  // Self loop dropped; (0,1) appears twice -> counted twice (multigraph).
  EXPECT_DOUBLE_EQ(m.Evaluate(std::vector<int32_t>{0, 1}), 2.0);
}

TEST(ConnectivityInfluenceTest, RandomizedAgainstNaive) {
  Rng rng(132);
  const int n = 30;
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int i = 0; i < 60; ++i) {
    edges.push_back({static_cast<int32_t>(rng.NextBounded(n)),
                     static_cast<int32_t>(rng.NextBounded(n))});
  }
  ConnectivityInfluence m(n, edges);
  for (int q = 0; q < 50; ++q) {
    std::vector<int32_t> region;
    std::vector<uint8_t> in(n, 0);
    for (int c = 0; c < n; ++c) {
      if (rng.NextDouble() < 0.4) {
        region.push_back(c);
        in[c] = 1;
      }
    }
    double want = 0.0;
    for (const auto& [a, b] : edges) {
      if (a != b && in[a] && in[b]) want += 1.0;
    }
    ASSERT_DOUBLE_EQ(m.Evaluate(region), want);
  }
}

}  // namespace
}  // namespace rnnhm
